// Quickstart: the Fig. 6 programming model in C++.
//
// Register a model's layers with the Engine, then drive training steps with
// the Use/Push protocol. The engine handles what Angel-PTM's runtime
// handles: staging fp16 working parameters into the fast tier page by page,
// tracing the first iteration, scheduling prefetches with Algorithm 1, and
// updating through mixed-precision Adam.
//
//   build/examples/quickstart

#include <cstdio>

#include "core/engine.h"
#include "mem/memory_report.h"
#include "train/dataset.h"
#include "train/kernels.h"
#include "train/mlp.h"
#include "util/random.h"
#include "util/units.h"

int main() {
  using namespace angelptm;

  // 1. Configure the hierarchical memory: a deliberately tiny 256 KiB
  //    "GPU" tier so the paging machinery is visibly exercised.
  core::EngineOptions options;
  options.memory.page_bytes = 16 * 1024;
  options.memory.gpu_capacity_bytes = 256 * 1024;
  options.memory.cpu_capacity_bytes = 64ull << 20;
  options.adam.learning_rate = 3e-3;

  auto engine = core::Engine::Create(options);
  ANGEL_CHECK_OK(engine.status());

  // 2. Define a model and register its layers (angelptm.initialize).
  train::MlpModel model({{16, 128, 128, 4}});
  util::Rng rng(42);
  for (int l = 0; l < model.num_layers(); ++l) {
    ANGEL_CHECK_OK(
        (*engine)->RegisterLayer(model.InitLayerParams(l, &rng)).status());
  }

  // 3. Train: forward, loss, backward — fetching parameters through the
  //    engine each time they are needed (the engine learns the access
  //    pattern on step 0 and prefetches from step 1 on).
  train::SyntheticRegression dataset(16, 32, 4, 7);
  const size_t batch = 32;
  std::vector<float> x, y;
  for (int step = 0; step < 200; ++step) {
    dataset.GenBatch(&rng, batch, &x, &y);
    ANGEL_CHECK_OK((*engine)->BeginStep());

    std::vector<train::LayerStash> stash(model.num_layers());
    std::vector<float> acts = x;
    for (int l = 0; l < model.num_layers(); ++l) {
      auto params = (*engine)->UseLayerParams(l);
      ANGEL_CHECK_OK(params.status());
      std::vector<float> next;
      model.Forward(l, params->data(), acts, batch, &next, &stash[l]);
      acts = std::move(next);
    }
    std::vector<float> grad(acts.size());
    const double loss =
        train::MseLoss(acts.data(), y.data(), grad.data(), acts.size());

    for (int l = model.num_layers() - 1; l >= 0; --l) {
      auto params = (*engine)->UseLayerParams(l);
      ANGEL_CHECK_OK(params.status());
      std::vector<float> grad_in, grad_params;
      model.Backward(l, params->data(), stash[l], grad, batch, &grad_in,
                     &grad_params);
      ANGEL_CHECK_OK((*engine)->PushGrads(l, grad_params));
      grad = std::move(grad_in);
    }
    ANGEL_CHECK_OK((*engine)->EndStep());

    if (step % 40 == 0 || step == 199) {
      std::printf("step %3d  loss %.4f\n", step, loss);
    }
  }

  // 4. What the runtime did underneath.
  const core::Schedule* schedule = (*engine)->schedule();
  std::printf(
      "\nunified schedule: %zu tasks, peak GPU %s, %zu pages prefetched at "
      "step start, %zu gathers advanced by phase 2\n",
      schedule->tasks.size(),
      util::FormatBytes(schedule->peak_gpu_bytes).c_str(),
      schedule->pages_prefetched_at_start, schedule->gathers_advanced);
  std::printf("prefetch hits %llu / waits %llu\n",
              (unsigned long long)(*engine)->prefetch_hits(),
              (unsigned long long)(*engine)->prefetch_waits());
  std::printf("%s",
              mem::FormatMemoryReport((*engine)->memory()->Snapshot()).c_str());
  return 0;
}
