// Pre-training scenario (Section 3.1): plan and simulate one training
// iteration of GPT3-13B on one server and on four, showing how Angel-PTM
// places model states across the hierarchy, what Algorithm 1 schedules, and
// where the iteration time goes.
//
//   build/examples/pretrain_simulation

#include <cstdio>

#include "model/footprint.h"
#include "model/model_zoo.h"
#include "sim/planner.h"
#include "util/units.h"

int main() {
  using namespace angelptm;

  auto config = model::FindModel("GPT3-13B");
  ANGEL_CHECK_OK(config.status());
  config->seq_len = 1024;
  std::printf("model: %s, %s parameters, %s of model states\n\n",
              config->name.c_str(),
              util::FormatParamCount(model::TotalParamCount(*config)).c_str(),
              util::FormatBytes(model::TotalModelStateBytes(*config)).c_str());

  for (const int gpus : {8, 32}) {
    sim::PlanRequest request;
    request.model = *config;
    request.hw = sim::PaperServer();
    request.num_gpus = gpus;
    const int micro_batch = sim::MaxMicroBatchAngelPtm(request, 256);
    request.micro_batch = micro_batch;
    auto plan = sim::PlanAngelPtm(request);
    ANGEL_CHECK_OK(plan.status());
    const sim::IterationResult result = sim::SimulateIteration(plan->spec);

    std::printf("=== %d GPUs (micro-batch %d/GPU) ===\n", gpus, micro_batch);
    std::printf("placement per rank: peak GPU %s (fp32 cache %s = %.0f%% of "
                "optimizer shard)\n",
                util::FormatBytes(plan->peak_gpu_bytes).c_str(),
                util::FormatBytes(plan->gpu_cache_bytes).c_str(),
                100.0 * plan->gpu_cached_fraction);
    std::printf("placement per node: CPU %s\n",
                util::FormatBytes(plan->cpu_bytes_per_node).c_str());

    size_t moves = 0, gathers = 0, computes = 0;
    for (const core::Task& task : plan->spec.tasks) {
      switch (task.op) {
        case core::TaskOp::kMoveToGpu:
          ++moves;
          break;
        case core::TaskOp::kAllGather:
          ++gathers;
          break;
        case core::TaskOp::kCompute:
          ++computes;
          break;
      }
    }
    std::printf("schedule: %zu move_to_gpu, %zu all_gather, %zu compute "
                "tasks\n",
                moves, gathers, computes);
    std::printf("iteration: %.3f s  ->  %.2f samples/s (%.1f%% GPU idle)\n",
                result.iteration_seconds,
                gpus * micro_batch / result.iteration_seconds,
                100.0 * result.GpuIdleFraction());
    std::printf("busy: gpu %.2fs | pcie %.2fs | collectives %.2fs | cpu "
                "optimizer %.2fs\n",
                result.gpu_busy, result.pcie_busy, result.comm_busy,
                result.cpu_busy);
    if (gpus == 8) {
      // Export the full task timeline for chrome://tracing / Perfetto.
      std::vector<sim::TaskTiming> timeline;
      sim::SimulateIteration(plan->spec, &timeline);
      const char* trace_path = "/tmp/angelptm_gpt13b_iteration.json";
      ANGEL_CHECK_OK(sim::ExportChromeTrace(timeline, trace_path));
      std::printf("timeline (%zu tasks) exported to %s -- open in "
                  "chrome://tracing to see the overlap\n",
                  timeline.size(), trace_path);
    }
    std::printf("\n");
  }
  std::printf("Note how scaling 8 -> 32 GPUs needs no re-configuration: the\n"
              "same data-parallel plan re-shards automatically (Section 3.2's\n"
              "easy-to-scale requirement).\n");
  return 0;
}
