// MoE scenario: plan T5-MoE training with expert parallelism (Section 6.4)
// and demonstrate the token all-to-all with the real in-process
// Communicator across 4 rank threads.
//
//   build/examples/moe_expert_parallel

#include <cstdio>
#include <thread>
#include <vector>

#include "core/communicator.h"
#include "dist/expert_parallel.h"
#include "model/model_zoo.h"
#include "sim/planner.h"
#include "util/units.h"

int main() {
  using namespace angelptm;

  // Part 1: plan the paper's 1.2T-parameter configuration (2304 experts =
  // 9 per GPU on 256 GPUs).
  dist::ExpertParallelRequest request;
  request.model = *model::FindModel("T5-MoE-1.2T");
  request.hw = sim::PaperServer();
  request.num_gpus = 256;
  request.experts_per_gpu = 9;
  request.micro_batch = 8;
  auto plan = dist::PlanExpertParallel(request);
  ANGEL_CHECK_OK(plan.status());
  const sim::IterationResult result = sim::SimulateIteration(plan->spec);
  std::printf("T5-MoE %s on %d GPUs: %.1f samples/s, per-layer all-to-all "
              "%.2f ms, peak GPU %s\n\n",
              util::FormatParamCount(
                  dist::ExpertParallelModelParams(request))
                  .c_str(),
              request.num_gpus,
              request.num_gpus * request.micro_batch /
                  result.iteration_seconds,
              1e3 * plan->spec.extra_comm_seconds_per_step,
              util::FormatBytes(plan->peak_gpu_bytes).c_str());

  // Part 2: the token-routing all-to-all for real, across 4 rank threads.
  // Each rank holds 8 tokens destined 2-per-peer; after the all-to-all each
  // rank holds the 8 tokens routed to *its* experts.
  constexpr int kWorld = 4;
  constexpr size_t kTokensPerPeer = 2;
  core::Communicator comm(kWorld);
  std::vector<std::vector<float>> received(
      kWorld, std::vector<float>(kWorld * kTokensPerPeer));
  std::vector<std::thread> ranks;
  for (int r = 0; r < kWorld; ++r) {
    ranks.emplace_back([&, r] {
      std::vector<float> tokens(kWorld * kTokensPerPeer);
      for (size_t i = 0; i < tokens.size(); ++i) {
        tokens[i] = float(100 * r) + float(i);  // Encode origin + slot.
      }
      ANGEL_CHECK_OK(comm.AllToAll(r, tokens.data(), kTokensPerPeer,
                                   received[r].data()));
    });
  }
  for (auto& t : ranks) t.join();
  std::printf("all-to-all across %d rank threads (token = 100*origin + "
              "slot):\n",
              kWorld);
  for (int r = 0; r < kWorld; ++r) {
    std::printf("  expert rank %d received:", r);
    for (float v : received[r]) std::printf(" %5.0f", v);
    std::printf("\n");
  }
  std::printf("\nEach expert rank now holds every peer's tokens for its\n"
              "experts — the dispatch step of §6.4's expert parallelism;\n"
              "the combine step is the same collective in reverse.\n");
  return 0;
}
