// ZeRO sharded data parallelism for real (Section 3.2 "Parameter
// Sharding"): four rank threads train one model with stage-3 sharding —
// per-layer all-gathers materialize full parameters, reduce-scatter
// synchronizes gradients, each rank Adam-updates only its shard — and the
// result matches single-rank training bit-for-bit-ish.
//
//   build/examples/zero_data_parallel

#include <cmath>
#include <cstdio>

#include "dist/sharded_data_parallel.h"
#include "train/mlp.h"
#include "util/units.h"

int main() {
  using namespace angelptm;

  mem::HierarchicalMemoryOptions memory_options;
  memory_options.page_bytes = 16 * 1024;
  memory_options.gpu_capacity_bytes = 4ull << 20;
  memory_options.cpu_capacity_bytes = 128ull << 20;

  const train::MlpModel model({{16, 64, 64, 4}});
  train::SyntheticRegression dataset(16, 32, 4, 99);

  double single_loss = 0;
  std::vector<float> single_params;
  for (const int world : {1, 4}) {
    mem::HierarchicalMemory memory(memory_options);
    core::Allocator allocator(&memory);
    dist::ShardedDpOptions options;
    options.world_size = world;
    options.batch_per_rank = 32 / world;  // Constant global batch.
    options.adam.learning_rate = 3e-3;
    options.seed = 11;
    dist::ShardedDataParallel dp(&allocator, &model, options);
    ANGEL_CHECK_OK(dp.Init());
    auto report = dp.Train(dataset, 150);
    ANGEL_CHECK_OK(report.status());
    auto params = dp.GatherLayerParams(0);
    ANGEL_CHECK_OK(params.status());

    std::printf("world=%d: loss %.4f -> %.4f (valid %.4f), %llu "
                "collectives, %s of shard states\n",
                world, report->losses.front(), report->final_train_loss,
                report->validation_loss,
                (unsigned long long)report->collectives,
                util::FormatBytes(allocator.allocated_bytes()).c_str());
    if (world == 1) {
      single_loss = report->final_train_loss;
      single_params = *params;
    } else {
      double max_delta = 0;
      for (size_t i = 0; i < params->size(); ++i) {
        max_delta = std::max(
            max_delta, double(std::abs((*params)[i] - single_params[i])));
      }
      std::printf("\n4-rank result vs single rank: final-loss delta %.2e, "
                  "max param delta %.2e\n",
                  std::abs(report->final_train_loss - single_loss),
                  max_delta);
    }
  }
  std::printf("\nSame math, 4x the compute: this scale-transparency is why\n"
              "the paper picks sharded data parallelism as the base strategy\n"
              "-- users re-run with more GPUs and nothing else changes.\n");
  return 0;
}
