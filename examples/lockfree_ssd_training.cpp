// Extreme-scale scenario (Section 6.5): train with fp32 master states on a
// real file-backed SSD tier, comparing the synchronous flow (every step
// waits for the SSD-bound optimizer) against the Lock-Free Updating
// Mechanism (Algorithm 2) where updating and buffering threads run
// concurrently with compute.
//
//   build/examples/lockfree_ssd_training

#include <unistd.h>

#include <cstdio>
#include <string>

#include "train/mlp.h"
#include "train/trainer.h"
#include "util/units.h"

int main() {
  using namespace angelptm;

  train::SyntheticRegression dataset(32, 64, 8, 99);
  for (const bool lock_free : {false, true}) {
    mem::HierarchicalMemoryOptions memory_options;
    memory_options.page_bytes = 64 * 1024;
    memory_options.gpu_capacity_bytes = 8ull << 20;
    memory_options.cpu_capacity_bytes = 64ull << 20;
    memory_options.ssd_capacity_bytes = 64ull << 20;
    memory_options.ssd_path = "/tmp/angelptm_example_ssd_" +
                              std::to_string(::getpid()) +
                              (lock_free ? "_lf" : "_sync") + ".bin";
    // Emulate the paper's SSD bottleneck (3.5 GB/s vs terabytes of states)
    // at this model's scale.
    memory_options.ssd_bandwidth_bytes_per_sec = 200e6;
    mem::HierarchicalMemory memory(memory_options);
    core::Allocator allocator(&memory);

    const train::MlpModel model({{32, 256, 256, 8}});
    train::TrainerOptions options;
    options.adam.learning_rate = 3e-3;
    options.batch_size = 64;
    options.master_device = mem::DeviceKind::kSsd;
    options.lock_free = lock_free;
    options.seed = 7;
    train::Trainer trainer(&allocator, &model, options);
    ANGEL_CHECK_OK(trainer.Init());

    std::printf("=== %s ===\n",
                lock_free ? "Lock-Free Updating (Algorithm 2)"
                          : "Synchronous updating (SSD on critical path)");
    auto report = trainer.Train(dataset, 300);
    ANGEL_CHECK_OK(report.status());
    std::printf("  %.0f steps/s over %d steps (%.2f s wall)\n",
                report->steps_per_second, int(report->losses.size()),
                report->wall_seconds);
    std::printf("  train loss %.4f -> %.4f, validation %.4f\n",
                report->losses.front(), report->final_train_loss,
                report->validation_loss);
    const train::TelemetrySnapshot& telemetry = report->telemetry;
    std::printf("  optimizer: %llu updates applied, peak staleness %llu "
                "gradient batches\n",
                (unsigned long long)telemetry.updater.updates_applied,
                (unsigned long long)telemetry.max_pending_batches);
    std::printf("  staleness distribution: %s\n",
                telemetry.updater.staleness.Summary().c_str());
    std::printf("  real SSD traffic: %s read, %s written\n\n",
                util::FormatBytes(telemetry.ssd.bytes_read).c_str(),
                util::FormatBytes(telemetry.ssd.bytes_written).c_str());
  }
  std::printf("The lock-free run's compute never blocks on the SSD: the\n"
              "updating thread lags a few batches behind (bounded staleness)\n"
              "and the model converges to the same quality — the Table 6\n"
              "result, on real threads and a real file.\n");
  return 0;
}
