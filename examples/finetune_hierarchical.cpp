// Fine-tuning scenario (Section 3.1): fine-tuning jobs are 90% of the
// platform's tasks, run with small batches, and queue for hours waiting for
// GPUs. Hierarchical memory shrinks the number of GPUs a job needs: this
// example finds the smallest GPU count that can fine-tune each model under
// Angel-PTM vs a no-offload (Megatron-like) baseline.
//
//   build/examples/finetune_hierarchical

#include <cstdio>

#include "baselines/megatron_like.h"
#include "model/footprint.h"
#include "model/model_zoo.h"
#include "sim/planner.h"
#include "util/units.h"

namespace {

using namespace angelptm;

int MinGpusAngel(const model::TransformerConfig& config) {
  for (int gpus = 1; gpus <= 512; gpus *= 2) {
    sim::PlanRequest request;
    request.model = config;
    request.hw = sim::PaperServer();
    request.num_gpus = gpus;
    request.micro_batch = 1;  // Fine-tuning: small batch.
    if (sim::PlanAngelPtm(request).ok()) return gpus;
  }
  return -1;
}

int MinGpusNoOffload(const model::TransformerConfig& config) {
  for (int gpus = 1; gpus <= 512; gpus *= 2) {
    if (baselines::PlanMegatronLike(config, sim::PaperServer(), gpus)
            .feasible) {
      return gpus;
    }
  }
  return -1;
}

}  // namespace

int main() {
  std::printf("Smallest feasible GPU allocation for a fine-tuning job\n"
              "(micro-batch 1, seq 1024):\n\n");
  std::printf("%-12s %14s %18s %18s\n", "model", "params", "Angel-PTM",
              "no-offload (TP/PP)");
  for (const char* name :
       {"GPT3-1.7B", "GPT3-13B", "GPT3-30B", "GPT3-55B", "GPT3-120B"}) {
    auto config = model::FindModel(name);
    ANGEL_CHECK_OK(config.status());
    config->seq_len = 1024;
    const int angel = MinGpusAngel(*config);
    const int baseline = MinGpusNoOffload(*config);
    std::printf("%-12s %14s %14d GPUs %14d GPUs\n", name,
                util::FormatParamCount(
                    model::TotalParamCount(*config))
                    .c_str(),
                angel, baseline);
  }
  std::printf(
      "\nHierarchical memory cuts the GPU footprint of fine-tuning jobs by\n"
      "4-8x, which is exactly the paper's remedy for the platform's long\n"
      "queue times: the same cluster runs several times more concurrent\n"
      "fine-tuning jobs (Section 3.2, 'Hierarchical Memory').\n");
  return 0;
}
