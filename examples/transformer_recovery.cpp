// Pre-training failure recovery (Section 3.1): a real Transformer trains
// through the paged Engine; we checkpoint mid-run, simulate a failure by
// tearing the engine down, bring up a fresh one, restore the checkpoint,
// and continue — the loss curve resumes where it left off instead of
// restarting from scratch.
//
//   build/examples/transformer_recovery

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>

#include "core/checkpoint.h"
#include "core/engine.h"
#include "train/dataset.h"
#include "train/kernels.h"
#include "train/transformer.h"
#include "util/random.h"

namespace {

using namespace angelptm;

std::unique_ptr<core::Engine> MakeEngine(const train::TinyTransformer& model,
                                         util::Rng* rng) {
  core::EngineOptions options;
  options.memory.page_bytes = 16 * 1024;
  options.memory.gpu_capacity_bytes = 512 * 1024;
  options.memory.cpu_capacity_bytes = 64ull << 20;
  options.adam.learning_rate = 1e-3;
  auto engine = core::Engine::Create(options);
  ANGEL_CHECK_OK(engine.status());
  for (int l = 0; l < model.num_layers(); ++l) {
    ANGEL_CHECK_OK(
        (*engine)->RegisterLayer(model.InitLayerParams(l, rng)).status());
  }
  return std::move(*engine);
}

double TrainSteps(core::Engine* engine, const train::TinyTransformer& model,
                  const train::SyntheticRegression& dataset, util::Rng* rng,
                  int steps) {
  const size_t batch = 16;
  std::vector<float> x, y;
  double loss = 0;
  for (int step = 0; step < steps; ++step) {
    dataset.GenBatch(rng, batch, &x, &y);
    ANGEL_CHECK_OK(engine->BeginStep());
    std::vector<train::LayerStash> stash(model.num_layers());
    std::vector<float> acts = x;
    for (int l = 0; l < model.num_layers(); ++l) {
      auto params = engine->UseLayerParams(l);
      ANGEL_CHECK_OK(params.status());
      std::vector<float> next;
      model.Forward(l, params->data(), acts, batch, &next, &stash[l]);
      acts = std::move(next);
    }
    std::vector<float> grad(acts.size());
    loss = train::MseLoss(acts.data(), y.data(), grad.data(), acts.size());
    for (int l = model.num_layers() - 1; l >= 0; --l) {
      auto params = engine->UseLayerParams(l);
      ANGEL_CHECK_OK(params.status());
      std::vector<float> grad_in, grad_params;
      model.Backward(l, params->data(), stash[l], grad, batch, &grad_in,
                     &grad_params);
      ANGEL_CHECK_OK(engine->PushGrads(l, grad_params));
      grad = std::move(grad_in);
    }
    ANGEL_CHECK_OK(engine->EndStep());
  }
  return loss;
}

}  // namespace

int main() {
  const std::string checkpoint_path =
      "/tmp/angelptm_recovery_" + std::to_string(::getpid()) + ".ckpt";
  train::TransformerConfig config;
  config.seq_len = 8;
  config.d_model = 16;
  config.num_heads = 4;
  config.d_ffn = 32;
  config.num_blocks = 3;
  config.out_dim = 2;
  const train::TinyTransformer model(config);
  train::SyntheticRegression dataset(model.InputSize(), 32,
                                     model.OutputSize(), 99);
  util::Rng rng(42);

  auto engine = MakeEngine(model, &rng);
  std::printf("phase 1: training a %d-block Transformer (d=%zu, %zu heads)"
              " through the paged engine\n",
              config.num_blocks, config.d_model, config.num_heads);
  double loss = TrainSteps(engine.get(), model, dataset, &rng, 120);
  std::printf("  after 120 steps: loss %.4f -- writing checkpoint\n", loss);
  ANGEL_CHECK_OK(core::SaveCheckpoint(engine->updater(), checkpoint_path));

  std::printf("phase 2: simulated failure -- engine destroyed, all tiers "
              "released\n");
  engine.reset();

  std::printf("phase 3: recovery -- fresh engine, restore, continue\n");
  util::Rng rng2(43);  // New process: different init is fine, we restore.
  auto recovered = MakeEngine(model, &rng2);
  ANGEL_CHECK_OK(
      core::LoadCheckpoint(recovered->updater(), checkpoint_path));
  loss = TrainSteps(recovered.get(), model, dataset, &rng, 5);
  std::printf("  first losses after restore: %.4f (continues converged, "
              "no restart from scratch)\n",
              loss);
  loss = TrainSteps(recovered.get(), model, dataset, &rng, 115);
  std::printf("  after 120 more steps: loss %.4f\n", loss);

  std::remove(checkpoint_path.c_str());
  std::printf("\nWith hundreds of GPUs for weeks, failures are a certainty\n"
              "(Section 3.1); checkpoint/restore over the fp32 master states\n"
              "is what makes pre-training restartable.\n");
  return 0;
}
