#include "baselines/deepspeed_like.h"

#include <algorithm>

#include "model/footprint.h"
#include "sim/cost_model.h"
#include "util/units.h"

namespace angelptm::baselines {

util::Result<sim::Plan> PlanDeepSpeedLike(const sim::PlanRequest& request) {
  const auto& hw = request.hw;
  const int num_gpus = request.num_gpus;
  if (num_gpus < 1) {
    return util::Status::InvalidArgument("num_gpus must be >= 1");
  }
  const int gpus_per_node = std::min(num_gpus, hw.gpus_per_node);
  const int L = request.model.num_layers;
  const uint64_t layer_params = model::LayerParamCount(request.model);
  const uint64_t total_params = uint64_t(L) * layer_params;

  model::TrainingConfig training;
  training.micro_batch = request.micro_batch;
  const sim::CostModel cost(hw, request.model, training);

  // Static placement decision (made once, not per-iteration):
  // fp32 optimizer states -> pinned host memory, always.
  const uint64_t params_per_rank = total_params / num_gpus;
  const uint64_t params_per_node = params_per_rank * gpus_per_node;
  const uint64_t pinned_fp32_node = 12 * params_per_node;
  if (pinned_fp32_node > hw.cpu_pinned_limit_bytes) {
    return util::Status::OutOfMemory(
        "pinned host budget: fp32 states need " +
        util::FormatBytes(pinned_fp32_node) + " of " +
        util::FormatBytes(hw.cpu_pinned_limit_bytes));
  }

  // Activation geometry (recompute enabled, like Angel's configuration).
  const uint64_t b = request.micro_batch, s = request.model.seq_len;
  const uint64_t dm = request.model.d_model, dffn = request.model.d_ffn;
  uint64_t layer_acts = 40 * b * s * dm + 8 * b * s * dffn;
  if (request.model.family != model::ModelFamily::kGpt) layer_acts *= 2;
  const uint64_t boundary_act = 2 * b * s * dm;

  // Tensor-granular allocation under offload churn fragments GPU memory
  // (§3.2); the baseline only gets to use the unfragmented fraction.
  const uint64_t usable_gpu_bytes =
      uint64_t((1.0 - hw.baseline_fragmentation) *
               double(hw.GpuUsableBytes()));
  const uint64_t fp16_shard_bytes = 4 * total_params / num_gpus;
  const uint64_t shard_fp16_layer = 2 * layer_params / num_gpus;
  const uint64_t gathered_layer = 2 * layer_params;  // Full fp16 parameter.
  // Peak GPU bytes: resident shard (if resident mode) + boundary stash +
  // two gathered layers in flight (prefetch window 1) + one layer workspace.
  const uint64_t act_stash = uint64_t(L) * boundary_act;
  const uint64_t transient = 2 * gathered_layer + layer_acts;

  const bool fp16_resident =
      fp16_shard_bytes + act_stash + transient <= usable_gpu_bytes;
  if (!fp16_resident) {
    // Streaming mode: fp16 shard also lives in pinned memory.
    if (pinned_fp32_node + 4 * params_per_node > hw.cpu_pinned_limit_bytes) {
      return util::Status::OutOfMemory(
          "pinned host budget: fp32+fp16 states exceed pinned limit");
    }
    if (act_stash + transient > usable_gpu_bytes) {
      return util::Status::OutOfMemory("activations exceed GPU memory");
    }
  }

  // Build the static schedule: no Algorithm-1 optimization, fixed window.
  sim::Plan plan;
  core::ScheduleInput& input = plan.spec.sched;
  input.world_size = num_gpus;
  input.gpu_memory_budget = hw.GpuUsableBytes();
  uint64_t next_page_id = 0;
  const size_t pages_per_layer = 8;
  const uint64_t page_bytes =
      std::max<uint64_t>(1, (shard_fp16_layer + pages_per_layer - 1) /
                                pages_per_layer);

  auto add_step = [&](int layer, bool backward) {
    core::SchedStep step;
    const int step_id = int(input.steps.size());
    for (size_t p = 0; p < pages_per_layer; ++p) {
      const uint64_t page_id = next_page_id++;
      step.param_pages.push_back({page_id, page_bytes});
      if (!fp16_resident) {
        // Streamed from pinned memory one layer ahead (static window).
        plan.spec.tasks.push_back({core::TaskOp::kMoveToGpu, page_id,
                                   page_bytes, step_id,
                                   std::max(0, step_id - 1)});
      }
      // Gather prefetched exactly one step ahead, never farther (static).
      plan.spec.tasks.push_back({core::TaskOp::kAllGather, page_id,
                                 page_bytes, step_id,
                                 std::max(0, step_id - 1)});
    }
    step.workspace_bytes = backward ? layer_acts : layer_acts / 2;
    step.retained_bytes =
        backward ? -int64_t(boundary_act) : int64_t(boundary_act);
    step.compute_seconds = backward
                               ? cost.LayerBackwardSeconds(request.micro_batch)
                               : cost.LayerForwardSeconds(request.micro_batch);
    input.steps.push_back(step);
    plan.spec.tasks.push_back(
        {core::TaskOp::kCompute, ~0ull, 0, step_id, step_id});
    (void)layer;
  };
  for (int l = 0; l < L; ++l) add_step(l, false);
  for (int l = L - 1; l >= 0; --l) add_step(l, true);

  // In resident mode the fp16 shard is marked moved at t=0 so gathers do not
  // pay on-demand PCIe fetches. (All pages already on GPU.)
  if (fp16_resident) {
    std::vector<core::Task> moves;
    for (const core::Task& t : plan.spec.tasks) {
      if (t.op == core::TaskOp::kAllGather && t.step < L) {
        moves.push_back({core::TaskOp::kMoveToGpu, t.page_id, 0, t.step, 0});
      }
    }
    // Zero-byte moves: mark residency without PCIe time.
    // Backward gathers use distinct page ids, mark those too.
    for (const core::Task& t : plan.spec.tasks) {
      if (t.op == core::TaskOp::kAllGather && t.step >= L) {
        moves.push_back({core::TaskOp::kMoveToGpu, t.page_id, 0, t.step, 0});
      }
    }
    plan.spec.tasks.insert(plan.spec.tasks.begin(), moves.begin(),
                           moves.end());
  }

  // Optimizer: gradient offload overlaps backward (one item per layer), but
  // the Adam step is a single synchronous phase after the last backward,
  // followed by re-uploading updated fp16 parameters.
  for (int l = 0; l < L; ++l) {
    sim::OptimizerWork offload;
    offload.after_step = 2 * L - 1 - l;
    offload.grad_offload_bytes = 2 * layer_params / num_gpus;
    plan.spec.opt_work.push_back(offload);
  }
  sim::OptimizerWork update;
  update.after_step = 2 * L - 1;
  update.cpu_update_elements = params_per_node;
  update.param_upload_bytes = fp16_resident ? 2 * total_params / num_gpus : 0;
  plan.spec.opt_work.push_back(update);

  plan.peak_gpu_bytes =
      (fp16_resident ? fp16_shard_bytes : 0) + act_stash + transient;
  plan.gpu_cache_bytes = 0;
  plan.gpu_cached_fraction = 0.0;
  plan.cpu_bytes_per_node =
      pinned_fp32_node + (fp16_resident ? 0 : 4 * params_per_node);
  plan.ssd_bytes_per_node = 0;

  plan.spec.pcie_bw = hw.pcie_bw_per_gpu;
  plan.spec.collective_bw_per_rank = hw.CollectiveBwPerRank(num_gpus);
  // The offloaded Adam stages every element through pinned bounce buffers
  // (one extra copy), halving the effective update bandwidth relative to
  // Angel's in-arena page-level updates.
  plan.spec.cpu_optimizer_bw = hw.cpu_optimizer_bw_per_node * 0.5;
  plan.spec.gpu_optimizer_bw = hw.gpu_hbm_bw;
  plan.spec.ssd_bw = hw.ssd_bw_per_node;
  plan.spec.lock_free = false;  // Not supported by the baseline.
  return plan;
}

int MaxMicroBatchDeepSpeedLike(sim::PlanRequest request, int max_batch) {
  auto feasible = [&](int batch) {
    request.micro_batch = batch;
    return PlanDeepSpeedLike(request).ok();
  };
  if (!feasible(1)) return 0;
  int low = 1, high = 2;
  while (high <= max_batch && feasible(high)) {
    low = high;
    high *= 2;
  }
  high = std::min(high, max_batch + 1);
  while (low + 1 < high) {
    const int mid = low + (high - low) / 2;
    (feasible(mid) ? low : high) = mid;
  }
  return low;
}

}  // namespace angelptm::baselines
