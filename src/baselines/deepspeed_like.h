#ifndef ANGELPTM_BASELINES_DEEPSPEED_LIKE_H_
#define ANGELPTM_BASELINES_DEEPSPEED_LIKE_H_

#include "sim/planner.h"
#include "util/status.h"

namespace angelptm::baselines {

/// Baseline reproducing DeepSpeed's ZeRO-3 + ZeRO-Offload *policies* on the
/// same simulated substrate as Angel-PTM, so measured differences are
/// attributable to the policies (DESIGN.md §1):
///
///  - Static partitioning: the fp16 parameter+gradient shard lives on the
///    GPU when it fits, otherwise it is streamed from pinned host memory
///    with a fixed prefetch window of one layer. There is no dynamic GPU
///    caching of optimizer states ("even when the GPU has sufficient
///    memory, these systems still transfer the entire optimizer states and
///    the update operations to the CPU" — §4.2).
///  - All fp32 optimizer states live in *pinned* host memory (the async-DMA
///    requirement), so the maximum model scale is bound by the pinned
///    budget: the behaviour Table 5 observes.
///  - Gradient offload overlaps backward, but the optimizer step itself is
///    a synchronous trailing phase, followed by re-uploading the updated
///    fp16 parameters.
[[nodiscard]] util::Result<sim::Plan> PlanDeepSpeedLike(const sim::PlanRequest& request);

/// Largest feasible micro-batch under the DeepSpeed-like policy.
int MaxMicroBatchDeepSpeedLike(sim::PlanRequest request, int max_batch = 512);

}  // namespace angelptm::baselines

#endif  // ANGELPTM_BASELINES_DEEPSPEED_LIKE_H_
