#ifndef ANGELPTM_BASELINES_MEGATRON_LIKE_H_
#define ANGELPTM_BASELINES_MEGATRON_LIKE_H_

#include <string>

#include "model/transformer_config.h"
#include "sim/hardware.h"

namespace angelptm::baselines {

/// Outcome of the hybrid-parallelism search.
struct MegatronPlan {
  bool feasible = false;
  int tensor_parallel = 1;
  int pipeline_parallel = 1;
  int data_parallel = 1;
  int micro_batch = 0;
  double iteration_seconds = 0.0;
  double samples_per_second = 0.0;
  std::string infeasible_reason;
};

/// Baseline reproducing Megatron-LM's hybrid parallelism as an analytical
/// cost model: exhaustive search over (TP, PP, DP) splits of `num_gpus` with
/// the largest feasible micro-batch, no CPU/SSD offloading (so large models
/// OOM — the Figure 7 behaviour at 30B on 8 GPUs), pipeline-bubble and
/// tensor-parallel communication overheads included. The paper's authors
/// "manually search the best parallelism strategy"; this search plays that
/// role.
MegatronPlan PlanMegatronLike(const model::TransformerConfig& model,
                              const sim::HardwareConfig& hw, int num_gpus);

}  // namespace angelptm::baselines

#endif  // ANGELPTM_BASELINES_MEGATRON_LIKE_H_
