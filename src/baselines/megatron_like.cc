#include "baselines/megatron_like.h"

#include <algorithm>

#include "model/footprint.h"
#include "sim/cost_model.h"

namespace angelptm::baselines {
namespace {

/// Largest micro-batch that fits one pipeline stage, or 0.
int MaxStageMicroBatch(const model::TransformerConfig& config,
                       const sim::HardwareConfig& hw, int tp, int pp) {
  const int L = config.num_layers;
  const uint64_t layer_params = model::LayerParamCount(config);
  const uint64_t total_params = uint64_t(L) * layer_params;
  const int layers_per_stage = (L + pp - 1) / pp;
  const uint64_t states_per_gpu = 16 * total_params / (uint64_t(tp) * pp);
  if (states_per_gpu >= hw.GpuUsableBytes()) return 0;

  const uint64_t s = config.seq_len, dm = config.d_model,
                 dffn = config.d_ffn;
  for (int batch = 512; batch >= 1; batch /= 2) {
    const uint64_t b = batch;
    uint64_t layer_acts = (40 * b * s * dm + 8 * b * s * dffn) / tp;
    if (config.family != model::ModelFamily::kGpt) layer_acts *= 2;
    const uint64_t boundary = 2 * b * s * dm / tp;
    // 1F1B keeps up to `pp` micro-batches of boundary stash in flight.
    const uint64_t act_bytes =
        uint64_t(pp) * layers_per_stage * boundary + layer_acts;
    if (states_per_gpu + act_bytes <= hw.GpuUsableBytes()) return batch;
  }
  return 0;
}

}  // namespace

MegatronPlan PlanMegatronLike(const model::TransformerConfig& config,
                              const sim::HardwareConfig& hw, int num_gpus) {
  MegatronPlan best;
  best.infeasible_reason = "model does not fit any (TP, PP, DP) split";

  model::TrainingConfig training;
  const int L = config.num_layers;
  const uint64_t layer_params = model::LayerParamCount(config);
  const uint64_t total_params = uint64_t(L) * layer_params;

  for (int tp = 1; tp <= std::min(num_gpus, hw.gpus_per_node); tp *= 2) {
    if (num_gpus % tp != 0) continue;
    for (int pp = 1; pp <= num_gpus / tp; pp *= 2) {
      if ((num_gpus / tp) % pp != 0) continue;
      if (pp > L) continue;
      const int dp = num_gpus / (tp * pp);
      const int micro_batch = MaxStageMicroBatch(config, hw, tp, pp);
      if (micro_batch == 0) continue;

      training.micro_batch = micro_batch;
      training.recompute_activations = true;
      const sim::CostModel cost(hw, config, training);

      // One micro-batch through one stage (fwd+bwd of its layers), split
      // across the TP group.
      const int layers_per_stage = (L + pp - 1) / pp;
      const double stage_seconds =
          layers_per_stage *
          (cost.LayerForwardSeconds(micro_batch) +
           cost.LayerBackwardSeconds(micro_batch)) /
          tp;

      // Tensor-parallel all-reduces: 4 per layer per micro-batch of
      // b*s*d fp16 activations (2 forward, 2 backward).
      double tp_comm_seconds = 0.0;
      if (tp > 1) {
        const double bytes =
            4.0 * 2.0 * micro_batch * config.seq_len * config.d_model;
        const double wire = 2.0 * (tp - 1) / tp * bytes;
        tp_comm_seconds =
            layers_per_stage * wire / hw.nvlink_bw_per_gpu;
      }

      // Gradient accumulation: 4*pp micro-batches amortize the bubble.
      const int m = 4 * pp;
      const double pipeline_seconds =
          (m + pp - 1) * (stage_seconds + tp_comm_seconds);

      // Data-parallel gradient all-reduce (overlapped 50% with backward).
      double dp_comm_seconds = 0.0;
      if (dp > 1) {
        const double grad_bytes = 2.0 * double(total_params) / (tp * pp);
        const double wire = 2.0 * (dp - 1) / dp * grad_bytes;
        const double bw = hw.CollectiveBwPerRank(num_gpus);
        dp_comm_seconds = 0.5 * wire / bw;
      }

      const double iteration = pipeline_seconds + dp_comm_seconds;
      const double samples = double(m) * micro_batch * dp;
      const double throughput = samples / iteration;
      if (!best.feasible || throughput > best.samples_per_second) {
        best.feasible = true;
        best.tensor_parallel = tp;
        best.pipeline_parallel = pp;
        best.data_parallel = dp;
        best.micro_batch = micro_batch;
        best.iteration_seconds = iteration;
        best.samples_per_second = throughput;
        best.infeasible_reason.clear();
      }
    }
  }
  return best;
}

}  // namespace angelptm::baselines
