#ifndef ANGELPTM_SIM_PLANNER_H_
#define ANGELPTM_SIM_PLANNER_H_

#include <cstdint>

#include "model/transformer_config.h"
#include "sim/hardware.h"
#include "sim/iteration_sim.h"
#include "util/status.h"

namespace angelptm::sim {

/// A planning request: train `model` with `micro_batch` sequences per GPU on
/// `num_gpus` GPUs of `hw`-shaped servers.
struct PlanRequest {
  model::TransformerConfig model;
  int micro_batch = 1;
  HardwareConfig hw;
  int num_gpus = 8;
  /// Keep fp32 optimizer states on SSD (§6.5 extreme-scale mode).
  bool use_ssd = false;
  /// Enable the lock-free updating mechanism (Algorithm 2).
  bool lock_free = false;
  /// Micro-batch passes per iteration (gradients accumulate; the optimizer
  /// runs once per iteration). Figure 8 grows the global batch this way.
  int grad_accumulation = 1;
};

/// A planned iteration plus its memory placement summary.
struct Plan {
  IterationSpec spec;
  /// Peak scheduled GPU bytes on one rank (model states + activations).
  uint64_t peak_gpu_bytes = 0;
  /// fp32 optimizer-state bytes cached in spare GPU memory (the dynamic
  /// caching of §4.2).
  uint64_t gpu_cache_bytes = 0;
  /// Fraction of the optimizer shard updated directly on the GPU.
  double gpu_cached_fraction = 0.0;
  uint64_t cpu_bytes_per_node = 0;
  uint64_t ssd_bytes_per_node = 0;
};

/// Plans one Angel-PTM training iteration:
///  1. ZeRO-shards model states across all ranks.
///  2. Builds the page-level schedule with Algorithm 1 (real scheduler).
///  3. Dedicates leftover GPU memory to caching fp32 optimizer states,
///     moving their updates onto the GPU (dynamic caching, §4.2).
///  4. Pipelines the remaining CPU/SSD optimizer work per backward layer.
/// Returns OutOfMemory when the model cannot fit the memory hierarchy at
/// this batch size.
[[nodiscard]] util::Result<Plan> PlanAngelPtm(const PlanRequest& request);

/// Largest micro-batch for which `PlanAngelPtm` succeeds (0 = infeasible at
/// any batch). Linear+binary search capped at `max_batch`.
int MaxMicroBatchAngelPtm(PlanRequest request, int max_batch = 512);

/// Simulates a planned iteration and converts to end-to-end samples/second
/// across the whole job (num_gpus * micro_batch per iteration).
double SamplesPerSecond(const PlanRequest& request, const Plan& plan);

}  // namespace angelptm::sim

#endif  // ANGELPTM_SIM_PLANNER_H_
