#include "sim/iteration_sim.h"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <unordered_map>

#include "util/logging.h"

namespace angelptm::sim {

IterationResult SimulateIteration(const IterationSpec& spec,
                                  std::vector<TaskTiming>* timeline) {
  auto emit = [timeline](std::string name, const char* resource,
                         double start, double end) {
    if (timeline != nullptr && end > start) {
      timeline->push_back(TaskTiming{std::move(name), resource, start, end});
    }
  };
  const auto& steps = spec.sched.steps;
  const int num_steps = static_cast<int>(steps.size());
  const int world = spec.sched.world_size;
  const int passes = std::max(1, spec.grad_accumulation);

  // Execution order mirrors core::ReplaySchedule: by trigger, movements and
  // gathers ahead of the compute that shares their trigger.
  std::vector<size_t> order(spec.tasks.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (spec.tasks[a].trigger_id != spec.tasks[b].trigger_id) {
      return spec.tasks[a].trigger_id < spec.tasks[b].trigger_id;
    }
    const bool a_compute = spec.tasks[a].op == core::TaskOp::kCompute;
    const bool b_compute = spec.tasks[b].op == core::TaskOp::kCompute;
    return !a_compute && b_compute;
  });

  std::vector<OptimizerWork> work = spec.opt_work;
  std::stable_sort(work.begin(), work.end(),
                   [](const OptimizerWork& a, const OptimizerWork& b) {
                     return a.after_step < b.after_step;
                   });

  IterationResult result;
  double gpu_free = 0, pcie_free = 0, comm_free = 0, cpu_free = 0,
         ssd_free = 0;
  std::unordered_map<uint64_t, double> page_ready;  // Moved pages.
  std::vector<double> compute_done(num_steps, 0.0);

  for (int pass = 0; pass < passes; ++pass) {
    const bool last_pass = pass == passes - 1;
    const double pass_start =
        pass == 0 ? 0.0 : (num_steps > 0 ? compute_done[num_steps - 1] : 0.0);
    std::vector<double> gather_done(num_steps, 0.0);

    auto trigger_time = [&](int trigger) {
      if (trigger <= 0) return pass_start;
      const int dep = std::min(trigger - 1, num_steps - 1);
      return compute_done[dep];
    };

    for (size_t index : order) {
      const core::Task& task = spec.tasks[index];
      switch (task.op) {
        case core::TaskOp::kMoveToGpu: {
          if (pass > 0) break;  // Parameters stay cached across passes.
          const double start =
              std::max(pcie_free, trigger_time(task.trigger_id));
          const double dur = double(task.bytes) / spec.pcie_bw;
          pcie_free = start + dur;
          result.pcie_busy += dur;
          page_ready[task.page_id] = pcie_free;
          emit("move page " + std::to_string(task.page_id), "pcie", start,
               pcie_free);
          break;
        }
        case core::TaskOp::kAllGather: {
          double ready = trigger_time(task.trigger_id);
          const auto it = page_ready.find(task.page_id);
          if (it != page_ready.end()) {
            ready = std::max(ready, it->second);
          } else {
            // On-demand: the local shard crosses PCIe before the gather,
            // every pass (it is not cached).
            const double fetch_start = std::max(pcie_free, ready);
            const double fetch_dur = double(task.bytes) / spec.pcie_bw;
            pcie_free = fetch_start + fetch_dur;
            result.pcie_busy += fetch_dur;
            emit("fetch page " + std::to_string(task.page_id), "pcie",
                 fetch_start, pcie_free);
            ready = pcie_free;
          }
          const double start = std::max(comm_free, ready);
          const double dur = world <= 1
                                 ? 0.0
                                 : double(task.bytes) * (world - 1) /
                                       spec.collective_bw_per_rank;
          comm_free = start + dur;
          result.comm_busy += dur;
          emit("gather page " + std::to_string(task.page_id) + " (step " +
                   std::to_string(task.step) + ")",
               "comm", start, comm_free);
          ANGEL_CHECK(task.step >= 0 && task.step < num_steps);
          gather_done[task.step] =
              std::max(gather_done[task.step], comm_free);
          break;
        }
        case core::TaskOp::kCompute: {
          ANGEL_CHECK(task.step >= 0 && task.step < num_steps);
          double start = std::max(gpu_free, gather_done[task.step]);
          start = std::max(
              start, task.step > 0 ? compute_done[task.step - 1] : pass_start);
          if (spec.extra_comm_seconds_per_step > 0.0) {
            // Per-step collective (MoE all-to-all) on the comm stream,
            // serial with the step's compute input.
            const double comm_start = std::max(comm_free, start);
            comm_free = comm_start + spec.extra_comm_seconds_per_step;
            result.comm_busy += spec.extra_comm_seconds_per_step;
            emit("all-to-all (step " + std::to_string(task.step) + ")",
                 "comm", comm_start, comm_free);
            start = std::max(start, comm_free);
          }
          const double dur = steps[task.step].compute_seconds;
          gpu_free = start + dur;
          result.gpu_busy += dur;
          compute_done[task.step] = gpu_free;
          emit("compute step " + std::to_string(task.step), "gpu", start,
               gpu_free);
          break;
        }
      }
    }

    // Optimizer pipeline: gradients offload every pass; the state update
    // (SSD read -> CPU/GPU Adam -> SSD write -> param upload) runs once,
    // after the final accumulation pass.
    for (const OptimizerWork& w : work) {
      const double grads_at =
          (w.after_step >= 0 && w.after_step < num_steps)
              ? compute_done[w.after_step]
              : (num_steps > 0 ? compute_done[num_steps - 1] : 0.0);
      double ready = grads_at;
      if (w.grad_offload_bytes > 0) {
        const double start = std::max(pcie_free, grads_at);
        const double dur = double(w.grad_offload_bytes) / spec.pcie_bw;
        pcie_free = start + dur;
        result.pcie_busy += dur;
        emit("grad offload (step " + std::to_string(w.after_step) + ")",
             "pcie", start, pcie_free);
        ready = pcie_free;
      }
      if (!last_pass) continue;
      if (w.ssd_read_bytes > 0) {
        const double start = std::max(ssd_free, ready);
        const double dur = double(w.ssd_read_bytes) / spec.ssd_bw;
        ssd_free = start + dur;
        result.ssd_busy += dur;
        emit("ssd read (step " + std::to_string(w.after_step) + ")", "ssd",
             start, ssd_free);
        ready = ssd_free;
      }
      if (w.cpu_update_elements > 0) {
        const double start = std::max(cpu_free, ready);
        const double dur =
            double(w.cpu_update_elements) * 28.0 / spec.cpu_optimizer_bw;
        cpu_free = start + dur;
        result.cpu_busy += dur;
        emit("cpu adam (step " + std::to_string(w.after_step) + ")", "cpu",
             start, cpu_free);
        ready = cpu_free;
      }
      if (w.ssd_write_bytes > 0) {
        const double start = std::max(ssd_free, ready);
        const double dur = double(w.ssd_write_bytes) / spec.ssd_bw;
        ssd_free = start + dur;
        result.ssd_busy += dur;
        emit("ssd write (step " + std::to_string(w.after_step) + ")", "ssd",
             start, ssd_free);
      }
      if (w.param_upload_bytes > 0) {
        const double start = std::max(pcie_free, ready);
        const double dur = double(w.param_upload_bytes) / spec.pcie_bw;
        pcie_free = start + dur;
        result.pcie_busy += dur;
        emit("param upload", "pcie", start, pcie_free);
      }
      if (w.gpu_update_elements > 0) {
        const double start = std::max(gpu_free, grads_at);
        const double dur =
            double(w.gpu_update_elements) * 28.0 / spec.gpu_optimizer_bw;
        gpu_free = start + dur;
        result.gpu_busy += dur;
        emit("gpu adam (step " + std::to_string(w.after_step) + ")", "gpu",
             start, gpu_free);
      }
    }
  }

  if (timeline != nullptr) {
    std::sort(timeline->begin(), timeline->end(),
              [](const TaskTiming& a, const TaskTiming& b) {
                return a.start < b.start;
              });
  }
  result.compute_end_seconds =
      num_steps > 0 ? compute_done[num_steps - 1] : 0.0;
  const double gpu_path =
      std::max({result.compute_end_seconds, gpu_free, comm_free});
  const double full_pipeline =
      std::max({gpu_path, pcie_free, cpu_free, ssd_free});
  if (spec.lock_free) {
    // §4.3: buffered gradients/parameters decouple GPU computation from the
    // CPU/SSD updating threads; the iteration is gated by the GPU path and
    // the PCIe traffic it still needs (parameter fetches + grad offloads).
    result.iteration_seconds = std::max(gpu_path, pcie_free);
    result.optimizer_lag_seconds =
        std::max(0.0, full_pipeline - result.iteration_seconds);
  } else {
    result.iteration_seconds = full_pipeline;
    result.optimizer_lag_seconds = 0.0;
  }
  return result;
}

util::Status ExportChromeTrace(const std::vector<TaskTiming>& timeline,
                               const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return util::Status::IoError("cannot open " + path);
  }
  // Resource rows become "threads" of one process.
  const char* resources[] = {"gpu", "comm", "pcie", "cpu", "ssd"};
  std::fputs("[\n", file);
  bool first = true;
  for (int tid = 0; tid < 5; ++tid) {
    std::fprintf(file,
                 "%s{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                 "\"tid\":%d,\"args\":{\"name\":\"%s\"}}",
                 first ? "" : ",\n", tid, resources[tid]);
    first = false;
  }
  for (const TaskTiming& task : timeline) {
    int tid = 0;
    for (int i = 0; i < 5; ++i) {
      if (task.resource == resources[i]) tid = i;
    }
    std::fprintf(file,
                 ",\n{\"name\":\"%s\",\"ph\":\"X\",\"pid\":0,"
                 "\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f}",
                 task.name.c_str(), tid, task.start * 1e6,
                 (task.end - task.start) * 1e6);
  }
  std::fputs("\n]\n", file);
  if (std::fclose(file) != 0) {
    return util::Status::IoError("short write to " + path);
  }
  return util::Status::OK();
}

}  // namespace angelptm::sim
