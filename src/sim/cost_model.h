#ifndef ANGELPTM_SIM_COST_MODEL_H_
#define ANGELPTM_SIM_COST_MODEL_H_

#include <cstdint>

#include "model/transformer_config.h"
#include "sim/hardware.h"

namespace angelptm::sim {

/// Analytical FLOP and communication costs of Transformer training steps.
/// These feed the discrete-event iteration simulator; the conventions are
/// the standard ones (forward ~ 2*P FLOPs/token, backward 2x forward,
/// recompute adds one forward) plus the quadratic attention term.
class CostModel {
 public:
  CostModel(const HardwareConfig& hw, const model::TransformerConfig& config,
            const model::TrainingConfig& training)
      : hw_(hw), config_(config), training_(training) {}

  /// Parameter elements of one layer (for T5: the encoder+decoder pair; for
  /// MoE: attention plus the *activated* expert, since inactive experts do
  /// no FLOPs).
  uint64_t ActiveLayerParams() const;

  /// FLOPs of one layer's forward pass for `micro_batch` sequences.
  double LayerForwardFlops(int micro_batch) const;
  /// FLOPs of one layer's backward pass (2x forward, plus recompute).
  double LayerBackwardFlops(int micro_batch) const;

  /// Achieved FLOP rate at this micro-batch: peak efficiency scaled by a
  /// token-count saturation curve (small batches underfill tensor cores).
  double AchievedFlops(int micro_batch) const;

  /// Seconds of GPU time for the layer forward/backward on one GPU.
  double LayerForwardSeconds(int micro_batch) const;
  double LayerBackwardSeconds(int micro_batch) const;

  /// Seconds for a ring all-gather materializing `full_bytes` of parameters
  /// across `world_size` ranks (per-rank wire time).
  double AllGatherSeconds(uint64_t shard_bytes, int world_size) const;
  /// Seconds for reduce-scatter of gradients (same wire volume as gather).
  double ReduceScatterSeconds(uint64_t shard_bytes, int world_size) const;
  /// Seconds for the MoE all-to-all of `bytes_per_rank` (Fig. 9 workload):
  /// the fraction of traffic that crosses node boundaries rides the NIC.
  double AllToAllSeconds(uint64_t bytes_per_rank, int world_size) const;

  /// Seconds to move `bytes` across one GPU's PCIe link.
  double PcieSeconds(uint64_t bytes) const { return bytes / hw_.pcie_bw_per_gpu; }

  /// Seconds for the CPU of one node to Adam-update `param_elements`
  /// (touches 28 bytes/element: read p/m/v + grad, write p/m/v + fp16 p).
  double CpuAdamSeconds(uint64_t param_elements) const {
    return double(param_elements) * 28.0 / hw_.cpu_optimizer_bw_per_node;
  }
  /// Same update performed on the GPU against HBM.
  double GpuAdamSeconds(uint64_t param_elements) const {
    return double(param_elements) * 28.0 / hw_.gpu_hbm_bw;
  }
  /// Seconds of SSD traffic to read+write `param_elements` of fp32 states.
  double SsdRoundTripSeconds(uint64_t param_elements) const {
    return double(param_elements) * 24.0 / hw_.ssd_bw_per_node;
  }

  const HardwareConfig& hardware() const { return hw_; }

 private:
  HardwareConfig hw_;
  model::TransformerConfig config_;
  model::TrainingConfig training_;
};

}  // namespace angelptm::sim

#endif  // ANGELPTM_SIM_COST_MODEL_H_
