#include "sim/planner.h"

#include <algorithm>

#include "core/unified_scheduler.h"
#include "model/footprint.h"
#include "util/logging.h"
#include "util/units.h"
#include "sim/cost_model.h"

namespace angelptm::sim {
namespace {

/// Page size used for cluster-scale planning: coarser than the engine's
/// 4 MiB so schedules stay ~8 pages/layer (the scheduler's behaviour is
/// granularity-independent; this only bounds task counts).
uint64_t PlanningPageBytes(uint64_t shard_bytes_per_layer) {
  const uint64_t target = (shard_bytes_per_layer + 7) / 8;
  return std::max<uint64_t>(4 * util::kMiB,
                            util::RoundUp(target, util::kMiB));
}

}  // namespace

util::Result<Plan> PlanAngelPtm(const PlanRequest& request) {
  const auto& hw = request.hw;
  const int num_gpus = request.num_gpus;
  if (num_gpus < 1) {
    return util::Status::InvalidArgument("num_gpus must be >= 1");
  }
  const int gpus_per_node = std::min(num_gpus, hw.gpus_per_node);
  const int L = request.model.num_layers;
  const uint64_t layer_params = model::LayerParamCount(request.model);
  const uint64_t total_params = uint64_t(L) * layer_params;

  model::TrainingConfig training;
  training.micro_batch = request.micro_batch;
  training.recompute_activations = true;
  const CostModel cost(hw, request.model, training);

  // ZeRO: every rank owns 1/G of each layer's states (§3.2).
  const uint64_t shard_fp16_layer = 2 * layer_params / num_gpus;
  const uint64_t page_bytes = PlanningPageBytes(shard_fp16_layer);
  const size_t pages_per_layer =
      std::max<size_t>(1, (shard_fp16_layer + page_bytes - 1) / page_bytes);

  // Activation geometry (Table 1 closed forms; recompute keeps only the
  // per-layer boundary tensor alive across steps).
  const uint64_t b = request.micro_batch, s = request.model.seq_len;
  const uint64_t dm = request.model.d_model, dffn = request.model.d_ffn;
  uint64_t layer_acts = 40 * b * s * dm + 8 * b * s * dffn;
  if (request.model.family != model::ModelFamily::kGpt) layer_acts *= 2;
  const uint64_t boundary_act = 2 * b * s * dm;

  core::ScheduleInput input;
  input.world_size = num_gpus;
  input.gpu_memory_budget = hw.GpuUsableBytes();
  uint64_t next_page_id = 0;
  std::vector<std::vector<core::PageRef>> layer_pages(L);
  for (int l = 0; l < L; ++l) {
    uint64_t remaining = shard_fp16_layer;
    for (size_t p = 0; p < pages_per_layer; ++p) {
      const uint64_t bytes = std::min<uint64_t>(remaining, page_bytes);
      layer_pages[l].push_back({next_page_id++, std::max<uint64_t>(bytes, 1)});
      remaining -= std::min<uint64_t>(remaining, page_bytes);
    }
  }
  for (int l = 0; l < L; ++l) {
    core::SchedStep step;
    step.param_pages = layer_pages[l];
    step.workspace_bytes = layer_acts / 2;  // Forward: no grad activations.
    step.retained_bytes = int64_t(boundary_act);
    step.compute_seconds = cost.LayerForwardSeconds(request.micro_batch);
    input.steps.push_back(step);
  }
  for (int l = L - 1; l >= 0; --l) {
    core::SchedStep step;
    step.param_pages = layer_pages[l];
    step.workspace_bytes = layer_acts;  // Recompute + gradient activations.
    step.retained_bytes = -int64_t(boundary_act);
    step.compute_seconds = cost.LayerBackwardSeconds(request.micro_batch);
    input.steps.push_back(step);
  }

  // Dynamic caching (§4.2): spare GPU memory can either prefetch fp16 shard
  // pages (handled inside Algorithm 1) or cache fp32 optimizer states so
  // their updates run on the GPU. Find the minimum budget the schedule needs
  // at all, then treat the rest as a cache/overlap trade-off decided below
  // by simulated throughput (the capacity-maximal split is always among the
  // candidates, so feasibility is never sacrificed).
  ANGEL_RETURN_IF_ERROR(core::BuildSchedule(input).status());
  uint64_t lo = 0, hi = input.gpu_memory_budget;
  while (hi - lo > 256 * util::kMiB) {
    const uint64_t mid = lo + (hi - lo) / 2;
    core::ScheduleInput probe = input;
    probe.gpu_memory_budget = mid;
    (core::BuildSchedule(probe).ok() ? hi : lo) = mid;
  }
  const uint64_t min_budget = hi;
  const uint64_t slack = input.gpu_memory_budget - min_budget;
  const uint64_t optim_shard_bytes = 12 * total_params / num_gpus;

  const uint64_t params_per_rank = total_params / num_gpus;
  const uint64_t params_per_node = params_per_rank * gpus_per_node;

  /// Assembles a full plan with `cache_bytes` of fp32 states cached on the
  /// GPU (and the rest of the budget given to the scheduler).
  auto assemble = [&](uint64_t cache_bytes) -> util::Result<Plan> {
    core::ScheduleInput candidate = input;
    candidate.gpu_memory_budget = hw.GpuUsableBytes() - cache_bytes;
    ANGEL_ASSIGN_OR_RETURN(core::Schedule schedule,
                           core::BuildSchedule(candidate));
    const double cached_fraction =
        optim_shard_bytes == 0
            ? 0.0
            : double(cache_bytes) / double(optim_shard_bytes);

    // Host/SSD capacity checks (per node). Unlike a static partitioner,
    // Angel-PTM's dynamic management keeps part of the model states
    // resident in spare GPU memory — both the fp32 cache and the prefetched
    // fp16 shard pages — shrinking the host requirement (the Table 5
    // behaviour: "moves partial model states into GPU memory to achieve
    // larger model scale").
    uint64_t prefetched_fp16_bytes = 0;
    for (const core::Task& task : schedule.tasks) {
      if (task.op == core::TaskOp::kMoveToGpu) {
        prefetched_fp16_bytes += task.bytes;
      }
    }
    const uint64_t gpu_state_bytes_node =
        (cache_bytes + prefetched_fp16_bytes) * gpus_per_node;
    uint64_t cpu_bytes_node, ssd_bytes_node = 0;
    if (request.use_ssd) {
      // §6.5: fp32 master states live on SSD; the CPU holds the fp16
      // parameter/gradient buffers of the lock-free mechanism.
      ssd_bytes_node = 12 * params_per_node;
      const uint64_t fp16_bytes_node = 4 * params_per_node;
      cpu_bytes_node =
          fp16_bytes_node -
          std::min(fp16_bytes_node,
                   prefetched_fp16_bytes * uint64_t(gpus_per_node));
      if (ssd_bytes_node > hw.ssd_capacity_bytes) {
        return util::Status::OutOfMemory(
            "SSD tier needs " + util::FormatBytes(ssd_bytes_node) +
            " but has " + util::FormatBytes(hw.ssd_capacity_bytes));
      }
    } else {
      const uint64_t total_state_node = 16 * params_per_node;
      cpu_bytes_node = total_state_node -
                       std::min(total_state_node, gpu_state_bytes_node);
    }
    if (cpu_bytes_node > hw.cpu_usable_bytes) {
      return util::Status::OutOfMemory(
          "CPU tier needs " + util::FormatBytes(cpu_bytes_node) +
          " but has " + util::FormatBytes(hw.cpu_usable_bytes));
    }

    Plan plan;
    plan.spec.sched = candidate;
    plan.spec.tasks = std::move(schedule.tasks);
    plan.peak_gpu_bytes = schedule.peak_gpu_bytes + cache_bytes;
    plan.gpu_cache_bytes = cache_bytes;
    plan.gpu_cached_fraction = cached_fraction;
    plan.cpu_bytes_per_node = cpu_bytes_node;
    plan.ssd_bytes_per_node = ssd_bytes_node;

    // Optimizer pipeline: one work item per layer, runnable as soon as that
    // layer's backward completes (fine-grained overlap, unlike a
    // synchronous trailing step()).
    const uint64_t elements_rank = layer_params / num_gpus;
    for (int l = 0; l < L; ++l) {
      OptimizerWork work;
      work.after_step = 2 * L - 1 - l;
      work.gpu_update_elements =
          uint64_t(cached_fraction * double(elements_rank));
      const uint64_t cpu_elements_rank =
          elements_rank - work.gpu_update_elements;
      work.cpu_update_elements = cpu_elements_rank * gpus_per_node;
      work.grad_offload_bytes = 2 * cpu_elements_rank;
      if (request.use_ssd) {
        work.ssd_read_bytes = 12 * work.cpu_update_elements;
        work.ssd_write_bytes = 12 * work.cpu_update_elements;
      }
      plan.spec.opt_work.push_back(work);
    }

    plan.spec.pcie_bw = hw.pcie_bw_per_gpu;
    plan.spec.collective_bw_per_rank = hw.CollectiveBwPerRank(num_gpus);
    plan.spec.cpu_optimizer_bw = hw.cpu_optimizer_bw_per_node;
    plan.spec.gpu_optimizer_bw = hw.gpu_hbm_bw;
    plan.spec.ssd_bw = hw.ssd_bw_per_node;
    plan.spec.lock_free = request.lock_free;
    plan.spec.grad_accumulation = request.grad_accumulation;
    return plan;
  };

  // Evaluate a few cache/overlap splits by simulated throughput. The
  // capacity-maximal split (all slack to the fp32 cache) is included, so a
  // model that only fits with maximal caching is still planned. In SSD mode
  // the fp32 states live on the SSD by design (§6.5) and are not cached.
  const uint64_t max_cache =
      request.use_ssd ? 0 : std::min<uint64_t>(slack, optim_shard_bytes);
  util::Status last_error = util::Status::OutOfMemory("no feasible plan");
  bool have_best = false;
  Plan best;
  double best_throughput = -1.0;
  for (const double fraction : {1.0, 0.75, 0.5, 0.25, 0.0}) {
    const auto candidate = assemble(uint64_t(fraction * double(max_cache)));
    if (!candidate.ok()) {
      last_error = candidate.status();
      continue;
    }
    const IterationResult result = SimulateIteration(candidate->spec);
    const double throughput =
        result.iteration_seconds > 0 ? 1.0 / result.iteration_seconds : 0.0;
    if (throughput > best_throughput) {
      best_throughput = throughput;
      best = *candidate;
      have_best = true;
    }
  }
  if (!have_best) return last_error;
  return best;
}

int MaxMicroBatchAngelPtm(PlanRequest request, int max_batch) {
  auto feasible = [&](int batch) {
    request.micro_batch = batch;
    return PlanAngelPtm(request).ok();
  };
  if (!feasible(1)) return 0;
  int low = 1, high = 2;
  while (high <= max_batch && feasible(high)) {
    low = high;
    high *= 2;
  }
  high = std::min(high, max_batch + 1);
  // Invariant: feasible(low), !feasible(high) (or high > max_batch).
  while (low + 1 < high) {
    const int mid = low + (high - low) / 2;
    (feasible(mid) ? low : high) = mid;
  }
  return low;
}

double SamplesPerSecond(const PlanRequest& request, const Plan& plan) {
  const IterationResult result = SimulateIteration(plan.spec);
  if (result.iteration_seconds <= 0.0) return 0.0;
  return double(request.num_gpus) * request.micro_batch /
         result.iteration_seconds;
}

}  // namespace angelptm::sim
