#ifndef ANGELPTM_SIM_ITERATION_SIM_H_
#define ANGELPTM_SIM_ITERATION_SIM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/schedule.h"
#include "util/status.h"

namespace angelptm::sim {

/// Optimizer work produced by one backward step, per rank / per node.
struct OptimizerWork {
  /// The compute step whose completion makes this work runnable.
  int after_step = 0;
  /// fp16 gradient bytes offloaded GPU->CPU over this rank's PCIe link.
  uint64_t grad_offload_bytes = 0;
  /// Parameter elements Adam-updated on this node's CPUs (node aggregate).
  uint64_t cpu_update_elements = 0;
  /// Parameter elements updated directly on the GPU (cached states).
  uint64_t gpu_update_elements = 0;
  /// fp32 state bytes read from / written to SSD for this work (node
  /// aggregate; 0 when the SSD tier is unused).
  uint64_t ssd_read_bytes = 0;
  uint64_t ssd_write_bytes = 0;
  /// Updated fp16 parameter bytes pushed back GPU-ward over PCIe after the
  /// CPU update (used by baselines whose fp16 master copy lives on the GPU;
  /// Angel-PTM's next-iteration moves cover this instead).
  uint64_t param_upload_bytes = 0;
};

/// A fully planned training iteration for one representative rank: the
/// unified schedule plus the optimizer pipeline and the link speeds to
/// execute them against.
struct IterationSpec {
  core::ScheduleInput sched;
  std::vector<core::Task> tasks;
  std::vector<OptimizerWork> opt_work;

  /// Extra per-step communication charged to the collective stream beyond
  /// parameter gathers (e.g. the MoE all-to-all), in seconds per step.
  double extra_comm_seconds_per_step = 0.0;

  // Link speeds (bytes/second).
  double pcie_bw = 32e9;
  double collective_bw_per_rank = 200e9;
  double cpu_optimizer_bw = 60e9;   // Touches 28 B/element.
  double gpu_optimizer_bw = 600e9;  // HBM-bound update.
  double ssd_bw = 3.5e9;

  /// Lock-free updating (§4.3): the CPU/SSD optimizer pipeline is decoupled
  /// from the GPU's critical path; iteration time excludes it.
  bool lock_free = false;

  /// Gradient accumulation: the compute/gather schedule runs this many
  /// micro-batch passes per iteration (movements only once — parameters stay
  /// cached), gradients offload every pass, and the CPU/SSD optimizer work
  /// runs once after the last pass. Figure 8's growing global batch uses
  /// this to amortize the optimizer across more samples.
  int grad_accumulation = 1;
};

/// One executed task on the simulated timeline (for trace export).
struct TaskTiming {
  std::string name;      // "compute step 3", "move page 17", ...
  std::string resource;  // "gpu", "pcie", "comm", "cpu", "ssd".
  double start = 0.0;
  double end = 0.0;
};

/// Outcome of simulating one iteration.
struct IterationResult {
  double iteration_seconds = 0.0;
  /// When the last compute finished (the pure GPU path).
  double compute_end_seconds = 0.0;
  /// How far the optimizer pipeline runs past the iteration end under
  /// lock-free mode (the staleness the mechanism trades for throughput);
  /// 0 in synchronous mode.
  double optimizer_lag_seconds = 0.0;

  // Busy time per resource.
  double gpu_busy = 0.0;
  double pcie_busy = 0.0;
  double comm_busy = 0.0;
  double cpu_busy = 0.0;
  double ssd_busy = 0.0;

  double GpuIdleFraction() const {
    return iteration_seconds <= 0.0
               ? 0.0
               : 1.0 - gpu_busy / iteration_seconds;
  }
};

/// Executes the schedule on a resource timeline model: one GPU compute
/// stream, one PCIe link, one collective stream, the node's CPU optimizer
/// and the node's SSD. Tasks start no earlier than their trigger (the
/// completion of compute step trigger_id-1) and serialize on their resource.
/// On-demand gathers (pages never moved) pay an extra PCIe fetch first, the
/// behaviour Algorithm 1's wait-stack creates under memory pressure.
/// When `timeline` is non-null, every simulated task's start/end lands in
/// it (sorted by start time) — feed to ExportChromeTrace for visualization.
IterationResult SimulateIteration(const IterationSpec& spec,
                                  std::vector<TaskTiming>* timeline = nullptr);

/// Writes a Chrome tracing JSON (chrome://tracing / Perfetto) with one row
/// per resource, so the scheduler's overlap is visible at a glance.
[[nodiscard]] util::Status ExportChromeTrace(const std::vector<TaskTiming>& timeline,
                               const std::string& path);

}  // namespace angelptm::sim

#endif  // ANGELPTM_SIM_ITERATION_SIM_H_
