#include "sim/cluster_queue.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>

#include "util/logging.h"

namespace angelptm::sim {
namespace {

struct Job {
  double arrival_hours;
  double service_hours;
  int gpus;
};

struct Completion {
  double time;
  int gpus;
  bool operator>(const Completion& other) const { return time > other.time; }
};

double Exponential(util::Rng* rng, double mean) {
  double u = rng->NextDouble();
  while (u <= 1e-12) u = rng->NextDouble();
  return -mean * std::log(u);
}

}  // namespace

ClusterQueueResult SimulateClusterQueue(const ClusterQueueConfig& config) {
  ANGEL_CHECK(config.total_gpus > 0);
  ANGEL_CHECK(config.gpus_per_finetune_job <= config.total_gpus);
  ANGEL_CHECK(config.gpus_per_pretrain_job <= config.total_gpus);
  util::Rng rng(config.seed);

  // Generate the arrival stream.
  std::vector<Job> jobs;
  jobs.reserve(config.num_jobs);
  double clock = 0.0;
  for (int i = 0; i < config.num_jobs; ++i) {
    clock += Exponential(&rng, 1.0 / config.arrivals_per_hour);
    const bool finetune = rng.NextDouble() < config.finetune_fraction;
    Job job;
    job.arrival_hours = clock;
    job.gpus = finetune ? config.gpus_per_finetune_job
                        : config.gpus_per_pretrain_job;
    job.service_hours = Exponential(
        &rng,
        finetune ? config.finetune_hours_mean : config.pretrain_hours_mean);
    jobs.push_back(job);
  }

  // FIFO admission over a single GPU pool.
  std::priority_queue<Completion, std::vector<Completion>,
                      std::greater<Completion>>
      running;
  int free_gpus = config.total_gpus;
  double now = 0.0;
  double busy_gpu_hours = 0.0;
  std::vector<double> waits, finetune_waits;
  size_t next_job = 0;
  std::deque<Job> queue;

  while (next_job < jobs.size() || !queue.empty() || !running.empty()) {
    // Advance to the next event: an arrival or a completion.
    const double next_arrival = next_job < jobs.size()
                                    ? jobs[next_job].arrival_hours
                                    : 1e300;
    const double next_completion =
        running.empty() ? 1e300 : running.top().time;
    now = std::min(next_arrival, next_completion);
    if (next_arrival <= next_completion && next_job < jobs.size()) {
      queue.push_back(jobs[next_job++]);
    } else if (!running.empty()) {
      free_gpus += running.top().gpus;
      running.pop();
    }
    // Strict FIFO: admit from the head while it fits.
    while (!queue.empty() && queue.front().gpus <= free_gpus) {
      const Job job = queue.front();
      queue.pop_front();
      const double wait = now - job.arrival_hours;
      waits.push_back(wait);
      if (job.gpus == config.gpus_per_finetune_job) {
        finetune_waits.push_back(wait);
      }
      free_gpus -= job.gpus;
      busy_gpu_hours += double(job.gpus) * job.service_hours;
      running.push({now + job.service_hours, job.gpus});
    }
  }

  ClusterQueueResult result;
  result.jobs_completed = int(waits.size());
  if (!waits.empty()) {
    double sum = 0;
    for (double w : waits) sum += w;
    result.mean_wait_hours = sum / waits.size();
    std::sort(waits.begin(), waits.end());
    result.p95_wait_hours = waits[size_t(0.95 * (waits.size() - 1))];
    result.max_wait_hours = waits.back();
  }
  if (!finetune_waits.empty()) {
    double sum = 0;
    for (double w : finetune_waits) sum += w;
    result.mean_finetune_wait_hours = sum / finetune_waits.size();
  }
  if (now > 0) {
    result.gpu_utilization =
        busy_gpu_hours / (double(config.total_gpus) * now);
  }
  return result;
}

}  // namespace angelptm::sim
