#ifndef ANGELPTM_SIM_HARDWARE_H_
#define ANGELPTM_SIM_HARDWARE_H_

#include <cstdint>
#include <string>

#include "util/units.h"

namespace angelptm::sim {

/// Hardware description of one GPU server and its cluster fabric, defaulted
/// to the paper's A100 server (Table 3 and §4.3):
///   - 8x A100-40GB, NVLink-3.0 (GPU-GPU 200 GB/s effective)
///   - GPU HBM 600 GB/s (the paper's quoted access speed)
///   - PCIe CPU<->GPU 32 GB/s per GPU
///   - 16x 12.5 GB/s RoCE NICs = 200 GB/s per node
///   - SSD 3.5 GB/s, 11 TB
///   - 4x AMD EPYC 48-core, 1 TiB DDR4
///
/// The last three fields are calibration constants for the capacity model
/// (documented in DESIGN.md §1): a static offloading baseline is limited by
/// the pinned-host allocation it can hold, while Angel-PTM's own paged
/// allocator addresses the full usable host memory.
struct HardwareConfig {
  int gpus_per_node = 8;

  // --- Capacities ---
  uint64_t gpu_memory_bytes = 40ull * util::kGiB;
  /// Framework/runtime reservation per GPU (kernels, fragmentation slack).
  uint64_t gpu_reserved_bytes = 2ull * util::kGiB;
  uint64_t cpu_memory_bytes = 1024ull * util::kGiB;
  uint64_t ssd_capacity_bytes = 11ull * 1000 * 1000 * 1000 * 1000;  // 11 TB

  // --- Speeds (bytes/second unless noted) ---
  double gpu_peak_flops = 312e12;        // A100 BF16 tensor core peak.
  /// Achieved fraction of peak at large batch; small per-GPU token counts
  /// underutilize the tensor cores (see gpu_efficiency_half_tokens).
  double gpu_flops_efficiency = 0.42;
  /// Tokens per GPU at which achieved efficiency reaches half of
  /// gpu_flops_efficiency: eff(tokens) = max_eff * tokens/(tokens + half).
  /// This is why larger feasible micro-batches (Table 5: Angel 38/50 vs
  /// DeepSpeed 36/32) translate into higher samples/s.
  double gpu_efficiency_half_tokens = 8192;
  /// Fraction of GPU memory a tensor-granular caching allocator loses to
  /// fragmentation under offloading churn (§3.2/§4.1: the motivation for
  /// the Page abstraction). Applies to the DeepSpeed-like baseline; the
  /// page-based allocator has zero external fragmentation by construction.
  double baseline_fragmentation = 0.20;
  double gpu_hbm_bw = 600e9;             // §4.3: GPU memory access speed.
  double nvlink_bw_per_gpu = 200e9;      // §4.3: GPU-GPU communication.
  double pcie_bw_per_gpu = 32e9;         // §4.3: CPU-GPU transfer.
  double nic_bw_per_node = 200e9;        // 16 x 12.5 GB/s RoCE.
  double ssd_bw_per_node = 3.5e9;        // §4.3: SSD-CPU transfer.
  /// Effective streaming bandwidth of the CPU sockets running Adam (memory
  /// bound; 8-channel DDR4-2933 per socket x 4 sockets, ~80% efficiency;
  /// Angel's page-level updates stream straight through its pre-allocated
  /// arenas). Baselines that stage through pinned buffers see half of this
  /// (extra copy per element).
  double cpu_optimizer_bw_per_node = 300e9;
  /// Per-peer message setup cost of an all-to-all (seconds). With N ranks
  /// each rank exchanges N-1 messages whose size shrinks as 1/N, so at
  /// large N the collective becomes latency-bound — the effect that makes
  /// T5-MoE scale sub-linearly (Figure 9).
  double alltoall_latency_per_peer = 6e-6;

  // --- Capacity-model calibration (DESIGN.md §1) ---
  /// Pinned host memory a static partitioner (DeepSpeed-like) can dedicate
  /// to model states. 350 GB reproduces the paper's observed ceilings: 28B
  /// on one server (12 B/param of fp32 optimizer states) while 120B still
  /// fits 4 servers (Figure 7).
  uint64_t cpu_pinned_limit_bytes = 350ull * 1000 * 1000 * 1000;
  /// Host memory Angel-PTM's pre-allocated page arenas can address (full
  /// RAM minus OS/runtime/activation staging).
  uint64_t cpu_usable_bytes = 620ull * 1000 * 1000 * 1000;

  double GpuEffectiveFlops() const {
    return gpu_peak_flops * gpu_flops_efficiency;
  }
  uint64_t GpuUsableBytes() const {
    return gpu_memory_bytes - gpu_reserved_bytes;
  }
  /// Effective per-rank collective bandwidth for a ring spanning
  /// `world_size` GPUs: NVLink inside a node, NIC-limited across nodes.
  double CollectiveBwPerRank(int world_size) const {
    if (world_size <= gpus_per_node) return nvlink_bw_per_gpu;
    return nic_bw_per_node / gpus_per_node;
  }
};

/// The paper's production server (Table 3).
HardwareConfig PaperServer();

/// Human-readable summary printed by the benchmark harness.
std::string DescribeHardware(const HardwareConfig& hw);

}  // namespace angelptm::sim

#endif  // ANGELPTM_SIM_HARDWARE_H_
