#ifndef ANGELPTM_SIM_CLUSTER_QUEUE_H_
#define ANGELPTM_SIM_CLUSTER_QUEUE_H_

#include <cstdint>
#include <vector>

#include "util/random.h"

namespace angelptm::sim {

/// Discrete-event simulation of the multi-tenant cluster queue of §3.1:
/// fine-tuning jobs are ~90% of submissions, need GPUs for a few hours, and
/// "waiting times up to several hours ... severely hinder the development
/// of productive applications". Hierarchical memory shrinks the GPUs each
/// job needs, so the same cluster runs more jobs concurrently and queue
/// waits collapse — the quantitative version of the paper's motivation for
/// building Angel-PTM.
struct ClusterQueueConfig {
  int total_gpus = 512;
  /// Jobs per hour (Poisson arrivals).
  double arrivals_per_hour = 12.0;
  double finetune_fraction = 0.9;
  /// GPUs one fine-tuning job needs on this system (the knob hierarchical
  /// memory turns: e.g. 32 without offloading vs 8 with Angel-PTM).
  int gpus_per_finetune_job = 32;
  int gpus_per_pretrain_job = 256;
  /// Service times (hours), exponential around these means.
  double finetune_hours_mean = 3.0;
  double pretrain_hours_mean = 72.0;
  int num_jobs = 500;
  uint64_t seed = 17;
};

struct ClusterQueueResult {
  double mean_wait_hours = 0.0;
  double p95_wait_hours = 0.0;
  double max_wait_hours = 0.0;
  double mean_finetune_wait_hours = 0.0;
  double gpu_utilization = 0.0;  // Busy GPU-hours / capacity GPU-hours.
  int jobs_completed = 0;
};

/// Runs the queue to completion (FIFO admission: a job waits until its full
/// GPU allocation is free; smaller jobs never jump the queue, matching the
/// platform's fairness policy).
ClusterQueueResult SimulateClusterQueue(const ClusterQueueConfig& config);

}  // namespace angelptm::sim

#endif  // ANGELPTM_SIM_CLUSTER_QUEUE_H_
