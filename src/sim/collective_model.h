#ifndef ANGELPTM_SIM_COLLECTIVE_MODEL_H_
#define ANGELPTM_SIM_COLLECTIVE_MODEL_H_

#include <cstdint>

#include "sim/hardware.h"

namespace angelptm::sim {

/// Alpha-beta description of one point-to-point link of the collective
/// fabric: every message pays `latency_per_message` seconds of fixed setup
/// (syscalls, framing, scheduler wakeup) plus payload_bytes / `bandwidth`
/// of serialization time.
struct CollectiveFabric {
  double latency_per_message = 0.0;
  double bandwidth = 1.0;  // bytes/second
};

/// Calibration for dist::ProcessGroup on one host: Unix-domain stream
/// sockets between local processes. Latency is dominated by the two
/// syscalls + wakeup per message; bandwidth by memcpy through the kernel
/// socket buffer. Deliberately conservative — predictions are an upper
/// band that measured runs should beat (see bench/dist_collectives).
CollectiveFabric LocalhostLoopback();

/// The cluster fabric of a HardwareConfig for a `world_size`-rank job
/// (NVLink inside a node, NIC-limited across nodes; §4.3).
CollectiveFabric FabricFromHardware(const HardwareConfig& hw, int world_size);

/// Latency model of the HUB topology dist::ProcessGroup implements
/// (DESIGN.md §14.2): rank 0 is the root; every collective is one
/// "up" message per peer into the root, sequentially in rank order, then
/// one "down" reply per peer. The model therefore scales linearly in
/// world_size — the honest cost of the topology (a ring would amortize
/// bandwidth but lose the deterministic reduction order the bitwise
/// guarantee depends on).
///
/// All predictions are wall-clock seconds for the whole collective (every
/// rank leaves together; the hub serializes, so root time == job time).
class CollectiveModel {
 public:
  explicit CollectiveModel(const CollectiveFabric& fabric)
      : fabric_(fabric) {}

  /// One hub round: per peer, an `up_bytes` message in and a `down_bytes`
  /// reply out. world_size == 1 is free (ProcessGroup short-circuits).
  double HubRoundSeconds(int world_size, uint64_t up_bytes,
                         uint64_t down_bytes) const;

  /// All-gather of `shard_bytes` per rank: peers send their shard up, the
  /// root replies with the concatenated world_size * shard_bytes.
  double AllGatherSeconds(int world_size, uint64_t shard_bytes) const;

  /// Reduce-scatter over a `total_bytes` buffer: peers send the full
  /// buffer up, the root replies with each peer's reduced
  /// total_bytes / world_size chunk.
  double ReduceScatterSeconds(int world_size, uint64_t total_bytes) const;

  /// All-reduce of `bytes`: full buffer up, reduced full buffer down.
  double AllReduceSeconds(int world_size, uint64_t bytes) const;

  /// Empty-payload hub round.
  double BarrierSeconds(int world_size) const;

  /// Predicted collective time of one ZeRO-3 training step over layers of
  /// `param_bytes` each (fp32): per layer one all-gather of
  /// param_bytes / world_size shards and one reduce-scatter of the full
  /// gradient, plus the scalar loss all-reduce.
  double ZeroStepSeconds(int world_size, int num_layers,
                         uint64_t param_bytes_per_layer) const;

  const CollectiveFabric& fabric() const { return fabric_; }

 private:
  double MessageSeconds(uint64_t bytes) const;

  CollectiveFabric fabric_;
};

}  // namespace angelptm::sim

#endif  // ANGELPTM_SIM_COLLECTIVE_MODEL_H_
