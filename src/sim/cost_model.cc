#include "sim/cost_model.h"

namespace angelptm::sim {

uint64_t CostModel::ActiveLayerParams() const {
  const uint64_t dm = config_.d_model, dffn = config_.d_ffn;
  switch (config_.family) {
    case model::ModelFamily::kGpt:
      return 4 * dm * dm + 2 * dm * dffn;
    case model::ModelFamily::kT5:
      // Encoder block + decoder block (with cross-attention).
      return 12 * dm * dm + 4 * dm * dffn;
    case model::ModelFamily::kT5Moe:
      // Attention plus the single routed expert per token (top-1 routing).
      return 4 * dm * dm + 2 * dm * dffn;
  }
  return 0;
}

double CostModel::LayerForwardFlops(int micro_batch) const {
  const double tokens = double(micro_batch) * config_.seq_len;
  // 2 FLOPs per parameter per token for the matmuls, plus the quadratic
  // attention term: 2 * s * d for QK^T and another for scores*V.
  const double matmul = 2.0 * ActiveLayerParams() * tokens;
  const double attention =
      4.0 * tokens * double(config_.seq_len) * config_.d_model;
  return matmul + attention;
}

double CostModel::LayerBackwardFlops(int micro_batch) const {
  const double fwd = LayerForwardFlops(micro_batch);
  return training_.recompute_activations ? 3.0 * fwd : 2.0 * fwd;
}

double CostModel::AchievedFlops(int micro_batch) const {
  const double tokens = double(micro_batch) * config_.seq_len;
  const double saturation =
      tokens / (tokens + hw_.gpu_efficiency_half_tokens);
  return hw_.GpuEffectiveFlops() * saturation;
}

double CostModel::LayerForwardSeconds(int micro_batch) const {
  return LayerForwardFlops(micro_batch) / AchievedFlops(micro_batch);
}

double CostModel::LayerBackwardSeconds(int micro_batch) const {
  return LayerBackwardFlops(micro_batch) / AchievedFlops(micro_batch);
}

double CostModel::AllGatherSeconds(uint64_t shard_bytes,
                                   int world_size) const {
  if (world_size <= 1) return 0.0;
  // Ring all-gather: each rank receives (N-1) shards.
  const double wire_bytes = double(shard_bytes) * (world_size - 1);
  return wire_bytes / hw_.CollectiveBwPerRank(world_size);
}

double CostModel::ReduceScatterSeconds(uint64_t shard_bytes,
                                       int world_size) const {
  return AllGatherSeconds(shard_bytes, world_size);
}

double CostModel::AllToAllSeconds(uint64_t bytes_per_rank,
                                  int world_size) const {
  if (world_size <= 1) return 0.0;
  const int nodes = (world_size + hw_.gpus_per_node - 1) / hw_.gpus_per_node;
  // Fraction of each rank's traffic that leaves its node.
  const double cross_fraction =
      nodes <= 1 ? 0.0 : double(world_size - hw_.gpus_per_node) / world_size;
  const double intra = double(bytes_per_rank) * (1.0 - cross_fraction) /
                       hw_.nvlink_bw_per_gpu;
  const double inter = double(bytes_per_rank) * cross_fraction /
                       (hw_.nic_bw_per_node / hw_.gpus_per_node);
  // Per-peer message setup: each rank exchanges world_size-1 messages.
  const double latency =
      double(world_size - 1) * hw_.alltoall_latency_per_peer;
  return intra + inter + latency;
}

}  // namespace angelptm::sim
