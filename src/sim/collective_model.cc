#include "sim/collective_model.h"

namespace angelptm::sim {

CollectiveFabric LocalhostLoopback() {
  CollectiveFabric fabric;
  // ~2 syscalls + futex wakeup per framed message on an unloaded host;
  // kernel-buffer memcpy streams at a few GB/s. Both chosen at the slow
  // edge of what loopback sockets do, so the model brackets real runs
  // from above even on a busy CI machine.
  fabric.latency_per_message = 50e-6;
  fabric.bandwidth = 1.5e9;
  return fabric;
}

CollectiveFabric FabricFromHardware(const HardwareConfig& hw,
                                    int world_size) {
  CollectiveFabric fabric;
  fabric.latency_per_message = hw.alltoall_latency_per_peer;
  fabric.bandwidth = hw.CollectiveBwPerRank(world_size);
  return fabric;
}

double CollectiveModel::MessageSeconds(uint64_t bytes) const {
  return fabric_.latency_per_message + double(bytes) / fabric_.bandwidth;
}

double CollectiveModel::HubRoundSeconds(int world_size, uint64_t up_bytes,
                                        uint64_t down_bytes) const {
  if (world_size <= 1) return 0.0;
  const int peers = world_size - 1;
  return peers * (MessageSeconds(up_bytes) + MessageSeconds(down_bytes));
}

double CollectiveModel::AllGatherSeconds(int world_size,
                                         uint64_t shard_bytes) const {
  return HubRoundSeconds(world_size, shard_bytes,
                         uint64_t(world_size) * shard_bytes);
}

double CollectiveModel::ReduceScatterSeconds(int world_size,
                                             uint64_t total_bytes) const {
  if (world_size <= 1) return 0.0;
  return HubRoundSeconds(world_size, total_bytes,
                         total_bytes / uint64_t(world_size));
}

double CollectiveModel::AllReduceSeconds(int world_size,
                                         uint64_t bytes) const {
  return HubRoundSeconds(world_size, bytes, bytes);
}

double CollectiveModel::BarrierSeconds(int world_size) const {
  return HubRoundSeconds(world_size, 0, 0);
}

double CollectiveModel::ZeroStepSeconds(
    int world_size, int num_layers, uint64_t param_bytes_per_layer) const {
  if (world_size <= 1) return 0.0;
  // Pad the shard the way ShardedDataParallel does (ceil division).
  const uint64_t shard_bytes =
      (param_bytes_per_layer + world_size - 1) / world_size;
  const uint64_t padded_bytes = shard_bytes * uint64_t(world_size);
  double total = 0.0;
  total += num_layers * AllGatherSeconds(world_size, shard_bytes);
  total += num_layers * ReduceScatterSeconds(world_size, padded_bytes);
  total += AllReduceSeconds(world_size, sizeof(float));
  return total;
}

}  // namespace angelptm::sim
