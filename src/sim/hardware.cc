#include "sim/hardware.h"

#include <sstream>

namespace angelptm::sim {

HardwareConfig PaperServer() { return HardwareConfig{}; }

std::string DescribeHardware(const HardwareConfig& hw) {
  std::ostringstream os;
  os << "Server: " << hw.gpus_per_node << "x A100-"
     << hw.gpu_memory_bytes / util::kGiB << "GiB"
     << " | HBM " << hw.gpu_hbm_bw / 1e9 << " GB/s"
     << " | NVLink " << hw.nvlink_bw_per_gpu / 1e9 << " GB/s"
     << " | PCIe " << hw.pcie_bw_per_gpu / 1e9 << " GB/s"
     << " | NIC " << hw.nic_bw_per_node / 1e9 << " GB/s/node"
     << " | SSD " << hw.ssd_bw_per_node / 1e9 << " GB/s"
     << " | CPU RAM " << hw.cpu_memory_bytes / util::kGiB << " GiB";
  return os.str();
}

}  // namespace angelptm::sim
