#include "core/allocator.h"

#include <algorithm>
#include <string>

#include "util/logging.h"

namespace angelptm::core {

Allocator::Allocator(mem::HierarchicalMemory* memory) : memory_(memory) {}

Allocator::~Allocator() {
  // Live tensors at teardown are released so their frames return to tiers.
  util::MutexLock lock(mutex_);
  for (auto& [id, tensor] : tensors_) {
    for (mem::Page* page : tensor->pages()) {
      (void)page->Release(id);
      if (page->IsEmpty()) {
        ForgetOpenPage(page);
        (void)memory_->DestroyPage(page);
      }
    }
  }
  tensors_.clear();
}

util::Result<Tensor*> Allocator::Allocate(std::vector<size_t> shape,
                                          DType dtype,
                                          mem::DeviceKind device,
                                          uint64_t group) {
  size_t elements = 1;
  for (size_t d : shape) elements *= d;
  if (elements == 0) {
    return util::Status::InvalidArgument("tensor with zero elements");
  }
  util::MutexLock lock(mutex_);
  auto tensor =
      std::make_unique<Tensor>(next_tensor_id_++, std::move(shape), dtype);
  Tensor* raw = tensor.get();
  ANGEL_RETURN_IF_ERROR(AllocatePagesLocked(raw, device, group));
  allocated_bytes_ += raw->SizeBytes();
  tensors_.emplace(raw->id(), std::move(tensor));
  return raw;
}

util::Status Allocator::AllocatePagesLocked(Tensor* tensor,
                                            mem::DeviceKind device,
                                            uint64_t group) {
  const size_t page_bytes = memory_->page_bytes();
  const size_t total = tensor->SizeBytes();
  const size_t full_pages = total / page_bytes;
  const size_t tail = total % page_bytes;

  std::vector<mem::Page*> created;
  auto rollback = [&]() ANGEL_REQUIRES(mutex_) {
    for (mem::Page* page : created) {
      (void)page->Release(tensor->id());
      if (page->IsEmpty()) {
        ForgetOpenPage(page);
        (void)memory_->DestroyPage(page);
        page_capacity_bytes_ -= page_bytes;
      }
    }
  };

  for (size_t i = 0; i < full_pages; ++i) {
    auto page = memory_->CreatePage(device);
    if (!page.ok()) {
      rollback();
      return page.status();
    }
    const util::Status alloc = (*page)->Allocate(page_bytes, tensor->id());
    if (!alloc.ok()) {
      (void)memory_->DestroyPage(*page);
      rollback();
      return alloc;
    }
    created.push_back(*page);
    page_capacity_bytes_ += page_bytes;
  }

  if (tail > 0) {
    mem::Page* tail_page = nullptr;
    bool reused_open_page = false;
    if (group != kNoGroup) {
      const auto it = open_pages_.find(OpenPageKey{device, group});
      if (it != open_pages_.end() && it->second->available_bytes() >= tail &&
          it->second->NumTensors() < mem::kMaxTensorsPerPage) {
        tail_page = it->second;
        reused_open_page = true;
      }
    }
    if (tail_page == nullptr) {
      auto page = memory_->CreatePage(device);
      if (!page.ok()) {
        rollback();
        return page.status();
      }
      tail_page = *page;
      page_capacity_bytes_ += page_bytes;
    }
    const util::Status alloc = tail_page->Allocate(tail, tensor->id());
    if (!alloc.ok()) {
      if (!reused_open_page) {
        page_capacity_bytes_ -= page_bytes;
        (void)memory_->DestroyPage(tail_page);
      }
      rollback();
      return alloc;
    }
    created.push_back(tail_page);
    // Update the open-page registry for tail sharing within the group.
    if (group != kNoGroup) {
      if (tail_page->NumTensors() >= mem::kMaxTensorsPerPage) {
        open_pages_.erase(OpenPageKey{device, group});
      } else if (!reused_open_page) {
        open_pages_[OpenPageKey{device, group}] = tail_page;
      }
    }
  }

  *tensor->mutable_pages() = std::move(created);
  return util::Status::OK();
}

util::Status Allocator::Release(Tensor* tensor) {
  if (tensor == nullptr) return util::Status::InvalidArgument("null tensor");
  util::MutexLock lock(mutex_);
  const auto it = tensors_.find(tensor->id());
  if (it == tensors_.end() || it->second.get() != tensor) {
    return util::Status::NotFound("tensor " + std::to_string(tensor->id()) +
                                  " not owned by this allocator");
  }
  for (mem::Page* page : tensor->pages()) {
    ANGEL_RETURN_IF_ERROR(page->Release(tensor->id()));
    if (page->IsEmpty()) {
      ForgetOpenPage(page);
      ANGEL_RETURN_IF_ERROR(memory_->DestroyPage(page));
      page_capacity_bytes_ -= memory_->page_bytes();
    }
  }
  allocated_bytes_ -= tensor->SizeBytes();
  tensors_.erase(it);
  return util::Status::OK();
}

util::Status Allocator::Move(Tensor* tensor, mem::DeviceKind target) {
  if (tensor == nullptr) return util::Status::InvalidArgument("null tensor");
  util::MutexLock lock(mutex_);
  for (mem::Page* page : tensor->pages()) {
    // A moved page can no longer serve as an open tail on its old tier.
    ForgetOpenPage(page);
    ANGEL_RETURN_IF_ERROR(memory_->MovePageSync(page, target));
  }
  return util::Status::OK();
}

util::Status Allocator::Merge(Tensor* tensor) {
  if (tensor == nullptr) return util::Status::InvalidArgument("null tensor");
  util::MutexLock lock(mutex_);
  if (tensor->IsContiguous()) return util::Status::OK();
  if (!tensor->IsResident()) {
    return util::Status::FailedPrecondition(
        "merge requires a memory-resident tensor");
  }
  const auto device = static_cast<mem::DeviceKind>(tensor->device_index());
  const size_t page_bytes = memory_->page_bytes();
  const size_t total = tensor->SizeBytes();
  const size_t pages_needed = (total + page_bytes - 1) / page_bytes;

  // Stage the bytes, then re-pack onto physically adjacent frames.
  std::vector<std::byte> staging(total);
  ANGEL_RETURN_IF_ERROR(tensor->CopyOut(staging.data(), total));

  ANGEL_ASSIGN_OR_RETURN(
      std::vector<mem::Page*> fresh,
      memory_->CreateContiguousPages(device, pages_needed));
  size_t remaining = total;
  for (mem::Page* page : fresh) {
    const size_t chunk = std::min(remaining, page_bytes);
    ANGEL_CHECK_OK(page->Allocate(chunk, tensor->id()));
    remaining -= chunk;
  }
  page_capacity_bytes_ += pages_needed * page_bytes;

  // Retire the old placement.
  for (mem::Page* page : tensor->pages()) {
    ANGEL_RETURN_IF_ERROR(page->Release(tensor->id()));
    if (page->IsEmpty()) {
      ForgetOpenPage(page);
      ANGEL_RETURN_IF_ERROR(memory_->DestroyPage(page));
      page_capacity_bytes_ -= page_bytes;
    }
  }
  *tensor->mutable_pages() = std::move(fresh);
  return tensor->CopyIn(staging.data(), total);
}

size_t Allocator::num_tensors() const {
  util::MutexLock lock(mutex_);
  return tensors_.size();
}

uint64_t Allocator::allocated_bytes() const {
  util::MutexLock lock(mutex_);
  return allocated_bytes_;
}

uint64_t Allocator::padding_bytes() const {
  util::MutexLock lock(mutex_);
  return page_capacity_bytes_ - allocated_bytes_;
}

void Allocator::ForgetOpenPage(const mem::Page* page) {
  for (auto it = open_pages_.begin(); it != open_pages_.end();) {
    if (it->second == page) {
      it = open_pages_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace angelptm::core
