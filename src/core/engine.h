#ifndef ANGELPTM_CORE_ENGINE_H_
#define ANGELPTM_CORE_ENGINE_H_

#include <memory>
#include <vector>

#include "core/adam.h"
#include "core/allocator.h"
#include "core/lockfree_updater.h"
#include "core/optimizer/optimizer.h"
#include "core/schedule.h"
#include "core/tracer.h"
#include "mem/copy_engine.h"
#include "mem/hierarchical_memory.h"
#include "mem/prefetch_planner.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace angelptm::core {

/// Configuration for one Engine instance (one training process / rank).
struct EngineOptions {
  mem::HierarchicalMemoryOptions memory;
  /// Update rule + hyper-parameters (core/optimizer/optimizer.h).
  OptimizerConfig optimizer;
  /// Legacy Adam knobs (see TrainerOptions::adam): non-default fields
  /// override `optimizer` via ResolveLegacyAdam. Prefer `optimizer`.
  AdamConfig adam;
  /// Enable the lock-free updating mechanism (Algorithm 2).
  bool lock_free = false;
  /// Tier holding the fp32 master states (kSsd for §6.5's extreme scale).
  mem::DeviceKind master_device = mem::DeviceKind::kCpu;
  size_t copy_threads = 2;
};

/// The training façade of Fig. 6 (`model = angelptm.initialize(model,
/// optimizer, config)`): callers register layers once, then drive steps with
/// the Use/Push protocol and the engine handles everything the paper's
/// runtime handles — staging fp16 working parameters into the fast tier,
/// tracing the first iteration to learn tensor life-times (§5 Tracer),
/// building the Algorithm-1 schedule from the trace, prefetching
/// asynchronously on later iterations, releasing working tensors after
/// their last use, and updating through the (optionally lock-free) Adam.
///
/// Step protocol, mirroring the forward/backward structure:
///
///   engine->BeginStep();
///   for l in 0..L-1:  params = engine->UseLayerParams(l); ... forward ...
///   for l in L-1..0:  params = engine->UseLayerParams(l); ... backward ...
///                     engine->PushGrads(l, grads);
///   engine->EndStep();
///
/// The first step runs in trace mode (on-demand staging); from the second
/// step on, parameter movements follow the unified schedule.
class Engine {
 public:
  [[nodiscard]] static util::Result<std::unique_ptr<Engine>> Create(
      const EngineOptions& options);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Registers a layer (its fp32 master states and fp16 buffers). Must be
  /// called before the first BeginStep.
  [[nodiscard]] util::Result<int> RegisterLayer(const std::vector<float>& initial_params);

  [[nodiscard]] util::Status BeginStep();
  /// Stores a layer's boundary activations on the hierarchical memory (as
  /// fp16, like Table 1's activation accounting): on the fast tier when
  /// room remains, spilling to the CPU tier otherwise. Call during forward;
  /// retrieve with FetchActivation during backward (§4.2's recompute flow
  /// keeps only these boundaries alive).
  [[nodiscard]] util::Status StashActivation(int layer,
                               const std::vector<float>& activations);
  /// Returns and releases a previously stashed activation.
  [[nodiscard]] util::Result<std::vector<float>> FetchActivation(int layer);
  /// Returns the layer's current fp16 working parameters (as fp32),
  /// resident on the fast tier. Each call is one access in the layer's
  /// life-time; call once per forward and once per backward.
  [[nodiscard]] util::Result<std::vector<float>> UseLayerParams(int layer);
  /// Offloads the layer's gradients (backward order). The layer's working
  /// tensor is released once its traced accesses are exhausted.
  [[nodiscard]] util::Status PushGrads(int layer, const std::vector<float>& grads);
  [[nodiscard]] util::Status EndStep();

  // --- Introspection ---
  /// The unified schedule (null until the traced first step completed).
  const Schedule* schedule() const { return schedule_.get(); }
  const Tracer& tracer() const { return tracer_; }
  LockFreeUpdater* updater() { return updater_.get(); }
  Allocator* allocator() { return allocator_.get(); }
  mem::HierarchicalMemory* memory() { return memory_.get(); }
  mem::CopyEngine* copy_engine() { return copy_engine_.get(); }

  int steps_completed() const { return steps_completed_; }
  /// Scheduled prefetches that finished before the compute needed them /
  /// accesses that had to wait or stage on demand. Every schedule-driven
  /// (post-warmup) use is counted exactly once as a hit or a wait:
  /// prefetch_hits() + prefetch_waits() == scheduled_uses().
  uint64_t prefetch_hits() const { return prefetch_hits_; }
  uint64_t prefetch_waits() const { return prefetch_waits_; }
  /// Post-warmup UseLayerParams calls (the denominator of the hit rate).
  uint64_t scheduled_uses() const { return scheduled_uses_; }
  /// Asynchronous prefetch moves that resolved with an error while their
  /// futures were settled off the issuing path (eviction scans, releases).
  /// Each such layer stays CPU-resident and recovers through the on-demand
  /// path at its next use, so these are counted, not propagated.
  uint64_t prefetch_move_failures() const { return prefetch_move_failures_; }
  /// Trace-driven access-order model: trained from the warmup step, then
  /// drives Belady-style eviction in MoveWithEviction (DESIGN.md §12).
  const mem::PrefetchPlanner& planner() const { return planner_; }

 private:
  explicit Engine(const EngineOptions& options);

  struct WorkingLayer {
    size_t count = 0;
    Tensor* tensor = nullptr;  // fp16 staging/working tensor (null = none).
    std::vector<std::future<util::Status>> pending_moves;
    int uses_this_step = 0;
    int total_uses = 0;    // Learned from the trace.
    int issue_trigger = -1;  // Earliest move trigger from the schedule.
    bool staged_this_step = false;
    Tensor* activation_stash = nullptr;  // fp16 boundary activations.
  };

  /// Creates the layer's working tensor on the CPU tier with the current
  /// buffered fp16 parameters.
  [[nodiscard]] util::Status StageWorkingTensor(int layer);
  /// Starts the asynchronous CPU->GPU movement of the layer's pages.
  [[nodiscard]] util::Status IssuePrefetch(int layer);
  /// Moves the layer's working tensor to the GPU tier, evicting other
  /// staged layers back to CPU if the tier is full. Victims are chosen by
  /// predicted next use (farthest first, never the immediately-next layer)
  /// once the planner is trained; registration order during warmup.
  [[nodiscard]] util::Status MoveWithEviction(int layer);
  /// Resolves a layer's in-flight prefetch futures, counting (not
  /// propagating) failed moves — see prefetch_move_failures().
  void SettlePendingMoves(WorkingLayer& layer);
  /// Issues every scheduled prefetch whose trigger has been reached.
  [[nodiscard]] util::Status IssueReadyPrefetches();
  [[nodiscard]] util::Status ReleaseWorkingTensor(int layer);
  [[nodiscard]] util::Status BuildScheduleFromTrace();

  EngineOptions options_;
  std::unique_ptr<mem::HierarchicalMemory> memory_;
  std::unique_ptr<Allocator> allocator_;
  std::unique_ptr<mem::CopyEngine> copy_engine_;
  std::unique_ptr<LockFreeUpdater> updater_;
  Tracer tracer_;
  std::unique_ptr<Schedule> schedule_;
  mem::PrefetchPlanner planner_;
  /// layer -> earliest move trigger, from the schedule.
  std::vector<WorkingLayer> layers_;

  bool step_active_ = false;
  int steps_completed_ = 0;
  int current_op_ = 0;
  uint64_t prefetch_hits_ = 0;
  uint64_t prefetch_waits_ = 0;
  uint64_t scheduled_uses_ = 0;
  uint64_t prefetch_move_failures_ = 0;
  obs::Counter* metric_prefetch_move_failures_ = nullptr;
};

}  // namespace angelptm::core

#endif  // ANGELPTM_CORE_ENGINE_H_
