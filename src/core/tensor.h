#ifndef ANGELPTM_CORE_TENSOR_H_
#define ANGELPTM_CORE_TENSOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/dtype.h"
#include "mem/device.h"
#include "mem/page.h"
#include "util/status.h"

namespace angelptm::core {

/// The Tensor structure of the paper's Fig. 4: a multi-dimensional array of
/// numerical data composed of one or more pages. A tensor's bytes are the
/// concatenation of its slots on `pages()` in order; the last page may be
/// shared with one other tensor of the same allocation group.
///
/// Tensors are created and destroyed exclusively by core::Allocator (which
/// implements the paper's allocate/release/move/merge interfaces); this class
/// provides the data-plane views.
class Tensor {
 public:
  Tensor(uint64_t id, std::vector<size_t> shape, DType dtype)
      : id_(id), shape_(std::move(shape)), dtype_(dtype) {}

  Tensor(const Tensor&) = delete;
  Tensor& operator=(const Tensor&) = delete;

  uint64_t id() const { return id_; }
  const std::vector<size_t>& shape() const { return shape_; }
  DType dtype() const { return dtype_; }

  size_t NumElements() const;
  size_t SizeBytes() const { return NumElements() * DTypeBytes(dtype_); }

  /// Pages composing this tensor, in byte order.
  const std::vector<mem::Page*>& pages() const { return pages_; }

  /// The device all pages currently reside on, or kDeviceNotReady (-1) when
  /// pages are split across tiers (e.g. some still in flight) — footnote 2
  /// of the paper.
  int device_index() const;

  /// True when every page is in a directly-addressable memory tier (not SSD)
  /// on the same device.
  bool IsResident() const;

  /// True when the tensor's bytes form one contiguous host range (always
  /// true for single-page tensors; multi-page tensors need Allocator::Merge).
  bool IsContiguous() const;

  /// Direct pointer to the tensor's bytes; requires IsResident() and
  /// IsContiguous(). Aborts otherwise (programming error).
  std::byte* data();
  const std::byte* data() const;

  /// Gathers the tensor's bytes (resident pages, any layout) into `dst`.
  [[nodiscard]] util::Status CopyOut(std::byte* dst, size_t bytes) const;
  /// Scatters `src` into the tensor's pages.
  [[nodiscard]] util::Status CopyIn(const std::byte* src, size_t bytes);

  /// Typed convenience accessors over CopyOut/CopyIn.
  [[nodiscard]] util::Status ReadFloats(std::vector<float>* out) const;
  [[nodiscard]] util::Status WriteFloats(const std::vector<float>& values);

  // --- Allocator plumbing ---
  std::vector<mem::Page*>* mutable_pages() { return &pages_; }

 private:
  uint64_t id_;
  std::vector<size_t> shape_;
  DType dtype_;
  std::vector<mem::Page*> pages_;
};

}  // namespace angelptm::core

#endif  // ANGELPTM_CORE_TENSOR_H_
