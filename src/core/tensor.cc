#include "core/tensor.h"

#include <cstring>

#include "util/half.h"
#include "util/logging.h"

namespace angelptm::core {
namespace {

/// Invokes `fn(page_data + slot_offset, span_bytes, tensor_offset)` for each
/// of the tensor's page spans in byte order. Returns early on error.
template <typename Fn>
util::Status ForEachSpan(const Tensor& tensor, Fn&& fn) {
  size_t tensor_offset = 0;
  for (mem::Page* page : tensor.pages()) {
    const mem::Page::Slot* slot = page->FindSlot(tensor.id());
    if (slot == nullptr) {
      return util::Status::Internal("tensor " + std::to_string(tensor.id()) +
                                    " missing slot on page " +
                                    std::to_string(page->id()));
    }
    if (page->device() == mem::DeviceKind::kSsd) {
      return util::Status::FailedPrecondition(
          "tensor " + std::to_string(tensor.id()) + " has page on SSD");
    }
    ANGEL_RETURN_IF_ERROR(
        fn(page->data_ptr() + slot->offset, slot->bytes, tensor_offset));
    tensor_offset += slot->bytes;
  }
  return util::Status::OK();
}

}  // namespace

size_t Tensor::NumElements() const {
  size_t n = 1;
  for (size_t d : shape_) n *= d;
  return n;
}

int Tensor::device_index() const {
  if (pages_.empty()) return mem::kDeviceNotReady;
  const mem::DeviceKind first = pages_.front()->device();
  for (const mem::Page* page : pages_) {
    if (page->device() != first) return mem::kDeviceNotReady;
  }
  return static_cast<int>(first);
}

bool Tensor::IsResident() const {
  const int device = device_index();
  return device != mem::kDeviceNotReady &&
         device != static_cast<int>(mem::DeviceKind::kSsd);
}

bool Tensor::IsContiguous() const {
  if (pages_.empty()) return false;
  if (!IsResident()) return false;
  const std::byte* expected = nullptr;
  for (const mem::Page* page : pages_) {
    const mem::Page::Slot* slot = page->FindSlot(id_);
    if (slot == nullptr) return false;
    const std::byte* start = page->data_ptr() + slot->offset;
    if (expected != nullptr && start != expected) return false;
    expected = start + slot->bytes;
  }
  return true;
}

std::byte* Tensor::data() {
  ANGEL_CHECK(IsResident()) << "tensor " << id_ << " not resident";
  ANGEL_CHECK(IsContiguous()) << "tensor " << id_ << " not contiguous";
  const mem::Page::Slot* slot = pages_.front()->FindSlot(id_);
  return pages_.front()->data_ptr() + slot->offset;
}

const std::byte* Tensor::data() const {
  return const_cast<Tensor*>(this)->data();
}

util::Status Tensor::CopyOut(std::byte* dst, size_t bytes) const {
  if (bytes != SizeBytes()) {
    return util::Status::InvalidArgument("CopyOut size mismatch");
  }
  return ForEachSpan(*this, [dst](const std::byte* src, size_t span_bytes,
                                  size_t offset) {
    std::memcpy(dst + offset, src, span_bytes);
    return util::Status::OK();
  });
}

util::Status Tensor::CopyIn(const std::byte* src, size_t bytes) {
  if (bytes != SizeBytes()) {
    return util::Status::InvalidArgument("CopyIn size mismatch");
  }
  return ForEachSpan(*this, [src](std::byte* dst, size_t span_bytes,
                                  size_t offset) {
    std::memcpy(dst, src + offset, span_bytes);
    return util::Status::OK();
  });
}

util::Status Tensor::ReadFloats(std::vector<float>* out) const {
  const size_t n = NumElements();
  out->resize(n);
  if (dtype_ == DType::kFp32) {
    return CopyOut(reinterpret_cast<std::byte*>(out->data()), SizeBytes());
  }
  std::vector<uint16_t> raw(n);
  ANGEL_RETURN_IF_ERROR(
      CopyOut(reinterpret_cast<std::byte*>(raw.data()), SizeBytes()));
  for (size_t i = 0; i < n; ++i) {
    (*out)[i] = dtype_ == DType::kFp16 ? util::HalfBitsToFloat(raw[i])
                                       : util::BFloat16BitsToFloat(raw[i]);
  }
  return util::Status::OK();
}

util::Status Tensor::WriteFloats(const std::vector<float>& values) {
  if (values.size() != NumElements()) {
    return util::Status::InvalidArgument("WriteFloats size mismatch");
  }
  if (dtype_ == DType::kFp32) {
    return CopyIn(reinterpret_cast<const std::byte*>(values.data()),
                  SizeBytes());
  }
  std::vector<uint16_t> raw(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    raw[i] = dtype_ == DType::kFp16 ? util::FloatToHalfBits(values[i])
                                    : util::FloatToBFloat16Bits(values[i]);
  }
  return CopyIn(reinterpret_cast<const std::byte*>(raw.data()), SizeBytes());
}

}  // namespace angelptm::core
