#ifndef ANGELPTM_CORE_CHECKPOINT_MANAGER_H_
#define ANGELPTM_CORE_CHECKPOINT_MANAGER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/lockfree_updater.h"
#include "obs/metrics.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace angelptm::core {

/// Periodic-checkpoint policy over SaveCheckpoint/LoadCheckpoint (§3.1
/// failure recovery): writes step-stamped files into a directory, atomically
/// (tmp + fsync + rename, checksummed), keeps the last K, and on recovery
/// walks from the newest file backwards until one loads cleanly — a torn or
/// corrupt latest checkpoint falls back to the previous one instead of
/// killing the restart.
///
/// Save() snapshots a *running* LockFreeUpdater through the per-layer
/// quiesce, so the training loop never stops for a checkpoint; only
/// LoadLatest() requires a stopped updater (import would race otherwise).
///
/// Durations, sizes, and fallback/recovery counters are published through
/// the obs:: registry under "checkpoint/*" and mirrored in Snapshot().
class CheckpointManager {
 public:
  struct Options {
    /// Directory holding the rotated files (created by Init).
    std::string dir;
    /// File stem: files are "<stem>-<step padded to 9>.ckpt".
    std::string basename = "ckpt";
    /// How many checkpoints to keep; older ones are deleted after a
    /// successful save. Minimum 1.
    int keep_last = 3;
  };

  explicit CheckpointManager(const Options& options);

  CheckpointManager(const CheckpointManager&) = delete;
  CheckpointManager& operator=(const CheckpointManager&) = delete;

  /// Creates the checkpoint directory (recursively). Idempotent.
  [[nodiscard]] util::Status Init();

  /// Cuts a checkpoint at `progress.global_step` and rotates old files.
  /// Safe while the updater's threads run. A failed save never disturbs
  /// existing checkpoints (the tmp file is discarded).
  [[nodiscard]] util::Status Save(LockFreeUpdater* updater,
                                  const TrainProgress& progress)
      ANGEL_EXCLUDES(mutex_);

  /// Restores the newest checkpoint that loads cleanly, deleting nothing:
  /// corrupt files are skipped (counted as fallbacks) and left on disk for
  /// post-mortems. NotFound when no valid checkpoint exists. The updater
  /// must be stopped.
  [[nodiscard]] util::Result<TrainProgress> LoadLatest(
      LockFreeUpdater* updater) ANGEL_EXCLUDES(mutex_);

  /// Step-sorted (ascending) paths of the checkpoints currently on disk.
  std::vector<std::string> ListCheckpoints() const;

  /// Path a checkpoint for `step` would be written to.
  std::string PathForStep(int64_t step) const;

  struct Stats {
    uint64_t saves = 0;
    uint64_t save_failures = 0;
    uint64_t bytes_written = 0;
    uint64_t loads = 0;
    /// Corrupt/unreadable files skipped on the way to a clean load.
    uint64_t fallbacks = 0;
    /// Old checkpoints rotation failed to delete (they stay on disk and
    /// are retried after the next save).
    uint64_t rotate_failures = 0;
    /// Step of the most recent successful save (-1 = none this instance).
    int64_t last_saved_step = -1;
    /// Wall time per successful save, microseconds.
    obs::HistogramData save_us;
  };
  Stats Snapshot() const ANGEL_EXCLUDES(mutex_);

 private:
  Options options_;

  mutable util::Mutex mutex_{"ckpt.stats", util::lockrank::kCheckpointStats};
  Stats stats_ ANGEL_GUARDED_BY(mutex_);

  // Process-wide series (obs registry handles; set once in the ctor).
  obs::Counter* metric_saves_ = nullptr;
  obs::Counter* metric_save_failures_ = nullptr;
  obs::Counter* metric_bytes_written_ = nullptr;
  obs::Counter* metric_loads_ = nullptr;
  obs::Counter* metric_fallbacks_ = nullptr;
  obs::Histogram* metric_save_us_ = nullptr;
};

}  // namespace angelptm::core

#endif  // ANGELPTM_CORE_CHECKPOINT_MANAGER_H_
