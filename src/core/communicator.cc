#include "core/communicator.h"

#include <cstring>

#include "util/logging.h"

namespace angelptm::core {

Communicator::Communicator(int world_size) : world_size_(world_size) {
  ANGEL_CHECK(world_size >= 1) << "world_size must be positive";
  published_.assign(world_size, nullptr);
}

void Communicator::Arrive() {
  util::MutexLock lock(mutex_);
  const uint64_t generation = generation_;
  if (++arrived_ == world_size_) {
    arrived_ = 0;
    ++generation_;
    cv_.NotifyAll();
  } else {
    while (generation_ == generation) cv_.Wait(mutex_);
  }
}

util::Status Communicator::AllGather(int rank, const float* send,
                                     size_t count, float* recv) {
  if (rank < 0 || rank >= world_size_) {
    return util::Status::InvalidArgument("bad rank");
  }
  {
    util::MutexLock lock(mutex_);
    published_[rank] = send;
  }
  Arrive();  // All pointers published.
  for (int r = 0; r < world_size_; ++r) {
    std::memcpy(recv + size_t(r) * count, published_[r],
                count * sizeof(float));
  }
  Arrive();  // All ranks done reading.
  if (rank == 0) {
    util::MutexLock lock(mutex_);
    ++collectives_;
  }
  return util::Status::OK();
}

util::Status Communicator::ReduceScatter(int rank, const float* send,
                                         size_t total_count, float* recv) {
  if (rank < 0 || rank >= world_size_) {
    return util::Status::InvalidArgument("bad rank");
  }
  if (total_count % world_size_ != 0) {
    return util::Status::InvalidArgument(
        "reduce-scatter count not divisible by world size");
  }
  const size_t chunk = total_count / world_size_;
  {
    util::MutexLock lock(mutex_);
    published_[rank] = send;
  }
  Arrive();
  // Each rank reduces its own chunk across all ranks' buffers; ranks touch
  // disjoint chunk indices, so in-place aliasing with `send` is safe.
  for (size_t i = 0; i < chunk; ++i) {
    double sum = 0.0;
    for (int r = 0; r < world_size_; ++r) {
      sum += published_[r][size_t(rank) * chunk + i];
    }
    recv[i] = float(sum);
  }
  Arrive();
  if (rank == 0) {
    util::MutexLock lock(mutex_);
    ++collectives_;
  }
  return util::Status::OK();
}

util::Status Communicator::AllReduce(int rank, float* data, size_t count) {
  if (rank < 0 || rank >= world_size_) {
    return util::Status::InvalidArgument("bad rank");
  }
  {
    util::MutexLock lock(mutex_);
    published_[rank] = data;
  }
  Arrive();
  std::vector<float> reduced(count);
  for (size_t i = 0; i < count; ++i) {
    double sum = 0.0;
    for (int r = 0; r < world_size_; ++r) sum += published_[r][i];
    reduced[i] = float(sum);
  }
  Arrive();  // Everyone finished reading all buffers.
  std::memcpy(data, reduced.data(), count * sizeof(float));
  Arrive();  // Writes visible before the next collective reuses buffers.
  if (rank == 0) {
    util::MutexLock lock(mutex_);
    ++collectives_;
  }
  return util::Status::OK();
}

util::Status Communicator::AllToAll(int rank, const float* send,
                                    size_t count_per_peer, float* recv) {
  if (rank < 0 || rank >= world_size_) {
    return util::Status::InvalidArgument("bad rank");
  }
  {
    util::MutexLock lock(mutex_);
    published_[rank] = send;
  }
  Arrive();
  for (int peer = 0; peer < world_size_; ++peer) {
    std::memcpy(recv + size_t(peer) * count_per_peer,
                published_[peer] + size_t(rank) * count_per_peer,
                count_per_peer * sizeof(float));
  }
  Arrive();
  if (rank == 0) {
    util::MutexLock lock(mutex_);
    ++collectives_;
  }
  return util::Status::OK();
}

util::Status Communicator::Barrier(int rank) {
  if (rank < 0 || rank >= world_size_) {
    return util::Status::InvalidArgument("bad rank");
  }
  Arrive();
  return util::Status::OK();
}

uint64_t Communicator::collectives_completed() const {
  util::MutexLock lock(mutex_);
  return collectives_;
}

}  // namespace angelptm::core
