#include "core/executor.h"

#include <utility>

#include "util/logging.h"

namespace angelptm::core {

Executor::Executor() = default;

std::future<util::Status> Executor::Submit(
    mem::DeviceKind device, std::function<util::Status()> fn) {
  auto promise = std::make_shared<std::promise<util::Status>>();
  std::future<util::Status> future = promise->get_future();
  Stream& stream = StreamFor(device);
  const bool accepted =
      stream.pool.Submit([&stream, promise, fn = std::move(fn)] {
        promise->set_value(fn());
        stream.completed.fetch_add(1, std::memory_order_relaxed);
      });
  if (!accepted) {
    promise->set_value(util::Status(util::StatusCode::kCancelled,
                                    "executor stream is shut down"));
  }
  return future;
}

void Executor::Synchronize(mem::DeviceKind device) {
  StreamFor(device).pool.Wait();
}

void Executor::SynchronizeAll() {
  gpu_stream_.pool.Wait();
  cpu_stream_.pool.Wait();
}

uint64_t Executor::tasks_completed(mem::DeviceKind device) const {
  return StreamFor(device).completed.load(std::memory_order_relaxed);
}

Executor::Stream& Executor::StreamFor(mem::DeviceKind device) {
  ANGEL_CHECK(device != mem::DeviceKind::kSsd)
      << "the SSD is not a computational device";
  return device == mem::DeviceKind::kGpu ? gpu_stream_ : cpu_stream_;
}

const Executor::Stream& Executor::StreamFor(mem::DeviceKind device) const {
  return const_cast<Executor*>(this)->StreamFor(device);
}

}  // namespace angelptm::core
