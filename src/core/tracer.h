#ifndef ANGELPTM_CORE_TRACER_H_
#define ANGELPTM_CORE_TRACER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace angelptm::core {

/// Access pattern of one tensor over a traced iteration (§5, Tracer):
/// logical ids are operation indices, not wall-clock times — "using logical
/// IDs instead of real-time for lifetime tracking simplifies scheduling".
struct TensorTrace {
  uint64_t tensor_id = 0;
  /// Logical id of the op that first accesses the tensor.
  int first_id = -1;
  /// Logical id of the op that last accesses the tensor.
  int end_id = -1;
  /// Time to produce the tensor on CPU / GPU (seconds), when measured.
  double cpu_time = 0.0;
  double gpu_time = 0.0;
  uint64_t bytes = 0;

  /// Life-time in logical steps (§4.2: first access to last access).
  int LifetimeSpan() const { return end_id - first_id; }
};

/// Records the tensor access pattern of a model's iteration. The engine runs
/// one instrumented iteration ("trace mode"); operations call BeginOp, and
/// every tensor touch calls RecordAccess. The resulting traces drive the
/// unified scheduler.
class Tracer {
 public:
  Tracer() = default;

  /// Clears all recorded state for a fresh trace.
  void Reset();

  /// Opens a new logical operation and returns its id (0-based, dense).
  int BeginOp(std::string name);

  /// Marks `tensor_id` as accessed by the current operation. Must follow at
  /// least one BeginOp.
  [[nodiscard]] util::Status RecordAccess(uint64_t tensor_id, uint64_t bytes);

  /// Records how long producing the tensor took on each device.
  void RecordProduceTime(uint64_t tensor_id, double cpu_time,
                         double gpu_time);

  /// Traces sorted by first access id (ties by tensor id).
  std::vector<TensorTrace> Traces() const;

  int num_ops() const { return static_cast<int>(op_names_.size()); }
  const std::vector<std::string>& op_names() const { return op_names_; }

 private:
  std::vector<std::string> op_names_;
  std::unordered_map<uint64_t, TensorTrace> traces_;
};

}  // namespace angelptm::core

#endif  // ANGELPTM_CORE_TRACER_H_
