#ifndef ANGELPTM_CORE_DTYPE_H_
#define ANGELPTM_CORE_DTYPE_H_

#include <cstddef>
#include <cstdint>

namespace angelptm::core {

/// Element types handled by the memory subsystem. Mixed-precision training
/// stores model states in kFp32 and computes in kFp16/kBf16 (§2.1).
enum class DType : uint8_t {
  kFp16 = 0,
  kBf16 = 1,
  kFp32 = 2,
};

inline constexpr size_t DTypeBytes(DType dtype) {
  switch (dtype) {
    case DType::kFp16:
    case DType::kBf16:
      return 2;
    case DType::kFp32:
      return 4;
  }
  return 0;
}

inline constexpr const char* DTypeName(DType dtype) {
  switch (dtype) {
    case DType::kFp16:
      return "fp16";
    case DType::kBf16:
      return "bf16";
    case DType::kFp32:
      return "fp32";
  }
  return "unknown";
}

}  // namespace angelptm::core

#endif  // ANGELPTM_CORE_DTYPE_H_
