#include "core/schedule.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "util/logging.h"
#include "util/units.h"

namespace angelptm::core {

const char* TaskOpName(TaskOp op) {
  switch (op) {
    case TaskOp::kMoveToGpu:
      return "move_to_gpu";
    case TaskOp::kAllGather:
      return "all_gather";
    case TaskOp::kCompute:
      return "compute";
  }
  return "unknown";
}

MemoryProfile ReplaySchedule(const ScheduleInput& input,
                             const std::vector<Task>& tasks) {
  MemoryProfile profile;
  profile.usage_during_step.assign(input.steps.size(), 0);

  // Execution order: by trigger id; at equal trigger, movements and gathers
  // run before the compute they unblock; ties keep list order.
  std::vector<size_t> order(tasks.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (tasks[a].trigger_id != tasks[b].trigger_id) {
      return tasks[a].trigger_id < tasks[b].trigger_id;
    }
    const bool a_compute = tasks[a].op == TaskOp::kCompute;
    const bool b_compute = tasks[b].op == TaskOp::kCompute;
    return !a_compute && b_compute;
  });

  int64_t usage = 0;
  std::vector<int64_t> gathered_for_step(input.steps.size(), 0);
  auto bump_peak = [&](int64_t value) {
    if (value > 0 && uint64_t(value) > profile.peak) {
      profile.peak = uint64_t(value);
    }
  };

  for (size_t index : order) {
    const Task& task = tasks[index];
    switch (task.op) {
      case TaskOp::kMoveToGpu:
        usage += int64_t(task.bytes);
        bump_peak(usage);
        break;
      case TaskOp::kAllGather: {
        // A gather materializes the full parameter: world_size * shard.
        const int64_t alloc = int64_t(task.bytes) * input.world_size;
        usage += alloc;
        ANGEL_CHECK(task.step >= 0 &&
                    size_t(task.step) < input.steps.size())
            << "gather serving unknown step " << task.step;
        gathered_for_step[task.step] += alloc;
        bump_peak(usage);
        break;
      }
      case TaskOp::kCompute: {
        ANGEL_CHECK(task.step >= 0 &&
                    size_t(task.step) < input.steps.size())
            << "compute of unknown step " << task.step;
        const SchedStep& step = input.steps[task.step];
        usage += int64_t(step.workspace_bytes);
        bump_peak(usage);
        profile.usage_during_step[task.step] =
            usage > 0 ? uint64_t(usage) : 0;
        usage -= int64_t(step.workspace_bytes);
        usage += step.retained_bytes;
        // Gathered full parameters for this step are released once its
        // compute completes.
        usage -= gathered_for_step[task.step];
        gathered_for_step[task.step] = 0;
        bump_peak(usage);
        break;
      }
    }
  }
  return profile;
}

std::string FormatSchedule(const std::vector<Task>& tasks, size_t limit) {
  std::ostringstream os;
  size_t shown = 0;
  for (const Task& task : tasks) {
    if (shown++ >= limit) {
      os << "... (" << tasks.size() - limit << " more)\n";
      break;
    }
    os << "[t=" << task.trigger_id << "] " << TaskOpName(task.op);
    if (task.op == TaskOp::kCompute) {
      os << " step " << task.step;
    } else {
      os << " page " << task.page_id << " ("
         << util::FormatBytes(task.bytes) << ") for step " << task.step;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace angelptm::core
