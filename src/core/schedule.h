#ifndef ANGELPTM_CORE_SCHEDULE_H_
#define ANGELPTM_CORE_SCHEDULE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace angelptm::core {

/// Task kinds emitted by the unified scheduler (Algorithm 1).
enum class TaskOp : uint8_t {
  /// Move one page of a layer's local parameter shard CPU -> GPU (PCIe).
  kMoveToGpu,
  /// All-gather one parameter page across data-parallel ranks, materializing
  /// the full parameter for the triggering step (NVLink/NIC).
  kAllGather,
  /// Run one step's computation (a layer's forward or backward) on the GPU.
  kCompute,
};

const char* TaskOpName(TaskOp op);

/// One scheduled task: {operation, page, trigger_id} as in Algorithm 1.
/// `trigger_id` is the logical time the task may start: 0 = start of the
/// iteration, i > 0 = as soon as compute step i-1 has completed.
struct Task {
  TaskOp op = TaskOp::kCompute;
  /// Page being moved/gathered (kInvalidPage for compute tasks).
  uint64_t page_id = ~0ull;
  /// Shard bytes of that page (0 for compute tasks).
  uint64_t bytes = 0;
  /// The step this task serves: for kCompute the step being run, for
  /// kAllGather the step whose parameters are gathered, for kMoveToGpu the
  /// step whose shard is prefetched.
  int step = -1;
  int trigger_id = 0;
};

/// One page of a step's local parameter shard.
struct PageRef {
  uint64_t page_id = 0;
  uint64_t bytes = 0;
};

/// One schedulable step — one "layer" in Algorithm 1's terms. A training
/// iteration is modelled as 2L steps (forward 0..L-1 then backward L-1..0);
/// the algorithm itself is agnostic to the meaning of a step.
struct SchedStep {
  /// Pages of the local parameter shard this step's compute reads.
  std::vector<PageRef> param_pages;
  /// Transient GPU bytes (activation working set) live only while this
  /// step's compute runs.
  uint64_t workspace_bytes = 0;
  /// GPU bytes retained after this step until the end of the iteration
  /// (negative releases previously retained bytes — used by backward steps
  /// to drop boundary activations).
  int64_t retained_bytes = 0;
  /// Estimated compute duration, consumed by the event simulator.
  double compute_seconds = 0.0;
};

/// Input to the unified scheduler.
struct ScheduleInput {
  std::vector<SchedStep> steps;
  /// GPU memory available to the scheduler on this rank.
  uint64_t gpu_memory_budget = 0;
  /// Data-parallel world size N: an all-gather of a page with shard size B
  /// materializes N*B bytes of full parameter (freed after the serving
  /// step's compute).
  int world_size = 1;
  /// Run phase 2 of Algorithm 1 (advance all_gather triggers for overlap).
  /// Disabled only by the ablation bench.
  bool advance_gathers = true;
};

/// Output of the unified scheduler.
struct Schedule {
  std::vector<Task> tasks;
  /// Peak GPU bytes of the replayed schedule (must be <= budget).
  uint64_t peak_gpu_bytes = 0;
  /// Pages prefetched at iteration start (trigger 0).
  size_t pages_prefetched_at_start = 0;
  /// Pages left CPU-resident, fetched on demand by their all-gather.
  size_t pages_fetched_on_demand = 0;
  /// All-gather tasks whose trigger was advanced by phase 2.
  size_t gathers_advanced = 0;
};

/// Per-step memory usage from replaying a schedule; index = step id.
struct MemoryProfile {
  std::vector<uint64_t> usage_during_step;
  uint64_t peak = 0;
};

/// Replays `tasks` against `input`, returning the per-step GPU memory
/// profile. Used by phase 2 of Algorithm 1 and by tests to verify the
/// schedule never exceeds the budget.
MemoryProfile ReplaySchedule(const ScheduleInput& input,
                             const std::vector<Task>& tasks);

/// Renders a schedule for debugging ("[t=3] all_gather page 17 (4 MiB)").
std::string FormatSchedule(const std::vector<Task>& tasks, size_t limit = 64);

}  // namespace angelptm::core

#endif  // ANGELPTM_CORE_SCHEDULE_H_
