#ifndef ANGELPTM_CORE_COMMUNICATOR_H_
#define ANGELPTM_CORE_COMMUNICATOR_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "util/status.h"

namespace angelptm::core {

/// The Communicator of §5: collective communication primitives between
/// data-parallel ranks (the paper implements them over NCCL; this
/// reproduction implements them over shared memory between rank threads,
/// which preserves the semantics the engine and tests rely on).
///
/// Every collective must be entered by all `world_size` ranks, each from
/// its own thread. Calls rendezvous on an internal barrier; buffers are
/// exchanged through the communicator's staging area.
class Communicator {
 public:
  explicit Communicator(int world_size);

  int world_size() const { return world_size_; }

  /// recv (world_size * count floats) receives every rank's `send`
  /// (count floats), ordered by rank — the primitive ZeRO-3 uses to
  /// materialize full parameters from shards.
  util::Status AllGather(int rank, const float* send, size_t count,
                         float* recv);

  /// Element-wise sum of all ranks' `send` (total_count floats), scattered:
  /// rank r receives chunk r of size total_count / world_size — the
  /// gradient-synchronization primitive of sharded data parallelism.
  util::Status ReduceScatter(int rank, const float* send, size_t total_count,
                             float* recv);

  /// In-place element-wise sum across ranks (classic data parallelism).
  util::Status AllReduce(int rank, float* data, size_t count);

  /// rank r's chunk p (count_per_peer floats) is delivered to rank p's
  /// chunk r — the MoE token-routing primitive (§6.4).
  util::Status AllToAll(int rank, const float* send, size_t count_per_peer,
                        float* recv);

  /// Rendezvous with no data.
  util::Status Barrier(int rank);

  uint64_t collectives_completed() const;

 private:
  /// Reusable two-phase barrier: Arrive() returns once all ranks arrived.
  void Arrive();

  int world_size_;
  std::mutex mutex_;
  std::condition_variable cv_;
  int arrived_ = 0;
  uint64_t generation_ = 0;
  uint64_t collectives_ = 0;
  std::vector<const float*> published_;
  std::vector<float> staging_;
};

}  // namespace angelptm::core

#endif  // ANGELPTM_CORE_COMMUNICATOR_H_
