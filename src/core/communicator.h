#ifndef ANGELPTM_CORE_COMMUNICATOR_H_
#define ANGELPTM_CORE_COMMUNICATOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/status.h"
#include "util/thread_annotations.h"

namespace angelptm::core {

/// The Communicator of §5: collective communication primitives between
/// data-parallel ranks (the paper implements them over NCCL; this
/// reproduction implements them over shared memory between rank threads,
/// which preserves the semantics the engine and tests rely on).
///
/// Every collective must be entered by all `world_size` ranks, each from
/// its own thread. Calls rendezvous on an internal barrier; buffers are
/// exchanged through the communicator's staging area.
class Communicator {
 public:
  explicit Communicator(int world_size);

  int world_size() const { return world_size_; }

  /// recv (world_size * count floats) receives every rank's `send`
  /// (count floats), ordered by rank — the primitive ZeRO-3 uses to
  /// materialize full parameters from shards.
  [[nodiscard]] util::Status AllGather(int rank, const float* send,
                                       size_t count, float* recv)
      ANGEL_EXCLUDES(mutex_);

  /// Element-wise sum of all ranks' `send` (total_count floats), scattered:
  /// rank r receives chunk r of size total_count / world_size — the
  /// gradient-synchronization primitive of sharded data parallelism.
  [[nodiscard]] util::Status ReduceScatter(int rank, const float* send,
                                           size_t total_count, float* recv)
      ANGEL_EXCLUDES(mutex_);

  /// In-place element-wise sum across ranks (classic data parallelism).
  [[nodiscard]] util::Status AllReduce(int rank, float* data, size_t count)
      ANGEL_EXCLUDES(mutex_);

  /// rank r's chunk p (count_per_peer floats) is delivered to rank p's
  /// chunk r — the MoE token-routing primitive (§6.4).
  [[nodiscard]] util::Status AllToAll(int rank, const float* send,
                                      size_t count_per_peer, float* recv)
      ANGEL_EXCLUDES(mutex_);

  /// Rendezvous with no data.
  [[nodiscard]] util::Status Barrier(int rank) ANGEL_EXCLUDES(mutex_);

  uint64_t collectives_completed() const ANGEL_EXCLUDES(mutex_);

 private:
  /// Reusable two-phase barrier: Arrive() returns once all ranks arrived.
  void Arrive() ANGEL_EXCLUDES(mutex_);

  int world_size_;
  mutable util::Mutex mutex_{"core.communicator",
                             util::lockrank::kCommunicator};
  util::CondVar cv_;
  int arrived_ ANGEL_GUARDED_BY(mutex_) = 0;
  uint64_t generation_ ANGEL_GUARDED_BY(mutex_) = 0;
  uint64_t collectives_ ANGEL_GUARDED_BY(mutex_) = 0;
  /// Written under mutex_, but deliberately read *outside* it between the
  /// two Arrive() barriers of each collective: the barrier's happens-before
  /// ordering (not the mutex) is what makes those reads race-free, a
  /// relationship outside the analysis's vocabulary.  // lint: unguarded
  std::vector<const float*> published_;
  std::vector<float> staging_;
};

}  // namespace angelptm::core

#endif  // ANGELPTM_CORE_COMMUNICATOR_H_
