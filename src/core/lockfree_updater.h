#ifndef ANGELPTM_CORE_LOCKFREE_UPDATER_H_
#define ANGELPTM_CORE_LOCKFREE_UPDATER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/allocator.h"
#include "core/optimizer/optimizer.h"
#include "mem/device.h"
#include "obs/metrics.h"
#include "util/histogram.h"
#include "util/seqlock.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace angelptm::core {

/// The Lock-Free Updating Mechanism of §4.3 (Algorithm 2), implemented with
/// real threads over the page-based memory subsystem:
///
///  - The *compute* side (the training loop, standing in for the GPUs)
///    fetches buffered fp16 parameters (p'16) and offloads fp16 gradients,
///    never blocking on the optimizer.
///  - The *buffering thread* owns the two fp16 CPU buffers: it accumulates
///    offloaded gradients into g'16 and installs freshly updated parameters
///    into p'16.
///  - The *updating thread* walks layers in reverse, fetches the fp32
///    master states (from the SSD tier when configured — real file I/O),
///    applies the configured update rule (Options.optimizer — Adam by
///    default; see core/optimizer/optimizer.h) against the accumulated
///    gradients, hands the result to the buffering thread, and writes the
///    states back. It sleeps on a condition variable between work batches
///    and is woken by OffloadGrads / the buffering thread.
///
/// Deviation from the paper's pseudocode, documented: Algorithm 2 clears
/// g'16 when the buffering thread *receives* the updated parameters, which
/// drops gradients that arrive during the update window. We snapshot-and-
/// clear g'16 atomically when the update *starts*, preserving every
/// gradient while keeping the same staleness behaviour.
///
/// Second documented deviation — the staleness valve: Algorithm 2's compute
/// side never waits for the optimizer, which is the right throughput call
/// when the updating thread has its own core. On an oversubscribed host,
/// though, a never-blocking compute loop can run unboundedly ahead (the
/// mutex contention the seqlock redesign removed used to throttle it by
/// accident), and folding hundreds of stale batches into one update
/// diverges training. OffloadGrads therefore blocks once a single layer has
/// Options.max_pending_batches_per_layer gradient batches in flight, making
/// the "bounded staleness" this class trades on an actual bound; the valve
/// is far above what a healthy updater accumulates, so it only engages when
/// the updater is starved (observable via Stats.backpressure_waits).
///
/// The condvar wakeup pairs with a small coalescing window
/// (Options.updater_coalesce_us): waking on the *first* gradient of a
/// backward pass would apply it alone and then re-update per layer per
/// gradient, which collapses the mechanism into a slower synchronous
/// optimizer (every update averages one batch, so none of the gradient
/// noise reduction that batching buys). Waiting a few tens of
/// microseconds after the wakeup lets the rest of the pass's gradients
/// land in the same sweep, restoring the multi-batch updates the paper's
/// GPU/CPU speed gap produces naturally — with zero CPU burned while
/// idle, unlike the fixed-period poll this replaced.
///
/// Read-mostly hot paths are lockless (DESIGN.md §13): FetchParams reads a
/// seqlock-published fp16 mirror of p'16 (no mutex, retry on the rare
/// overlapping install), and status() reads the write-once poison status
/// published by a release store. The mutexes remain on the *write* side
/// only, where they already serialized mutation.
///
/// The mechanism trades bounded staleness for throughput; staleness is
/// observable via Snapshot().pending_grad_batches. §6.5 shows convergence is
/// not harmed — reproduced by bench/table6_ssd_lockfree.
///
/// Failure semantics: the first unrecoverable error on either background
/// thread (an SSD I/O failure that survives the SsdTier retry policy, a
/// buffer install/accumulate failure) *poisons* the updater — the thread
/// stops, status() turns non-OK, and every subsequent OffloadGrads /
/// FetchParams / DrainUpdates call fails fast with that status instead of
/// silently training against a dead optimizer. Poisoning is terminal: the
/// recovery path is checkpoint restore into a fresh updater (§3.1).
class LockFreeUpdater {
 public:
  struct Options {
    /// Update rule + hyper-parameters; resolved through Optimizer::Create
    /// in the constructor (an unknown rule poisons the updater, so the
    /// first AddLayer reports it).
    OptimizerConfig optimizer;
    /// Where fp32 master parameters/moments live between updates.
    mem::DeviceKind master_device = mem::DeviceKind::kCpu;
    /// Staleness valve (see the class comment): OffloadGrads blocks while
    /// the target layer already has this many batches offloaded but not yet
    /// folded into the master parameters. 0 disables the valve.
    size_t max_pending_batches_per_layer = 8;
    /// Coalescing window: after an idle condvar wakeup, the updating thread
    /// waits this long before sweeping, so the rest of the backward pass's
    /// gradients land in the same update instead of each triggering its
    /// own single-batch update (see the class comment). 0 disables
    /// coalescing (sweep immediately on wakeup).
    uint64_t updater_coalesce_us = 50;
  };

  LockFreeUpdater(Allocator* allocator, const Options& options);
  ~LockFreeUpdater();

  LockFreeUpdater(const LockFreeUpdater&) = delete;
  LockFreeUpdater& operator=(const LockFreeUpdater&) = delete;

  /// Registers a layer, allocating its fp32 master states (params plus the
  /// optimizer's declared slot layout) on the master device and its fp16
  /// buffers on the CPU tier. Returns the layer index.
  [[nodiscard]] util::Result<int> AddLayer(
      const std::vector<float>& initial_params);

  int num_layers() const { return static_cast<int>(layers_.size()); }

  /// Registry key of the active update rule ("adam", ...).
  const std::string& optimizer_rule() const;

  // --- Compute-side interface (Algorithm 2 lines 18-24) ---

  /// Reads the buffered fp16 parameters, cast to fp32 (line 20). Lockless:
  /// the read comes from the layer's seqlock mirror, so it never contends
  /// with the buffering thread's install.
  [[nodiscard]] util::Status FetchParams(int layer,
                                         std::vector<float>* out) const;

  /// Publication version of a layer's buffered parameters (bumps by 2 per
  /// install — the seqlock sequence word). Lockless; lets the compute side
  /// skip a refetch when nothing was installed since the last step.
  [[nodiscard]] util::Result<uint64_t> ParamsVersion(int layer) const;

  /// Accumulates gradients into the layer's fp16 buffer and marks it dirty
  /// (lines 24 / 14-15). Never blocks on the updating thread unless the
  /// layer is at the staleness valve's bound; wakes it.
  [[nodiscard]] util::Status OffloadGrads(int layer,
                                          const std::vector<float>& grads)
      ANGEL_EXCLUDES(queue_mutex_, work_mutex_, backpressure_mutex_);

  // --- Control ---

  /// Spawns the buffering and updating threads (asynchronous mode).
  void Start();
  /// Joins the threads. Pending gradients stay buffered.
  void Stop() ANGEL_EXCLUDES(work_mutex_);
  bool running() const { return running_.load(); }

  /// Synchronous baseline: applies one full update pass inline (every dirty
  /// layer), blocking the caller. Must not run concurrently with Start().
  [[nodiscard]] util::Status UpdateOnce();

  /// Blocks until every gradient offloaded so far has been applied, the
  /// deadline passes (DeadlineExceeded), or the updater is poisoned (the
  /// poison status). Never spins forever: a dead updating thread surfaces
  /// as an error within the deadline.
  [[nodiscard]] util::Status DrainUpdates(
      std::chrono::milliseconds deadline = std::chrono::milliseconds(60000))
      ANGEL_EXCLUDES(queue_mutex_);

  /// OK while the updater is healthy; the first unrecoverable background
  /// error afterwards. A non-OK status is terminal. Lockless: the status
  /// object is written once (under poison_mutex_) before the release store
  /// of the poisoned_ flag publishes it, and never modified again.
  [[nodiscard]] util::Status status() const;

  /// Reads the fp32 master parameters of a layer (test/checkpoint access;
  /// moves them memory-side if they are on SSD and back).
  [[nodiscard]] util::Status ReadMasterParams(int layer,
                                              std::vector<float>* out);

  /// Full optimizer state of one layer, for checkpointing (§3.1 failure
  /// recovery). Slots appear in the optimizer's SlotLayout order with their
  /// declared names — the checkpoint v3 wire format serializes exactly this.
  struct LayerState {
    struct Slot {
      std::string name;
      std::vector<float> values;
    };
    std::vector<float> params;
    std::vector<Slot> slots;
    long step = 0;
  };
  /// Snapshots a layer's fp32 master state. Safe on a *running* updater: it
  /// briefly quiesces that one layer (the updating thread's per-layer
  /// master mutex) while the copy is taken, so training never stops
  /// globally. Each layer's state is internally consistent (params/slots/
  /// step from the same update count); different layers may be a few
  /// updates apart — which the per-layer step records, so a restore is
  /// still exact. This is the one snapshot API (the former stopped-only
  /// ExportLayerState was retired in its favor).
  [[nodiscard]] util::Status SnapshotLayerState(int layer, LayerState* out);
  /// Restores a layer's fp32 master state and refreshes its fp16 buffers.
  [[nodiscard]] util::Status ImportLayerState(int layer,
                                              const LayerState& state);

  // --- Introspection ---

  /// Structured statistics of this updater instance. The same series are
  /// published process-wide through the obs:: registry ("updater/*").
  struct Stats {
    uint64_t updates_applied = 0;
    uint64_t grad_batches_offloaded = 0;
    uint64_t grad_batches_applied = 0;
    /// Gradient batches not yet folded into the master parameters — the
    /// staleness the mechanism trades for throughput.
    uint64_t pending_grad_batches = 0;
    /// OffloadGrads calls that hit the staleness valve and had to wait for
    /// the updating thread to catch up (0 on a healthy, unstarved updater).
    uint64_t backpressure_waits = 0;
    /// Distribution of gradient batches folded per update (1 = fully
    /// fresh; larger = the compute side ran ahead).
    util::Histogram staleness;
  };

  /// Point-in-time copy of this instance's statistics.
  Stats Snapshot() const;

 private:
  struct Layer {
    size_t count = 0;
    Tensor* p32 = nullptr;
    /// Master-state tensors, one per slot_layout entry (Adam: m, v; sgdm:
    /// m; adafactor: row, col). Allocated per the optimizer's SlotLayout.
    std::vector<Tensor*> slots;
    std::vector<SlotSpec> slot_layout;
    /// Algorithm 2's CPU buffers, as fp16 tensors on the CPU tier. The
    /// pointers are set once in AddLayer; the *bytes* they reach are what
    /// buffer_mutex guards, a method-call-level relationship (ReadFloats/
    /// WriteFloats) the analysis cannot see through Tensor's interface.
    Tensor* buffered_params = nullptr;  // p'16
    Tensor* buffered_grads = nullptr;   // g'16
    mutable util::Mutex buffer_mutex{"updater.buffer",
                                     util::lockrank::kUpdaterBuffer};
    uint64_t pending_batches ANGEL_GUARDED_BY(buffer_mutex) = 0;
    /// Lockless read mirror of p'16: the same fp16 bits the buffer holds,
    /// published via seqlock. Writers (install/import, both under
    /// buffer_mutex) are serialized; FetchParams reads with no lock.
    util::SeqLockBuffer param_mirror;
    /// Serializes access to the fp32 master states (p32 and the slots,
    /// including their tier moves) between the updating path and concurrent
    /// checkpoint snapshots / master reads. Held only for the master-state
    /// section of one layer's update — the per-layer quiesce window.
    mutable util::Mutex master_mutex{"updater.master",
                                     util::lockrank::kUpdaterMaster};
    long step ANGEL_GUARDED_BY(master_mutex) = 0;
  };

  /// Applies one optimizer update to layer `layer_index` if it has pending
  /// gradients. Returns true if an update was applied.
  [[nodiscard]] util::Result<bool> UpdateLayer(int layer_index)
      ANGEL_EXCLUDES(queue_mutex_, staleness_mutex_, backpressure_mutex_);
  void UpdatingThreadLoop() ANGEL_EXCLUDES(work_mutex_);
  void BufferingThreadLoop() ANGEL_EXCLUDES(queue_mutex_, work_mutex_);
  /// Records the first unrecoverable error; later calls keep the original.
  void Poison(const util::Status& status)
      ANGEL_EXCLUDES(poison_mutex_, work_mutex_);
  /// Bumps the work epoch and wakes the updating thread.
  void SignalWork() ANGEL_EXCLUDES(work_mutex_);
  /// Publishes `values` (as fp16 bits) into the layer's seqlock mirror.
  /// Caller holds layer.buffer_mutex, which serializes mirror writers.
  static void PublishParams(Layer& layer, const std::vector<float>& values)
      ANGEL_REQUIRES(layer.buffer_mutex);
  /// Gradient batches offloaded but not yet applied.
  uint64_t pending_grad_batches() const;

  Allocator* allocator_;
  Options options_;
  std::unique_ptr<Optimizer> optimizer_;
  std::vector<std::unique_ptr<Layer>> layers_;

  std::atomic<bool> running_{false};
  std::thread updating_thread_;
  std::thread buffering_thread_;

  /// Queue feeding the buffering thread: gradients from the compute side
  /// and updated parameters from the updating thread.
  struct BufferTask {
    int layer;
    bool is_params;            // true: install params; false: accumulate.
    std::vector<float> data;   // fp32 values (cast to fp16 on apply).
  };
  mutable util::Mutex queue_mutex_{"updater.queue",
                                   util::lockrank::kUpdaterQueue};
  util::CondVar queue_cv_;
  std::deque<BufferTask> buffer_queue_ ANGEL_GUARDED_BY(queue_mutex_);

  /// Wakeup channel for the updating thread (replaces the old idle-sleep
  /// poll): the epoch counts SignalWork calls, so a signal that lands
  /// mid-scan is observed as a changed epoch instead of being lost.
  mutable util::Mutex work_mutex_{"updater.work",
                                  util::lockrank::kUpdaterWork};
  util::CondVar work_cv_;
  uint64_t work_epoch_ ANGEL_GUARDED_BY(work_mutex_) = 0;

  /// Staleness valve state: per-layer batches offloaded (queued or
  /// accumulated) but not yet taken by UpdateLayer. OffloadGrads waits on
  /// the condvar while its layer sits at the Options bound; UpdateLayer
  /// notifies after taking a layer's batches.
  mutable util::Mutex backpressure_mutex_{
      "updater.backpressure", util::lockrank::kUpdaterBackpressure};
  util::CondVar backpressure_cv_;
  std::vector<uint64_t> inflight_batches_
      ANGEL_GUARDED_BY(backpressure_mutex_);
  std::atomic<uint64_t> backpressure_waits_{0};

  std::atomic<uint64_t> updates_applied_{0};
  std::atomic<uint64_t> grad_batches_offloaded_{0};
  std::atomic<uint64_t> grad_batches_applied_{0};

  /// Terminal error state. `poisoned_` is the lock-free fast-path flag;
  /// poison_status_ is written exactly once, under poison_mutex_ (which
  /// serializes racing Poison calls), *before* the release store to
  /// poisoned_ — so any reader that observes poisoned_ true (acquire) may
  /// read poison_status_ with no lock (DESIGN.md §13).
  std::atomic<bool> poisoned_{false};
  mutable util::Mutex poison_mutex_{"updater.poison",
                                    util::lockrank::kUpdaterPoison};
  util::Status poison_status_;

  mutable util::Mutex staleness_mutex_{"updater.staleness",
                                       util::lockrank::kUpdaterStaleness};
  util::Histogram staleness_ ANGEL_GUARDED_BY(staleness_mutex_);

  // Process-wide series (obs registry handles; set once in the ctor).
  obs::Counter* metric_updates_applied_ = nullptr;
  obs::Counter* metric_grad_batches_offloaded_ = nullptr;
  obs::Gauge* metric_pending_batches_ = nullptr;
  obs::Histogram* metric_staleness_ = nullptr;
};

}  // namespace angelptm::core

#endif  // ANGELPTM_CORE_LOCKFREE_UPDATER_H_
