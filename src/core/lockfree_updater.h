#ifndef ANGELPTM_CORE_LOCKFREE_UPDATER_H_
#define ANGELPTM_CORE_LOCKFREE_UPDATER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "core/adam.h"
#include "core/allocator.h"
#include "mem/device.h"
#include "obs/metrics.h"
#include "util/histogram.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace angelptm::core {

/// The Lock-Free Updating Mechanism of §4.3 (Algorithm 2), implemented with
/// real threads over the page-based memory subsystem:
///
///  - The *compute* side (the training loop, standing in for the GPUs)
///    fetches buffered fp16 parameters (p'16) and offloads fp16 gradients,
///    never blocking on the optimizer.
///  - The *buffering thread* owns the two fp16 CPU buffers: it accumulates
///    offloaded gradients into g'16 and installs freshly updated parameters
///    into p'16.
///  - The *updating thread* walks layers in reverse, fetches the fp32
///    master states (from the SSD tier when configured — real file I/O),
///    applies Adam against the accumulated gradients, hands the result to
///    the buffering thread, and writes the states back.
///
/// Deviation from the paper's pseudocode, documented: Algorithm 2 clears
/// g'16 when the buffering thread *receives* the updated parameters, which
/// drops gradients that arrive during the update window. We snapshot-and-
/// clear g'16 atomically when the update *starts*, preserving every
/// gradient while keeping the same staleness behaviour.
///
/// The mechanism trades bounded staleness for throughput; staleness is
/// observable via Snapshot().pending_grad_batches. §6.5 shows convergence is
/// not harmed — reproduced by bench/table6_ssd_lockfree.
///
/// Failure semantics: the first unrecoverable error on either background
/// thread (an SSD I/O failure that survives the SsdTier retry policy, a
/// buffer install/accumulate failure) *poisons* the updater — the thread
/// stops, status() turns non-OK, and every subsequent OffloadGrads /
/// FetchParams / DrainUpdates call fails fast with that status instead of
/// silently training against a dead optimizer. Poisoning is terminal: the
/// recovery path is checkpoint restore into a fresh updater (§3.1).
class LockFreeUpdater {
 public:
  struct Options {
    AdamConfig adam;
    /// Where fp32 master parameters/moments live between updates.
    mem::DeviceKind master_device = mem::DeviceKind::kCpu;
    /// Updating-thread poll interval when no gradients are pending.
    int idle_sleep_us = 50;
  };

  LockFreeUpdater(Allocator* allocator, const Options& options);
  ~LockFreeUpdater();

  LockFreeUpdater(const LockFreeUpdater&) = delete;
  LockFreeUpdater& operator=(const LockFreeUpdater&) = delete;

  /// Registers a layer, allocating its fp32 master states on the master
  /// device and its fp16 buffers on the CPU tier. Returns the layer index.
  [[nodiscard]] util::Result<int> AddLayer(
      const std::vector<float>& initial_params);

  int num_layers() const { return static_cast<int>(layers_.size()); }

  // --- Compute-side interface (Algorithm 2 lines 18-24) ---

  /// Reads the buffered fp16 parameters, cast to fp32 (line 20).
  [[nodiscard]] util::Status FetchParams(int layer,
                                         std::vector<float>* out) const;

  /// Accumulates gradients into the layer's fp16 buffer and marks it dirty
  /// (lines 24 / 14-15). Never blocks on the updating thread.
  [[nodiscard]] util::Status OffloadGrads(int layer,
                                          const std::vector<float>& grads)
      ANGEL_EXCLUDES(queue_mutex_);

  // --- Control ---

  /// Spawns the buffering and updating threads (asynchronous mode).
  void Start();
  /// Joins the threads. Pending gradients stay buffered.
  void Stop();
  bool running() const { return running_.load(); }

  /// Synchronous baseline: applies one full update pass inline (every dirty
  /// layer), blocking the caller. Must not run concurrently with Start().
  [[nodiscard]] util::Status UpdateOnce();

  /// Blocks until every gradient offloaded so far has been applied, the
  /// deadline passes (DeadlineExceeded), or the updater is poisoned (the
  /// poison status). Never spins forever: a dead updating thread surfaces
  /// as an error within the deadline.
  [[nodiscard]] util::Status DrainUpdates(
      std::chrono::milliseconds deadline = std::chrono::milliseconds(60000))
      ANGEL_EXCLUDES(queue_mutex_);

  /// OK while the updater is healthy; the first unrecoverable background
  /// error afterwards. A non-OK status is terminal.
  [[nodiscard]] util::Status status() const ANGEL_EXCLUDES(poison_mutex_);

  /// Reads the fp32 master parameters of a layer (test/checkpoint access;
  /// moves them memory-side if they are on SSD and back).
  [[nodiscard]] util::Status ReadMasterParams(int layer,
                                              std::vector<float>* out);

  /// Full optimizer state of one layer, for checkpointing (§3.1 failure
  /// recovery).
  struct LayerState {
    std::vector<float> params;
    std::vector<float> momentum;
    std::vector<float> variance;
    long adam_step = 0;
  };
  /// Snapshots a layer's fp32 master state. Must not run concurrently with
  /// the updating threads (Stop() first).
  [[nodiscard]] util::Status ExportLayerState(int layer, LayerState* out);
  /// Like ExportLayerState, but safe on a *running* updater: it briefly
  /// quiesces that one layer (the updating thread's per-layer master mutex)
  /// while the copy is taken, so training never stops globally. Each layer's
  /// state is internally consistent (params/moments/step from the same
  /// update count); different layers may be a few updates apart — which the
  /// per-layer adam_step records, so a restore is still exact.
  [[nodiscard]] util::Status SnapshotLayerState(int layer, LayerState* out);
  /// Restores a layer's fp32 master state and refreshes its fp16 buffers.
  [[nodiscard]] util::Status ImportLayerState(int layer,
                                              const LayerState& state);

  // --- Introspection ---

  /// Structured statistics of this updater instance. The same series are
  /// published process-wide through the obs:: registry ("updater/*").
  struct Stats {
    uint64_t updates_applied = 0;
    uint64_t grad_batches_offloaded = 0;
    uint64_t grad_batches_applied = 0;
    /// Gradient batches not yet folded into the master parameters — the
    /// staleness the mechanism trades for throughput.
    uint64_t pending_grad_batches = 0;
    /// Distribution of gradient batches folded per update (1 = fully
    /// fresh; larger = the compute side ran ahead).
    util::Histogram staleness;
  };

  /// Point-in-time copy of this instance's statistics.
  Stats Snapshot() const;

 private:
  struct Layer {
    size_t count = 0;
    Tensor* p32 = nullptr;
    Tensor* m32 = nullptr;
    Tensor* v32 = nullptr;
    /// Algorithm 2's CPU buffers, as fp16 tensors on the CPU tier. The
    /// pointers are set once in AddLayer; the *bytes* they reach are what
    /// buffer_mutex guards, a method-call-level relationship (ReadFloats/
    /// WriteFloats) the analysis cannot see through Tensor's interface.
    Tensor* buffered_params = nullptr;  // p'16
    Tensor* buffered_grads = nullptr;   // g'16
    mutable util::Mutex buffer_mutex;
    uint64_t pending_batches ANGEL_GUARDED_BY(buffer_mutex) = 0;
    /// Serializes access to the fp32 master states (p32/m32/v32, including
    /// their tier moves) between the updating path and concurrent
    /// checkpoint snapshots / master reads. Held only for the master-state
    /// section of one layer's update — the per-layer quiesce window.
    mutable util::Mutex master_mutex;
    long adam_step ANGEL_GUARDED_BY(master_mutex) = 0;
  };

  /// Applies one Adam update to layer `layer_index` if it has pending
  /// gradients. Returns true if an update was applied.
  [[nodiscard]] util::Result<bool> UpdateLayer(int layer_index)
      ANGEL_EXCLUDES(queue_mutex_, staleness_mutex_);
  void UpdatingThreadLoop();
  void BufferingThreadLoop() ANGEL_EXCLUDES(queue_mutex_);
  /// Records the first unrecoverable error; later calls keep the original.
  void Poison(const util::Status& status) ANGEL_EXCLUDES(poison_mutex_);
  /// Gradient batches offloaded but not yet applied.
  uint64_t pending_grad_batches() const;

  Allocator* allocator_;
  Options options_;
  std::vector<std::unique_ptr<Layer>> layers_;

  std::atomic<bool> running_{false};
  std::thread updating_thread_;
  std::thread buffering_thread_;

  /// Queue feeding the buffering thread: gradients from the compute side
  /// and updated parameters from the updating thread.
  struct BufferTask {
    int layer;
    bool is_params;            // true: install params; false: accumulate.
    std::vector<float> data;   // fp32 values (cast to fp16 on apply).
  };
  mutable util::Mutex queue_mutex_;
  util::CondVar queue_cv_;
  std::deque<BufferTask> buffer_queue_ ANGEL_GUARDED_BY(queue_mutex_);

  std::atomic<uint64_t> updates_applied_{0};
  std::atomic<uint64_t> grad_batches_offloaded_{0};
  std::atomic<uint64_t> grad_batches_applied_{0};

  /// Terminal error state. `poisoned_` is the lock-free fast-path flag;
  /// the status itself is guarded by `poison_mutex_`.
  std::atomic<bool> poisoned_{false};
  mutable util::Mutex poison_mutex_;
  util::Status poison_status_ ANGEL_GUARDED_BY(poison_mutex_);

  mutable util::Mutex staleness_mutex_;
  util::Histogram staleness_ ANGEL_GUARDED_BY(staleness_mutex_);

  // Process-wide series (obs registry handles; set once in the ctor).
  obs::Counter* metric_updates_applied_ = nullptr;
  obs::Counter* metric_grad_batches_offloaded_ = nullptr;
  obs::Gauge* metric_pending_batches_ = nullptr;
  obs::Histogram* metric_staleness_ = nullptr;
};

}  // namespace angelptm::core

#endif  // ANGELPTM_CORE_LOCKFREE_UPDATER_H_
