#ifndef ANGELPTM_CORE_ALLOCATOR_H_
#define ANGELPTM_CORE_ALLOCATOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/tensor.h"
#include "mem/copy_engine.h"
#include "mem/hierarchical_memory.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace angelptm::core {

/// Tensors allocated with the same group may share their tail page (§4.1:
/// "by carefully arranging these tensors, we can ensure that each page is
/// associated with at most two tensors"). Groups correspond to model layers,
/// so co-resident tensors move between tiers together. kNoGroup tensors get
/// exclusive pages.
inline constexpr uint64_t kNoGroup = ~0ull;

/// The Allocator component of Angel-PTM (§5): manages tensors at the Page
/// level over the pre-allocated hierarchical memory. Implements the Tensor
/// interfaces of Fig. 4 — allocate, release, move, merge — on top of
/// mem::HierarchicalMemory.
class Allocator {
 public:
  /// `memory` must outlive the allocator.
  explicit Allocator(mem::HierarchicalMemory* memory);
  ~Allocator();

  Allocator(const Allocator&) = delete;
  Allocator& operator=(const Allocator&) = delete;

  /// Creates a tensor of `shape`/`dtype` resident on `device`. Whole pages
  /// are exclusive; the tail (bytes % page size) shares a page with at most
  /// one other tensor of the same `group`. Tensors smaller than one page get
  /// an individual page (shared only within their group).
  [[nodiscard]] util::Result<Tensor*> Allocate(std::vector<size_t> shape,
                                               DType dtype,
                                               mem::DeviceKind device,
                                               uint64_t group = kNoGroup)
      ANGEL_EXCLUDES(mutex_);

  /// Releases the tensor's claims; pages that drain are destroyed, returning
  /// frames to their tier.
  [[nodiscard]] util::Status Release(Tensor* tensor) ANGEL_EXCLUDES(mutex_);

  /// Moves every page of the tensor to `target`, synchronously. A shared
  /// tail page carries its partner tensor's bytes along (by design — grouped
  /// tensors co-migrate).
  [[nodiscard]] util::Status Move(Tensor* tensor, mem::DeviceKind target)
      ANGEL_EXCLUDES(mutex_);

  /// Ensures the tensor's bytes form one contiguous range, re-packing onto
  /// physically adjacent frames if necessary (Fig. 4 `merge`). Requires the
  /// tensor to be resident in a memory tier.
  [[nodiscard]] util::Status Merge(Tensor* tensor) ANGEL_EXCLUDES(mutex_);

  /// Number of live tensors.
  size_t num_tensors() const ANGEL_EXCLUDES(mutex_);
  /// Bytes requested by live tensors (excluding page-granularity padding).
  uint64_t allocated_bytes() const ANGEL_EXCLUDES(mutex_);
  /// Bytes of page capacity held minus bytes requested: the internal waste
  /// the 4 MiB page choice trades for bandwidth (§4.1).
  uint64_t padding_bytes() const ANGEL_EXCLUDES(mutex_);

  mem::HierarchicalMemory* memory() { return memory_; }

 private:
  struct OpenPageKey {
    mem::DeviceKind device;
    uint64_t group;
    bool operator<(const OpenPageKey& other) const {
      return std::tie(device, group) < std::tie(other.device, other.group);
    }
  };

  [[nodiscard]] util::Status AllocatePagesLocked(Tensor* tensor,
                                                 mem::DeviceKind device,
                                                 uint64_t group)
      ANGEL_REQUIRES(mutex_);
  void ForgetOpenPage(const mem::Page* page) ANGEL_REQUIRES(mutex_);

  mem::HierarchicalMemory* memory_;

  mutable util::Mutex mutex_{"alloc.state", util::lockrank::kAllocState};
  std::unordered_map<uint64_t, std::unique_ptr<Tensor>> tensors_
      ANGEL_GUARDED_BY(mutex_);
  uint64_t next_tensor_id_ ANGEL_GUARDED_BY(mutex_) = 0;
  uint64_t allocated_bytes_ ANGEL_GUARDED_BY(mutex_) = 0;
  uint64_t page_capacity_bytes_ ANGEL_GUARDED_BY(mutex_) = 0;
  /// Pages with one tensor and remaining space, eligible as a shared tail.
  std::map<OpenPageKey, mem::Page*> open_pages_ ANGEL_GUARDED_BY(mutex_);
};

}  // namespace angelptm::core

#endif  // ANGELPTM_CORE_ALLOCATOR_H_
