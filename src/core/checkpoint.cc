#include "core/checkpoint.h"

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <vector>

#include "util/fault_injector.h"

namespace angelptm::core {
namespace {

constexpr char kMagic[8] = {'A', 'P', 'T', 'M', 'C', 'K', 'P', 'T'};
constexpr uint32_t kVersion = 3;
constexpr uint32_t kMinVersion = 1;
/// Caps per-string / per-slot-list reads so a corrupt length prefix fails
/// with a clear error instead of a giant allocation.
constexpr uint32_t kMaxRuleNameBytes = 256;
constexpr uint32_t kMaxSlots = 64;

/// Incremental FNV-1a over byte spans.
class Fnv1a {
 public:
  void Update(const void* data, size_t bytes) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < bytes; ++i) {
      hash_ ^= p[i];
      hash_ *= 1099511628211ull;
    }
  }
  uint64_t value() const { return hash_; }

 private:
  uint64_t hash_ = 14695981039346656037ull;
};

class Writer {
 public:
  explicit Writer(std::FILE* file) : file_(file) {}
  bool Write(const void* data, size_t bytes) {
    checksum_.Update(data, bytes);
    bytes_ += bytes;
    return std::fwrite(data, 1, bytes, file_) == bytes;
  }
  bool WriteChecksum() {
    const uint64_t value = checksum_.value();
    bytes_ += sizeof(value);
    return std::fwrite(&value, 1, sizeof(value), file_) == sizeof(value);
  }
  uint64_t bytes() const { return bytes_; }

 private:
  std::FILE* file_;
  Fnv1a checksum_;
  uint64_t bytes_ = 0;
};

class Reader {
 public:
  explicit Reader(std::FILE* file) : file_(file) {}
  bool Read(void* data, size_t bytes) {
    if (std::fread(data, 1, bytes, file_) != bytes) return false;
    checksum_.Update(data, bytes);
    return true;
  }
  bool VerifyChecksum() {
    uint64_t stored = 0;
    if (std::fread(&stored, 1, sizeof(stored), file_) != sizeof(stored)) {
      return false;
    }
    return stored == checksum_.value();
  }

 private:
  std::FILE* file_;
  Fnv1a checksum_;
};

bool WriteProgress(Writer* writer, const TrainProgress& progress) {
  const int64_t step = progress.global_step;
  const uint8_t has_cached = progress.rng_state.has_cached_gaussian ? 1 : 0;
  return writer->Write(&step, sizeof(step)) &&
         writer->Write(progress.rng_state.s.data(), 4 * sizeof(uint64_t)) &&
         writer->Write(&has_cached, sizeof(has_cached)) &&
         writer->Write(&progress.rng_state.cached_gaussian, sizeof(double)) &&
         writer->Write(&progress.loss_scale, sizeof(double)) &&
         writer->Write(&progress.scaler_good_steps, sizeof(int32_t)) &&
         writer->Write(&progress.scaler_overflows, sizeof(uint64_t)) &&
         writer->Write(&progress.scaler_growths, sizeof(uint64_t));
}

bool ReadProgress(Reader* reader, TrainProgress* progress) {
  uint8_t has_cached = 0;
  const bool ok =
      reader->Read(&progress->global_step, sizeof(int64_t)) &&
      reader->Read(progress->rng_state.s.data(), 4 * sizeof(uint64_t)) &&
      reader->Read(&has_cached, sizeof(has_cached)) &&
      reader->Read(&progress->rng_state.cached_gaussian, sizeof(double)) &&
      reader->Read(&progress->loss_scale, sizeof(double)) &&
      reader->Read(&progress->scaler_good_steps, sizeof(int32_t)) &&
      reader->Read(&progress->scaler_overflows, sizeof(uint64_t)) &&
      reader->Read(&progress->scaler_growths, sizeof(uint64_t));
  progress->rng_state.has_cached_gaussian = has_cached != 0;
  progress->has_progress = ok;
  return ok;
}

bool WriteString(Writer* writer, const std::string& value) {
  const uint32_t len = uint32_t(value.size());
  return writer->Write(&len, sizeof(len)) &&
         writer->Write(value.data(), value.size());
}

bool ReadString(Reader* reader, uint32_t max_bytes, std::string* out) {
  uint32_t len = 0;
  if (!reader->Read(&len, sizeof(len)) || len > max_bytes) return false;
  out->resize(len);
  return len == 0 || reader->Read(out->data(), len);
}

/// Self-describing slot values: element count then fp32 payload.
bool WriteFloatBlock(Writer* writer, const std::vector<float>& values) {
  const uint64_t count = values.size();
  return writer->Write(&count, sizeof(count)) &&
         writer->Write(values.data(), count * sizeof(float));
}

bool ReadFloatBlock(Reader* reader, std::vector<float>* out) {
  uint64_t count = 0;
  if (!reader->Read(&count, sizeof(count))) return false;
  out->resize(count);
  return count == 0 || reader->Read(out->data(), count * sizeof(float));
}

}  // namespace

util::Status SaveCheckpoint(LockFreeUpdater* updater, const std::string& path,
                            const TrainProgress* progress,
                            uint64_t* bytes_written) {
  if (updater == nullptr) return util::Status::InvalidArgument("null updater");
  ANGEL_FAULT_CHECK("checkpoint.write");
  const std::string tmp_path = path + ".tmp";
  std::FILE* file = std::fopen(tmp_path.c_str(), "wb");
  if (file == nullptr) {
    return util::Status::IoError("cannot open " + tmp_path);
  }
  Writer writer(file);
  const uint32_t num_layers = uint32_t(updater->num_layers());
  const TrainProgress defaults;
  bool ok = writer.Write(kMagic, sizeof(kMagic)) &&
            writer.Write(&kVersion, sizeof(kVersion)) &&
            WriteProgress(&writer, progress != nullptr ? *progress : defaults) &&
            WriteString(&writer, updater->optimizer_rule()) &&
            writer.Write(&num_layers, sizeof(num_layers));
  for (uint32_t l = 0; ok && l < num_layers; ++l) {
    LockFreeUpdater::LayerState state;
    // Per-layer quiesce: safe while the updater threads keep running.
    const util::Status exported = updater->SnapshotLayerState(int(l), &state);
    if (!exported.ok()) {
      std::fclose(file);
      std::remove(tmp_path.c_str());
      return exported;
    }
    const uint64_t count = state.params.size();
    const int64_t step = state.step;
    const uint32_t num_slots = uint32_t(state.slots.size());
    ok = writer.Write(&count, sizeof(count)) &&
         writer.Write(&step, sizeof(step)) &&
         writer.Write(&num_slots, sizeof(num_slots)) &&
         writer.Write(state.params.data(), count * sizeof(float));
    for (uint32_t s = 0; ok && s < num_slots; ++s) {
      ok = WriteString(&writer, state.slots[s].name) &&
           WriteFloatBlock(&writer, state.slots[s].values);
    }
  }
  ok = ok && writer.WriteChecksum();
  // Flush user-space buffers and force the data to stable storage before the
  // rename publishes it: a crash right after the rename must never leave a
  // checkpoint whose bytes were still in the page cache only.
  if (ok && std::fflush(file) != 0) ok = false;
  if (ok && ::fsync(::fileno(file)) != 0) ok = false;
  if (std::fclose(file) != 0) ok = false;
  if (!ok) {
    std::remove(tmp_path.c_str());
    return util::Status::IoError("short write to " + tmp_path);
  }
  const util::Status rename_fault =
      util::FaultInjector::Instance().Check("checkpoint.rename");
  if (!rename_fault.ok() ||
      std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return rename_fault.ok()
               ? util::Status::IoError("rename to " + path + " failed")
               : rename_fault;
  }
  if (bytes_written != nullptr) *bytes_written = writer.bytes();
  return util::Status::OK();
}

util::Status LoadCheckpoint(LockFreeUpdater* updater, const std::string& path,
                            TrainProgress* progress) {
  if (updater == nullptr) return util::Status::InvalidArgument("null updater");
  if (updater->running()) {
    return util::Status::FailedPrecondition(
        "Stop() the updater before restoring");
  }
  if (progress != nullptr) *progress = TrainProgress();
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return util::Status::NotFound("no checkpoint at " + path);
  }
  Reader reader(file);
  char magic[8];
  uint32_t version = 0, num_layers = 0;
  if (!reader.Read(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    std::fclose(file);
    return util::Status::InvalidArgument(path + " is not a checkpoint");
  }
  if (!reader.Read(&version, sizeof(version)) || version < kMinVersion ||
      version > kVersion) {
    std::fclose(file);
    return util::Status::InvalidArgument(
        path + ": unsupported checkpoint version " + std::to_string(version) +
        " (this build reads v" + std::to_string(kMinVersion) + "..v" +
        std::to_string(kVersion) + ")");
  }
  TrainProgress loaded_progress;
  if (version >= 2 && !ReadProgress(&reader, &loaded_progress)) {
    std::fclose(file);
    return util::Status::IoError(path + ": truncated in the progress block");
  }
  // v1/v2 predate self-describing optimizer state: they are Adam layers
  // ({m, v}) by construction.
  std::string rule = "adam";
  if (version >= 3 && !ReadString(&reader, kMaxRuleNameBytes, &rule)) {
    std::fclose(file);
    return util::Status::IoError(path + ": truncated in the rule name");
  }
  if (rule != updater->optimizer_rule()) {
    std::fclose(file);
    return util::Status::InvalidArgument(
        path + " holds optimizer rule '" + rule +
        "' but the updater is configured for '" + updater->optimizer_rule() +
        "'");
  }
  if (!reader.Read(&num_layers, sizeof(num_layers))) {
    std::fclose(file);
    return util::Status::IoError(path + ": truncated in the header");
  }
  if (int(num_layers) != updater->num_layers()) {
    std::fclose(file);
    return util::Status::InvalidArgument(
        path + " has " + std::to_string(num_layers) + " layers, model has " +
        std::to_string(updater->num_layers()));
  }

  // Read everything (and verify the checksum) before touching the updater,
  // so a corrupt file cannot leave it half-restored.
  std::vector<LockFreeUpdater::LayerState> states(num_layers);
  for (uint32_t l = 0; l < num_layers; ++l) {
    uint64_t count = 0;
    int64_t step = 0;
    if (!reader.Read(&count, sizeof(count)) ||
        !reader.Read(&step, sizeof(step))) {
      std::fclose(file);
      return util::Status::IoError(path + ": truncated in layer " +
                                   std::to_string(l) + " header");
    }
    LockFreeUpdater::LayerState& state = states[l];
    state.step = long(step);
    if (version >= 3) {
      uint32_t num_slots = 0;
      if (!reader.Read(&num_slots, sizeof(num_slots)) ||
          num_slots > kMaxSlots) {
        std::fclose(file);
        return util::Status::IoError(path + ": truncated in layer " +
                                     std::to_string(l) + " header");
      }
      state.params.resize(count);
      if (!reader.Read(state.params.data(), count * sizeof(float))) {
        std::fclose(file);
        return util::Status::IoError(path + ": truncated in layer " +
                                     std::to_string(l) + " payload");
      }
      state.slots.resize(num_slots);
      for (uint32_t s = 0; s < num_slots; ++s) {
        if (!ReadString(&reader, kMaxRuleNameBytes, &state.slots[s].name) ||
            !ReadFloatBlock(&reader, &state.slots[s].values)) {
          std::fclose(file);
          return util::Status::IoError(path + ": truncated in layer " +
                                       std::to_string(l) + " slot " +
                                       std::to_string(s));
        }
      }
    } else {
      // v1/v2 fixed layer layout: count | (adam_)step | p32 | m32 | v32.
      state.params.resize(count);
      state.slots.resize(2);
      state.slots[0].name = "m";
      state.slots[0].values.resize(count);
      state.slots[1].name = "v";
      state.slots[1].values.resize(count);
      if (!reader.Read(state.params.data(), count * sizeof(float)) ||
          !reader.Read(state.slots[0].values.data(),
                       count * sizeof(float)) ||
          !reader.Read(state.slots[1].values.data(),
                       count * sizeof(float))) {
        std::fclose(file);
        return util::Status::IoError(path + ": truncated in layer " +
                                     std::to_string(l) + " payload");
      }
    }
  }
  const bool checksum_ok = reader.VerifyChecksum();
  std::fclose(file);
  if (!checksum_ok) {
    return util::Status::IoError(
        path + ": checksum mismatch (corrupt or torn checkpoint)");
  }
  for (uint32_t l = 0; l < num_layers; ++l) {
    ANGEL_RETURN_IF_ERROR(updater->ImportLayerState(int(l), states[l]));
  }
  if (progress != nullptr) *progress = loaded_progress;
  return util::Status::OK();
}

}  // namespace angelptm::core
