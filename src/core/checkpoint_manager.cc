#include "core/checkpoint_manager.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <system_error>

#include "obs/trace.h"
#include "util/logging.h"

namespace angelptm::core {
namespace {

namespace fs = std::filesystem;

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Parses "<stem>-NNNNNNNNN.ckpt" -> step; -1 when `name` does not match.
int64_t StepFromFilename(const std::string& stem, const std::string& name) {
  const std::string prefix = stem + "-";
  const std::string suffix = ".ckpt";
  if (name.size() <= prefix.size() + suffix.size()) return -1;
  if (name.compare(0, prefix.size(), prefix) != 0) return -1;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return -1;
  }
  int64_t step = 0;
  for (size_t i = prefix.size(); i < name.size() - suffix.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return -1;
    step = step * 10 + (name[i] - '0');
  }
  return step;
}

}  // namespace

CheckpointManager::CheckpointManager(const Options& options)
    : options_(options) {
  if (options_.keep_last < 1) options_.keep_last = 1;
  obs::Registry& registry = obs::Registry::Instance();
  metric_saves_ = registry.GetCounter("checkpoint/saves");
  metric_save_failures_ = registry.GetCounter("checkpoint/save_failures");
  metric_bytes_written_ = registry.GetCounter("checkpoint/bytes_written");
  metric_loads_ = registry.GetCounter("checkpoint/loads");
  metric_fallbacks_ = registry.GetCounter("checkpoint/fallbacks");
  metric_save_us_ = registry.GetHistogram("checkpoint/save_us");
}

util::Status CheckpointManager::Init() {
  if (options_.dir.empty()) {
    return util::Status::InvalidArgument("checkpoint dir not set");
  }
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  if (ec) {
    return util::Status::IoError("cannot create checkpoint dir " +
                                 options_.dir + ": " + ec.message());
  }
  return util::Status::OK();
}

std::string CheckpointManager::PathForStep(int64_t step) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%09lld", static_cast<long long>(step));
  return options_.dir + "/" + options_.basename + "-" + buf + ".ckpt";
}

std::vector<std::string> CheckpointManager::ListCheckpoints() const {
  std::vector<std::pair<int64_t, std::string>> found;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(options_.dir, ec)) {
    const std::string name = entry.path().filename().string();
    const int64_t step = StepFromFilename(options_.basename, name);
    if (step >= 0) found.emplace_back(step, entry.path().string());
  }
  std::sort(found.begin(), found.end());
  std::vector<std::string> paths;
  paths.reserve(found.size());
  for (auto& [step, path] : found) paths.push_back(std::move(path));
  return paths;
}

util::Status CheckpointManager::Save(LockFreeUpdater* updater,
                                     const TrainProgress& progress) {
  ANGEL_SPAN("checkpoint", "save");
  const uint64_t start = NowUs();
  uint64_t bytes = 0;
  const std::string path = PathForStep(progress.global_step);
  const util::Status saved =
      SaveCheckpoint(updater, path, &progress, &bytes);
  if (!saved.ok()) {
    metric_save_failures_->Increment();
    util::MutexLock lock(mutex_);
    stats_.save_failures += 1;
    return saved;
  }
  const uint64_t elapsed = NowUs() - start;
  metric_saves_->Increment();
  metric_bytes_written_->Increment(bytes);
  metric_save_us_->Record(elapsed);

  // Rotate: drop the oldest files beyond keep_last. The new file is already
  // durable, so deleting old ones cannot lose the only good checkpoint. A
  // failed delete is not a failed save — the extra file costs disk, not
  // correctness — but it must not pass silently (an undeletable directory
  // would otherwise fill the disk one checkpoint at a time).
  uint64_t rotate_failures = 0;
  std::vector<std::string> checkpoints = ListCheckpoints();
  while (checkpoints.size() > static_cast<size_t>(options_.keep_last)) {
    std::error_code ec;
    if (!fs::remove(checkpoints.front(), ec) || ec) {
      ANGEL_LOG(Warning) << "checkpoint rotation could not delete "
                         << checkpoints.front() << ": " << ec.message();
      rotate_failures += 1;
    }
    checkpoints.erase(checkpoints.begin());
  }

  util::MutexLock lock(mutex_);
  stats_.saves += 1;
  stats_.bytes_written += bytes;
  stats_.rotate_failures += rotate_failures;
  stats_.last_saved_step = progress.global_step;
  stats_.save_us.Record(elapsed);
  return util::Status::OK();
}

util::Result<TrainProgress> CheckpointManager::LoadLatest(
    LockFreeUpdater* updater) {
  ANGEL_SPAN("checkpoint", "load_latest");
  const std::vector<std::string> checkpoints = ListCheckpoints();
  util::Status last_error = util::Status::NotFound(
      "no checkpoint under " + options_.dir);
  // Newest first; fall back on corruption.
  for (auto it = checkpoints.rbegin(); it != checkpoints.rend(); ++it) {
    TrainProgress progress;
    const util::Status loaded = LoadCheckpoint(updater, *it, &progress);
    if (loaded.ok()) {
      metric_loads_->Increment();
      util::MutexLock lock(mutex_);
      stats_.loads += 1;
      return progress;
    }
    if (loaded.code() == util::StatusCode::kFailedPrecondition) {
      return loaded;  // Running updater: retrying older files cannot help.
    }
    ANGEL_LOG(Warning) << "checkpoint " << *it << " unusable ("
                       << loaded.ToString() << "); falling back";
    metric_fallbacks_->Increment();
    {
      util::MutexLock lock(mutex_);
      stats_.fallbacks += 1;
    }
    last_error = loaded;
  }
  return last_error;
}

CheckpointManager::Stats CheckpointManager::Snapshot() const {
  util::MutexLock lock(mutex_);
  return stats_;
}

}  // namespace angelptm::core
