#ifndef ANGELPTM_CORE_ADAM_H_
#define ANGELPTM_CORE_ADAM_H_

#include <cmath>
#include <cstddef>

namespace angelptm::core {

/// Adam hyper-parameters (Kingma & Ba), the optimizer the paper's memory
/// accounting assumes (fp32 master parameter + first and second moments).
struct AdamConfig {
  double learning_rate = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  double weight_decay = 0.0;
};

/// One Adam step over `count` elements: fp32 master params and moments,
/// gradients provided in fp32 (already cast from the fp16 buffers).
/// `step` is 1-based and drives bias correction.
inline void AdamUpdate(const AdamConfig& config, float* params, float* m,
                       float* v, const float* grads, size_t count,
                       long step) {
  const double bc1 = 1.0 - std::pow(config.beta1, double(step));
  const double bc2 = 1.0 - std::pow(config.beta2, double(step));
  for (size_t i = 0; i < count; ++i) {
    double g = grads[i];
    if (config.weight_decay != 0.0) g += config.weight_decay * params[i];
    const double mi = config.beta1 * m[i] + (1.0 - config.beta1) * g;
    const double vi = config.beta2 * v[i] + (1.0 - config.beta2) * g * g;
    m[i] = float(mi);
    v[i] = float(vi);
    const double m_hat = mi / bc1;
    const double v_hat = vi / bc2;
    params[i] -= float(config.learning_rate * m_hat /
                       (std::sqrt(v_hat) + config.epsilon));
  }
}

}  // namespace angelptm::core

#endif  // ANGELPTM_CORE_ADAM_H_
