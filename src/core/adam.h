#ifndef ANGELPTM_CORE_ADAM_H_
#define ANGELPTM_CORE_ADAM_H_

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "train/simd/dispatch.h"
#include "train/simd/kernels_avx2.h"
#include "util/parallel_for.h"

namespace angelptm::core {

/// Adam hyper-parameters (Kingma & Ba), the optimizer the paper's memory
/// accounting assumes (fp32 master parameter + first and second moments).
struct AdamConfig {
  double learning_rate = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  double weight_decay = 0.0;
};

/// Adam over the element range [begin, end) with precomputed bias
/// corrections. The math is strictly elementwise, so any partition of the
/// range produces bitwise-identical results — which is what lets
/// AdamUpdate below run the range blocked and in parallel.
inline void AdamUpdateRange(const AdamConfig& config, float* params, float* m,
                            float* v, const float* grads, size_t begin,
                            size_t end, double bc1, double bc2) {
  for (size_t i = begin; i < end; ++i) {
    double g = grads[i];
    if (config.weight_decay != 0.0) g += config.weight_decay * params[i];
    const double mi = config.beta1 * m[i] + (1.0 - config.beta1) * g;
    const double vi = config.beta2 * v[i] + (1.0 - config.beta2) * g * g;
    m[i] = float(mi);
    v[i] = float(vi);
    const double m_hat = mi / bc1;
    const double v_hat = vi / bc2;
    params[i] -= float(config.learning_rate * m_hat /
                       (std::sqrt(v_hat) + config.epsilon));
  }
}

/// One Adam step over `count` elements: fp32 master params and moments,
/// gradients provided in fp32 (already cast from the fp16 buffers).
/// `step` is 1-based and drives bias correction. Runs blocked and in
/// parallel on util::ComputePool(); because the update is elementwise the
/// result is bitwise identical to the single-threaded loop regardless of
/// the thread count, so the lock-free updater's optimizer step scales with
/// cores without perturbing convergence.
inline void AdamUpdate(const AdamConfig& config, float* params, float* m,
                       float* v, const float* grads, size_t count,
                       long step) {
  const double bc1 = 1.0 - std::pow(config.beta1, double(step));
  const double bc2 = 1.0 - std::pow(config.beta2, double(step));
  // Multiple of the AVX2 block width (8): the vectorized path aligns its
  // vector loop to absolute 8-element blocks, so with an 8-multiple grain
  // every chunk boundary is also a block boundary and the bitwise
  // stability guarantee holds trivially (and would hold regardless; see
  // simd::avx2::AdamUpdateBlock).
  constexpr size_t kAdamGrain = 8192;
  if (simd::Dispatch() == simd::IsaPath::kAvx2) {
    const float inv_bc1 = float(1.0 / bc1);
    const float inv_bc2 = float(1.0 / bc2);
    util::ParallelFor(
        util::ComputePool(), 0, count, kAdamGrain,
        [&config, params, m, v, grads, inv_bc1, inv_bc2](size_t lo,
                                                         size_t hi) {
          simd::avx2::AdamUpdateBlock(
              params, m, v, grads, lo, hi, float(config.learning_rate),
              float(config.beta1), float(config.beta2), float(config.epsilon),
              float(config.weight_decay), inv_bc1, inv_bc2);
        });
    return;
  }
  util::ParallelFor(util::ComputePool(), 0, count, kAdamGrain,
                    [&config, params, m, v, grads, bc1, bc2](size_t lo,
                                                             size_t hi) {
                      AdamUpdateRange(config, params, m, v, grads, lo, hi,
                                      bc1, bc2);
                    });
}

}  // namespace angelptm::core

#endif  // ANGELPTM_CORE_ADAM_H_
