#ifndef ANGELPTM_CORE_EXECUTOR_H_
#define ANGELPTM_CORE_EXECUTOR_H_

#include <atomic>
#include <functional>
#include <future>
#include <memory>

#include "mem/device.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace angelptm::core {

/// The Executor of §5: schedules computations onto per-device streams. It
/// "maintains a separate stream for each of these computational devices,
/// including a CPU stream and a GPU stream"; work submitted to one stream
/// executes in submission order, and streams run concurrently with each
/// other — the property the unified scheduler exploits to overlap CPU
/// optimizer work with GPU compute.
class Executor {
 public:
  Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Enqueues `fn` on the device's stream; the future resolves with its
  /// status once it has run. Tasks on one stream never reorder.
  std::future<util::Status> Submit(mem::DeviceKind device,
                                   std::function<util::Status()> fn);

  /// Blocks until every task previously submitted to `device` has finished.
  void Synchronize(mem::DeviceKind device);
  /// Blocks until both streams drain.
  void SynchronizeAll();

  uint64_t tasks_completed(mem::DeviceKind device) const;

 private:
  struct Stream {
    util::ThreadPool pool{1};  // One thread = in-order stream semantics.
    std::atomic<uint64_t> completed{0};
  };
  Stream& StreamFor(mem::DeviceKind device);
  const Stream& StreamFor(mem::DeviceKind device) const;

  Stream gpu_stream_;
  Stream cpu_stream_;
};

}  // namespace angelptm::core

#endif  // ANGELPTM_CORE_EXECUTOR_H_
