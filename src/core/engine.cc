#include "core/engine.h"

#include <algorithm>
#include <chrono>
#include <string>

#include "core/unified_scheduler.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace angelptm::core {

Engine::Engine(const EngineOptions& options) : options_(options) {}

Engine::~Engine() {
  if (updater_ != nullptr) updater_->Stop();
  if (copy_engine_ != nullptr) copy_engine_->Drain();
  // Release working tensors before the allocator/memory go down.
  for (size_t l = 0; l < layers_.size(); ++l) {
    (void)ReleaseWorkingTensor(static_cast<int>(l));
  }
}

util::Result<std::unique_ptr<Engine>> Engine::Create(
    const EngineOptions& options) {
  std::unique_ptr<Engine> engine(new Engine(options));
  engine->memory_ =
      std::make_unique<mem::HierarchicalMemory>(options.memory);
  engine->allocator_ = std::make_unique<Allocator>(engine->memory_.get());
  engine->copy_engine_ = std::make_unique<mem::CopyEngine>(
      engine->memory_.get(), options.copy_threads);
  LockFreeUpdater::Options updater_options;
  updater_options.optimizer = ResolveLegacyAdam(options.optimizer,
                                                options.adam);
  updater_options.master_device = options.master_device;
  engine->updater_ = std::make_unique<LockFreeUpdater>(
      engine->allocator_.get(), updater_options);
  engine->metric_prefetch_move_failures_ =
      obs::Registry::Instance().GetCounter("engine/prefetch_move_failures");
  return engine;
}

util::Result<int> Engine::RegisterLayer(
    const std::vector<float>& initial_params) {
  if (steps_completed_ > 0 || step_active_) {
    return util::Status::FailedPrecondition(
        "layers must be registered before training starts");
  }
  ANGEL_ASSIGN_OR_RETURN(const int index,
                         updater_->AddLayer(initial_params));
  WorkingLayer layer;
  layer.count = initial_params.size();
  layers_.push_back(std::move(layer));
  ANGEL_CHECK(index == int(layers_.size()) - 1);
  return index;
}

util::Status Engine::BeginStep() {
  ANGEL_SPAN("engine", "begin_step");
  if (step_active_) {
    return util::Status::FailedPrecondition("step already active");
  }
  if (layers_.empty()) {
    return util::Status::FailedPrecondition("no layers registered");
  }
  step_active_ = true;
  current_op_ = 0;
  for (auto& layer : layers_) {
    layer.uses_this_step = 0;
    layer.staged_this_step = false;
  }
  if (steps_completed_ == 0) {
    tracer_.Reset();
  }
  planner_.BeginStep();
  if (options_.lock_free && !updater_->running()) {
    updater_->Start();
  }
  return IssueReadyPrefetches();
}

util::Status Engine::StageWorkingTensor(int layer_index) {
  WorkingLayer& layer = layers_[layer_index];
  if (layer.tensor == nullptr) {
    ANGEL_ASSIGN_OR_RETURN(
        layer.tensor,
        allocator_->Allocate({layer.count}, DType::kFp16,
                             mem::DeviceKind::kCpu));
  }
  std::vector<float> params;
  ANGEL_RETURN_IF_ERROR(updater_->FetchParams(layer_index, &params));
  ANGEL_RETURN_IF_ERROR(layer.tensor->WriteFloats(params));
  layer.staged_this_step = true;
  return util::Status::OK();
}

util::Status Engine::IssuePrefetch(int layer_index) {
  WorkingLayer& layer = layers_[layer_index];
  if (layer.staged_this_step) return util::Status::OK();
  ANGEL_RETURN_IF_ERROR(StageWorkingTensor(layer_index));
  layer.pending_moves.clear();
  for (mem::Page* page : layer.tensor->pages()) {
    layer.pending_moves.push_back(
        copy_engine_->MoveAsync(page, mem::DeviceKind::kGpu));
  }
  return util::Status::OK();
}

void Engine::SettlePendingMoves(WorkingLayer& layer) {
  // Settle in-flight prefetch moves BEFORE inspecting residence: the
  // copy-engine worker writes the page's device, and the future is the only
  // synchronization edge between that write and this read. get() — not
  // wait() — so a failed move's Status is observed: the layer stays
  // CPU-resident and recovers through the on-demand path at its next use,
  // so the failure is counted rather than propagated.
  for (auto& future : layer.pending_moves) {
    const util::Status status = future.get();
    if (!status.ok()) {
      ++prefetch_move_failures_;
      metric_prefetch_move_failures_->Increment();
      ANGEL_LOG(Warning) << "prefetch move failed: " << status.ToString();
    }
  }
  layer.pending_moves.clear();
}

util::Status Engine::MoveWithEviction(int layer_index) {
  for (;;) {
    const util::Status moved =
        allocator_->Move(layers_[layer_index].tensor, mem::DeviceKind::kGpu);
    if (!moved.IsResourceExhausted()) return moved;
    // The tier is full: push another staged layer's working tensor back to
    // the CPU tier (it will be re-fetched at its next use — the on-demand
    // behaviour Algorithm 1's wait-stack creates under memory pressure).
    // Victim order is Belady-style once the planner is trained: farthest
    // predicted next use first, the immediately-next layer last;
    // registration order during the warmup step.
    std::vector<uint64_t> candidates;
    for (size_t l = 0; l < layers_.size(); ++l) {
      if (int(l) == layer_index) continue;
      const WorkingLayer& other = layers_[l];
      if (other.tensor == nullptr || !other.staged_this_step) continue;
      candidates.push_back(l);
    }
    if (planner_.trained()) {
      candidates = planner_.RankEvictionCandidates(candidates);
    }
    bool evicted = false;
    for (const uint64_t l : candidates) {
      WorkingLayer& other = layers_[l];
      SettlePendingMoves(other);
      if (other.tensor->device_index() !=
          static_cast<int>(mem::DeviceKind::kGpu)) {
        continue;
      }
      ANGEL_RETURN_IF_ERROR(
          allocator_->Move(other.tensor, mem::DeviceKind::kCpu));
      evicted = true;
      break;
    }
    if (!evicted) return moved;  // Nothing left to evict: genuine OOM.
  }
}

util::Status Engine::IssueReadyPrefetches() {
  if (schedule_ == nullptr) return util::Status::OK();
  for (size_t l = 0; l < layers_.size(); ++l) {
    WorkingLayer& layer = layers_[l];
    if (layer.staged_this_step || layer.issue_trigger < 0) continue;
    if (layer.issue_trigger <= current_op_) {
      ANGEL_RETURN_IF_ERROR(IssuePrefetch(static_cast<int>(l)));
    }
  }
  return util::Status::OK();
}

util::Result<std::vector<float>> Engine::UseLayerParams(int layer_index) {
  ANGEL_SPAN("engine", "use_layer_params");
  if (!step_active_) {
    return util::Status::FailedPrecondition("no active step");
  }
  if (layer_index < 0 || layer_index >= int(layers_.size())) {
    return util::Status::InvalidArgument("bad layer index");
  }
  WorkingLayer& layer = layers_[layer_index];
  const bool tracing = schedule_ == nullptr;

  if (tracing) {
    tracer_.BeginOp("use_layer_" + std::to_string(layer_index));
    ANGEL_RETURN_IF_ERROR(tracer_.RecordAccess(layer_index, 2 * layer.count));
    planner_.RecordAccess(static_cast<uint64_t>(layer_index));
    // Measure production costs for the trace (§5: cpu_time = staging the
    // fp16 copy, gpu_time = the tier movement).
    const auto stage_start = std::chrono::steady_clock::now();
    if (!layer.staged_this_step) {
      ANGEL_RETURN_IF_ERROR(StageWorkingTensor(layer_index));
    }
    const auto move_start = std::chrono::steady_clock::now();
    ANGEL_RETURN_IF_ERROR(MoveWithEviction(layer_index));
    const auto move_end = std::chrono::steady_clock::now();
    tracer_.RecordProduceTime(
        layer_index,
        std::chrono::duration<double>(move_start - stage_start).count(),
        std::chrono::duration<double>(move_end - move_start).count());
    layer.total_uses += 1;
  } else {
    // Advance the access-order model past this use first, so eviction
    // ranking inside MoveWithEviction sees distances relative to the
    // *upcoming* accesses.
    planner_.OnUse(static_cast<uint64_t>(layer_index));
    // Whether this use had to block anywhere; decided once, after the final
    // residence check, so a single use is never counted as both a hit and a
    // wait (an eviction pushing the layer back to CPU after its futures
    // resolved used to double-count).
    bool waited = false;
    if (!layer.staged_this_step) {
      // The schedule left this layer CPU-resident (memory pressure):
      // fetch on demand, the wait-stack behaviour of Algorithm 1.
      waited = true;
      ANGEL_RETURN_IF_ERROR(StageWorkingTensor(layer_index));
      ANGEL_RETURN_IF_ERROR(MoveWithEviction(layer_index));
    } else if (!layer.pending_moves.empty()) {
      bool all_ready = true;
      for (auto& future : layer.pending_moves) {
        if (future.wait_for(std::chrono::seconds(0)) !=
            std::future_status::ready) {
          all_ready = false;
        }
      }
      bool any_failed = false;
      for (auto& future : layer.pending_moves) {
        if (!future.get().ok()) any_failed = true;
      }
      layer.pending_moves.clear();
      if (any_failed) {
        // A prefetch lost the race for frames; finish synchronously.
        ANGEL_RETURN_IF_ERROR(MoveWithEviction(layer_index));
        all_ready = false;
      }
      if (!all_ready) waited = true;
    }
    // An earlier eviction may have pushed this layer back to the CPU tier.
    if (layer.tensor->device_index() !=
        static_cast<int>(mem::DeviceKind::kGpu)) {
      ANGEL_RETURN_IF_ERROR(MoveWithEviction(layer_index));
      waited = true;
    }
    // Exactly-once accounting: prefetch_hits_ + prefetch_waits_ ==
    // scheduled_uses_ (asserted by the engine test). A use that was staged,
    // settled and still GPU-resident counts as a hit.
    ++scheduled_uses_;
    (waited ? prefetch_waits_ : prefetch_hits_) += 1;
  }

  std::vector<float> params;
  ANGEL_RETURN_IF_ERROR(layer.tensor->ReadFloats(&params));
  layer.uses_this_step += 1;
  current_op_ += 1;

  // Release after the last traced access: the caller holds a copy.
  if (!tracing && layer.uses_this_step >= layer.total_uses) {
    ANGEL_RETURN_IF_ERROR(ReleaseWorkingTensor(layer_index));
  }
  ANGEL_RETURN_IF_ERROR(IssueReadyPrefetches());
  return params;
}

util::Status Engine::StashActivation(
    int layer_index, const std::vector<float>& activations) {
  if (!step_active_) {
    return util::Status::FailedPrecondition("no active step");
  }
  if (layer_index < 0 || layer_index >= int(layers_.size())) {
    return util::Status::InvalidArgument("bad layer index");
  }
  WorkingLayer& layer = layers_[layer_index];
  if (layer.activation_stash != nullptr) {
    return util::Status::AlreadyExists("activation already stashed for layer " +
                                       std::to_string(layer_index));
  }
  // Prefer the fast tier; spill to CPU under pressure (the hierarchical-
  // memory behaviour that frees GPU memory for the working set).
  auto on_gpu = allocator_->Allocate({activations.size()}, DType::kFp16,
                                     mem::DeviceKind::kGpu);
  if (on_gpu.ok()) {
    layer.activation_stash = *on_gpu;
  } else {
    ANGEL_ASSIGN_OR_RETURN(
        layer.activation_stash,
        allocator_->Allocate({activations.size()}, DType::kFp16,
                             mem::DeviceKind::kCpu));
  }
  return layer.activation_stash->WriteFloats(activations);
}

util::Result<std::vector<float>> Engine::FetchActivation(int layer_index) {
  if (layer_index < 0 || layer_index >= int(layers_.size())) {
    return util::Status::InvalidArgument("bad layer index");
  }
  WorkingLayer& layer = layers_[layer_index];
  if (layer.activation_stash == nullptr) {
    return util::Status::NotFound("no stashed activation for layer " +
                                  std::to_string(layer_index));
  }
  std::vector<float> activations;
  ANGEL_RETURN_IF_ERROR(layer.activation_stash->ReadFloats(&activations));
  ANGEL_RETURN_IF_ERROR(allocator_->Release(layer.activation_stash));
  layer.activation_stash = nullptr;
  return activations;
}

util::Status Engine::PushGrads(int layer_index,
                               const std::vector<float>& grads) {
  if (!step_active_) {
    return util::Status::FailedPrecondition("no active step");
  }
  return updater_->OffloadGrads(layer_index, grads);
}

util::Status Engine::ReleaseWorkingTensor(int layer_index) {
  WorkingLayer& layer = layers_[layer_index];
  if (layer.tensor == nullptr) return util::Status::OK();
  SettlePendingMoves(layer);
  ANGEL_RETURN_IF_ERROR(allocator_->Release(layer.tensor));
  layer.tensor = nullptr;
  layer.staged_this_step = false;
  return util::Status::OK();
}

util::Status Engine::BuildScheduleFromTrace() {
  ScheduleInput input;
  input.world_size = 1;
  input.gpu_memory_budget = memory_->capacity_bytes(mem::DeviceKind::kGpu);
  const size_t page_bytes = memory_->page_bytes();

  // One schedule step per traced access, in trace (op) order.
  const auto traces = tracer_.Traces();
  std::vector<std::vector<PageRef>> layer_pages(layers_.size());
  for (size_t l = 0; l < layers_.size(); ++l) {
    uint64_t remaining = 2 * layers_[l].count;  // fp16 bytes.
    size_t k = 0;
    while (remaining > 0) {
      const uint64_t bytes = std::min<uint64_t>(remaining, page_bytes);
      layer_pages[l].push_back({l * 10000 + k, bytes});
      remaining -= bytes;
      ++k;
    }
  }
  // Recover the op -> layer mapping from the op names recorded in trace
  // mode ("use_layer_<index>").
  for (const std::string& name : tracer_.op_names()) {
    const int layer = std::stoi(name.substr(std::string("use_layer_").size()));
    SchedStep step;
    step.param_pages = layer_pages[layer];
    input.steps.push_back(step);
  }

  ANGEL_ASSIGN_OR_RETURN(Schedule schedule, BuildSchedule(input));
  schedule_ = std::make_unique<Schedule>(std::move(schedule));

  // Earliest movement trigger per layer; layers with no movement task stay
  // on demand.
  for (auto& layer : layers_) layer.issue_trigger = -1;
  for (const Task& task : schedule_->tasks) {
    if (task.op != TaskOp::kMoveToGpu) continue;
    const int layer = static_cast<int>(task.page_id / 10000);
    if (layers_[layer].issue_trigger < 0 ||
        task.trigger_id < layers_[layer].issue_trigger) {
      layers_[layer].issue_trigger = task.trigger_id;
    }
  }
  // The warmup trace is now the planner's learned periodic order; from the
  // next step on, MoveWithEviction ranks victims by predicted next use.
  planner_.FinishWarmup();
  return util::Status::OK();
}

util::Status Engine::EndStep() {
  ANGEL_SPAN("engine", "end_step");
  if (!step_active_) {
    return util::Status::FailedPrecondition("no active step");
  }
  copy_engine_->Drain();
  for (size_t l = 0; l < layers_.size(); ++l) {
    ANGEL_RETURN_IF_ERROR(ReleaseWorkingTensor(static_cast<int>(l)));
    if (layers_[l].activation_stash != nullptr) {
      // A stash the caller never fetched (e.g. an aborted backward).
      ANGEL_RETURN_IF_ERROR(
          allocator_->Release(layers_[l].activation_stash));
      layers_[l].activation_stash = nullptr;
    }
  }
  if (schedule_ == nullptr) {
    ANGEL_RETURN_IF_ERROR(BuildScheduleFromTrace());
  }
  if (!options_.lock_free) {
    ANGEL_RETURN_IF_ERROR(updater_->UpdateOnce());
  }
  step_active_ = false;
  steps_completed_ += 1;
  return util::Status::OK();
}

}  // namespace angelptm::core
