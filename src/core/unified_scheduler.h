#ifndef ANGELPTM_CORE_UNIFIED_SCHEDULER_H_
#define ANGELPTM_CORE_UNIFIED_SCHEDULER_H_

#include "core/schedule.h"
#include "util/status.h"

namespace angelptm::core {

/// The Unified Scheduler of §4.2: builds the task schedule for one training
/// iteration with the paper's *fine-grained life-time based scheduling*
/// (Algorithm 1).
///
/// Phase 1 front-loads move_to_gpu tasks for every parameter page (CPU->GPU
/// transfers are the slowest link, so start them first), popping the most
/// recently scheduled movements onto a wait-stack whenever a step's working
/// set would not fit, and re-scheduling them just-in-time as memory frees up.
/// Pages never re-scheduled stay CPU-resident and are fetched on demand by
/// their all_gather.
///
/// Phase 2 advances each all_gather task to the earliest trigger id that
/// provably does not overflow the memory budget (checked against the
/// replayed per-step memory profile), maximizing communication/computation
/// overlap.
///
/// The returned schedule is validated by replay: peak_gpu_bytes <= budget.
/// Returns OutOfMemory when even the fully on-demand schedule cannot fit.
[[nodiscard]] util::Result<Schedule> BuildSchedule(const ScheduleInput& input);

}  // namespace angelptm::core

#endif  // ANGELPTM_CORE_UNIFIED_SCHEDULER_H_
