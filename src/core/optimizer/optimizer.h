#ifndef ANGELPTM_CORE_OPTIMIZER_OPTIMIZER_H_
#define ANGELPTM_CORE_OPTIMIZER_OPTIMIZER_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/adam.h"
#include "core/dtype.h"
#include "util/status.h"

namespace angelptm::core {

/// Hyper-parameters for every registered update rule. A single flat config
/// (the Multiverso `UpdateOption` shape, SNIPPETS.md §2) keeps the
/// checkpoint/Trainer/Engine plumbing rule-agnostic; fields a rule does not
/// use are ignored by it.
struct OptimizerConfig {
  /// Registry key: "adam", "sgdm", "lamb" or "adafactor" (or a rule a test
  /// registered itself). Unknown rules fail Optimizer::Create.
  std::string rule = "adam";

  double learning_rate = 1e-3;
  /// First-moment decay (Adam/LAMB); the momentum coefficient for sgdm.
  double beta1 = 0.9;
  /// Second-moment decay (Adam/LAMB); the factored-stat decay for adafactor.
  double beta2 = 0.999;
  double epsilon = 1e-8;
  double weight_decay = 0.0;

  /// LAMB: the layer-wise trust ratio ||p|| / ||update|| is clamped into
  /// (0, lamb_trust_clamp] before scaling the learning rate.
  double lamb_trust_clamp = 10.0;

  /// Adafactor: a flat parameter vector is viewed as a rows x cols grid
  /// (ragged last row) for the factored second moment; the master state is
  /// rows + cols floats instead of Adam's 2 x count.
  size_t adafactor_cols = 128;
};

/// Declares one master-state slot an optimizer needs per layer: Adam needs
/// {m, v} of `count` fp32 each, sgdm a single {m}, adafactor a factored
/// {row, col} pair much smaller than the parameter count. The updater
/// allocates (and the checkpoint serializes) exactly what the layout
/// declares instead of assuming {m32, v32}.
struct SlotSpec {
  std::string name;
  size_t count = 0;
  DType dtype = DType::kFp32;
};

/// A mutable view of one allocated slot during Update (fp32 staging, same
/// convention as the params/grads pointers).
struct SlotView {
  float* data = nullptr;
  size_t count = 0;
};

/// A pluggable update rule (ROADMAP: "Pluggable optimizers"). Implementations
/// are stateless beyond their config — all mutable state lives in the slots —
/// so one instance may be shared across layers and threads (Update is const
/// and layers never share slots).
///
/// Contract:
///  * SlotLayout(count) is a pure function of `count` and the config.
///  * Update receives `slots` in SlotLayout order, each sized per its spec.
///  * `step` is 1-based (the first update of a layer passes step == 1) and
///    drives bias correction where the rule has any.
///  * Update must be deterministic for a fixed input regardless of the
///    compute-pool thread count (fixed-grain chunked reductions, not
///    atomics), so lock-free training stays reproducible.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Registry key this instance was created under ("adam", ...).
  virtual const std::string& name() const = 0;

  /// Master-state slots required for a layer of `param_count` elements.
  virtual std::vector<SlotSpec> SlotLayout(size_t param_count) const = 0;

  /// Applies one step to `params` given averaged `grads` (both `count`
  /// elements) and the layer's slots.
  [[nodiscard]] virtual util::Status Update(
      float* params, const float* grads, size_t count,
      const std::vector<SlotView>& slots, long step) const = 0;

  /// Factory: looks `config.rule` up in the registry (built-ins are
  /// registered on first use). Unknown rules return NotFound naming the
  /// registered ones.
  [[nodiscard]] static util::Result<std::unique_ptr<Optimizer>> Create(
      const OptimizerConfig& config);
};

using OptimizerFactory =
    std::unique_ptr<Optimizer> (*)(const OptimizerConfig& config);

/// Registers `factory` under `rule`, replacing any previous registration
/// (tests use this to shadow a rule). Returns true so implementations can
/// register from a static initializer if they want; built-ins register
/// explicitly via EnsureBuiltinOptimizersRegistered to survive static-library
/// dead stripping. Not thread-safe against concurrent Create — register at
/// startup.
bool RegisterOptimizer(const std::string& rule, OptimizerFactory factory);

/// Registry keys in sorted order (for error messages and docs).
std::vector<std::string> RegisteredOptimizers();

/// Idempotently registers the built-in rules (adam, sgdm, lamb, adafactor).
/// Called by Optimizer::Create; exposed for tools that list rules first.
void EnsureBuiltinOptimizersRegistered();

/// Back-compat shim for the pre-redesign `AdamConfig` knobs that still live
/// on TrainerOptions/EngineOptions: any legacy field that differs from its
/// AdamConfig default overrides the matching OptimizerConfig field. Callers
/// that never touch the legacy struct get `config` unchanged.
OptimizerConfig ResolveLegacyAdam(OptimizerConfig config,
                                  const AdamConfig& legacy);

}  // namespace angelptm::core

#endif  // ANGELPTM_CORE_OPTIMIZER_OPTIMIZER_H_
