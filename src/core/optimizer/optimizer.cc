#include "core/optimizer/optimizer.h"

#include <map>
#include <mutex>
#include <utility>

namespace angelptm::core {
namespace {

std::map<std::string, OptimizerFactory>& Registry() {
  // Leaked-on-purpose function-local: factories may be consulted from
  // benches/tests that outlive main()'s statics.
  static auto* registry =
      new std::map<std::string, OptimizerFactory>();  // lint: naked-new (intentional leak, no destruction-order hazard)
  return *registry;
}

}  // namespace

// Per-implementation registration hooks (defined in the rule's own .cc).
// Explicit calls instead of static initializers: the angelptm static library
// would otherwise dead-strip the unreferenced registration objects.
void RegisterAdamOptimizer();
void RegisterSgdmOptimizer();
void RegisterLambOptimizer();
void RegisterAdafactorOptimizer();

void EnsureBuiltinOptimizersRegistered() {
  static std::once_flag once;
  std::call_once(once, [] {
    RegisterAdamOptimizer();
    RegisterSgdmOptimizer();
    RegisterLambOptimizer();
    RegisterAdafactorOptimizer();
  });
}

bool RegisterOptimizer(const std::string& rule, OptimizerFactory factory) {
  Registry()[rule] = factory;
  return true;
}

std::vector<std::string> RegisteredOptimizers() {
  EnsureBuiltinOptimizersRegistered();
  std::vector<std::string> rules;
  rules.reserve(Registry().size());
  for (const auto& [rule, factory] : Registry()) rules.push_back(rule);
  return rules;
}

util::Result<std::unique_ptr<Optimizer>> Optimizer::Create(
    const OptimizerConfig& config) {
  EnsureBuiltinOptimizersRegistered();
  if (config.learning_rate <= 0.0) {
    return util::Status::InvalidArgument(
        "optimizer learning_rate must be positive");
  }
  const auto it = Registry().find(config.rule);
  if (it == Registry().end()) {
    std::string known;
    for (const std::string& rule : RegisteredOptimizers()) {
      if (!known.empty()) known += ", ";
      known += rule;
    }
    return util::Status::NotFound("unknown optimizer rule '" + config.rule +
                                  "' (registered: " + known + ")");
  }
  return it->second(config);
}

OptimizerConfig ResolveLegacyAdam(OptimizerConfig config,
                                  const AdamConfig& legacy) {
  const AdamConfig defaults;
  if (legacy.learning_rate != defaults.learning_rate) {
    config.learning_rate = legacy.learning_rate;
  }
  if (legacy.beta1 != defaults.beta1) config.beta1 = legacy.beta1;
  if (legacy.beta2 != defaults.beta2) config.beta2 = legacy.beta2;
  if (legacy.epsilon != defaults.epsilon) config.epsilon = legacy.epsilon;
  if (legacy.weight_decay != defaults.weight_decay) {
    config.weight_decay = legacy.weight_decay;
  }
  return config;
}

}  // namespace angelptm::core
