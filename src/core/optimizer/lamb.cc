#include <cmath>
#include <vector>

#include "core/optimizer/optimizer.h"
#include "util/parallel_for.h"

namespace angelptm::core {
namespace {

constexpr size_t kLambGrain = 8192;

/// LAMB (You et al.): Adam-style moments plus a layer-wise trust ratio
/// ||p|| / ||update|| scaling the learning rate. The two norms are global
/// reductions; they run as fixed-grain chunked partial sums over
/// ParallelForChunks, reduced sequentially in chunk order, so the result is
/// independent of the compute-pool thread count (the determinism contract
/// in optimizer.h).
class LambOptimizer final : public Optimizer {
 public:
  explicit LambOptimizer(const OptimizerConfig& config) : config_(config) {}

  const std::string& name() const override {
    static const std::string kName = "lamb";
    return kName;
  }

  std::vector<SlotSpec> SlotLayout(size_t param_count) const override {
    return {{"m", param_count, DType::kFp32},
            {"v", param_count, DType::kFp32}};
  }

  util::Status Update(float* params, const float* grads, size_t count,
                      const std::vector<SlotView>& slots,
                      long step) const override {
    if (slots.size() != 2 || slots[0].count != count ||
        slots[1].count != count) {
      return util::Status::InvalidArgument("lamb expects {m, v} slots");
    }
    float* m = slots[0].data;
    float* v = slots[1].data;
    const double b1 = config_.beta1;
    const double b2 = config_.beta2;
    const double eps = config_.epsilon;
    const double wd = config_.weight_decay;
    const double bc1 = 1.0 - std::pow(b1, double(step));
    const double bc2 = 1.0 - std::pow(b2, double(step));

    // Pass 1: moments + the raw update direction r, with per-chunk partial
    // sums for the two norms.
    std::vector<float> r(count);
    const size_t num_chunks = util::ParallelForNumChunks(0, count, kLambGrain);
    std::vector<double> p_sq(num_chunks, 0.0);
    std::vector<double> r_sq(num_chunks, 0.0);
    util::ParallelForChunks(
        util::ComputePool(), 0, count, kLambGrain,
        [&](size_t chunk, size_t lo, size_t hi) {
          double p_acc = 0.0;
          double r_acc = 0.0;
          for (size_t i = lo; i < hi; ++i) {
            const double g = grads[i];
            const double mi = b1 * m[i] + (1.0 - b1) * g;
            const double vi = b2 * v[i] + (1.0 - b2) * g * g;
            m[i] = float(mi);
            v[i] = float(vi);
            const double update =
                (mi / bc1) / (std::sqrt(vi / bc2) + eps) + wd * params[i];
            r[i] = float(update);
            p_acc += double(params[i]) * double(params[i]);
            r_acc += update * update;
          }
          p_sq[chunk] = p_acc;
          r_sq[chunk] = r_acc;
        });
    // Sequential chunk-order reduction: deterministic at any thread count.
    double p_norm_sq = 0.0;
    double r_norm_sq = 0.0;
    for (size_t c = 0; c < num_chunks; ++c) {
      p_norm_sq += p_sq[c];
      r_norm_sq += r_sq[c];
    }
    const double p_norm = std::sqrt(p_norm_sq);
    const double r_norm = std::sqrt(r_norm_sq);
    // Degenerate norms (all-zero params or a zero update) fall back to
    // trust 1 — plain Adam-style scaling — matching the reference LAMB.
    double trust = 1.0;
    if (p_norm > 0.0 && r_norm > 0.0) {
      trust = std::min(p_norm / r_norm, config_.lamb_trust_clamp);
    }

    // Pass 2: the scaled step.
    const double scaled_lr = config_.learning_rate * trust;
    const float* r_data = r.data();
    util::ParallelFor(util::ComputePool(), 0, count, kLambGrain,
                      [params, r_data, scaled_lr](size_t lo, size_t hi) {
                        for (size_t i = lo; i < hi; ++i) {
                          params[i] -= float(scaled_lr * r_data[i]);
                        }
                      });
    return util::Status::OK();
  }

 private:
  OptimizerConfig config_;
};

std::unique_ptr<Optimizer> MakeLamb(const OptimizerConfig& config) {
  return std::make_unique<LambOptimizer>(config);
}

}  // namespace

void RegisterLambOptimizer() { RegisterOptimizer("lamb", MakeLamb); }

}  // namespace angelptm::core
