#include "core/adam.h"
#include "core/optimizer/optimizer.h"

namespace angelptm::core {
namespace {

/// The default rule: a thin wrapper over the SIMD-dispatched AdamUpdate in
/// core/adam.h, so the registry path is bitwise-identical to the historic
/// hard-wired path (kernel_golden and the recovery bitwise-resume tests
/// pin this down).
class AdamOptimizer final : public Optimizer {
 public:
  explicit AdamOptimizer(const OptimizerConfig& config) {
    config_.learning_rate = config.learning_rate;
    config_.beta1 = config.beta1;
    config_.beta2 = config.beta2;
    config_.epsilon = config.epsilon;
    config_.weight_decay = config.weight_decay;
  }

  const std::string& name() const override {
    static const std::string kName = "adam";
    return kName;
  }

  std::vector<SlotSpec> SlotLayout(size_t param_count) const override {
    return {{"m", param_count, DType::kFp32},
            {"v", param_count, DType::kFp32}};
  }

  util::Status Update(float* params, const float* grads, size_t count,
                      const std::vector<SlotView>& slots,
                      long step) const override {
    if (slots.size() != 2 || slots[0].count != count ||
        slots[1].count != count) {
      return util::Status::InvalidArgument("adam expects {m, v} slots");
    }
    AdamUpdate(config_, params, slots[0].data, slots[1].data, grads, count,
               step);
    return util::Status::OK();
  }

 private:
  AdamConfig config_;
};

std::unique_ptr<Optimizer> MakeAdam(const OptimizerConfig& config) {
  return std::make_unique<AdamOptimizer>(config);
}

}  // namespace

void RegisterAdamOptimizer() { RegisterOptimizer("adam", MakeAdam); }

}  // namespace angelptm::core
