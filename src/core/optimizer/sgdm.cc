#include "core/optimizer/optimizer.h"
#include "util/parallel_for.h"

namespace angelptm::core {
namespace {

constexpr size_t kSgdmGrain = 8192;

/// SGD with (heavyball) momentum: m = beta1*m + g (+ wd*p); p -= lr*m.
/// Strictly elementwise, so the blocked parallel run is bitwise identical
/// to the sequential loop at any thread count.
class SgdmOptimizer final : public Optimizer {
 public:
  explicit SgdmOptimizer(const OptimizerConfig& config) : config_(config) {}

  const std::string& name() const override {
    static const std::string kName = "sgdm";
    return kName;
  }

  std::vector<SlotSpec> SlotLayout(size_t param_count) const override {
    return {{"m", param_count, DType::kFp32}};
  }

  util::Status Update(float* params, const float* grads, size_t count,
                      const std::vector<SlotView>& slots,
                      long /*step*/) const override {
    if (slots.size() != 1 || slots[0].count != count) {
      return util::Status::InvalidArgument("sgdm expects a {m} slot");
    }
    float* m = slots[0].data;
    const double momentum = config_.beta1;
    const double lr = config_.learning_rate;
    const double wd = config_.weight_decay;
    util::ParallelFor(util::ComputePool(), 0, count, kSgdmGrain,
                      [params, grads, m, momentum, lr, wd](size_t lo,
                                                           size_t hi) {
                        for (size_t i = lo; i < hi; ++i) {
                          double g = grads[i];
                          if (wd != 0.0) g += wd * params[i];
                          const double mi = momentum * m[i] + g;
                          m[i] = float(mi);
                          params[i] -= float(lr * mi);
                        }
                      });
    return util::Status::OK();
  }

 private:
  OptimizerConfig config_;
};

std::unique_ptr<Optimizer> MakeSgdm(const OptimizerConfig& config) {
  return std::make_unique<SgdmOptimizer>(config);
}

}  // namespace

void RegisterSgdmOptimizer() { RegisterOptimizer("sgdm", MakeSgdm); }

}  // namespace angelptm::core
