#include <algorithm>
#include <cmath>
#include <vector>

#include "core/optimizer/optimizer.h"
#include "util/parallel_for.h"

namespace angelptm::core {
namespace {

/// Rows of the factored grid processed per reduction chunk.
constexpr size_t kRowGrain = 64;
constexpr size_t kElemGrain = 8192;
/// Keeps the factored statistics strictly positive so v-hat never divides
/// zero by zero on all-zero gradients.
constexpr double kStatFloor = 1e-30;

/// Adafactor (Shazeer & Stern): the second moment is stored factored as a
/// per-row and per-column running average of g^2 over a rows x cols view of
/// the flat parameter vector — rows + cols floats of master state instead
/// of Adam's 2 x count, which is the "materially smaller master state" the
/// SSD tier and prefetch planner get stressed with. No first moment.
///
/// v-hat[i,j] = R[i] * C[j] / sum(R): the rank-1 reconstruction of the
/// running g^2 average. Row/column statistics are reduced in fixed chunk
/// order (deterministic at any thread count).
class AdafactorOptimizer final : public Optimizer {
 public:
  explicit AdafactorOptimizer(const OptimizerConfig& config)
      : config_(config) {
    if (config_.adafactor_cols == 0) config_.adafactor_cols = 1;
  }

  const std::string& name() const override {
    static const std::string kName = "adafactor";
    return kName;
  }

  std::vector<SlotSpec> SlotLayout(size_t param_count) const override {
    const size_t cols = std::min(config_.adafactor_cols, param_count);
    const size_t rows = (param_count + cols - 1) / cols;
    return {{"row", rows, DType::kFp32}, {"col", cols, DType::kFp32}};
  }

  util::Status Update(float* params, const float* grads, size_t count,
                      const std::vector<SlotView>& slots,
                      long step) const override {
    const size_t cols = std::min(config_.adafactor_cols, count);
    const size_t rows = (count + cols - 1) / cols;
    if (slots.size() != 2 || slots[0].count != rows ||
        slots[1].count != cols) {
      return util::Status::InvalidArgument(
          "adafactor expects {row, col} slots sized for the factored grid");
    }
    float* row_stat = slots[0].data;
    float* col_stat = slots[1].data;
    const double b2 = config_.beta2;
    const double bc2 = 1.0 - std::pow(b2, double(step));

    // Fresh row/col sums of g^2 over the (ragged) grid. Each chunk of rows
    // produces its own column partial; chunk-order reduction keeps both
    // statistics bitwise independent of the worker count.
    std::vector<double> row_sum(rows, 0.0);
    const size_t num_chunks = util::ParallelForNumChunks(0, rows, kRowGrain);
    std::vector<std::vector<double>> col_partial(
        num_chunks, std::vector<double>(cols, 0.0));
    util::ParallelForChunks(
        util::ComputePool(), 0, rows, kRowGrain,
        [&](size_t chunk, size_t row_lo, size_t row_hi) {
          std::vector<double>& cols_acc = col_partial[chunk];
          for (size_t i = row_lo; i < row_hi; ++i) {
            const size_t lo = i * cols;
            const size_t hi = std::min(count, lo + cols);
            double acc = 0.0;
            for (size_t k = lo; k < hi; ++k) {
              const double g2 = double(grads[k]) * double(grads[k]) +
                                kStatFloor;
              acc += g2;
              cols_acc[k - lo] += g2;
            }
            row_sum[i] = acc;
          }
        });
    std::vector<double> col_sum(cols, 0.0);
    for (size_t c = 0; c < num_chunks; ++c) {
      for (size_t j = 0; j < cols; ++j) col_sum[j] += col_partial[c][j];
    }

    // Decayed running averages, then the shared v-hat denominator.
    double row_total = 0.0;
    for (size_t i = 0; i < rows; ++i) {
      const double ri = b2 * row_stat[i] + (1.0 - b2) * row_sum[i];
      row_stat[i] = float(ri);
      row_total += ri / bc2;
    }
    for (size_t j = 0; j < cols; ++j) {
      col_stat[j] = float(b2 * col_stat[j] + (1.0 - b2) * col_sum[j]);
    }
    if (row_total <= 0.0) row_total = kStatFloor;

    const double lr = config_.learning_rate;
    const double eps = config_.epsilon;
    const double wd = config_.weight_decay;
    const double inv_total = 1.0 / row_total;
    util::ParallelFor(
        util::ComputePool(), 0, count, kElemGrain,
        [&](size_t lo, size_t hi) {
          for (size_t k = lo; k < hi; ++k) {
            const size_t i = k / cols;
            const size_t j = k % cols;
            const double v_hat = (double(row_stat[i]) / bc2) *
                                 (double(col_stat[j]) / bc2) * inv_total;
            double u = double(grads[k]) / (std::sqrt(v_hat) + eps);
            if (wd != 0.0) u += wd * params[k];
            params[k] -= float(lr * u);
          }
        });
    return util::Status::OK();
  }

 private:
  OptimizerConfig config_;
};

std::unique_ptr<Optimizer> MakeAdafactor(const OptimizerConfig& config) {
  return std::make_unique<AdafactorOptimizer>(config);
}

}  // namespace

void RegisterAdafactorOptimizer() {
  RegisterOptimizer("adafactor", MakeAdafactor);
}

}  // namespace angelptm::core
