#include "core/unified_scheduler.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/logging.h"
#include "util/units.h"

namespace angelptm::core {
namespace {

/// Usage history of one page across the step list (a page can serve both a
/// forward and a backward step).
struct PageUses {
  uint64_t bytes = 0;
  std::vector<int> steps;  // Ascending.
};

/// First use of the page strictly after step `i`, or -1.
int NextUse(const PageUses& uses, int i) {
  const auto it = std::upper_bound(uses.steps.begin(), uses.steps.end(), i);
  return it == uses.steps.end() ? -1 : *it;
}

}  // namespace

util::Result<Schedule> BuildSchedule(const ScheduleInput& input) {
  if (input.world_size < 1) {
    return util::Status::InvalidArgument("world_size must be >= 1");
  }
  const int num_steps = static_cast<int>(input.steps.size());
  const int64_t budget = static_cast<int64_t>(input.gpu_memory_budget);

  // Index page usage across steps.
  std::unordered_map<uint64_t, PageUses> page_uses;
  for (int s = 0; s < num_steps; ++s) {
    for (const PageRef& page : input.steps[s].param_pages) {
      PageUses& uses = page_uses[page.page_id];
      if (uses.bytes != 0 && uses.bytes != page.bytes) {
        return util::Status::InvalidArgument(
            "page " + std::to_string(page.page_id) +
            " referenced with inconsistent sizes");
      }
      uses.bytes = page.bytes;
      uses.steps.push_back(s);
    }
  }

  // Task list with tombstones so pops are O(1); compacted at the end.
  std::vector<Task> tasks;
  std::vector<char> alive;
  std::vector<size_t> move_stack;  // Indices of live movement tasks.
  auto append = [&](Task task) {
    tasks.push_back(task);
    alive.push_back(1);
    if (task.op == TaskOp::kMoveToGpu) move_stack.push_back(tasks.size() - 1);
  };

  // ---- Phase 1: prioritize move_to_gpu tasks (Algorithm 1 lines 1-15). ----
  // Initial sweep: prefetch every distinct parameter page at trigger 0, in
  // first-use order (CPU->GPU is the slowest link, so it starts first).
  std::unordered_set<uint64_t> resident;
  int64_t resident_bytes = 0;
  {
    std::unordered_set<uint64_t> seen;
    for (int s = 0; s < num_steps; ++s) {
      for (const PageRef& page : input.steps[s].param_pages) {
        if (!seen.insert(page.page_id).second) continue;
        append({TaskOp::kMoveToGpu, page.page_id, page.bytes, s, 0});
        resident.insert(page.page_id);
        resident_bytes += int64_t(page.bytes);
      }
    }
  }

  struct WaitEntry {
    uint64_t page_id;
    uint64_t bytes;
  };
  std::vector<WaitEntry> wait_stack;
  int64_t retained_total = 0;

  for (int i = 0; i < num_steps; ++i) {
    const SchedStep& step = input.steps[i];
    int64_t gather_alloc = 0;
    for (const PageRef& page : step.param_pages) {
      gather_alloc += int64_t(page.bytes) * input.world_size;
    }
    const int64_t requirement = gather_alloc +
                                int64_t(step.workspace_bytes) +
                                std::max<int64_t>(step.retained_bytes, 0);

    // Pop the most recent movements until this step fits (lines 7-9).
    while (budget - resident_bytes - retained_total < requirement) {
      while (!move_stack.empty() && !alive[move_stack.back()]) {
        move_stack.pop_back();
      }
      if (move_stack.empty()) {
        return util::Status::OutOfMemory(
            "step " + std::to_string(i) + " needs " +
            util::FormatBytes(uint64_t(requirement)) + " but only " +
            util::FormatBytes(uint64_t(
                std::max<int64_t>(budget - retained_total, 0))) +
            " of GPU budget remains with no movements left to defer");
      }
      const size_t idx = move_stack.back();
      move_stack.pop_back();
      alive[idx] = 0;
      const Task& popped = tasks[idx];
      resident.erase(popped.page_id);
      resident_bytes -= int64_t(popped.bytes);
      // Pages with a future use wait for memory; past-only pages are simply
      // evicted (their remaining gathers fetch on demand).
      if (NextUse(page_uses[popped.page_id], i) > i) {
        wait_stack.push_back({popped.page_id, popped.bytes});
      }
    }

    // Gathers and compute for this step (lines 10-12).
    for (const PageRef& page : step.param_pages) {
      append({TaskOp::kAllGather, page.page_id, page.bytes, i, i});
    }
    append({TaskOp::kCompute, ~0ull, 0, i, i});
    retained_total += step.retained_bytes;

    // Re-schedule deferred movements while memory allows (lines 13-15).
    while (!wait_stack.empty()) {
      const WaitEntry entry = wait_stack.back();
      const int use = NextUse(page_uses[entry.page_id], i);
      if (use < 0 || resident.count(entry.page_id) > 0) {
        wait_stack.pop_back();  // Stale: no future use or re-added already.
        continue;
      }
      if (budget - resident_bytes - retained_total <=
          int64_t(entry.bytes)) {
        break;
      }
      wait_stack.pop_back();
      // Trigger i+1: the re-scheduled movement starts once this step's
      // compute has completed (and its memory effects are visible).
      append({TaskOp::kMoveToGpu, entry.page_id, entry.bytes, use, i + 1});
      resident.insert(entry.page_id);
      resident_bytes += int64_t(entry.bytes);
    }
  }

  Schedule schedule;
  schedule.tasks.reserve(tasks.size());
  for (size_t idx = 0; idx < tasks.size(); ++idx) {
    if (alive[idx]) schedule.tasks.push_back(tasks[idx]);
  }

  // ---- Phase 2: advance all_gather tasks (Algorithm 1 lines 17-21). ----
  if (input.advance_gathers) {
    const MemoryProfile phase1_profile = ReplaySchedule(input, schedule.tasks);
    std::vector<int64_t> usage(phase1_profile.usage_during_step.begin(),
                               phase1_profile.usage_during_step.end());
    for (Task& task : schedule.tasks) {
      if (task.op != TaskOp::kAllGather) continue;
      const int64_t alloc = int64_t(task.bytes) * input.world_size;
      const int s = task.step;
      int t = s;
      while (t > 0 && usage[t - 1] + alloc <= budget) --t;
      if (t < task.trigger_id) {
        for (int u = t; u < s; ++u) usage[u] += alloc;
        task.trigger_id = t;
        ++schedule.gathers_advanced;
      }
    }
  }

  // Final validation replay.
  const MemoryProfile profile = ReplaySchedule(input, schedule.tasks);
  schedule.peak_gpu_bytes = profile.peak;
  if (schedule.peak_gpu_bytes > input.gpu_memory_budget) {
    return util::Status::Internal(
        "schedule replay peak " + util::FormatBytes(schedule.peak_gpu_bytes) +
        " exceeds budget " + util::FormatBytes(input.gpu_memory_budget));
  }

  for (const Task& task : schedule.tasks) {
    if (task.op == TaskOp::kMoveToGpu && task.trigger_id == 0) {
      ++schedule.pages_prefetched_at_start;
    }
    if (task.op == TaskOp::kAllGather && resident.count(task.page_id) == 0) {
      ++schedule.pages_fetched_on_demand;
    }
  }
  return schedule;
}

}  // namespace angelptm::core
