#include "core/lockfree_updater.h"

#include <algorithm>
#include <chrono>

#include "obs/trace.h"
#include "util/fault_injector.h"
#include "util/half.h"
#include "util/logging.h"

namespace angelptm::core {
namespace {

/// fp16 words per seqlock payload word (two halves packed per uint32_t).
size_t MirrorWords(size_t count) { return (count + 1) / 2; }

}  // namespace

LockFreeUpdater::LockFreeUpdater(Allocator* allocator, const Options& options)
    : allocator_(allocator), options_(options) {
  obs::Registry& registry = obs::Registry::Instance();
  metric_updates_applied_ = registry.GetCounter("updater/updates_applied");
  metric_grad_batches_offloaded_ =
      registry.GetCounter("updater/grad_batches_offloaded");
  metric_pending_batches_ = registry.GetGauge("updater/pending_batches");
  metric_staleness_ = registry.GetHistogram("updater/staleness");

  auto optimizer = Optimizer::Create(options_.optimizer);
  if (optimizer.ok()) {
    optimizer_ = std::move(optimizer).value();
  } else {
    // Constructors cannot fail; poisoning makes the configuration error
    // surface on the first AddLayer / FetchParams instead of crashing.
    Poison(optimizer.status());
  }
}

LockFreeUpdater::~LockFreeUpdater() {
  Stop();
  for (auto& layer : layers_) {
    for (Tensor* tensor : {layer->p32, layer->buffered_params,
                           layer->buffered_grads}) {
      if (tensor != nullptr) (void)allocator_->Release(tensor);
    }
    for (Tensor* tensor : layer->slots) {
      if (tensor != nullptr) (void)allocator_->Release(tensor);
    }
  }
}

const std::string& LockFreeUpdater::optimizer_rule() const {
  return optimizer_ != nullptr ? optimizer_->name() : options_.optimizer.rule;
}

util::Result<int> LockFreeUpdater::AddLayer(
    const std::vector<float>& initial_params) {
  if (poisoned_.load(std::memory_order_acquire)) return status();
  if (running_.load()) {
    return util::Status::FailedPrecondition(
        "cannot add layers while the updater is running");
  }
  if (initial_params.empty()) {
    return util::Status::InvalidArgument("layer with no parameters");
  }
  auto layer = std::make_unique<Layer>();
  layer->count = initial_params.size();
  layer->slot_layout = optimizer_->SlotLayout(layer->count);
  const std::vector<size_t> shape = {layer->count};
  // Masters and fp16 buffers get distinct groups: grouped tensors share
  // tail pages and therefore co-migrate, and the buffers must stay on the
  // CPU tier while the masters move to the master device.
  const uint64_t group = 1000 + 2 * layers_.size();
  const uint64_t buffer_group = group + 1;

  // Master states start on the CPU tier so they can be initialized, then
  // migrate to the configured master device (a real file write for SSD).
  ANGEL_ASSIGN_OR_RETURN(
      layer->p32,
      allocator_->Allocate(shape, DType::kFp32, mem::DeviceKind::kCpu, group));
  for (const SlotSpec& spec : layer->slot_layout) {
    ANGEL_ASSIGN_OR_RETURN(
        Tensor * slot,
        allocator_->Allocate({spec.count}, spec.dtype, mem::DeviceKind::kCpu,
                             group));
    layer->slots.push_back(slot);
  }
  ANGEL_ASSIGN_OR_RETURN(
      layer->buffered_params,
      allocator_->Allocate(shape, DType::kFp16, mem::DeviceKind::kCpu,
                           buffer_group));
  ANGEL_ASSIGN_OR_RETURN(
      layer->buffered_grads,
      allocator_->Allocate(shape, DType::kFp16, mem::DeviceKind::kCpu,
                           buffer_group));

  ANGEL_RETURN_IF_ERROR(layer->p32->WriteFloats(initial_params));
  for (size_t s = 0; s < layer->slots.size(); ++s) {
    const std::vector<float> slot_zeros(layer->slot_layout[s].count, 0.0f);
    ANGEL_RETURN_IF_ERROR(layer->slots[s]->WriteFloats(slot_zeros));
  }
  const std::vector<float> zeros(layer->count, 0.0f);
  ANGEL_RETURN_IF_ERROR(layer->buffered_params->WriteFloats(initial_params));
  ANGEL_RETURN_IF_ERROR(layer->buffered_grads->WriteFloats(zeros));
  layer->param_mirror.Reset(MirrorWords(layer->count));
  {
    util::MutexLock lock(layer->buffer_mutex);
    PublishParams(*layer, initial_params);
  }

  if (options_.master_device != mem::DeviceKind::kCpu) {
    ANGEL_RETURN_IF_ERROR(
        allocator_->Move(layer->p32, options_.master_device));
    for (Tensor* tensor : layer->slots) {
      ANGEL_RETURN_IF_ERROR(allocator_->Move(tensor, options_.master_device));
    }
  }
  {
    util::MutexLock lock(backpressure_mutex_);
    inflight_batches_.push_back(0);
  }
  layers_.push_back(std::move(layer));
  return static_cast<int>(layers_.size()) - 1;
}

void LockFreeUpdater::PublishParams(Layer& layer,
                                    const std::vector<float>& values) {
  // The mirror stores the exact fp16 bit pattern the buffer tensor stores
  // (same FloatToHalfBits rounding), so a lockless FetchParams returns
  // bit-identical floats to the historic ReadFloats path.
  std::vector<uint32_t> words(MirrorWords(layer.count), 0);
  for (size_t i = 0; i < layer.count; ++i) {
    const uint32_t bits = util::FloatToHalfBits(values[i]);
    words[i / 2] |= bits << (16 * (i % 2));
  }
  layer.param_mirror.Write(words.data());
}

util::Status LockFreeUpdater::FetchParams(int layer_index,
                                          std::vector<float>* out) const {
  if (poisoned_.load(std::memory_order_acquire)) return status();
  if (layer_index < 0 || layer_index >= num_layers()) {
    return util::Status::InvalidArgument("bad layer index");
  }
  ANGEL_SPAN("updater", "fetch_params");
  const Layer& layer = *layers_[layer_index];
  // Lockless read (DESIGN.md §13): a consistent seqlock snapshot of the
  // published fp16 bits, never contending with the buffering thread.
  std::vector<uint32_t> words(layer.param_mirror.num_words());
  layer.param_mirror.Read(words.data());
  out->resize(layer.count);
  for (size_t i = 0; i < layer.count; ++i) {
    const uint16_t bits =
        static_cast<uint16_t>(words[i / 2] >> (16 * (i % 2)));
    (*out)[i] = util::HalfBitsToFloat(bits);
  }
  return util::Status::OK();
}

util::Result<uint64_t> LockFreeUpdater::ParamsVersion(int layer_index) const {
  if (layer_index < 0 || layer_index >= num_layers()) {
    return util::Status::InvalidArgument("bad layer index");
  }
  return layers_[layer_index]->param_mirror.version();
}

util::Status LockFreeUpdater::OffloadGrads(int layer_index,
                                           const std::vector<float>& grads) {
  // Fail fast once poisoned: accepting more gradients would only grow the
  // queue behind a dead updating thread.
  if (poisoned_.load(std::memory_order_acquire)) return status();
  if (layer_index < 0 || layer_index >= num_layers()) {
    return util::Status::InvalidArgument("bad layer index");
  }
  if (grads.size() != layers_[layer_index]->count) {
    return util::Status::InvalidArgument("gradient size mismatch");
  }
  ANGEL_SPAN("updater", "offload_grads");
  if (running_.load()) {
    // Staleness valve (see the class comment): wait while this layer is at
    // the in-flight bound so an oversubscribed compute loop cannot run
    // unboundedly ahead of the updating thread. The timed wait is only a
    // backstop; UpdateLayer notifies after taking the layer's batches, and
    // poison / Stop are re-checked so a dead updater never wedges us here.
    {
      util::MutexLock lock(backpressure_mutex_);
      const size_t bound = options_.max_pending_batches_per_layer;
      bool waited = false;
      while (bound > 0 &&
             inflight_batches_[size_t(layer_index)] >= bound &&
             running_.load() &&
             !poisoned_.load(std::memory_order_acquire)) {
        waited = true;
        (void)backpressure_cv_.WaitFor(backpressure_mutex_,
                                       std::chrono::milliseconds(10));
      }
      if (poisoned_.load(std::memory_order_acquire)) return status();
      inflight_batches_[size_t(layer_index)] += 1;
      if (waited) backpressure_waits_.fetch_add(1);
    }
    grad_batches_offloaded_.fetch_add(1);
    metric_grad_batches_offloaded_->Increment();
    metric_pending_batches_->Set(
        static_cast<int64_t>(pending_grad_batches()));
    {
      util::MutexLock lock(queue_mutex_);
      buffer_queue_.push_back(BufferTask{layer_index, false, grads});
      queue_cv_.NotifyOne();
    }
    // Wake the updating thread (it re-checks after the buffering thread
    // actually accumulates, so a wakeup that arrives early is harmless).
    SignalWork();
    return util::Status::OK();
  }
  // Synchronous mode: accumulate inline (the buffering thread's job). No
  // valve — UpdateOnce applies inline, so nothing can run ahead.
  grad_batches_offloaded_.fetch_add(1);
  metric_grad_batches_offloaded_->Increment();
  metric_pending_batches_->Set(
      static_cast<int64_t>(pending_grad_batches()));
  Layer& layer = *layers_[layer_index];
  util::MutexLock lock(layer.buffer_mutex);
  std::vector<float> accumulated;
  ANGEL_RETURN_IF_ERROR(layer.buffered_grads->ReadFloats(&accumulated));
  for (size_t i = 0; i < accumulated.size(); ++i) accumulated[i] += grads[i];
  ANGEL_RETURN_IF_ERROR(layer.buffered_grads->WriteFloats(accumulated));
  layer.pending_batches += 1;
  return util::Status::OK();
}

void LockFreeUpdater::Start() {
  if (running_.exchange(true)) return;
  buffering_thread_ = std::thread([this] { BufferingThreadLoop(); });
  updating_thread_ = std::thread([this] { UpdatingThreadLoop(); });
}

void LockFreeUpdater::Stop() {
  if (!running_.exchange(false)) return;
  queue_cv_.NotifyAll();
  backpressure_cv_.NotifyAll();
  SignalWork();
  if (buffering_thread_.joinable()) buffering_thread_.join();
  if (updating_thread_.joinable()) updating_thread_.join();
}

void LockFreeUpdater::SignalWork() {
  {
    util::MutexLock lock(work_mutex_);
    work_epoch_ += 1;
  }
  work_cv_.NotifyAll();
}

util::Result<bool> LockFreeUpdater::UpdateLayer(int layer_index) {
  ANGEL_SPAN("updater", "update_layer");
  Layer* layer = layers_[layer_index].get();
  // Snapshot-and-clear the accumulated fp16 gradients (see class comment).
  std::vector<float> grads;
  uint64_t batches_taken = 0;
  {
    util::MutexLock lock(layer->buffer_mutex);
    if (layer->pending_batches == 0) return false;
    ANGEL_RETURN_IF_ERROR(layer->buffered_grads->ReadFloats(&grads));
    const std::vector<float> zeros(layer->count, 0.0f);
    ANGEL_RETURN_IF_ERROR(layer->buffered_grads->WriteFloats(zeros));
    batches_taken = layer->pending_batches;
    layer->pending_batches = 0;
  }
  {
    // Release the staleness valve: these batches are no longer in flight.
    // Saturating, because batches offloaded in synchronous mode (no valve
    // accounting) may be taken here after a Stop().
    util::MutexLock lock(backpressure_mutex_);
    uint64_t& inflight = inflight_batches_[size_t(layer_index)];
    inflight -= std::min(inflight, batches_taken);
  }
  backpressure_cv_.NotifyAll();
  // Average the accumulated gradient batches.
  if (batches_taken > 1) {
    const float inv = 1.0f / float(batches_taken);
    for (float& g : grads) g *= inv;
  }

  // Fetch fp32 states from the master device (Algorithm 2 line 4; a real
  // SSD read when the master tier is the SSD). The master mutex quiesces
  // this one layer against concurrent checkpoint snapshots.
  const bool on_ssd = options_.master_device == mem::DeviceKind::kSsd;
  {
    util::MutexLock master_lock(layer->master_mutex);
    if (on_ssd) {
      ANGEL_RETURN_IF_ERROR(
          allocator_->Move(layer->p32, mem::DeviceKind::kCpu));
      for (Tensor* tensor : layer->slots) {
        ANGEL_RETURN_IF_ERROR(allocator_->Move(tensor, mem::DeviceKind::kCpu));
      }
    }
    std::vector<float> p;
    ANGEL_RETURN_IF_ERROR(layer->p32->ReadFloats(&p));
    std::vector<std::vector<float>> slot_values(layer->slots.size());
    std::vector<SlotView> views(layer->slots.size());
    for (size_t s = 0; s < layer->slots.size(); ++s) {
      ANGEL_RETURN_IF_ERROR(layer->slots[s]->ReadFloats(&slot_values[s]));
      views[s] = SlotView{slot_values[s].data(), slot_values[s].size()};
    }

    layer->step += 1;
    ANGEL_RETURN_IF_ERROR(optimizer_->Update(p.data(), grads.data(),
                                             layer->count, views,
                                             layer->step));

    ANGEL_RETURN_IF_ERROR(layer->p32->WriteFloats(p));
    for (size_t s = 0; s < layer->slots.size(); ++s) {
      ANGEL_RETURN_IF_ERROR(layer->slots[s]->WriteFloats(slot_values[s]));
    }

    // Hand the fresh parameters to the buffering side (line 6), overlapping
    // with the SSD write-back (line 7).
    if (running_.load()) {
      util::MutexLock lock(queue_mutex_);
      buffer_queue_.push_back(BufferTask{layer_index, true, p});
      queue_cv_.NotifyOne();
    } else {
      util::MutexLock lock(layer->buffer_mutex);
      ANGEL_RETURN_IF_ERROR(layer->buffered_params->WriteFloats(p));
      PublishParams(*layer, p);
    }

    if (on_ssd) {
      ANGEL_RETURN_IF_ERROR(
          allocator_->Move(layer->p32, mem::DeviceKind::kSsd));
      for (Tensor* tensor : layer->slots) {
        ANGEL_RETURN_IF_ERROR(allocator_->Move(tensor, mem::DeviceKind::kSsd));
      }
    }
  }
  updates_applied_.fetch_add(1);
  grad_batches_applied_.fetch_add(batches_taken);
  metric_updates_applied_->Increment();
  metric_staleness_->Record(batches_taken);
  metric_pending_batches_->Set(
      static_cast<int64_t>(pending_grad_batches()));
  {
    util::MutexLock lock(staleness_mutex_);
    staleness_.Record(batches_taken);
  }
  return true;
}

void LockFreeUpdater::UpdatingThreadLoop() {
  while (running_.load() && !poisoned_.load(std::memory_order_acquire)) {
    uint64_t epoch_seen;
    {
      util::MutexLock lock(work_mutex_);
      epoch_seen = work_epoch_;
    }
    bool any = false;
    // Algorithm 2 line 3: walk layers in reverse (gradients arrive in
    // backward order, so the last layers are dirty first).
    for (int i = num_layers() - 1; i >= 0 && running_.load(); --i) {
      auto updated = UpdateLayer(i);
      if (!updated.ok()) {
        // An error here (e.g. an SSD failure that survived the retry
        // policy) is unrecoverable for this thread: poison the updater so
        // the compute side and DrainUpdates observe it instead of hanging.
        Poison(updated.status());
        return;
      }
      any = any || *updated;
    }
    if (!any) {
      // Idle: sleep until SignalWork bumps the epoch (grads offloaded /
      // accumulated, poison, Stop). A signal that fired mid-scan shows as
      // a changed epoch, so no wakeup is ever lost. The timed backstop
      // only bounds the cost of a hypothetical missed signal.
      bool woken_by_work = false;
      {
        util::MutexLock lock(work_mutex_);
        while (work_epoch_ == epoch_seen && running_.load() &&
               !poisoned_.load(std::memory_order_acquire)) {
          if (!work_cv_.WaitFor(work_mutex_, std::chrono::milliseconds(10))) {
            break;
          }
        }
        woken_by_work = work_epoch_ != epoch_seen;
      }
      if (woken_by_work && options_.updater_coalesce_us > 0 &&
          running_.load() && !poisoned_.load(std::memory_order_acquire)) {
        // Coalescing window (see the class comment): the signal was the
        // first gradient of a backward pass; give the rest of the pass a
        // moment to land so the sweep folds them into one update instead
        // of degenerating into per-gradient single-batch updates.
        std::this_thread::sleep_for(
            std::chrono::microseconds(options_.updater_coalesce_us));
      }
    }
  }
}

void LockFreeUpdater::BufferingThreadLoop() {
  for (;;) {
    BufferTask task;
    {
      util::MutexLock lock(queue_mutex_);
      while (buffer_queue_.empty() && running_.load() &&
             !poisoned_.load(std::memory_order_acquire)) {
        queue_cv_.Wait(queue_mutex_);
      }
      if (poisoned_.load(std::memory_order_acquire)) return;
      if (buffer_queue_.empty()) {
        if (!running_.load()) return;
        continue;
      }
      task = std::move(buffer_queue_.front());
      buffer_queue_.pop_front();
    }
    Layer& layer = *layers_[task.layer];
    ANGEL_SPAN("updater",
               task.is_params ? "buffer_install" : "buffer_accumulate");
    {
      util::MutexLock lock(layer.buffer_mutex);
      if (task.is_params) {
        // Install updated parameters into p'16 (Algorithm 2 line 13) and
        // publish the new version through the seqlock mirror.
        util::Status status =
            util::FaultInjector::Instance().Check("updater.buffer_install");
        if (status.ok()) {
          status = layer.buffered_params->WriteFloats(task.data);
        }
        if (!status.ok()) {
          // A failed install leaves the compute side reading stale (but
          // consistent) parameters forever; that is silent divergence, so
          // treat it as fatal rather than logging and moving on.
          Poison(status);
          return;
        }
        PublishParams(layer, task.data);
        continue;
      }
      // Accumulate into g'16 (line 15).
      std::vector<float> accumulated;
      util::Status status =
          util::FaultInjector::Instance().Check("updater.buffer_accumulate");
      if (status.ok()) status = layer.buffered_grads->ReadFloats(&accumulated);
      if (status.ok()) {
        for (size_t i = 0; i < accumulated.size(); ++i) {
          accumulated[i] += task.data[i];
        }
        status = layer.buffered_grads->WriteFloats(accumulated);
      }
      if (!status.ok()) {
        // The batch was lost; marking it pending anyway would make the
        // updater apply a zero (or partial) gradient and report it drained.
        Poison(status);
        return;
      }
      layer.pending_batches += 1;
    }
    // The gradient is now visible to UpdateLayer: wake the updating thread.
    SignalWork();
  }
}

util::Status LockFreeUpdater::UpdateOnce() {
  if (poisoned_.load(std::memory_order_acquire)) return status();
  if (running_.load()) {
    return util::Status::FailedPrecondition(
        "UpdateOnce is the synchronous path; Stop() the threads first");
  }
  for (int i = num_layers() - 1; i >= 0; --i) {
    const util::Status layer_status = UpdateLayer(i).status();
    if (!layer_status.ok()) {
      Poison(layer_status);
      return layer_status;
    }
  }
  return util::Status::OK();
}

util::Status LockFreeUpdater::DrainUpdates(std::chrono::milliseconds deadline) {
  const auto deadline_at = std::chrono::steady_clock::now() + deadline;
  while (true) {
    if (poisoned_.load(std::memory_order_acquire)) return status();
    {
      util::MutexLock lock(queue_mutex_);
      const bool queue_empty = buffer_queue_.empty();
      if (queue_empty && grad_batches_applied_.load() ==
                             grad_batches_offloaded_.load()) {
        return util::Status::OK();
      }
    }
    if (std::chrono::steady_clock::now() >= deadline_at) {
      return util::Status::DeadlineExceeded(
          "DrainUpdates: " + std::to_string(pending_grad_batches()) +
          " gradient batches still pending after " +
          std::to_string(deadline.count()) + "ms");
    }
    if (!running_.load()) {
      // No threads to make progress; apply inline.
      ANGEL_RETURN_IF_ERROR(UpdateOnce());
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

util::Status LockFreeUpdater::status() const {
  // Lockless fast path and slow path alike: the acquire load pairs with
  // Poison's release store, after which poison_status_ is immutable.
  if (!poisoned_.load(std::memory_order_acquire)) return util::Status::OK();
  return poison_status_;
}

void LockFreeUpdater::Poison(const util::Status& status) {
  {
    util::MutexLock lock(poison_mutex_);
    // Keep the first (root-cause) error; later failures are usually
    // downstream of it. The mutex serializes racing Poison calls only —
    // readers never take it (see the poison_status_ comment in the header).
    if (poisoned_.load(std::memory_order_relaxed)) return;
    poison_status_ = status;
    poisoned_.store(true, std::memory_order_release);
  }
  ANGEL_LOG(Error) << "lock-free updater poisoned: " << status.ToString();
  // Wake both background threads (and any compute thread blocked on the
  // staleness valve) so they observe the state promptly.
  queue_cv_.NotifyAll();
  backpressure_cv_.NotifyAll();
  SignalWork();
}

util::Status LockFreeUpdater::ReadMasterParams(int layer_index,
                                               std::vector<float>* out) {
  if (layer_index < 0 || layer_index >= num_layers()) {
    return util::Status::InvalidArgument("bad layer index");
  }
  Layer& layer = *layers_[layer_index];
  util::MutexLock master_lock(layer.master_mutex);
  const bool on_ssd = layer.p32->device_index() ==
                      static_cast<int>(mem::DeviceKind::kSsd);
  if (on_ssd) {
    ANGEL_RETURN_IF_ERROR(allocator_->Move(layer.p32, mem::DeviceKind::kCpu));
  }
  ANGEL_RETURN_IF_ERROR(layer.p32->ReadFloats(out));
  if (on_ssd) {
    ANGEL_RETURN_IF_ERROR(allocator_->Move(layer.p32, mem::DeviceKind::kSsd));
  }
  return util::Status::OK();
}

util::Status LockFreeUpdater::SnapshotLayerState(int layer_index,
                                                 LayerState* out) {
  if (layer_index < 0 || layer_index >= num_layers()) {
    return util::Status::InvalidArgument("bad layer index");
  }
  ANGEL_SPAN("updater", "snapshot_layer");
  Layer& layer = *layers_[layer_index];
  // The per-layer quiesce: while held, the updating thread cannot start or
  // finish this layer's master update, so params/slots/step are a
  // consistent cut. Everything else (other layers, the compute side, the
  // buffering thread) keeps running.
  util::MutexLock master_lock(layer.master_mutex);
  const bool on_ssd = layer.p32->device_index() ==
                      static_cast<int>(mem::DeviceKind::kSsd);
  if (on_ssd) {
    ANGEL_RETURN_IF_ERROR(allocator_->Move(layer.p32, mem::DeviceKind::kCpu));
    for (Tensor* tensor : layer.slots) {
      ANGEL_RETURN_IF_ERROR(allocator_->Move(tensor, mem::DeviceKind::kCpu));
    }
  }
  ANGEL_RETURN_IF_ERROR(layer.p32->ReadFloats(&out->params));
  out->slots.clear();
  out->slots.resize(layer.slots.size());
  for (size_t s = 0; s < layer.slots.size(); ++s) {
    out->slots[s].name = layer.slot_layout[s].name;
    ANGEL_RETURN_IF_ERROR(
        layer.slots[s]->ReadFloats(&out->slots[s].values));
  }
  out->step = layer.step;
  if (on_ssd) {
    ANGEL_RETURN_IF_ERROR(allocator_->Move(layer.p32, mem::DeviceKind::kSsd));
    for (Tensor* tensor : layer.slots) {
      ANGEL_RETURN_IF_ERROR(allocator_->Move(tensor, mem::DeviceKind::kSsd));
    }
  }
  return util::Status::OK();
}

util::Status LockFreeUpdater::ImportLayerState(int layer_index,
                                               const LayerState& state) {
  if (layer_index < 0 || layer_index >= num_layers()) {
    return util::Status::InvalidArgument("bad layer index");
  }
  if (running_.load()) {
    return util::Status::FailedPrecondition(
        "Stop() the updater before importing state");
  }
  Layer& layer = *layers_[layer_index];
  if (state.params.size() != layer.count) {
    return util::Status::InvalidArgument("checkpoint state size mismatch");
  }
  if (state.slots.size() != layer.slot_layout.size()) {
    return util::Status::InvalidArgument(
        "checkpoint has " + std::to_string(state.slots.size()) +
        " optimizer slots but rule '" + optimizer_rule() + "' declares " +
        std::to_string(layer.slot_layout.size()));
  }
  for (size_t s = 0; s < state.slots.size(); ++s) {
    if (state.slots[s].name != layer.slot_layout[s].name ||
        state.slots[s].values.size() != layer.slot_layout[s].count) {
      return util::Status::InvalidArgument(
          "checkpoint slot '" + state.slots[s].name + "' (" +
          std::to_string(state.slots[s].values.size()) +
          " elements) does not match rule '" + optimizer_rule() +
          "' slot '" + layer.slot_layout[s].name + "' (" +
          std::to_string(layer.slot_layout[s].count) + " elements)");
    }
  }
  util::MutexLock master_lock(layer.master_mutex);
  const bool on_ssd = layer.p32->device_index() ==
                      static_cast<int>(mem::DeviceKind::kSsd);
  if (on_ssd) {
    ANGEL_RETURN_IF_ERROR(allocator_->Move(layer.p32, mem::DeviceKind::kCpu));
    for (Tensor* tensor : layer.slots) {
      ANGEL_RETURN_IF_ERROR(allocator_->Move(tensor, mem::DeviceKind::kCpu));
    }
  }
  ANGEL_RETURN_IF_ERROR(layer.p32->WriteFloats(state.params));
  for (size_t s = 0; s < layer.slots.size(); ++s) {
    ANGEL_RETURN_IF_ERROR(layer.slots[s]->WriteFloats(state.slots[s].values));
  }
  layer.step = state.step;
  if (on_ssd) {
    ANGEL_RETURN_IF_ERROR(allocator_->Move(layer.p32, mem::DeviceKind::kSsd));
    for (Tensor* tensor : layer.slots) {
      ANGEL_RETURN_IF_ERROR(allocator_->Move(tensor, mem::DeviceKind::kSsd));
    }
  }
  // Refresh the compute-side fp16 view and drop stale gradients.
  util::MutexLock lock(layer.buffer_mutex);
  ANGEL_RETURN_IF_ERROR(layer.buffered_params->WriteFloats(state.params));
  PublishParams(layer, state.params);
  const std::vector<float> zeros(layer.count, 0.0f);
  ANGEL_RETURN_IF_ERROR(layer.buffered_grads->WriteFloats(zeros));
  layer.pending_batches = 0;
  return util::Status::OK();
}

LockFreeUpdater::Stats LockFreeUpdater::Snapshot() const {
  Stats stats;
  stats.updates_applied = updates_applied_.load();
  stats.grad_batches_offloaded = grad_batches_offloaded_.load();
  stats.grad_batches_applied = grad_batches_applied_.load();
  stats.pending_grad_batches = pending_grad_batches();
  stats.backpressure_waits = backpressure_waits_.load();
  {
    util::MutexLock lock(staleness_mutex_);
    stats.staleness = staleness_;
  }
  return stats;
}

uint64_t LockFreeUpdater::pending_grad_batches() const {
  const uint64_t offloaded = grad_batches_offloaded_.load();
  const uint64_t applied = grad_batches_applied_.load();
  return offloaded > applied ? offloaded - applied : 0;
}

}  // namespace angelptm::core
