#include "core/lockfree_updater.h"

#include <chrono>

#include "obs/trace.h"
#include "util/fault_injector.h"
#include "util/logging.h"

namespace angelptm::core {

LockFreeUpdater::LockFreeUpdater(Allocator* allocator, const Options& options)
    : allocator_(allocator), options_(options) {
  obs::Registry& registry = obs::Registry::Instance();
  metric_updates_applied_ = registry.GetCounter("updater/updates_applied");
  metric_grad_batches_offloaded_ =
      registry.GetCounter("updater/grad_batches_offloaded");
  metric_pending_batches_ = registry.GetGauge("updater/pending_batches");
  metric_staleness_ = registry.GetHistogram("updater/staleness");
}

LockFreeUpdater::~LockFreeUpdater() {
  Stop();
  for (auto& layer : layers_) {
    for (Tensor* tensor : {layer->p32, layer->m32, layer->v32,
                           layer->buffered_params, layer->buffered_grads}) {
      if (tensor != nullptr) (void)allocator_->Release(tensor);
    }
  }
}

util::Result<int> LockFreeUpdater::AddLayer(
    const std::vector<float>& initial_params) {
  if (running_.load()) {
    return util::Status::FailedPrecondition(
        "cannot add layers while the updater is running");
  }
  if (initial_params.empty()) {
    return util::Status::InvalidArgument("layer with no parameters");
  }
  auto layer = std::make_unique<Layer>();
  layer->count = initial_params.size();
  const std::vector<size_t> shape = {layer->count};
  // Masters and fp16 buffers get distinct groups: grouped tensors share
  // tail pages and therefore co-migrate, and the buffers must stay on the
  // CPU tier while the masters move to the master device.
  const uint64_t group = 1000 + 2 * layers_.size();
  const uint64_t buffer_group = group + 1;

  // Master states start on the CPU tier so they can be initialized, then
  // migrate to the configured master device (a real file write for SSD).
  ANGEL_ASSIGN_OR_RETURN(
      layer->p32,
      allocator_->Allocate(shape, DType::kFp32, mem::DeviceKind::kCpu, group));
  ANGEL_ASSIGN_OR_RETURN(
      layer->m32,
      allocator_->Allocate(shape, DType::kFp32, mem::DeviceKind::kCpu, group));
  ANGEL_ASSIGN_OR_RETURN(
      layer->v32,
      allocator_->Allocate(shape, DType::kFp32, mem::DeviceKind::kCpu, group));
  ANGEL_ASSIGN_OR_RETURN(
      layer->buffered_params,
      allocator_->Allocate(shape, DType::kFp16, mem::DeviceKind::kCpu,
                           buffer_group));
  ANGEL_ASSIGN_OR_RETURN(
      layer->buffered_grads,
      allocator_->Allocate(shape, DType::kFp16, mem::DeviceKind::kCpu,
                           buffer_group));

  const std::vector<float> zeros(layer->count, 0.0f);
  ANGEL_RETURN_IF_ERROR(layer->p32->WriteFloats(initial_params));
  ANGEL_RETURN_IF_ERROR(layer->m32->WriteFloats(zeros));
  ANGEL_RETURN_IF_ERROR(layer->v32->WriteFloats(zeros));
  ANGEL_RETURN_IF_ERROR(layer->buffered_params->WriteFloats(initial_params));
  ANGEL_RETURN_IF_ERROR(layer->buffered_grads->WriteFloats(zeros));

  if (options_.master_device != mem::DeviceKind::kCpu) {
    for (Tensor* tensor : {layer->p32, layer->m32, layer->v32}) {
      ANGEL_RETURN_IF_ERROR(
          allocator_->Move(tensor, options_.master_device));
    }
  }
  layers_.push_back(std::move(layer));
  return static_cast<int>(layers_.size()) - 1;
}

util::Status LockFreeUpdater::FetchParams(int layer_index,
                                          std::vector<float>* out) const {
  if (poisoned_.load(std::memory_order_acquire)) return status();
  if (layer_index < 0 || layer_index >= num_layers()) {
    return util::Status::InvalidArgument("bad layer index");
  }
  ANGEL_SPAN("updater", "fetch_params");
  const Layer& layer = *layers_[layer_index];
  util::MutexLock lock(layer.buffer_mutex);
  return layer.buffered_params->ReadFloats(out);
}

util::Status LockFreeUpdater::OffloadGrads(int layer_index,
                                           const std::vector<float>& grads) {
  // Fail fast once poisoned: accepting more gradients would only grow the
  // queue behind a dead updating thread.
  if (poisoned_.load(std::memory_order_acquire)) return status();
  if (layer_index < 0 || layer_index >= num_layers()) {
    return util::Status::InvalidArgument("bad layer index");
  }
  if (grads.size() != layers_[layer_index]->count) {
    return util::Status::InvalidArgument("gradient size mismatch");
  }
  ANGEL_SPAN("updater", "offload_grads");
  grad_batches_offloaded_.fetch_add(1);
  metric_grad_batches_offloaded_->Increment();
  metric_pending_batches_->Set(
      static_cast<int64_t>(pending_grad_batches()));
  if (running_.load()) {
    util::MutexLock lock(queue_mutex_);
    buffer_queue_.push_back(BufferTask{layer_index, false, grads});
    queue_cv_.NotifyOne();
    return util::Status::OK();
  }
  // Synchronous mode: accumulate inline (the buffering thread's job).
  Layer& layer = *layers_[layer_index];
  util::MutexLock lock(layer.buffer_mutex);
  std::vector<float> accumulated;
  ANGEL_RETURN_IF_ERROR(layer.buffered_grads->ReadFloats(&accumulated));
  for (size_t i = 0; i < accumulated.size(); ++i) accumulated[i] += grads[i];
  ANGEL_RETURN_IF_ERROR(layer.buffered_grads->WriteFloats(accumulated));
  layer.pending_batches += 1;
  return util::Status::OK();
}

void LockFreeUpdater::Start() {
  if (running_.exchange(true)) return;
  buffering_thread_ = std::thread([this] { BufferingThreadLoop(); });
  updating_thread_ = std::thread([this] { UpdatingThreadLoop(); });
}

void LockFreeUpdater::Stop() {
  if (!running_.exchange(false)) return;
  queue_cv_.NotifyAll();
  if (buffering_thread_.joinable()) buffering_thread_.join();
  if (updating_thread_.joinable()) updating_thread_.join();
}

util::Result<bool> LockFreeUpdater::UpdateLayer(int layer_index) {
  ANGEL_SPAN("updater", "update_layer");
  Layer* layer = layers_[layer_index].get();
  // Snapshot-and-clear the accumulated fp16 gradients (see class comment).
  std::vector<float> grads;
  uint64_t batches_taken = 0;
  {
    util::MutexLock lock(layer->buffer_mutex);
    if (layer->pending_batches == 0) return false;
    ANGEL_RETURN_IF_ERROR(layer->buffered_grads->ReadFloats(&grads));
    const std::vector<float> zeros(layer->count, 0.0f);
    ANGEL_RETURN_IF_ERROR(layer->buffered_grads->WriteFloats(zeros));
    batches_taken = layer->pending_batches;
    layer->pending_batches = 0;
  }
  // Average the accumulated gradient batches.
  if (batches_taken > 1) {
    const float inv = 1.0f / float(batches_taken);
    for (float& g : grads) g *= inv;
  }

  // Fetch fp32 states from the master device (Algorithm 2 line 4; a real
  // SSD read when the master tier is the SSD). The master mutex quiesces
  // this one layer against concurrent checkpoint snapshots.
  const bool on_ssd = options_.master_device == mem::DeviceKind::kSsd;
  {
    util::MutexLock master_lock(layer->master_mutex);
    if (on_ssd) {
      for (Tensor* tensor : {layer->p32, layer->m32, layer->v32}) {
        ANGEL_RETURN_IF_ERROR(allocator_->Move(tensor, mem::DeviceKind::kCpu));
      }
    }
    std::vector<float> p, m, v;
    ANGEL_RETURN_IF_ERROR(layer->p32->ReadFloats(&p));
    ANGEL_RETURN_IF_ERROR(layer->m32->ReadFloats(&m));
    ANGEL_RETURN_IF_ERROR(layer->v32->ReadFloats(&v));

    layer->adam_step += 1;
    AdamUpdate(options_.adam, p.data(), m.data(), v.data(), grads.data(),
               layer->count, layer->adam_step);

    ANGEL_RETURN_IF_ERROR(layer->p32->WriteFloats(p));
    ANGEL_RETURN_IF_ERROR(layer->m32->WriteFloats(m));
    ANGEL_RETURN_IF_ERROR(layer->v32->WriteFloats(v));

    // Hand the fresh parameters to the buffering side (line 6), overlapping
    // with the SSD write-back (line 7).
    if (running_.load()) {
      util::MutexLock lock(queue_mutex_);
      buffer_queue_.push_back(BufferTask{layer_index, true, p});
      queue_cv_.NotifyOne();
    } else {
      util::MutexLock lock(layer->buffer_mutex);
      ANGEL_RETURN_IF_ERROR(layer->buffered_params->WriteFloats(p));
    }

    if (on_ssd) {
      for (Tensor* tensor : {layer->p32, layer->m32, layer->v32}) {
        ANGEL_RETURN_IF_ERROR(allocator_->Move(tensor, mem::DeviceKind::kSsd));
      }
    }
  }
  updates_applied_.fetch_add(1);
  grad_batches_applied_.fetch_add(batches_taken);
  metric_updates_applied_->Increment();
  metric_staleness_->Record(batches_taken);
  metric_pending_batches_->Set(
      static_cast<int64_t>(pending_grad_batches()));
  {
    util::MutexLock lock(staleness_mutex_);
    staleness_.Record(batches_taken);
  }
  return true;
}

void LockFreeUpdater::UpdatingThreadLoop() {
  while (running_.load() && !poisoned_.load(std::memory_order_acquire)) {
    bool any = false;
    // Algorithm 2 line 3: walk layers in reverse (gradients arrive in
    // backward order, so the last layers are dirty first).
    for (int i = num_layers() - 1; i >= 0 && running_.load(); --i) {
      auto updated = UpdateLayer(i);
      if (!updated.ok()) {
        // An error here (e.g. an SSD failure that survived the retry
        // policy) is unrecoverable for this thread: poison the updater so
        // the compute side and DrainUpdates observe it instead of hanging.
        Poison(updated.status());
        return;
      }
      any = any || *updated;
    }
    if (!any) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.idle_sleep_us));
    }
  }
}

void LockFreeUpdater::BufferingThreadLoop() {
  for (;;) {
    BufferTask task;
    {
      util::MutexLock lock(queue_mutex_);
      while (buffer_queue_.empty() && running_.load() &&
             !poisoned_.load(std::memory_order_acquire)) {
        queue_cv_.Wait(queue_mutex_);
      }
      if (poisoned_.load(std::memory_order_acquire)) return;
      if (buffer_queue_.empty()) {
        if (!running_.load()) return;
        continue;
      }
      task = std::move(buffer_queue_.front());
      buffer_queue_.pop_front();
    }
    Layer& layer = *layers_[task.layer];
    ANGEL_SPAN("updater",
               task.is_params ? "buffer_install" : "buffer_accumulate");
    util::MutexLock lock(layer.buffer_mutex);
    if (task.is_params) {
      // Install updated parameters into p'16 (Algorithm 2 line 13).
      util::Status status =
          util::FaultInjector::Instance().Check("updater.buffer_install");
      if (status.ok()) status = layer.buffered_params->WriteFloats(task.data);
      if (!status.ok()) {
        // A failed install leaves the compute side reading stale (but
        // consistent) parameters forever; that is silent divergence, so
        // treat it as fatal rather than logging and moving on.
        Poison(status);
        return;
      }
    } else {
      // Accumulate into g'16 (line 15).
      std::vector<float> accumulated;
      util::Status status =
          util::FaultInjector::Instance().Check("updater.buffer_accumulate");
      if (status.ok()) status = layer.buffered_grads->ReadFloats(&accumulated);
      if (status.ok()) {
        for (size_t i = 0; i < accumulated.size(); ++i) {
          accumulated[i] += task.data[i];
        }
        status = layer.buffered_grads->WriteFloats(accumulated);
      }
      if (!status.ok()) {
        // The batch was lost; marking it pending anyway would make the
        // updater apply a zero (or partial) gradient and report it drained.
        Poison(status);
        return;
      }
      layer.pending_batches += 1;
    }
  }
}

util::Status LockFreeUpdater::UpdateOnce() {
  if (poisoned_.load(std::memory_order_acquire)) return status();
  if (running_.load()) {
    return util::Status::FailedPrecondition(
        "UpdateOnce is the synchronous path; Stop() the threads first");
  }
  for (int i = num_layers() - 1; i >= 0; --i) {
    const util::Status layer_status = UpdateLayer(i).status();
    if (!layer_status.ok()) {
      Poison(layer_status);
      return layer_status;
    }
  }
  return util::Status::OK();
}

util::Status LockFreeUpdater::DrainUpdates(std::chrono::milliseconds deadline) {
  const auto deadline_at = std::chrono::steady_clock::now() + deadline;
  while (true) {
    if (poisoned_.load(std::memory_order_acquire)) return status();
    {
      util::MutexLock lock(queue_mutex_);
      const bool queue_empty = buffer_queue_.empty();
      if (queue_empty && grad_batches_applied_.load() ==
                             grad_batches_offloaded_.load()) {
        return util::Status::OK();
      }
    }
    if (std::chrono::steady_clock::now() >= deadline_at) {
      return util::Status::DeadlineExceeded(
          "DrainUpdates: " + std::to_string(pending_grad_batches()) +
          " gradient batches still pending after " +
          std::to_string(deadline.count()) + "ms");
    }
    if (!running_.load()) {
      // No threads to make progress; apply inline.
      ANGEL_RETURN_IF_ERROR(UpdateOnce());
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

util::Status LockFreeUpdater::status() const {
  if (!poisoned_.load(std::memory_order_acquire)) return util::Status::OK();
  util::MutexLock lock(poison_mutex_);
  return poison_status_;
}

void LockFreeUpdater::Poison(const util::Status& status) {
  {
    util::MutexLock lock(poison_mutex_);
    // Keep the first (root-cause) error; later failures are usually
    // downstream of it.
    if (poisoned_.load(std::memory_order_relaxed)) return;
    poison_status_ = status;
    poisoned_.store(true, std::memory_order_release);
  }
  ANGEL_LOG(Error) << "lock-free updater poisoned: " << status.ToString();
  // Wake the buffering thread so it observes the state promptly.
  queue_cv_.NotifyAll();
}

util::Status LockFreeUpdater::ReadMasterParams(int layer_index,
                                               std::vector<float>* out) {
  if (layer_index < 0 || layer_index >= num_layers()) {
    return util::Status::InvalidArgument("bad layer index");
  }
  Layer& layer = *layers_[layer_index];
  util::MutexLock master_lock(layer.master_mutex);
  const bool on_ssd = layer.p32->device_index() ==
                      static_cast<int>(mem::DeviceKind::kSsd);
  if (on_ssd) {
    ANGEL_RETURN_IF_ERROR(allocator_->Move(layer.p32, mem::DeviceKind::kCpu));
  }
  ANGEL_RETURN_IF_ERROR(layer.p32->ReadFloats(out));
  if (on_ssd) {
    ANGEL_RETURN_IF_ERROR(allocator_->Move(layer.p32, mem::DeviceKind::kSsd));
  }
  return util::Status::OK();
}

util::Status LockFreeUpdater::ExportLayerState(int layer_index,
                                               LayerState* out) {
  if (running_.load()) {
    return util::Status::FailedPrecondition(
        "Stop() the updater before exporting state");
  }
  return SnapshotLayerState(layer_index, out);
}

util::Status LockFreeUpdater::SnapshotLayerState(int layer_index,
                                                 LayerState* out) {
  if (layer_index < 0 || layer_index >= num_layers()) {
    return util::Status::InvalidArgument("bad layer index");
  }
  ANGEL_SPAN("updater", "snapshot_layer");
  Layer& layer = *layers_[layer_index];
  // The per-layer quiesce: while held, the updating thread cannot start or
  // finish this layer's master update, so params/moments/adam_step are a
  // consistent cut. Everything else (other layers, the compute side, the
  // buffering thread) keeps running.
  util::MutexLock master_lock(layer.master_mutex);
  const bool on_ssd = layer.p32->device_index() ==
                      static_cast<int>(mem::DeviceKind::kSsd);
  if (on_ssd) {
    for (Tensor* tensor : {layer.p32, layer.m32, layer.v32}) {
      ANGEL_RETURN_IF_ERROR(allocator_->Move(tensor, mem::DeviceKind::kCpu));
    }
  }
  ANGEL_RETURN_IF_ERROR(layer.p32->ReadFloats(&out->params));
  ANGEL_RETURN_IF_ERROR(layer.m32->ReadFloats(&out->momentum));
  ANGEL_RETURN_IF_ERROR(layer.v32->ReadFloats(&out->variance));
  out->adam_step = layer.adam_step;
  if (on_ssd) {
    for (Tensor* tensor : {layer.p32, layer.m32, layer.v32}) {
      ANGEL_RETURN_IF_ERROR(allocator_->Move(tensor, mem::DeviceKind::kSsd));
    }
  }
  return util::Status::OK();
}

util::Status LockFreeUpdater::ImportLayerState(int layer_index,
                                               const LayerState& state) {
  if (layer_index < 0 || layer_index >= num_layers()) {
    return util::Status::InvalidArgument("bad layer index");
  }
  if (running_.load()) {
    return util::Status::FailedPrecondition(
        "Stop() the updater before importing state");
  }
  Layer& layer = *layers_[layer_index];
  if (state.params.size() != layer.count ||
      state.momentum.size() != layer.count ||
      state.variance.size() != layer.count) {
    return util::Status::InvalidArgument("checkpoint state size mismatch");
  }
  util::MutexLock master_lock(layer.master_mutex);
  const bool on_ssd = layer.p32->device_index() ==
                      static_cast<int>(mem::DeviceKind::kSsd);
  if (on_ssd) {
    for (Tensor* tensor : {layer.p32, layer.m32, layer.v32}) {
      ANGEL_RETURN_IF_ERROR(allocator_->Move(tensor, mem::DeviceKind::kCpu));
    }
  }
  ANGEL_RETURN_IF_ERROR(layer.p32->WriteFloats(state.params));
  ANGEL_RETURN_IF_ERROR(layer.m32->WriteFloats(state.momentum));
  ANGEL_RETURN_IF_ERROR(layer.v32->WriteFloats(state.variance));
  layer.adam_step = state.adam_step;
  if (on_ssd) {
    for (Tensor* tensor : {layer.p32, layer.m32, layer.v32}) {
      ANGEL_RETURN_IF_ERROR(allocator_->Move(tensor, mem::DeviceKind::kSsd));
    }
  }
  // Refresh the compute-side fp16 view and drop stale gradients.
  util::MutexLock lock(layer.buffer_mutex);
  ANGEL_RETURN_IF_ERROR(layer.buffered_params->WriteFloats(state.params));
  const std::vector<float> zeros(layer.count, 0.0f);
  ANGEL_RETURN_IF_ERROR(layer.buffered_grads->WriteFloats(zeros));
  layer.pending_batches = 0;
  return util::Status::OK();
}

LockFreeUpdater::Stats LockFreeUpdater::Snapshot() const {
  Stats stats;
  stats.updates_applied = updates_applied_.load();
  stats.grad_batches_offloaded = grad_batches_offloaded_.load();
  stats.grad_batches_applied = grad_batches_applied_.load();
  stats.pending_grad_batches = pending_grad_batches();
  {
    util::MutexLock lock(staleness_mutex_);
    stats.staleness = staleness_;
  }
  return stats;
}

uint64_t LockFreeUpdater::pending_grad_batches() const {
  const uint64_t offloaded = grad_batches_offloaded_.load();
  const uint64_t applied = grad_batches_applied_.load();
  return offloaded > applied ? offloaded - applied : 0;
}

}  // namespace angelptm::core
