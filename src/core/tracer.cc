#include "core/tracer.h"

#include <algorithm>

namespace angelptm::core {

void Tracer::Reset() {
  op_names_.clear();
  traces_.clear();
}

int Tracer::BeginOp(std::string name) {
  op_names_.push_back(std::move(name));
  return static_cast<int>(op_names_.size()) - 1;
}

util::Status Tracer::RecordAccess(uint64_t tensor_id, uint64_t bytes) {
  if (op_names_.empty()) {
    return util::Status::FailedPrecondition(
        "RecordAccess before any BeginOp");
  }
  const int op = static_cast<int>(op_names_.size()) - 1;
  TensorTrace& trace = traces_[tensor_id];
  trace.tensor_id = tensor_id;
  if (trace.first_id < 0) trace.first_id = op;
  trace.end_id = op;
  trace.bytes = bytes;
  return util::Status::OK();
}

void Tracer::RecordProduceTime(uint64_t tensor_id, double cpu_time,
                               double gpu_time) {
  TensorTrace& trace = traces_[tensor_id];
  trace.tensor_id = tensor_id;
  trace.cpu_time = cpu_time;
  trace.gpu_time = gpu_time;
}

std::vector<TensorTrace> Tracer::Traces() const {
  std::vector<TensorTrace> out;
  out.reserve(traces_.size());
  for (const auto& [id, trace] : traces_) out.push_back(trace);
  std::sort(out.begin(), out.end(),
            [](const TensorTrace& a, const TensorTrace& b) {
              if (a.first_id != b.first_id) return a.first_id < b.first_id;
              return a.tensor_id < b.tensor_id;
            });
  return out;
}

}  // namespace angelptm::core
