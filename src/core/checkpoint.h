#ifndef ANGELPTM_CORE_CHECKPOINT_H_
#define ANGELPTM_CORE_CHECKPOINT_H_

#include <cstdint>
#include <string>

#include "core/lockfree_updater.h"
#include "util/random.h"
#include "util/status.h"

namespace angelptm::core {

/// Checkpointing for failure recovery (§3.1: with hundreds of GPUs and
/// multi-week runs, "pre-training tasks would encounter GPU failure with a
/// high probability, and should be restarted after failure").
///
/// Format (little-endian binary), version 3 (DESIGN.md §13):
///   magic "APTMCKPT" | version u32 |
///   progress: global_step i64, rng_state u64[4], rng_has_cached u8,
///             rng_cached_gaussian f64, loss_scale f64,
///             scaler_good_steps i32, scaler_overflows u64,
///             scaler_growths u64 |
///   rule: len u32, bytes (the optimizer registry key, e.g. "adam") |
///   num_layers u32 |
///   per layer: count u64, step i64, num_slots u32, p32[count],
///              per slot: name (len u32, bytes), slot_count u64,
///                        values f32[slot_count]
///   | checksum u64 (FNV-1a over everything before it)
///
/// The slot blocks are self-describing (named, independently sized), so a
/// rule with a different master-state footprint — sgdm's single m,
/// adafactor's factored row/col — round-trips without format changes.
/// Loading fails up front when the file's rule differs from the updater's.
///
/// Older versions still load: v2 files (fixed count|adam_step|p32|m32|v32
/// layers) are read as Adam states with {m, v} slots; v1 files additionally
/// predate the progress block, so their progress fields come back defaulted
/// with `has_progress == false` and the caller replays the dataset cursor
/// from the step count instead (approximate resume from step 0 of the data
/// stream — see SyntheticRegression::SkipBatches).
///
/// The checksum makes torn/corrupt checkpoints detectable — a restart after
/// a mid-write crash must fail loudly, not resume from garbage.

/// Trainer-side progress captured alongside the optimizer state so a resume
/// is exact, not approximate: the step counter, the data-stream RNG cursor,
/// and the dynamic loss-scaler schedule. (Per-layer Adam step counters live
/// with each layer's state.)
struct TrainProgress {
  /// Steps completed when the checkpoint was taken.
  int64_t global_step = 0;
  /// The trainer's RNG (batch stream cursor) at the checkpoint.
  util::Rng::State rng_state;
  /// Dynamic loss-scaler state (train::LossScaler::State, flattened here so
  /// core/ does not depend on train/).
  double loss_scale = 0.0;
  int32_t scaler_good_steps = 0;
  uint64_t scaler_overflows = 0;
  uint64_t scaler_growths = 0;
  /// False when the file predates the progress block (v1): everything above
  /// is defaulted and the caller must replay the cursor itself.
  bool has_progress = false;
};

/// Writes every layer's fp32 master state (plus `progress`, when given) to
/// `path` — atomic: writes `path.tmp`, fsyncs, then renames. Safe on a
/// *running* updater: layers are snapshotted through the per-layer quiesce
/// (LockFreeUpdater::SnapshotLayerState), so training continues while the
/// checkpoint is cut. `bytes_written`, when non-null, receives the file
/// size on success.
[[nodiscard]] util::Status SaveCheckpoint(LockFreeUpdater* updater, const std::string& path,
                            const TrainProgress* progress = nullptr,
                            uint64_t* bytes_written = nullptr);

/// Restores every layer's state from `path` into an updater with the same
/// layer layout, filling `progress` (v1 files leave it defaulted). Fails on
/// layer-count/size mismatch, truncation, or checksum error — always with a
/// message naming the file and the section that broke. The updater must be
/// stopped: importing under a live updating thread would race.
[[nodiscard]] util::Status LoadCheckpoint(LockFreeUpdater* updater, const std::string& path,
                            TrainProgress* progress = nullptr);

}  // namespace angelptm::core

#endif  // ANGELPTM_CORE_CHECKPOINT_H_
