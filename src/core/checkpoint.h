#ifndef ANGELPTM_CORE_CHECKPOINT_H_
#define ANGELPTM_CORE_CHECKPOINT_H_

#include <string>

#include "core/lockfree_updater.h"
#include "util/status.h"

namespace angelptm::core {

/// Checkpointing for failure recovery (§3.1: with hundreds of GPUs and
/// multi-week runs, "pre-training tasks would encounter GPU failure with a
/// high probability, and should be restarted after failure").
///
/// Format (little-endian binary):
///   magic "APTMCKPT" | version u32 | num_layers u32 |
///   per layer: count u64, adam_step i64, p32[count], m32[count], v32[count]
///   | checksum u64 (FNV-1a over everything before it)
///
/// The checksum makes torn/corrupt checkpoints detectable — a restart after
/// a mid-write crash must fail loudly, not resume from garbage.

/// Writes every layer's fp32 master state to `path` (atomic: writes
/// `path.tmp`, then renames). The updater must be stopped.
util::Status SaveCheckpoint(LockFreeUpdater* updater,
                            const std::string& path);

/// Restores every layer's state from `path` into an updater with the same
/// layer layout. Fails on layer-count/size mismatch or checksum error.
util::Status LoadCheckpoint(LockFreeUpdater* updater,
                            const std::string& path);

}  // namespace angelptm::core

#endif  // ANGELPTM_CORE_CHECKPOINT_H_
