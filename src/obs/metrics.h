#ifndef ANGELPTM_OBS_METRICS_H_
#define ANGELPTM_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/thread_annotations.h"

namespace angelptm::obs {

/// Process-wide metrics registry for runtime observability (DESIGN.md §8).
///
/// Every subsystem that does real work — page movement, SSD I/O, the
/// lock-free updater, the training loop — registers named handles once at
/// construction and bumps them on the hot path with single relaxed atomic
/// operations. Handles are deduplicated by name and never deallocated, so a
/// pointer obtained from the registry stays valid for the process lifetime
/// and instances of the same class share one process-wide series.
///
/// Naming convention: "subsystem/metric" ("ssd/io_retries",
/// "mem/page_move_bytes"); the subsystem prefix doubles as the span
/// category used by the tracer (obs/trace.h).

/// Exponential bucketing shared by Histogram and HistogramData: bucket 0
/// holds the value 0; bucket i (1..64) holds [2^(i-1), 2^i). Covers the
/// full uint64 range with 65 buckets, index computable in O(1) from the
/// bit width of the value.
inline constexpr size_t kNumHistogramBuckets = 65;

size_t HistogramBucketIndex(uint64_t value);
/// Smallest value landing in `bucket` (0, 1, 2, 4, 8, ...).
uint64_t HistogramBucketLowerBound(size_t bucket);
/// Largest value landing in `bucket` (inclusive: 0, 1, 3, 7, ...).
uint64_t HistogramBucketUpperBound(size_t bucket);

/// Plain-value exponential histogram: what Histogram::Snapshot() returns,
/// and what single-threaded recorders (the trainers' per-phase timers) use
/// directly. Not thread-safe.
struct HistogramData {
  std::array<uint64_t, kNumHistogramBuckets> buckets{};
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;

  void Record(uint64_t value);
  void Merge(const HistogramData& other);
  double Mean() const;
  /// Upper bound (inclusive) of the bucket holding the p-quantile sample,
  /// p in (0, 1]. An overestimate by at most 2x, like any bucketed
  /// percentile. 0 when empty.
  uint64_t Percentile(double p) const;
  /// "count=12 mean=2.3 p50=3 p95=15 max=9".
  std::string Summary() const;
  /// {"count":12,"mean":2.3,"p50":3,"p95":15,"max":9}
  std::string ToJson() const;
};

/// Monotonically increasing counter. O(1) relaxed atomic on the hot path.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  friend class Registry;
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  std::atomic<uint64_t> value_{0};
};

/// Instantaneous signed level (queue depth, pending batches).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  friend class Registry;
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  std::atomic<int64_t> value_{0};
};

/// Thread-safe exponential histogram handle. Record is a handful of relaxed
/// atomic adds; Snapshot reads the buckets relaxed, so a snapshot taken
/// while writers are active can be skewed by in-flight samples (count and
/// sum may momentarily disagree by one sample) — fine for observability,
/// not for accounting.
class Histogram {
 public:
  void Record(uint64_t value);
  HistogramData Snapshot() const;
  void Reset();

 private:
  friend class Registry;
  Histogram();
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  std::array<std::atomic<uint64_t>, kNumHistogramBuckets> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// Point-in-time copy of every registered metric, sorted by name.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramData>> histograms;

  /// {"counters":{"mem/page_moves":3,...},"gauges":{...},
  ///  "histograms":{"ssd/pread_us":{"count":...},...}}
  std::string ToJson() const;
};

/// The process-wide registry. Get* takes a mutex (cold path, construction
/// time); the returned handle is the lock-free hot path.
class Registry {
 public:
  static Registry& Instance();

  Counter* GetCounter(const std::string& name) ANGEL_EXCLUDES(mutex_);
  Gauge* GetGauge(const std::string& name) ANGEL_EXCLUDES(mutex_);
  Histogram* GetHistogram(const std::string& name) ANGEL_EXCLUDES(mutex_);

  MetricsSnapshot Snapshot() const ANGEL_EXCLUDES(mutex_);

  /// Zeroes every metric (handles stay valid). Metrics are process-wide
  /// and cumulative; tests isolate themselves with this.
  void ResetAllForTest() ANGEL_EXCLUDES(mutex_);

 private:
  Registry() = default;

  mutable util::Mutex mutex_{"obs.registry", util::lockrank::kObsRegistry};
  std::map<std::string, std::unique_ptr<Counter>> counters_
      ANGEL_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      ANGEL_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      ANGEL_GUARDED_BY(mutex_);
};

}  // namespace angelptm::obs

#endif  // ANGELPTM_OBS_METRICS_H_
