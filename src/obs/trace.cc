#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <vector>

#include "util/thread_annotations.h"

namespace angelptm::obs {
namespace {

struct SpanRecord {
  const char* category;
  const char* name;
  uint64_t begin_ns;
  uint64_t end_ns;
  /// Per-thread monotonic sequence numbers taken at span begin/end. Spans
  /// on one thread nest strictly (RAII), so these order the B/E events
  /// exactly even when timestamps tie at clock resolution.
  uint64_t begin_seq;
  uint64_t end_seq;
};

/// One thread's ring buffer. Owned by the global session (shared_ptr) and
/// referenced by the recording thread's TLS; `mu` serializes the recording
/// thread against the exporter.
struct ThreadLog {
  util::Mutex mu{"obs.trace_log", util::lockrank::kTraceLog};
  std::vector<SpanRecord> ring ANGEL_GUARDED_BY(mu);  // Sized once.
  uint64_t recorded ANGEL_GUARDED_BY(mu) = 0;  // Total spans (ring wraps).
  int tid = 0;  // Registration order, stable per session.
};

struct TraceState {
  util::Mutex mu{"obs.trace_registry", util::lockrank::kTraceRegistry};
  bool active ANGEL_GUARDED_BY(mu) = false;
  std::string path;
  size_t ring_capacity = kDefaultTraceRingCapacity;
  uint64_t start_ns = 0;
  uint64_t generation = 0;
  std::vector<std::shared_ptr<ThreadLog>> logs;
};

TraceState& State() {
  static TraceState* state = new TraceState();  // lint: naked-new (leaked singleton)
  return *state;
}

/// Per-thread hook into the current session.
struct ThreadHook {
  std::shared_ptr<ThreadLog> log;
  uint64_t generation = 0;
};

ThreadHook& Hook() {
  thread_local ThreadHook hook;
  return hook;
}

ThreadLog* CurrentThreadLog() {
  TraceState& state = State();
  ThreadHook& hook = Hook();
  const uint64_t generation =
      __atomic_load_n(&state.generation, __ATOMIC_RELAXED);
  if (hook.log == nullptr || hook.generation != generation) {
    util::MutexLock lock(state.mu);
    if (!state.active) return nullptr;
    auto log = std::make_shared<ThreadLog>();
    {
      // Freshly constructed and not yet published, but the analysis (and
      // lockdep's state.mu -> log.mu edge) want the lock held anyway.
      util::MutexLock log_lock(log->mu);
      log->ring.resize(state.ring_capacity);
    }
    log->tid = static_cast<int>(state.logs.size());
    state.logs.push_back(log);
    hook.log = std::move(log);
    hook.generation = state.generation;
  }
  return hook.log.get();
}

std::string FormatTimestampUs(uint64_t ns_since_start) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", double(ns_since_start) / 1000.0);
  return buf;
}

void AppendEvent(std::string* out, const char* ph, const SpanRecord& span,
                 int tid, uint64_t ts_ns, uint64_t start_ns, bool* first) {
  if (!*first) *out += ",\n";
  *first = false;
  *out += "  {\"ph\":\"";
  *out += ph;
  *out += "\",\"pid\":1,\"tid\":";
  *out += std::to_string(tid);
  // Clamp spans begun before the session opened (a scope alive across
  // StartTracing) to the session origin.
  *out += ",\"ts\":";
  *out += FormatTimestampUs(ts_ns > start_ns ? ts_ns - start_ns : 0);
  *out += ",\"cat\":\"";
  *out += span.category;
  *out += "\",\"name\":\"";
  *out += span.name;
  *out += "\"}";
}

/// Emits one thread's spans as balanced, properly nested B/E pairs.
/// Records arrive in ring (end-time) order; sorting by begin_seq and
/// unwinding a stack on end_seq reconstructs the original nesting.
void EmitThreadEvents(std::string* out, std::vector<SpanRecord> spans,
                      int tid, uint64_t start_ns, bool* first) {
  std::sort(spans.begin(), spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.begin_seq < b.begin_seq;
            });
  std::vector<const SpanRecord*> stack;
  for (const SpanRecord& span : spans) {
    while (!stack.empty() && stack.back()->end_seq < span.begin_seq) {
      AppendEvent(out, "E", *stack.back(), tid, stack.back()->end_ns,
                  start_ns, first);
      stack.pop_back();
    }
    AppendEvent(out, "B", span, tid, span.begin_ns, start_ns, first);
    stack.push_back(&span);
  }
  while (!stack.empty()) {
    AppendEvent(out, "E", *stack.back(), tid, stack.back()->end_ns, start_ns,
                first);
    stack.pop_back();
  }
}

void StopTracingAtExit() {
  if (TracingEnabled()) (void)StopTracing();
}

}  // namespace

namespace internal {

std::atomic<bool> g_trace_enabled{false};

uint64_t TraceNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void RecordSpan(const char* category, const char* name, uint64_t begin_ns,
                uint64_t end_ns, uint64_t begin_seq, uint64_t end_seq) {
  ThreadLog* log = CurrentThreadLog();
  if (log == nullptr) return;  // Session ended between begin and end.
  util::MutexLock lock(log->mu);
  SpanRecord& slot = log->ring[log->recorded % log->ring.size()];
  slot.category = category;
  slot.name = name;
  slot.begin_ns = begin_ns;
  slot.end_ns = end_ns;
  slot.begin_seq = begin_seq;
  slot.end_seq = end_seq;
  log->recorded += 1;
}

}  // namespace internal

util::Status StartTracing(const std::string& path, size_t ring_capacity) {
  if (path.empty()) {
    return util::Status::InvalidArgument("empty trace path");
  }
  if (ring_capacity == 0) {
    return util::Status::InvalidArgument("zero trace ring capacity");
  }
  TraceState& state = State();
  util::MutexLock lock(state.mu);
  if (state.active) {
    return util::Status::FailedPrecondition(
        "tracing already active (writing to " + state.path + ")");
  }
  state.active = true;
  state.path = path;
  state.ring_capacity = ring_capacity;
  state.start_ns = internal::TraceNowNs();
  state.logs.clear();
  __atomic_store_n(&state.generation, state.generation + 1, __ATOMIC_RELAXED);
  internal::g_trace_enabled.store(true, std::memory_order_release);
  return util::Status::OK();
}

util::Status StopTracing() {
  TraceState& state = State();
  std::string path;
  uint64_t start_ns = 0;
  std::vector<std::shared_ptr<ThreadLog>> logs;
  {
    util::MutexLock lock(state.mu);
    if (!state.active) {
      return util::Status::FailedPrecondition("tracing not active");
    }
    // Disable recording first so in-flight spans stop enqueueing; spans
    // that already passed the enabled check land in a log we still hold.
    internal::g_trace_enabled.store(false, std::memory_order_release);
    state.active = false;
    path = state.path;
    start_ns = state.start_ns;
    logs = std::move(state.logs);
    state.logs.clear();
  }

  std::string events;
  uint64_t dropped = 0;
  bool first = true;
  for (const auto& log : logs) {
    std::vector<SpanRecord> spans;
    {
      util::MutexLock lock(log->mu);
      const size_t capacity = log->ring.size();
      const size_t kept = std::min<uint64_t>(log->recorded, capacity);
      dropped += log->recorded - kept;
      spans.reserve(kept);
      const uint64_t begin = log->recorded - kept;
      for (uint64_t i = begin; i < log->recorded; ++i) {
        spans.push_back(log->ring[i % capacity]);
      }
    }
    EmitThreadEvents(&events, std::move(spans), log->tid, start_ns, &first);
  }

  std::ofstream out(path);
  if (!out.is_open()) {
    return util::Status::IoError("cannot open trace file " + path);
  }
  out << "{\"traceEvents\":[\n" << events << "\n],\n";
  out << "\"displayTimeUnit\":\"ms\",\n";
  out << "\"otherData\":{\"dropped_spans\":" << dropped << "}}\n";
  if (!out.flush()) {
    return util::Status::IoError("failed writing trace file " + path);
  }
  return util::Status::OK();
}

bool InitTracingFromEnv() {
  const char* path = std::getenv("ANGELPTM_TRACE");
  if (path == nullptr || path[0] == '\0') return false;
  if (!StartTracing(path).ok()) return false;
  static bool atexit_registered = false;
  if (!atexit_registered) {
    atexit_registered = true;
    std::atexit(StopTracingAtExit);
  }
  return true;
}

TraceCounts CurrentTraceCounts() {
  TraceState& state = State();
  util::MutexLock lock(state.mu);
  TraceCounts counts;
  for (const auto& log : state.logs) {
    util::MutexLock log_lock(log->mu);
    const uint64_t kept = std::min<uint64_t>(log->recorded, log->ring.size());
    counts.recorded += kept;
    counts.dropped += log->recorded - kept;
  }
  return counts;
}

namespace {
/// Arms tracing from the environment at process init (the object file is
/// always linked: every span references RecordSpan above).
const bool g_env_init = InitTracingFromEnv();
}  // namespace

}  // namespace angelptm::obs
