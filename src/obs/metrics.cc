#include "obs/metrics.h"

#include <bit>
#include <cstdio>

namespace angelptm::obs {
namespace {

/// Shared by HistogramData::ToJson and MetricsSnapshot::ToJson; metric
/// names are code-controlled identifiers, but escape the JSON-significant
/// characters anyway so the emitted file always parses.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string FormatDoubleJson(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

size_t HistogramBucketIndex(uint64_t value) {
  return value == 0 ? 0 : static_cast<size_t>(std::bit_width(value));
}

uint64_t HistogramBucketLowerBound(size_t bucket) {
  if (bucket == 0) return 0;
  return uint64_t{1} << (bucket - 1);
}

uint64_t HistogramBucketUpperBound(size_t bucket) {
  if (bucket == 0) return 0;
  if (bucket >= 64) return ~uint64_t{0};
  return (uint64_t{1} << bucket) - 1;
}

void HistogramData::Record(uint64_t value) {
  buckets[HistogramBucketIndex(value)] += 1;
  count += 1;
  sum += value;
  if (value > max) max = value;
}

void HistogramData::Merge(const HistogramData& other) {
  for (size_t i = 0; i < kNumHistogramBuckets; ++i) {
    buckets[i] += other.buckets[i];
  }
  count += other.count;
  sum += other.sum;
  if (other.max > max) max = other.max;
}

double HistogramData::Mean() const {
  return count == 0 ? 0.0 : double(sum) / double(count);
}

uint64_t HistogramData::Percentile(double p) const {
  if (count == 0) return 0;
  const uint64_t target = uint64_t(p * double(count) + 0.9999999);
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumHistogramBuckets; ++i) {
    seen += buckets[i];
    if (seen >= target) return HistogramBucketUpperBound(i);
  }
  return max;
}

std::string HistogramData::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.2f p50=%llu p95=%llu max=%llu",
                (unsigned long long)count, Mean(),
                (unsigned long long)Percentile(0.5),
                (unsigned long long)Percentile(0.95),
                (unsigned long long)max);
  return buf;
}

std::string HistogramData::ToJson() const {
  std::string out = "{\"count\":" + std::to_string(count);
  out += ",\"mean\":" + FormatDoubleJson(Mean());
  out += ",\"p50\":" + std::to_string(Percentile(0.5));
  out += ",\"p95\":" + std::to_string(Percentile(0.95));
  out += ",\"max\":" + std::to_string(max);
  out += "}";
  return out;
}

Histogram::Histogram() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
}

void Histogram::Record(uint64_t value) {
  buckets_[HistogramBucketIndex(value)].fetch_add(1,
                                                  std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

HistogramData Histogram::Snapshot() const {
  HistogramData data;
  for (size_t i = 0; i < kNumHistogramBuckets; ++i) {
    data.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  data.count = count_.load(std::memory_order_relaxed);
  data.sum = sum_.load(std::memory_order_relaxed);
  data.max = max_.load(std::memory_order_relaxed);
  return data;
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  for (size_t i = 0; i < counters.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + JsonEscape(counters[i].first) +
           "\":" + std::to_string(counters[i].second);
  }
  out += "},\"gauges\":{";
  for (size_t i = 0; i < gauges.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + JsonEscape(gauges[i].first) +
           "\":" + std::to_string(gauges[i].second);
  }
  out += "},\"histograms\":{";
  for (size_t i = 0; i < histograms.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + JsonEscape(histograms[i].first) +
           "\":" + histograms[i].second.ToJson();
  }
  out += "}}";
  return out;
}

Registry& Registry::Instance() {
  // Leaked on purpose: subsystems bump handles from background threads that
  // may outlive main()'s locals, and static destruction must not race them.
  static Registry* instance = new Registry();  // lint: naked-new (leaked singleton)
  return *instance;
}

Counter* Registry::GetCounter(const std::string& name) {
  util::MutexLock lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::unique_ptr<Counter>(new Counter());
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  util::MutexLock lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::unique_ptr<Gauge>(new Gauge());
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  util::MutexLock lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::unique_ptr<Histogram>(new Histogram());
  return slot.get();
}

MetricsSnapshot Registry::Snapshot() const {
  util::MutexLock lock(mutex_);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->Value());
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->Value());
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.emplace_back(name, histogram->Snapshot());
  }
  return snapshot;
}

void Registry::ResetAllForTest() {
  util::MutexLock lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace angelptm::obs
