#ifndef ANGELPTM_OBS_TRACE_H_
#define ANGELPTM_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace angelptm::obs {

/// Span tracer: scoped begin/end events on per-thread ring buffers,
/// exported as a Chrome/Perfetto-loadable `trace_event` JSON file
/// (chrome://tracing or https://ui.perfetto.dev).
///
/// Enabling:
///   * Environment: ANGELPTM_TRACE=out.json — tracing starts at process
///     init and the file is written at exit (atexit).
///   * Programmatic: StartTracing(path) ... StopTracing() — used by tests
///     and by runs that want one file per training job.
///
/// Cost model: when disabled, ANGEL_SPAN is one relaxed atomic load and a
/// branch — safe on any hot path above the inner kernel loops. When
/// enabled, each span costs two clock reads and one briefly-held
/// per-thread mutex (contended only by the exporter).
///
/// Overflow policy: each thread records into a fixed-size ring; when it
/// fills, the *oldest* spans are overwritten and counted as dropped, so a
/// long run keeps its most recent window. Spans are recorded at scope exit
/// and threads nest spans strictly (RAII), so any suffix of a thread's
/// spans still forms a balanced begin/end sequence — the exporter
/// guarantees balanced, properly nested B/E pairs in the JSON.

inline constexpr size_t kDefaultTraceRingCapacity = 1 << 16;

namespace internal {
extern std::atomic<bool> g_trace_enabled;
/// Records one completed span. `category` and `name` must be string
/// literals (or otherwise outlive the tracing session): only the pointers
/// are stored. `begin_seq`/`end_seq` are per-thread order stamps (see
/// NextSpanSeq) that let the exporter reconstruct nesting exactly even
/// when timestamps tie at clock resolution.
void RecordSpan(const char* category, const char* name, uint64_t begin_ns,
                uint64_t end_ns, uint64_t begin_seq, uint64_t end_seq);
uint64_t TraceNowNs();
/// Per-thread monotonic stamp, bumped at every span begin and end. Never
/// reset: the exporter only compares stamps from one session and thread.
inline uint64_t NextSpanSeq() {
  thread_local uint64_t seq = 0;
  return ++seq;
}
}  // namespace internal

/// Lock-free fast path used by the span macro.
inline bool TracingEnabled() {
  return internal::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Starts a tracing session writing to `path` on StopTracing. Fails if a
/// session is already active.
[[nodiscard]] util::Status StartTracing(const std::string& path,
                          size_t ring_capacity = kDefaultTraceRingCapacity);

/// Ends the session: disables recording, exports the JSON file, clears the
/// buffers. Fails if no session is active or the file cannot be written.
[[nodiscard]] util::Status StopTracing();

/// Reads ANGELPTM_TRACE; when set (and no session is active), starts
/// tracing to that path and registers an atexit hook that writes the file.
/// Called automatically at process init; call again after setenv in tests.
bool InitTracingFromEnv();

struct TraceCounts {
  uint64_t recorded = 0;  // Spans currently buffered.
  uint64_t dropped = 0;   // Spans overwritten by ring overflow.
};
TraceCounts CurrentTraceCounts();

/// RAII span; use via ANGEL_SPAN below. Category should be the subsystem
/// ("mem", "copy", "ssd", "updater", "train", "engine"), matching the
/// metric name prefixes of obs/metrics.h.
class ScopedSpan {
 public:
  ScopedSpan(const char* category, const char* name) {
    if (TracingEnabled()) {
      category_ = category;
      name_ = name;
      begin_seq_ = internal::NextSpanSeq();
      begin_ns_ = internal::TraceNowNs();
    }
  }
  ~ScopedSpan() {
    if (category_ != nullptr) {
      const uint64_t end_ns = internal::TraceNowNs();
      internal::RecordSpan(category_, name_, begin_ns_, end_ns, begin_seq_,
                           internal::NextSpanSeq());
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* category_ = nullptr;  // Null while tracing is disabled.
  const char* name_ = nullptr;
  uint64_t begin_ns_ = 0;
  uint64_t begin_seq_ = 0;
};

}  // namespace angelptm::obs

#define ANGEL_SPAN_CONCAT_INNER(a, b) a##b
#define ANGEL_SPAN_CONCAT(a, b) ANGEL_SPAN_CONCAT_INNER(a, b)
/// Traces the enclosing scope: ANGEL_SPAN("ssd", "pwrite");
#define ANGEL_SPAN(category, name)                         \
  ::angelptm::obs::ScopedSpan ANGEL_SPAN_CONCAT(           \
      angel_scoped_span_, __LINE__)((category), (name))

#endif  // ANGELPTM_OBS_TRACE_H_
