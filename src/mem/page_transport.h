#ifndef ANGELPTM_MEM_PAGE_TRANSPORT_H_
#define ANGELPTM_MEM_PAGE_TRANSPORT_H_

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "mem/hierarchical_memory.h"
#include "mem/page.h"
#include "util/bandwidth_throttle.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace angelptm::mem {

/// The remote half of the Page interface (Fig. 3: "send this page to id-th
/// server" / "receive contents from id-th server"). Servers register their
/// HierarchicalMemory under an id; Send copies a page's bytes onto the wire
/// (with optional NIC-bandwidth pacing), Receive lands them in a fresh page
/// on the destination's chosen tier. In production this is NCCL/RDMA; here
/// the wire is an in-process queue, which preserves the semantics the
/// engine and the tests need (per-destination FIFO, real byte movement,
/// bounded bandwidth). Frames use the shared wire format of
/// mem/wire_format.h — the same framing dist::ProcessGroup puts on real
/// Unix-domain sockets — so delivery validates magic/op/length instead of
/// trusting the queue.
class PageTransport {
 public:
  /// `nic_bandwidth_bytes_per_sec` = 0 disables pacing.
  explicit PageTransport(double nic_bandwidth_bytes_per_sec = 0.0);

  PageTransport(const PageTransport&) = delete;
  PageTransport& operator=(const PageTransport&) = delete;

  /// Registers a server's memory under `server_id`. The memory must
  /// outlive the transport.
  [[nodiscard]] util::Status RegisterServer(int server_id,
                                            HierarchicalMemory* memory)
      ANGEL_EXCLUDES(mutex_);

  /// Copies `page`'s bytes onto the wire toward `server_id` (the paper's
  /// `Page::send`). The page must be memory-resident; it is not modified.
  [[nodiscard]] util::Status Send(int server_id, const Page& page)
      ANGEL_EXCLUDES(mutex_);

  /// Receives the oldest in-flight page for `server_id` into a fresh page
  /// on `tier` of that server's memory (the paper's `Page::receive`).
  /// Blocks until a page is available.
  [[nodiscard]] util::Result<Page*> Receive(int server_id, DeviceKind tier)
      ANGEL_EXCLUDES(mutex_);

  /// Non-blocking variant; NotFound when nothing is in flight.
  [[nodiscard]] util::Result<Page*> TryReceive(int server_id, DeviceKind tier)
      ANGEL_EXCLUDES(mutex_);

  /// Pages currently in flight toward `server_id`.
  size_t InFlight(int server_id) const ANGEL_EXCLUDES(mutex_);

  uint64_t bytes_sent() const ANGEL_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    return bytes_sent_;
  }

 private:
  struct Wire {
    HierarchicalMemory* memory = nullptr;
    /// In-flight frames in the shared wire format (mem/wire_format.h):
    /// header + page payload, exactly what the socket transport would put
    /// on a real connection.
    std::deque<std::vector<std::byte>> inbox;
    uint32_t next_seq = 0;
  };

  [[nodiscard]] util::Result<Page*> Deliver(Wire* wire, DeviceKind tier)
      ANGEL_REQUIRES(mutex_);

  mutable util::Mutex mutex_{"mem.page_transport",
                             util::lockrank::kPageTransport};
  util::CondVar arrived_;
  std::map<int, Wire> servers_ ANGEL_GUARDED_BY(mutex_);
  util::BandwidthThrottle throttle_;
  uint64_t bytes_sent_ ANGEL_GUARDED_BY(mutex_) = 0;
};

}  // namespace angelptm::mem

#endif  // ANGELPTM_MEM_PAGE_TRANSPORT_H_
