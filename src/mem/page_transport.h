#ifndef ANGELPTM_MEM_PAGE_TRANSPORT_H_
#define ANGELPTM_MEM_PAGE_TRANSPORT_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <vector>

#include "mem/hierarchical_memory.h"
#include "mem/page.h"
#include "util/bandwidth_throttle.h"
#include "util/status.h"

namespace angelptm::mem {

/// The remote half of the Page interface (Fig. 3: "send this page to id-th
/// server" / "receive contents from id-th server"). Servers register their
/// HierarchicalMemory under an id; Send copies a page's bytes onto the wire
/// (with optional NIC-bandwidth pacing), Receive lands them in a fresh page
/// on the destination's chosen tier. In production this is NCCL/RDMA; here
/// the wire is an in-process queue, which preserves the semantics the
/// engine and the tests need (per-destination FIFO, real byte movement,
/// bounded bandwidth).
class PageTransport {
 public:
  /// `nic_bandwidth_bytes_per_sec` = 0 disables pacing.
  explicit PageTransport(double nic_bandwidth_bytes_per_sec = 0.0);

  PageTransport(const PageTransport&) = delete;
  PageTransport& operator=(const PageTransport&) = delete;

  /// Registers a server's memory under `server_id`. The memory must
  /// outlive the transport.
  util::Status RegisterServer(int server_id, HierarchicalMemory* memory);

  /// Copies `page`'s bytes onto the wire toward `server_id` (the paper's
  /// `Page::send`). The page must be memory-resident; it is not modified.
  util::Status Send(int server_id, const Page& page);

  /// Receives the oldest in-flight page for `server_id` into a fresh page
  /// on `tier` of that server's memory (the paper's `Page::receive`).
  /// Blocks until a page is available.
  util::Result<Page*> Receive(int server_id, DeviceKind tier);

  /// Non-blocking variant; NotFound when nothing is in flight.
  util::Result<Page*> TryReceive(int server_id, DeviceKind tier);

  /// Pages currently in flight toward `server_id`.
  size_t InFlight(int server_id) const;

  uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  struct Wire {
    HierarchicalMemory* memory = nullptr;
    std::deque<std::vector<std::byte>> inbox;
  };

  util::Result<Page*> Deliver(Wire* wire, DeviceKind tier);

  mutable std::mutex mutex_;
  std::condition_variable arrived_;
  std::map<int, Wire> servers_;
  util::BandwidthThrottle throttle_;
  uint64_t bytes_sent_ = 0;
};

}  // namespace angelptm::mem

#endif  // ANGELPTM_MEM_PAGE_TRANSPORT_H_
