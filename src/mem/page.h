#ifndef ANGELPTM_MEM_PAGE_H_
#define ANGELPTM_MEM_PAGE_H_

#include <array>
#include <cstddef>
#include <cstdint>

#include "mem/device.h"
#include "util/status.h"

namespace angelptm::mem {

/// Default page size. §4.1: "the minimum Page size that can fully utilize the
/// PCIe bandwidth is optimal for our system, i.e., 4MB."
inline constexpr size_t kDefaultPageBytes = 4ull * 1024 * 1024;

/// §4.1: "we decide to limit each page to contain information about a maximum
/// of two tensors at any given time."
inline constexpr int kMaxTensorsPerPage = 2;

inline constexpr uint64_t kInvalidTensorId = ~0ull;
inline constexpr uint64_t kInvalidSsdOffset = ~0ull;

/// The fine-grained memory unit of Angel-PTM (paper Fig. 3). A Page is the
/// minimum unit of every memory operation on hierarchical storage:
/// allocation, release, movement between tiers, and remote send/receive.
/// Tensors are composed of pages; a page hosts at most two tensors.
///
/// A page has a *logical identity* (its id and tensor slots) and a *physical
/// residence* (which tier, and either a host pointer or an SSD file offset).
/// Residence is changed only by the owning HierarchicalMemory/CopyEngine;
/// slot bookkeeping is changed by the allocator that packs tensors.
class Page {
 public:
  /// One tensor's claim on a byte range of this page.
  struct Slot {
    uint64_t tensor_id = kInvalidTensorId;
    size_t bytes = 0;
    size_t offset = 0;  // Byte offset of the claim within the page.
    bool used = false;
  };

  Page(uint64_t id, size_t total_bytes)
      : id_(id), total_bytes_(total_bytes), available_bytes_(total_bytes) {}

  Page(const Page&) = delete;
  Page& operator=(const Page&) = delete;
  Page(Page&&) = default;
  Page& operator=(Page&&) = default;

  uint64_t id() const { return id_; }
  size_t total_bytes() const { return total_bytes_; }
  size_t available_bytes() const { return available_bytes_; }
  DeviceKind device() const { return device_; }

  /// Host pointer to the page frame; null while the page resides on SSD.
  std::byte* data_ptr() const { return data_ptr_; }
  /// Byte offset within the SSD tier's backing file; kInvalidSsdOffset while
  /// the page resides in a memory tier.
  uint64_t ssd_offset() const { return ssd_offset_; }

  /// Reserves `required_bytes` of this page for tensor `tensor_id` (paper
  /// interface `allocate`). Allocation is bump-style from the low end.
  /// Fails with ResourceExhausted when fewer than `required_bytes` remain or
  /// both slots are taken, and with AlreadyExists if the tensor already has a
  /// slot here.
  [[nodiscard]] util::Status Allocate(size_t required_bytes, uint64_t tensor_id);

  /// Releases tensor `tensor_id`'s claim (paper interface `release`). Space
  /// becomes reusable immediately when the freed slot is the bump tail or
  /// when the page empties entirely; otherwise the hole is accounted as
  /// internal fragmentation until the page drains (the 2-tensor cap bounds
  /// this, which is the rationale for the cap in §4.1).
  [[nodiscard]] util::Status Release(uint64_t tensor_id);

  /// True when no tensor occupies the page.
  bool IsEmpty() const;
  /// Number of occupied slots.
  int NumTensors() const;
  /// True if `tensor_id` holds a slot here.
  bool HoldsTensor(uint64_t tensor_id) const;
  /// Slot lookup; returns nullptr when the tensor has no claim here.
  const Slot* FindSlot(uint64_t tensor_id) const;

  /// Bytes neither claimed by a live slot nor available for allocation
  /// (holes left by out-of-order releases).
  size_t FragmentedBytes() const;

  // --- Residence plumbing (used by HierarchicalMemory / CopyEngine). ---

  /// Installs memory-tier residence.
  void SetResidence(DeviceKind device, std::byte* data_ptr);
  /// Installs SSD residence.
  void SetSsdResidence(uint64_t ssd_offset);

  /// Monotonic counter bumped on every residence change; the scheduler uses
  /// it to detect in-flight pages.
  uint64_t residence_epoch() const { return residence_epoch_; }

  const std::array<Slot, kMaxTensorsPerPage>& slots() const { return slots_; }

 private:
  uint64_t id_;
  size_t total_bytes_;
  size_t available_bytes_;
  DeviceKind device_ = DeviceKind::kCpu;
  std::byte* data_ptr_ = nullptr;
  uint64_t ssd_offset_ = kInvalidSsdOffset;
  uint64_t residence_epoch_ = 0;
  std::array<Slot, kMaxTensorsPerPage> slots_{};
};

}  // namespace angelptm::mem

#endif  // ANGELPTM_MEM_PAGE_H_
