#ifndef ANGELPTM_MEM_MEMORY_REPORT_H_
#define ANGELPTM_MEM_MEMORY_REPORT_H_

#include <string>

#include "mem/hierarchical_memory.h"

namespace angelptm::mem {

/// Multi-line human-readable rendering of a MemorySnapshot: per-tier usage,
/// page counts, movement statistics per link, and internal fragmentation.
/// Obtain the snapshot from HierarchicalMemory::Snapshot(); callers never
/// assemble report strings from raw getters.
std::string FormatMemoryReport(const MemorySnapshot& snapshot);

}  // namespace angelptm::mem

#endif  // ANGELPTM_MEM_MEMORY_REPORT_H_
