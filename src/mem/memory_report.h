#ifndef ANGELPTM_MEM_MEMORY_REPORT_H_
#define ANGELPTM_MEM_MEMORY_REPORT_H_

#include <string>

#include "mem/hierarchical_memory.h"

namespace angelptm::mem {

/// Multi-line human-readable snapshot of the hierarchical memory: per-tier
/// usage, page counts, movement statistics per link, and internal
/// fragmentation — the observability surface operators of a training
/// runtime live in.
std::string FormatMemoryReport(const HierarchicalMemory& memory);

}  // namespace angelptm::mem

#endif  // ANGELPTM_MEM_MEMORY_REPORT_H_
