#include "mem/prefetch_planner.h"

#include <algorithm>

namespace angelptm::mem {

PrefetchPlanner::PrefetchPlanner() {
  obs::Registry& registry = obs::Registry::Instance();
  metric_predicted_hits_ = registry.GetCounter("planner/predicted_hits");
  metric_mispredicts_ = registry.GetCounter("planner/mispredicts");
}

void PrefetchPlanner::RecordAccess(uint64_t key) {
  if (trained_) return;
  order_.push_back(key);
  ++recorded_accesses_;
}

void PrefetchPlanner::FinishWarmup() {
  if (trained_ || order_.empty()) return;
  positions_.clear();
  for (size_t i = 0; i < order_.size(); ++i) {
    positions_[order_[i]].push_back(i);
  }
  trained_ = true;
  cursor_ = 0;
}

void PrefetchPlanner::BeginStep() { cursor_ = 0; }

void PrefetchPlanner::OnUse(uint64_t key) {
  if (!trained_) return;
  const size_t period = order_.size();
  if (cursor_ < period && order_[cursor_] == key) {
    ++predicted_hits_;
    metric_predicted_hits_->Increment();
    ++cursor_;
    return;
  }
  ++mispredicts_;
  metric_mispredicts_->Increment();
  // Resync: jump past this key's next occurrence at-or-after the cursor
  // (wrapping), so the rest of the step predicts from the right place.
  const auto it = positions_.find(key);
  if (it == positions_.end()) return;  // Unknown key: hold position.
  const std::vector<size_t>& occurrences = it->second;
  const auto next =
      std::lower_bound(occurrences.begin(), occurrences.end(), cursor_);
  cursor_ = (next != occurrences.end() ? *next : occurrences.front()) + 1;
}

size_t PrefetchPlanner::NextUseDistance(uint64_t key) const {
  if (!trained_) return kNeverUsed;
  const auto it = positions_.find(key);
  if (it == positions_.end()) return kNeverUsed;
  const std::vector<size_t>& occurrences = it->second;
  const size_t period = order_.size();
  const size_t cursor = cursor_ % period;
  const auto next =
      std::lower_bound(occurrences.begin(), occurrences.end(), cursor);
  if (next != occurrences.end()) return *next - cursor;
  // Only occurrences behind the cursor remain: wrap into the next period.
  return period - cursor + occurrences.front();
}

std::vector<uint64_t> PrefetchPlanner::LookaheadKeys(size_t max_keys) const {
  std::vector<uint64_t> keys;
  if (!trained_ || max_keys == 0) return keys;
  const size_t period = order_.size();
  keys.reserve(std::min(max_keys, period));
  for (size_t step = 0; step < period && keys.size() < max_keys; ++step) {
    const uint64_t key = order_[(cursor_ + step) % period];
    if (std::find(keys.begin(), keys.end(), key) == keys.end()) {
      keys.push_back(key);
    }
  }
  return keys;
}

std::vector<uint64_t> PrefetchPlanner::RankEvictionCandidates(
    const std::vector<uint64_t>& candidates) const {
  std::vector<uint64_t> ranked = candidates;
  std::stable_sort(ranked.begin(), ranked.end(),
                   [this](uint64_t a, uint64_t b) {
                     return NextUseDistance(a) > NextUseDistance(b);
                   });
  return ranked;
}

uint64_t PrefetchPlanner::PickEvictionVictim(
    const std::vector<uint64_t>& candidates) const {
  if (candidates.empty()) return kNoVictim;
  // The immediately-next key (distance 0) has the minimum possible distance,
  // so it sorts last and is only ever picked as the sole candidate.
  return RankEvictionCandidates(candidates).front();
}

PrefetchPlanner::Stats PrefetchPlanner::Snapshot() const {
  Stats stats;
  stats.recorded_accesses = recorded_accesses_;
  stats.predicted_hits = predicted_hits_;
  stats.mispredicts = mispredicts_;
  stats.order_length = order_.size();
  return stats;
}

}  // namespace angelptm::mem
