#include "mem/memory_report.h"

#include <sstream>

#include "util/table_printer.h"
#include "util/units.h"

namespace angelptm::mem {

std::string FormatMemoryReport(const HierarchicalMemory& memory) {
  std::ostringstream os;
  os << "hierarchical memory (" << memory.num_live_pages()
     << " live pages of " << util::FormatBytes(memory.page_bytes()) << ")\n";
  for (const DeviceKind tier :
       {DeviceKind::kGpu, DeviceKind::kCpu, DeviceKind::kSsd}) {
    const uint64_t capacity = memory.capacity_bytes(tier);
    if (capacity == 0) continue;
    const uint64_t used = memory.used_bytes(tier);
    os << "  " << DeviceKindName(tier) << ": "
       << util::FormatBytes(used) << " / " << util::FormatBytes(capacity)
       << " (" << util::FormatDouble(100.0 * double(used) /
                                         double(capacity),
                                     1)
       << "%)\n";
  }
  os << "  internal fragmentation: "
     << util::FormatBytes(memory.FragmentedBytes()) << "\n";
  static constexpr DeviceKind kTiers[] = {DeviceKind::kGpu, DeviceKind::kCpu,
                                          DeviceKind::kSsd};
  for (const DeviceKind from : kTiers) {
    for (const DeviceKind to : kTiers) {
      const MoveStats stats = memory.move_stats(from, to);
      if (stats.moves == 0) continue;
      os << "  moves " << DeviceKindName(from) << "->" << DeviceKindName(to)
         << ": " << stats.moves << " pages, "
         << util::FormatBytes(stats.bytes) << "\n";
    }
  }
  return os.str();
}

}  // namespace angelptm::mem
