#include "mem/memory_report.h"

#include <sstream>

#include "util/table_printer.h"
#include "util/units.h"

namespace angelptm::mem {

std::string FormatMemoryReport(const MemorySnapshot& snapshot) {
  std::ostringstream os;
  os << "hierarchical memory (" << snapshot.live_pages << " live pages of "
     << util::FormatBytes(snapshot.page_bytes) << ")\n";
  static constexpr DeviceKind kTiers[] = {DeviceKind::kGpu, DeviceKind::kCpu,
                                          DeviceKind::kSsd};
  for (const DeviceKind kind : kTiers) {
    const TierUsage& tier = snapshot.tier(kind);
    if (tier.capacity_bytes == 0) continue;
    os << "  " << DeviceKindName(kind) << ": "
       << util::FormatBytes(tier.used_bytes) << " / "
       << util::FormatBytes(tier.capacity_bytes) << " ("
       << util::FormatDouble(100.0 * double(tier.used_bytes) /
                                 double(tier.capacity_bytes),
                             1)
       << "%), " << tier.pages << " pages\n";
  }
  os << "  internal fragmentation: "
     << util::FormatBytes(snapshot.fragmented_bytes) << "\n";
  for (const DeviceKind from : kTiers) {
    for (const DeviceKind to : kTiers) {
      const MoveStats& stats = snapshot.link(from, to);
      if (stats.moves == 0) continue;
      os << "  moves " << DeviceKindName(from) << "->" << DeviceKindName(to)
         << ": " << stats.moves << " pages, "
         << util::FormatBytes(stats.bytes) << "\n";
    }
  }
  return os.str();
}

}  // namespace angelptm::mem
