#include "mem/page.h"

#include <string>

namespace angelptm::mem {

util::Status Page::Allocate(size_t required_bytes, uint64_t tensor_id) {
  if (required_bytes == 0) {
    return util::Status::InvalidArgument("page allocation of zero bytes");
  }
  if (HoldsTensor(tensor_id)) {
    return util::Status::AlreadyExists(
        "tensor " + std::to_string(tensor_id) + " already on page " +
        std::to_string(id_));
  }
  Slot* free_slot = nullptr;
  for (auto& slot : slots_) {
    if (!slot.used) {
      free_slot = &slot;
      break;
    }
  }
  if (free_slot == nullptr) {
    return util::Status::ResourceExhausted(
        "page " + std::to_string(id_) + " already hosts " +
        std::to_string(kMaxTensorsPerPage) + " tensors");
  }
  if (required_bytes > available_bytes_) {
    return util::Status::ResourceExhausted(
        "page " + std::to_string(id_) + " has " +
        std::to_string(available_bytes_) + " bytes free, need " +
        std::to_string(required_bytes));
  }
  free_slot->tensor_id = tensor_id;
  free_slot->bytes = required_bytes;
  free_slot->offset = total_bytes_ - available_bytes_;
  free_slot->used = true;
  available_bytes_ -= required_bytes;
  return util::Status::OK();
}

util::Status Page::Release(uint64_t tensor_id) {
  Slot* slot = nullptr;
  for (auto& s : slots_) {
    if (s.used && s.tensor_id == tensor_id) {
      slot = &s;
      break;
    }
  }
  if (slot == nullptr) {
    return util::Status::NotFound("tensor " + std::to_string(tensor_id) +
                                  " not on page " + std::to_string(id_));
  }
  const size_t bump = total_bytes_ - available_bytes_;
  const bool is_tail = slot->offset + slot->bytes == bump;
  slot->used = false;
  slot->tensor_id = kInvalidTensorId;
  if (is_tail) {
    available_bytes_ += slot->bytes;
  }
  slot->bytes = 0;
  slot->offset = 0;
  if (IsEmpty()) {
    // Fully drained: reset the bump pointer, erasing any hole.
    available_bytes_ = total_bytes_;
  }
  return util::Status::OK();
}

bool Page::IsEmpty() const { return NumTensors() == 0; }

int Page::NumTensors() const {
  int n = 0;
  for (const auto& slot : slots_) {
    if (slot.used) ++n;
  }
  return n;
}

bool Page::HoldsTensor(uint64_t tensor_id) const {
  return FindSlot(tensor_id) != nullptr;
}

const Page::Slot* Page::FindSlot(uint64_t tensor_id) const {
  for (const auto& slot : slots_) {
    if (slot.used && slot.tensor_id == tensor_id) return &slot;
  }
  return nullptr;
}

size_t Page::FragmentedBytes() const {
  size_t claimed = 0;
  for (const auto& slot : slots_) {
    if (slot.used) claimed += slot.bytes;
  }
  const size_t bump = total_bytes_ - available_bytes_;
  return bump - claimed;
}

void Page::SetResidence(DeviceKind device, std::byte* data_ptr) {
  device_ = device;
  data_ptr_ = data_ptr;
  ssd_offset_ = kInvalidSsdOffset;
  ++residence_epoch_;
}

void Page::SetSsdResidence(uint64_t ssd_offset) {
  device_ = DeviceKind::kSsd;
  data_ptr_ = nullptr;
  ssd_offset_ = ssd_offset;
  ++residence_epoch_;
}

}  // namespace angelptm::mem
