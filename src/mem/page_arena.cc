#include "mem/page_arena.h"

#include <algorithm>
#include <string>

#include "util/logging.h"

namespace angelptm::mem {

PageArena::PageArena(DeviceKind device, uint64_t capacity_bytes,
                     size_t frame_bytes)
    : device_(device),
      frame_bytes_(frame_bytes),
      total_frames_(frame_bytes == 0 ? 0 : capacity_bytes / frame_bytes) {
  ANGEL_CHECK(frame_bytes_ > 0) << "frame size must be positive";
  buffer_ = std::make_unique<std::byte[]>(total_frames_ * frame_bytes_);
  free_list_.reserve(total_frames_);
  // Push in reverse so frames are handed out low-address first.
  for (size_t i = total_frames_; i > 0; --i) {
    free_list_.push_back(static_cast<uint32_t>(i - 1));
  }
}

util::Result<std::byte*> PageArena::AcquireFrame() {
  util::MutexLock lock(mutex_);
  if (free_list_.empty()) {
    return util::Status::ResourceExhausted(
        std::string(DeviceKindName(device_)) + " tier full (" +
        std::to_string(total_frames_) + " frames)");
  }
  const uint32_t index = free_list_.back();
  free_list_.pop_back();
  peak_used_ = std::max(peak_used_, total_frames_ - free_list_.size());
  return buffer_.get() + uint64_t{index} * frame_bytes_;
}

util::Result<std::byte*> PageArena::AcquireContiguousFrames(size_t count) {
  if (count == 0) {
    return util::Status::InvalidArgument("contiguous run of zero frames");
  }
  util::MutexLock lock(mutex_);
  if (free_list_.size() < count) {
    return util::Status::ResourceExhausted("fewer than " +
                                           std::to_string(count) +
                                           " frames free");
  }
  std::sort(free_list_.begin(), free_list_.end());
  size_t run_start = 0;
  for (size_t i = 0; i < free_list_.size(); ++i) {
    if (i > 0 && free_list_[i] != free_list_[i - 1] + 1) {
      run_start = i;  // Adjacency broke: a new run begins here.
    }
    if (i - run_start + 1 >= count) {
      const size_t take_from = i + 1 - count;
      const uint32_t base_index = free_list_[take_from];
      free_list_.erase(free_list_.begin() + take_from,
                       free_list_.begin() + take_from + count);
      peak_used_ = std::max(peak_used_, total_frames_ - free_list_.size());
      return buffer_.get() + uint64_t{base_index} * frame_bytes_;
    }
  }
  return util::Status::ResourceExhausted(
      "no contiguous run of " + std::to_string(count) + " free frames");
}

void PageArena::ReleaseFrame(std::byte* frame) {
  ANGEL_CHECK(Owns(frame)) << "frame does not belong to "
                           << DeviceKindName(device_) << " arena";
  const uint64_t offset = frame - buffer_.get();
  ANGEL_CHECK(offset % frame_bytes_ == 0) << "misaligned frame pointer";
  util::MutexLock lock(mutex_);
  free_list_.push_back(static_cast<uint32_t>(offset / frame_bytes_));
}

size_t PageArena::free_frames() const {
  util::MutexLock lock(mutex_);
  return free_list_.size();
}

size_t PageArena::peak_used_frames() const {
  util::MutexLock lock(mutex_);
  return peak_used_;
}

bool PageArena::Owns(const std::byte* ptr) const {
  return ptr >= buffer_.get() &&
         ptr < buffer_.get() + total_frames_ * frame_bytes_;
}

}  // namespace angelptm::mem
