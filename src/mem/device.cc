#include "mem/device.h"

namespace angelptm::mem {

const char* DeviceKindName(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::kGpu:
      return "gpu";
    case DeviceKind::kCpu:
      return "cpu";
    case DeviceKind::kSsd:
      return "ssd";
  }
  return "unknown";
}

}  // namespace angelptm::mem
