#ifndef ANGELPTM_MEM_SSD_TIER_H_
#define ANGELPTM_MEM_SSD_TIER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "mem/device.h"
#include "obs/metrics.h"
#include "util/bandwidth_throttle.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace angelptm::mem {

/// File-backed page store standing in for the NVMe SSD tier (the paper uses
/// DeepNVMe on 11 TB of SSD). Frames are fixed-size slots within one backing
/// file; reads and writes are real pread/pwrite calls so the lock-free
/// updating mechanism contends with genuine I/O latency.
///
/// An optional bandwidth throttle (bytes/second) emulates the 3.5 GB/s SSD of
/// the paper's A100 servers when the local disk is faster; 0 disables it.
///
/// Transient I/O failures (flaky NVMe, EIO under pressure) are absorbed by a
/// retry-with-exponential-backoff policy at the ReadFrame/WriteFrame
/// boundary; only errors that persist across every attempt reach the caller.
/// The failpoints "ssd.pread" / "ssd.pwrite" (util::FaultInjector) fire
/// per *attempt*, so an nth-call rule models exactly one transient fault.
class SsdTier {
 public:
  /// Retry policy for transient IoErrors on pread/pwrite. Attempt k waits
  /// min(base_backoff_us * multiplier^(k-1), max_backoff_us) before retrying.
  struct RetryPolicy {
    int max_attempts = 3;        // Total attempts (1 = no retries).
    int base_backoff_us = 100;   // Backoff before the first retry.
    double multiplier = 4.0;     // Exponential growth per retry.
    int max_backoff_us = 10000;  // Backoff ceiling.
  };

  struct Options {
    std::string path;           // Backing file path; created/truncated.
    uint64_t capacity_bytes = 0;
    size_t frame_bytes = 0;
    double throttle_bytes_per_sec = 0.0;
    bool delete_on_close = true;
    RetryPolicy retry;
  };

  /// Structured I/O statistics of this tier instance. The same series are
  /// published process-wide through the obs:: registry ("ssd/bytes_read",
  /// "ssd/io_retries", latency histograms "ssd/pread_us"/"ssd/pwrite_us").
  struct Stats {
    uint64_t bytes_read = 0;
    uint64_t bytes_written = 0;
    /// Transient I/O failures absorbed by the retry policy (not surfaced).
    uint64_t io_retries = 0;
    size_t total_frames = 0;
    size_t free_frames = 0;
  };

  SsdTier() = default;
  ~SsdTier();

  SsdTier(const SsdTier&) = delete;
  SsdTier& operator=(const SsdTier&) = delete;

  /// Creates (or truncates) the backing file sized to hold
  /// floor(capacity / frame_bytes) frames.
  [[nodiscard]] util::Status Open(const Options& options)
      ANGEL_EXCLUDES(mutex_);
  void Close();
  bool is_open() const { return fd_ >= 0; }

  /// Acquires a free frame, returning its byte offset in the backing file.
  [[nodiscard]] util::Result<uint64_t> AcquireFrame() ANGEL_EXCLUDES(mutex_);
  void ReleaseFrame(uint64_t offset) ANGEL_EXCLUDES(mutex_);

  /// Writes `bytes` from `src` to the frame at `offset` (full pwrite).
  [[nodiscard]] util::Status WriteFrame(uint64_t offset, const std::byte* src,
                                        size_t bytes);
  /// Reads `bytes` into `dst` from the frame at `offset`.
  [[nodiscard]] util::Status ReadFrame(uint64_t offset, std::byte* dst,
                                       size_t bytes);

  size_t frame_bytes() const { return frame_bytes_; }
  size_t total_frames() const { return total_frames_; }
  size_t free_frames() const ANGEL_EXCLUDES(mutex_);
  uint64_t capacity_bytes() const {
    return uint64_t{total_frames_} * frame_bytes_;
  }

  /// Point-in-time copy of this instance's I/O statistics.
  Stats Snapshot() const;

 private:
  /// One pread/pwrite attempt over the whole range (no retries).
  [[nodiscard]] util::Status WriteFrameOnce(uint64_t offset,
                                            const std::byte* src,
                                            size_t bytes);
  [[nodiscard]] util::Status ReadFrameOnce(uint64_t offset, std::byte* dst,
                                           size_t bytes);
  /// Runs `attempt` under the retry policy, backing off on transient
  /// IoErrors. `site` names the operation for diagnostics.
  template <typename Attempt>
  [[nodiscard]] util::Status WithRetries(const char* site, Attempt&& attempt);

  // Set once in Open() before any I/O can run; read-only afterwards, so
  // deliberately unguarded.
  int fd_ = -1;
  std::string path_;
  size_t frame_bytes_ = 0;
  size_t total_frames_ = 0;
  bool delete_on_close_ = true;
  RetryPolicy retry_;

  mutable util::Mutex mutex_;
  std::vector<uint32_t> free_list_ ANGEL_GUARDED_BY(mutex_);
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> io_retries_{0};
  util::BandwidthThrottle throttle_;

  // Process-wide series (obs registry handles; set once in Open).
  obs::Counter* metric_bytes_read_ = nullptr;
  obs::Counter* metric_bytes_written_ = nullptr;
  obs::Counter* metric_io_retries_ = nullptr;
  obs::Histogram* metric_pread_us_ = nullptr;
  obs::Histogram* metric_pwrite_us_ = nullptr;
};

}  // namespace angelptm::mem

#endif  // ANGELPTM_MEM_SSD_TIER_H_
