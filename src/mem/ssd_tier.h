#ifndef ANGELPTM_MEM_SSD_TIER_H_
#define ANGELPTM_MEM_SSD_TIER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "mem/device.h"
#include "obs/metrics.h"
#include "util/bandwidth_throttle.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace angelptm::mem {

/// File-backed page store standing in for the NVMe SSD tier (the paper uses
/// DeepNVMe on 11 TB of SSD). Frames are fixed-size slots within one backing
/// file; reads and writes are real pread/pwrite calls so the lock-free
/// updating mechanism contends with genuine I/O latency.
///
/// I/O goes through a *submission-queue backend* (DESIGN.md §12): callers
/// enqueue requests (ReadFrameAsync / WriteFrameAsync, or the blocking
/// ReadFrame / WriteFrame wrappers) and a small worker pool drains a deep
/// request queue, merging requests that target adjacent frames into one
/// preadv/pwritev — the DeepNVMe-style batching that replaces one blocking
/// syscall per page. `io_workers = 0` selects the legacy synchronous path
/// (one inline syscall per call), which the SSD pipeline bench uses as its
/// baseline.
///
/// An optional bandwidth throttle (bytes/second) emulates the 3.5 GB/s SSD of
/// the paper's A100 servers when the local disk is faster; 0 disables it.
/// An optional per-operation latency (`io_op_latency_us`) emulates the NVMe
/// command overhead that makes deep queues and coalescing pay off on real
/// devices; it is charged once per syscall *attempt*, on both backends, so
/// sync-vs-async comparisons model the same device.
///
/// Transient I/O failures (flaky NVMe, EIO under pressure) are absorbed by a
/// retry-with-exponential-backoff policy at the request boundary; only errors
/// that persist across every attempt reach the caller. The failpoints
/// "ssd.pread" / "ssd.pwrite" (util::FaultInjector) fire per *attempt* on
/// both backends, so an nth-call rule models exactly one transient fault. A
/// batch that exhausts its retries fails every request it coalesced with the
/// same status.
class SsdTier {
 public:
  /// Retry policy for transient IoErrors on pread/pwrite. Attempt k waits
  /// min(base_backoff_us * multiplier^(k-1), max_backoff_us) before retrying.
  struct RetryPolicy {
    int max_attempts = 3;        // Total attempts (1 = no retries).
    int base_backoff_us = 100;   // Backoff before the first retry.
    double multiplier = 4.0;     // Exponential growth per retry.
    int max_backoff_us = 10000;  // Backoff ceiling.
  };

  struct Options {
    std::string path;           // Backing file path; created/truncated.
    uint64_t capacity_bytes = 0;
    size_t frame_bytes = 0;
    double throttle_bytes_per_sec = 0.0;
    bool delete_on_close = true;
    RetryPolicy retry;
    /// Submission-queue backend: worker threads draining the request queue.
    /// 0 = synchronous legacy path (one inline syscall per call). Overridden
    /// by the ANGELPTM_SSD_IO_WORKERS environment variable when set.
    size_t io_workers = 2;
    /// Maximum queued (not yet picked up) requests before submitters block —
    /// the backpressure bound on queue depth. Overridden by
    /// ANGELPTM_SSD_IO_QUEUE_DEPTH when set.
    size_t io_queue_depth = 64;
    /// Maximum requests merged into one preadv/pwritev when they target
    /// adjacent byte ranges of the backing file. 1 disables coalescing.
    /// Overridden by ANGELPTM_SSD_IO_COALESCE when set.
    size_t io_max_coalesce = 8;
    /// Emulated per-syscall device command latency in microseconds, charged
    /// once per attempt on both backends (0 = none). Makes batching wins
    /// reproducible on hosts whose /tmp is a fast tmpfs.
    int io_op_latency_us = 0;
  };

  /// Structured I/O statistics of this tier instance. The same series are
  /// published process-wide through the obs:: registry ("ssd/bytes_read",
  /// "ssd/io_retries", latency histograms "ssd/pread_us"/"ssd/pwrite_us",
  /// queue-depth histogram "ssd/queue_depth", batch-size histogram
  /// "ssd/batch_frames").
  struct Stats {
    uint64_t bytes_read = 0;
    uint64_t bytes_written = 0;
    /// Transient I/O failures absorbed by the retry policy (not surfaced).
    uint64_t io_retries = 0;
    /// Requests executed through the submission queue (0 on the sync path).
    uint64_t queued_requests = 0;
    /// Syscall batches issued by the queue workers; queued_requests /
    /// io_batches is the achieved coalescing factor.
    uint64_t io_batches = 0;
    /// High-water mark of the request queue length at submission time.
    size_t max_queue_depth = 0;
    size_t total_frames = 0;
    size_t free_frames = 0;
  };

  SsdTier() = default;
  ~SsdTier();

  SsdTier(const SsdTier&) = delete;
  SsdTier& operator=(const SsdTier&) = delete;

  /// Creates (or truncates) the backing file sized to hold
  /// floor(capacity / frame_bytes) frames, and spawns the submission-queue
  /// workers when the async backend is enabled.
  [[nodiscard]] util::Status Open(const Options& options)
      ANGEL_EXCLUDES(mutex_, io_mutex_);
  /// Drains every pending queued request, stops the workers, and closes the
  /// backing file. Concurrent I/O calls during Close are not supported.
  void Close() ANGEL_EXCLUDES(io_mutex_);
  bool is_open() const { return fd_ >= 0; }

  /// Acquires a free frame, returning its byte offset in the backing file.
  [[nodiscard]] util::Result<uint64_t> AcquireFrame() ANGEL_EXCLUDES(mutex_);
  void ReleaseFrame(uint64_t offset) ANGEL_EXCLUDES(mutex_);

  /// Writes `bytes` from `src` to the frame at `offset`. Blocks until the
  /// write completed (through the queue when the async backend is on).
  [[nodiscard]] util::Status WriteFrame(uint64_t offset, const std::byte* src,
                                        size_t bytes) ANGEL_EXCLUDES(io_mutex_);
  /// Reads `bytes` into `dst` from the frame at `offset` (blocking, like
  /// WriteFrame).
  [[nodiscard]] util::Status ReadFrame(uint64_t offset, std::byte* dst,
                                       size_t bytes) ANGEL_EXCLUDES(io_mutex_);

  /// Enqueues a frame write and returns the completion future. `src` must
  /// stay valid until the future resolves. On the sync backend the request
  /// is executed inline and the future is already resolved.
  [[nodiscard]] std::future<util::Status> WriteFrameAsync(uint64_t offset,
                                                          const std::byte* src,
                                                          size_t bytes)
      ANGEL_EXCLUDES(io_mutex_);
  /// Enqueues a frame read; same contract as WriteFrameAsync.
  [[nodiscard]] std::future<util::Status> ReadFrameAsync(uint64_t offset,
                                                         std::byte* dst,
                                                         size_t bytes)
      ANGEL_EXCLUDES(io_mutex_);

  size_t frame_bytes() const { return frame_bytes_; }
  size_t total_frames() const { return total_frames_; }
  size_t free_frames() const ANGEL_EXCLUDES(mutex_);
  uint64_t capacity_bytes() const {
    return uint64_t{total_frames_} * frame_bytes_;
  }
  /// Workers actually running (after the env override); 0 = sync backend.
  size_t io_workers() const { return io_threads_.size(); }

  /// Point-in-time copy of this instance's I/O statistics.
  Stats Snapshot() const;

 private:
  /// One queued I/O request. `buf` is the caller's frame buffer (read
  /// destination or write source); the const_cast for writes never mutates.
  struct IoRequest {
    bool is_write = false;
    uint64_t offset = 0;
    std::byte* buf = nullptr;
    size_t bytes = 0;
    std::shared_ptr<std::promise<util::Status>> done;
  };

  [[nodiscard]] util::Status ValidateIo(size_t bytes) const;
  /// Submits to the queue (async backend) or executes inline (sync backend).
  [[nodiscard]] std::future<util::Status> Submit(IoRequest request)
      ANGEL_EXCLUDES(io_mutex_);
  void WorkerLoop() ANGEL_EXCLUDES(io_mutex_);
  /// Pops the next request plus every queued request that chains onto it
  /// (same op, adjacent offsets), up to io_max_coalesce.
  std::vector<IoRequest> NextBatchLocked() ANGEL_REQUIRES(io_mutex_);
  /// Executes one batch under the retry policy and resolves its promises.
  void RunBatch(std::vector<IoRequest>& batch);
  /// One preadv/pwritev attempt over the whole batch (no retries); fires
  /// the per-attempt failpoint and the emulated op latency.
  [[nodiscard]] util::Status ExecuteBatchOnce(
      const std::vector<IoRequest>& batch);
  /// Runs `attempt` under the retry policy, backing off on transient
  /// IoErrors. `site` names the operation for diagnostics.
  template <typename Attempt>
  [[nodiscard]] util::Status WithRetries(const char* site, Attempt&& attempt);

  // Set once in Open() before any I/O can run; read-only afterwards, so
  // deliberately unguarded.
  int fd_ = -1;
  std::string path_;
  size_t frame_bytes_ = 0;
  size_t total_frames_ = 0;
  bool delete_on_close_ = true;
  RetryPolicy retry_;
  size_t io_queue_depth_ = 0;
  size_t io_max_coalesce_ = 1;
  int io_op_latency_us_ = 0;
  std::vector<std::thread> io_threads_;

  mutable util::Mutex mutex_{"ssd.state", util::lockrank::kSsdState};
  std::vector<uint32_t> free_list_ ANGEL_GUARDED_BY(mutex_);

  mutable util::Mutex io_mutex_{"ssd.io", util::lockrank::kSsdIoQueue};
  util::CondVar io_work_cv_;   // Workers wait here for requests.
  util::CondVar io_space_cv_;  // Submitters wait here under backpressure.
  std::deque<IoRequest> io_queue_ ANGEL_GUARDED_BY(io_mutex_);
  bool io_stop_ ANGEL_GUARDED_BY(io_mutex_) = false;
  size_t max_queue_depth_ ANGEL_GUARDED_BY(io_mutex_) = 0;

  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> io_retries_{0};
  std::atomic<uint64_t> queued_requests_{0};
  std::atomic<uint64_t> io_batches_{0};
  util::BandwidthThrottle throttle_;

  // Process-wide series (obs registry handles; set once in Open).
  obs::Counter* metric_bytes_read_ = nullptr;
  obs::Counter* metric_bytes_written_ = nullptr;
  obs::Counter* metric_io_retries_ = nullptr;
  obs::Counter* metric_queued_requests_ = nullptr;
  obs::Histogram* metric_pread_us_ = nullptr;
  obs::Histogram* metric_pwrite_us_ = nullptr;
  obs::Histogram* metric_queue_depth_ = nullptr;
  obs::Histogram* metric_batch_frames_ = nullptr;
};

}  // namespace angelptm::mem

#endif  // ANGELPTM_MEM_SSD_TIER_H_
