#ifndef ANGELPTM_MEM_COPY_ENGINE_H_
#define ANGELPTM_MEM_COPY_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <unordered_map>

#include "mem/device.h"
#include "mem/hierarchical_memory.h"
#include "mem/page.h"
#include "obs/metrics.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace angelptm::mem {

/// Asynchronous page movement, standing in for cudaMemcpyAsync + DeepNVMe
/// (§5, Allocator): movements run on background threads so computation and
/// data movement genuinely overlap, exactly the property the unified
/// scheduler exploits.
///
/// Ordering: moves of the same page are serialized (last submitted wins the
/// final residence only if the caller sequences completions — the scheduler
/// always waits for a page's previous move before issuing another).
class CopyEngine {
 public:
  /// Structured statistics of this engine instance. The same series are
  /// published process-wide through the obs:: registry ("copy/moves_*",
  /// gauge "copy/queue_depth").
  struct Stats {
    uint64_t moves_completed = 0;
    uint64_t moves_failed = 0;
    /// Moves submitted but not yet resolved.
    size_t queue_depth = 0;
    /// Per-page serialization mutexes currently tracked (bounded: entries
    /// with no in-flight move are garbage-collected).
    size_t tracked_page_mutexes = 0;
  };

  /// `memory` must outlive the engine.
  CopyEngine(HierarchicalMemory* memory, size_t num_threads);
  ~CopyEngine();

  CopyEngine(const CopyEngine&) = delete;
  CopyEngine& operator=(const CopyEngine&) = delete;

  /// Enqueues an asynchronous move of `page` to `target`. The returned future
  /// resolves with the move's status. This is the implementation of the
  /// paper's `Page::move(target_device_index)` interface.
  [[nodiscard]] std::future<util::Status> MoveAsync(Page* page,
                                                    DeviceKind target)
      ANGEL_EXCLUDES(page_mutex_map_mutex_);

  /// Blocks until every enqueued move has completed. Never call while holding
  /// a lock that a move callback can take.
  void Drain() ANGEL_EXCLUDES(page_mutex_map_mutex_);

  /// Point-in-time copy of this instance's statistics.
  Stats Snapshot() const ANGEL_EXCLUDES(page_mutex_map_mutex_);

 private:
  /// Sweep the mutex map when it reaches this many entries at minimum.
  static constexpr size_t kPageMutexGcMinThreshold = 64;

  std::shared_ptr<util::Mutex> PageMutex(uint64_t page_id)
      ANGEL_EXCLUDES(page_mutex_map_mutex_);

  HierarchicalMemory* memory_;
  util::ThreadPool pool_;
  std::atomic<uint64_t> moves_completed_{0};
  std::atomic<uint64_t> moves_failed_{0};
  std::atomic<size_t> queue_depth_{0};

  // Process-wide series (obs registry handles; set once in the ctor).
  obs::Counter* metric_moves_completed_ = nullptr;
  obs::Counter* metric_moves_failed_ = nullptr;
  obs::Gauge* metric_queue_depth_ = nullptr;

  mutable util::Mutex page_mutex_map_mutex_{"copy.page_map",
                                            util::lockrank::kCopyPageMap};
  std::unordered_map<uint64_t, std::shared_ptr<util::Mutex>> page_mutexes_
      ANGEL_GUARDED_BY(page_mutex_map_mutex_);
  size_t page_mutex_gc_threshold_ ANGEL_GUARDED_BY(page_mutex_map_mutex_) =
      kPageMutexGcMinThreshold;
};

}  // namespace angelptm::mem

#endif  // ANGELPTM_MEM_COPY_ENGINE_H_
