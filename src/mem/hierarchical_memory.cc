#include "mem/hierarchical_memory.h"

#include <cstring>

#include "obs/trace.h"
#include "util/fault_injector.h"
#include "util/logging.h"

namespace angelptm::mem {

HierarchicalMemory::HierarchicalMemory(
    const HierarchicalMemoryOptions& options)
    : options_(options),
      pcie_throttle_(options.pcie_bandwidth_bytes_per_sec) {
  obs::Registry& registry = obs::Registry::Instance();
  metric_pages_created_ = registry.GetCounter("mem/pages_created");
  metric_page_moves_ = registry.GetCounter("mem/page_moves");
  metric_page_move_bytes_ = registry.GetCounter("mem/page_move_bytes");
  gpu_arena_ = std::make_unique<PageArena>(
      DeviceKind::kGpu, options.gpu_capacity_bytes, options.page_bytes);
  cpu_arena_ = std::make_unique<PageArena>(
      DeviceKind::kCpu, options.cpu_capacity_bytes, options.page_bytes);
  if (options.ssd_capacity_bytes > 0) {
    SsdTier::Options ssd_options;
    ssd_options.path = options.ssd_path;
    ssd_options.capacity_bytes = options.ssd_capacity_bytes;
    ssd_options.frame_bytes = options.page_bytes;
    ssd_options.throttle_bytes_per_sec = options.ssd_bandwidth_bytes_per_sec;
    ssd_options.retry = options.ssd_retry;
    ssd_options.io_workers = options.ssd_io_workers;
    ssd_options.io_queue_depth = options.ssd_io_queue_depth;
    ssd_options.io_max_coalesce = options.ssd_io_coalesce;
    ssd_options.io_op_latency_us = options.ssd_io_op_latency_us;
    ANGEL_CHECK_OK(ssd_.Open(ssd_options));
    ssd_enabled_ = true;
  }
}

HierarchicalMemory::~HierarchicalMemory() = default;

util::Result<Page*> HierarchicalMemory::CreatePage(DeviceKind initial_device) {
  auto page =
      std::make_unique<Page>(next_page_id_.fetch_add(1), options_.page_bytes);
  if (initial_device == DeviceKind::kSsd) {
    if (!ssd_enabled_) {
      return util::Status::FailedPrecondition("SSD tier not configured");
    }
    ANGEL_ASSIGN_OR_RETURN(uint64_t offset, ssd_.AcquireFrame());
    page->SetSsdResidence(offset);
  } else {
    ANGEL_ASSIGN_OR_RETURN(std::byte* frame,
                           MutableArena(initial_device).AcquireFrame());
    page->SetResidence(initial_device, frame);
  }
  Page* raw = page.get();
  metric_pages_created_->Increment();
  util::MutexLock lock(registry_mutex_);
  pages_.emplace(raw->id(), std::move(page));
  return raw;
}

util::Result<std::vector<Page*>> HierarchicalMemory::CreateContiguousPages(
    DeviceKind device, size_t count) {
  if (device == DeviceKind::kSsd) {
    return util::Status::InvalidArgument(
        "contiguous pages only exist in memory tiers");
  }
  ANGEL_ASSIGN_OR_RETURN(std::byte* base,
                         MutableArena(device).AcquireContiguousFrames(count));
  std::vector<Page*> result;
  result.reserve(count);
  metric_pages_created_->Increment(count);
  util::MutexLock lock(registry_mutex_);
  for (size_t i = 0; i < count; ++i) {
    auto page = std::make_unique<Page>(next_page_id_.fetch_add(1),
                                       options_.page_bytes);
    page->SetResidence(device, base + i * options_.page_bytes);
    result.push_back(page.get());
    pages_.emplace(page->id(), std::move(page));
  }
  return result;
}

util::Status HierarchicalMemory::DestroyPage(Page* page, bool force) {
  if (page == nullptr) {
    return util::Status::InvalidArgument("null page");
  }
  if (!force && !page->IsEmpty()) {
    return util::Status::FailedPrecondition(
        "page " + std::to_string(page->id()) + " still hosts tensors");
  }
  if (page->device() == DeviceKind::kSsd) {
    ssd_.ReleaseFrame(page->ssd_offset());
  } else {
    MutableArena(page->device()).ReleaseFrame(page->data_ptr());
  }
  util::MutexLock lock(registry_mutex_);
  const size_t erased = pages_.erase(page->id());
  ANGEL_CHECK(erased == 1) << "destroying unregistered page";
  return util::Status::OK();
}

util::Status HierarchicalMemory::MovePageSync(Page* page, DeviceKind target) {
  if (page == nullptr) {
    return util::Status::InvalidArgument("null page");
  }
  ANGEL_FAULT_CHECK("hmem.move_page");
  const DeviceKind source = page->device();
  if (source == target) return util::Status::OK();
  ANGEL_SPAN("mem", "move_page");
  const size_t bytes = page->total_bytes();

  if (target == DeviceKind::kSsd || source == DeviceKind::kSsd) {
    if (!ssd_enabled_) {
      return util::Status::FailedPrecondition("SSD tier not configured");
    }
  }

  if (target == DeviceKind::kSsd) {
    // Memory -> SSD: stage out through a real file write.
    ANGEL_ASSIGN_OR_RETURN(uint64_t offset, ssd_.AcquireFrame());
    const util::Status write = ssd_.WriteFrame(offset, page->data_ptr(), bytes);
    if (!write.ok()) {
      ssd_.ReleaseFrame(offset);
      return write;
    }
    MutableArena(source).ReleaseFrame(page->data_ptr());
    page->SetSsdResidence(offset);
  } else if (source == DeviceKind::kSsd) {
    // SSD -> memory.
    ANGEL_ASSIGN_OR_RETURN(std::byte* frame,
                           MutableArena(target).AcquireFrame());
    const util::Status read =
        ssd_.ReadFrame(page->ssd_offset(), frame, bytes);
    if (!read.ok()) {
      MutableArena(target).ReleaseFrame(frame);
      return read;
    }
    ssd_.ReleaseFrame(page->ssd_offset());
    page->SetResidence(target, frame);
  } else {
    // GPU <-> CPU over the (emulated) PCIe link.
    ANGEL_ASSIGN_OR_RETURN(std::byte* frame,
                           MutableArena(target).AcquireFrame());
    std::memcpy(frame, page->data_ptr(), bytes);
    pcie_throttle_.Consume(bytes);
    MutableArena(source).ReleaseFrame(page->data_ptr());
    page->SetResidence(target, frame);
  }

  metric_page_moves_->Increment();
  metric_page_move_bytes_->Increment(bytes);
  {
    util::MutexLock lock(stats_mutex_);
    auto& cell = move_stats_[static_cast<int>(source)][static_cast<int>(target)];
    cell.moves += 1;
    cell.bytes += bytes;
  }
  return util::Status::OK();
}

size_t HierarchicalMemory::num_live_pages() const {
  util::MutexLock lock(registry_mutex_);
  return pages_.size();
}

uint64_t HierarchicalMemory::used_bytes(DeviceKind device) const {
  switch (device) {
    case DeviceKind::kGpu:
      return gpu_arena_->used_bytes();
    case DeviceKind::kCpu:
      return cpu_arena_->used_bytes();
    case DeviceKind::kSsd:
      return ssd_enabled_
                 ? (ssd_.capacity_bytes() -
                    uint64_t{ssd_.free_frames()} * ssd_.frame_bytes())
                 : 0;
  }
  return 0;
}

uint64_t HierarchicalMemory::capacity_bytes(DeviceKind device) const {
  switch (device) {
    case DeviceKind::kGpu:
      return gpu_arena_->capacity_bytes();
    case DeviceKind::kCpu:
      return cpu_arena_->capacity_bytes();
    case DeviceKind::kSsd:
      return ssd_enabled_ ? ssd_.capacity_bytes() : 0;
  }
  return 0;
}

uint64_t HierarchicalMemory::FragmentedBytes() const {
  util::MutexLock lock(registry_mutex_);
  uint64_t total = 0;
  for (const auto& [id, page] : pages_) {
    total += page->FragmentedBytes();
  }
  return total;
}

MoveStats HierarchicalMemory::move_stats(DeviceKind from, DeviceKind to) const {
  util::MutexLock lock(stats_mutex_);
  return move_stats_[static_cast<int>(from)][static_cast<int>(to)];
}

MemorySnapshot HierarchicalMemory::Snapshot() const {
  MemorySnapshot snapshot;
  snapshot.page_bytes = options_.page_bytes;
  for (const DeviceKind kind :
       {DeviceKind::kGpu, DeviceKind::kCpu, DeviceKind::kSsd}) {
    TierUsage& tier = snapshot.tiers[static_cast<int>(kind)];
    tier.used_bytes = used_bytes(kind);
    tier.capacity_bytes = capacity_bytes(kind);
  }
  {
    util::MutexLock lock(registry_mutex_);
    snapshot.live_pages = pages_.size();
    for (const auto& [id, page] : pages_) {
      snapshot.fragmented_bytes += page->FragmentedBytes();
      snapshot.tiers[static_cast<int>(page->device())].pages += 1;
    }
  }
  {
    util::MutexLock lock(stats_mutex_);
    snapshot.moves = move_stats_;
  }
  return snapshot;
}

PageArena& HierarchicalMemory::MutableArena(DeviceKind device) {
  switch (device) {
    case DeviceKind::kGpu:
      return *gpu_arena_;
    case DeviceKind::kCpu:
      return *cpu_arena_;
    case DeviceKind::kSsd:
      break;
  }
  ANGEL_FATAL() << "no arena for device " << DeviceKindName(device);
  __builtin_unreachable();
}

}  // namespace angelptm::mem
