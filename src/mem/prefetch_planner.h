#ifndef ANGELPTM_MEM_PREFETCH_PLANNER_H_
#define ANGELPTM_MEM_PREFETCH_PLANNER_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"

namespace angelptm::mem {

/// Trace-driven access-order model (DESIGN.md §12). Training steps visit
/// layers in a fixed periodic order (forward 0..L-1, backward L-1..0), so the
/// first (warmup) step's recorded access sequence *is* the schedule for every
/// later step — the paper's "traced first iteration drives the unified
/// scheduler", and the same observation PatrickStar's chunk manager exploits.
///
/// Lifecycle: RecordAccess() during the warmup step, FinishWarmup() once, then
/// per steady-state step: BeginStep() resets the cursor and OnUse() advances
/// it as uses actually happen. Queries (NextUseDistance, LookaheadKeys,
/// RankEvictionCandidates) are all relative to the current cursor, which makes
/// the eviction policy Belady-style: evict the candidate whose next predicted
/// use is farthest in the future, never the immediately-next one.
///
/// OnUse() tolerates schedule drift: a use that does not match the predicted
/// next key counts as a mispredict and resyncs the cursor to that key's next
/// occurrence at-or-after the current position (wrapping), so one skipped
/// layer doesn't poison the rest of the step.
///
/// Single-threaded by contract: the engine's step loop owns the planner (no
/// internal locking), matching Engine's one-trainer-thread model.
class PrefetchPlanner {
 public:
  /// Prediction quality counters; also published process-wide as
  /// "planner/predicted_hits" / "planner/mispredicts".
  struct Stats {
    uint64_t recorded_accesses = 0;
    uint64_t predicted_hits = 0;
    uint64_t mispredicts = 0;
    size_t order_length = 0;
  };

  /// Distance returned for keys the learned order never visits.
  static constexpr size_t kNeverUsed = static_cast<size_t>(-1);

  PrefetchPlanner();

  /// Appends one access to the warmup trace. Ignored after FinishWarmup().
  void RecordAccess(uint64_t key);
  /// Freezes the recorded trace as the learned periodic order. Idempotent;
  /// a planner with an empty trace simply never trains.
  void FinishWarmup();
  /// True once a non-empty order has been learned.
  bool trained() const { return trained_; }

  /// Resets the step cursor to the top of the learned order.
  void BeginStep();
  /// Advances past one actual use of `key`, resyncing on mispredicts.
  void OnUse(uint64_t key);

  /// Number of accesses (in learned-order positions, i.e. uses) until `key`
  /// is next needed, from the current cursor. 0 = `key` is the predicted
  /// immediately-next access; kNeverUsed = not in the learned order.
  /// Distances wrap around the period: a key just visited whose only
  /// occurrence is behind the cursor returns (period - cursor + position).
  size_t NextUseDistance(uint64_t key) const;

  /// The next `max_keys` *distinct* keys the schedule will visit from the
  /// cursor (wrapping), in visit order — the read-ahead window.
  std::vector<uint64_t> LookaheadKeys(size_t max_keys) const;

  /// Orders eviction candidates by descending next-use distance (Belady:
  /// farthest-next-use first, immediately-next last). Keys the order never
  /// visits sort first — they are free to evict. Stable for ties.
  std::vector<uint64_t> RankEvictionCandidates(
      const std::vector<uint64_t>& candidates) const;

  /// The best single victim among `candidates`: the farthest-next-use key.
  /// Never returns the immediately-next key unless it is the sole candidate.
  /// Returns kNoVictim when `candidates` is empty.
  static constexpr uint64_t kNoVictim = static_cast<uint64_t>(-1);
  uint64_t PickEvictionVictim(const std::vector<uint64_t>& candidates) const;

  const std::vector<uint64_t>& learned_order() const { return order_; }
  size_t cursor() const { return cursor_; }
  Stats Snapshot() const;

 private:
  std::vector<uint64_t> order_;
  /// key -> sorted positions of its occurrences within order_.
  std::unordered_map<uint64_t, std::vector<size_t>> positions_;
  bool trained_ = false;
  size_t cursor_ = 0;

  uint64_t recorded_accesses_ = 0;
  uint64_t predicted_hits_ = 0;
  uint64_t mispredicts_ = 0;

  obs::Counter* metric_predicted_hits_ = nullptr;
  obs::Counter* metric_mispredicts_ = nullptr;
};

}  // namespace angelptm::mem

#endif  // ANGELPTM_MEM_PREFETCH_PLANNER_H_
