#include "mem/page_transport.h"

#include <cstring>

#include "mem/wire_format.h"

namespace angelptm::mem {

PageTransport::PageTransport(double nic_bandwidth_bytes_per_sec)
    : throttle_(nic_bandwidth_bytes_per_sec) {}

util::Status PageTransport::RegisterServer(int server_id,
                                           HierarchicalMemory* memory) {
  if (memory == nullptr) {
    return util::Status::InvalidArgument("null memory");
  }
  util::MutexLock lock(mutex_);
  auto [it, inserted] = servers_.try_emplace(server_id);
  if (!inserted && it->second.memory != nullptr) {
    return util::Status::AlreadyExists("server " +
                                       std::to_string(server_id) +
                                       " already registered");
  }
  it->second.memory = memory;
  return util::Status::OK();
}

util::Status PageTransport::Send(int server_id, const Page& page) {
  if (page.data_ptr() == nullptr) {
    return util::Status::FailedPrecondition(
        "page must be memory-resident to send");
  }
  if (server_id < 0 || server_id > 0xFFFF) {
    return util::Status::InvalidArgument("server id out of wire range");
  }
  // The page travels in the same frame format the socket transport uses
  // (wire_format.h): header + payload, validated at delivery.
  wire::Header header;
  header.op = wire::Op::kPage;
  header.rank = uint16_t(server_id);
  header.payload_bytes = page.total_bytes();
  throttle_.Consume(page.total_bytes());
  {
    util::MutexLock lock(mutex_);
    const auto it = servers_.find(server_id);
    if (it == servers_.end() || it->second.memory == nullptr) {
      return util::Status::NotFound("no server " +
                                    std::to_string(server_id));
    }
    header.seq = it->second.next_seq++;
    bytes_sent_ += page.total_bytes();
    it->second.inbox.push_back(wire::EncodeFrame(header, page.data_ptr()));
  }
  arrived_.NotifyAll();
  return util::Status::OK();
}

util::Result<Page*> PageTransport::Deliver(Wire* wire, DeviceKind tier) {
  std::vector<std::byte> frame = std::move(wire->inbox.front());
  wire->inbox.pop_front();
  if (frame.size() < wire::kHeaderBytes) {
    return util::Status::InvalidArgument("wire frame shorter than header");
  }
  ANGEL_ASSIGN_OR_RETURN(const wire::Header header,
                         wire::DecodeHeader(frame.data()));
  if (header.op != wire::Op::kPage) {
    return util::Status::InvalidArgument("wire frame is not a page frame");
  }
  if (header.payload_bytes != frame.size() - wire::kHeaderBytes) {
    return util::Status::InvalidArgument(
        "wire frame payload length disagrees with its header");
  }
  const std::byte* payload = frame.data() + wire::kHeaderBytes;
  const size_t payload_bytes = header.payload_bytes;
  if (payload_bytes != wire->memory->page_bytes()) {
    return util::Status::InvalidArgument(
        "wire payload does not match destination page size");
  }
  ANGEL_ASSIGN_OR_RETURN(Page * page, wire->memory->CreatePage(tier));
  if (tier == DeviceKind::kSsd) {
    // Land through a CPU staging page, then spill.
    (void)wire->memory->DestroyPage(page);
    ANGEL_ASSIGN_OR_RETURN(page, wire->memory->CreatePage(DeviceKind::kCpu));
    std::memcpy(page->data_ptr(), payload, payload_bytes);
    ANGEL_RETURN_IF_ERROR(wire->memory->MovePageSync(page, DeviceKind::kSsd));
  } else {
    std::memcpy(page->data_ptr(), payload, payload_bytes);
  }
  return page;
}

util::Result<Page*> PageTransport::Receive(int server_id, DeviceKind tier) {
  util::MutexLock lock(mutex_);
  const auto it = servers_.find(server_id);
  if (it == servers_.end() || it->second.memory == nullptr) {
    return util::Status::NotFound("no server " + std::to_string(server_id));
  }
  Wire& wire = it->second;
  while (wire.inbox.empty()) arrived_.Wait(mutex_);
  return Deliver(&wire, tier);
}

util::Result<Page*> PageTransport::TryReceive(int server_id,
                                              DeviceKind tier) {
  util::MutexLock lock(mutex_);
  const auto it = servers_.find(server_id);
  if (it == servers_.end() || it->second.memory == nullptr) {
    return util::Status::NotFound("no server " + std::to_string(server_id));
  }
  if (it->second.inbox.empty()) {
    return util::Status::NotFound("nothing in flight");
  }
  return Deliver(&it->second, tier);
}

size_t PageTransport::InFlight(int server_id) const {
  util::MutexLock lock(mutex_);
  const auto it = servers_.find(server_id);
  return it == servers_.end() ? 0 : it->second.inbox.size();
}

}  // namespace angelptm::mem
