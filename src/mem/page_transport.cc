#include "mem/page_transport.h"

#include <cstring>

namespace angelptm::mem {

PageTransport::PageTransport(double nic_bandwidth_bytes_per_sec)
    : throttle_(nic_bandwidth_bytes_per_sec) {}

util::Status PageTransport::RegisterServer(int server_id,
                                           HierarchicalMemory* memory) {
  if (memory == nullptr) {
    return util::Status::InvalidArgument("null memory");
  }
  util::MutexLock lock(mutex_);
  auto [it, inserted] = servers_.try_emplace(server_id);
  if (!inserted && it->second.memory != nullptr) {
    return util::Status::AlreadyExists("server " +
                                       std::to_string(server_id) +
                                       " already registered");
  }
  it->second.memory = memory;
  return util::Status::OK();
}

util::Status PageTransport::Send(int server_id, const Page& page) {
  if (page.data_ptr() == nullptr) {
    return util::Status::FailedPrecondition(
        "page must be memory-resident to send");
  }
  std::vector<std::byte> payload(page.total_bytes());
  std::memcpy(payload.data(), page.data_ptr(), payload.size());
  throttle_.Consume(payload.size());
  {
    util::MutexLock lock(mutex_);
    const auto it = servers_.find(server_id);
    if (it == servers_.end() || it->second.memory == nullptr) {
      return util::Status::NotFound("no server " +
                                    std::to_string(server_id));
    }
    bytes_sent_ += payload.size();
    it->second.inbox.push_back(std::move(payload));
  }
  arrived_.NotifyAll();
  return util::Status::OK();
}

util::Result<Page*> PageTransport::Deliver(Wire* wire, DeviceKind tier) {
  std::vector<std::byte> payload = std::move(wire->inbox.front());
  wire->inbox.pop_front();
  if (payload.size() != wire->memory->page_bytes()) {
    return util::Status::InvalidArgument(
        "wire payload does not match destination page size");
  }
  ANGEL_ASSIGN_OR_RETURN(Page * page, wire->memory->CreatePage(tier));
  if (tier == DeviceKind::kSsd) {
    // Land through a CPU staging page, then spill.
    (void)wire->memory->DestroyPage(page);
    ANGEL_ASSIGN_OR_RETURN(page, wire->memory->CreatePage(DeviceKind::kCpu));
    std::memcpy(page->data_ptr(), payload.data(), payload.size());
    ANGEL_RETURN_IF_ERROR(wire->memory->MovePageSync(page, DeviceKind::kSsd));
  } else {
    std::memcpy(page->data_ptr(), payload.data(), payload.size());
  }
  return page;
}

util::Result<Page*> PageTransport::Receive(int server_id, DeviceKind tier) {
  util::MutexLock lock(mutex_);
  const auto it = servers_.find(server_id);
  if (it == servers_.end() || it->second.memory == nullptr) {
    return util::Status::NotFound("no server " + std::to_string(server_id));
  }
  Wire& wire = it->second;
  while (wire.inbox.empty()) arrived_.Wait(mutex_);
  return Deliver(&wire, tier);
}

util::Result<Page*> PageTransport::TryReceive(int server_id,
                                              DeviceKind tier) {
  util::MutexLock lock(mutex_);
  const auto it = servers_.find(server_id);
  if (it == servers_.end() || it->second.memory == nullptr) {
    return util::Status::NotFound("no server " + std::to_string(server_id));
  }
  if (it->second.inbox.empty()) {
    return util::Status::NotFound("nothing in flight");
  }
  return Deliver(&it->second, tier);
}

size_t PageTransport::InFlight(int server_id) const {
  util::MutexLock lock(mutex_);
  const auto it = servers_.find(server_id);
  return it == servers_.end() ? 0 : it->second.inbox.size();
}

}  // namespace angelptm::mem
