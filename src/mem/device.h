#ifndef ANGELPTM_MEM_DEVICE_H_
#define ANGELPTM_MEM_DEVICE_H_

#include <cstdint>
#include <string>

namespace angelptm::mem {

/// The three storage tiers of the hierarchical memory, using the paper's
/// device map from the Page abstraction (Fig. 3): {0: GPU, 1: CPU, 2: SSD}.
///
/// In this reproduction the "GPU" tier is a capacity-bounded host arena (see
/// DESIGN.md §1): the memory-management behaviour under study — allocation,
/// paging, movement scheduling — only depends on capacities and bandwidth
/// asymmetry, which are preserved.
enum class DeviceKind : uint8_t {
  kGpu = 0,
  kCpu = 1,
  kSsd = 2,
};

inline constexpr int kNumDeviceKinds = 3;

/// Stable lowercase name ("gpu", "cpu", "ssd").
const char* DeviceKindName(DeviceKind kind);

/// Capacity and bandwidth description of one tier.
struct TierConfig {
  uint64_t capacity_bytes = 0;
  /// Sequential bandwidth used when throttling is enabled (bytes/second).
  /// Zero disables throttling (tests run unthrottled).
  double bandwidth_bytes_per_sec = 0.0;
};

/// Sentinel used by Tensor::device_index while some of the tensor's pages are
/// still in flight from another tier (footnote 2 of the paper).
inline constexpr int kDeviceNotReady = -1;

inline std::string DeviceKindToString(DeviceKind kind) {
  return DeviceKindName(kind);
}

}  // namespace angelptm::mem

#endif  // ANGELPTM_MEM_DEVICE_H_
