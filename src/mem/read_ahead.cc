#include "mem/read_ahead.h"

#include <algorithm>
#include <chrono>
#include <unordered_set>

#include "util/logging.h"

namespace angelptm::mem {

ReadAheadExecutor::ReadAheadExecutor(HierarchicalMemory* memory,
                                     CopyEngine* engine,
                                     PrefetchPlanner* planner,
                                     const Options& options)
    : memory_(memory), engine_(engine), planner_(planner), options_(options) {
  ANGEL_CHECK(options_.window > 0) << "read-ahead window must be positive";
  ANGEL_CHECK(options_.max_resident > 0) << "frame budget must be positive";
  obs::Registry& registry = obs::Registry::Instance();
  metric_hits_ = registry.GetCounter("readahead/hits");
  metric_waits_ = registry.GetCounter("readahead/waits");
  metric_covered_ = registry.GetCounter("readahead/covered");
  metric_evictions_ = registry.GetCounter("readahead/evictions");
}

void ReadAheadExecutor::Bind(uint64_t key, Page* page) {
  ANGEL_CHECK(page != nullptr) << "binding null page";
  entries_[key].page = page;
}

void ReadAheadExecutor::BeginStep() {
  planner_->BeginStep();
  SettleMoves(/*block=*/false);
  TopUp();
}

bool ReadAheadExecutor::OccupiesFetchTier(const Entry& entry) const {
  // A fetching page holds its target frame from submission; an evicting page
  // holds its source frame until the write-back lands.
  return entry.op != OpState::kIdle ||
         entry.page->device() == options_.fetch_device;
}

size_t ReadAheadExecutor::OccupiedCount() const {
  size_t count = 0;
  for (const auto& [key, entry] : entries_) {
    if (OccupiesFetchTier(entry)) ++count;
  }
  return count;
}

void ReadAheadExecutor::SettleMoves(bool block) {
  for (auto& [key, entry] : entries_) {
    if (entry.op == OpState::kIdle) continue;
    if (!block && entry.move.wait_for(std::chrono::seconds(0)) !=
                      std::future_status::ready) {
      continue;
    }
    const util::Status status = entry.move.get();
    if (!status.ok()) {
      // A failed fetch left the page on the backing tier (Acquire recovers
      // on demand); a failed eviction left it resident (harmless).
      ++stats_.failed_moves;
      ANGEL_LOG(Warning) << "read-ahead move for key " << key << " failed: "
                         << status.ToString();
    }
    entry.op = OpState::kIdle;
  }
}

util::Status ReadAheadExecutor::EvictOneSync(uint64_t protect) {
  std::vector<uint64_t> candidates;
  for (const auto& [key, entry] : entries_) {
    if (key != protect && entry.op == OpState::kIdle &&
        entry.page->device() == options_.fetch_device) {
      candidates.push_back(key);
    }
  }
  if (candidates.empty()) {
    return util::Status::ResourceExhausted(
        "no evictable page on the fetch tier");
  }
  uint64_t victim = planner_->trained()
                        ? planner_->PickEvictionVictim(candidates)
                        : candidates.front();
  ANGEL_RETURN_IF_ERROR(
      memory_->MovePageSync(entries_[victim].page, options_.backing_device));
  ++stats_.evictions;
  metric_evictions_->Increment();
  return util::Status::OK();
}

util::Result<Page*> ReadAheadExecutor::Acquire(uint64_t key) {
  const auto it = entries_.find(key);
  if (it == entries_.end() || it->second.page == nullptr) {
    return util::Status::NotFound("no page bound for key " +
                                  std::to_string(key));
  }
  Entry& entry = it->second;
  SettleMoves(/*block=*/false);
  planner_->OnUse(key);

  bool need_sync_fetch = false;
  if (entry.op == OpState::kFetching) {
    // Prefetch was issued but has not landed: covered, but we block.
    ++stats_.covered;
    metric_covered_->Increment();
    ++stats_.waits;
    metric_waits_->Increment();
    const util::Status status = entry.move.get();
    entry.op = OpState::kIdle;
    if (!status.ok()) {
      ++stats_.failed_moves;
      need_sync_fetch = true;
    }
  } else if (entry.op == OpState::kEvicting) {
    // The planner mispredicted badly enough that this page is being written
    // back right as it is needed; wait out the eviction, then refetch.
    const util::Status status = entry.move.get();
    entry.op = OpState::kIdle;
    if (!status.ok()) ++stats_.failed_moves;
    ++stats_.waits;
    metric_waits_->Increment();
    need_sync_fetch = entry.page->device() != options_.fetch_device;
  } else if (entry.page->device() == options_.fetch_device) {
    ++stats_.hits;
    metric_hits_->Increment();
    ++stats_.covered;
    metric_covered_->Increment();
  } else {
    // No prefetch was ever issued: plain miss.
    ++stats_.waits;
    metric_waits_->Increment();
    need_sync_fetch = true;
  }

  if (need_sync_fetch) {
    ++stats_.sync_fetches;
    for (;;) {
      const util::Status status =
          memory_->MovePageSync(entry.page, options_.fetch_device);
      if (status.ok()) break;
      if (!status.IsResourceExhausted()) return status;
      // Fetch tier full: settle in-flight moves (they may be releasing
      // frames), then force out a victim and retry.
      SettleMoves(/*block=*/true);
      if (entry.page->device() == options_.fetch_device) break;
      ANGEL_RETURN_IF_ERROR(EvictOneSync(key));
    }
  }

  TopUp();
  return entry.page;
}

void ReadAheadExecutor::TopUp() {
  if (!planner_->trained()) return;
  const std::vector<uint64_t> lookahead =
      planner_->LookaheadKeys(options_.window);
  const std::unordered_set<uint64_t> protected_keys(lookahead.begin(),
                                                    lookahead.end());
  size_t occupied = OccupiedCount();
  for (const uint64_t key : lookahead) {
    const auto it = entries_.find(key);
    if (it == entries_.end() || it->second.page == nullptr) continue;
    Entry& entry = it->second;
    if (OccupiesFetchTier(entry)) continue;
    if (occupied >= options_.max_resident) {
      // Budget exhausted: start write-backs of the farthest-next-use
      // residents. Their frames free asynchronously; the window refills on
      // the next Acquire.
      std::vector<uint64_t> candidates;
      for (const auto& [candidate_key, candidate] : entries_) {
        if (candidate.op == OpState::kIdle &&
            candidate.page->device() == options_.fetch_device &&
            protected_keys.find(candidate_key) == protected_keys.end()) {
          candidates.push_back(candidate_key);
        }
      }
      const uint64_t victim = planner_->PickEvictionVictim(candidates);
      if (victim == PrefetchPlanner::kNoVictim) break;
      Entry& victim_entry = entries_[victim];
      victim_entry.move =
          engine_->MoveAsync(victim_entry.page, options_.backing_device);
      victim_entry.op = OpState::kEvicting;
      ++stats_.evictions;
      metric_evictions_->Increment();
      break;
    }
    entry.move = engine_->MoveAsync(entry.page, options_.fetch_device);
    entry.op = OpState::kFetching;
    ++occupied;
  }
}

util::Status ReadAheadExecutor::Drain() {
  util::Status first_error;
  for (auto& [key, entry] : entries_) {
    if (entry.op == OpState::kIdle) continue;
    const util::Status status = entry.move.get();
    entry.op = OpState::kIdle;
    if (!status.ok()) {
      ++stats_.failed_moves;
      if (first_error.ok()) first_error = status;
    }
  }
  return first_error;
}

}  // namespace angelptm::mem
