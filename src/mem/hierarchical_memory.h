#ifndef ANGELPTM_MEM_HIERARCHICAL_MEMORY_H_
#define ANGELPTM_MEM_HIERARCHICAL_MEMORY_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/device.h"
#include "mem/page.h"
#include "mem/page_arena.h"
#include "mem/ssd_tier.h"
#include "obs/metrics.h"
#include "util/bandwidth_throttle.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace angelptm::mem {

/// Configuration for the three storage tiers of one rank.
struct HierarchicalMemoryOptions {
  size_t page_bytes = kDefaultPageBytes;
  uint64_t gpu_capacity_bytes = 0;
  uint64_t cpu_capacity_bytes = 0;
  /// 0 disables the SSD tier entirely.
  uint64_t ssd_capacity_bytes = 0;
  std::string ssd_path = "/tmp/angelptm_ssd.bin";
  /// Emulated link speeds; 0 = unthrottled (the default for tests).
  double pcie_bandwidth_bytes_per_sec = 0.0;
  double ssd_bandwidth_bytes_per_sec = 0.0;
  /// Retry policy for transient SSD I/O errors (see SsdTier::RetryPolicy).
  SsdTier::RetryPolicy ssd_retry;
  /// Submission-queue backend knobs forwarded to SsdTier::Options (see the
  /// field docs there; each has an ANGELPTM_SSD_IO_* env override).
  size_t ssd_io_workers = 2;
  size_t ssd_io_queue_depth = 64;
  size_t ssd_io_coalesce = 8;
  int ssd_io_op_latency_us = 0;
};

/// Movement statistics per (source, target) tier pair.
struct MoveStats {
  uint64_t moves = 0;
  uint64_t bytes = 0;
};

/// One tier's occupancy within a MemorySnapshot.
struct TierUsage {
  uint64_t used_bytes = 0;
  uint64_t capacity_bytes = 0;
  /// Live pages currently resident on this tier.
  size_t pages = 0;
};

/// Structured point-in-time view of the hierarchical memory — the machine-
/// readable surface every stats consumer (reports, telemetry, tests) reads
/// instead of poking individual getters. Produced by
/// HierarchicalMemory::Snapshot(); rendered by mem::FormatMemoryReport.
struct MemorySnapshot {
  size_t page_bytes = 0;
  size_t live_pages = 0;
  /// Total bytes of internal fragmentation across live pages.
  uint64_t fragmented_bytes = 0;
  /// Indexed by DeviceKind; a tier with capacity_bytes == 0 is disabled.
  std::array<TierUsage, kNumDeviceKinds> tiers{};
  /// moves[from][to], indexed by DeviceKind.
  std::array<std::array<MoveStats, kNumDeviceKinds>, kNumDeviceKinds>
      moves{};

  const TierUsage& tier(DeviceKind kind) const {
    return tiers[static_cast<int>(kind)];
  }
  const MoveStats& link(DeviceKind from, DeviceKind to) const {
    return moves[static_cast<int>(from)][static_cast<int>(to)];
  }
};

/// Owner of the per-rank hierarchical storage: the pre-allocated GPU and CPU
/// page arenas, the file-backed SSD tier, and the registry of live pages.
/// This is the substrate beneath the paper's Allocator component (§5): all
/// page creation, destruction and inter-tier movement funnels through here.
///
/// Thread-safety: page creation/destruction and moves of *distinct* pages may
/// run concurrently; moves of the same page must be externally serialized
/// (the unified scheduler and the copy engine both guarantee this).
class HierarchicalMemory {
 public:
  explicit HierarchicalMemory(const HierarchicalMemoryOptions& options);
  ~HierarchicalMemory();

  HierarchicalMemory(const HierarchicalMemory&) = delete;
  HierarchicalMemory& operator=(const HierarchicalMemory&) = delete;

  /// Creates a page resident on `initial_device`, acquiring a frame there.
  [[nodiscard]] util::Result<Page*> CreatePage(DeviceKind initial_device)
      ANGEL_EXCLUDES(registry_mutex_);

  /// Creates `count` pages over physically adjacent frames on a memory tier
  /// (used by Tensor::merge to produce one contiguous range). All-or-nothing.
  [[nodiscard]] util::Result<std::vector<Page*>> CreateContiguousPages(
      DeviceKind device, size_t count) ANGEL_EXCLUDES(registry_mutex_);

  /// Releases the page's frame and unregisters it. The page must be empty
  /// (no tensor slots) unless `force` is set.
  [[nodiscard]] util::Status DestroyPage(Page* page, bool force = false)
      ANGEL_EXCLUDES(registry_mutex_);

  /// Moves a page's contents to `target`, synchronously. Acquires the target
  /// frame first, so on ResourceExhausted the page is untouched. This is the
  /// primitive beneath Page::move(); asynchrony is added by CopyEngine.
  [[nodiscard]] util::Status MovePageSync(Page* page, DeviceKind target)
      ANGEL_EXCLUDES(stats_mutex_);

  const PageArena& gpu_arena() const { return *gpu_arena_; }
  const PageArena& cpu_arena() const { return *cpu_arena_; }
  SsdTier* ssd() { return ssd_enabled_ ? &ssd_ : nullptr; }
  bool ssd_enabled() const { return ssd_enabled_; }

  size_t page_bytes() const { return options_.page_bytes; }
  size_t num_live_pages() const ANGEL_EXCLUDES(registry_mutex_);
  uint64_t used_bytes(DeviceKind device) const;
  uint64_t capacity_bytes(DeviceKind device) const;
  uint64_t free_bytes(DeviceKind device) const {
    return capacity_bytes(device) - used_bytes(device);
  }

  /// Total bytes of internal fragmentation across live pages (holes from
  /// out-of-order releases; bounded by the two-tensor cap).
  uint64_t FragmentedBytes() const ANGEL_EXCLUDES(registry_mutex_);

  MoveStats move_stats(DeviceKind from, DeviceKind to) const
      ANGEL_EXCLUDES(stats_mutex_);

  /// Structured snapshot of occupancy, page counts, fragmentation and
  /// per-link movement — the one-stop stats surface (DESIGN.md §8).
  MemorySnapshot Snapshot() const
      ANGEL_EXCLUDES(registry_mutex_, stats_mutex_);

 private:
  PageArena& MutableArena(DeviceKind device);

  HierarchicalMemoryOptions options_;
  std::unique_ptr<PageArena> gpu_arena_;
  std::unique_ptr<PageArena> cpu_arena_;
  SsdTier ssd_;
  bool ssd_enabled_ = false;
  util::BandwidthThrottle pcie_throttle_;

  mutable util::Mutex registry_mutex_{"hmem.registry",
                                      util::lockrank::kHmemRegistry};
  std::unordered_map<uint64_t, std::unique_ptr<Page>> pages_
      ANGEL_GUARDED_BY(registry_mutex_);
  std::atomic<uint64_t> next_page_id_{0};

  mutable util::Mutex stats_mutex_{"hmem.stats",
                                   util::lockrank::kHmemStats};
  std::array<std::array<MoveStats, kNumDeviceKinds>, kNumDeviceKinds>
      move_stats_ ANGEL_GUARDED_BY(stats_mutex_){};

  // Process-wide series (obs registry handles; set once in the ctor).
  obs::Counter* metric_pages_created_ = nullptr;
  obs::Counter* metric_page_moves_ = nullptr;
  obs::Counter* metric_page_move_bytes_ = nullptr;
};

}  // namespace angelptm::mem

#endif  // ANGELPTM_MEM_HIERARCHICAL_MEMORY_H_
