#ifndef ANGELPTM_MEM_WIRE_FORMAT_H_
#define ANGELPTM_MEM_WIRE_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/status.h"

namespace angelptm::mem::wire {

/// The one wire framing shared by every transport in the system: the
/// in-process PageTransport queue (mem/page_transport.cc) and the
/// multi-process socket collectives (dist/process_group.cc) prepend the
/// same fixed-size header to every payload, so a page on the wire and a
/// collective message on the wire are parsed by the same code and carry
/// the same integrity checks.
///
/// Layout (24 bytes, host byte order — the transport never leaves one
/// host, see DESIGN.md §14.2):
///
///   offset  size  field
///        0     4  magic   0x4150544D ("APTM")
///        4     2  op      message kind (Op below)
///        6     2  rank    sender rank / server id
///        8     4  seq     per-connection collective sequence number
///       12     4  reserved (zero)
///       16     8  payload_bytes
inline constexpr uint32_t kMagic = 0x4150544Du;
inline constexpr size_t kHeaderBytes = 24;

/// Message kinds. kPage frames PageTransport payloads; the rest belong to
/// dist::ProcessGroup's hub protocol.
enum class Op : uint16_t {
  kPage = 1,
  kHello = 2,          // rank -> root at rendezvous; payload: u32 world_size
  kWelcome = 3,        // root -> rank once the full world has joined
  kAllGather = 4,      // rank -> root: my contribution
  kReduceScatter = 5,  // rank -> root: my full gradient buffer
  kAllReduce = 6,      // rank -> root: my full buffer
  kBarrier = 7,        // rank -> root: empty
  kResult = 8,         // root -> rank: the collective's result
};

struct Header {
  Op op = Op::kPage;
  uint16_t rank = 0;
  uint32_t seq = 0;
  uint64_t payload_bytes = 0;
};

/// Serializes `header` into exactly kHeaderBytes at `out`.
void EncodeHeader(const Header& header, std::byte* out);

/// Parses kHeaderBytes at `in`. InvalidArgument on a bad magic or an
/// unknown op — a desynchronized or corrupted stream, never silently
/// resynchronized.
[[nodiscard]] util::Result<Header> DecodeHeader(const std::byte* in);

/// Convenience: header + payload in one contiguous buffer (the in-process
/// PageTransport wire representation).
[[nodiscard]] std::vector<std::byte> EncodeFrame(const Header& header,
                                                 const void* payload);

// --- Framed socket I/O (used by dist::ProcessGroup) ---

/// Writes header + `header.payload_bytes` of `payload` to `fd`, looping
/// over partial writes and EINTR. Uses MSG_NOSIGNAL so a dead peer surfaces
/// as an IoError instead of SIGPIPE. A closed peer yields an IoError whose
/// message contains kPeerClosedMsg.
[[nodiscard]] util::Status SendFrame(int fd, const Header& header,
                                     const void* payload);

/// Reads one frame from `fd` into `header` and `payload` (resized to the
/// frame's payload size). `timeout_ms` < 0 waits forever; on expiry returns
/// DeadlineExceeded. EOF (peer process died) returns an IoError whose
/// message contains kPeerClosedMsg.
[[nodiscard]] util::Status RecvFrame(int fd, Header* header,
                                     std::vector<std::byte>* payload,
                                     int timeout_ms);

/// Substring that marks an IoError as "the peer went away" (fail-stop
/// detection; see ProcessGroup::IsPeerLoss).
inline constexpr const char* kPeerClosedMsg = "peer closed";

}  // namespace angelptm::mem::wire

#endif  // ANGELPTM_MEM_WIRE_FORMAT_H_
