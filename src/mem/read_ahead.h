#ifndef ANGELPTM_MEM_READ_AHEAD_H_
#define ANGELPTM_MEM_READ_AHEAD_H_

#include <cstddef>
#include <cstdint>
#include <future>
#include <unordered_map>
#include <vector>

#include "mem/copy_engine.h"
#include "mem/device.h"
#include "mem/hierarchical_memory.h"
#include "mem/page.h"
#include "mem/prefetch_planner.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace angelptm::mem {

/// Planner-driven page read-ahead over a two-tier (fetch tier + backing tier)
/// working set (DESIGN.md §12): the consumer declares pages under stable keys
/// (Bind), touches them in schedule order (Acquire), and the executor keeps
/// the next `window` scheduled pages in flight on the fetch tier through
/// CopyEngine::MoveAsync — which lands in SsdTier's submission queue, where
/// adjacent frames coalesce into batched preadv calls. Eviction is
/// Belady-style via PrefetchPlanner::PickEvictionVictim: the resident page
/// whose next predicted use is farthest away is written back, never the
/// immediately-next one. Before the planner trains (warmup step), Acquire
/// degrades to fetch-on-demand with first-found eviction.
///
/// Frame budget: at most `max_resident` bound pages simultaneously occupy (or
/// are moving to/from) the fetch tier. Keep this at or below the fetch
/// arena's free frames or prefetch moves fail with ResourceExhausted and fall
/// back to synchronous fetches.
///
/// Single-threaded driver by contract (like PrefetchPlanner): one consumer
/// thread calls Bind/BeginStep/Acquire; concurrency lives below, in the copy
/// engine's pool and the SSD tier's queue workers. Same-page ordering is safe
/// because CopyEngine serializes moves of one page in submission order.
class ReadAheadExecutor {
 public:
  struct Options {
    /// Distinct scheduled pages to keep in flight ahead of the cursor.
    size_t window = 8;
    /// Budget of bound pages on (or moving to/from) the fetch tier.
    size_t max_resident = 16;
    DeviceKind fetch_device = DeviceKind::kCpu;
    DeviceKind backing_device = DeviceKind::kSsd;
  };

  /// Outcome counters; also published process-wide as "readahead/*".
  struct Stats {
    /// Acquires whose page was already resident (or whose prefetch had
    /// completed) on the fetch tier — no blocking.
    uint64_t hits = 0;
    /// Acquires that had to block (prefetch still in flight, or no prefetch
    /// was issued at all).
    uint64_t waits = 0;
    /// Acquires whose fetch was *issued* before the use (resident, or
    /// in flight) — the deterministic coverage measure: covered == uses
    /// means the planner predicted every access.
    uint64_t covered = 0;
    /// Belady write-backs issued to make room for read-ahead.
    uint64_t evictions = 0;
    /// Acquires served by a synchronous on-demand move (miss, or a failed
    /// prefetch recovered inline).
    uint64_t sync_fetches = 0;
    /// Async prefetch/evict futures that resolved with an error (each is
    /// recovered by a sync fallback or surfaced by Acquire).
    uint64_t failed_moves = 0;
  };

  /// `memory`, `engine` and `planner` must outlive the executor.
  ReadAheadExecutor(HierarchicalMemory* memory, CopyEngine* engine,
                    PrefetchPlanner* planner, const Options& options);

  ReadAheadExecutor(const ReadAheadExecutor&) = delete;
  ReadAheadExecutor& operator=(const ReadAheadExecutor&) = delete;

  /// Registers `page` under `key` (the key used in the planner's trace).
  void Bind(uint64_t key, Page* page);

  /// Starts a step: resets the planner cursor and tops up the window.
  void BeginStep();

  /// Blocks until `key`'s page is resident on the fetch tier, then issues
  /// read-ahead for the upcoming window. Returns the page, or the error that
  /// both the async move and the sync fallback died with.
  [[nodiscard]] util::Result<Page*> Acquire(uint64_t key);

  /// Settles every in-flight move (prefetches and evictions). Call before
  /// tearing down pages the executor still references.
  [[nodiscard]] util::Status Drain();

  Stats Snapshot() const { return stats_; }

 private:
  enum class OpState { kIdle, kFetching, kEvicting };

  struct Entry {
    Page* page = nullptr;
    OpState op = OpState::kIdle;
    std::future<util::Status> move;
  };

  /// True when the entry occupies (or is moving to/from) a fetch-tier frame.
  bool OccupiesFetchTier(const Entry& entry) const;
  size_t OccupiedCount() const;
  /// Harvests completed futures; with `block`, waits for them all.
  void SettleMoves(bool block);
  /// Issues prefetches for the planner's lookahead window, evicting
  /// farthest-next-use residents as needed within the frame budget.
  void TopUp();
  /// Synchronous eviction of the best victim outside `protect`; used by the
  /// on-demand path when the budget is exhausted.
  [[nodiscard]] util::Status EvictOneSync(uint64_t protect);

  HierarchicalMemory* memory_;
  CopyEngine* engine_;
  PrefetchPlanner* planner_;
  Options options_;
  std::unordered_map<uint64_t, Entry> entries_;

  Stats stats_;
  obs::Counter* metric_hits_ = nullptr;
  obs::Counter* metric_waits_ = nullptr;
  obs::Counter* metric_covered_ = nullptr;
  obs::Counter* metric_evictions_ = nullptr;
};

}  // namespace angelptm::mem

#endif  // ANGELPTM_MEM_READ_AHEAD_H_
