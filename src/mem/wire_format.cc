#include "mem/wire_format.h"

#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <cstring>
#include <string>

namespace angelptm::mem::wire {

namespace {

void PutU16(std::byte* out, uint16_t v) { std::memcpy(out, &v, 2); }
void PutU32(std::byte* out, uint32_t v) { std::memcpy(out, &v, 4); }
void PutU64(std::byte* out, uint64_t v) { std::memcpy(out, &v, 8); }
uint16_t GetU16(const std::byte* in) {
  uint16_t v;
  std::memcpy(&v, in, 2);
  return v;
}
uint32_t GetU32(const std::byte* in) {
  uint32_t v;
  std::memcpy(&v, in, 4);
  return v;
}
uint64_t GetU64(const std::byte* in) {
  uint64_t v;
  std::memcpy(&v, in, 8);
  return v;
}

util::Status PeerClosed(const char* what) {
  return util::Status::IoError(std::string("wire: ") + kPeerClosedMsg +
                               " during " + what);
}

/// Blocks until `fd` is ready for `events` or the deadline passes.
util::Status PollFor(int fd, short events, int timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  for (;;) {
    const int n = ::poll(&pfd, 1, timeout_ms);
    if (n > 0) return util::Status::OK();
    if (n == 0) {
      return util::Status::DeadlineExceeded("wire: frame I/O timed out");
    }
    if (errno == EINTR) continue;
    return util::Status::IoError(std::string("wire: poll failed: ") +
                                 std::strerror(errno));
  }
}

util::Status WriteFull(int fd, const void* buf, size_t len) {
  const auto* p = static_cast<const std::byte*>(buf);
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::send(fd, p + done, len - done, MSG_NOSIGNAL);
    if (n > 0) {
      done += size_t(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      return PeerClosed("send");
    }
    return util::Status::IoError(std::string("wire: send failed: ") +
                                 std::strerror(errno));
  }
  return util::Status::OK();
}

util::Status ReadFull(int fd, void* buf, size_t len, int timeout_ms) {
  auto* p = static_cast<std::byte*>(buf);
  size_t done = 0;
  while (done < len) {
    ANGEL_RETURN_IF_ERROR(PollFor(fd, POLLIN, timeout_ms));
    const ssize_t n = ::recv(fd, p + done, len - done, 0);
    if (n > 0) {
      done += size_t(n);
      continue;
    }
    if (n == 0) return PeerClosed("recv");
    if (errno == EINTR) continue;
    if (errno == ECONNRESET) return PeerClosed("recv");
    return util::Status::IoError(std::string("wire: recv failed: ") +
                                 std::strerror(errno));
  }
  return util::Status::OK();
}

}  // namespace

void EncodeHeader(const Header& header, std::byte* out) {
  PutU32(out + 0, kMagic);
  PutU16(out + 4, uint16_t(header.op));
  PutU16(out + 6, header.rank);
  PutU32(out + 8, header.seq);
  PutU32(out + 12, 0);
  PutU64(out + 16, header.payload_bytes);
}

util::Result<Header> DecodeHeader(const std::byte* in) {
  if (GetU32(in + 0) != kMagic) {
    return util::Status::InvalidArgument(
        "wire: bad frame magic (desynchronized or corrupt stream)");
  }
  const uint16_t op = GetU16(in + 4);
  if (op < uint16_t(Op::kPage) || op > uint16_t(Op::kResult)) {
    return util::Status::InvalidArgument("wire: unknown frame op " +
                                         std::to_string(op));
  }
  Header header;
  header.op = Op(op);
  header.rank = GetU16(in + 6);
  header.seq = GetU32(in + 8);
  header.payload_bytes = GetU64(in + 16);
  return header;
}

std::vector<std::byte> EncodeFrame(const Header& header,
                                   const void* payload) {
  std::vector<std::byte> frame(kHeaderBytes + header.payload_bytes);
  EncodeHeader(header, frame.data());
  if (header.payload_bytes > 0) {
    std::memcpy(frame.data() + kHeaderBytes, payload, header.payload_bytes);
  }
  return frame;
}

util::Status SendFrame(int fd, const Header& header, const void* payload) {
  std::byte head[kHeaderBytes];
  EncodeHeader(header, head);
  ANGEL_RETURN_IF_ERROR(WriteFull(fd, head, kHeaderBytes));
  if (header.payload_bytes > 0) {
    ANGEL_RETURN_IF_ERROR(WriteFull(fd, payload, header.payload_bytes));
  }
  return util::Status::OK();
}

util::Status RecvFrame(int fd, Header* header,
                       std::vector<std::byte>* payload, int timeout_ms) {
  std::byte head[kHeaderBytes];
  ANGEL_RETURN_IF_ERROR(ReadFull(fd, head, kHeaderBytes, timeout_ms));
  ANGEL_ASSIGN_OR_RETURN(*header, DecodeHeader(head));
  payload->resize(header->payload_bytes);
  if (header->payload_bytes > 0) {
    ANGEL_RETURN_IF_ERROR(
        ReadFull(fd, payload->data(), header->payload_bytes, timeout_ms));
  }
  return util::Status::OK();
}

}  // namespace angelptm::mem::wire
