#include "mem/copy_engine.h"

#include <utility>

#include "util/logging.h"

namespace angelptm::mem {

CopyEngine::CopyEngine(HierarchicalMemory* memory, size_t num_threads)
    : memory_(memory), pool_(num_threads) {}

CopyEngine::~CopyEngine() { Drain(); }

std::future<util::Status> CopyEngine::MoveAsync(Page* page,
                                                DeviceKind target) {
  auto promise = std::make_shared<std::promise<util::Status>>();
  std::future<util::Status> future = promise->get_future();
  auto mutex = PageMutex(page->id());
  const bool accepted =
      pool_.Submit([this, page, target, promise,
                    mutex = std::move(mutex)] {
        util::Status status;
        {
          std::lock_guard<std::mutex> lock(*mutex);
          status = memory_->MovePageSync(page, target);
        }
        if (status.ok()) {
          moves_completed_.fetch_add(1, std::memory_order_relaxed);
        } else {
          moves_failed_.fetch_add(1, std::memory_order_relaxed);
        }
        promise->set_value(std::move(status));
      });
  if (!accepted) {
    // The pool was shut down; fail the move instead of returning a future
    // that never resolves.
    moves_failed_.fetch_add(1, std::memory_order_relaxed);
    ANGEL_LOG(Warning) << "copy engine rejected move for page " << page->id()
                       << ": pool is shut down";
    promise->set_value(util::Status(util::StatusCode::kCancelled,
                                    "copy engine is shut down"));
  }
  return future;
}

void CopyEngine::Drain() { pool_.Wait(); }

std::shared_ptr<std::mutex> CopyEngine::PageMutex(uint64_t page_id) {
  std::lock_guard<std::mutex> lock(page_mutex_map_mutex_);
  auto& entry = page_mutexes_[page_id];
  if (entry == nullptr) entry = std::make_shared<std::mutex>();
  return entry;
}

}  // namespace angelptm::mem
