#include "mem/copy_engine.h"

#include <algorithm>
#include <utility>

#include "obs/trace.h"
#include "util/fault_injector.h"
#include "util/logging.h"

namespace angelptm::mem {

CopyEngine::CopyEngine(HierarchicalMemory* memory, size_t num_threads)
    : memory_(memory), pool_(num_threads) {
  obs::Registry& registry = obs::Registry::Instance();
  metric_moves_completed_ = registry.GetCounter("copy/moves_completed");
  metric_moves_failed_ = registry.GetCounter("copy/moves_failed");
  metric_queue_depth_ = registry.GetGauge("copy/queue_depth");
}

CopyEngine::~CopyEngine() { Drain(); }

std::future<util::Status> CopyEngine::MoveAsync(Page* page,
                                                DeviceKind target) {
  auto promise = std::make_shared<std::promise<util::Status>>();
  std::future<util::Status> future = promise->get_future();
  auto mutex = PageMutex(page->id());
  queue_depth_.fetch_add(1, std::memory_order_relaxed);
  metric_queue_depth_->Add(1);
  const bool accepted =
      pool_.Submit([this, page, target, promise,
                    mutex = std::move(mutex)] {
        ANGEL_SPAN("copy", "move_async");
        // Failpoint for a copy thread dying mid-move (a failed
        // cudaMemcpyAsync / DeepNVMe submission in the real system): the
        // error reaches the caller through the move's future.
        util::Status status =
            util::FaultInjector::Instance().Check("copy_engine.move");
        if (status.ok()) {
          util::MutexLock lock(*mutex);
          status = memory_->MovePageSync(page, target);
        }
        if (status.ok()) {
          moves_completed_.fetch_add(1, std::memory_order_relaxed);
          metric_moves_completed_->Increment();
        } else {
          moves_failed_.fetch_add(1, std::memory_order_relaxed);
          metric_moves_failed_->Increment();
        }
        queue_depth_.fetch_sub(1, std::memory_order_relaxed);
        metric_queue_depth_->Add(-1);
        promise->set_value(std::move(status));
      });
  if (!accepted) {
    // The pool was shut down; fail the move instead of returning a future
    // that never resolves.
    queue_depth_.fetch_sub(1, std::memory_order_relaxed);
    metric_queue_depth_->Add(-1);
    moves_failed_.fetch_add(1, std::memory_order_relaxed);
    metric_moves_failed_->Increment();
    ANGEL_LOG(Warning) << "copy engine rejected move for page " << page->id()
                       << ": pool is shut down";
    promise->set_value(util::Status(util::StatusCode::kCancelled,
                                    "copy engine is shut down"));
  }
  return future;
}

void CopyEngine::Drain() { pool_.Wait(); }

std::shared_ptr<util::Mutex> CopyEngine::PageMutex(uint64_t page_id) {
  util::MutexLock lock(page_mutex_map_mutex_);
  // A mutex whose only reference is the map entry has no in-flight move;
  // sweep those out once the map doubles past the last sweep, so long-lived
  // engines moving millions of distinct pages stay O(live moves).
  if (page_mutexes_.size() >= page_mutex_gc_threshold_) {
    for (auto it = page_mutexes_.begin(); it != page_mutexes_.end();) {
      if (it->second.use_count() == 1) {
        it = page_mutexes_.erase(it);
      } else {
        ++it;
      }
    }
    page_mutex_gc_threshold_ =
        std::max<size_t>(kPageMutexGcMinThreshold, 2 * page_mutexes_.size());
  }
  auto& entry = page_mutexes_[page_id];
  if (entry == nullptr) {
    entry = std::make_shared<util::Mutex>("copy.page",
                                          util::lockrank::kCopyPage);
  }
  return entry;
}

CopyEngine::Stats CopyEngine::Snapshot() const {
  Stats stats;
  stats.moves_completed = moves_completed_.load(std::memory_order_relaxed);
  stats.moves_failed = moves_failed_.load(std::memory_order_relaxed);
  stats.queue_depth = queue_depth_.load(std::memory_order_relaxed);
  {
    util::MutexLock lock(page_mutex_map_mutex_);
    stats.tracked_page_mutexes = page_mutexes_.size();
  }
  return stats;
}

}  // namespace angelptm::mem
