#include "mem/copy_engine.h"

#include <utility>

namespace angelptm::mem {

CopyEngine::CopyEngine(HierarchicalMemory* memory, size_t num_threads)
    : memory_(memory), pool_(num_threads) {}

CopyEngine::~CopyEngine() { Drain(); }

std::future<util::Status> CopyEngine::MoveAsync(Page* page,
                                                DeviceKind target) {
  auto promise = std::make_shared<std::promise<util::Status>>();
  std::future<util::Status> future = promise->get_future();
  auto mutex = PageMutex(page->id());
  pool_.Submit([this, page, target, promise = std::move(promise),
                mutex = std::move(mutex)] {
    util::Status status;
    {
      std::lock_guard<std::mutex> lock(*mutex);
      status = memory_->MovePageSync(page, target);
    }
    if (status.ok()) {
      moves_completed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      moves_failed_.fetch_add(1, std::memory_order_relaxed);
    }
    promise->set_value(std::move(status));
  });
  return future;
}

void CopyEngine::Drain() { pool_.Wait(); }

std::shared_ptr<std::mutex> CopyEngine::PageMutex(uint64_t page_id) {
  std::lock_guard<std::mutex> lock(page_mutex_map_mutex_);
  auto& entry = page_mutexes_[page_id];
  if (entry == nullptr) entry = std::make_shared<std::mutex>();
  return entry;
}

}  // namespace angelptm::mem
