#include "mem/ssd_tier.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/logging.h"

namespace angelptm::mem {

SsdTier::~SsdTier() { Close(); }

util::Status SsdTier::Open(const Options& options) {
  if (is_open()) {
    return util::Status::FailedPrecondition("SsdTier already open");
  }
  if (options.frame_bytes == 0) {
    return util::Status::InvalidArgument("frame_bytes must be positive");
  }
  const int fd =
      ::open(options.path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return util::Status::IoError("open(" + options.path +
                                 "): " + std::strerror(errno));
  }
  frame_bytes_ = options.frame_bytes;
  total_frames_ = options.capacity_bytes / options.frame_bytes;
  if (::ftruncate(fd, static_cast<off_t>(uint64_t{total_frames_} *
                                         frame_bytes_)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return util::Status::IoError("ftruncate: " + err);
  }
  fd_ = fd;
  path_ = options.path;
  throttle_.set_rate(options.throttle_bytes_per_sec);
  delete_on_close_ = options.delete_on_close;
  free_list_.clear();
  free_list_.reserve(total_frames_);
  for (size_t i = total_frames_; i > 0; --i) {
    free_list_.push_back(static_cast<uint32_t>(i - 1));
  }
  return util::Status::OK();
}

void SsdTier::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    if (delete_on_close_) ::unlink(path_.c_str());
  }
}

util::Result<uint64_t> SsdTier::AcquireFrame() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (free_list_.empty()) {
    return util::Status::ResourceExhausted("ssd tier full (" +
                                           std::to_string(total_frames_) +
                                           " frames)");
  }
  const uint32_t index = free_list_.back();
  free_list_.pop_back();
  return uint64_t{index} * frame_bytes_;
}

size_t SsdTier::free_frames() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return free_list_.size();
}

void SsdTier::ReleaseFrame(uint64_t offset) {
  ANGEL_CHECK(offset % frame_bytes_ == 0) << "misaligned ssd frame offset";
  const uint64_t index = offset / frame_bytes_;
  ANGEL_CHECK(index < total_frames_) << "ssd frame offset out of range";
  std::lock_guard<std::mutex> lock(mutex_);
  free_list_.push_back(static_cast<uint32_t>(index));
}

util::Status SsdTier::WriteFrame(uint64_t offset, const std::byte* src,
                                 size_t bytes) {
  if (!is_open()) return util::Status::FailedPrecondition("SsdTier closed");
  if (bytes > frame_bytes_) {
    return util::Status::InvalidArgument("write exceeds frame size");
  }
  size_t done = 0;
  while (done < bytes) {
    const ssize_t n = ::pwrite(fd_, src + done, bytes - done,
                               static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return util::Status::IoError(std::string("pwrite: ") +
                                   std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  bytes_written_.fetch_add(bytes, std::memory_order_relaxed);
  throttle_.Consume(bytes);
  return util::Status::OK();
}

util::Status SsdTier::ReadFrame(uint64_t offset, std::byte* dst,
                                size_t bytes) {
  if (!is_open()) return util::Status::FailedPrecondition("SsdTier closed");
  if (bytes > frame_bytes_) {
    return util::Status::InvalidArgument("read exceeds frame size");
  }
  size_t done = 0;
  while (done < bytes) {
    const ssize_t n = ::pread(fd_, dst + done, bytes - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return util::Status::IoError(std::string("pread: ") +
                                   std::strerror(errno));
    }
    if (n == 0) {
      return util::Status::IoError("pread: unexpected EOF");
    }
    done += static_cast<size_t>(n);
  }
  bytes_read_.fetch_add(bytes, std::memory_order_relaxed);
  throttle_.Consume(bytes);
  return util::Status::OK();
}

}  // namespace angelptm::mem
