#include "mem/ssd_tier.h"

#include <fcntl.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <thread>

#include "obs/trace.h"
#include "util/env_override.h"
#include "util/fault_injector.h"
#include "util/logging.h"

namespace angelptm::mem {
namespace {

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// The ANGELPTM_SSD_IO_* knobs below follow the util::EnvOverride precedence
// contract: env wins over Options so a whole test binary can be re-pointed
// at the async backend without code changes (scripts/check.sh --ssd relies
// on this).
using util::EnvSizeOr;

}  // namespace

SsdTier::~SsdTier() { Close(); }

util::Status SsdTier::Open(const Options& options) {
  if (is_open()) {
    return util::Status::FailedPrecondition("SsdTier already open");
  }
  if (options.frame_bytes == 0) {
    return util::Status::InvalidArgument("frame_bytes must be positive");
  }
  if (options.capacity_bytes < options.frame_bytes) {
    return util::Status::InvalidArgument(
        "ssd capacity (" + std::to_string(options.capacity_bytes) +
        " bytes) smaller than one frame (" +
        std::to_string(options.frame_bytes) + " bytes)");
  }
  const uint64_t frames = options.capacity_bytes / options.frame_bytes;
  // Frame indices are stored as uint32_t in the free list; a silently
  // truncated index would alias two different frames' offsets.
  if (frames > std::numeric_limits<uint32_t>::max()) {
    return util::Status::InvalidArgument(
        "ssd capacity of " + std::to_string(frames) +
        " frames exceeds the 2^32-1 frame-index limit; use larger frames");
  }
  const int fd =
      ::open(options.path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return util::Status::IoError("open(" + options.path +
                                 "): " + std::strerror(errno));
  }
  frame_bytes_ = options.frame_bytes;
  total_frames_ = static_cast<size_t>(frames);
  if (::ftruncate(fd, static_cast<off_t>(uint64_t{total_frames_} *
                                         frame_bytes_)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return util::Status::IoError("ftruncate: " + err);
  }
  fd_ = fd;
  path_ = options.path;
  throttle_.set_rate(options.throttle_bytes_per_sec);
  delete_on_close_ = options.delete_on_close;
  retry_ = options.retry;
  io_queue_depth_ =
      std::max<size_t>(1, EnvSizeOr("ANGELPTM_SSD_IO_QUEUE_DEPTH",
                                    options.io_queue_depth));
  io_max_coalesce_ = std::max<size_t>(
      1, EnvSizeOr("ANGELPTM_SSD_IO_COALESCE", options.io_max_coalesce));
  io_op_latency_us_ = static_cast<int>(
      EnvSizeOr("ANGELPTM_SSD_IO_OP_LATENCY_US",
                static_cast<size_t>(std::max(0, options.io_op_latency_us))));
  obs::Registry& registry = obs::Registry::Instance();
  metric_bytes_read_ = registry.GetCounter("ssd/bytes_read");
  metric_bytes_written_ = registry.GetCounter("ssd/bytes_written");
  metric_io_retries_ = registry.GetCounter("ssd/io_retries");
  metric_queued_requests_ = registry.GetCounter("ssd/async_requests");
  metric_pread_us_ = registry.GetHistogram("ssd/pread_us");
  metric_pwrite_us_ = registry.GetHistogram("ssd/pwrite_us");
  metric_queue_depth_ = registry.GetHistogram("ssd/queue_depth");
  metric_batch_frames_ = registry.GetHistogram("ssd/batch_frames");
  free_list_.clear();
  free_list_.reserve(total_frames_);
  for (size_t i = total_frames_; i > 0; --i) {
    free_list_.push_back(static_cast<uint32_t>(i - 1));
  }
  {
    util::MutexLock lock(io_mutex_);
    io_stop_ = false;
    max_queue_depth_ = 0;
  }
  const size_t workers =
      EnvSizeOr("ANGELPTM_SSD_IO_WORKERS", options.io_workers);
  io_threads_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    io_threads_.emplace_back([this] { WorkerLoop(); });
  }
  return util::Status::OK();
}

void SsdTier::Close() {
  if (!io_threads_.empty()) {
    {
      util::MutexLock lock(io_mutex_);
      io_stop_ = true;
    }
    io_work_cv_.NotifyAll();
    io_space_cv_.NotifyAll();
    for (auto& thread : io_threads_) thread.join();
    io_threads_.clear();
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    if (delete_on_close_) ::unlink(path_.c_str());
  }
}

util::Result<uint64_t> SsdTier::AcquireFrame() {
  util::MutexLock lock(mutex_);
  if (free_list_.empty()) {
    return util::Status::ResourceExhausted("ssd tier full (" +
                                           std::to_string(total_frames_) +
                                           " frames)");
  }
  const uint32_t index = free_list_.back();
  free_list_.pop_back();
  return uint64_t{index} * frame_bytes_;
}

size_t SsdTier::free_frames() const {
  util::MutexLock lock(mutex_);
  return free_list_.size();
}

void SsdTier::ReleaseFrame(uint64_t offset) {
  ANGEL_CHECK(offset % frame_bytes_ == 0) << "misaligned ssd frame offset";
  const uint64_t index = offset / frame_bytes_;
  ANGEL_CHECK(index < total_frames_) << "ssd frame offset out of range";
  util::MutexLock lock(mutex_);
  free_list_.push_back(static_cast<uint32_t>(index));
}

template <typename Attempt>
util::Status SsdTier::WithRetries(const char* site, Attempt&& attempt) {
  const int max_attempts = std::max(1, retry_.max_attempts);
  int backoff_us = retry_.base_backoff_us;
  util::Status status;
  for (int try_no = 1; try_no <= max_attempts; ++try_no) {
    status = attempt();
    // Only IoError is plausibly transient; argument/precondition errors
    // would fail identically on every attempt.
    if (status.ok() || !status.IsIoError()) return status;
    if (try_no == max_attempts) break;
    io_retries_.fetch_add(1, std::memory_order_relaxed);
    metric_io_retries_->Increment();
    ANGEL_LOG(Warning) << site << " attempt " << try_no << "/" << max_attempts
                       << " failed (" << status.ToString() << "), retrying in "
                       << backoff_us << "us";
    if (backoff_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
    }
    backoff_us = static_cast<int>(
        std::min<double>(retry_.max_backoff_us,
                         backoff_us * std::max(1.0, retry_.multiplier)));
  }
  return status;
}

util::Status SsdTier::ValidateIo(size_t bytes) const {
  if (!is_open()) return util::Status::FailedPrecondition("SsdTier closed");
  if (bytes > frame_bytes_) {
    return util::Status::InvalidArgument("transfer exceeds frame size");
  }
  return util::Status::OK();
}

util::Status SsdTier::ExecuteBatchOnce(const std::vector<IoRequest>& batch) {
  // Emulated device command latency, charged per syscall attempt: one
  // coalesced batch pays it once, N individual requests pay it N times.
  if (io_op_latency_us_ > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(io_op_latency_us_));
  }
  const bool is_write = batch.front().is_write;
  if (is_write) {
    ANGEL_FAULT_CHECK("ssd.pwrite");
  } else {
    ANGEL_FAULT_CHECK("ssd.pread");
  }
  std::vector<iovec> iov;
  iov.reserve(batch.size());
  size_t total = 0;
  for (const IoRequest& request : batch) {
    iov.push_back(iovec{request.buf, request.bytes});
    total += request.bytes;
  }
  const uint64_t base = batch.front().offset;
  size_t done = 0;
  size_t skip = 0;  // Fully transferred iovecs after a partial syscall.
  while (done < total) {
    const ssize_t n =
        is_write ? ::pwritev(fd_, iov.data() + skip,
                             static_cast<int>(iov.size() - skip),
                             static_cast<off_t>(base + done))
                 : ::preadv(fd_, iov.data() + skip,
                            static_cast<int>(iov.size() - skip),
                            static_cast<off_t>(base + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return util::Status::IoError(
          std::string(is_write ? "pwritev" : "preadv") + " at offset " +
          std::to_string(base + done) + ": " + std::strerror(errno));
    }
    if (n == 0) {
      // A short read mid-range means the backing file is truncated; say
      // exactly where and how much was missing so recovery logs are
      // actionable.
      return util::Status::IoError(
          "preadv: unexpected EOF at offset " + std::to_string(base + done) +
          " (requested " + std::to_string(total) + " bytes from offset " +
          std::to_string(base) + ", received " + std::to_string(done) + ")");
    }
    done += static_cast<size_t>(n);
    // Advance past iovecs the partial transfer fully covered, trimming the
    // first partially-covered one so the retry resumes mid-buffer.
    size_t advanced = static_cast<size_t>(n);
    while (advanced > 0 && skip < iov.size()) {
      if (advanced >= iov[skip].iov_len) {
        advanced -= iov[skip].iov_len;
        ++skip;
      } else {
        iov[skip].iov_base = static_cast<std::byte*>(iov[skip].iov_base) +
                             advanced;
        iov[skip].iov_len -= advanced;
        advanced = 0;
      }
    }
  }
  return util::Status::OK();
}

void SsdTier::RunBatch(std::vector<IoRequest>& batch) {
  const bool is_write = batch.front().is_write;
  ANGEL_SPAN("ssd", is_write ? "pwritev" : "preadv");
  const uint64_t start_us = NowUs();
  util::Status status = WithRetries(is_write ? "ssd.pwrite" : "ssd.pread",
                                    [&] { return ExecuteBatchOnce(batch); });
  if (status.ok()) {
    size_t total = 0;
    for (const IoRequest& request : batch) total += request.bytes;
    if (is_write) {
      metric_pwrite_us_->Record(NowUs() - start_us);
      bytes_written_.fetch_add(total, std::memory_order_relaxed);
      metric_bytes_written_->Increment(total);
    } else {
      metric_pread_us_->Record(NowUs() - start_us);
      bytes_read_.fetch_add(total, std::memory_order_relaxed);
      metric_bytes_read_->Increment(total);
    }
    throttle_.Consume(total);
  }
  // A failed batch fails every request it coalesced with the same status;
  // each caller's retry-or-propagate decision already happened here (the
  // retry policy ran per batch attempt), so the error is terminal.
  for (IoRequest& request : batch) {
    request.done->set_value(status);
  }
}

std::vector<SsdTier::IoRequest> SsdTier::NextBatchLocked() {
  std::vector<IoRequest> batch;
  batch.push_back(std::move(io_queue_.front()));
  io_queue_.pop_front();
  // Single forward pass: chain queued requests whose byte range starts
  // exactly where the batch currently ends and that perform the same
  // operation. Later out-of-order arrivals stay queued for the next batch.
  uint64_t tail = batch.front().offset + batch.front().bytes;
  for (auto it = io_queue_.begin();
       it != io_queue_.end() && batch.size() < io_max_coalesce_;) {
    if (it->is_write == batch.front().is_write && it->offset == tail) {
      tail += it->bytes;
      batch.push_back(std::move(*it));
      it = io_queue_.erase(it);
    } else {
      ++it;
    }
  }
  return batch;
}

void SsdTier::WorkerLoop() {
  for (;;) {
    std::vector<IoRequest> batch;
    {
      util::MutexLock lock(io_mutex_);
      while (io_queue_.empty() && !io_stop_) io_work_cv_.Wait(io_mutex_);
      // Drain the queue fully before honoring stop, so Close() never
      // abandons an accepted request.
      if (io_queue_.empty()) return;
      batch = NextBatchLocked();
    }
    io_space_cv_.NotifyAll();
    io_batches_.fetch_add(1, std::memory_order_relaxed);
    metric_batch_frames_->Record(batch.size());
    RunBatch(batch);
  }
}

std::future<util::Status> SsdTier::Submit(IoRequest request) {
  std::future<util::Status> future = request.done->get_future();
  if (io_threads_.empty()) {
    // Synchronous legacy backend: execute inline, one syscall per request.
    std::vector<IoRequest> batch;
    batch.push_back(std::move(request));
    RunBatch(batch);
    return future;
  }
  {
    util::MutexLock lock(io_mutex_);
    while (io_queue_.size() >= io_queue_depth_ && !io_stop_) {
      io_space_cv_.Wait(io_mutex_);
    }
    if (io_stop_) {
      request.done->set_value(
          util::Status::Cancelled("SsdTier closing; request rejected"));
      return future;
    }
    io_queue_.push_back(std::move(request));
    const size_t depth = io_queue_.size();
    max_queue_depth_ = std::max(max_queue_depth_, depth);
    metric_queue_depth_->Record(depth);
  }
  queued_requests_.fetch_add(1, std::memory_order_relaxed);
  metric_queued_requests_->Increment();
  io_work_cv_.NotifyOne();
  return future;
}

std::future<util::Status> SsdTier::WriteFrameAsync(uint64_t offset,
                                                   const std::byte* src,
                                                   size_t bytes) {
  IoRequest request;
  request.is_write = true;
  request.offset = offset;
  // Writes never mutate through this pointer; IoRequest is shared with the
  // read path whose buffers are genuinely written to.
  request.buf = const_cast<std::byte*>(src);
  request.bytes = bytes;
  request.done = std::make_shared<std::promise<util::Status>>();
  if (util::Status validation = ValidateIo(bytes); !validation.ok()) {
    request.done->set_value(std::move(validation));
    return request.done->get_future();
  }
  return Submit(std::move(request));
}

std::future<util::Status> SsdTier::ReadFrameAsync(uint64_t offset,
                                                  std::byte* dst,
                                                  size_t bytes) {
  IoRequest request;
  request.is_write = false;
  request.offset = offset;
  request.buf = dst;
  request.bytes = bytes;
  request.done = std::make_shared<std::promise<util::Status>>();
  if (util::Status validation = ValidateIo(bytes); !validation.ok()) {
    request.done->set_value(std::move(validation));
    return request.done->get_future();
  }
  return Submit(std::move(request));
}

util::Status SsdTier::WriteFrame(uint64_t offset, const std::byte* src,
                                 size_t bytes) {
  return WriteFrameAsync(offset, src, bytes).get();
}

util::Status SsdTier::ReadFrame(uint64_t offset, std::byte* dst,
                                size_t bytes) {
  return ReadFrameAsync(offset, dst, bytes).get();
}

SsdTier::Stats SsdTier::Snapshot() const {
  Stats stats;
  stats.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  stats.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  stats.io_retries = io_retries_.load(std::memory_order_relaxed);
  stats.queued_requests = queued_requests_.load(std::memory_order_relaxed);
  stats.io_batches = io_batches_.load(std::memory_order_relaxed);
  {
    util::MutexLock lock(io_mutex_);
    stats.max_queue_depth = max_queue_depth_;
  }
  stats.total_frames = total_frames_;
  stats.free_frames = free_frames();
  return stats;
}

}  // namespace angelptm::mem
