#include "mem/ssd_tier.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <limits>
#include <thread>

#include "obs/trace.h"
#include "util/fault_injector.h"
#include "util/logging.h"

namespace angelptm::mem {
namespace {

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

SsdTier::~SsdTier() { Close(); }

util::Status SsdTier::Open(const Options& options) {
  if (is_open()) {
    return util::Status::FailedPrecondition("SsdTier already open");
  }
  if (options.frame_bytes == 0) {
    return util::Status::InvalidArgument("frame_bytes must be positive");
  }
  if (options.capacity_bytes < options.frame_bytes) {
    return util::Status::InvalidArgument(
        "ssd capacity (" + std::to_string(options.capacity_bytes) +
        " bytes) smaller than one frame (" +
        std::to_string(options.frame_bytes) + " bytes)");
  }
  const uint64_t frames = options.capacity_bytes / options.frame_bytes;
  // Frame indices are stored as uint32_t in the free list; a silently
  // truncated index would alias two different frames' offsets.
  if (frames > std::numeric_limits<uint32_t>::max()) {
    return util::Status::InvalidArgument(
        "ssd capacity of " + std::to_string(frames) +
        " frames exceeds the 2^32-1 frame-index limit; use larger frames");
  }
  const int fd =
      ::open(options.path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return util::Status::IoError("open(" + options.path +
                                 "): " + std::strerror(errno));
  }
  frame_bytes_ = options.frame_bytes;
  total_frames_ = static_cast<size_t>(frames);
  if (::ftruncate(fd, static_cast<off_t>(uint64_t{total_frames_} *
                                         frame_bytes_)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return util::Status::IoError("ftruncate: " + err);
  }
  fd_ = fd;
  path_ = options.path;
  throttle_.set_rate(options.throttle_bytes_per_sec);
  delete_on_close_ = options.delete_on_close;
  retry_ = options.retry;
  obs::Registry& registry = obs::Registry::Instance();
  metric_bytes_read_ = registry.GetCounter("ssd/bytes_read");
  metric_bytes_written_ = registry.GetCounter("ssd/bytes_written");
  metric_io_retries_ = registry.GetCounter("ssd/io_retries");
  metric_pread_us_ = registry.GetHistogram("ssd/pread_us");
  metric_pwrite_us_ = registry.GetHistogram("ssd/pwrite_us");
  free_list_.clear();
  free_list_.reserve(total_frames_);
  for (size_t i = total_frames_; i > 0; --i) {
    free_list_.push_back(static_cast<uint32_t>(i - 1));
  }
  return util::Status::OK();
}

void SsdTier::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    if (delete_on_close_) ::unlink(path_.c_str());
  }
}

util::Result<uint64_t> SsdTier::AcquireFrame() {
  util::MutexLock lock(mutex_);
  if (free_list_.empty()) {
    return util::Status::ResourceExhausted("ssd tier full (" +
                                           std::to_string(total_frames_) +
                                           " frames)");
  }
  const uint32_t index = free_list_.back();
  free_list_.pop_back();
  return uint64_t{index} * frame_bytes_;
}

size_t SsdTier::free_frames() const {
  util::MutexLock lock(mutex_);
  return free_list_.size();
}

void SsdTier::ReleaseFrame(uint64_t offset) {
  ANGEL_CHECK(offset % frame_bytes_ == 0) << "misaligned ssd frame offset";
  const uint64_t index = offset / frame_bytes_;
  ANGEL_CHECK(index < total_frames_) << "ssd frame offset out of range";
  util::MutexLock lock(mutex_);
  free_list_.push_back(static_cast<uint32_t>(index));
}

template <typename Attempt>
util::Status SsdTier::WithRetries(const char* site, Attempt&& attempt) {
  const int max_attempts = std::max(1, retry_.max_attempts);
  int backoff_us = retry_.base_backoff_us;
  util::Status status;
  for (int try_no = 1; try_no <= max_attempts; ++try_no) {
    status = attempt();
    // Only IoError is plausibly transient; argument/precondition errors
    // would fail identically on every attempt.
    if (status.ok() || !status.IsIoError()) return status;
    if (try_no == max_attempts) break;
    io_retries_.fetch_add(1, std::memory_order_relaxed);
    metric_io_retries_->Increment();
    ANGEL_LOG(Warning) << site << " attempt " << try_no << "/" << max_attempts
                       << " failed (" << status.ToString() << "), retrying in "
                       << backoff_us << "us";
    if (backoff_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
    }
    backoff_us = static_cast<int>(
        std::min<double>(retry_.max_backoff_us,
                         backoff_us * std::max(1.0, retry_.multiplier)));
  }
  return status;
}

util::Status SsdTier::WriteFrameOnce(uint64_t offset, const std::byte* src,
                                     size_t bytes) {
  ANGEL_FAULT_CHECK("ssd.pwrite");
  size_t done = 0;
  while (done < bytes) {
    const ssize_t n = ::pwrite(fd_, src + done, bytes - done,
                               static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return util::Status::IoError(std::string("pwrite: ") +
                                   std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return util::Status::OK();
}

util::Status SsdTier::WriteFrame(uint64_t offset, const std::byte* src,
                                 size_t bytes) {
  if (!is_open()) return util::Status::FailedPrecondition("SsdTier closed");
  if (bytes > frame_bytes_) {
    return util::Status::InvalidArgument("write exceeds frame size");
  }
  ANGEL_SPAN("ssd", "pwrite");
  const uint64_t start_us = NowUs();
  ANGEL_RETURN_IF_ERROR(WithRetries(
      "ssd.pwrite", [&] { return WriteFrameOnce(offset, src, bytes); }));
  metric_pwrite_us_->Record(NowUs() - start_us);
  bytes_written_.fetch_add(bytes, std::memory_order_relaxed);
  metric_bytes_written_->Increment(bytes);
  throttle_.Consume(bytes);
  return util::Status::OK();
}

util::Status SsdTier::ReadFrameOnce(uint64_t offset, std::byte* dst,
                                    size_t bytes) {
  ANGEL_FAULT_CHECK("ssd.pread");
  size_t done = 0;
  while (done < bytes) {
    const ssize_t n = ::pread(fd_, dst + done, bytes - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return util::Status::IoError(std::string("pread: ") +
                                   std::strerror(errno));
    }
    if (n == 0) {
      return util::Status::IoError("pread: unexpected EOF");
    }
    done += static_cast<size_t>(n);
  }
  return util::Status::OK();
}

util::Status SsdTier::ReadFrame(uint64_t offset, std::byte* dst,
                                size_t bytes) {
  if (!is_open()) return util::Status::FailedPrecondition("SsdTier closed");
  if (bytes > frame_bytes_) {
    return util::Status::InvalidArgument("read exceeds frame size");
  }
  ANGEL_SPAN("ssd", "pread");
  const uint64_t start_us = NowUs();
  ANGEL_RETURN_IF_ERROR(WithRetries(
      "ssd.pread", [&] { return ReadFrameOnce(offset, dst, bytes); }));
  metric_pread_us_->Record(NowUs() - start_us);
  bytes_read_.fetch_add(bytes, std::memory_order_relaxed);
  metric_bytes_read_->Increment(bytes);
  throttle_.Consume(bytes);
  return util::Status::OK();
}

SsdTier::Stats SsdTier::Snapshot() const {
  Stats stats;
  stats.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  stats.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  stats.io_retries = io_retries_.load(std::memory_order_relaxed);
  stats.total_frames = total_frames_;
  stats.free_frames = free_frames();
  return stats;
}

}  // namespace angelptm::mem
