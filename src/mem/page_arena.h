#ifndef ANGELPTM_MEM_PAGE_ARENA_H_
#define ANGELPTM_MEM_PAGE_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "mem/device.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace angelptm::mem {

/// A fixed-size frame allocator over one pre-allocated contiguous buffer.
///
/// §5 (Allocator): "we pre-allocate space from the hierarchical memory of the
/// system ... and divide the pre-allocated memory into pages of fixed size,
/// where each page can be allocated, released and moved independently."
/// Because all frames are the same size, external fragmentation is zero by
/// construction — the property the Page design buys over tensor-granular
/// allocators (DeepSpeed/PyTorch caching allocator) and chunk allocators
/// (PatrickStar).
class PageArena {
 public:
  /// Creates an arena for `device` holding floor(capacity / frame_bytes)
  /// frames. The backing buffer is allocated eagerly (pre-allocation is part
  /// of the design being reproduced).
  PageArena(DeviceKind device, uint64_t capacity_bytes, size_t frame_bytes);

  PageArena(const PageArena&) = delete;
  PageArena& operator=(const PageArena&) = delete;

  /// Acquires one free frame. Returns ResourceExhausted when the tier is
  /// full; callers (the unified scheduler) react by deferring movements.
  [[nodiscard]] util::Result<std::byte*> AcquireFrame()
      ANGEL_EXCLUDES(mutex_);

  /// Acquires `count` physically adjacent frames (for Tensor::merge, which
  /// needs one contiguous range). Returns the base frame pointer, or
  /// ResourceExhausted when no run of `count` adjacent free frames exists.
  [[nodiscard]] util::Result<std::byte*> AcquireContiguousFrames(size_t count)
      ANGEL_EXCLUDES(mutex_);

  /// Returns a frame obtained from AcquireFrame(). Aborts on a pointer that
  /// does not belong to this arena (a programming error).
  void ReleaseFrame(std::byte* frame) ANGEL_EXCLUDES(mutex_);

  DeviceKind device() const { return device_; }
  size_t frame_bytes() const { return frame_bytes_; }
  size_t total_frames() const { return total_frames_; }
  size_t free_frames() const ANGEL_EXCLUDES(mutex_);
  size_t used_frames() const { return total_frames_ - free_frames(); }
  uint64_t capacity_bytes() const {
    return uint64_t{total_frames_} * frame_bytes_;
  }
  uint64_t used_bytes() const { return uint64_t{used_frames()} * frame_bytes_; }

  /// High-water mark of simultaneously used frames.
  size_t peak_used_frames() const ANGEL_EXCLUDES(mutex_);

  bool Owns(const std::byte* ptr) const;

 private:
  DeviceKind device_;
  size_t frame_bytes_;
  size_t total_frames_;
  std::unique_ptr<std::byte[]> buffer_;

  mutable util::Mutex mutex_{"arena.state", util::lockrank::kArenaState};
  std::vector<uint32_t> free_list_ ANGEL_GUARDED_BY(mutex_);
  size_t peak_used_ ANGEL_GUARDED_BY(mutex_) = 0;
};

}  // namespace angelptm::mem

#endif  // ANGELPTM_MEM_PAGE_ARENA_H_
