#include "dist/shard_checkpoint.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "util/fault_injector.h"
#include "util/logging.h"

namespace angelptm::dist {

namespace fs = std::filesystem;

namespace {

constexpr uint64_t kMagic = 0x4452485344545041ull;  // "APTMSHRD" LE.
constexpr uint32_t kVersion = 1;
/// Corrupt-file caps: a damaged count field must not drive a huge
/// allocation before the checksum gets a chance to reject the file.
constexpr uint32_t kMaxLayers = 1u << 20;
constexpr uint32_t kMaxSlots = 64;

uint64_t Fnv1a(const std::byte* data, size_t size, uint64_t seed) {
  uint64_t hash = seed;
  for (size_t i = 0; i < size; ++i) {
    hash ^= uint64_t(data[i]);
    hash *= 0x100000001b3ull;
  }
  return hash;
}
constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;

void Append(std::vector<std::byte>* out, const void* data, size_t bytes) {
  const size_t offset = out->size();
  out->resize(offset + bytes);
  std::memcpy(out->data() + offset, data, bytes);
}
template <typename T>
void AppendValue(std::vector<std::byte>* out, T value) {
  Append(out, &value, sizeof(value));
}

class Reader {
 public:
  Reader(const std::byte* data, size_t size) : data_(data), size_(size) {}

  [[nodiscard]] util::Status Read(void* out, size_t bytes) {
    if (offset_ + bytes > size_) {
      return util::Status::IoError("shard checkpoint truncated at offset " +
                                   std::to_string(offset_));
    }
    std::memcpy(out, data_ + offset_, bytes);
    offset_ += bytes;
    return util::Status::OK();
  }
  template <typename T>
  [[nodiscard]] util::Status ReadValue(T* out) {
    return Read(out, sizeof(T));
  }
  size_t offset() const { return offset_; }

 private:
  const std::byte* data_;
  size_t size_;
  size_t offset_ = 0;
};

std::string ShardFileName(int rank, int step) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "shard-r%05d-s%09d.ckpt", rank, step);
  return buf;
}

/// Parses "shard-r<rank>-s<step>.ckpt"; returns step or -1. Anchored at
/// both ends: in-flight "….ckpt.tmp" files (a crashed writer's litter)
/// must never count as checkpoints.
int ParseShardFile(const std::string& name, int rank) {
  int file_rank = -1, step = -1;
  if (std::sscanf(name.c_str(), "shard-r%5d-s%9d.ckpt", &file_rank,
                  &step) != 2 ||
      name != ShardFileName(file_rank, step)) {
    return -1;
  }
  return file_rank == rank ? step : -1;
}

}  // namespace

util::Status SaveShardState(const std::string& dir, const ShardState& state,
                            int keep_last) {
  if (state.step <= 0) {
    return util::Status::InvalidArgument("shard checkpoint step must be > 0");
  }
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return util::Status::IoError("cannot create checkpoint dir " + dir +
                                 ": " + ec.message());
  }

  std::vector<std::byte> blob;
  AppendValue(&blob, kMagic);
  AppendValue(&blob, kVersion);
  AppendValue(&blob, uint32_t(state.rank));
  AppendValue(&blob, uint32_t(state.world_size));
  AppendValue(&blob, uint32_t(state.step));
  AppendValue(&blob, uint32_t(state.layers.size()));
  for (const ShardLayerState& layer : state.layers) {
    AppendValue(&blob, uint64_t(layer.p32.size()));
    Append(&blob, layer.p32.data(), layer.p32.size() * sizeof(float));
    AppendValue(&blob, uint32_t(layer.slots.size()));
    for (const std::vector<float>& slot : layer.slots) {
      AppendValue(&blob, uint64_t(slot.size()));
      Append(&blob, slot.data(), slot.size() * sizeof(float));
    }
  }
  AppendValue(&blob, Fnv1a(blob.data(), blob.size(), kFnvOffset));

  const fs::path path = fs::path(dir) / ShardFileName(state.rank, state.step);
  const fs::path tmp = path.string() + ".tmp";
  ANGEL_FAULT_CHECK("shard_ckpt.write");
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    return util::Status::IoError("cannot open " + tmp.string());
  }
  bool ok = std::fwrite(blob.data(), 1, blob.size(), file) == blob.size();
  if (ok && std::fflush(file) != 0) ok = false;
  if (ok && ::fsync(::fileno(file)) != 0) ok = false;
  if (std::fclose(file) != 0) ok = false;
  if (!ok) {
    std::remove(tmp.c_str());
    return util::Status::IoError("failed writing " + tmp.string());
  }
  ANGEL_FAULT_CHECK("shard_ckpt.rename");
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return util::Status::IoError("failed renaming " + tmp.string());
  }

  if (keep_last >= 1) {
    // Rotation only after a successful save, and only this rank's files.
    std::vector<int> steps;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
      const int step = ParseShardFile(entry.path().filename().string(),
                                      state.rank);
      if (step > 0) steps.push_back(step);
    }
    std::sort(steps.begin(), steps.end());
    while (int(steps.size()) > keep_last) {
      const fs::path old =
          fs::path(dir) / ShardFileName(state.rank, steps.front());
      if (std::remove(old.c_str()) != 0) {
        ANGEL_LOG(Warning) << "shard checkpoint rotation failed to delete "
                           << old.string();
      }
      steps.erase(steps.begin());
    }
  }
  return util::Status::OK();
}

util::Result<int> LatestShardStep(const std::string& dir, int rank) {
  std::error_code ec;
  int latest = 0;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    latest = std::max(
        latest, ParseShardFile(entry.path().filename().string(), rank));
  }
  // A missing directory is simply "no checkpoint yet".
  return std::max(latest, 0);
}

util::Result<ShardState> LoadShardState(const std::string& dir, int rank,
                                        int step) {
  const fs::path path = fs::path(dir) / ShardFileName(rank, step);
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return util::Status::NotFound("no shard checkpoint at " + path.string());
  }
  std::fseek(file, 0, SEEK_END);
  const long size = std::ftell(file);
  std::fseek(file, 0, SEEK_SET);
  std::vector<std::byte> blob(size > 0 ? size_t(size) : 0);
  const bool read_ok =
      std::fread(blob.data(), 1, blob.size(), file) == blob.size();
  std::fclose(file);
  if (!read_ok || blob.size() < sizeof(uint64_t)) {
    return util::Status::IoError("cannot read " + path.string());
  }

  uint64_t stored_sum;
  std::memcpy(&stored_sum, blob.data() + blob.size() - sizeof(uint64_t),
              sizeof(uint64_t));
  const size_t body = blob.size() - sizeof(uint64_t);
  if (Fnv1a(blob.data(), body, kFnvOffset) != stored_sum) {
    return util::Status::IoError("shard checkpoint checksum mismatch: " +
                                 path.string());
  }

  Reader reader(blob.data(), body);
  uint64_t magic;
  uint32_t version, file_rank, world, file_step, num_layers;
  ANGEL_RETURN_IF_ERROR(reader.ReadValue(&magic));
  if (magic != kMagic) {
    return util::Status::InvalidArgument("not a shard checkpoint: " +
                                         path.string());
  }
  ANGEL_RETURN_IF_ERROR(reader.ReadValue(&version));
  if (version != kVersion) {
    return util::Status::InvalidArgument(
        "unsupported shard checkpoint version " + std::to_string(version));
  }
  ANGEL_RETURN_IF_ERROR(reader.ReadValue(&file_rank));
  ANGEL_RETURN_IF_ERROR(reader.ReadValue(&world));
  ANGEL_RETURN_IF_ERROR(reader.ReadValue(&file_step));
  ANGEL_RETURN_IF_ERROR(reader.ReadValue(&num_layers));
  if (int(file_rank) != rank || int(file_step) != step) {
    return util::Status::InvalidArgument(
        "shard checkpoint header disagrees with its file name: " +
        path.string());
  }
  if (num_layers > kMaxLayers) {
    return util::Status::InvalidArgument("implausible layer count in " +
                                         path.string());
  }

  ShardState state;
  state.rank = int(file_rank);
  state.world_size = int(world);
  state.step = int(file_step);
  state.layers.resize(num_layers);
  for (ShardLayerState& layer : state.layers) {
    uint64_t count;
    ANGEL_RETURN_IF_ERROR(reader.ReadValue(&count));
    if (count * sizeof(float) > body) {
      return util::Status::IoError("implausible shard size in " +
                                   path.string());
    }
    layer.p32.resize(count);
    ANGEL_RETURN_IF_ERROR(
        reader.Read(layer.p32.data(), count * sizeof(float)));
    uint32_t num_slots;
    ANGEL_RETURN_IF_ERROR(reader.ReadValue(&num_slots));
    if (num_slots > kMaxSlots) {
      return util::Status::InvalidArgument("implausible slot count in " +
                                           path.string());
    }
    layer.slots.resize(num_slots);
    for (std::vector<float>& slot : layer.slots) {
      uint64_t slot_count;
      ANGEL_RETURN_IF_ERROR(reader.ReadValue(&slot_count));
      if (slot_count * sizeof(float) > body) {
        return util::Status::IoError("implausible slot size in " +
                                     path.string());
      }
      slot.resize(slot_count);
      ANGEL_RETURN_IF_ERROR(
          reader.Read(slot.data(), slot_count * sizeof(float)));
    }
  }
  if (reader.offset() != body) {
    return util::Status::IoError("shard checkpoint has trailing bytes: " +
                                 path.string());
  }
  return state;
}

}  // namespace angelptm::dist
