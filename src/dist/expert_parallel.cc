#include "dist/expert_parallel.h"

#include <algorithm>

#include "core/unified_scheduler.h"
#include "model/footprint.h"
#include "sim/cost_model.h"
#include "util/units.h"

namespace angelptm::dist {

uint64_t ExpertParallelModelParams(const ExpertParallelRequest& request) {
  model::TransformerConfig scaled = request.model;
  scaled.num_experts = request.experts_per_gpu * request.num_gpus;
  return model::TotalParamCount(scaled);
}

util::Result<sim::Plan> PlanExpertParallel(
    const ExpertParallelRequest& request) {
  if (request.model.family != model::ModelFamily::kT5Moe) {
    return util::Status::InvalidArgument(
        "expert parallelism requires a T5-MoE model");
  }
  const auto& hw = request.hw;
  const int num_gpus = request.num_gpus;
  const int gpus_per_node = std::min(num_gpus, hw.gpus_per_node);
  const int L = request.model.num_layers;
  const uint64_t dm = request.model.d_model, dffn = request.model.d_ffn;

  model::TransformerConfig scaled = request.model;
  scaled.num_experts = request.experts_per_gpu * num_gpus;

  // Local (per-GPU) parameter elements of one layer: the replicated
  // attention block plus this GPU's experts.
  const uint64_t local_layer_params =
      4 * dm * dm +
      uint64_t(request.experts_per_gpu) * 2 * dm * dffn + 4 * dm;

  model::TrainingConfig training;
  training.micro_batch = request.micro_batch;
  const sim::CostModel cost(hw, scaled, training);

  // Local fp16 parameter pages for the scheduler (world_size = 1: experts
  // are not gathered — tokens travel to them instead).
  core::ScheduleInput input;
  input.world_size = 1;
  input.gpu_memory_budget = hw.GpuUsableBytes();
  const uint64_t shard_fp16_layer = 2 * local_layer_params;
  const uint64_t page_bytes =
      std::max<uint64_t>(4 * util::kMiB,
                         util::RoundUp((shard_fp16_layer + 7) / 8,
                                       util::kMiB));
  const size_t pages_per_layer =
      std::max<size_t>(1, (shard_fp16_layer + page_bytes - 1) / page_bytes);

  const uint64_t b = request.micro_batch, s = request.model.seq_len;
  // Activations of attention + the locally-routed tokens' expert FFN.
  const uint64_t layer_acts = 2 * (40 * b * s * dm + 8 * b * s * dffn);
  const uint64_t boundary_act = 2 * b * s * dm;

  uint64_t next_page = 0;
  std::vector<std::vector<core::PageRef>> layer_pages(L);
  for (int l = 0; l < L; ++l) {
    uint64_t remaining = shard_fp16_layer;
    for (size_t p = 0; p < pages_per_layer; ++p) {
      const uint64_t bytes =
          std::max<uint64_t>(1, std::min<uint64_t>(remaining, page_bytes));
      layer_pages[l].push_back({next_page++, bytes});
      remaining -= std::min<uint64_t>(remaining, page_bytes);
    }
  }
  for (int pass = 0; pass < 2; ++pass) {
    const bool backward = pass == 1;
    for (int i = 0; i < L; ++i) {
      const int l = backward ? L - 1 - i : i;
      core::SchedStep step;
      step.param_pages = layer_pages[l];
      step.workspace_bytes = backward ? layer_acts : layer_acts / 2;
      step.retained_bytes =
          backward ? -int64_t(boundary_act) : int64_t(boundary_act);
      step.compute_seconds =
          backward ? cost.LayerBackwardSeconds(request.micro_batch)
                   : cost.LayerForwardSeconds(request.micro_batch);
      input.steps.push_back(step);
    }
  }

  // Find the minimum budget the schedule needs and dedicate the slack to
  // caching fp32 expert states on the GPU (the same dynamic caching the
  // dense planner applies).
  ANGEL_RETURN_IF_ERROR(core::BuildSchedule(input).status());
  uint64_t lo = 0, hi = input.gpu_memory_budget;
  while (hi - lo > 256 * util::kMiB) {
    const uint64_t mid = lo + (hi - lo) / 2;
    core::ScheduleInput probe = input;
    probe.gpu_memory_budget = mid;
    (core::BuildSchedule(probe).ok() ? hi : lo) = mid;
  }
  const uint64_t local_params_total = uint64_t(L) * local_layer_params;
  const uint64_t optim_local_bytes = 12 * local_params_total;
  const uint64_t cache_bytes = std::min<uint64_t>(
      input.gpu_memory_budget - hi, optim_local_bytes);
  input.gpu_memory_budget = hw.GpuUsableBytes() - cache_bytes;
  ANGEL_ASSIGN_OR_RETURN(core::Schedule schedule, core::BuildSchedule(input));
  const double cached_fraction =
      optim_local_bytes == 0 ? 0.0
                             : double(cache_bytes) / double(optim_local_bytes);

  uint64_t prefetched_fp16_bytes = 0;
  for (const core::Task& task : schedule.tasks) {
    if (task.op == core::TaskOp::kMoveToGpu) {
      prefetched_fp16_bytes += task.bytes;
    }
  }

  // Capacity: expert optimizer states per node, net of GPU-resident bytes.
  const uint64_t params_per_node = local_params_total * gpus_per_node;
  const uint64_t gpu_state_node =
      (cache_bytes + prefetched_fp16_bytes) * gpus_per_node;
  uint64_t cpu_bytes_node, ssd_bytes_node = 0;
  if (request.use_ssd) {
    ssd_bytes_node = 12 * params_per_node;
    // CPU stages only the lock-free fp16 buffers of a few in-flight layers.
    cpu_bytes_node = 4 * shard_fp16_layer * gpus_per_node;
    if (ssd_bytes_node > hw.ssd_capacity_bytes) {
      return util::Status::OutOfMemory("expert states exceed SSD capacity");
    }
  } else {
    const uint64_t total_state_node = 16 * params_per_node;
    cpu_bytes_node =
        total_state_node - std::min(total_state_node, gpu_state_node);
  }
  if (cpu_bytes_node > hw.cpu_usable_bytes) {
    return util::Status::OutOfMemory(
        "expert states need " + util::FormatBytes(cpu_bytes_node) +
        " of CPU, have " + util::FormatBytes(hw.cpu_usable_bytes));
  }

  sim::Plan plan;
  plan.spec.sched = std::move(input);
  plan.spec.tasks = std::move(schedule.tasks);
  plan.peak_gpu_bytes = schedule.peak_gpu_bytes + cache_bytes;
  plan.gpu_cache_bytes = cache_bytes;
  plan.gpu_cached_fraction = cached_fraction;
  plan.cpu_bytes_per_node = cpu_bytes_node;
  plan.ssd_bytes_per_node = ssd_bytes_node;

  // Two all-to-alls per layer traversal (dispatch + combine) of the layer's
  // token activations.
  const uint64_t a2a_bytes = 2 * b * s * dm;  // fp16 tokens.
  plan.spec.extra_comm_seconds_per_step =
      2.0 * cost.AllToAllSeconds(a2a_bytes, num_gpus);

  // Per-layer optimizer pipeline: GPU-cached states update in place, the
  // rest on the CPU (and through the SSD when enabled).
  for (int l = 0; l < L; ++l) {
    sim::OptimizerWork work;
    work.after_step = 2 * L - 1 - l;
    work.gpu_update_elements =
        uint64_t(cached_fraction * double(local_layer_params));
    const uint64_t cpu_elements =
        local_layer_params - work.gpu_update_elements;
    work.cpu_update_elements = cpu_elements * gpus_per_node;
    work.grad_offload_bytes = 2 * cpu_elements;
    if (request.use_ssd) {
      const double miss = request.ssd_state_fraction;
      work.ssd_read_bytes =
          uint64_t(miss * 12.0 * double(work.cpu_update_elements));
      work.ssd_write_bytes = work.ssd_read_bytes;
    }
    plan.spec.opt_work.push_back(work);
  }

  plan.spec.pcie_bw = hw.pcie_bw_per_gpu;
  plan.spec.collective_bw_per_rank = hw.CollectiveBwPerRank(num_gpus);
  plan.spec.cpu_optimizer_bw = hw.cpu_optimizer_bw_per_node;
  plan.spec.gpu_optimizer_bw = hw.gpu_hbm_bw;
  plan.spec.ssd_bw = hw.ssd_bw_per_node;
  plan.spec.lock_free = request.lock_free;
  plan.spec.grad_accumulation = request.grad_accumulation;
  return plan;
}

}  // namespace angelptm::dist
