#ifndef ANGELPTM_DIST_COLLECTIVES_H_
#define ANGELPTM_DIST_COLLECTIVES_H_

#include <memory>

#include "core/communicator.h"
#include "dist/process_group.h"
#include "util/status.h"

namespace angelptm::dist {

/// One rank's handle on the collective fabric — the seam that lets
/// ShardedDataParallel run the *same* rank loop over either backend:
///
///   * InProcessCollectives — world_size rank threads sharing one
///     core::Communicator (the simulated cluster; every existing test).
///   * ProcessGroupCollectives — one rank of a real multi-process job,
///     collectives over Unix-domain sockets (dist::ProcessGroup).
///
/// Both backends perform reductions in ascending rank order with double
/// accumulation, so the two are bitwise-interchangeable on pinned compute.
class Collectives {
 public:
  virtual ~Collectives() = default;

  virtual int rank() const = 0;
  virtual int world_size() const = 0;

  [[nodiscard]] virtual util::Status AllGather(const float* send,
                                               size_t count,
                                               float* recv) = 0;
  [[nodiscard]] virtual util::Status ReduceScatter(const float* send,
                                                   size_t total_count,
                                                   float* recv) = 0;
  [[nodiscard]] virtual util::Status AllReduce(float* data,
                                               size_t count) = 0;
  [[nodiscard]] virtual util::Status Barrier() = 0;

  virtual uint64_t collectives_completed() const = 0;
};

/// Rank-view adapter over a shared core::Communicator (which already
/// counts one collective per *group* operation).
class InProcessCollectives final : public Collectives {
 public:
  /// `communicator` is shared by all ranks and must outlive this object.
  InProcessCollectives(core::Communicator* communicator, int rank)
      : communicator_(communicator), rank_(rank) {}

  int rank() const override { return rank_; }
  int world_size() const override { return communicator_->world_size(); }

  [[nodiscard]] util::Status AllGather(const float* send, size_t count,
                                       float* recv) override {
    return communicator_->AllGather(rank_, send, count, recv);
  }
  [[nodiscard]] util::Status ReduceScatter(const float* send,
                                           size_t total_count,
                                           float* recv) override {
    return communicator_->ReduceScatter(rank_, send, total_count, recv);
  }
  [[nodiscard]] util::Status AllReduce(float* data, size_t count) override {
    return communicator_->AllReduce(rank_, data, count);
  }
  [[nodiscard]] util::Status Barrier() override {
    return communicator_->Barrier(rank_);
  }
  uint64_t collectives_completed() const override {
    return communicator_->collectives_completed();
  }

 private:
  core::Communicator* communicator_;
  int rank_;
};

/// Owning adapter over a connected dist::ProcessGroup.
class ProcessGroupCollectives final : public Collectives {
 public:
  explicit ProcessGroupCollectives(std::unique_ptr<ProcessGroup> group)
      : group_(std::move(group)) {}

  int rank() const override { return group_->rank(); }
  int world_size() const override { return group_->world_size(); }

  [[nodiscard]] util::Status AllGather(const float* send, size_t count,
                                       float* recv) override {
    return group_->AllGather(send, count, recv);
  }
  [[nodiscard]] util::Status ReduceScatter(const float* send,
                                           size_t total_count,
                                           float* recv) override {
    return group_->ReduceScatter(send, total_count, recv);
  }
  [[nodiscard]] util::Status AllReduce(float* data, size_t count) override {
    return group_->AllReduce(data, count);
  }
  [[nodiscard]] util::Status Barrier() override {
    return group_->Barrier();
  }
  uint64_t collectives_completed() const override {
    return group_->collectives_completed();
  }

  ProcessGroup* group() { return group_.get(); }

 private:
  std::unique_ptr<ProcessGroup> group_;
};

}  // namespace angelptm::dist

#endif  // ANGELPTM_DIST_COLLECTIVES_H_
