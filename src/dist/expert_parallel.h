#ifndef ANGELPTM_DIST_EXPERT_PARALLEL_H_
#define ANGELPTM_DIST_EXPERT_PARALLEL_H_

#include "model/transformer_config.h"
#include "sim/planner.h"
#include "util/status.h"

namespace angelptm::dist {

/// Expert-parallel plan request for MoE models (§6.4): "expert parameters
/// within an MoE layer are sharded among all GPUs while non-MoE parameters
/// are duplicated". The paper fixes experts-per-GPU-per-layer at 9, so the
/// model grows with the cluster (weak scaling, Figure 9).
struct ExpertParallelRequest {
  /// Base MoE config; num_experts is overridden to experts_per_gpu*num_gpus.
  model::TransformerConfig model;
  int experts_per_gpu = 9;
  int micro_batch = 8;
  sim::HardwareConfig hw;
  int num_gpus = 64;
  bool use_ssd = false;
  bool lock_free = false;
  /// Micro-batch passes per iteration (gradients accumulate; optimizer runs
  /// once).
  int grad_accumulation = 1;
  /// Fraction of fp32 expert states that miss the updating thread's CPU
  /// working set and must round-trip the SSD per update (§6.5). The paper's
  /// per-iteration SSD traffic is not derivable from its stated numbers;
  /// benches calibrate this hit rate (documented in EXPERIMENTS.md).
  double ssd_state_fraction = 1.0;
};

/// Plans one expert-parallel training iteration: local experts' fp16 weights
/// page onto the GPU via the unified scheduler (world_size=1: no parameter
/// all-gather), each layer pays a token all-to-all on the collective stream,
/// and the expert optimizer states update on CPU (or SSD with §6.5's
/// extreme-scale mode), pipelined per layer.
[[nodiscard]] util::Result<sim::Plan> PlanExpertParallel(
    const ExpertParallelRequest& request);

/// Total parameter count of the scaled model the request trains.
uint64_t ExpertParallelModelParams(const ExpertParallelRequest& request);

}  // namespace angelptm::dist

#endif  // ANGELPTM_DIST_EXPERT_PARALLEL_H_
