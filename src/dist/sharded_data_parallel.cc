#include "dist/sharded_data_parallel.h"

#include <algorithm>
#include <thread>

#include "dist/shard_checkpoint.h"
#include "train/kernels.h"
#include "util/logging.h"

namespace angelptm::dist {

ShardedDataParallel::ShardedDataParallel(core::Allocator* allocator,
                                         const train::LayeredModel* model,
                                         const ShardedDpOptions& options)
    : allocator_(allocator),
      model_(model),
      options_(options),
      rng_(options.seed) {}

ShardedDataParallel::~ShardedDataParallel() {
  for (auto& shard : shards_) {
    for (auto* tensors : {&shard.p32, &shard.replica}) {
      for (core::Tensor* tensor : *tensors) {
        if (tensor != nullptr) (void)allocator_->Release(tensor);
      }
    }
    for (auto& slot : shard.slots) {
      for (core::Tensor* tensor : slot) {
        if (tensor != nullptr) (void)allocator_->Release(tensor);
      }
    }
  }
}

std::vector<int> ShardedDataParallel::LocalRanks() const {
  if (options_.backend == DpBackend::kProcessGroup) {
    return {options_.rank};
  }
  std::vector<int> ranks(size_t(options_.world_size));
  for (int r = 0; r < options_.world_size; ++r) ranks[size_t(r)] = r;
  return ranks;
}

util::Status ShardedDataParallel::Init() {
  const int world = options_.world_size;
  if (world < 1) {
    return util::Status::InvalidArgument(
        "world_size must be >= 1, got " + std::to_string(world));
  }
  if (options_.backend == DpBackend::kProcessGroup) {
    if (options_.rank < 0 || options_.rank >= world) {
      return util::Status::InvalidArgument(
          "rank " + std::to_string(options_.rank) +
          " outside world of " + std::to_string(world));
    }
    if (options_.rendezvous.empty()) {
      return util::Status::InvalidArgument(
          "kProcessGroup backend needs a rendezvous path");
    }
  }
  ANGEL_ASSIGN_OR_RETURN(
      optimizer_, core::Optimizer::Create(core::ResolveLegacyAdam(
                      options_.optimizer, options_.adam)));

  // Connect the collective backend before touching memory: for the process
  // group this blocks until all world_size processes joined, so a rank that
  // fails rendezvous fails fast without having allocated anything.
  if (options_.backend == DpBackend::kProcessGroup) {
    ProcessGroupOptions pg_options;
    pg_options.rank = options_.rank;
    pg_options.world_size = world;
    pg_options.rendezvous = options_.rendezvous;
    ANGEL_ASSIGN_OR_RETURN(auto group, ProcessGroup::Connect(pg_options));
    pg_ = std::make_unique<ProcessGroupCollectives>(std::move(group));
  } else {
    comm_ = std::make_unique<core::Communicator>(world);
  }

  const std::vector<int> local_ranks = LocalRanks();
  if (options_.rank_gpu_capacity_bytes > 0) {
    rank_memories_.resize(size_t(world));
    rank_allocators_.resize(size_t(world));
    for (int r : local_ranks) {
      mem::HierarchicalMemoryOptions memory_options;
      memory_options.page_bytes = 64 * 1024;
      memory_options.gpu_capacity_bytes = options_.rank_gpu_capacity_bytes;
      memory_options.cpu_capacity_bytes = options_.rank_gpu_capacity_bytes;
      rank_memories_[size_t(r)] =
          std::make_unique<mem::HierarchicalMemory>(memory_options);
      rank_allocators_[size_t(r)] =
          std::make_unique<core::Allocator>(rank_memories_[size_t(r)].get());
    }
  }

  shards_.resize(model_->num_layers());
  for (int l = 0; l < model_->num_layers(); ++l) {
    Shard& shard = shards_[l];
    shard.full_count = model_->LayerParamCount(l);
    shard.padded_count =
        (shard.full_count + world - 1) / world * world;
    shard.shard_count = shard.padded_count / world;

    // Every rank draws the SAME full initialization from its own rng_
    // stream (seed-identical across processes), so scattering is local:
    // each rank just keeps its slice.
    std::vector<float> full = model_->InitLayerParams(l, &rng_);
    full.resize(shard.padded_count, 0.0f);
    // Each rank's shard carries its own optimizer state, laid out by the
    // rule for the shard's element count (ZeRO: optimizer states shard
    // with the parameters).
    const std::vector<core::SlotSpec> layout =
        optimizer_->SlotLayout(shard.shard_count);
    shard.p32.assign(size_t(world), nullptr);
    shard.slots.resize(layout.size());
    for (auto& slot : shard.slots) slot.assign(size_t(world), nullptr);
    for (int r : local_ranks) {
      const uint64_t group = uint64_t(l) * 64 + r;
      ANGEL_ASSIGN_OR_RETURN(
          shard.p32[r],
          allocator_->Allocate({shard.shard_count}, core::DType::kFp32,
                               mem::DeviceKind::kCpu, group));
      for (size_t s = 0; s < layout.size(); ++s) {
        ANGEL_ASSIGN_OR_RETURN(
            shard.slots[s][r],
            allocator_->Allocate({layout[s].count}, layout[s].dtype,
                                 mem::DeviceKind::kCpu, group));
      }
      const std::vector<float> slice(
          full.begin() + r * shard.shard_count,
          full.begin() + (r + 1) * shard.shard_count);
      ANGEL_RETURN_IF_ERROR(shard.p32[r]->WriteFloats(slice));
      for (size_t s = 0; s < layout.size(); ++s) {
        const std::vector<float> slot_zeros(layout[s].count, 0.0f);
        ANGEL_RETURN_IF_ERROR(shard.slots[s][r]->WriteFloats(slot_zeros));
      }
    }
    if (options_.stage == ZeroStage::kStage1) {
      // Stage 1: parameters are NOT sharded — full replica per rank.
      shard.replica.assign(size_t(world), nullptr);
      for (int r : local_ranks) {
        ANGEL_ASSIGN_OR_RETURN(
            shard.replica[r],
            allocator_->Allocate({shard.padded_count}, core::DType::kFp32,
                                 mem::DeviceKind::kCpu,
                                 uint64_t(l) * 64 + r));
        ANGEL_RETURN_IF_ERROR(shard.replica[r]->WriteFloats(full));
      }
    }
  }
  return util::Status::OK();
}

util::Status ShardedDataParallel::RankLoop(
    int rank, Collectives* comm, int start_step, int steps,
    const std::vector<std::vector<float>>* xs,
    const std::vector<std::vector<float>>* ys,
    std::vector<double>* step_losses, bool record_losses) {
  const int world = options_.world_size;
  const size_t batch = options_.batch_per_rank;
  const int num_layers = model_->num_layers();

  for (int step = start_step; step < steps; ++step) {
    // Slice this rank's part of the global batch.
    const size_t x_per_rank = batch * model_->InputSize();
    const size_t y_per_rank = batch * model_->OutputSize();
    const std::vector<float> x((*xs)[step].begin() + rank * x_per_rank,
                               (*xs)[step].begin() + (rank + 1) * x_per_rank);
    const std::vector<float> y((*ys)[step].begin() + rank * y_per_rank,
                               (*ys)[step].begin() + (rank + 1) * y_per_rank);

    // 1. Materialize full parameters. Stage 3: all-gather every layer's
    //    shards. Stage 1: read the rank's full replica.
    std::vector<std::vector<float>> params(num_layers);
    for (int l = 0; l < num_layers; ++l) {
      const Shard& shard = shards_[l];
      if (options_.stage == ZeroStage::kStage3) {
        std::vector<float> my_shard;
        ANGEL_RETURN_IF_ERROR(shard.p32[rank]->ReadFloats(&my_shard));
        std::vector<float> gathered(shard.padded_count);
        ANGEL_RETURN_IF_ERROR(comm->AllGather(
            my_shard.data(), shard.shard_count, gathered.data()));
        gathered.resize(shard.full_count);
        params[l] = std::move(gathered);
      } else {
        ANGEL_RETURN_IF_ERROR(
            shard.replica[rank]->ReadFloats(&params[l]));
        params[l].resize(shard.full_count);
      }
    }

    // Optional: stage the gathered parameters into this rank's own fast
    // tier (fp32, page by page) so compute reads from "GPU" memory.
    std::vector<core::Tensor*> staged(num_layers, nullptr);
    if (!rank_allocators_.empty()) {
      core::Allocator* rank_allocator = rank_allocators_[rank].get();
      for (int l = 0; l < num_layers; ++l) {
        auto tensor = rank_allocator->Allocate(
            {params[l].size()}, core::DType::kFp32, mem::DeviceKind::kCpu);
        if (!tensor.ok()) continue;  // Tier pressure: compute from host.
        staged[l] = *tensor;
        ANGEL_RETURN_IF_ERROR(staged[l]->WriteFloats(params[l]));
        const util::Status moved =
            rank_allocator->Move(staged[l], mem::DeviceKind::kGpu);
        if (moved.IsResourceExhausted()) {
          // Keep it CPU-resident; later layers may evict naturally.
        } else if (!moved.ok()) {
          return moved;
        }
        ANGEL_RETURN_IF_ERROR(staged[l]->ReadFloats(&params[l]));
      }
    }

    // 2. Forward/backward on the local slice.
    std::vector<train::LayerStash> stash(num_layers);
    std::vector<float> acts = x;
    for (int l = 0; l < num_layers; ++l) {
      std::vector<float> next;
      model_->Forward(l, params[l].data(), acts, batch, &next, &stash[l]);
      acts = std::move(next);
    }
    std::vector<float> grad(acts.size());
    double loss =
        train::MseLoss(acts.data(), y.data(), grad.data(), acts.size());

    // Global mean loss (an all-reduce of the scalar).
    float loss_value = float(loss);
    ANGEL_RETURN_IF_ERROR(comm->AllReduce(&loss_value, 1));
    if (record_losses) (*step_losses)[step] = loss_value / world;

    for (int l = num_layers - 1; l >= 0; --l) {
      std::vector<float> grad_in, grad_params;
      model_->Backward(l, params[l].data(), stash[l], grad, batch, &grad_in,
                       &grad_params);
      grad = std::move(grad_in);

      // 3. Reduce-scatter: this rank receives the summed gradient of its
      //    shard, averaged across ranks.
      const Shard& shard = shards_[l];
      grad_params.resize(shard.padded_count, 0.0f);
      std::vector<float> shard_grad(shard.shard_count);
      ANGEL_RETURN_IF_ERROR(comm->ReduceScatter(
          grad_params.data(), shard.padded_count, shard_grad.data()));
      for (float& g : shard_grad) g /= float(world);

      // 4. Optimizer update on the owned shard only.
      std::vector<float> p;
      ANGEL_RETURN_IF_ERROR(shard.p32[rank]->ReadFloats(&p));
      std::vector<std::vector<float>> slot_values(shard.slots.size());
      std::vector<core::SlotView> views(shard.slots.size());
      for (size_t s = 0; s < shard.slots.size(); ++s) {
        ANGEL_RETURN_IF_ERROR(
            shard.SlotTensor(s, rank)->ReadFloats(&slot_values[s]));
        views[s] = {slot_values[s].data(), slot_values[s].size()};
      }
      ANGEL_RETURN_IF_ERROR(optimizer_->Update(p.data(), shard_grad.data(),
                                               shard.shard_count, views,
                                               step + 1));
      ANGEL_RETURN_IF_ERROR(shard.p32[rank]->WriteFloats(p));
      for (size_t s = 0; s < shard.slots.size(); ++s) {
        ANGEL_RETURN_IF_ERROR(
            shard.SlotTensor(s, rank)->WriteFloats(slot_values[s]));
      }

      if (options_.stage == ZeroStage::kStage1) {
        // Stage 1: gather the freshly updated shards into the full
        // replica so the next step's forward sees new parameters.
        std::vector<float> updated(shard.padded_count);
        ANGEL_RETURN_IF_ERROR(comm->AllGather(p.data(), shard.shard_count,
                                              updated.data()));
        ANGEL_RETURN_IF_ERROR(shard.replica[rank]->WriteFloats(updated));
      }

      // The staged copy served this layer's forward and backward.
      if (staged[l] != nullptr) {
        ANGEL_RETURN_IF_ERROR(
            rank_allocators_[rank]->Release(staged[l]));
        staged[l] = nullptr;
      }
    }

    if (options_.checkpoint_every_n_steps > 0 &&
        (step + 1) % options_.checkpoint_every_n_steps == 0) {
      ANGEL_RETURN_IF_ERROR(SaveRankShards(rank, step + 1));
    }
  }
  return util::Status::OK();
}

util::Status ShardedDataParallel::SaveRankShards(int rank, int step) {
  ShardState state;
  state.rank = rank;
  state.world_size = options_.world_size;
  state.step = step;
  state.layers.resize(shards_.size());
  for (size_t l = 0; l < shards_.size(); ++l) {
    const Shard& shard = shards_[l];
    ShardLayerState& layer = state.layers[l];
    ANGEL_RETURN_IF_ERROR(shard.p32[rank]->ReadFloats(&layer.p32));
    layer.slots.resize(shard.slots.size());
    for (size_t s = 0; s < shard.slots.size(); ++s) {
      ANGEL_RETURN_IF_ERROR(
          shard.SlotTensor(s, rank)->ReadFloats(&layer.slots[s]));
    }
  }
  return SaveShardState(options_.checkpoint_dir, state,
                        options_.checkpoint_keep_last);
}

util::Result<int> ShardedDataParallel::TryResume() {
  if (options_.checkpoint_every_n_steps <= 0 ||
      options_.checkpoint_dir.empty()) {
    return 0;
  }
  // The resume point is the newest step EVERY rank has on disk: a rank that
  // died mid-save leaves the job one interval behind, never inconsistent.
  int local_min = -1;
  for (int r : LocalRanks()) {
    ANGEL_ASSIGN_OR_RETURN(const int step,
                           LatestShardStep(options_.checkpoint_dir, r));
    local_min = local_min < 0 ? step : std::min(local_min, step);
  }
  int agreed = std::max(local_min, 0);
  if (options_.backend == DpBackend::kProcessGroup) {
    // Agreement across processes: all-gather each rank's latest step and
    // take the minimum (steps are small ints, exact in float).
    const float mine = float(agreed);
    std::vector<float> all(size_t(options_.world_size));
    ANGEL_RETURN_IF_ERROR(pg_->AllGather(&mine, 1, all.data()));
    agreed = int(*std::min_element(all.begin(), all.end()));
  }
  if (agreed <= 0) return 0;

  for (int r : LocalRanks()) {
    ANGEL_ASSIGN_OR_RETURN(
        ShardState state,
        LoadShardState(options_.checkpoint_dir, r, agreed));
    if (state.world_size != options_.world_size ||
        state.layers.size() != shards_.size()) {
      return util::Status::InvalidArgument(
          "shard checkpoint topology mismatch: saved world " +
          std::to_string(state.world_size) + ", " +
          std::to_string(state.layers.size()) + " layers");
    }
    for (size_t l = 0; l < shards_.size(); ++l) {
      const Shard& shard = shards_[l];
      ShardLayerState& layer = state.layers[l];
      if (layer.p32.size() != shard.shard_count ||
          layer.slots.size() != shard.slots.size()) {
        return util::Status::InvalidArgument(
            "shard checkpoint layout mismatch at layer " + std::to_string(l));
      }
      ANGEL_RETURN_IF_ERROR(shard.p32[r]->WriteFloats(layer.p32));
      for (size_t s = 0; s < shard.slots.size(); ++s) {
        if (layer.slots[s].size() != shard.SlotTensor(s, r)->NumElements()) {
          return util::Status::InvalidArgument(
              "shard checkpoint slot mismatch at layer " + std::to_string(l));
        }
        ANGEL_RETURN_IF_ERROR(
            shard.SlotTensor(s, r)->WriteFloats(layer.slots[s]));
      }
    }
  }

  if (options_.stage == ZeroStage::kStage1) {
    // Stage 1 keeps full replicas; rebuild them from the restored shards.
    for (size_t l = 0; l < shards_.size(); ++l) {
      const Shard& shard = shards_[l];
      std::vector<float> full;
      if (options_.backend == DpBackend::kProcessGroup) {
        std::vector<float> mine;
        ANGEL_RETURN_IF_ERROR(
            shard.p32[options_.rank]->ReadFloats(&mine));
        full.resize(shard.padded_count);
        ANGEL_RETURN_IF_ERROR(
            pg_->AllGather(mine.data(), shard.shard_count, full.data()));
      } else {
        full.reserve(shard.padded_count);
        for (int r = 0; r < options_.world_size; ++r) {
          std::vector<float> slice;
          ANGEL_RETURN_IF_ERROR(shard.p32[r]->ReadFloats(&slice));
          full.insert(full.end(), slice.begin(), slice.end());
        }
      }
      for (int r : LocalRanks()) {
        ANGEL_RETURN_IF_ERROR(shard.replica[r]->WriteFloats(full));
      }
    }
  }
  return agreed;
}

util::Result<DpReport> ShardedDataParallel::Train(
    const train::SyntheticRegression& dataset, int steps) {
  if (shards_.empty()) {
    return util::Status::FailedPrecondition("Init() not called");
  }
  const int world = options_.world_size;
  // Pre-generate ALL global batches from step 0, resuming or not: the data
  // stream is a pure function of the seed (Init consumed rng_ identically
  // in every incarnation), so a restarted job replays the exact batches
  // its predecessor saw and the resumed run stays bitwise on course.
  std::vector<std::vector<float>> xs(steps), ys(steps);
  for (int step = 0; step < steps; ++step) {
    dataset.GenBatch(&rng_, options_.batch_per_rank * world, &xs[step],
                     &ys[step]);
  }

  ANGEL_ASSIGN_OR_RETURN(const int start_step, TryResume());

  DpReport report;
  report.resumed_step = start_step;
  report.losses.assign(steps, 0.0);
  if (options_.backend == DpBackend::kProcessGroup) {
    ANGEL_RETURN_IF_ERROR(RankLoop(options_.rank, pg_.get(), start_step,
                                   steps, &xs, &ys, &report.losses,
                                   /*record_losses=*/true));
    report.collectives = pg_->collectives_completed();
  } else {
    std::vector<util::Status> statuses(world);
    std::vector<std::thread> ranks;
    ranks.reserve(world);
    for (int r = 0; r < world; ++r) {
      ranks.emplace_back([&, r] {
        InProcessCollectives comm(comm_.get(), r);
        statuses[r] = RankLoop(r, &comm, start_step, steps, &xs, &ys,
                               &report.losses, /*record_losses=*/r == 0);
      });
    }
    for (auto& t : ranks) t.join();
    for (const util::Status& status : statuses) {
      ANGEL_RETURN_IF_ERROR(status);
    }
    report.collectives = comm_->collectives_completed();
  }
  report.final_train_loss = steps > 0 ? report.losses.back() : 0.0;

  // Validation with the gathered full parameters.
  std::vector<std::vector<float>> params(model_->num_layers());
  for (int l = 0; l < model_->num_layers(); ++l) {
    ANGEL_ASSIGN_OR_RETURN(params[l], GatherLayerParams(l));
  }
  util::Rng validation_rng(options_.seed ^ 0x5EEDF00Dull);
  const size_t batch = options_.batch_per_rank * world;
  double total = 0.0;
  const int validation_batches = 4;
  for (int i = 0; i < validation_batches; ++i) {
    std::vector<float> x, y;
    dataset.GenBatch(&validation_rng, batch, &x, &y);
    std::vector<float> acts = x;
    for (int l = 0; l < model_->num_layers(); ++l) {
      std::vector<float> next;
      model_->Forward(l, params[l].data(), acts, batch, &next, nullptr);
      acts = std::move(next);
    }
    std::vector<float> grad(acts.size());
    total += train::MseLoss(acts.data(), y.data(), grad.data(), acts.size());
  }
  report.validation_loss = total / validation_batches;
  return report;
}

util::Result<std::vector<float>> ShardedDataParallel::GatherLayerParams(
    int layer) {
  if (layer < 0 || layer >= int(shards_.size())) {
    return util::Status::InvalidArgument("bad layer index");
  }
  const Shard& shard = shards_[layer];
  std::vector<float> full;
  if (options_.backend == DpBackend::kProcessGroup) {
    std::vector<float> mine;
    ANGEL_RETURN_IF_ERROR(shard.p32[options_.rank]->ReadFloats(&mine));
    full.resize(shard.padded_count);
    ANGEL_RETURN_IF_ERROR(
        pg_->AllGather(mine.data(), shard.shard_count, full.data()));
  } else {
    full.reserve(shard.padded_count);
    for (int r = 0; r < options_.world_size; ++r) {
      std::vector<float> slice;
      ANGEL_RETURN_IF_ERROR(shard.p32[r]->ReadFloats(&slice));
      full.insert(full.end(), slice.begin(), slice.end());
    }
  }
  full.resize(shard.full_count);
  return full;
}

}  // namespace angelptm::dist
