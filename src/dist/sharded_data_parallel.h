#ifndef ANGELPTM_DIST_SHARDED_DATA_PARALLEL_H_
#define ANGELPTM_DIST_SHARDED_DATA_PARALLEL_H_

#include <memory>
#include <string>
#include <vector>

#include "core/adam.h"
#include "core/allocator.h"
#include "core/communicator.h"
#include "core/optimizer/optimizer.h"
#include "dist/collectives.h"
#include "train/dataset.h"
#include "train/layered_model.h"
#include "util/random.h"
#include "util/status.h"

namespace angelptm::dist {

/// Real ZeRO-style sharded data parallelism (§3.2 "Parameter Sharding"):
///
///   - every rank owns 1/N of each layer's fp32 master states (parameter
///     plus the optimizer's declared slot layout), held as page-backed
///     tensors;
///   - per step, each layer's full parameters are materialized by an
///     all-gather of the shards, forward/backward runs on the rank's slice
///     of the global batch, and gradients synchronize by reduce-scatter so
///     each rank updates exactly its shard with the configured update rule
///     (core/optimizer/optimizer.h; Adam default).
///
/// Two execution backends share the identical rank loop (dist/collectives.h):
///
///   - kInProcess: all world_size ranks run as threads of this process over
///     a shared core::Communicator — the simulated cluster every pre-§14
///     test uses, and the bitwise reference for the socket backend.
///   - kProcessGroup: THIS object is one rank of a real multi-process job;
///     collectives travel over Unix-domain sockets (dist::ProcessGroup),
///     and only the local rank's shards are allocated. N such processes on
///     one host are the paper's actual distributed system in miniature
///     (launched by tools/angel_worker; see DESIGN.md §14).
///
/// With the same global batch, N-rank training is mathematically equivalent
/// to single-rank training (up to floating-point summation order), and an
/// N-rank socket run is *bitwise* equivalent to the N-thread in-process run
/// on a pinned 1-thread compute pool — verified by tests/dist/.
/// Which ZeRO optimization stage to run (§7 Related Work / ZeRO paper):
/// stage 1 shards only the optimizer states (each rank keeps a full fp32
/// parameter replica and re-gathers updated *shards* after the step);
/// stage 3 also shards the parameters themselves (full parameters are
/// materialized per layer per step by all-gather). Stage 3 is what
/// Angel-PTM builds on (§3.2).
enum class ZeroStage { kStage1 = 1, kStage3 = 3 };

enum class DpBackend {
  /// world_size rank threads in this process (core::Communicator).
  kInProcess,
  /// This process is one rank; sockets to the others (dist::ProcessGroup).
  kProcessGroup,
};

struct ShardedDpOptions {
  ZeroStage stage = ZeroStage::kStage3;
  int world_size = 4;
  DpBackend backend = DpBackend::kInProcess;
  /// kProcessGroup only: this process's rank and the rendezvous socket
  /// path shared by the whole job (see ProcessGroupOptions).
  int rank = 0;
  std::string rendezvous;
  /// When non-zero, each rank gets its own fast-tier arena of this size and
  /// stages the gathered full parameters into it page by page before
  /// compute, releasing them after the layer's backward — the per-rank
  /// paging path of the full system, under real multi-threaded churn.
  uint64_t rank_gpu_capacity_bytes = 0;
  /// Update rule + hyper-parameters; each rank applies it to its owned
  /// shard (the slot layout is computed per shard, so e.g. adafactor
  /// factors each shard's own rows x cols grid).
  core::OptimizerConfig optimizer;
  /// Legacy Adam knobs (see TrainerOptions::adam): non-default fields
  /// override `optimizer` via core::ResolveLegacyAdam.
  core::AdamConfig adam;
  /// Per-rank micro-batch; the global batch is world_size * batch_per_rank.
  size_t batch_per_rank = 8;
  uint64_t seed = 1234;
  /// Fault tolerance (both backends): when > 0, every rank writes its
  /// shard state to `checkpoint_dir` every N completed steps, and Train()
  /// resumes from the latest step all ranks agree on (DESIGN.md §14.4).
  int checkpoint_every_n_steps = 0;
  std::string checkpoint_dir;
  int checkpoint_keep_last = 3;
};

struct DpReport {
  std::vector<double> losses;  // Global mean loss per step.
  double final_train_loss = 0.0;
  double validation_loss = 0.0;
  uint64_t collectives = 0;
  /// Step Train() resumed from (0 = fresh start).
  int resumed_step = 0;
};

class ShardedDataParallel {
 public:
  /// `allocator` and `model` must outlive this object. The allocator's CPU
  /// tier holds this process's shards (in-process: every rank's; process
  /// group: the local rank's only). The constructor only records the
  /// configuration — backends, sockets, and the optimizer are constructed
  /// lazily by Init(), which is also where a bad world_size surfaces as a
  /// Status instead of a crash.
  ShardedDataParallel(core::Allocator* allocator,
                      const train::LayeredModel* model,
                      const ShardedDpOptions& options);
  ~ShardedDataParallel();

  ShardedDataParallel(const ShardedDataParallel&) = delete;
  ShardedDataParallel& operator=(const ShardedDataParallel&) = delete;

  /// Validates the options, connects the configured backend (for
  /// kProcessGroup this performs the socket rendezvous and blocks until
  /// the whole world joined), and allocates + initializes the shards
  /// (identical full parameters on every rank's view, then scattered).
  [[nodiscard]] util::Status Init();

  /// Runs `steps` training steps (kInProcess: across world_size rank
  /// threads; kProcessGroup: this rank's loop, synchronized with the
  /// other processes). Resumes from the latest common checkpoint first
  /// when checkpointing is configured.
  [[nodiscard]] util::Result<DpReport> Train(
      const train::SyntheticRegression& dataset, int steps);

  /// Reconstructs a layer's full fp32 parameters from the shards. In
  /// kProcessGroup mode this is a *collective*: every rank of the job must
  /// call it (in the same order) for the all-gather to complete.
  [[nodiscard]] util::Result<std::vector<float>> GatherLayerParams(int layer);

  /// The local rank (kInProcess: always 0, the caller's view spans all
  /// ranks; kProcessGroup: this process's rank).
  int local_rank() const {
    return options_.backend == DpBackend::kProcessGroup ? options_.rank : 0;
  }

 private:
  struct Shard {
    size_t full_count = 0;    // Unpadded parameter elements of the layer.
    size_t padded_count = 0;  // Divisible by world_size.
    size_t shard_count = 0;   // padded_count / world_size.
    /// Per-rank parameter shards, indexed [rank]. In kProcessGroup mode
    /// only the local rank's entry is non-null.
    std::vector<core::Tensor*> p32;
    /// Per-rank optimizer master state, indexed [slot][rank]; one entry
    /// per SlotLayout(shard_count) slot of the configured rule.
    std::vector<std::vector<core::Tensor*>> slots;
    core::Tensor* SlotTensor(size_t slot, int rank) const {
      return slots[slot][size_t(rank)];
    }
    /// Stage 1 only: each rank's full fp32 parameter replica.
    std::vector<core::Tensor*> replica;
  };

  /// One rank's full training loop body. `comm` is that rank's view of the
  /// collective fabric; `start_step` skips the steps a resumed checkpoint
  /// already covers.
  [[nodiscard]] util::Status RankLoop(
      int rank, Collectives* comm, int start_step, int steps,
      const std::vector<std::vector<float>>* xs,
      const std::vector<std::vector<float>>* ys,
      std::vector<double>* step_losses, bool record_losses);

  /// Ranks whose shards live in this process.
  [[nodiscard]] std::vector<int> LocalRanks() const;

  /// Writes `rank`'s current shard state as a checkpoint for step `step`.
  [[nodiscard]] util::Status SaveRankShards(int rank, int step);
  /// Agrees on the latest step every rank has a checkpoint for (collective
  /// in kProcessGroup mode), loads it into the local shards, and returns
  /// it; returns 0 on a fresh start.
  [[nodiscard]] util::Result<int> TryResume();

  core::Allocator* allocator_;
  const train::LayeredModel* model_;
  ShardedDpOptions options_;
  /// The shared (stateless, const-Update) rule instance every rank uses on
  /// its own shard.
  std::unique_ptr<core::Optimizer> optimizer_;
  /// kInProcess backend: the shared communicator all rank threads use.
  std::unique_ptr<core::Communicator> comm_;
  /// kProcessGroup backend: this rank's socket collectives.
  std::unique_ptr<ProcessGroupCollectives> pg_;
  std::vector<Shard> shards_;
  /// Per-rank fast-tier memories/allocators (staging mode only).
  std::vector<std::unique_ptr<mem::HierarchicalMemory>> rank_memories_;
  std::vector<std::unique_ptr<core::Allocator>> rank_allocators_;
  util::Rng rng_;
};

}  // namespace angelptm::dist

#endif  // ANGELPTM_DIST_SHARDED_DATA_PARALLEL_H_
