#ifndef ANGELPTM_DIST_SHARDED_DATA_PARALLEL_H_
#define ANGELPTM_DIST_SHARDED_DATA_PARALLEL_H_

#include <memory>
#include <vector>

#include "core/adam.h"
#include "core/allocator.h"
#include "core/communicator.h"
#include "core/optimizer/optimizer.h"
#include "train/dataset.h"
#include "train/layered_model.h"
#include "util/random.h"
#include "util/status.h"

namespace angelptm::dist {

/// Real ZeRO-style sharded data parallelism (§3.2 "Parameter Sharding"),
/// executed across `world_size` rank threads in one process:
///
///   - every rank owns 1/N of each layer's fp32 master states (parameter
///     plus the optimizer's declared slot layout), held as page-backed
///     tensors;
///   - per step, each layer's full parameters are materialized by an
///     all-gather of the shards (Communicator), forward/backward runs on
///     the rank's slice of the global batch, and gradients synchronize by
///     reduce-scatter so each rank updates exactly its shard with the
///     configured update rule (core/optimizer/optimizer.h; Adam default).
///
/// With the same global batch, N-rank training is mathematically equivalent
/// to single-rank training (up to floating-point summation order) — the
/// transparency-of-scale property the paper's §3.2 design targets, verified
/// by tests/dist/sharded_dp_test.cc.
/// Which ZeRO optimization stage to run (§7 Related Work / ZeRO paper):
/// stage 1 shards only the optimizer states (each rank keeps a full fp32
/// parameter replica and re-gathers updated *shards* after the step);
/// stage 3 also shards the parameters themselves (full parameters are
/// materialized per layer per step by all-gather). Stage 3 is what
/// Angel-PTM builds on (§3.2).
enum class ZeroStage { kStage1 = 1, kStage3 = 3 };

struct ShardedDpOptions {
  ZeroStage stage = ZeroStage::kStage3;
  int world_size = 4;
  /// When non-zero, each rank gets its own fast-tier arena of this size and
  /// stages the gathered full parameters into it page by page before
  /// compute, releasing them after the layer's backward — the per-rank
  /// paging path of the full system, under real multi-threaded churn.
  uint64_t rank_gpu_capacity_bytes = 0;
  /// Update rule + hyper-parameters; each rank applies it to its owned
  /// shard (the slot layout is computed per shard, so e.g. adafactor
  /// factors each shard's own rows x cols grid).
  core::OptimizerConfig optimizer;
  /// Legacy Adam knobs (see TrainerOptions::adam): non-default fields
  /// override `optimizer` via core::ResolveLegacyAdam.
  core::AdamConfig adam;
  /// Per-rank micro-batch; the global batch is world_size * batch_per_rank.
  size_t batch_per_rank = 8;
  uint64_t seed = 1234;
};

struct DpReport {
  std::vector<double> losses;  // Global mean loss per step.
  double final_train_loss = 0.0;
  double validation_loss = 0.0;
  uint64_t collectives = 0;
};

class ShardedDataParallel {
 public:
  /// `allocator` and `model` must outlive this object. The allocator's CPU
  /// tier holds every rank's shards (3 fp32 tensors per layer per rank).
  ShardedDataParallel(core::Allocator* allocator,
                      const train::LayeredModel* model,
                      const ShardedDpOptions& options);
  ~ShardedDataParallel();

  ShardedDataParallel(const ShardedDataParallel&) = delete;
  ShardedDataParallel& operator=(const ShardedDataParallel&) = delete;

  /// Allocates and initializes all shards (identical full parameters on
  /// every rank's view, then scattered).
  [[nodiscard]] util::Status Init();

  /// Runs `steps` training steps across world_size rank threads.
  [[nodiscard]] util::Result<DpReport> Train(const train::SyntheticRegression& dataset,
                               int steps);

  /// Reconstructs a layer's full fp32 parameters from the shards.
  [[nodiscard]] util::Result<std::vector<float>> GatherLayerParams(int layer);

 private:
  struct Shard {
    size_t full_count = 0;    // Unpadded parameter elements of the layer.
    size_t padded_count = 0;  // Divisible by world_size.
    size_t shard_count = 0;   // padded_count / world_size.
    /// Per-rank parameter shards, indexed [rank].
    std::vector<core::Tensor*> p32;
    /// Per-rank optimizer master state, indexed [slot][rank]; one entry
    /// per SlotLayout(shard_count) slot of the configured rule.
    std::vector<std::vector<core::Tensor*>> slots;
    core::Tensor* SlotTensor(size_t slot, int rank) const {
      return slots[slot][size_t(rank)];
    }
    /// Stage 1 only: each rank's full fp32 parameter replica.
    std::vector<core::Tensor*> replica;
  };

  /// One rank's full training loop body (runs on its own thread).
  [[nodiscard]] util::Status RankLoop(int rank, const train::SyntheticRegression& dataset,
                        int steps, const std::vector<std::vector<float>>* xs,
                        const std::vector<std::vector<float>>* ys,
                        std::vector<double>* step_losses);

  core::Allocator* allocator_;
  const train::LayeredModel* model_;
  ShardedDpOptions options_;
  /// The shared (stateless, const-Update) rule instance every rank uses on
  /// its own shard. Null when creation failed; Init() reports the error.
  std::unique_ptr<core::Optimizer> optimizer_;
  util::Status optimizer_status_;
  std::unique_ptr<core::Communicator> comm_;
  std::vector<Shard> shards_;
  /// Per-rank fast-tier memories/allocators (staging mode only).
  std::vector<std::unique_ptr<mem::HierarchicalMemory>> rank_memories_;
  std::vector<std::unique_ptr<core::Allocator>> rank_allocators_;
  util::Rng rng_;
};

}  // namespace angelptm::dist

#endif  // ANGELPTM_DIST_SHARDED_DATA_PARALLEL_H_
