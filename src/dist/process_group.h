#ifndef ANGELPTM_DIST_PROCESS_GROUP_H_
#define ANGELPTM_DIST_PROCESS_GROUP_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace angelptm::dist {

/// Configuration of one rank's membership in a multi-process group.
struct ProcessGroupOptions {
  int rank = 0;
  int world_size = 1;
  /// Rendezvous address: a filesystem path for the Unix-domain socket rank
  /// 0 listens on. Every rank of the job must pass the same path.
  std::string rendezvous;
  /// How long non-root ranks keep retrying the connect while rank 0 is
  /// still starting up (and how long rank 0 waits for the world to join).
  int connect_timeout_ms = 20000;
  /// Per-frame receive deadline inside collectives. A peer that neither
  /// sends nor dies within this window fails the collective with
  /// DeadlineExceeded (a hung-rank detector for the test harness).
  int io_timeout_ms = 120000;
  /// Transient-fault retries around each frame send/recv, mirroring the
  /// SsdTier retry policy (§7): injected `pg.send`/`pg.recv` faults and
  /// transient socket errors are retried with exponential backoff; peer
  /// loss is never retried (fail-stop).
  int max_attempts = 3;
  int base_backoff_us = 100;
};

/// True multi-process collectives over Unix-domain sockets (§4/§5: the
/// step from the simulated in-process `core::Communicator` to an actual
/// distributed system on one host).
///
/// Topology: a hub. Rank 0 binds the rendezvous socket and every other
/// rank connects to it; collectives move data rank->root, the root reduces
/// or concatenates *in ascending rank order with double accumulation* —
/// exactly the arithmetic of `core::Communicator` — and fans the result
/// back out. That choice makes an N-rank socket run bitwise-identical to
/// the N-thread in-process run, which is what the cross-backend tests
/// compare (tests/dist/).
///
/// Wire format: mem/wire_format.h frames (the PageTransport framing), one
/// frame per message, sequence-numbered per connection so a desynchronized
/// stream is detected instead of mis-delivered.
///
/// Failure model: fail-stop. A dead peer surfaces as an IoError matching
/// IsPeerLoss() on every rank that touches the broken connection; the
/// launcher is expected to gang-restart the job from the latest checkpoint
/// (DESIGN.md §14.4).
///
/// Thread-compatibility: one ProcessGroup instance belongs to one rank and
/// must be driven from one thread at a time (the same contract NCCL
/// communicators have). Distinct instances — even in one process — are
/// fully independent, which is how the property tests run a whole world as
/// threads over real sockets.
class ProcessGroup {
 public:
  /// Performs the rendezvous: rank 0 binds + accepts world_size-1 hellos,
  /// everyone else connects with retry until `connect_timeout_ms`. Returns
  /// only once the full world is joined (the constructor doubles as the
  /// job's first barrier).
  [[nodiscard]] static util::Result<std::unique_ptr<ProcessGroup>> Connect(
      const ProcessGroupOptions& options);

  /// Reads rank / world size / rendezvous from the environment:
  /// ANGEL_RANK, ANGEL_WORLD_SIZE, ANGEL_RENDEZVOUS (the contract of the
  /// angel_worker launcher binary).
  [[nodiscard]] static util::Result<ProcessGroupOptions> OptionsFromEnv();

  ~ProcessGroup();
  ProcessGroup(const ProcessGroup&) = delete;
  ProcessGroup& operator=(const ProcessGroup&) = delete;

  int rank() const { return options_.rank; }
  int world_size() const { return options_.world_size; }

  /// recv (world_size * count floats) receives every rank's `send` (count
  /// floats) in rank order — same contract as Communicator::AllGather.
  [[nodiscard]] util::Status AllGather(const float* send, size_t count,
                                       float* recv);

  /// Dtype-agnostic all-gather: recv (world_size * bytes) receives every
  /// rank's `bytes` of `send` in rank order. Underlies AllGather and the
  /// fp16/byte legs of the property tests.
  [[nodiscard]] util::Status AllGatherBytes(const void* send, size_t bytes,
                                            void* recv);

  /// Element-wise sum of all ranks' `send` (total_count floats) in rank
  /// order with double accumulation; rank r receives chunk r of size
  /// total_count / world_size — same contract (and same bits) as
  /// Communicator::ReduceScatter.
  [[nodiscard]] util::Status ReduceScatter(const float* send,
                                           size_t total_count, float* recv);

  /// In-place element-wise sum across ranks.
  [[nodiscard]] util::Status AllReduce(float* data, size_t count);

  /// Rendezvous with no data.
  [[nodiscard]] util::Status Barrier();

  uint64_t collectives_completed() const { return collectives_; }

  struct Stats {
    uint64_t collectives = 0;
    uint64_t bytes_sent = 0;
    uint64_t bytes_received = 0;
    /// Wall time spent inside collectives (send + wait + recv), µs.
    uint64_t collective_us = 0;
  };
  Stats GetStats() const { return stats_; }

  /// True when `status` means a peer process died or the connection to it
  /// broke — the fail-stop signal the launcher turns into a gang restart
  /// (angel_worker exits with code 42 on it).
  static bool IsPeerLoss(const util::Status& status);

 private:
  explicit ProcessGroup(const ProcessGroupOptions& options);

  [[nodiscard]] util::Status Rendezvous();
  [[nodiscard]] util::Status RendezvousRoot();
  [[nodiscard]] util::Status RendezvousPeer();

  /// Frame send/recv with the §7 retry policy and the pg.send / pg.recv
  /// failpoints applied per attempt.
  [[nodiscard]] util::Status SendChecked(int fd, uint16_t op, uint32_t seq,
                                         const void* payload, size_t bytes);
  [[nodiscard]] util::Status RecvChecked(int fd, uint16_t expect_op,
                                         uint32_t expect_seq,
                                         uint16_t expect_rank,
                                         std::vector<std::byte>* payload);

  /// Root half of a hub round: receives every non-root rank's `bytes`-sized
  /// contribution tagged `op` into gathered_[r] (gathered_[0] becomes a
  /// copy of the root's own `send`), ascending rank order.
  [[nodiscard]] util::Status HubCollect(uint16_t op, const void* send,
                                        size_t bytes);
  /// Non-root half: sends this rank's contribution and receives the
  /// root's kResult reply into `reply`.
  [[nodiscard]] util::Status PeerExchange(uint16_t op, const void* send,
                                          size_t bytes,
                                          std::vector<std::byte>* reply);

  ProcessGroupOptions options_;
  /// Root: one connected fd per non-root rank (index 0 unused).
  /// Non-root: fds_[0] is the connection to the root.
  std::vector<int> fds_;
  int listen_fd_ = -1;
  uint32_t seq_ = 0;
  uint64_t collectives_ = 0;
  Stats stats_;
  /// Root-side scratch: every rank's contribution of the current round.
  std::vector<std::vector<std::byte>> gathered_;
};

}  // namespace angelptm::dist

#endif  // ANGELPTM_DIST_PROCESS_GROUP_H_
