#ifndef ANGELPTM_DIST_SHARD_CHECKPOINT_H_
#define ANGELPTM_DIST_SHARD_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace angelptm::dist {

/// One rank's persistent ZeRO shard state: its slice of every layer's fp32
/// master parameters plus the optimizer's slot tensors for that slice.
/// This is the unit of recovery for multi-process training — each rank
/// writes its own file, so a gang restart reassembles the full job from
/// world_size shard files plus the deterministic data stream (the batches
/// regenerate from the seed; see DESIGN.md §14.4).
struct ShardLayerState {
  std::vector<float> p32;
  std::vector<std::vector<float>> slots;
};

struct ShardState {
  int rank = 0;
  int world_size = 0;
  /// Completed training steps at save time (the resume point).
  int step = 0;
  std::vector<ShardLayerState> layers;
};

/// Atomically writes `state` as `<dir>/shard-r<rank>-s<step>.ckpt`
/// (tmp + fflush + fsync + rename, same durability ladder as the v3
/// trainer checkpoints) under a trailing FNV-1a checksum, then rotates:
/// only the newest `keep_last` files of this rank survive. keep_last < 1
/// keeps everything.
[[nodiscard]] util::Status SaveShardState(const std::string& dir,
                                          const ShardState& state,
                                          int keep_last);

/// Largest step for which `dir` holds a shard file of `rank`; 0 when the
/// directory is missing or holds none (a fresh start).
[[nodiscard]] util::Result<int> LatestShardStep(const std::string& dir,
                                                int rank);

/// Loads the shard file of (`rank`, `step`). NotFound when absent;
/// IoError/InvalidArgument on truncation or checksum mismatch — a corrupt
/// file is rejected loudly, never half-loaded.
[[nodiscard]] util::Result<ShardState> LoadShardState(
    const std::string& dir, int rank, int step);

}  // namespace angelptm::dist

#endif  // ANGELPTM_DIST_SHARD_CHECKPOINT_H_
