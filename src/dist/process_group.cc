#include "dist/process_group.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "mem/wire_format.h"
#include "obs/metrics.h"
#include "util/env_override.h"
#include "util/fault_injector.h"
#include "util/logging.h"

namespace angelptm::dist {

namespace wire = mem::wire;

namespace {

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

util::Status MakeSockAddr(const std::string& path, sockaddr_un* addr) {
  if (path.empty()) {
    return util::Status::InvalidArgument("empty rendezvous path");
  }
  if (path.size() >= sizeof(addr->sun_path)) {
    return util::Status::InvalidArgument(
        "rendezvous path too long for a Unix socket (" +
        std::to_string(path.size()) + " >= " +
        std::to_string(sizeof(addr->sun_path)) + "): " + path);
  }
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return util::Status::OK();
}

/// Transient statuses worth another attempt under the retry policy: only
/// injected/transient I/O errors. Peer loss is fail-stop and a deadline
/// already waited as long as it was allowed to.
bool Retryable(const util::Status& status) {
  return status.IsIoError() &&
         status.message().find(wire::kPeerClosedMsg) == std::string::npos;
}

}  // namespace

ProcessGroup::ProcessGroup(const ProcessGroupOptions& options)
    : options_(options) {}

ProcessGroup::~ProcessGroup() {
  for (int fd : fds_) {
    if (fd >= 0) ::close(fd);
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(options_.rendezvous.c_str());
  }
}

bool ProcessGroup::IsPeerLoss(const util::Status& status) {
  return status.IsIoError() &&
         status.message().find(wire::kPeerClosedMsg) != std::string::npos;
}

util::Result<ProcessGroupOptions> ProcessGroup::OptionsFromEnv() {
  ProcessGroupOptions options;
  options.rank = int(util::EnvSizeOr("ANGEL_RANK", 0));
  options.world_size = int(util::EnvSizeOr("ANGEL_WORLD_SIZE", 0));
  options.rendezvous = util::EnvStringOr("ANGEL_RENDEZVOUS", "");
  if (options.world_size <= 0) {
    return util::Status::InvalidArgument(
        "ANGEL_WORLD_SIZE must be set to a positive integer");
  }
  if (options.rank < 0 || options.rank >= options.world_size) {
    return util::Status::InvalidArgument(
        "ANGEL_RANK " + std::to_string(options.rank) +
        " out of range for world size " +
        std::to_string(options.world_size));
  }
  if (options.world_size > 1 && options.rendezvous.empty()) {
    return util::Status::InvalidArgument(
        "ANGEL_RENDEZVOUS must name a socket path for world size > 1");
  }
  return options;
}

util::Result<std::unique_ptr<ProcessGroup>> ProcessGroup::Connect(
    const ProcessGroupOptions& options) {
  if (options.world_size < 1) {
    return util::Status::InvalidArgument("world_size must be >= 1");
  }
  if (options.rank < 0 || options.rank >= options.world_size) {
    return util::Status::InvalidArgument("rank out of range");
  }
  if (options.world_size > 0xFFFF) {
    return util::Status::InvalidArgument("world_size exceeds wire range");
  }
  std::unique_ptr<ProcessGroup> group(new ProcessGroup(options));
  ANGEL_RETURN_IF_ERROR(group->Rendezvous());
  return group;
}

util::Status ProcessGroup::Rendezvous() {
  if (options_.world_size == 1) return util::Status::OK();  // No wire.
  if (options_.rank == 0) return RendezvousRoot();
  return RendezvousPeer();
}

util::Status ProcessGroup::RendezvousRoot() {
  sockaddr_un addr;
  ANGEL_RETURN_IF_ERROR(MakeSockAddr(options_.rendezvous, &addr));
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return util::Status::IoError(std::string("socket() failed: ") +
                                 std::strerror(errno));
  }
  // A stale socket file from a killed previous incarnation must not block
  // the restart: the rendezvous path is owned by whoever is rank 0 now.
  ::unlink(options_.rendezvous.c_str());
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return util::Status::IoError("bind(" + options_.rendezvous +
                                 ") failed: " + std::strerror(errno));
  }
  if (::listen(listen_fd_, options_.world_size) != 0) {
    return util::Status::IoError(std::string("listen() failed: ") +
                                 std::strerror(errno));
  }
  fds_.assign(size_t(options_.world_size), -1);
  const int64_t deadline =
      NowUs() + int64_t(options_.connect_timeout_ms) * 1000;
  int joined = 0;
  while (joined < options_.world_size - 1) {
    if (NowUs() > deadline) {
      return util::Status::DeadlineExceeded(
          "rendezvous: only " + std::to_string(joined) + " of " +
          std::to_string(options_.world_size - 1) +
          " peers joined within the connect timeout");
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return util::Status::IoError(std::string("accept() failed: ") +
                                   std::strerror(errno));
    }
    wire::Header hello;
    std::vector<std::byte> payload;
    util::Status received =
        wire::RecvFrame(fd, &hello, &payload, options_.connect_timeout_ms);
    if (received.ok() && hello.op != wire::Op::kHello) {
      received = util::Status::InvalidArgument(
          "rendezvous: expected a hello frame");
    }
    if (received.ok() && payload.size() == sizeof(uint32_t)) {
      uint32_t peer_world;
      std::memcpy(&peer_world, payload.data(), sizeof(peer_world));
      if (int(peer_world) != options_.world_size) {
        received = util::Status::InvalidArgument(
            "rendezvous: peer rank " + std::to_string(hello.rank) +
            " was launched with world size " + std::to_string(peer_world) +
            ", this root has " + std::to_string(options_.world_size));
      }
    }
    if (received.ok() &&
        (hello.rank == 0 || hello.rank >= options_.world_size)) {
      received = util::Status::InvalidArgument(
          "rendezvous: hello from out-of-range rank " +
          std::to_string(hello.rank));
    }
    if (received.ok() && fds_[hello.rank] != -1) {
      received = util::Status::InvalidArgument(
          "rendezvous: duplicate hello from rank " +
          std::to_string(hello.rank));
    }
    if (!received.ok()) {
      ::close(fd);
      return received;
    }
    fds_[hello.rank] = fd;
    ++joined;
  }
  // The world is complete: release everyone (their Connect() returns only
  // after this welcome, so Connect doubles as a barrier).
  for (int r = 1; r < options_.world_size; ++r) {
    wire::Header welcome;
    welcome.op = wire::Op::kWelcome;
    welcome.rank = 0;
    welcome.seq = 0;
    welcome.payload_bytes = 0;
    ANGEL_RETURN_IF_ERROR(wire::SendFrame(fds_[r], welcome, nullptr));
  }
  gathered_.resize(size_t(options_.world_size));
  return util::Status::OK();
}

util::Status ProcessGroup::RendezvousPeer() {
  sockaddr_un addr;
  ANGEL_RETURN_IF_ERROR(MakeSockAddr(options_.rendezvous, &addr));
  const int64_t deadline =
      NowUs() + int64_t(options_.connect_timeout_ms) * 1000;
  int fd = -1;
  for (;;) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      return util::Status::IoError(std::string("socket() failed: ") +
                                   std::strerror(errno));
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      break;
    }
    const int err = errno;
    ::close(fd);
    fd = -1;
    // Rank 0 may simply not have bound yet (process launch order is
    // arbitrary): keep knocking until the connect timeout.
    if (err != ENOENT && err != ECONNREFUSED && err != EINTR) {
      return util::Status::IoError("connect(" + options_.rendezvous +
                                   ") failed: " + std::strerror(err));
    }
    if (NowUs() > deadline) {
      return util::Status::DeadlineExceeded(
          "rendezvous: rank " + std::to_string(options_.rank) +
          " could not reach the root at " + options_.rendezvous +
          " within the connect timeout");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  fds_.assign(1, fd);
  wire::Header hello;
  hello.op = wire::Op::kHello;
  hello.rank = uint16_t(options_.rank);
  hello.seq = 0;
  const uint32_t world = uint32_t(options_.world_size);
  hello.payload_bytes = sizeof(world);
  ANGEL_RETURN_IF_ERROR(wire::SendFrame(fd, hello, &world));
  wire::Header welcome;
  std::vector<std::byte> payload;
  ANGEL_RETURN_IF_ERROR(
      wire::RecvFrame(fd, &welcome, &payload, options_.connect_timeout_ms));
  if (welcome.op != wire::Op::kWelcome) {
    return util::Status::Internal("rendezvous: expected a welcome frame");
  }
  return util::Status::OK();
}

util::Status ProcessGroup::SendChecked(int fd, uint16_t op, uint32_t seq,
                                       const void* payload, size_t bytes) {
  wire::Header header;
  header.op = wire::Op(op);
  header.rank = uint16_t(options_.rank);
  header.seq = seq;
  header.payload_bytes = bytes;
  util::Status last;
  int backoff_us = options_.base_backoff_us;
  for (int attempt = 0; attempt < std::max(1, options_.max_attempts);
       ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
      backoff_us *= 4;
    }
    auto& injector = util::FaultInjector::Instance();
    last = injector.enabled() ? injector.Check("pg.send")
                              : util::Status::OK();
    if (last.ok()) last = wire::SendFrame(fd, header, payload);
    if (last.ok()) {
      stats_.bytes_sent += wire::kHeaderBytes + bytes;
      return last;
    }
    if (!Retryable(last)) return last;
  }
  return last;
}

util::Status ProcessGroup::RecvChecked(int fd, uint16_t expect_op,
                                       uint32_t expect_seq,
                                       uint16_t expect_rank,
                                       std::vector<std::byte>* payload) {
  wire::Header header;
  util::Status last;
  int backoff_us = options_.base_backoff_us;
  for (int attempt = 0; attempt < std::max(1, options_.max_attempts);
       ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
      backoff_us *= 4;
    }
    auto& injector = util::FaultInjector::Instance();
    last = injector.enabled() ? injector.Check("pg.recv")
                              : util::Status::OK();
    if (last.ok()) {
      last = wire::RecvFrame(fd, &header, payload, options_.io_timeout_ms);
    }
    if (last.ok()) break;
    if (!Retryable(last)) return last;
  }
  ANGEL_RETURN_IF_ERROR(last);
  if (uint16_t(header.op) != expect_op) {
    return util::Status::Internal(
        "collective protocol error: expected op " +
        std::to_string(expect_op) + ", got " +
        std::to_string(uint16_t(header.op)));
  }
  if (header.seq != expect_seq) {
    return util::Status::Internal(
        "collective sequence mismatch: expected " +
        std::to_string(expect_seq) + ", got " + std::to_string(header.seq) +
        " (ranks out of step)");
  }
  if (header.rank != expect_rank) {
    return util::Status::Internal(
        "collective protocol error: frame from rank " +
        std::to_string(header.rank) + ", expected rank " +
        std::to_string(expect_rank));
  }
  stats_.bytes_received += wire::kHeaderBytes + payload->size();
  return util::Status::OK();
}

util::Status ProcessGroup::HubCollect(uint16_t op, const void* send,
                                      size_t bytes) {
  gathered_[0].resize(bytes);
  if (bytes > 0) std::memcpy(gathered_[0].data(), send, bytes);
  for (int r = 1; r < options_.world_size; ++r) {
    ANGEL_RETURN_IF_ERROR(
        RecvChecked(fds_[r], op, seq_, uint16_t(r), &gathered_[r]));
    if (gathered_[r].size() != bytes) {
      return util::Status::Internal(
          "collective size mismatch: rank " + std::to_string(r) + " sent " +
          std::to_string(gathered_[r].size()) + " bytes, expected " +
          std::to_string(bytes));
    }
  }
  return util::Status::OK();
}

util::Status ProcessGroup::PeerExchange(uint16_t op, const void* send,
                                        size_t bytes,
                                        std::vector<std::byte>* reply) {
  ANGEL_RETURN_IF_ERROR(SendChecked(fds_[0], op, seq_, send, bytes));
  return RecvChecked(fds_[0], uint16_t(wire::Op::kResult), seq_, 0, reply);
}

util::Status ProcessGroup::AllGatherBytes(const void* send, size_t bytes,
                                          void* recv) {
  const int64_t start = NowUs();
  const int world = options_.world_size;
  if (world == 1) {
    if (bytes > 0) std::memcpy(recv, send, bytes);
    ++collectives_;
    ++stats_.collectives;
    return util::Status::OK();
  }
  auto* out = static_cast<std::byte*>(recv);
  if (options_.rank == 0) {
    ANGEL_RETURN_IF_ERROR(
        HubCollect(uint16_t(wire::Op::kAllGather), send, bytes));
    for (int r = 0; r < world; ++r) {
      if (bytes > 0) {
        std::memcpy(out + size_t(r) * bytes, gathered_[r].data(), bytes);
      }
    }
    for (int r = 1; r < world; ++r) {
      ANGEL_RETURN_IF_ERROR(SendChecked(fds_[r],
                                        uint16_t(wire::Op::kResult), seq_,
                                        out, size_t(world) * bytes));
    }
  } else {
    std::vector<std::byte> reply;
    ANGEL_RETURN_IF_ERROR(
        PeerExchange(uint16_t(wire::Op::kAllGather), send, bytes, &reply));
    if (reply.size() != size_t(world) * bytes) {
      return util::Status::Internal("all-gather result size mismatch");
    }
    if (!reply.empty()) std::memcpy(out, reply.data(), reply.size());
  }
  ++seq_;
  ++collectives_;
  ++stats_.collectives;
  stats_.collective_us += uint64_t(NowUs() - start);
  obs::Registry::Instance().GetCounter("pg/collectives")->Increment();
  return util::Status::OK();
}

util::Status ProcessGroup::AllGather(const float* send, size_t count,
                                     float* recv) {
  return AllGatherBytes(send, count * sizeof(float), recv);
}

util::Status ProcessGroup::ReduceScatter(const float* send,
                                         size_t total_count, float* recv) {
  const int64_t start = NowUs();
  const int world = options_.world_size;
  if (total_count % size_t(world) != 0) {
    return util::Status::InvalidArgument(
        "reduce-scatter count not divisible by world size");
  }
  const size_t chunk = total_count / size_t(world);
  if (world == 1) {
    // Sum of one rank, same arithmetic as the multi-rank path.
    for (size_t i = 0; i < chunk; ++i) recv[i] = float(double(send[i]));
    ++collectives_;
    ++stats_.collectives;
    return util::Status::OK();
  }
  const size_t bytes = total_count * sizeof(float);
  if (options_.rank == 0) {
    ANGEL_RETURN_IF_ERROR(
        HubCollect(uint16_t(wire::Op::kReduceScatter), send, bytes));
    // Reduce chunk by chunk, ranks ascending, double accumulator — the
    // exact arithmetic of Communicator::ReduceScatter, so socket and
    // in-process backends agree bitwise.
    std::vector<float> reduced(total_count);
    for (size_t i = 0; i < total_count; ++i) {
      double sum = 0.0;
      for (int r = 0; r < world; ++r) {
        float v;
        std::memcpy(&v, gathered_[r].data() + i * sizeof(float),
                    sizeof(float));
        sum += v;
      }
      reduced[i] = float(sum);
    }
    std::memcpy(recv, reduced.data(), chunk * sizeof(float));
    for (int r = 1; r < world; ++r) {
      ANGEL_RETURN_IF_ERROR(
          SendChecked(fds_[r], uint16_t(wire::Op::kResult), seq_,
                      reduced.data() + size_t(r) * chunk,
                      chunk * sizeof(float)));
    }
  } else {
    std::vector<std::byte> reply;
    ANGEL_RETURN_IF_ERROR(PeerExchange(uint16_t(wire::Op::kReduceScatter),
                                       send, bytes, &reply));
    if (reply.size() != chunk * sizeof(float)) {
      return util::Status::Internal("reduce-scatter result size mismatch");
    }
    std::memcpy(recv, reply.data(), reply.size());
  }
  ++seq_;
  ++collectives_;
  ++stats_.collectives;
  stats_.collective_us += uint64_t(NowUs() - start);
  obs::Registry::Instance().GetCounter("pg/collectives")->Increment();
  return util::Status::OK();
}

util::Status ProcessGroup::AllReduce(float* data, size_t count) {
  const int64_t start = NowUs();
  const int world = options_.world_size;
  if (world == 1) {
    for (size_t i = 0; i < count; ++i) data[i] = float(double(data[i]));
    ++collectives_;
    ++stats_.collectives;
    return util::Status::OK();
  }
  const size_t bytes = count * sizeof(float);
  if (options_.rank == 0) {
    ANGEL_RETURN_IF_ERROR(
        HubCollect(uint16_t(wire::Op::kAllReduce), data, bytes));
    std::vector<float> reduced(count);
    for (size_t i = 0; i < count; ++i) {
      double sum = 0.0;
      for (int r = 0; r < world; ++r) {
        float v;
        std::memcpy(&v, gathered_[r].data() + i * sizeof(float),
                    sizeof(float));
        sum += v;
      }
      reduced[i] = float(sum);
    }
    std::memcpy(data, reduced.data(), bytes);
    for (int r = 1; r < world; ++r) {
      ANGEL_RETURN_IF_ERROR(SendChecked(fds_[r],
                                        uint16_t(wire::Op::kResult), seq_,
                                        reduced.data(), bytes));
    }
  } else {
    std::vector<std::byte> reply;
    ANGEL_RETURN_IF_ERROR(
        PeerExchange(uint16_t(wire::Op::kAllReduce), data, bytes, &reply));
    if (reply.size() != bytes) {
      return util::Status::Internal("all-reduce result size mismatch");
    }
    std::memcpy(data, reply.data(), bytes);
  }
  ++seq_;
  ++collectives_;
  ++stats_.collectives;
  stats_.collective_us += uint64_t(NowUs() - start);
  obs::Registry::Instance().GetCounter("pg/collectives")->Increment();
  return util::Status::OK();
}

util::Status ProcessGroup::Barrier() {
  const int world = options_.world_size;
  if (world == 1) {
    ++collectives_;
    ++stats_.collectives;
    return util::Status::OK();
  }
  if (options_.rank == 0) {
    ANGEL_RETURN_IF_ERROR(
        HubCollect(uint16_t(wire::Op::kBarrier), nullptr, 0));
    for (int r = 1; r < world; ++r) {
      ANGEL_RETURN_IF_ERROR(SendChecked(
          fds_[r], uint16_t(wire::Op::kResult), seq_, nullptr, 0));
    }
  } else {
    std::vector<std::byte> reply;
    ANGEL_RETURN_IF_ERROR(
        PeerExchange(uint16_t(wire::Op::kBarrier), nullptr, 0, &reply));
  }
  ++seq_;
  ++collectives_;
  ++stats_.collectives;
  return util::Status::OK();
}

}  // namespace angelptm::dist
