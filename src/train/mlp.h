#ifndef ANGELPTM_TRAIN_MLP_H_
#define ANGELPTM_TRAIN_MLP_H_

#include <cstddef>
#include <vector>

#include "train/layered_model.h"
#include "util/random.h"

namespace angelptm::train {

/// A real multi-layer perceptron (Linear -> GeLU stacks, linear head) whose
/// parameters live in the page-based memory subsystem. Each layer is one
/// schedulable unit, mirroring how the engine treats Transformer layers; the
/// convergence experiments (Table 6's valid-loss column) train this model
/// for real through the lock-free updater.
struct MlpConfig {
  /// Layer widths, e.g. {16, 64, 64, 1}: 3 layers.
  std::vector<size_t> dims;
};

class MlpModel : public LayeredModel {
 public:
  explicit MlpModel(MlpConfig config);

  int num_layers() const override {
    return static_cast<int>(config_.dims.size()) - 1;
  }
  size_t in_dim() const { return config_.dims.front(); }
  size_t out_dim() const { return config_.dims.back(); }
  size_t InputSize() const override { return in_dim(); }
  size_t OutputSize() const override { return out_dim(); }

  /// Parameters of layer l: weights (in*out) followed by bias (out).
  size_t LayerParamCount(int layer) const override;

  /// He-style initial weights, zero bias.
  std::vector<float> InitLayerParams(int layer,
                                     util::Rng* rng) const override;

  /// Applies layer `layer` to `in` (batch x in_dim), producing `out`
  /// (batch x out_dim). Hidden layers apply GeLU; the head is linear.
  /// `stash` records what backward needs.
  void Forward(int layer, const float* params, const std::vector<float>& in,
               size_t batch, std::vector<float>* out,
               LayerStash* stash) const override;

  /// Backward of layer `layer`: grad wrt output -> grad wrt input plus
  /// parameter gradients (same layout as the parameters).
  void Backward(int layer, const float* params, const LayerStash& stash,
                const std::vector<float>& grad_out, size_t batch,
                std::vector<float>* grad_in,
                std::vector<float>* grad_params) const override;

 private:
  MlpConfig config_;
};

}  // namespace angelptm::train

#endif  // ANGELPTM_TRAIN_MLP_H_
