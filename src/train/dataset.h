#ifndef ANGELPTM_TRAIN_DATASET_H_
#define ANGELPTM_TRAIN_DATASET_H_

#include <cstddef>
#include <vector>

#include "util/random.h"

namespace angelptm::train {

/// Synthetic regression task standing in for the paper's industrial text
/// corpus (DESIGN.md §1): a fixed randomly-initialized teacher network with
/// mild observation noise. Convergence comparisons (lock-free vs
/// synchronous) are relative, so the dataset identity does not matter; what
/// matters is that both runs see identical batches, which the seeded
/// generator guarantees.
class SyntheticRegression {
 public:
  /// Teacher: in_dim -> hidden (tanh) -> out_dim, weights from `seed`.
  SyntheticRegression(size_t in_dim, size_t hidden, size_t out_dim,
                      uint64_t seed, double noise_stddev = 0.01);

  size_t in_dim() const { return in_dim_; }
  size_t out_dim() const { return out_dim_; }

  /// Fills `x` (batch x in_dim) and `y` (batch x out_dim) with the next
  /// batch from `rng`.
  void GenBatch(util::Rng* rng, size_t batch, std::vector<float>* x,
                std::vector<float>* y) const;

  /// Advances `rng` exactly as `batches` GenBatch calls of size `batch`
  /// would, without materializing the data. Replays the dataset cursor when
  /// resuming from a checkpoint that recorded only a step count (v1 files);
  /// v2 checkpoints restore the Rng state directly and skip nothing.
  void SkipBatches(util::Rng* rng, size_t batch, long batches) const;

 private:
  void Teacher(const float* x, float* y) const;

  size_t in_dim_, hidden_, out_dim_;
  double noise_stddev_;
  std::vector<float> w1_, b1_, w2_, b2_;
};

}  // namespace angelptm::train

#endif  // ANGELPTM_TRAIN_DATASET_H_
