#include "train/simd/scratch.h"

#include <cstdlib>

#include "util/logging.h"

namespace angelptm::simd {
namespace {

struct SlotBuffer {
  float* data = nullptr;
  size_t capacity = 0;  // In floats.

  ~SlotBuffer() { std::free(data); }

  void Reserve(size_t floats) {
    if (capacity >= floats) return;
    // Geometric growth so alternating sizes don't thrash the allocator.
    size_t want = capacity == 0 ? 1024 : capacity;
    while (want < floats) want *= 2;
    std::free(data);
    // aligned_alloc requires the size to be a multiple of the alignment;
    // the power-of-two float counts above are always 64-byte multiples.
    data = static_cast<float*>(std::aligned_alloc(64, want * sizeof(float)));
    ANGEL_CHECK(data != nullptr) << "scratch allocation of " << want
                                 << " floats failed";
    capacity = want;
  }
};

SlotBuffer& Slot(ScratchSlot slot) {
  thread_local SlotBuffer buffers[kNumScratchSlots];
  return buffers[static_cast<int>(slot)];
}

}  // namespace

float* ThreadScratch(ScratchSlot slot, size_t floats) {
  SlotBuffer& buf = Slot(slot);
  buf.Reserve(floats);
  return buf.data;
}

size_t ThreadScratchCapacity(ScratchSlot slot) {
  return Slot(slot).capacity;
}

}  // namespace angelptm::simd
