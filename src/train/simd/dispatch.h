#ifndef ANGELPTM_TRAIN_SIMD_DISPATCH_H_
#define ANGELPTM_TRAIN_SIMD_DISPATCH_H_

namespace angelptm::simd {

/// Instruction-set paths the compute kernels can run on. `kScalar` is the
/// portable cache-blocked C++ path that exists on every platform; `kAvx2`
/// is the packed AVX2/FMA micro-kernel path (x86-64 only, compiled in a
/// single translation unit with -mavx2 -mfma).
enum class IsaPath { kScalar, kAvx2 };

/// The path the kernels dispatch to. Resolution order (first match wins):
///
///   1. A test/bench override installed via ScopedForceIsa.
///   2. The ANGELPTM_SIMD environment variable ("scalar" or "avx2"), read
///      once at first use. Requesting "avx2" on a host or build without
///      AVX2+FMA logs a warning and falls back to scalar — it never traps.
///   3. Runtime CPUID: AVX2+FMA present (and the AVX2 TU compiled in)
///      selects kAvx2, everything else selects kScalar.
///
/// The result of steps 2–3 is computed once and cached, so the dispatch
/// check on a kernel hot path is one relaxed atomic load and a compare.
IsaPath Dispatch();

/// True when `path` can actually execute on this host *and* was compiled
/// into this binary. kScalar is always supported.
bool Supported(IsaPath path);

/// "scalar" or "avx2" — stable strings for logs, JSON, and test names.
const char* IsaPathName(IsaPath path);

/// RAII dispatch override for tests and benches: forces Dispatch() to
/// return `path` for the object's lifetime (taking precedence over the
/// environment variable), then restores the previous state. Forcing an
/// unsupported path is a programming error; callers must check
/// Supported() first (the golden tests GTEST_SKIP instead). Not
/// thread-safe against concurrent ScopedForceIsa construction; kernels
/// already running keep the path they read.
class ScopedForceIsa {
 public:
  explicit ScopedForceIsa(IsaPath path);
  ~ScopedForceIsa();

  ScopedForceIsa(const ScopedForceIsa&) = delete;
  ScopedForceIsa& operator=(const ScopedForceIsa&) = delete;

 private:
  int previous_;  // Encoded override state (see dispatch.cc).
};

}  // namespace angelptm::simd

#endif  // ANGELPTM_TRAIN_SIMD_DISPATCH_H_
