#ifndef ANGELPTM_TRAIN_SIMD_SCRATCH_H_
#define ANGELPTM_TRAIN_SIMD_SCRATCH_H_

#include <cstddef>

namespace angelptm::simd {

/// Slots of the per-thread scratch arena. Each slot is an independent
/// reusable buffer; a kernel may hold several at once (the packed GEMM
/// holds an A-panel and a B-panel simultaneously).
enum class ScratchSlot { kPackA = 0, kPackB = 1, kTile = 2 };
inline constexpr int kNumScratchSlots = 3;

/// Returns a 64-byte-aligned, thread-local buffer of at least `floats`
/// floats for `slot`. The buffer is reused across calls on the same thread
/// and grows geometrically (never shrinks), so steady-state kernel inner
/// loops perform no allocation — a macro-tile's packing buffers are
/// amortized to a handful of mallocs per thread per process lifetime.
/// Contents are unspecified on entry. The pointer stays valid until the
/// next ThreadScratch call on the same thread with the same slot, or
/// thread exit.
float* ThreadScratch(ScratchSlot slot, size_t floats);

/// Capacity (in floats) currently held by this thread's `slot` buffer;
/// exposed for tests asserting the no-allocation steady state.
size_t ThreadScratchCapacity(ScratchSlot slot);

}  // namespace angelptm::simd

#endif  // ANGELPTM_TRAIN_SIMD_SCRATCH_H_
