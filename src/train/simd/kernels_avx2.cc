#include "train/simd/kernels_avx2.h"

// The only translation unit built with -mavx2 -mfma (scoped in
// src/CMakeLists.txt) and the only place <immintrin.h> may be included
// (enforced by scripts/lint.py rule `simd-include`). Everything here is a
// leaf function: no STL containers, no inline helpers from shared headers,
// so AVX2 codegen cannot escape into TUs that must stay runnable on
// pre-AVX2 hosts.

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <cfloat>
#include <cmath>
#include <cstring>

namespace angelptm::simd::avx2 {
namespace {

// ---- vector exp/tanh --------------------------------------------------
//
// Cephes-style exp polynomial (the classic avx_mathfun coefficients),
// ~2 ulp over the clamped range. tanh comes from exp via
// tanh(u) = (e^{2u} - 1) / (e^{2u} + 1), stable at both saturated ends
// because the exp argument is clamped.

inline __m256 Exp8(__m256 x) {
  const __m256 exp_hi = _mm256_set1_ps(88.3762626647950f);
  const __m256 exp_lo = _mm256_set1_ps(-88.3762626647949f);
  const __m256 log2ef = _mm256_set1_ps(1.44269504088896341f);
  const __m256 c1 = _mm256_set1_ps(0.693359375f);
  const __m256 c2 = _mm256_set1_ps(-2.12194440e-4f);
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 half = _mm256_set1_ps(0.5f);

  x = _mm256_min_ps(x, exp_hi);
  x = _mm256_max_ps(x, exp_lo);

  // Split x = fx * ln2 + r with fx integral.
  __m256 fx = _mm256_fmadd_ps(x, log2ef, half);
  fx = _mm256_floor_ps(fx);
  x = _mm256_fnmadd_ps(fx, c1, x);
  x = _mm256_fnmadd_ps(fx, c2, x);

  const __m256 z = _mm256_mul_ps(x, x);
  __m256 y = _mm256_set1_ps(1.9875691500e-4f);
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.3981999507e-3f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(8.3334519073e-3f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(4.1665795894e-2f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.6666665459e-1f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(5.0000001201e-1f));
  y = _mm256_fmadd_ps(y, z, x);
  y = _mm256_add_ps(y, one);

  // 2^fx via the float exponent field.
  const __m256i n = _mm256_cvtps_epi32(fx);
  const __m256i pow2n =
      _mm256_slli_epi32(_mm256_add_epi32(n, _mm256_set1_epi32(127)), 23);
  return _mm256_mul_ps(y, _mm256_castsi256_ps(pow2n));
}

inline __m256 Tanh8(__m256 u) {
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 e2 = Exp8(_mm256_add_ps(u, u));
  return _mm256_div_ps(_mm256_sub_ps(e2, one), _mm256_add_ps(e2, one));
}

// GeLU (tanh approximation) constants, matching train::kernels.cc.
inline __m256 GeluFwd8(__m256 x) {
  const __m256 c = _mm256_set1_ps(0.7978845608028654f);   // sqrt(2/pi)
  const __m256 a = _mm256_set1_ps(0.044715f);
  const __m256 half = _mm256_set1_ps(0.5f);
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 x2 = _mm256_mul_ps(x, x);
  const __m256 inner =
      _mm256_mul_ps(c, _mm256_fmadd_ps(_mm256_mul_ps(a, x2), x, x));
  const __m256 t = Tanh8(inner);
  return _mm256_mul_ps(_mm256_mul_ps(half, x), _mm256_add_ps(one, t));
}

// gelu'(x) = 0.5(1+t) + 0.5 x (1-t^2) c (1 + 3a x^2), t = tanh(inner).
inline __m256 GeluGrad8(__m256 x) {
  const __m256 c = _mm256_set1_ps(0.7978845608028654f);
  const __m256 a = _mm256_set1_ps(0.044715f);
  const __m256 three_a = _mm256_set1_ps(3.0f * 0.044715f);
  const __m256 half = _mm256_set1_ps(0.5f);
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 x2 = _mm256_mul_ps(x, x);
  const __m256 inner =
      _mm256_mul_ps(c, _mm256_fmadd_ps(_mm256_mul_ps(a, x2), x, x));
  const __m256 t = Tanh8(inner);
  const __m256 du = _mm256_mul_ps(c, _mm256_fmadd_ps(three_a, x2, one));
  const __m256 sech2 = _mm256_fnmadd_ps(t, t, one);  // 1 - t^2
  const __m256 lhs = _mm256_mul_ps(half, _mm256_add_ps(one, t));
  return _mm256_fmadd_ps(
      _mm256_mul_ps(_mm256_mul_ps(half, x), sech2), du, lhs);
}

// Deterministic horizontal sum: lanes converted to double and added in
// lane order (0..7), independent of how the vector was produced.
inline double HSumD(__m256 v) {
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, v);
  double total = 0.0;
  for (int i = 0; i < 8; ++i) total += double(lanes[i]);
  return total;
}

inline float HMax(__m256 v) {
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, v);
  float best = lanes[0];
  for (int i = 1; i < 8; ++i) best = lanes[i] > best ? lanes[i] : best;
  return best;
}

// Copies the <8 element tail into a padded lane buffer (rest = `fill`),
// so tails run through the exact same vector math as full blocks.
inline __m256 LoadTail(const float* p, size_t count, float fill) {
  alignas(32) float buf[8];
  for (size_t i = 0; i < 8; ++i) buf[i] = i < count ? p[i] : fill;
  return _mm256_load_ps(buf);
}

inline void StoreTail(float* p, size_t count, __m256 v) {
  alignas(32) float buf[8];
  _mm256_store_ps(buf, v);
  for (size_t i = 0; i < count; ++i) p[i] = buf[i];
}

// ---- GEMM micro-kernel ------------------------------------------------

// C_tile(6x16, leading dimension ldc) += panel_a * panel_b over kc steps.
// 12 accumulators + 2 B vectors + 1 A broadcast = 15 of 16 YMM registers.
void MicroKernel6x16(const float* pa, const float* pb, size_t kc, float* c,
                     size_t ldc) {
  __m256 c00 = _mm256_setzero_ps(), c01 = _mm256_setzero_ps();
  __m256 c10 = _mm256_setzero_ps(), c11 = _mm256_setzero_ps();
  __m256 c20 = _mm256_setzero_ps(), c21 = _mm256_setzero_ps();
  __m256 c30 = _mm256_setzero_ps(), c31 = _mm256_setzero_ps();
  __m256 c40 = _mm256_setzero_ps(), c41 = _mm256_setzero_ps();
  __m256 c50 = _mm256_setzero_ps(), c51 = _mm256_setzero_ps();
  for (size_t p = 0; p < kc; ++p) {
    const __m256 b0 = _mm256_load_ps(pb);
    const __m256 b1 = _mm256_load_ps(pb + 8);
    __m256 a;
    a = _mm256_broadcast_ss(pa + 0);
    c00 = _mm256_fmadd_ps(a, b0, c00);
    c01 = _mm256_fmadd_ps(a, b1, c01);
    a = _mm256_broadcast_ss(pa + 1);
    c10 = _mm256_fmadd_ps(a, b0, c10);
    c11 = _mm256_fmadd_ps(a, b1, c11);
    a = _mm256_broadcast_ss(pa + 2);
    c20 = _mm256_fmadd_ps(a, b0, c20);
    c21 = _mm256_fmadd_ps(a, b1, c21);
    a = _mm256_broadcast_ss(pa + 3);
    c30 = _mm256_fmadd_ps(a, b0, c30);
    c31 = _mm256_fmadd_ps(a, b1, c31);
    a = _mm256_broadcast_ss(pa + 4);
    c40 = _mm256_fmadd_ps(a, b0, c40);
    c41 = _mm256_fmadd_ps(a, b1, c41);
    a = _mm256_broadcast_ss(pa + 5);
    c50 = _mm256_fmadd_ps(a, b0, c50);
    c51 = _mm256_fmadd_ps(a, b1, c51);
    pa += kMr;
    pb += kNr;
  }
  float* r0 = c;
  float* r1 = c + ldc;
  float* r2 = c + 2 * ldc;
  float* r3 = c + 3 * ldc;
  float* r4 = c + 4 * ldc;
  float* r5 = c + 5 * ldc;
  _mm256_storeu_ps(r0, _mm256_add_ps(_mm256_loadu_ps(r0), c00));
  _mm256_storeu_ps(r0 + 8, _mm256_add_ps(_mm256_loadu_ps(r0 + 8), c01));
  _mm256_storeu_ps(r1, _mm256_add_ps(_mm256_loadu_ps(r1), c10));
  _mm256_storeu_ps(r1 + 8, _mm256_add_ps(_mm256_loadu_ps(r1 + 8), c11));
  _mm256_storeu_ps(r2, _mm256_add_ps(_mm256_loadu_ps(r2), c20));
  _mm256_storeu_ps(r2 + 8, _mm256_add_ps(_mm256_loadu_ps(r2 + 8), c21));
  _mm256_storeu_ps(r3, _mm256_add_ps(_mm256_loadu_ps(r3), c30));
  _mm256_storeu_ps(r3 + 8, _mm256_add_ps(_mm256_loadu_ps(r3 + 8), c31));
  _mm256_storeu_ps(r4, _mm256_add_ps(_mm256_loadu_ps(r4), c40));
  _mm256_storeu_ps(r4 + 8, _mm256_add_ps(_mm256_loadu_ps(r4 + 8), c41));
  _mm256_storeu_ps(r5, _mm256_add_ps(_mm256_loadu_ps(r5), c50));
  _mm256_storeu_ps(r5 + 8, _mm256_add_ps(_mm256_loadu_ps(r5 + 8), c51));
}

// Edge variant: runs the full-tile kernel into a zeroed local tile, then
// adds back only the valid mr x nr region. The padded packing lanes are
// zero, so the extra lanes contribute nothing.
void MicroKernelEdge(const float* pa, const float* pb, size_t kc, float* c,
                     size_t ldc, size_t mr, size_t nr) {
  alignas(32) float tile[kMr * kNr];
  std::memset(tile, 0, sizeof(tile));
  MicroKernel6x16(pa, pb, kc, tile, kNr);
  for (size_t r = 0; r < mr; ++r) {
    for (size_t j = 0; j < nr; ++j) c[r * ldc + j] += tile[r * kNr + j];
  }
}

}  // namespace

bool Compiled() { return true; }

void PackA(const float* a, size_t rs, size_t cs, size_t mc, size_t kc,
           float* out) {
  for (size_t ir = 0; ir < mc; ir += kMr) {
    const size_t mr = mc - ir < kMr ? mc - ir : kMr;
    const float* block = a + ir * rs;
    if (mr == kMr && rs == 1) {
      // Contiguous rows (the TransA orientation): each k-step is a
      // 6-float copy.
      for (size_t p = 0; p < kc; ++p) {
        const float* src = block + p * cs;
        out[0] = src[0];
        out[1] = src[1];
        out[2] = src[2];
        out[3] = src[3];
        out[4] = src[4];
        out[5] = src[5];
        out += kMr;
      }
      continue;
    }
    for (size_t p = 0; p < kc; ++p) {
      const float* src = block + p * cs;
      size_t r = 0;
      for (; r < mr; ++r) out[r] = src[r * rs];
      for (; r < kMr; ++r) out[r] = 0.0f;
      out += kMr;
    }
  }
}

void PackB(const float* b, size_t rs, size_t cs, size_t kc, size_t nc,
           float* out) {
  for (size_t jr = 0; jr < nc; jr += kNr) {
    const size_t nr = nc - jr < kNr ? nc - jr : kNr;
    const float* block = b + jr * cs;
    if (nr == kNr && cs == 1) {
      // Contiguous columns (the untransposed orientation): two vector
      // copies per k-step.
      for (size_t p = 0; p < kc; ++p) {
        const float* src = block + p * rs;
        _mm256_store_ps(out, _mm256_loadu_ps(src));
        _mm256_store_ps(out + 8, _mm256_loadu_ps(src + 8));
        out += kNr;
      }
      continue;
    }
    for (size_t p = 0; p < kc; ++p) {
      const float* src = block + p * rs;
      size_t j = 0;
      for (; j < nr; ++j) out[j] = src[j * cs];
      for (; j < kNr; ++j) out[j] = 0.0f;
      out += kNr;
    }
  }
}

void MacroKernel(const float* packed_a, const float* packed_b, float* c,
                 size_t ldc, size_t mc, size_t kc, size_t nc) {
  for (size_t jr = 0; jr < nc; jr += kNr) {
    const size_t nr = nc - jr < kNr ? nc - jr : kNr;
    const float* pb = packed_b + (jr / kNr) * kNr * kc;
    for (size_t ir = 0; ir < mc; ir += kMr) {
      const size_t mr = mc - ir < kMr ? mc - ir : kMr;
      const float* pa = packed_a + (ir / kMr) * kMr * kc;
      float* tile = c + ir * ldc + jr;
      if (mr == kMr && nr == kNr) {
        MicroKernel6x16(pa, pb, kc, tile, ldc);
      } else {
        MicroKernelEdge(pa, pb, kc, tile, ldc, mr, nr);
      }
    }
  }
}

void GeluBlock(const float* x, float* y, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, GeluFwd8(_mm256_loadu_ps(x + i)));
  }
  if (i < n) StoreTail(y + i, n - i, GeluFwd8(LoadTail(x + i, n - i, 0.0f)));
}

void GeluBackwardBlock(const float* x, const float* dy, float* dx,
                       size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 g = GeluGrad8(_mm256_loadu_ps(x + i));
    _mm256_storeu_ps(dx + i, _mm256_mul_ps(_mm256_loadu_ps(dy + i), g));
  }
  if (i < n) {
    const __m256 g = GeluGrad8(LoadTail(x + i, n - i, 0.0f));
    StoreTail(dx + i, n - i,
              _mm256_mul_ps(LoadTail(dy + i, n - i, 0.0f), g));
  }
}

void AddBiasGeluRows(float* z, const float* bias, float* y, size_t rows,
                     size_t n) {
  for (size_t r = 0; r < rows; ++r) {
    float* z_row = z + r * n;
    float* y_row = y + r * n;
    size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      const __m256 zj = _mm256_add_ps(_mm256_loadu_ps(z_row + j),
                                      _mm256_loadu_ps(bias + j));
      _mm256_storeu_ps(z_row + j, zj);
      _mm256_storeu_ps(y_row + j, GeluFwd8(zj));
    }
    if (j < n) {
      const size_t tail = n - j;
      const __m256 zj = _mm256_add_ps(LoadTail(z_row + j, tail, 0.0f),
                                      LoadTail(bias + j, tail, 0.0f));
      StoreTail(z_row + j, tail, zj);
      StoreTail(y_row + j, tail, GeluFwd8(zj));
    }
  }
}

void AddBiasGeluBackwardCols(const float* z, const float* dy, float* dz,
                             float* dbias, size_t m, size_t n, size_t j0,
                             size_t j1) {
  for (size_t j = j0; j < j1; ++j) dbias[j] = 0.0f;
  for (size_t i = 0; i < m; ++i) {
    const float* z_row = z + i * n;
    const float* dy_row = dy + i * n;
    float* dz_row = dz + i * n;
    size_t j = j0;
    for (; j + 8 <= j1; j += 8) {
      const __m256 g = GeluGrad8(_mm256_loadu_ps(z_row + j));
      const __m256 d = _mm256_mul_ps(_mm256_loadu_ps(dy_row + j), g);
      _mm256_storeu_ps(dz_row + j, d);
      _mm256_storeu_ps(dbias + j,
                       _mm256_add_ps(_mm256_loadu_ps(dbias + j), d));
    }
    if (j < j1) {
      const size_t tail = j1 - j;
      const __m256 g = GeluGrad8(LoadTail(z_row + j, tail, 0.0f));
      const __m256 d = _mm256_mul_ps(LoadTail(dy_row + j, tail, 0.0f), g);
      StoreTail(dz_row + j, tail, d);
      StoreTail(dbias + j, tail,
                _mm256_add_ps(LoadTail(dbias + j, tail, 0.0f), d));
    }
  }
}

void LayerNormRows(const float* x, const float* gamma, const float* beta,
                   float* y, float* mean, float* rstd, size_t rows,
                   size_t n) {
  const double eps = 1e-5;
  for (size_t r = 0; r < rows; ++r) {
    const float* row = x + r * n;
    __m256 acc = _mm256_setzero_ps();
    size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      acc = _mm256_add_ps(acc, _mm256_loadu_ps(row + j));
    }
    if (j < n) acc = _mm256_add_ps(acc, LoadTail(row + j, n - j, 0.0f));
    const double mu = HSumD(acc) / double(n);

    const __m256 vmu = _mm256_set1_ps(float(mu));
    __m256 vacc = _mm256_setzero_ps();
    j = 0;
    for (; j + 8 <= n; j += 8) {
      const __m256 d = _mm256_sub_ps(_mm256_loadu_ps(row + j), vmu);
      vacc = _mm256_fmadd_ps(d, d, vacc);
    }
    if (j < n) {
      // Padding with mu makes the padded lanes' deviation exactly zero.
      const __m256 d =
          _mm256_sub_ps(LoadTail(row + j, n - j, float(mu)), vmu);
      vacc = _mm256_fmadd_ps(d, d, vacc);
    }
    const double var = HSumD(vacc) / double(n);
    const double rs = 1.0 / std::sqrt(var + eps);
    mean[r] = float(mu);
    rstd[r] = float(rs);

    const __m256 vrs = _mm256_set1_ps(float(rs));
    float* out = y + r * n;
    j = 0;
    for (; j + 8 <= n; j += 8) {
      const __m256 xhat = _mm256_mul_ps(
          _mm256_sub_ps(_mm256_loadu_ps(row + j), vmu), vrs);
      _mm256_storeu_ps(out + j,
                       _mm256_fmadd_ps(xhat, _mm256_loadu_ps(gamma + j),
                                       _mm256_loadu_ps(beta + j)));
    }
    for (; j < n; ++j) {
      out[j] = (row[j] - float(mu)) * float(rs) * gamma[j] + beta[j];
    }
  }
}

void LayerNormBackwardRows(const float* x, const float* gamma,
                           const float* dy, const float* mean,
                           const float* rstd, float* dx, float* pgamma,
                           float* pbeta, size_t rows, size_t n) {
  for (size_t r = 0; r < rows; ++r) {
    const float* x_row = x + r * n;
    const float* dy_row = dy + r * n;
    float* dx_row = dx + r * n;
    const float mu = mean[r];
    const float rs = rstd[r];
    const __m256 vmu = _mm256_set1_ps(mu);
    const __m256 vrs = _mm256_set1_ps(rs);

    __m256 acc_dyh = _mm256_setzero_ps();
    __m256 acc_dyh_xhat = _mm256_setzero_ps();
    size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      const __m256 xv = _mm256_loadu_ps(x_row + j);
      const __m256 dyv = _mm256_loadu_ps(dy_row + j);
      const __m256 xhat = _mm256_mul_ps(_mm256_sub_ps(xv, vmu), vrs);
      const __m256 dyh = _mm256_mul_ps(dyv, _mm256_loadu_ps(gamma + j));
      acc_dyh = _mm256_add_ps(acc_dyh, dyh);
      acc_dyh_xhat = _mm256_fmadd_ps(dyh, xhat, acc_dyh_xhat);
      _mm256_storeu_ps(
          pgamma + j,
          _mm256_fmadd_ps(dyv, xhat, _mm256_loadu_ps(pgamma + j)));
      _mm256_storeu_ps(pbeta + j,
                       _mm256_add_ps(_mm256_loadu_ps(pbeta + j), dyv));
    }
    double sum_dyh = HSumD(acc_dyh);
    double sum_dyh_xhat = HSumD(acc_dyh_xhat);
    for (; j < n; ++j) {
      const float xhat = (x_row[j] - mu) * rs;
      const float dyh = dy_row[j] * gamma[j];
      sum_dyh += double(dyh);
      sum_dyh_xhat += double(dyh) * xhat;
      pgamma[j] += dy_row[j] * xhat;
      pbeta[j] += dy_row[j];
    }

    const __m256 s1 = _mm256_set1_ps(float(sum_dyh / double(n)));
    const __m256 s2 = _mm256_set1_ps(float(sum_dyh_xhat / double(n)));
    j = 0;
    for (; j + 8 <= n; j += 8) {
      const __m256 xv = _mm256_loadu_ps(x_row + j);
      const __m256 xhat = _mm256_mul_ps(_mm256_sub_ps(xv, vmu), vrs);
      const __m256 dyh = _mm256_mul_ps(_mm256_loadu_ps(dy_row + j),
                                       _mm256_loadu_ps(gamma + j));
      const __m256 inner =
          _mm256_fnmadd_ps(xhat, s2, _mm256_sub_ps(dyh, s1));
      _mm256_storeu_ps(dx_row + j, _mm256_mul_ps(vrs, inner));
    }
    for (; j < n; ++j) {
      const float xhat = (x_row[j] - mu) * rs;
      const float dyh = dy_row[j] * gamma[j];
      dx_row[j] = rs * (dyh - float(sum_dyh / double(n)) -
                        xhat * float(sum_dyh_xhat / double(n)));
    }
  }
}

double SoftmaxXentRows(const float* logits, const int* labels, float* grad,
                       size_t rows, size_t n, double inv_m) {
  double loss = 0.0;
  const float neg_huge = -FLT_MAX;
  for (size_t r = 0; r < rows; ++r) {
    const float* row = logits + r * n;
    float* grad_row = grad + r * n;

    __m256 vmax = _mm256_set1_ps(neg_huge);
    size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      vmax = _mm256_max_ps(vmax, _mm256_loadu_ps(row + j));
    }
    if (j < n) {
      vmax = _mm256_max_ps(vmax, LoadTail(row + j, n - j, neg_huge));
    }
    const float max_logit = HMax(vmax);

    // exp(x - max) is stored into grad as the staging buffer; padded tail
    // lanes use a very negative argument so their exp is ~0.
    const __m256 vm = _mm256_set1_ps(max_logit);
    __m256 acc = _mm256_setzero_ps();
    j = 0;
    for (; j + 8 <= n; j += 8) {
      const __m256 e = Exp8(_mm256_sub_ps(_mm256_loadu_ps(row + j), vm));
      _mm256_storeu_ps(grad_row + j, e);
      acc = _mm256_add_ps(acc, e);
    }
    if (j < n) {
      const size_t tail = n - j;
      const __m256 e =
          Exp8(_mm256_sub_ps(LoadTail(row + j, tail, neg_huge), vm));
      StoreTail(grad_row + j, tail, e);
      // Lanes beyond `tail` hold exp(~ -inf) ~= 0; add the vector whole —
      // the padding contributes (denormal) zeros.
      acc = _mm256_add_ps(acc, e);
    }
    const double denom = HSumD(acc);

    const int label = labels[r];
    loss += -(double(row[label]) - double(max_logit) - std::log(denom));

    const __m256 vdenom = _mm256_set1_ps(float(denom));
    const __m256 vinv_m = _mm256_set1_ps(float(inv_m));
    j = 0;
    for (; j + 8 <= n; j += 8) {
      const __m256 p = _mm256_div_ps(_mm256_loadu_ps(grad_row + j), vdenom);
      _mm256_storeu_ps(grad_row + j, _mm256_mul_ps(p, vinv_m));
    }
    for (; j < n; ++j) {
      grad_row[j] = grad_row[j] / float(denom) * float(inv_m);
    }
    grad_row[label] -= float(inv_m);
  }
  return loss;
}

void AdamUpdateBlock(float* params, float* m, float* v, const float* grads,
                     size_t begin, size_t end, float lr, float beta1,
                     float beta2, float epsilon, float weight_decay,
                     float inv_bc1, float inv_bc2) {
  const float omb1 = 1.0f - beta1;
  const float omb2 = 1.0f - beta2;
  // Scalar lane mirroring the vector math op-for-op (fmaf == vfmadd,
  // sqrtf/division are IEEE-exact), so head/tail elements compute the
  // same bits the vector loop would — any partition of the range yields
  // bitwise identical results.
  auto scalar_lane = [&](size_t i) {
    float g = grads[i];
    if (weight_decay != 0.0f) g = fmaf(weight_decay, params[i], g);
    const float mi = fmaf(beta1, m[i], omb1 * g);
    const float vi = fmaf(beta2, v[i], omb2 * (g * g));
    m[i] = mi;
    v[i] = vi;
    const float m_hat = mi * inv_bc1;
    const float v_hat = vi * inv_bc2;
    params[i] -= (lr * m_hat) / (sqrtf(v_hat) + epsilon);
  };

  // Align the vector loop to absolute 8-element blocks.
  size_t i = begin;
  const size_t aligned_begin = (begin + 7) & ~size_t(7);
  const size_t head_end = aligned_begin < end ? aligned_begin : end;
  for (; i < head_end; ++i) scalar_lane(i);
  const size_t vec_end = i + ((end - i) & ~size_t(7));

  const __m256 vb1 = _mm256_set1_ps(beta1);
  const __m256 vb2 = _mm256_set1_ps(beta2);
  const __m256 vomb1 = _mm256_set1_ps(omb1);
  const __m256 vomb2 = _mm256_set1_ps(omb2);
  const __m256 vlr = _mm256_set1_ps(lr);
  const __m256 veps = _mm256_set1_ps(epsilon);
  const __m256 vwd = _mm256_set1_ps(weight_decay);
  const __m256 vibc1 = _mm256_set1_ps(inv_bc1);
  const __m256 vibc2 = _mm256_set1_ps(inv_bc2);
  const bool has_wd = weight_decay != 0.0f;
  for (; i < vec_end; i += 8) {
    __m256 g = _mm256_loadu_ps(grads + i);
    const __m256 p = _mm256_loadu_ps(params + i);
    if (has_wd) g = _mm256_fmadd_ps(vwd, p, g);
    const __m256 mi =
        _mm256_fmadd_ps(vb1, _mm256_loadu_ps(m + i), _mm256_mul_ps(vomb1, g));
    const __m256 vi = _mm256_fmadd_ps(
        vb2, _mm256_loadu_ps(v + i), _mm256_mul_ps(vomb2, _mm256_mul_ps(g, g)));
    _mm256_storeu_ps(m + i, mi);
    _mm256_storeu_ps(v + i, vi);
    const __m256 m_hat = _mm256_mul_ps(mi, vibc1);
    const __m256 v_hat = _mm256_mul_ps(vi, vibc2);
    const __m256 denom = _mm256_add_ps(_mm256_sqrt_ps(v_hat), veps);
    const __m256 upd = _mm256_div_ps(_mm256_mul_ps(vlr, m_hat), denom);
    _mm256_storeu_ps(params + i, _mm256_sub_ps(p, upd));
  }
  for (; i < end; ++i) scalar_lane(i);
}

}  // namespace angelptm::simd::avx2

#else  // !(__AVX2__ && __FMA__)

#include <cstdio>
#include <cstdlib>

// Stub definitions so the library links on builds without AVX2 support.
// Dispatch() never selects kAvx2 when Compiled() is false, so reaching a
// stub is a programming error, not a runtime condition.

namespace angelptm::simd::avx2 {
namespace {

[[noreturn]] void Unavailable(const char* fn) {
  std::fprintf(stderr,
               "angelptm: simd::avx2::%s called but AVX2 kernels were not "
               "compiled into this binary\n",
               fn);
  std::abort();
}

}  // namespace

bool Compiled() { return false; }

void PackA(const float*, size_t, size_t, size_t, size_t, float*) {
  Unavailable("PackA");
}
void PackB(const float*, size_t, size_t, size_t, size_t, float*) {
  Unavailable("PackB");
}
void MacroKernel(const float*, const float*, float*, size_t, size_t, size_t,
                 size_t) {
  Unavailable("MacroKernel");
}
void GeluBlock(const float*, float*, size_t) { Unavailable("GeluBlock"); }
void GeluBackwardBlock(const float*, const float*, float*, size_t) {
  Unavailable("GeluBackwardBlock");
}
void AddBiasGeluRows(float*, const float*, float*, size_t, size_t) {
  Unavailable("AddBiasGeluRows");
}
void AddBiasGeluBackwardCols(const float*, const float*, float*, float*,
                             size_t, size_t, size_t, size_t) {
  Unavailable("AddBiasGeluBackwardCols");
}
void LayerNormRows(const float*, const float*, const float*, float*, float*,
                   float*, size_t, size_t) {
  Unavailable("LayerNormRows");
}
void LayerNormBackwardRows(const float*, const float*, const float*,
                           const float*, const float*, float*, float*,
                           float*, size_t, size_t) {
  Unavailable("LayerNormBackwardRows");
}
double SoftmaxXentRows(const float*, const int*, float*, size_t, size_t,
                       double) {
  Unavailable("SoftmaxXentRows");
}
void AdamUpdateBlock(float*, float*, float*, const float*, size_t, size_t,
                     float, float, float, float, float, float, float) {
  Unavailable("AdamUpdateBlock");
}

}  // namespace angelptm::simd::avx2

#endif  // __AVX2__ && __FMA__
