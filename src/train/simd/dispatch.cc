#include "train/simd/dispatch.h"

#include <atomic>
#include <string>

#include "train/simd/kernels_avx2.h"
#include "util/env_override.h"
#include "util/logging.h"

namespace angelptm::simd {
namespace {

bool CpuHasAvx2Fma() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

/// Override slot: -1 = none, otherwise an IsaPath value. Only tests and
/// benches write it (via ScopedForceIsa); kernels read it relaxed.
std::atomic<int> g_force_override{-1};

/// Env + CPUID resolution, computed once. -1 = not yet resolved.
std::atomic<int> g_resolved{-1};

IsaPath ResolveFromEnvAndCpu() {
  const bool avx2_ok = avx2::Compiled() && CpuHasAvx2Fma();
  // Precedence (util::EnvOverride contract): the ScopedForceIsa test
  // override in Dispatch() beats this env lookup, which beats CPU detection.
  if (util::EnvIsSet("ANGELPTM_SIMD")) {
    const std::string env = util::EnvStringOr("ANGELPTM_SIMD", "");
    if (env == "scalar") return IsaPath::kScalar;
    if (env == "avx2") {
      if (avx2_ok) return IsaPath::kAvx2;
      ANGEL_LOG(Warning) << "ANGELPTM_SIMD=avx2 requested but AVX2+FMA is "
                         << (avx2::Compiled() ? "not supported by this CPU"
                                              : "not compiled into this binary")
                         << "; falling back to the scalar path";
      return IsaPath::kScalar;
    }
    ANGEL_LOG(Warning) << "unknown ANGELPTM_SIMD value \"" << env
                       << "\" (expected \"scalar\" or \"avx2\"); using "
                       << "runtime CPU detection";
  }
  return avx2_ok ? IsaPath::kAvx2 : IsaPath::kScalar;
}

}  // namespace

IsaPath Dispatch() {
  const int forced = g_force_override.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<IsaPath>(forced);
  int resolved = g_resolved.load(std::memory_order_relaxed);
  if (resolved < 0) {
    resolved = static_cast<int>(ResolveFromEnvAndCpu());
    g_resolved.store(resolved, std::memory_order_relaxed);
  }
  return static_cast<IsaPath>(resolved);
}

bool Supported(IsaPath path) {
  switch (path) {
    case IsaPath::kScalar:
      return true;
    case IsaPath::kAvx2:
      return avx2::Compiled() && CpuHasAvx2Fma();
  }
  return false;
}

const char* IsaPathName(IsaPath path) {
  return path == IsaPath::kAvx2 ? "avx2" : "scalar";
}

ScopedForceIsa::ScopedForceIsa(IsaPath path)
    : previous_(g_force_override.exchange(static_cast<int>(path),
                                          std::memory_order_relaxed)) {}

ScopedForceIsa::~ScopedForceIsa() {
  g_force_override.store(previous_, std::memory_order_relaxed);
}

}  // namespace angelptm::simd
