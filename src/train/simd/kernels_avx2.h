#ifndef ANGELPTM_TRAIN_SIMD_KERNELS_AVX2_H_
#define ANGELPTM_TRAIN_SIMD_KERNELS_AVX2_H_

#include <cstddef>

namespace angelptm::simd::avx2 {

/// AVX2/FMA leaf kernels. This header is plain C++ and can be included
/// anywhere; only kernels_avx2.cc is compiled with -mavx2 -mfma, and it
/// deliberately contains *leaf* block functions with C-like signatures —
/// no STL, no shared inline helpers — so no AVX2 code can leak into other
/// translation units through inline-function comdat folding. Callers must
/// route through simd::Dispatch(): invoking any of these when
/// `Supported(IsaPath::kAvx2)` is false is a programming error (the stubs
/// abort).
///
/// The packed GEMM splits into PackA/PackB/MacroKernel so the macro-tile
/// grid loop (and its util::ParallelFor integration) lives in
/// train/kernels.cc with the scalar path; see DESIGN.md §11 for the
/// layout.

/// True when this binary contains the real AVX2 implementations (x86-64
/// build with a compiler that accepted -mavx2 -mfma), false when the TU
/// compiled as stubs.
bool Compiled();

/// Micro-tile geometry: each micro-kernel invocation computes a
/// kMr x kNr block of C with 12 YMM accumulators (kNr = two 8-float
/// vectors).
inline constexpr size_t kMr = 6;
inline constexpr size_t kNr = 16;

/// Packs the mc x kc block of A whose (row, col) element lives at
/// a[row * rs + col * cs] into micro-panels of kMr rows: panel t holds
/// rows [t*kMr, t*kMr + kMr) stored column-major (kMr consecutive floats
/// per k-step), zero-padded past mc. `out` needs
/// RoundUp(mc, kMr) * kc floats. Transposed GEMM operands are handled
/// here, by strides, so the micro-kernel only ever sees one layout.
void PackA(const float* a, size_t rs, size_t cs, size_t mc, size_t kc,
           float* out);

/// Packs the kc x nc block of B (element (row, col) at
/// b[row * rs + col * cs]) into micro-panels of kNr columns: panel u holds
/// columns [u*kNr, u*kNr + kNr) as kNr consecutive floats per k-step,
/// zero-padded past nc. `out` needs kc * RoundUp(nc, kNr) floats.
void PackB(const float* b, size_t rs, size_t cs, size_t kc, size_t nc,
           float* out);

/// C[0:mc, 0:nc] += packed_a * packed_b, where C has leading dimension
/// ldc. Iterates the micro-tile grid; edge tiles spill through a local
/// kMr x kNr buffer. Callers zero (or pre-load) C themselves.
void MacroKernel(const float* packed_a, const float* packed_b, float* c,
                 size_t ldc, size_t mc, size_t kc, size_t nc);

/// y[i] = gelu(x[i]) (tanh approximation via a vectorized exp polynomial;
/// matches the scalar double-precision reference to ~1e-6 absolute for
/// |x| <= 10, pinned by kernel_golden_test).
void GeluBlock(const float* x, float* y, size_t n);

/// dx[i] = dy[i] * gelu'(x[i]).
void GeluBackwardBlock(const float* x, const float* dy, float* dx, size_t n);

/// Fused bias + GeLU over `rows` rows of width n: z += bias (in place,
/// stashing the pre-activation), y = gelu(z).
void AddBiasGeluRows(float* z, const float* bias, float* y, size_t rows,
                     size_t n);

/// Column slice [j0, j1) of the fused backward: dz = dy * gelu'(z) and
/// dbias[j] = sum over all m rows of dz[., j]. dbias[j0, j1) is zeroed
/// then overwritten; the caller owns the column partition, so slices never
/// overlap.
void AddBiasGeluBackwardCols(const float* z, const float* dy, float* dz,
                             float* dbias, size_t m, size_t n, size_t j0,
                             size_t j1);

/// Row-wise LayerNorm over `rows` rows (pointers pre-offset to the first
/// row of the chunk; mean/rstd likewise).
void LayerNormRows(const float* x, const float* gamma, const float* beta,
                   float* y, float* mean, float* rstd, size_t rows, size_t n);

/// Backward LayerNorm over `rows` rows: writes dx and *accumulates* the
/// column reductions into pgamma/pbeta (size n, the caller's per-chunk
/// partial buffers, which must start zeroed).
void LayerNormBackwardRows(const float* x, const float* gamma,
                           const float* dy, const float* mean,
                           const float* rstd, float* dx, float* pgamma,
                           float* pbeta, size_t rows, size_t n);

/// Softmax cross-entropy over `rows` rows (pointers pre-offset): fills
/// grad with (softmax - onehot) * inv_m and returns the *sum* of per-row
/// losses (the caller divides by the total row count).
double SoftmaxXentRows(const float* logits, const int* labels, float* grad,
                       size_t rows, size_t n, double inv_m);

/// Adam over absolute element range [begin, end) of the full arrays. The
/// vector loop is aligned to absolute 8-element blocks and the head/tail
/// scalars mirror the vector math op-for-op (fmaf/sqrtf), so any
/// partition of [0, count) — hence any thread count — produces bitwise
/// identical results. inv_bc1/inv_bc2 are the reciprocal bias
/// corrections.
void AdamUpdateBlock(float* params, float* m, float* v, const float* grads,
                     size_t begin, size_t end, float lr, float beta1,
                     float beta2, float epsilon, float weight_decay,
                     float inv_bc1, float inv_bc2);

}  // namespace angelptm::simd::avx2

#endif  // ANGELPTM_TRAIN_SIMD_KERNELS_AVX2_H_
