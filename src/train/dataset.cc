#include "train/dataset.h"

#include <cmath>

namespace angelptm::train {

SyntheticRegression::SyntheticRegression(size_t in_dim, size_t hidden,
                                         size_t out_dim, uint64_t seed,
                                         double noise_stddev)
    : in_dim_(in_dim),
      hidden_(hidden),
      out_dim_(out_dim),
      noise_stddev_(noise_stddev) {
  util::Rng rng(seed);
  w1_.resize(in_dim * hidden);
  b1_.resize(hidden);
  w2_.resize(hidden * out_dim);
  b2_.resize(out_dim);
  rng.FillGaussian(&w1_, 1.0 / std::sqrt(double(in_dim)));
  rng.FillGaussian(&b1_, 0.1);
  rng.FillGaussian(&w2_, 1.0 / std::sqrt(double(hidden)));
  rng.FillGaussian(&b2_, 0.1);
}

void SyntheticRegression::Teacher(const float* x, float* y) const {
  std::vector<float> h(hidden_);
  for (size_t j = 0; j < hidden_; ++j) {
    double sum = b1_[j];
    for (size_t i = 0; i < in_dim_; ++i) {
      sum += double(x[i]) * w1_[i * hidden_ + j];
    }
    h[j] = float(std::tanh(sum));
  }
  for (size_t k = 0; k < out_dim_; ++k) {
    double sum = b2_[k];
    for (size_t j = 0; j < hidden_; ++j) {
      sum += double(h[j]) * w2_[j * out_dim_ + k];
    }
    y[k] = float(sum);
  }
}

void SyntheticRegression::GenBatch(util::Rng* rng, size_t batch,
                                   std::vector<float>* x,
                                   std::vector<float>* y) const {
  x->resize(batch * in_dim_);
  y->resize(batch * out_dim_);
  for (size_t b = 0; b < batch; ++b) {
    for (size_t i = 0; i < in_dim_; ++i) {
      (*x)[b * in_dim_ + i] = float(rng->NextGaussian());
    }
    Teacher(x->data() + b * in_dim_, y->data() + b * out_dim_);
    for (size_t k = 0; k < out_dim_; ++k) {
      (*y)[b * out_dim_ + k] += float(rng->NextGaussian() * noise_stddev_);
    }
  }
}

void SyntheticRegression::SkipBatches(util::Rng* rng, size_t batch,
                                      long batches) const {
  // GenBatch's draws all go through NextGaussian, whose Box-Muller pairing
  // makes the number of raw Next() calls data-dependent — so the only exact
  // replay is to regenerate the batches and discard them.
  std::vector<float> x, y;
  for (long i = 0; i < batches; ++i) GenBatch(rng, batch, &x, &y);
}

}  // namespace angelptm::train
