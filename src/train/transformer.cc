#include "train/transformer.h"

#include <cmath>
#include <cstring>

#include "train/kernels.h"
#include "util/logging.h"
#include "util/parallel_for.h"

namespace angelptm::train {
namespace {

/// Parameter slice offsets within one block (see header for the layout).
struct BlockOffsets {
  size_t wq, wk, wv, wo;
  size_t ln1_gamma, ln1_beta;
  size_t w1, b1, w2, b2;
  size_t ln2_gamma, ln2_beta;
  size_t total;
};

BlockOffsets ComputeOffsets(size_t d, size_t f) {
  BlockOffsets o;
  size_t at = 0;
  o.wq = at, at += d * d;
  o.wk = at, at += d * d;
  o.wv = at, at += d * d;
  o.wo = at, at += d * d;
  o.ln1_gamma = at, at += d;
  o.ln1_beta = at, at += d;
  o.w1 = at, at += d * f;
  o.b1 = at, at += f;
  o.w2 = at, at += f * d;
  o.b2 = at, at += d;
  o.ln2_gamma = at, at += d;
  o.ln2_beta = at, at += d;
  o.total = at;
  return o;
}

/// Stash slot indices for a block.
enum BlockStash {
  kMean1 = 0,
  kRstd1,
  kH1,
  kQ,
  kK,
  kV,
  kProbs,
  kConcat,
  kX2,
  kMean2,
  kRstd2,
  kH2,
  kPreGelu,
  kGelu,
  kNumBlockStash,
};

}  // namespace

TinyTransformer::TinyTransformer(const TransformerConfig& config)
    : config_(config) {
  ANGEL_CHECK(config_.d_model % config_.num_heads == 0)
      << "d_model must divide into heads";
  ANGEL_CHECK(config_.num_blocks >= 1);
}

size_t TinyTransformer::LayerParamCount(int layer) const {
  if (IsHead(layer)) {
    return config_.d_model * config_.out_dim + config_.out_dim;
  }
  return ComputeOffsets(config_.d_model, config_.d_ffn).total;
}

std::vector<float> TinyTransformer::InitLayerParams(int layer,
                                                    util::Rng* rng) const {
  const size_t d = config_.d_model, f = config_.d_ffn;
  std::vector<float> params(LayerParamCount(layer), 0.0f);
  if (IsHead(layer)) {
    const double stddev = 1.0 / std::sqrt(double(d));
    for (size_t i = 0; i < d * config_.out_dim; ++i) {
      params[i] = float(rng->NextGaussian() * stddev);
    }
    return params;  // Bias zero.
  }
  const BlockOffsets o = ComputeOffsets(d, f);
  auto fill = [&](size_t offset, size_t count, double stddev) {
    for (size_t i = 0; i < count; ++i) {
      params[offset + i] = float(rng->NextGaussian() * stddev);
    }
  };
  const double attn_std = 1.0 / std::sqrt(double(d));
  fill(o.wq, d * d, attn_std);
  fill(o.wk, d * d, attn_std);
  fill(o.wv, d * d, attn_std);
  fill(o.wo, d * d, attn_std);
  fill(o.w1, d * f, std::sqrt(2.0 / double(d)));
  fill(o.w2, f * d, std::sqrt(2.0 / double(f)));
  // LayerNorm gains start at 1.
  for (size_t i = 0; i < d; ++i) {
    params[o.ln1_gamma + i] = 1.0f;
    params[o.ln2_gamma + i] = 1.0f;
  }
  return params;
}

void TinyTransformer::Forward(int layer, const float* params,
                              const std::vector<float>& in, size_t batch,
                              std::vector<float>* out,
                              LayerStash* stash) const {
  if (IsHead(layer)) {
    HeadForward(params, in, batch, out, stash);
  } else {
    BlockForward(params, in, batch, out, stash);
  }
}

void TinyTransformer::Backward(int layer, const float* params,
                               const LayerStash& stash,
                               const std::vector<float>& grad_out,
                               size_t batch, std::vector<float>* grad_in,
                               std::vector<float>* grad_params) const {
  if (IsHead(layer)) {
    HeadBackward(params, stash, grad_out, batch, grad_in, grad_params);
  } else {
    BlockBackward(params, stash, grad_out, batch, grad_in, grad_params);
  }
}

void TinyTransformer::Attention(const float* q, const float* k,
                                const float* v, size_t batch,
                                std::vector<float>* concat_out,
                                std::vector<float>* probs) const {
  const size_t s = config_.seq_len, d = config_.d_model,
               heads = config_.num_heads, dh = d / heads;
  const double scale = 1.0 / std::sqrt(double(dh));
  concat_out->assign(batch * s * d, 0.0f);
  probs->assign(batch * heads * s * s, 0.0f);

  // Each (sample, head) pair touches disjoint slices of probs/concat_out,
  // so the flattened loop parallelizes without synchronization.
  float* concat_base = concat_out->data();
  float* probs_base = probs->data();
  util::ParallelFor(util::ComputePool(), 0, batch * heads, 1, [&](size_t lo,
                                                                 size_t hi) {
    for (size_t bh = lo; bh < hi; ++bh) {
      const size_t b = bh / heads;
      const size_t head = bh % heads;
      float* p = probs_base + (b * heads + head) * s * s;
      // Causal scores + row softmax.
      for (size_t i = 0; i < s; ++i) {
        const float* qi = q + (b * s + i) * d + head * dh;
        double max_score = -1e30;
        std::vector<double> scores(i + 1);
        for (size_t j = 0; j <= i; ++j) {  // Causal: only j <= i.
          const float* kj = k + (b * s + j) * d + head * dh;
          double dot = 0;
          for (size_t c = 0; c < dh; ++c) dot += double(qi[c]) * kj[c];
          scores[j] = dot * scale;
          max_score = std::max(max_score, scores[j]);
        }
        double denom = 0;
        for (size_t j = 0; j <= i; ++j) {
          scores[j] = std::exp(scores[j] - max_score);
          denom += scores[j];
        }
        for (size_t j = 0; j <= i; ++j) {
          p[i * s + j] = float(scores[j] / denom);
        }
        // Weighted sum of values.
        float* oi = concat_base + (b * s + i) * d + head * dh;
        for (size_t j = 0; j <= i; ++j) {
          const float* vj = v + (b * s + j) * d + head * dh;
          const float pij = p[i * s + j];
          for (size_t c = 0; c < dh; ++c) oi[c] += pij * vj[c];
        }
      }
    }
  });
}

void TinyTransformer::BlockForward(const float* params,
                                   const std::vector<float>& in,
                                   size_t batch, std::vector<float>* out,
                                   LayerStash* stash) const {
  const size_t s = config_.seq_len, d = config_.d_model, f = config_.d_ffn;
  const size_t m = batch * s;  // Token rows.
  ANGEL_CHECK(in.size() == m * d) << "block input size mismatch";
  const BlockOffsets o = ComputeOffsets(d, f);

  // LN1.
  std::vector<float> h1(m * d), mean1(m), rstd1(m);
  LayerNorm(in.data(), params + o.ln1_gamma, params + o.ln1_beta, h1.data(),
            mean1.data(), rstd1.data(), m, d);

  // QKV projections.
  std::vector<float> q(m * d), k(m * d), v(m * d);
  Gemm(h1.data(), params + o.wq, q.data(), m, d, d);
  Gemm(h1.data(), params + o.wk, k.data(), m, d, d);
  Gemm(h1.data(), params + o.wv, v.data(), m, d, d);

  // Causal multi-head attention + output projection, then residual.
  std::vector<float> concat, probs;
  Attention(q.data(), k.data(), v.data(), batch, &concat, &probs);
  std::vector<float> x2(m * d);
  Gemm(concat.data(), params + o.wo, x2.data(), m, d, d);
  for (size_t i = 0; i < m * d; ++i) x2[i] += in[i];

  // LN2 + FFN + residual.
  std::vector<float> h2(m * d), mean2(m), rstd2(m);
  LayerNorm(x2.data(), params + o.ln2_gamma, params + o.ln2_beta, h2.data(),
            mean2.data(), rstd2.data(), m, d);
  std::vector<float> u(m * f);
  Gemm(h2.data(), params + o.w1, u.data(), m, d, f);
  // Fused bias + GeLU; `u` keeps the post-bias pre-activation for backward.
  std::vector<float> g(m * f);
  AddBiasGelu(u.data(), params + o.b1, g.data(), m, f);
  out->assign(m * d, 0.0f);
  Gemm(g.data(), params + o.w2, out->data(), m, f, d);
  AddBias(out->data(), params + o.b2, m, d);
  for (size_t i = 0; i < m * d; ++i) (*out)[i] += x2[i];

  if (stash != nullptr) {
    stash->input = in;
    stash->saved.assign(kNumBlockStash, {});
    stash->saved[kMean1] = std::move(mean1);
    stash->saved[kRstd1] = std::move(rstd1);
    stash->saved[kH1] = std::move(h1);
    stash->saved[kQ] = std::move(q);
    stash->saved[kK] = std::move(k);
    stash->saved[kV] = std::move(v);
    stash->saved[kProbs] = std::move(probs);
    stash->saved[kConcat] = std::move(concat);
    stash->saved[kX2] = std::move(x2);
    stash->saved[kMean2] = std::move(mean2);
    stash->saved[kRstd2] = std::move(rstd2);
    stash->saved[kH2] = std::move(h2);
    stash->saved[kPreGelu] = std::move(u);
    stash->saved[kGelu] = std::move(g);
  }
}

void TinyTransformer::BlockBackward(const float* params,
                                    const LayerStash& stash,
                                    const std::vector<float>& grad_out,
                                    size_t batch,
                                    std::vector<float>* grad_in,
                                    std::vector<float>* grad_params) const {
  const size_t s = config_.seq_len, d = config_.d_model, f = config_.d_ffn,
               heads = config_.num_heads, dh = d / heads;
  const size_t m = batch * s;
  const double scale = 1.0 / std::sqrt(double(dh));
  const BlockOffsets o = ComputeOffsets(d, f);
  grad_params->assign(o.total, 0.0f);
  float* gp = grad_params->data();

  const auto& x = stash.input;
  const auto& h1 = stash.saved[kH1];
  const auto& q = stash.saved[kQ];
  const auto& k = stash.saved[kK];
  const auto& v = stash.saved[kV];
  const auto& probs = stash.saved[kProbs];
  const auto& concat = stash.saved[kConcat];
  const auto& x2 = stash.saved[kX2];
  const auto& h2 = stash.saved[kH2];
  const auto& u = stash.saved[kPreGelu];
  const auto& g = stash.saved[kGelu];

  // y = x2 + FFN(LN2(x2)): FFN chain first.
  // dg = dy W2^T ; dW2 = g^T dy ; db2 = colsum(dy).
  std::vector<float> dg(m * f);
  GemmTransB(grad_out.data(), params + o.w2, dg.data(), m, d, f);
  GemmTransA(g.data(), grad_out.data(), gp + o.w2, f, m, d);
  BiasBackward(grad_out.data(), gp + o.b2, m, d);

  std::vector<float> du(m * f);
  // Fused GeLU backward + b1 gradient in a single pass over du.
  AddBiasGeluBackward(u.data(), dg.data(), du.data(), gp + o.b1, m, f);
  GemmTransA(h2.data(), du.data(), gp + o.w1, d, m, f);
  std::vector<float> dh2(m * d);
  GemmTransB(du.data(), params + o.w1, dh2.data(), m, f, d);

  // LN2 backward into x2, plus the residual path.
  std::vector<float> dx2(m * d);
  LayerNormBackward(x2.data(), params + o.ln2_gamma, dh2.data(),
                    stash.saved[kMean2].data(), stash.saved[kRstd2].data(),
                    dx2.data(), gp + o.ln2_gamma, gp + o.ln2_beta, m, d);
  for (size_t i = 0; i < m * d; ++i) dx2[i] += grad_out[i];

  // x2 = x + concat Wo: output projection backward.
  std::vector<float> dconcat(m * d);
  GemmTransB(dx2.data(), params + o.wo, dconcat.data(), m, d, d);
  GemmTransA(concat.data(), dx2.data(), gp + o.wo, d, m, d);

  // Attention backward per (sample, head): each pair writes disjoint head
  // slices of dq/dk/dv, so the flattened loop parallelizes cleanly with
  // per-iteration dp/ds scratch.
  std::vector<float> dq(m * d, 0.0f), dk(m * d, 0.0f), dv(m * d, 0.0f);
  util::ParallelFor(util::ComputePool(), 0, batch * heads, 1, [&](size_t lo,
                                                                 size_t hi) {
    std::vector<double> dp(s * s), ds(s * s);
    for (size_t bh = lo; bh < hi; ++bh) {
      const size_t b = bh / heads;
      const size_t head = bh % heads;
      const float* p = probs.data() + (b * heads + head) * s * s;
      // dP = dO V^T ; dV = P^T dO (causal: j <= i only).
      std::fill(dp.begin(), dp.end(), 0.0);
      for (size_t i = 0; i < s; ++i) {
        const float* doi = dconcat.data() + (b * s + i) * d + head * dh;
        for (size_t j = 0; j <= i; ++j) {
          const float* vj = v.data() + (b * s + j) * d + head * dh;
          float* dvj = dv.data() + (b * s + j) * d + head * dh;
          double dot = 0;
          const float pij = p[i * s + j];
          for (size_t c = 0; c < dh; ++c) {
            dot += double(doi[c]) * vj[c];
            dvj[c] += pij * doi[c];
          }
          dp[i * s + j] = dot;
        }
      }
      // Softmax backward (masked entries have P = 0, so dS = 0).
      for (size_t i = 0; i < s; ++i) {
        double row_dot = 0;
        for (size_t j = 0; j <= i; ++j) {
          row_dot += dp[i * s + j] * p[i * s + j];
        }
        for (size_t j = 0; j <= i; ++j) {
          ds[i * s + j] = p[i * s + j] * (dp[i * s + j] - row_dot);
        }
      }
      // dQ = dS K * scale ; dK = dS^T Q * scale.
      for (size_t i = 0; i < s; ++i) {
        float* dqi = dq.data() + (b * s + i) * d + head * dh;
        const float* qi = q.data() + (b * s + i) * d + head * dh;
        for (size_t j = 0; j <= i; ++j) {
          const float* kj = k.data() + (b * s + j) * d + head * dh;
          float* dkj = dk.data() + (b * s + j) * d + head * dh;
          const double dsij = ds[i * s + j] * scale;
          for (size_t c = 0; c < dh; ++c) {
            dqi[c] += float(dsij * kj[c]);
            dkj[c] += float(dsij * qi[c]);
          }
        }
      }
    }
  });

  // QKV projection backward into h1 and the weights.
  std::vector<float> dh1(m * d, 0.0f), tmp(m * d);
  GemmTransB(dq.data(), params + o.wq, tmp.data(), m, d, d);
  for (size_t i = 0; i < m * d; ++i) dh1[i] += tmp[i];
  GemmTransB(dk.data(), params + o.wk, tmp.data(), m, d, d);
  for (size_t i = 0; i < m * d; ++i) dh1[i] += tmp[i];
  GemmTransB(dv.data(), params + o.wv, tmp.data(), m, d, d);
  for (size_t i = 0; i < m * d; ++i) dh1[i] += tmp[i];
  GemmTransA(h1.data(), dq.data(), gp + o.wq, d, m, d);
  GemmTransA(h1.data(), dk.data(), gp + o.wk, d, m, d);
  GemmTransA(h1.data(), dv.data(), gp + o.wv, d, m, d);

  // LN1 backward into x, plus the attention residual (dx2 flows to x).
  grad_in->assign(m * d, 0.0f);
  LayerNormBackward(x.data(), params + o.ln1_gamma, dh1.data(),
                    stash.saved[kMean1].data(), stash.saved[kRstd1].data(),
                    grad_in->data(), gp + o.ln1_gamma, gp + o.ln1_beta, m,
                    d);
  for (size_t i = 0; i < m * d; ++i) (*grad_in)[i] += dx2[i];
}

void TinyTransformer::HeadForward(const float* params,
                                  const std::vector<float>& in, size_t batch,
                                  std::vector<float>* out,
                                  LayerStash* stash) const {
  const size_t s = config_.seq_len, d = config_.d_model,
               out_dim = config_.out_dim;
  ANGEL_CHECK(in.size() == batch * s * d) << "head input size mismatch";
  // Mean-pool over the sequence, then a linear projection.
  std::vector<float> pooled(batch * d, 0.0f);
  for (size_t b = 0; b < batch; ++b) {
    for (size_t i = 0; i < s; ++i) {
      const float* row = in.data() + (b * s + i) * d;
      for (size_t c = 0; c < d; ++c) pooled[b * d + c] += row[c] / float(s);
    }
  }
  out->assign(batch * out_dim, 0.0f);
  Gemm(pooled.data(), params, out->data(), batch, d, out_dim);
  AddBias(out->data(), params + d * out_dim, batch, out_dim);
  if (stash != nullptr) {
    stash->input = in;
    stash->saved.assign(1, pooled);
  }
}

void TinyTransformer::HeadBackward(const float* params,
                                   const LayerStash& stash,
                                   const std::vector<float>& grad_out,
                                   size_t batch,
                                   std::vector<float>* grad_in,
                                   std::vector<float>* grad_params) const {
  const size_t s = config_.seq_len, d = config_.d_model,
               out_dim = config_.out_dim;
  grad_params->assign(LayerParamCount(config_.num_blocks), 0.0f);
  const auto& pooled = stash.saved[0];
  GemmTransA(pooled.data(), grad_out.data(), grad_params->data(), d, batch,
             out_dim);
  BiasBackward(grad_out.data(), grad_params->data() + d * out_dim, batch,
               out_dim);
  std::vector<float> dpooled(batch * d);
  GemmTransB(grad_out.data(), params, dpooled.data(), batch, out_dim, d);
  grad_in->assign(batch * s * d, 0.0f);
  for (size_t b = 0; b < batch; ++b) {
    for (size_t i = 0; i < s; ++i) {
      float* row = grad_in->data() + (b * s + i) * d;
      for (size_t c = 0; c < d; ++c) row[c] = dpooled[b * d + c] / float(s);
    }
  }
}

}  // namespace angelptm::train
