#include "train/recompute_policy.h"

#include <algorithm>
#include <numeric>

#include "util/units.h"

namespace angelptm::train {

util::Result<RecomputePlan> PlanRecompute(
    const std::vector<LayerActivationCost>& layers,
    uint64_t memory_budget_bytes) {
  RecomputePlan plan;
  plan.choices.assign(layers.size(), ActivationChoice::kRecompute);

  uint64_t mandatory = 0;
  for (const LayerActivationCost& layer : layers) {
    mandatory += layer.boundary_bytes;
  }
  if (mandatory > memory_budget_bytes) {
    return util::Status::OutOfMemory(
        "boundary activations alone need " + util::FormatBytes(mandatory) +
        " of " + util::FormatBytes(memory_budget_bytes));
  }

  // Candidates ordered by recompute-time saved per extra resident byte.
  std::vector<size_t> order(layers.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const auto density = [&](size_t i) {
      const uint64_t extra =
          layers[i].full_stash_bytes > layers[i].boundary_bytes
              ? layers[i].full_stash_bytes - layers[i].boundary_bytes
              : 1;
      return layers[i].recompute_seconds / double(extra);
    };
    return density(a) > density(b);
  });

  uint64_t used = mandatory;
  for (size_t index : order) {
    const LayerActivationCost& layer = layers[index];
    const uint64_t extra =
        layer.full_stash_bytes > layer.boundary_bytes
            ? layer.full_stash_bytes - layer.boundary_bytes
            : 0;
    if (used + extra <= memory_budget_bytes &&
        layer.recompute_seconds > 0.0) {
      plan.choices[index] = ActivationChoice::kStashFull;
      used += extra;
    }
  }

  plan.resident_bytes = used;
  for (size_t i = 0; i < layers.size(); ++i) {
    if (plan.choices[i] == ActivationChoice::kRecompute) {
      plan.recompute_seconds += layers[i].recompute_seconds;
      plan.layers_recomputed += 1;
    }
  }
  return plan;
}

}  // namespace angelptm::train
