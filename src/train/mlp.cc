#include "train/mlp.h"

#include <cmath>

#include "train/kernels.h"
#include "util/logging.h"

namespace angelptm::train {

MlpModel::MlpModel(MlpConfig config) : config_(std::move(config)) {
  ANGEL_CHECK(config_.dims.size() >= 2) << "MLP needs at least one layer";
}

size_t MlpModel::LayerParamCount(int layer) const {
  const size_t in = config_.dims[layer];
  const size_t out = config_.dims[layer + 1];
  return in * out + out;
}

std::vector<float> MlpModel::InitLayerParams(int layer,
                                             util::Rng* rng) const {
  const size_t in = config_.dims[layer];
  const size_t out = config_.dims[layer + 1];
  std::vector<float> params(in * out + out, 0.0f);
  const double stddev = std::sqrt(2.0 / double(in));
  for (size_t i = 0; i < in * out; ++i) {
    params[i] = float(rng->NextGaussian() * stddev);
  }
  return params;  // Bias stays zero.
}

void MlpModel::Forward(int layer, const float* params,
                       const std::vector<float>& in, size_t batch,
                       std::vector<float>* out, LayerStash* stash) const {
  const size_t in_dim = config_.dims[layer];
  const size_t out_dim = config_.dims[layer + 1];
  ANGEL_CHECK(in.size() == batch * in_dim) << "layer input size mismatch";
  const float* weights = params;
  const float* bias = params + in_dim * out_dim;

  std::vector<float> z(batch * out_dim);
  Gemm(in.data(), weights, z.data(), batch, in_dim, out_dim);

  const bool is_head = layer == num_layers() - 1;
  out->resize(batch * out_dim);
  if (is_head) {
    AddBias(z.data(), bias, batch, out_dim);
    *out = z;
  } else {
    // Fused bias + GeLU: one pass over the activations instead of two.
    // `z` ends up holding the post-bias pre-activation for backward.
    AddBiasGelu(z.data(), bias, out->data(), batch, out_dim);
  }
  if (stash != nullptr) {
    stash->input = in;
    stash->pre_activation = std::move(z);
  }
}

void MlpModel::Backward(int layer, const float* params,
                        const LayerStash& stash,
                        const std::vector<float>& grad_out, size_t batch,
                        std::vector<float>* grad_in,
                        std::vector<float>* grad_params) const {
  const size_t in_dim = config_.dims[layer];
  const size_t out_dim = config_.dims[layer + 1];
  ANGEL_CHECK(grad_out.size() == batch * out_dim) << "grad size mismatch";
  const float* weights = params;

  const bool is_head = layer == num_layers() - 1;
  grad_params->assign(in_dim * out_dim + out_dim, 0.0f);
  std::vector<float> dz(batch * out_dim);
  if (is_head) {
    dz = grad_out;
    // db = column sums of dz.
    BiasBackward(dz.data(), grad_params->data() + in_dim * out_dim, batch,
                 out_dim);
  } else {
    // Fused GeLU backward + bias gradient in one pass over dz.
    AddBiasGeluBackward(stash.pre_activation.data(), grad_out.data(),
                        dz.data(), grad_params->data() + in_dim * out_dim,
                        batch, out_dim);
  }
  // dW = x^T * dz.
  GemmTransA(stash.input.data(), dz.data(), grad_params->data(), in_dim,
             batch, out_dim);
  // dx = dz * W^T.
  grad_in->resize(batch * in_dim);
  GemmTransB(dz.data(), weights, grad_in->data(), batch, out_dim, in_dim);
}

}  // namespace angelptm::train
