#ifndef ANGELPTM_TRAIN_TRAINER_H_
#define ANGELPTM_TRAIN_TRAINER_H_

#include <memory>
#include <vector>

#include "core/adam.h"
#include "core/allocator.h"
#include "core/checkpoint_manager.h"
#include "core/lockfree_updater.h"
#include "core/optimizer/optimizer.h"
#include "mem/copy_engine.h"
#include "obs/metrics.h"
#include "train/dataset.h"
#include "train/layered_model.h"
#include "train/loss_scaler.h"
#include "util/random.h"
#include "util/status.h"

namespace angelptm::train {

/// End-to-end mixed-precision training over the page-based memory subsystem
/// (Algorithm 2's "Computation on GPU" loop): per step it fetches buffered
/// fp16 parameters, runs a real forward/backward, offloads fp16 gradients,
/// and either updates synchronously (baseline) or lets the lock-free
/// updating/buffering threads run the optimizer concurrently.
/// Numeric precision of the compute path. The paper trains "storing the
/// model states in FP32 while computing in BF16" (§6.1); kBf16 rounds the
/// fetched parameters and every layer boundary through bfloat16, emulating
/// tensor-core arithmetic while the masters stay fp32.
enum class ComputePrecision { kFp32, kBf16 };

struct TrainerOptions {
  /// Update rule + hyper-parameters (core/optimizer/optimizer.h). The
  /// default is Adam with the historic defaults.
  core::OptimizerConfig optimizer;
  /// Legacy Adam knobs, kept so pre-redesign callers compile unchanged:
  /// any field set away from its AdamConfig default overrides the matching
  /// `optimizer` field (core::ResolveLegacyAdam). Prefer `optimizer`.
  core::AdamConfig adam;
  ComputePrecision compute_precision = ComputePrecision::kFp32;
  size_t batch_size = 32;
  /// false: one synchronous optimizer pass per step (the classical flow).
  /// true: Algorithm 2 — updater threads run concurrently; steps never wait.
  bool lock_free = false;
  /// Where fp32 master states live (kSsd exercises real file I/O).
  mem::DeviceKind master_device = mem::DeviceKind::kCpu;
  /// Micro-batch passes per optimizer update: gradients accumulate in the
  /// fp16 g'16 buffers (the updater averages them), the optimizer runs once
  /// per `grad_accumulation` steps. Synchronous mode only; lock-free mode
  /// paces itself.
  int grad_accumulation = 1;
  /// Dynamic loss scaling (§2.1 mixed precision): gradients survive the
  /// fp16 buffer cast; overflowed steps are skipped with scale backoff.
  bool use_loss_scaling = false;
  LossScaler::Options loss_scaler;
  uint64_t seed = 1234;
  /// Upper bound on the end-of-training drain in lock-free mode; a dead or
  /// wedged updater surfaces as DeadlineExceeded/IoError instead of a hang.
  int drain_deadline_ms = 60000;

  // --- Fault tolerance (§3.1 failure recovery; DESIGN.md §9) ---
  /// Cut a checkpoint every N completed steps (0 disables). Saves go
  /// through CheckpointManager: atomic, checksummed, rotated, and taken
  /// through the per-layer quiesce so lock-free training never pauses.
  int checkpoint_every_n_steps = 0;
  /// Where the rotated checkpoints live. Required when checkpointing or
  /// auto-recovery is on.
  std::string checkpoint_dir;
  int checkpoint_keep_last = 3;
  /// When > 0, Train() absorbs updater poisonings: it tears the dead
  /// updater down, rebuilds a fresh one from the latest valid checkpoint
  /// (exact resume: step counter, RNG cursor, loss-scaler schedule), and
  /// continues — up to this many times per Trainer before the error
  /// propagates. 0 = propagate the first poisoning (previous behaviour).
  int max_recoveries = 0;
};

/// Structured telemetry nested in every TrainReport: per-phase step-time
/// distributions for this run plus snapshots of every stats-bearing
/// subsystem the run touched (each taken via that class's Snapshot()).
struct TelemetrySnapshot {
  /// Wall time per training-step phase, microseconds (this run only).
  obs::HistogramData fwd_us;
  obs::HistogramData bwd_us;
  obs::HistogramData opt_us;
  /// Peak staleness observed across the run (lock-free mode).
  uint64_t max_pending_batches = 0;
  core::LockFreeUpdater::Stats updater;
  mem::MemorySnapshot memory;
  /// Meaningful only when has_ssd is set.
  mem::SsdTier::Stats ssd;
  bool has_ssd = false;
  /// Meaningful only when has_copy_engine is set (EngineTrainer runs).
  mem::CopyEngine::Stats copy;
  bool has_copy_engine = false;
  /// Automatic checkpoint-restore recoveries performed during this run
  /// (updater poisonings absorbed by the recovery loop).
  uint64_t recoveries = 0;
  /// Meaningful only when has_checkpoint_manager is set.
  core::CheckpointManager::Stats checkpoint;
  bool has_checkpoint_manager = false;
};

struct TrainReport {
  std::vector<double> losses;  // Per-step training loss.
  double final_train_loss = 0.0;
  double validation_loss = 0.0;
  double wall_seconds = 0.0;
  double steps_per_second = 0.0;
  uint64_t overflow_steps_skipped = 0;
  double final_loss_scale = 0.0;
  TelemetrySnapshot telemetry;
};

class Trainer {
 public:
  /// `allocator` and `model` must outlive the trainer; the allocator needs
  /// CPU (and SSD when requested) capacity for the model's states.
  Trainer(core::Allocator* allocator, const LayeredModel* model,
          const TrainerOptions& options);
  ~Trainer();

  Trainer(const Trainer&) = delete;
  Trainer& operator=(const Trainer&) = delete;

  /// Allocates and initializes all layer states.
  [[nodiscard]] util::Status Init();

  /// Restores the newest valid checkpoint from `checkpoint_dir` into this
  /// trainer — the restart-after-crash entry point. Returns false when no
  /// checkpoint exists (fresh start), true after an exact resume (master
  /// states, per-layer Adam steps, global step, RNG cursor, loss-scaler
  /// schedule). For v1 checkpoints without progress the data cursor is
  /// replayed through `dataset` instead (pass the training dataset; may be
  /// null, which skips the replay). Call after Init(), before Train().
  [[nodiscard]] util::Result<bool> TryResume(const SyntheticRegression* dataset = nullptr);

  /// Runs `steps` training steps against `dataset`, returning the report.
  /// In lock-free mode the updater threads are started before the first
  /// step and drained after the last so the report reflects a consistent
  /// final model. With `max_recoveries > 0`, updater poisonings inside the
  /// run are absorbed by restoring the latest checkpoint into a fresh
  /// updater and rewinding to its step (the batches in between are
  /// regenerated from the restored RNG cursor — no gradient is silently
  /// dropped or double-applied).
  [[nodiscard]] util::Result<TrainReport> Train(const SyntheticRegression& dataset,
                                  int steps);

  /// Mean validation loss over `batches` fresh batches using the *master*
  /// fp32 parameters (what a checkpoint would contain).
  [[nodiscard]] util::Result<double> Validate(const SyntheticRegression& dataset,
                                int batches);

  core::LockFreeUpdater* updater() { return updater_.get(); }
  const LossScaler& loss_scaler() const { return scaler_; }
  core::CheckpointManager* checkpoint_manager() { return ckpt_manager_.get(); }
  /// Steps completed over this trainer's lifetime (survives recoveries and
  /// is restored by TryResume).
  int64_t global_step() const { return global_step_; }
  /// Checkpoint-restore recoveries performed by this trainer so far.
  uint64_t recoveries() const { return recoveries_; }

 private:
  /// One forward/backward over a batch; returns the loss and offloads
  /// per-layer gradients.
  [[nodiscard]] util::Result<double> Step(const std::vector<float>& x,
                            const std::vector<float>& y,
                            bool use_master_params);

  /// Creates the updater and registers every model layer (shared by Init
  /// and the recovery rebuild; `rng` provides the initial parameters).
  [[nodiscard]] util::Status BuildUpdater(util::Rng* rng);
  /// The step loop from global_step_ to `target_step`, including periodic
  /// checkpoints and the end-of-run drain. `base_step` anchors
  /// report->losses indexing across recoveries.
  [[nodiscard]] util::Status TrainRange(const SyntheticRegression& dataset,
                          int64_t base_step, int64_t target_step,
                          TrainReport* report);
  /// Tears down the poisoned updater and restores the latest checkpoint
  /// into a fresh one. Returns `cause` unchanged when recovery is not
  /// possible (no manager, budget exhausted, not a poisoning).
  [[nodiscard]] util::Status Recover(const util::Status& cause,
                       const SyntheticRegression& dataset);
  /// Applies a loaded TrainProgress to this trainer's step/RNG/scaler.
  void RestoreProgress(const core::TrainProgress& progress,
                       const SyntheticRegression* dataset);
  core::TrainProgress CurrentProgress() const;

  core::Allocator* allocator_;
  const LayeredModel* model_;
  TrainerOptions options_;
  std::unique_ptr<core::LockFreeUpdater> updater_;
  std::unique_ptr<core::CheckpointManager> ckpt_manager_;
  LossScaler scaler_;
  util::Rng rng_;
  int64_t global_step_ = 0;
  uint64_t recoveries_ = 0;

  /// Per-run phase timers (reset at Train()); the same series also feed the
  /// process-wide "train/fwd_us" etc. registry histograms.
  obs::HistogramData fwd_us_;
  obs::HistogramData bwd_us_;
  obs::HistogramData opt_us_;
  obs::Histogram* metric_fwd_us_ = nullptr;
  obs::Histogram* metric_bwd_us_ = nullptr;
  obs::Histogram* metric_opt_us_ = nullptr;
  obs::Counter* metric_recoveries_ = nullptr;
};

}  // namespace angelptm::train

#endif  // ANGELPTM_TRAIN_TRAINER_H_
