#ifndef ANGELPTM_TRAIN_KERNELS_H_
#define ANGELPTM_TRAIN_KERNELS_H_

#include <cstddef>
#include <vector>

namespace angelptm::train {

/// Dense CPU kernels (fp32) used by the real training path. These are the
/// "GPU computations" of the reproduction — numerically real forward and
/// backward passes executed by the engine's compute stream against tensors
/// managed by the page-based memory subsystem.
///
/// Conventions: row-major matrices, `m x k` times `k x n`.

/// C = A * B. A is m x k, B is k x n, C is m x n (overwritten).
void Gemm(const float* a, const float* b, float* c, size_t m, size_t k,
          size_t n);

/// C = A^T * B. A is k x m, B is k x n, C is m x n.
void GemmTransA(const float* a, const float* b, float* c, size_t m, size_t k,
                size_t n);

/// C = A * B^T. A is m x k, B is n x k, C is m x n.
void GemmTransB(const float* a, const float* b, float* c, size_t m, size_t k,
                size_t n);

/// y[i] += bias[i % n] over an m x n matrix.
void AddBias(float* y, const float* bias, size_t m, size_t n);

/// grad_bias[j] = sum_i grad[i, j].
void BiasBackward(const float* grad, float* grad_bias, size_t m, size_t n);

/// GeLU (tanh approximation, as used by GPT) applied elementwise.
void Gelu(const float* x, float* y, size_t n);

/// dx = dy * gelu'(x).
void GeluBackward(const float* x, const float* dy, float* dx, size_t n);

/// Row-wise LayerNorm over an m x n matrix with learned gain/bias.
/// `mean`/`rstd` (size m) are saved for backward.
void LayerNorm(const float* x, const float* gamma, const float* beta,
               float* y, float* mean, float* rstd, size_t m, size_t n);

/// Backward of LayerNorm: produces dx and accumulates dgamma/dbeta.
void LayerNormBackward(const float* x, const float* gamma, const float* dy,
                       const float* mean, const float* rstd, float* dx,
                       float* dgamma, float* dbeta, size_t m, size_t n);

/// Row-wise softmax cross-entropy against integer labels. Returns the mean
/// loss; fills `grad` (m x n) with dloss/dlogits (already divided by m).
double SoftmaxCrossEntropy(const float* logits, const int* labels,
                           float* grad, size_t m, size_t n);

/// Mean squared error: returns mean over all elements of (pred-target)^2,
/// fills grad with dloss/dpred.
double MseLoss(const float* pred, const float* target, float* grad,
               size_t count);

}  // namespace angelptm::train

#endif  // ANGELPTM_TRAIN_KERNELS_H_
