#ifndef ANGELPTM_TRAIN_KERNELS_H_
#define ANGELPTM_TRAIN_KERNELS_H_

#include <cstddef>
#include <vector>

namespace angelptm::train {

/// Dense CPU kernels (fp32) used by the real training path. These are the
/// "GPU computations" of the reproduction — numerically real forward and
/// backward passes executed by the engine's compute stream against tensors
/// managed by the page-based memory subsystem.
///
/// All kernels run cache-blocked and data-parallel on the process-wide
/// compute pool (`util::ComputePool()`, sized from hardware_concurrency,
/// overridable with the `ANGELPTM_COMPUTE_THREADS` environment variable).
/// Work is split over row-blocks so no two workers ever write the same
/// cache line; reductions (`dgamma`/`dbeta`, the cross-entropy loss) go
/// through per-chunk partial buffers combined at the end, never through
/// shared accumulators.
///
/// Every kernel additionally dispatches at runtime (`simd::Dispatch()`,
/// overridable with `ANGELPTM_SIMD=scalar|avx2`) between a portable
/// scalar path and packed AVX2/FMA micro-kernels from `train/simd/`
/// (DESIGN.md §11). On the scalar path, results match the `reference::`
/// implementations below up to float-summation reassociation; the AVX2
/// path matches within the tolerances pinned by
/// tests/train/kernel_golden_test.cc (FMA reassociates sums, and
/// GeLU/softmax use a vectorized exp polynomial).
///
/// Conventions: row-major matrices, `m x k` times `k x n`.

/// C = A * B. A is m x k, B is k x n, C is m x n (overwritten).
void Gemm(const float* a, const float* b, float* c, size_t m, size_t k,
          size_t n);

/// C = A^T * B. A is k x m, B is k x n, C is m x n.
void GemmTransA(const float* a, const float* b, float* c, size_t m, size_t k,
                size_t n);

/// C = A * B^T. A is m x k, B is n x k, C is m x n.
void GemmTransB(const float* a, const float* b, float* c, size_t m, size_t k,
                size_t n);

/// y[i] += bias[i % n] over an m x n matrix.
void AddBias(float* y, const float* bias, size_t m, size_t n);

/// grad_bias[j] = sum_i grad[i, j]. `grad_bias` is overwritten.
void BiasBackward(const float* grad, float* grad_bias, size_t m, size_t n);

/// GeLU (tanh approximation, as used by GPT) applied elementwise.
void Gelu(const float* x, float* y, size_t n);

/// dx = dy * gelu'(x).
void GeluBackward(const float* x, const float* dy, float* dx, size_t n);

/// Fused bias + GeLU forward over an m x n matrix: adds `bias` into `z`
/// in place (so callers can stash the post-bias pre-activation for
/// backward) and writes y = gelu(z + bias) in the same pass, saving a full
/// read+write sweep over the activations versus AddBias followed by Gelu.
void AddBiasGelu(float* z, const float* bias, float* y, size_t m, size_t n);

/// Fused backward of AddBiasGelu. `z` is the stashed post-bias
/// pre-activation; computes dz = dy * gelu'(z) and the bias gradient
/// dbias[j] = sum_i dz[i, j] in one pass. `dbias` is zeroed internally and
/// overwritten.
void AddBiasGeluBackward(const float* z, const float* dy, float* dz,
                         float* dbias, size_t m, size_t n);

/// Row-wise LayerNorm over an m x n matrix with learned gain/bias.
/// `mean`/`rstd` (size m) are saved for backward.
void LayerNorm(const float* x, const float* gamma, const float* beta,
               float* y, float* mean, float* rstd, size_t m, size_t n);

/// Backward of LayerNorm: produces dx and the parameter gradients.
/// `dgamma`/`dbeta` are zeroed internally and then overwritten with the
/// full column reductions — callers must NOT expect accumulation into
/// pre-existing values. (The historical contract required callers to
/// pre-zero them and silently accumulated; every in-tree caller passed
/// freshly zeroed buffers, so the overwrite semantics are a strict
/// foot-gun removal.) Internally the row loop runs in parallel with
/// per-chunk dgamma/dbeta partials reduced at the end, so there is no
/// shared-accumulator race.
void LayerNormBackward(const float* x, const float* gamma, const float* dy,
                       const float* mean, const float* rstd, float* dx,
                       float* dgamma, float* dbeta, size_t m, size_t n);

/// Row-wise softmax cross-entropy against integer labels. Returns the mean
/// loss; fills `grad` (m x n) with dloss/dlogits (already divided by m).
double SoftmaxCrossEntropy(const float* logits, const int* labels,
                           float* grad, size_t m, size_t n);

/// Mean squared error: returns mean over all elements of (pred-target)^2,
/// fills grad with dloss/dpred.
double MseLoss(const float* pred, const float* target, float* grad,
               size_t count);

/// Naive single-threaded implementations, retained verbatim from the
/// original scalar kernels. They are the golden references the parallel
/// kernels are tested against (tests/train/kernel_golden_test.cc) and the
/// single-thread baselines bench/kernel_bench.cc measures speedups from.
/// Semantics match the parallel kernels above (in particular,
/// LayerNormBackward overwrites dgamma/dbeta).
namespace reference {

void Gemm(const float* a, const float* b, float* c, size_t m, size_t k,
          size_t n);
void GemmTransA(const float* a, const float* b, float* c, size_t m, size_t k,
                size_t n);
void GemmTransB(const float* a, const float* b, float* c, size_t m, size_t k,
                size_t n);
void Gelu(const float* x, float* y, size_t n);
void LayerNorm(const float* x, const float* gamma, const float* beta,
               float* y, float* mean, float* rstd, size_t m, size_t n);
void LayerNormBackward(const float* x, const float* gamma, const float* dy,
                       const float* mean, const float* rstd, float* dx,
                       float* dgamma, float* dbeta, size_t m, size_t n);
double SoftmaxCrossEntropy(const float* logits, const int* labels,
                           float* grad, size_t m, size_t n);

}  // namespace reference

}  // namespace angelptm::train

#endif  // ANGELPTM_TRAIN_KERNELS_H_
