#ifndef ANGELPTM_TRAIN_RECOMPUTE_POLICY_H_
#define ANGELPTM_TRAIN_RECOMPUTE_POLICY_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace angelptm::train {

/// Per-layer activation cost description for the recompute decision.
struct LayerActivationCost {
  /// Bytes to keep the layer's full interior activations resident.
  uint64_t full_stash_bytes = 0;
  /// Bytes of the boundary activation alone (always kept; the recompute
  /// input).
  uint64_t boundary_bytes = 0;
  /// Seconds to regenerate the interior from the boundary in backward.
  double recompute_seconds = 0.0;
};

enum class ActivationChoice : uint8_t {
  kStashFull = 0,   // Keep interior activations; no recompute cost.
  kRecompute = 1,   // Keep only the boundary; pay recompute_seconds.
};

struct RecomputePlan {
  std::vector<ActivationChoice> choices;
  uint64_t resident_bytes = 0;     // Total activation bytes kept.
  double recompute_seconds = 0.0;  // Total extra backward time.
  int layers_recomputed = 0;
};

/// Chooses which layers keep their full interior activations and which
/// recompute from boundaries, under `memory_budget_bytes` of activation
/// memory (§4.2: "we utilize the recomputation technique to further
/// alleviate the GPU memory pressure"; the cost-based selection follows the
/// eviction analyses of Superneurons/TSPLIT cited in §7).
///
/// Greedy by time-saved-per-byte: boundaries are mandatory; remaining
/// budget goes to the layers whose recompute is most expensive relative to
/// their stash size. Returns OutOfMemory when even boundaries alone exceed
/// the budget.
[[nodiscard]] util::Result<RecomputePlan> PlanRecompute(
    const std::vector<LayerActivationCost>& layers,
    uint64_t memory_budget_bytes);

}  // namespace angelptm::train

#endif  // ANGELPTM_TRAIN_RECOMPUTE_POLICY_H_
