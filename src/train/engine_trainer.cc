#include "train/engine_trainer.h"

#include <algorithm>
#include <chrono>

#include "train/kernels.h"

namespace angelptm::train {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

EngineTrainer::EngineTrainer(const LayeredModel* model,
                             const EngineTrainerOptions& options)
    : model_(model), options_(options), rng_(options.seed) {}

util::Status EngineTrainer::Init() {
  ANGEL_ASSIGN_OR_RETURN(engine_, core::Engine::Create(options_.engine));
  for (int l = 0; l < model_->num_layers(); ++l) {
    ANGEL_RETURN_IF_ERROR(
        engine_->RegisterLayer(model_->InitLayerParams(l, &rng_)).status());
  }
  return util::Status::OK();
}

util::Result<double> EngineTrainer::Step(const std::vector<float>& x,
                                         const std::vector<float>& y) {
  const int num_layers = model_->num_layers();
  const size_t batch = options_.batch_size;
  ANGEL_RETURN_IF_ERROR(engine_->BeginStep());

  // Forward. With activation offloading only the layer *inputs* (the
  // boundaries) survive, on the hierarchical memory; otherwise keep the
  // full per-layer stash in host vectors.
  std::vector<LayerStash> stash(num_layers);
  std::vector<float> acts = x;
  for (int l = 0; l < num_layers; ++l) {
    if (options_.offload_activations) {
      ANGEL_RETURN_IF_ERROR(engine_->StashActivation(l, acts));
    }
    ANGEL_ASSIGN_OR_RETURN(const std::vector<float> params,
                           engine_->UseLayerParams(l));
    std::vector<float> next;
    model_->Forward(l, params.data(), acts, batch, &next,
                    options_.offload_activations ? nullptr : &stash[l]);
    acts = std::move(next);
  }

  std::vector<float> grad(acts.size());
  const double loss =
      MseLoss(acts.data(), y.data(), grad.data(), acts.size());

  // Backward: fetch boundaries and recompute interiors when offloading.
  for (int l = num_layers - 1; l >= 0; --l) {
    ANGEL_ASSIGN_OR_RETURN(const std::vector<float> params,
                           engine_->UseLayerParams(l));
    if (options_.offload_activations) {
      ANGEL_ASSIGN_OR_RETURN(const std::vector<float> boundary,
                             engine_->FetchActivation(l));
      std::vector<float> recomputed;
      model_->Forward(l, params.data(), boundary, batch, &recomputed,
                      &stash[l]);
    }
    std::vector<float> grad_in, grad_params;
    model_->Backward(l, params.data(), stash[l], grad, batch, &grad_in,
                     &grad_params);
    ANGEL_RETURN_IF_ERROR(engine_->PushGrads(l, grad_params));
    grad = std::move(grad_in);
  }
  ANGEL_RETURN_IF_ERROR(engine_->EndStep());
  return loss;
}

util::Result<TrainReport> EngineTrainer::Train(
    const SyntheticRegression& dataset, int steps) {
  if (engine_ == nullptr) {
    return util::Status::FailedPrecondition("Init() not called");
  }
  TrainReport report;
  const double start = NowSeconds();
  std::vector<float> x, y;
  for (int step = 0; step < steps; ++step) {
    dataset.GenBatch(&rng_, options_.batch_size, &x, &y);
    ANGEL_ASSIGN_OR_RETURN(const double loss, Step(x, y));
    report.losses.push_back(loss);
    if (options_.engine.lock_free) {
      report.max_pending_batches =
          std::max(report.max_pending_batches,
                   engine_->updater()->pending_grad_batches());
    }
  }
  if (options_.engine.lock_free) {
    ANGEL_RETURN_IF_ERROR(engine_->updater()->DrainUpdates(
        std::chrono::milliseconds(options_.drain_deadline_ms)));
  }
  report.wall_seconds = NowSeconds() - start;
  report.steps_per_second =
      report.wall_seconds > 0 ? steps / report.wall_seconds : 0.0;
  report.final_train_loss = report.losses.empty() ? 0.0 : report.losses.back();
  report.updates_applied = engine_->updater()->updates_applied();

  // Validation on the master parameters.
  util::Rng validation_rng(options_.seed ^ 0x5EEDF00Dull);
  double total = 0.0;
  const int validation_batches = 8;
  for (int i = 0; i < validation_batches; ++i) {
    dataset.GenBatch(&validation_rng, options_.batch_size, &x, &y);
    std::vector<float> acts = x;
    for (int l = 0; l < model_->num_layers(); ++l) {
      std::vector<float> params;
      ANGEL_RETURN_IF_ERROR(
          engine_->updater()->ReadMasterParams(l, &params));
      std::vector<float> next;
      model_->Forward(l, params.data(), acts, options_.batch_size, &next,
                      nullptr);
      acts = std::move(next);
    }
    std::vector<float> grad(acts.size());
    total += MseLoss(acts.data(), y.data(), grad.data(), acts.size());
  }
  report.validation_loss = total / validation_batches;
  return report;
}

}  // namespace angelptm::train
