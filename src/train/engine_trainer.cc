#include "train/engine_trainer.h"

#include <algorithm>
#include <chrono>

#include "obs/trace.h"
#include "train/kernels.h"

namespace angelptm::train {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

EngineTrainer::EngineTrainer(const LayeredModel* model,
                             const EngineTrainerOptions& options)
    : model_(model), options_(options), rng_(options.seed) {
  obs::Registry& registry = obs::Registry::Instance();
  metric_fwd_us_ = registry.GetHistogram("train/fwd_us");
  metric_bwd_us_ = registry.GetHistogram("train/bwd_us");
  metric_opt_us_ = registry.GetHistogram("train/opt_us");
}

util::Status EngineTrainer::Init() {
  ANGEL_ASSIGN_OR_RETURN(engine_, core::Engine::Create(options_.engine));
  for (int l = 0; l < model_->num_layers(); ++l) {
    ANGEL_RETURN_IF_ERROR(
        engine_->RegisterLayer(model_->InitLayerParams(l, &rng_)).status());
  }
  return util::Status::OK();
}

util::Result<double> EngineTrainer::Step(const std::vector<float>& x,
                                         const std::vector<float>& y) {
  const int num_layers = model_->num_layers();
  const size_t batch = options_.batch_size;
  ANGEL_RETURN_IF_ERROR(engine_->BeginStep());

  // Forward. With activation offloading only the layer *inputs* (the
  // boundaries) survive, on the hierarchical memory; otherwise keep the
  // full per-layer stash in host vectors.
  std::vector<LayerStash> stash(num_layers);
  std::vector<float> acts = x;
  const uint64_t fwd_start = NowUs();
  {
    ANGEL_SPAN("train", "forward");
    for (int l = 0; l < num_layers; ++l) {
      if (options_.offload_activations) {
        ANGEL_RETURN_IF_ERROR(engine_->StashActivation(l, acts));
      }
      ANGEL_ASSIGN_OR_RETURN(const std::vector<float> params,
                             engine_->UseLayerParams(l));
      std::vector<float> next;
      model_->Forward(l, params.data(), acts, batch, &next,
                      options_.offload_activations ? nullptr : &stash[l]);
      acts = std::move(next);
    }
  }
  {
    const uint64_t elapsed = NowUs() - fwd_start;
    fwd_us_.Record(elapsed);
    metric_fwd_us_->Record(elapsed);
  }

  std::vector<float> grad(acts.size());
  const double loss =
      MseLoss(acts.data(), y.data(), grad.data(), acts.size());

  // Backward: fetch boundaries and recompute interiors when offloading.
  const uint64_t bwd_start = NowUs();
  {
    ANGEL_SPAN("train", "backward");
    for (int l = num_layers - 1; l >= 0; --l) {
      ANGEL_ASSIGN_OR_RETURN(const std::vector<float> params,
                             engine_->UseLayerParams(l));
      if (options_.offload_activations) {
        ANGEL_ASSIGN_OR_RETURN(const std::vector<float> boundary,
                               engine_->FetchActivation(l));
        std::vector<float> recomputed;
        model_->Forward(l, params.data(), boundary, batch, &recomputed,
                        &stash[l]);
      }
      std::vector<float> grad_in, grad_params;
      model_->Backward(l, params.data(), stash[l], grad, batch, &grad_in,
                       &grad_params);
      ANGEL_RETURN_IF_ERROR(engine_->PushGrads(l, grad_params));
      grad = std::move(grad_in);
    }
  }
  {
    const uint64_t elapsed = NowUs() - bwd_start;
    bwd_us_.Record(elapsed);
    metric_bwd_us_->Record(elapsed);
  }
  // EndStep runs the drain and (in synchronous mode) the optimizer pass.
  const uint64_t opt_start = NowUs();
  ANGEL_RETURN_IF_ERROR(engine_->EndStep());
  {
    const uint64_t elapsed = NowUs() - opt_start;
    opt_us_.Record(elapsed);
    metric_opt_us_->Record(elapsed);
  }
  return loss;
}

util::Result<TrainReport> EngineTrainer::Train(
    const SyntheticRegression& dataset, int steps) {
  if (engine_ == nullptr) {
    return util::Status::FailedPrecondition("Init() not called");
  }
  TrainReport report;
  fwd_us_ = obs::HistogramData();
  bwd_us_ = obs::HistogramData();
  opt_us_ = obs::HistogramData();
  const double start = NowSeconds();
  std::vector<float> x, y;
  for (int step = 0; step < steps; ++step) {
    ANGEL_SPAN("train", "step");
    dataset.GenBatch(&rng_, options_.batch_size, &x, &y);
    ANGEL_ASSIGN_OR_RETURN(const double loss, Step(x, y));
    report.losses.push_back(loss);
    if (options_.engine.lock_free) {
      report.telemetry.max_pending_batches =
          std::max(report.telemetry.max_pending_batches,
                   engine_->updater()->Snapshot().pending_grad_batches);
    }
  }
  if (options_.engine.lock_free) {
    ANGEL_RETURN_IF_ERROR(engine_->updater()->DrainUpdates(
        std::chrono::milliseconds(options_.drain_deadline_ms)));
  }
  report.wall_seconds = NowSeconds() - start;
  report.steps_per_second =
      report.wall_seconds > 0 ? steps / report.wall_seconds : 0.0;
  report.final_train_loss = report.losses.empty() ? 0.0 : report.losses.back();

  report.telemetry.fwd_us = fwd_us_;
  report.telemetry.bwd_us = bwd_us_;
  report.telemetry.opt_us = opt_us_;
  report.telemetry.updater = engine_->updater()->Snapshot();
  report.telemetry.memory = engine_->memory()->Snapshot();
  if (engine_->memory()->ssd_enabled()) {
    report.telemetry.ssd = engine_->memory()->ssd()->Snapshot();
    report.telemetry.has_ssd = true;
  }
  report.telemetry.copy = engine_->copy_engine()->Snapshot();
  report.telemetry.has_copy_engine = true;

  // Validation on the master parameters.
  ANGEL_SPAN("train", "validate");
  util::Rng validation_rng(options_.seed ^ 0x5EEDF00Dull);
  double total = 0.0;
  const int validation_batches = 8;
  for (int i = 0; i < validation_batches; ++i) {
    dataset.GenBatch(&validation_rng, options_.batch_size, &x, &y);
    std::vector<float> acts = x;
    for (int l = 0; l < model_->num_layers(); ++l) {
      std::vector<float> params;
      ANGEL_RETURN_IF_ERROR(
          engine_->updater()->ReadMasterParams(l, &params));
      std::vector<float> next;
      model_->Forward(l, params.data(), acts, options_.batch_size, &next,
                      nullptr);
      acts = std::move(next);
    }
    std::vector<float> grad(acts.size());
    total += MseLoss(acts.data(), y.data(), grad.data(), acts.size());
  }
  report.validation_loss = total / validation_batches;
  return report;
}

}  // namespace angelptm::train
