#include "train/engine_trainer.h"

#include <algorithm>
#include <chrono>

#include "obs/trace.h"
#include "train/kernels.h"
#include "util/logging.h"

namespace angelptm::train {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

EngineTrainer::EngineTrainer(const LayeredModel* model,
                             const EngineTrainerOptions& options)
    : model_(model), options_(options), rng_(options.seed) {
  obs::Registry& registry = obs::Registry::Instance();
  metric_fwd_us_ = registry.GetHistogram("train/fwd_us");
  metric_bwd_us_ = registry.GetHistogram("train/bwd_us");
  metric_opt_us_ = registry.GetHistogram("train/opt_us");
  metric_recoveries_ = registry.GetCounter("train/recoveries");
}

util::Status EngineTrainer::BuildEngine(util::Rng* rng) {
  ANGEL_ASSIGN_OR_RETURN(engine_, core::Engine::Create(options_.engine));
  for (int l = 0; l < model_->num_layers(); ++l) {
    ANGEL_RETURN_IF_ERROR(
        engine_->RegisterLayer(model_->InitLayerParams(l, rng)).status());
  }
  return util::Status::OK();
}

util::Status EngineTrainer::Init() {
  ANGEL_RETURN_IF_ERROR(BuildEngine(&rng_));
  if (!options_.checkpoint_dir.empty()) {
    core::CheckpointManager::Options manager_options;
    manager_options.dir = options_.checkpoint_dir;
    manager_options.keep_last = options_.checkpoint_keep_last;
    ckpt_manager_ = std::make_unique<core::CheckpointManager>(manager_options);
    ANGEL_RETURN_IF_ERROR(ckpt_manager_->Init());
  }
  return util::Status::OK();
}

core::TrainProgress EngineTrainer::CurrentProgress() const {
  core::TrainProgress progress;
  progress.global_step = global_step_;
  progress.rng_state = rng_.GetState();
  progress.has_progress = true;
  return progress;
}

void EngineTrainer::RestoreProgress(const core::TrainProgress& progress,
                                    const SyntheticRegression* dataset) {
  global_step_ = progress.global_step;
  if (progress.has_progress) {
    rng_.SetState(progress.rng_state);
    return;
  }
  // v1 checkpoint: replay the seeded stream (init draws, then the batches).
  rng_ = util::Rng(options_.seed);
  for (int l = 0; l < model_->num_layers(); ++l) {
    (void)model_->InitLayerParams(l, &rng_);
  }
  if (dataset != nullptr) {
    dataset->SkipBatches(&rng_, options_.batch_size, progress.global_step);
  }
}

util::Result<bool> EngineTrainer::TryResume(const SyntheticRegression* dataset) {
  if (engine_ == nullptr) {
    return util::Status::FailedPrecondition("Init() not called");
  }
  if (ckpt_manager_ == nullptr) return false;
  auto latest = ckpt_manager_->LoadLatest(engine_->updater());
  if (!latest.ok()) {
    if (latest.status().IsNotFound()) return false;  // Fresh start.
    return latest.status();
  }
  RestoreProgress(*latest, dataset);
  return true;
}

util::Status EngineTrainer::Recover(const util::Status& cause,
                                    const SyntheticRegression& dataset) {
  if (ckpt_manager_ == nullptr || options_.max_recoveries <= 0) return cause;
  if (engine_ == nullptr || engine_->updater()->status().ok()) return cause;
  if (recoveries_ >= uint64_t(options_.max_recoveries)) {
    return util::Status(cause.code(),
                        cause.message() + " (recovery budget of " +
                            std::to_string(options_.max_recoveries) +
                            " exhausted)");
  }
  recoveries_ += 1;
  metric_recoveries_->Increment();
  ANGEL_LOG(Warning) << "rebuilding engine after poisoned updater (attempt "
                     << recoveries_ << "/" << options_.max_recoveries
                     << "): " << cause.ToString();
  // The whole engine goes: its memory hierarchy and copy engine may hold
  // state fed by the failed device. The fresh engine re-traces its first
  // step and rebuilds the schedule.
  engine_.reset();
  util::Rng scratch_rng(options_.seed ^ 0xC0FFEEull);
  ANGEL_RETURN_IF_ERROR(BuildEngine(&scratch_rng));
  ANGEL_ASSIGN_OR_RETURN(const core::TrainProgress progress,
                         ckpt_manager_->LoadLatest(engine_->updater()));
  RestoreProgress(progress, &dataset);
  return util::Status::OK();
}

util::Result<double> EngineTrainer::Step(const std::vector<float>& x,
                                         const std::vector<float>& y) {
  const int num_layers = model_->num_layers();
  const size_t batch = options_.batch_size;
  ANGEL_RETURN_IF_ERROR(engine_->BeginStep());

  // Forward. With activation offloading only the layer *inputs* (the
  // boundaries) survive, on the hierarchical memory; otherwise keep the
  // full per-layer stash in host vectors.
  std::vector<LayerStash> stash(num_layers);
  std::vector<float> acts = x;
  const uint64_t fwd_start = NowUs();
  {
    ANGEL_SPAN("train", "forward");
    for (int l = 0; l < num_layers; ++l) {
      if (options_.offload_activations) {
        ANGEL_RETURN_IF_ERROR(engine_->StashActivation(l, acts));
      }
      ANGEL_ASSIGN_OR_RETURN(const std::vector<float> params,
                             engine_->UseLayerParams(l));
      std::vector<float> next;
      model_->Forward(l, params.data(), acts, batch, &next,
                      options_.offload_activations ? nullptr : &stash[l]);
      acts = std::move(next);
    }
  }
  {
    const uint64_t elapsed = NowUs() - fwd_start;
    fwd_us_.Record(elapsed);
    metric_fwd_us_->Record(elapsed);
  }

  std::vector<float> grad(acts.size());
  const double loss =
      MseLoss(acts.data(), y.data(), grad.data(), acts.size());

  // Backward: fetch boundaries and recompute interiors when offloading.
  const uint64_t bwd_start = NowUs();
  {
    ANGEL_SPAN("train", "backward");
    for (int l = num_layers - 1; l >= 0; --l) {
      ANGEL_ASSIGN_OR_RETURN(const std::vector<float> params,
                             engine_->UseLayerParams(l));
      if (options_.offload_activations) {
        ANGEL_ASSIGN_OR_RETURN(const std::vector<float> boundary,
                               engine_->FetchActivation(l));
        std::vector<float> recomputed;
        model_->Forward(l, params.data(), boundary, batch, &recomputed,
                        &stash[l]);
      }
      std::vector<float> grad_in, grad_params;
      model_->Backward(l, params.data(), stash[l], grad, batch, &grad_in,
                       &grad_params);
      ANGEL_RETURN_IF_ERROR(engine_->PushGrads(l, grad_params));
      grad = std::move(grad_in);
    }
  }
  {
    const uint64_t elapsed = NowUs() - bwd_start;
    bwd_us_.Record(elapsed);
    metric_bwd_us_->Record(elapsed);
  }
  // EndStep runs the drain and (in synchronous mode) the optimizer pass.
  const uint64_t opt_start = NowUs();
  ANGEL_RETURN_IF_ERROR(engine_->EndStep());
  {
    const uint64_t elapsed = NowUs() - opt_start;
    opt_us_.Record(elapsed);
    metric_opt_us_->Record(elapsed);
  }
  return loss;
}

util::Status EngineTrainer::TrainRange(const SyntheticRegression& dataset,
                                       int64_t target_step,
                                       TrainReport* report) {
  std::vector<float> x, y;
  while (global_step_ < target_step) {
    ANGEL_SPAN("train", "step");
    dataset.GenBatch(&rng_, options_.batch_size, &x, &y);
    ANGEL_ASSIGN_OR_RETURN(const double loss, Step(x, y));
    global_step_ += 1;
    report->losses.push_back(loss);
    if (options_.engine.lock_free) {
      report->telemetry.max_pending_batches =
          std::max(report->telemetry.max_pending_batches,
                   engine_->updater()->Snapshot().pending_grad_batches);
    }
    if (ckpt_manager_ != nullptr && options_.checkpoint_every_n_steps > 0 &&
        global_step_ % options_.checkpoint_every_n_steps == 0) {
      const util::Status saved =
          ckpt_manager_->Save(engine_->updater(), CurrentProgress());
      if (!saved.ok()) {
        ANGEL_LOG(Warning) << "checkpoint at step " << global_step_
                           << " failed: " << saved.ToString();
      }
    }
  }
  if (options_.engine.lock_free) {
    ANGEL_RETURN_IF_ERROR(engine_->updater()->DrainUpdates(
        std::chrono::milliseconds(options_.drain_deadline_ms)));
  }
  return util::Status::OK();
}

util::Result<TrainReport> EngineTrainer::Train(
    const SyntheticRegression& dataset, int steps) {
  if (engine_ == nullptr) {
    return util::Status::FailedPrecondition("Init() not called");
  }
  TrainReport report;
  fwd_us_ = obs::HistogramData();
  bwd_us_ = obs::HistogramData();
  opt_us_ = obs::HistogramData();
  const int64_t base_step = global_step_;
  const int64_t target_step = base_step + steps;
  const uint64_t recoveries_at_entry = recoveries_;
  const double start = NowSeconds();

  for (;;) {
    const util::Status ran = TrainRange(dataset, target_step, &report);
    if (ran.ok()) break;
    ANGEL_RETURN_IF_ERROR(Recover(ran, dataset));
    const int64_t kept = std::max<int64_t>(global_step_ - base_step, 0);
    if (int64_t(report.losses.size()) > kept) report.losses.resize(kept);
  }
  report.wall_seconds = NowSeconds() - start;
  report.steps_per_second =
      report.wall_seconds > 0 ? steps / report.wall_seconds : 0.0;
  report.final_train_loss = report.losses.empty() ? 0.0 : report.losses.back();

  report.telemetry.fwd_us = fwd_us_;
  report.telemetry.bwd_us = bwd_us_;
  report.telemetry.opt_us = opt_us_;
  report.telemetry.updater = engine_->updater()->Snapshot();
  report.telemetry.recoveries = recoveries_ - recoveries_at_entry;
  if (ckpt_manager_ != nullptr) {
    report.telemetry.checkpoint = ckpt_manager_->Snapshot();
    report.telemetry.has_checkpoint_manager = true;
  }
  report.telemetry.memory = engine_->memory()->Snapshot();
  if (engine_->memory()->ssd_enabled()) {
    report.telemetry.ssd = engine_->memory()->ssd()->Snapshot();
    report.telemetry.has_ssd = true;
  }
  report.telemetry.copy = engine_->copy_engine()->Snapshot();
  report.telemetry.has_copy_engine = true;

  // Validation on the master parameters.
  ANGEL_SPAN("train", "validate");
  util::Rng validation_rng(options_.seed ^ 0x5EEDF00Dull);
  double total = 0.0;
  const int validation_batches = 8;
  std::vector<float> x, y;
  for (int i = 0; i < validation_batches; ++i) {
    dataset.GenBatch(&validation_rng, options_.batch_size, &x, &y);
    std::vector<float> acts = x;
    for (int l = 0; l < model_->num_layers(); ++l) {
      std::vector<float> params;
      ANGEL_RETURN_IF_ERROR(
          engine_->updater()->ReadMasterParams(l, &params));
      std::vector<float> next;
      model_->Forward(l, params.data(), acts, options_.batch_size, &next,
                      nullptr);
      acts = std::move(next);
    }
    std::vector<float> grad(acts.size());
    total += MseLoss(acts.data(), y.data(), grad.data(), acts.size());
  }
  report.validation_loss = total / validation_batches;
  return report;
}

}  // namespace angelptm::train
