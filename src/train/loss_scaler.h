#ifndef ANGELPTM_TRAIN_LOSS_SCALER_H_
#define ANGELPTM_TRAIN_LOSS_SCALER_H_

#include <cstdint>
#include <vector>

namespace angelptm::train {

/// Dynamic loss scaling for mixed-precision training (§2.1): gradients are
/// computed against a scaled loss so small values survive the fp16 cast on
/// their way into Algorithm 2's g'16 buffers, then unscaled before the
/// optimizer. On overflow (non-finite gradients) the step is skipped and
/// the scale backs off; after `growth_interval` clean steps it grows again
/// — the standard AMP policy.
class LossScaler {
 public:
  struct Options {
    double initial_scale = 65536.0;  // 2^16.
    double growth_factor = 2.0;
    double backoff_factor = 0.5;
    int growth_interval = 200;
    double min_scale = 1.0;
    double max_scale = 16777216.0;  // 2^24.
  };

  LossScaler();
  explicit LossScaler(const Options& options);

  /// The scaler's mutable state, for checkpointing: restoring it resumes the
  /// growth/backoff schedule exactly where it left off (Options are config,
  /// not state, and are not captured).
  struct State {
    double scale = 0.0;
    int good_steps = 0;
    uint64_t overflows = 0;
    uint64_t growths = 0;
  };
  State GetState() const;
  void SetState(const State& state);

  double scale() const { return scale_; }

  /// True if any element is inf or NaN.
  static bool HasNonFinite(const std::vector<float>& values);

  /// Call once per step with whether any gradient overflowed. Returns true
  /// when the step's update should be applied (no overflow); false when it
  /// must be skipped (scale already backed off).
  bool Update(bool overflowed);

  uint64_t overflows() const { return overflows_; }
  uint64_t growths() const { return growths_; }
  uint64_t steps_skipped() const { return overflows_; }

 private:
  Options options_;
  double scale_;
  int good_steps_ = 0;
  uint64_t overflows_ = 0;
  uint64_t growths_ = 0;
};

}  // namespace angelptm::train

#endif  // ANGELPTM_TRAIN_LOSS_SCALER_H_
