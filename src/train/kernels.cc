#include "train/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "train/simd/dispatch.h"
#include "train/simd/kernels_avx2.h"
#include "train/simd/scratch.h"
#include "util/parallel_for.h"

namespace angelptm::train {
namespace {

constexpr double kGeluC = 0.7978845608028654;  // sqrt(2/pi)

inline bool UseAvx2() {
  return simd::Dispatch() == simd::IsaPath::kAvx2;
}

// Cache tiles. The inner GEMM loops stream a kTileK x kTileN panel of B
// (64 KiB) that stays resident in L2 across every row of a chunk, while the
// kTileN-float segment of the C row being updated stays in L1 across the
// whole k-tile.
constexpr size_t kTileK = 64;
constexpr size_t kTileN = 256;

// Minimum rows per parallel chunk for matrix kernels; below this the
// scheduling overhead beats the win.
constexpr size_t kMinRowGrain = 4;
constexpr size_t kElementGrain = 4096;  // Elementwise kernels (GeLU, bias).

inline double GeluScalar(double v) {
  return 0.5 * v * (1.0 + std::tanh(kGeluC * (v + 0.044715 * v * v * v)));
}

inline double GeluGradScalar(double v) {
  const double u = kGeluC * (v + 0.044715 * v * v * v);
  const double t = std::tanh(u);
  const double du = kGeluC * (1.0 + 3.0 * 0.044715 * v * v);
  return 0.5 * (1.0 + t) + 0.5 * v * (1.0 - t * t) * du;
}

/// Picks a row grain that yields roughly 4 chunks per worker (good load
/// balancing without flooding the queue) but never below `min_grain`.
size_t RowGrain(size_t rows, size_t min_grain) {
  const size_t workers = util::ComputePoolThreads();
  const size_t target_chunks = std::max<size_t>(1, 4 * workers);
  return std::max(min_grain, (rows + target_chunks - 1) / target_chunks);
}

/// C rows [i0, i1) of C = A * B, cache-blocked. Each worker owns a disjoint
/// row range of C, so no synchronization is needed.
void GemmRowBlock(const float* a, const float* b, float* c, size_t i0,
                  size_t i1, size_t k, size_t n) {
  std::memset(c + i0 * n, 0, (i1 - i0) * n * sizeof(float));
  for (size_t jb = 0; jb < n; jb += kTileN) {
    const size_t jend = std::min(n, jb + kTileN);
    for (size_t pb = 0; pb < k; pb += kTileK) {
      const size_t pend = std::min(k, pb + kTileK);
      for (size_t i = i0; i < i1; ++i) {
        const float* a_row = a + i * k;
        float* c_row = c + i * n;
        for (size_t p = pb; p < pend; ++p) {
          const float aip = a_row[p];
          if (aip == 0.0f) continue;
          const float* b_row = b + p * n;
          for (size_t j = jb; j < jend; ++j) {
            c_row[j] += aip * b_row[j];
          }
        }
      }
    }
  }
}

/// C rows [i0, i1) of C = A^T * B (A is k x m). The p loop sits outside the
/// i loop so the A reads (a[p*m + i]) are contiguous in i and the B row
/// segment stays hot across the whole row block.
void GemmTransARowBlock(const float* a, const float* b, float* c, size_t i0,
                        size_t i1, size_t m, size_t k, size_t n) {
  std::memset(c + i0 * n, 0, (i1 - i0) * n * sizeof(float));
  for (size_t jb = 0; jb < n; jb += kTileN) {
    const size_t jend = std::min(n, jb + kTileN);
    for (size_t p = 0; p < k; ++p) {
      const float* a_row = a + p * m;
      const float* b_row = b + p * n;
      for (size_t i = i0; i < i1; ++i) {
        const float api = a_row[i];
        if (api == 0.0f) continue;
        float* c_row = c + i * n;
        for (size_t j = jb; j < jend; ++j) {
          c_row[j] += api * b_row[j];
        }
      }
    }
  }
}

/// C rows [i0, i1) of C = A * B^T. Dot products over k with four
/// independent double accumulators to break the serial dependency chain
/// (same precision class as the reference's single double accumulator,
/// different association order).
void GemmTransBRowBlock(const float* a, const float* b, float* c, size_t i0,
                        size_t i1, size_t k, size_t n) {
  for (size_t i = i0; i < i1; ++i) {
    const float* a_row = a + i * k;
    float* c_row = c + i * n;
    for (size_t j = 0; j < n; ++j) {
      const float* b_row = b + j * k;
      double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
      size_t p = 0;
      for (; p + 4 <= k; p += 4) {
        s0 += double(a_row[p]) * b_row[p];
        s1 += double(a_row[p + 1]) * b_row[p + 1];
        s2 += double(a_row[p + 2]) * b_row[p + 2];
        s3 += double(a_row[p + 3]) * b_row[p + 3];
      }
      for (; p < k; ++p) s0 += double(a_row[p]) * b_row[p];
      c_row[j] = float(s0 + s1 + s2 + s3);
    }
  }
}

// Macro-tile sizes for the packed AVX2 GEMM (DESIGN.md §11): each grid
// cell owns an MC x NC block of C; per cell the A block (MC x KC packed,
// ~120 KiB) stays L2-resident while KC x NR micro-panels of the packed B
// panel stream through L1. All three GEMM variants route through this one
// driver — transposition is absorbed by the packing strides, so the
// micro-kernel never sees a strided inner loop.
constexpr size_t kMacroM = 120;  // Multiple of the 6-row micro-tile.
constexpr size_t kMacroK = 256;
constexpr size_t kMacroN = 512;  // Multiple of the 16-col micro-tile.

/// C = A * B where element A(i,p) = a[i*rs_a + p*cs_a] and
/// B(p,j) = b[p*rs_b + j*cs_b]. Threads split the M x N macro-tile grid
/// (grain 1 for load balancing); every cell packs into its own per-thread
/// scratch, so there is no write sharing and no allocation in steady
/// state. The grid decomposition is fixed by the tile sizes — not the
/// thread count — so results are bitwise stable across thread counts.
void GemmPackedAvx2(const float* a, size_t rs_a, size_t cs_a, const float* b,
                    size_t rs_b, size_t cs_b, float* c, size_t m, size_t k,
                    size_t n) {
  if (m == 0 || n == 0) return;
  const size_t num_m = (m + kMacroM - 1) / kMacroM;
  const size_t num_n = (n + kMacroN - 1) / kMacroN;
  util::ParallelFor(
      util::ComputePool(), 0, num_m * num_n, 1, [=](size_t lo, size_t hi) {
        for (size_t cell = lo; cell < hi; ++cell) {
          const size_t i0 = (cell / num_n) * kMacroM;
          const size_t j0 = (cell % num_n) * kMacroN;
          const size_t mc = std::min(kMacroM, m - i0);
          const size_t nc = std::min(kMacroN, n - j0);
          for (size_t i = i0; i < i0 + mc; ++i) {
            std::memset(c + i * n + j0, 0, nc * sizeof(float));
          }
          const size_t mc_pad =
              (mc + simd::avx2::kMr - 1) / simd::avx2::kMr * simd::avx2::kMr;
          const size_t nc_pad =
              (nc + simd::avx2::kNr - 1) / simd::avx2::kNr * simd::avx2::kNr;
          float* pa = simd::ThreadScratch(simd::ScratchSlot::kPackA,
                                          mc_pad * kMacroK);
          float* pb = simd::ThreadScratch(simd::ScratchSlot::kPackB,
                                          kMacroK * nc_pad);
          for (size_t p0 = 0; p0 < k; p0 += kMacroK) {
            const size_t kc = std::min(kMacroK, k - p0);
            simd::avx2::PackA(a + i0 * rs_a + p0 * cs_a, rs_a, cs_a, mc, kc,
                              pa);
            simd::avx2::PackB(b + p0 * rs_b + j0 * cs_b, rs_b, cs_b, kc, nc,
                              pb);
            simd::avx2::MacroKernel(pa, pb, c + i0 * n + j0, n, mc, kc, nc);
          }
        }
      });
}

}  // namespace

void Gemm(const float* a, const float* b, float* c, size_t m, size_t k,
          size_t n) {
  if (UseAvx2()) {
    GemmPackedAvx2(a, k, 1, b, n, 1, c, m, k, n);
    return;
  }
  util::ParallelFor(util::ComputePool(), 0, m, RowGrain(m, kMinRowGrain),
                    [=](size_t i0, size_t i1) {
                      GemmRowBlock(a, b, c, i0, i1, k, n);
                    });
}

void GemmTransA(const float* a, const float* b, float* c, size_t m, size_t k,
                size_t n) {
  if (UseAvx2()) {
    // A is k x m: element (i, p) lives at a[p*m + i].
    GemmPackedAvx2(a, 1, m, b, n, 1, c, m, k, n);
    return;
  }
  util::ParallelFor(util::ComputePool(), 0, m, RowGrain(m, kMinRowGrain),
                    [=](size_t i0, size_t i1) {
                      GemmTransARowBlock(a, b, c, i0, i1, m, k, n);
                    });
}

void GemmTransB(const float* a, const float* b, float* c, size_t m, size_t k,
                size_t n) {
  if (UseAvx2()) {
    // B is n x k: element (p, j) lives at b[j*k + p]. The strided reads
    // happen once, in PackB — not in the O(m*k*n) inner loop, which is
    // what made the historical strided-B kernel ~2x slower than the
    // other variants.
    GemmPackedAvx2(a, k, 1, b, 1, k, c, m, k, n);
    return;
  }
  util::ParallelFor(util::ComputePool(), 0, m, RowGrain(m, kMinRowGrain),
                    [=](size_t i0, size_t i1) {
                      GemmTransBRowBlock(a, b, c, i0, i1, k, n);
                    });
}

void AddBias(float* y, const float* bias, size_t m, size_t n) {
  util::ParallelFor(util::ComputePool(), 0, m, RowGrain(m, 16),
                    [=](size_t i0, size_t i1) {
                      for (size_t i = i0; i < i1; ++i) {
                        float* row = y + i * n;
                        for (size_t j = 0; j < n; ++j) row[j] += bias[j];
                      }
                    });
}

void BiasBackward(const float* grad, float* grad_bias, size_t m, size_t n) {
  // Column-parallel: each worker owns a disjoint column slice of the
  // reduction, so the row sweep needs no atomics.
  util::ParallelFor(util::ComputePool(), 0, n, RowGrain(n, 16),
                    [=](size_t j0, size_t j1) {
                      for (size_t j = j0; j < j1; ++j) grad_bias[j] = 0.0f;
                      for (size_t i = 0; i < m; ++i) {
                        const float* row = grad + i * n;
                        for (size_t j = j0; j < j1; ++j) {
                          grad_bias[j] += row[j];
                        }
                      }
                    });
}

void Gelu(const float* x, float* y, size_t n) {
  if (UseAvx2()) {
    util::ParallelFor(util::ComputePool(), 0, n, kElementGrain,
                      [=](size_t lo, size_t hi) {
                        simd::avx2::GeluBlock(x + lo, y + lo, hi - lo);
                      });
    return;
  }
  util::ParallelFor(util::ComputePool(), 0, n, kElementGrain,
                    [=](size_t lo, size_t hi) {
                      for (size_t i = lo; i < hi; ++i) {
                        y[i] = float(GeluScalar(x[i]));
                      }
                    });
}

void GeluBackward(const float* x, const float* dy, float* dx, size_t n) {
  if (UseAvx2()) {
    util::ParallelFor(util::ComputePool(), 0, n, kElementGrain,
                      [=](size_t lo, size_t hi) {
                        simd::avx2::GeluBackwardBlock(x + lo, dy + lo, dx + lo,
                                                      hi - lo);
                      });
    return;
  }
  util::ParallelFor(util::ComputePool(), 0, n, kElementGrain,
                    [=](size_t lo, size_t hi) {
                      for (size_t i = lo; i < hi; ++i) {
                        dx[i] = float(dy[i] * GeluGradScalar(x[i]));
                      }
                    });
}

void AddBiasGelu(float* z, const float* bias, float* y, size_t m, size_t n) {
  if (UseAvx2()) {
    util::ParallelFor(util::ComputePool(), 0, m, RowGrain(m, 8),
                      [=](size_t i0, size_t i1) {
                        simd::avx2::AddBiasGeluRows(z + i0 * n, bias,
                                                    y + i0 * n, i1 - i0, n);
                      });
    return;
  }
  util::ParallelFor(util::ComputePool(), 0, m, RowGrain(m, 8),
                    [=](size_t i0, size_t i1) {
                      for (size_t i = i0; i < i1; ++i) {
                        float* z_row = z + i * n;
                        float* y_row = y + i * n;
                        for (size_t j = 0; j < n; ++j) {
                          const float zj = z_row[j] + bias[j];
                          z_row[j] = zj;
                          y_row[j] = float(GeluScalar(zj));
                        }
                      }
                    });
}

void AddBiasGeluBackward(const float* z, const float* dy, float* dz,
                         float* dbias, size_t m, size_t n) {
  // Column-parallel for the same reason as BiasBackward: the dbias
  // reduction stays race-free, and dz is elementwise either way.
  if (UseAvx2()) {
    util::ParallelFor(util::ComputePool(), 0, n, RowGrain(n, 16),
                      [=](size_t j0, size_t j1) {
                        simd::avx2::AddBiasGeluBackwardCols(z, dy, dz, dbias,
                                                            m, n, j0, j1);
                      });
    return;
  }
  util::ParallelFor(util::ComputePool(), 0, n, RowGrain(n, 16),
                    [=](size_t j0, size_t j1) {
                      for (size_t j = j0; j < j1; ++j) dbias[j] = 0.0f;
                      for (size_t i = 0; i < m; ++i) {
                        const float* z_row = z + i * n;
                        const float* dy_row = dy + i * n;
                        float* dz_row = dz + i * n;
                        for (size_t j = j0; j < j1; ++j) {
                          const float d =
                              float(dy_row[j] * GeluGradScalar(z_row[j]));
                          dz_row[j] = d;
                          dbias[j] += d;
                        }
                      }
                    });
}

void LayerNorm(const float* x, const float* gamma, const float* beta,
               float* y, float* mean, float* rstd, size_t m, size_t n) {
  constexpr double kEps = 1e-5;
  if (UseAvx2()) {
    util::ParallelFor(util::ComputePool(), 0, m, RowGrain(m, kMinRowGrain),
                      [=](size_t i0, size_t i1) {
                        simd::avx2::LayerNormRows(x + i0 * n, gamma, beta,
                                                  y + i0 * n, mean + i0,
                                                  rstd + i0, i1 - i0, n);
                      });
    return;
  }
  util::ParallelFor(
      util::ComputePool(), 0, m, RowGrain(m, kMinRowGrain),
      [=](size_t i0, size_t i1) {
        for (size_t i = i0; i < i1; ++i) {
          const float* row = x + i * n;
          double sum = 0.0;
          for (size_t j = 0; j < n; ++j) sum += row[j];
          const double mu = sum / n;
          double var = 0.0;
          for (size_t j = 0; j < n; ++j) {
            const double d = row[j] - mu;
            var += d * d;
          }
          var /= n;
          const double rs = 1.0 / std::sqrt(var + kEps);
          mean[i] = float(mu);
          rstd[i] = float(rs);
          float* out = y + i * n;
          for (size_t j = 0; j < n; ++j) {
            out[j] = float((row[j] - mu) * rs * gamma[j] + beta[j]);
          }
        }
      });
}

void LayerNormBackward(const float* x, const float* gamma, const float* dy,
                       const float* mean, const float* rstd, float* dx,
                       float* dgamma, float* dbeta, size_t m, size_t n) {
  util::ThreadPool* pool = util::ComputePool();
  const size_t grain = RowGrain(m, kMinRowGrain);
  const size_t num_chunks = util::ParallelForNumChunks(0, m, grain);
  // Per-chunk partials: chunk c accumulates dgamma into partials[c*2n, n)
  // and dbeta into partials[c*2n + n, n); the column-parallel reduction
  // below folds them into the outputs. This is what makes the row loop
  // safe to parallelize — the historical code accumulated straight into
  // dgamma/dbeta, which would race across row chunks.
  std::vector<float> partials(num_chunks * 2 * n, 0.0f);
  float* partials_base = partials.data();
  const bool use_avx2 = UseAvx2();
  util::ParallelForChunks(
      pool, 0, m, grain,
      [=](size_t chunk, size_t i0, size_t i1) {
        float* pgamma = partials_base + chunk * 2 * n;
        float* pbeta = pgamma + n;
        if (use_avx2) {
          simd::avx2::LayerNormBackwardRows(x + i0 * n, gamma, dy + i0 * n,
                                            mean + i0, rstd + i0, dx + i0 * n,
                                            pgamma, pbeta, i1 - i0, n);
          return;
        }
        for (size_t i = i0; i < i1; ++i) {
          const float* x_row = x + i * n;
          const float* dy_row = dy + i * n;
          float* dx_row = dx + i * n;
          const double mu = mean[i];
          const double rs = rstd[i];
          double sum_dy_hat = 0.0, sum_dy_hat_xhat = 0.0;
          for (size_t j = 0; j < n; ++j) {
            const double xhat = (x_row[j] - mu) * rs;
            const double dy_hat = double(dy_row[j]) * gamma[j];
            sum_dy_hat += dy_hat;
            sum_dy_hat_xhat += dy_hat * xhat;
            pgamma[j] += float(dy_row[j] * xhat);
            pbeta[j] += dy_row[j];
          }
          for (size_t j = 0; j < n; ++j) {
            const double xhat = (x_row[j] - mu) * rs;
            const double dy_hat = double(dy_row[j]) * gamma[j];
            dx_row[j] = float(
                rs * (dy_hat - sum_dy_hat / n - xhat * sum_dy_hat_xhat / n));
          }
        }
      });
  util::ParallelFor(pool, 0, n, RowGrain(n, 16),
                    [=](size_t j0, size_t j1) {
                      for (size_t j = j0; j < j1; ++j) {
                        float dg = 0.0f, db = 0.0f;
                        for (size_t c = 0; c < num_chunks; ++c) {
                          dg += partials_base[c * 2 * n + j];
                          db += partials_base[c * 2 * n + n + j];
                        }
                        dgamma[j] = dg;
                        dbeta[j] = db;
                      }
                    });
}

double SoftmaxCrossEntropy(const float* logits, const int* labels,
                           float* grad, size_t m, size_t n) {
  const size_t grain = RowGrain(m, kMinRowGrain);
  const size_t num_chunks = util::ParallelForNumChunks(0, m, grain);
  std::vector<double> partial_loss(num_chunks, 0.0);
  double* partial_base = partial_loss.data();
  const bool use_avx2 = UseAvx2();
  util::ParallelForChunks(
      util::ComputePool(), 0, m, grain,
      [=](size_t chunk, size_t i0, size_t i1) {
        if (use_avx2) {
          partial_base[chunk] = simd::avx2::SoftmaxXentRows(
              logits + i0 * n, labels + i0, grad + i0 * n, i1 - i0, n,
              1.0 / double(m));
          return;
        }
        double loss = 0.0;
        for (size_t i = i0; i < i1; ++i) {
          const float* row = logits + i * n;
          float* grad_row = grad + i * n;
          double max_logit = row[0];
          for (size_t j = 1; j < n; ++j) {
            max_logit = std::max<double>(max_logit, row[j]);
          }
          double denom = 0.0;
          for (size_t j = 0; j < n; ++j) denom += std::exp(row[j] - max_logit);
          const int label = labels[i];
          loss += -(row[label] - max_logit - std::log(denom));
          for (size_t j = 0; j < n; ++j) {
            const double p = std::exp(row[j] - max_logit) / denom;
            grad_row[j] =
                float((p - (int(j) == label ? 1.0 : 0.0)) / double(m));
          }
        }
        partial_base[chunk] = loss;
      });
  double total_loss = 0.0;
  for (size_t c = 0; c < num_chunks; ++c) total_loss += partial_loss[c];
  return total_loss / m;
}

double MseLoss(const float* pred, const float* target, float* grad,
               size_t count) {
  const size_t grain = std::max<size_t>(kElementGrain,
                                        RowGrain(count, kElementGrain));
  const size_t num_chunks = util::ParallelForNumChunks(0, count, grain);
  std::vector<double> partial(num_chunks, 0.0);
  double* partial_base = partial.data();
  util::ParallelForChunks(util::ComputePool(), 0, count, grain,
                          [=](size_t chunk, size_t lo, size_t hi) {
                            double total = 0.0;
                            for (size_t i = lo; i < hi; ++i) {
                              const double d = double(pred[i]) - target[i];
                              total += d * d;
                              grad[i] = float(2.0 * d / double(count));
                            }
                            partial_base[chunk] = total;
                          });
  double total = 0.0;
  for (size_t c = 0; c < num_chunks; ++c) total += partial[c];
  return total / double(count);
}

namespace reference {

void Gemm(const float* a, const float* b, float* c, size_t m, size_t k,
          size_t n) {
  std::memset(c, 0, m * n * sizeof(float));
  // ikj loop order: streams through B and C rows, decent cache behaviour
  // without tiling machinery.
  for (size_t i = 0; i < m; ++i) {
    for (size_t p = 0; p < k; ++p) {
      const float aip = a[i * k + p];
      if (aip == 0.0f) continue;
      const float* b_row = b + p * n;
      float* c_row = c + i * n;
      for (size_t j = 0; j < n; ++j) {
        c_row[j] += aip * b_row[j];
      }
    }
  }
}

void GemmTransA(const float* a, const float* b, float* c, size_t m, size_t k,
                size_t n) {
  std::memset(c, 0, m * n * sizeof(float));
  for (size_t p = 0; p < k; ++p) {
    const float* a_row = a + p * m;
    const float* b_row = b + p * n;
    for (size_t i = 0; i < m; ++i) {
      const float api = a_row[i];
      if (api == 0.0f) continue;
      float* c_row = c + i * n;
      for (size_t j = 0; j < n; ++j) {
        c_row[j] += api * b_row[j];
      }
    }
  }
}

void GemmTransB(const float* a, const float* b, float* c, size_t m, size_t k,
                size_t n) {
  for (size_t i = 0; i < m; ++i) {
    const float* a_row = a + i * k;
    float* c_row = c + i * n;
    for (size_t j = 0; j < n; ++j) {
      const float* b_row = b + j * k;
      double sum = 0.0;
      for (size_t p = 0; p < k; ++p) {
        sum += double(a_row[p]) * b_row[p];
      }
      c_row[j] = float(sum);
    }
  }
}

void Gelu(const float* x, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] = float(GeluScalar(x[i]));
}

void LayerNorm(const float* x, const float* gamma, const float* beta,
               float* y, float* mean, float* rstd, size_t m, size_t n) {
  constexpr double kEps = 1e-5;
  for (size_t i = 0; i < m; ++i) {
    const float* row = x + i * n;
    double sum = 0.0;
    for (size_t j = 0; j < n; ++j) sum += row[j];
    const double mu = sum / n;
    double var = 0.0;
    for (size_t j = 0; j < n; ++j) {
      const double d = row[j] - mu;
      var += d * d;
    }
    var /= n;
    const double rs = 1.0 / std::sqrt(var + kEps);
    mean[i] = float(mu);
    rstd[i] = float(rs);
    float* out = y + i * n;
    for (size_t j = 0; j < n; ++j) {
      out[j] = float((row[j] - mu) * rs * gamma[j] + beta[j]);
    }
  }
}

void LayerNormBackward(const float* x, const float* gamma, const float* dy,
                       const float* mean, const float* rstd, float* dx,
                       float* dgamma, float* dbeta, size_t m, size_t n) {
  for (size_t j = 0; j < n; ++j) {
    dgamma[j] = 0.0f;
    dbeta[j] = 0.0f;
  }
  for (size_t i = 0; i < m; ++i) {
    const float* x_row = x + i * n;
    const float* dy_row = dy + i * n;
    float* dx_row = dx + i * n;
    const double mu = mean[i];
    const double rs = rstd[i];
    double sum_dy_hat = 0.0, sum_dy_hat_xhat = 0.0;
    for (size_t j = 0; j < n; ++j) {
      const double xhat = (x_row[j] - mu) * rs;
      const double dy_hat = double(dy_row[j]) * gamma[j];
      sum_dy_hat += dy_hat;
      sum_dy_hat_xhat += dy_hat * xhat;
      dgamma[j] += float(dy_row[j] * xhat);
      dbeta[j] += dy_row[j];
    }
    for (size_t j = 0; j < n; ++j) {
      const double xhat = (x_row[j] - mu) * rs;
      const double dy_hat = double(dy_row[j]) * gamma[j];
      dx_row[j] = float(
          rs * (dy_hat - sum_dy_hat / n - xhat * sum_dy_hat_xhat / n));
    }
  }
}

double SoftmaxCrossEntropy(const float* logits, const int* labels,
                           float* grad, size_t m, size_t n) {
  double total_loss = 0.0;
  for (size_t i = 0; i < m; ++i) {
    const float* row = logits + i * n;
    float* grad_row = grad + i * n;
    double max_logit = row[0];
    for (size_t j = 1; j < n; ++j) {
      max_logit = std::max<double>(max_logit, row[j]);
    }
    double denom = 0.0;
    for (size_t j = 0; j < n; ++j) denom += std::exp(row[j] - max_logit);
    const int label = labels[i];
    total_loss += -(row[label] - max_logit - std::log(denom));
    for (size_t j = 0; j < n; ++j) {
      const double p = std::exp(row[j] - max_logit) / denom;
      grad_row[j] = float((p - (int(j) == label ? 1.0 : 0.0)) / double(m));
    }
  }
  return total_loss / m;
}

}  // namespace reference

}  // namespace angelptm::train
