#include "train/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace angelptm::train {
namespace {

constexpr double kGeluC = 0.7978845608028654;  // sqrt(2/pi)

}  // namespace

void Gemm(const float* a, const float* b, float* c, size_t m, size_t k,
          size_t n) {
  std::memset(c, 0, m * n * sizeof(float));
  // ikj loop order: streams through B and C rows, decent cache behaviour
  // without tiling machinery.
  for (size_t i = 0; i < m; ++i) {
    for (size_t p = 0; p < k; ++p) {
      const float aip = a[i * k + p];
      if (aip == 0.0f) continue;
      const float* b_row = b + p * n;
      float* c_row = c + i * n;
      for (size_t j = 0; j < n; ++j) {
        c_row[j] += aip * b_row[j];
      }
    }
  }
}

void GemmTransA(const float* a, const float* b, float* c, size_t m, size_t k,
                size_t n) {
  std::memset(c, 0, m * n * sizeof(float));
  for (size_t p = 0; p < k; ++p) {
    const float* a_row = a + p * m;
    const float* b_row = b + p * n;
    for (size_t i = 0; i < m; ++i) {
      const float api = a_row[i];
      if (api == 0.0f) continue;
      float* c_row = c + i * n;
      for (size_t j = 0; j < n; ++j) {
        c_row[j] += api * b_row[j];
      }
    }
  }
}

void GemmTransB(const float* a, const float* b, float* c, size_t m, size_t k,
                size_t n) {
  for (size_t i = 0; i < m; ++i) {
    const float* a_row = a + i * k;
    float* c_row = c + i * n;
    for (size_t j = 0; j < n; ++j) {
      const float* b_row = b + j * k;
      double sum = 0.0;
      for (size_t p = 0; p < k; ++p) {
        sum += double(a_row[p]) * b_row[p];
      }
      c_row[j] = float(sum);
    }
  }
}

void AddBias(float* y, const float* bias, size_t m, size_t n) {
  for (size_t i = 0; i < m; ++i) {
    float* row = y + i * n;
    for (size_t j = 0; j < n; ++j) row[j] += bias[j];
  }
}

void BiasBackward(const float* grad, float* grad_bias, size_t m, size_t n) {
  for (size_t j = 0; j < n; ++j) grad_bias[j] = 0.0f;
  for (size_t i = 0; i < m; ++i) {
    const float* row = grad + i * n;
    for (size_t j = 0; j < n; ++j) grad_bias[j] += row[j];
  }
}

void Gelu(const float* x, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    const double v = x[i];
    y[i] = float(0.5 * v * (1.0 + std::tanh(kGeluC * (v + 0.044715 * v * v * v))));
  }
}

void GeluBackward(const float* x, const float* dy, float* dx, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    const double v = x[i];
    const double u = kGeluC * (v + 0.044715 * v * v * v);
    const double t = std::tanh(u);
    const double du = kGeluC * (1.0 + 3.0 * 0.044715 * v * v);
    const double grad = 0.5 * (1.0 + t) + 0.5 * v * (1.0 - t * t) * du;
    dx[i] = float(dy[i] * grad);
  }
}

void LayerNorm(const float* x, const float* gamma, const float* beta,
               float* y, float* mean, float* rstd, size_t m, size_t n) {
  constexpr double kEps = 1e-5;
  for (size_t i = 0; i < m; ++i) {
    const float* row = x + i * n;
    double sum = 0.0;
    for (size_t j = 0; j < n; ++j) sum += row[j];
    const double mu = sum / n;
    double var = 0.0;
    for (size_t j = 0; j < n; ++j) {
      const double d = row[j] - mu;
      var += d * d;
    }
    var /= n;
    const double rs = 1.0 / std::sqrt(var + kEps);
    mean[i] = float(mu);
    rstd[i] = float(rs);
    float* out = y + i * n;
    for (size_t j = 0; j < n; ++j) {
      out[j] = float((row[j] - mu) * rs * gamma[j] + beta[j]);
    }
  }
}

void LayerNormBackward(const float* x, const float* gamma, const float* dy,
                       const float* mean, const float* rstd, float* dx,
                       float* dgamma, float* dbeta, size_t m, size_t n) {
  for (size_t i = 0; i < m; ++i) {
    const float* x_row = x + i * n;
    const float* dy_row = dy + i * n;
    float* dx_row = dx + i * n;
    const double mu = mean[i];
    const double rs = rstd[i];
    double sum_dy_hat = 0.0, sum_dy_hat_xhat = 0.0;
    for (size_t j = 0; j < n; ++j) {
      const double xhat = (x_row[j] - mu) * rs;
      const double dy_hat = double(dy_row[j]) * gamma[j];
      sum_dy_hat += dy_hat;
      sum_dy_hat_xhat += dy_hat * xhat;
      dgamma[j] += float(dy_row[j] * xhat);
      dbeta[j] += dy_row[j];
    }
    for (size_t j = 0; j < n; ++j) {
      const double xhat = (x_row[j] - mu) * rs;
      const double dy_hat = double(dy_row[j]) * gamma[j];
      dx_row[j] = float(
          rs * (dy_hat - sum_dy_hat / n - xhat * sum_dy_hat_xhat / n));
    }
  }
}

double SoftmaxCrossEntropy(const float* logits, const int* labels,
                           float* grad, size_t m, size_t n) {
  double total_loss = 0.0;
  for (size_t i = 0; i < m; ++i) {
    const float* row = logits + i * n;
    float* grad_row = grad + i * n;
    double max_logit = row[0];
    for (size_t j = 1; j < n; ++j) max_logit = std::max<double>(max_logit, row[j]);
    double denom = 0.0;
    for (size_t j = 0; j < n; ++j) denom += std::exp(row[j] - max_logit);
    const int label = labels[i];
    total_loss += -(row[label] - max_logit - std::log(denom));
    for (size_t j = 0; j < n; ++j) {
      const double p = std::exp(row[j] - max_logit) / denom;
      grad_row[j] =
          float((p - (int(j) == label ? 1.0 : 0.0)) / double(m));
    }
  }
  return total_loss / m;
}

double MseLoss(const float* pred, const float* target, float* grad,
               size_t count) {
  double total = 0.0;
  for (size_t i = 0; i < count; ++i) {
    const double d = double(pred[i]) - target[i];
    total += d * d;
    grad[i] = float(2.0 * d / double(count));
  }
  return total / double(count);
}

}  // namespace angelptm::train
