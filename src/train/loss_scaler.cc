#include "train/loss_scaler.h"

#include <algorithm>
#include <cmath>

namespace angelptm::train {

LossScaler::LossScaler() : LossScaler(Options()) {}

LossScaler::LossScaler(const Options& options)
    : options_(options), scale_(options.initial_scale) {}

LossScaler::State LossScaler::GetState() const {
  State state;
  state.scale = scale_;
  state.good_steps = good_steps_;
  state.overflows = overflows_;
  state.growths = growths_;
  return state;
}

void LossScaler::SetState(const State& state) {
  scale_ = state.scale;
  good_steps_ = state.good_steps;
  overflows_ = state.overflows;
  growths_ = state.growths;
}

bool LossScaler::HasNonFinite(const std::vector<float>& values) {
  for (float v : values) {
    if (!std::isfinite(v)) return true;
  }
  return false;
}

bool LossScaler::Update(bool overflowed) {
  if (overflowed) {
    ++overflows_;
    good_steps_ = 0;
    scale_ = std::max(options_.min_scale,
                      scale_ * options_.backoff_factor);
    return false;
  }
  if (++good_steps_ >= options_.growth_interval) {
    good_steps_ = 0;
    const double grown = scale_ * options_.growth_factor;
    if (grown <= options_.max_scale) {
      scale_ = grown;
      ++growths_;
    }
  }
  return true;
}

}  // namespace angelptm::train
