#ifndef ANGELPTM_TRAIN_LAYERED_MODEL_H_
#define ANGELPTM_TRAIN_LAYERED_MODEL_H_

#include <cstddef>
#include <vector>

#include "util/random.h"

namespace angelptm::train {

/// Per-layer forward state kept for the backward pass. `input` and
/// `pre_activation` serve simple layers (MLP); `saved` holds whatever else
/// a layer needs (attention probabilities, LayerNorm statistics, ...).
struct LayerStash {
  std::vector<float> input;
  std::vector<float> pre_activation;
  std::vector<std::vector<float>> saved;
};

/// A model the training stack can drive layer by layer. Each layer is one
/// schedulable unit — the granularity at which Angel-PTM pages parameters,
/// traces life-times, and pipelines optimizer updates. Implemented by
/// MlpModel and TinyTransformer.
class LayeredModel {
 public:
  virtual ~LayeredModel() = default;

  virtual int num_layers() const = 0;
  /// Floats per sample at the model boundary.
  virtual size_t InputSize() const = 0;
  virtual size_t OutputSize() const = 0;

  /// Parameter elements of layer `layer`.
  virtual size_t LayerParamCount(int layer) const = 0;
  /// Fresh initial parameters for layer `layer`.
  virtual std::vector<float> InitLayerParams(int layer,
                                             util::Rng* rng) const = 0;

  /// Applies layer `layer` to `in` (batch x layer-input floats), producing
  /// `out`. When `stash` is non-null, records what Backward needs.
  virtual void Forward(int layer, const float* params,
                       const std::vector<float>& in, size_t batch,
                       std::vector<float>* out, LayerStash* stash) const = 0;

  /// Backward of layer `layer`: gradient wrt output -> gradient wrt input
  /// plus parameter gradients (same layout as the parameters).
  virtual void Backward(int layer, const float* params,
                        const LayerStash& stash,
                        const std::vector<float>& grad_out, size_t batch,
                        std::vector<float>* grad_in,
                        std::vector<float>* grad_params) const = 0;
};

}  // namespace angelptm::train

#endif  // ANGELPTM_TRAIN_LAYERED_MODEL_H_
