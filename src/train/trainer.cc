#include "train/trainer.h"

#include <algorithm>
#include <chrono>

#include "obs/trace.h"
#include "train/kernels.h"
#include "util/half.h"
#include "util/logging.h"

namespace angelptm::train {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Rounds every element through bfloat16 (the paper's compute precision).
void RoundToBf16(std::vector<float>* values) {
  for (float& v : *values) {
    v = util::BFloat16BitsToFloat(util::FloatToBFloat16Bits(v));
  }
}

}  // namespace

Trainer::Trainer(core::Allocator* allocator, const LayeredModel* model,
                 const TrainerOptions& options)
    : allocator_(allocator),
      model_(model),
      options_(options),
      scaler_(options.loss_scaler),
      rng_(options.seed) {
  obs::Registry& registry = obs::Registry::Instance();
  metric_fwd_us_ = registry.GetHistogram("train/fwd_us");
  metric_bwd_us_ = registry.GetHistogram("train/bwd_us");
  metric_opt_us_ = registry.GetHistogram("train/opt_us");
  metric_recoveries_ = registry.GetCounter("train/recoveries");
}

Trainer::~Trainer() {
  if (updater_ != nullptr) updater_->Stop();
}

util::Status Trainer::BuildUpdater(util::Rng* rng) {
  core::LockFreeUpdater::Options updater_options;
  updater_options.optimizer =
      core::ResolveLegacyAdam(options_.optimizer, options_.adam);
  updater_options.master_device = options_.master_device;
  updater_ = std::make_unique<core::LockFreeUpdater>(allocator_,
                                                     updater_options);
  for (int l = 0; l < model_->num_layers(); ++l) {
    ANGEL_RETURN_IF_ERROR(
        updater_->AddLayer(model_->InitLayerParams(l, rng)).status());
  }
  return util::Status::OK();
}

util::Status Trainer::Init() {
  ANGEL_RETURN_IF_ERROR(BuildUpdater(&rng_));
  if (!options_.checkpoint_dir.empty()) {
    core::CheckpointManager::Options manager_options;
    manager_options.dir = options_.checkpoint_dir;
    manager_options.keep_last = options_.checkpoint_keep_last;
    ckpt_manager_ = std::make_unique<core::CheckpointManager>(manager_options);
    ANGEL_RETURN_IF_ERROR(ckpt_manager_->Init());
  }
  return util::Status::OK();
}

core::TrainProgress Trainer::CurrentProgress() const {
  core::TrainProgress progress;
  progress.global_step = global_step_;
  progress.rng_state = rng_.GetState();
  const LossScaler::State scaler = scaler_.GetState();
  progress.loss_scale = scaler.scale;
  progress.scaler_good_steps = scaler.good_steps;
  progress.scaler_overflows = scaler.overflows;
  progress.scaler_growths = scaler.growths;
  progress.has_progress = true;
  return progress;
}

void Trainer::RestoreProgress(const core::TrainProgress& progress,
                              const SyntheticRegression* dataset) {
  global_step_ = progress.global_step;
  if (progress.has_progress) {
    rng_.SetState(progress.rng_state);
    LossScaler::State scaler;
    scaler.scale = progress.loss_scale;
    scaler.good_steps = progress.scaler_good_steps;
    scaler.overflows = progress.scaler_overflows;
    scaler.growths = progress.scaler_growths;
    scaler_.SetState(scaler);
    return;
  }
  // v1 checkpoint: no RNG/scaler state. Rebuild the data cursor by
  // re-consuming the seeded stream — the init draws, then every batch up to
  // the checkpointed step. The scaler restarts from its options (the only
  // approximation the upgrade path carries).
  rng_ = util::Rng(options_.seed);
  for (int l = 0; l < model_->num_layers(); ++l) {
    (void)model_->InitLayerParams(l, &rng_);
  }
  if (dataset != nullptr) {
    dataset->SkipBatches(&rng_, options_.batch_size, progress.global_step);
  }
  scaler_ = LossScaler(options_.loss_scaler);
}

util::Result<bool> Trainer::TryResume(const SyntheticRegression* dataset) {
  if (updater_ == nullptr) {
    return util::Status::FailedPrecondition("Init() not called");
  }
  if (ckpt_manager_ == nullptr) return false;
  auto latest = ckpt_manager_->LoadLatest(updater_.get());
  if (!latest.ok()) {
    if (latest.status().IsNotFound()) return false;  // Fresh start.
    return latest.status();
  }
  RestoreProgress(*latest, dataset);
  return true;
}

util::Status Trainer::Recover(const util::Status& cause,
                              const SyntheticRegression& dataset) {
  if (ckpt_manager_ == nullptr || options_.max_recoveries <= 0) return cause;
  // Only a poisoned updater is recoverable: it means the optimizer state is
  // suspect but a checkpoint of it is not. Anything else (protocol misuse,
  // bad arguments) would just fail again.
  if (updater_ == nullptr || updater_->status().ok()) return cause;
  if (recoveries_ >= uint64_t(options_.max_recoveries)) {
    return util::Status(cause.code(),
                        cause.message() + " (recovery budget of " +
                            std::to_string(options_.max_recoveries) +
                            " exhausted)");
  }
  recoveries_ += 1;
  metric_recoveries_->Increment();
  ANGEL_LOG(Warning) << "recovering from poisoned updater (attempt "
                     << recoveries_ << "/" << options_.max_recoveries
                     << "): " << cause.ToString();

  // Tear down the dead updater; its destructor releases every tensor so the
  // rebuild fits in the same memory budget.
  updater_->Stop();
  updater_.reset();
  // The rebuild's initial parameters are placeholders (the restore
  // overwrites them); a scratch RNG keeps rng_ — the data cursor — intact
  // until RestoreProgress rewinds it.
  util::Rng scratch_rng(options_.seed ^ 0xC0FFEEull);
  ANGEL_RETURN_IF_ERROR(BuildUpdater(&scratch_rng));
  ANGEL_ASSIGN_OR_RETURN(const core::TrainProgress progress,
                         ckpt_manager_->LoadLatest(updater_.get()));
  RestoreProgress(progress, &dataset);
  return util::Status::OK();
}

util::Result<double> Trainer::Step(const std::vector<float>& x,
                                   const std::vector<float>& y,
                                   bool use_master_params) {
  const int num_layers = model_->num_layers();
  const size_t batch = options_.batch_size;

  std::vector<std::vector<float>> params(num_layers);
  for (int l = 0; l < num_layers; ++l) {
    if (use_master_params) {
      ANGEL_RETURN_IF_ERROR(updater_->ReadMasterParams(l, &params[l]));
    } else {
      // Algorithm 2 line 20: fetch the buffered fp16 parameters.
      ANGEL_RETURN_IF_ERROR(updater_->FetchParams(l, &params[l]));
    }
    if (options_.compute_precision == ComputePrecision::kBf16) {
      RoundToBf16(&params[l]);
    }
  }

  // Forward (line 21).
  const bool bf16 =
      options_.compute_precision == ComputePrecision::kBf16;
  std::vector<LayerStash> stash(num_layers);
  std::vector<float> acts = x;
  const uint64_t fwd_start = NowUs();
  {
    ANGEL_SPAN("train", "forward");
    for (int l = 0; l < num_layers; ++l) {
      std::vector<float> next;
      model_->Forward(l, params[l].data(), acts, batch, &next,
                      use_master_params ? nullptr : &stash[l]);
      if (bf16) RoundToBf16(&next);  // Layer boundaries in bf16.
      acts = std::move(next);
    }
  }
  if (!use_master_params) {
    const uint64_t elapsed = NowUs() - fwd_start;
    fwd_us_.Record(elapsed);
    metric_fwd_us_->Record(elapsed);
  }

  std::vector<float> grad(acts.size());
  const double loss = MseLoss(acts.data(), y.data(), grad.data(), acts.size());
  if (use_master_params) return loss;  // Validation pass: no gradients.

  const double scale = options_.use_loss_scaling ? scaler_.scale() : 1.0;
  if (scale != 1.0) {
    for (float& g : grad) g = float(g * scale);
  }

  // Backward (line 23); gradients offload (line 24) only if none overflow.
  std::vector<std::vector<float>> layer_grads(num_layers);
  bool overflowed = false;
  const uint64_t bwd_start = NowUs();
  {
    ANGEL_SPAN("train", "backward");
    for (int l = num_layers - 1; l >= 0; --l) {
      std::vector<float> grad_in;
      model_->Backward(l, params[l].data(), stash[l], grad, batch, &grad_in,
                       &layer_grads[l]);
      if (bf16) {
        RoundToBf16(&grad_in);
        RoundToBf16(&layer_grads[l]);
      }
      grad = std::move(grad_in);
      if (options_.use_loss_scaling &&
          LossScaler::HasNonFinite(layer_grads[l])) {
        overflowed = true;
        break;
      }
    }
  }
  {
    const uint64_t elapsed = NowUs() - bwd_start;
    bwd_us_.Record(elapsed);
    metric_bwd_us_->Record(elapsed);
  }
  if (options_.use_loss_scaling) {
    if (!scaler_.Update(overflowed)) return loss;  // Skipped step.
    const float inv = float(1.0 / scale);
    for (auto& layer_grad : layer_grads) {
      for (float& g : layer_grad) g *= inv;
    }
  }
  for (int l = num_layers - 1; l >= 0; --l) {
    ANGEL_RETURN_IF_ERROR(updater_->OffloadGrads(l, layer_grads[l]));
  }
  return loss;
}

util::Status Trainer::TrainRange(const SyntheticRegression& dataset,
                                 int64_t base_step, int64_t target_step,
                                 TrainReport* report) {
  if (options_.lock_free) updater_->Start();
  std::vector<float> x, y;
  while (global_step_ < target_step) {
    ANGEL_SPAN("train", "step");
    dataset.GenBatch(&rng_, options_.batch_size, &x, &y);
    ANGEL_ASSIGN_OR_RETURN(const double loss, Step(x, y, false));
    global_step_ += 1;
    report->losses.push_back(loss);
    if (options_.lock_free) {
      report->telemetry.max_pending_batches =
          std::max(report->telemetry.max_pending_batches,
                   updater_->Snapshot().pending_grad_batches);
    } else if ((global_step_ - base_step) %
                   std::max(1, options_.grad_accumulation) ==
               0) {
      ANGEL_SPAN("train", "update_once");
      const uint64_t opt_start = NowUs();
      ANGEL_RETURN_IF_ERROR(updater_->UpdateOnce());
      const uint64_t elapsed = NowUs() - opt_start;
      opt_us_.Record(elapsed);
      metric_opt_us_->Record(elapsed);
    }
    if (ckpt_manager_ != nullptr && options_.checkpoint_every_n_steps > 0 &&
        global_step_ % options_.checkpoint_every_n_steps == 0) {
      // The cut is taken with the updater threads still running (per-layer
      // quiesce); in lock-free mode the optimizer keeps folding gradients
      // while the file is written. A failed save is a warning, not a dead
      // run — the previous rotated checkpoint still covers recovery.
      const util::Status saved =
          ckpt_manager_->Save(updater_.get(), CurrentProgress());
      if (!saved.ok()) {
        ANGEL_LOG(Warning) << "checkpoint at step " << global_step_
                           << " failed: " << saved.ToString();
      }
    }
  }
  if (!options_.lock_free) {
    // Flush a trailing partial accumulation window.
    ANGEL_RETURN_IF_ERROR(updater_->UpdateOnce());
  }
  if (options_.lock_free) {
    const util::Status drained = updater_->DrainUpdates(
        std::chrono::milliseconds(options_.drain_deadline_ms));
    updater_->Stop();  // Join the threads even when the drain failed.
    ANGEL_RETURN_IF_ERROR(drained);
  }
  return util::Status::OK();
}

util::Result<TrainReport> Trainer::Train(const SyntheticRegression& dataset,
                                         int steps) {
  if (updater_ == nullptr) {
    return util::Status::FailedPrecondition("Init() not called");
  }
  TrainReport report;
  fwd_us_ = obs::HistogramData();
  bwd_us_ = obs::HistogramData();
  opt_us_ = obs::HistogramData();
  const int64_t base_step = global_step_;
  const int64_t target_step = base_step + steps;
  const uint64_t recoveries_at_entry = recoveries_;
  const double start = NowSeconds();

  // The recovery loop (§3.1): a poisoned updater inside the range is torn
  // down and rebuilt from the latest valid checkpoint, the step counter and
  // data cursor rewind with it, and the range re-runs from there — bounded
  // by max_recoveries.
  for (;;) {
    const util::Status ran = TrainRange(dataset, base_step, target_step,
                                        &report);
    if (ran.ok()) break;
    ANGEL_RETURN_IF_ERROR(Recover(ran, dataset));
    // Steps past the restored checkpoint will re-run: drop their losses.
    const int64_t kept = std::max<int64_t>(global_step_ - base_step, 0);
    if (int64_t(report.losses.size()) > kept) report.losses.resize(kept);
  }

  report.wall_seconds = NowSeconds() - start;
  report.steps_per_second =
      report.wall_seconds > 0 ? steps / report.wall_seconds : 0.0;
  report.final_train_loss =
      report.losses.empty() ? 0.0 : report.losses.back();
  report.overflow_steps_skipped = scaler_.steps_skipped();
  report.final_loss_scale =
      options_.use_loss_scaling ? scaler_.scale() : 1.0;
  ANGEL_ASSIGN_OR_RETURN(report.validation_loss, Validate(dataset, 8));

  report.telemetry.fwd_us = fwd_us_;
  report.telemetry.bwd_us = bwd_us_;
  report.telemetry.opt_us = opt_us_;
  report.telemetry.updater = updater_->Snapshot();
  report.telemetry.recoveries = recoveries_ - recoveries_at_entry;
  if (ckpt_manager_ != nullptr) {
    report.telemetry.checkpoint = ckpt_manager_->Snapshot();
    report.telemetry.has_checkpoint_manager = true;
  }
  mem::HierarchicalMemory* memory = allocator_->memory();
  report.telemetry.memory = memory->Snapshot();
  if (memory->ssd_enabled()) {
    report.telemetry.ssd = memory->ssd()->Snapshot();
    report.telemetry.has_ssd = true;
  }
  return report;
}

util::Result<double> Trainer::Validate(const SyntheticRegression& dataset,
                                       int batches) {
  if (updater_ == nullptr) {
    return util::Status::FailedPrecondition("Init() not called");
  }
  ANGEL_SPAN("train", "validate");
  util::Rng validation_rng(options_.seed ^ 0x5EEDF00Dull);
  double total = 0.0;
  std::vector<float> x, y;
  for (int i = 0; i < batches; ++i) {
    dataset.GenBatch(&validation_rng, options_.batch_size, &x, &y);
    ANGEL_ASSIGN_OR_RETURN(const double loss, Step(x, y, true));
    total += loss;
  }
  return total / batches;
}

}  // namespace angelptm::train
