#ifndef ANGELPTM_TRAIN_TRANSFORMER_H_
#define ANGELPTM_TRAIN_TRANSFORMER_H_

#include <cstddef>
#include <vector>

#include "train/layered_model.h"
#include "util/random.h"

namespace angelptm::train {

/// A real (small) Transformer, numerically complete: pre-LayerNorm decoder
/// blocks with causal multi-head self-attention and a GeLU FFN, plus a
/// mean-pool linear head. Forward *and* backward are implemented from
/// scratch over the fp32 kernels — this is the architecture whose memory
/// behaviour the paper studies (Table 1's components appear literally in
/// each block), trained for real through the page-based engine and the
/// lock-free updater.
///
/// One block = one schedulable layer, parameter layout:
///   Wq,Wk,Wv,Wo (d*d each) | ln1 gamma,beta (d each) |
///   W1 (d*f), b1 (f), W2 (f*d), b2 (d) | ln2 gamma,beta (d each)
/// The head layer holds d*out + out.
struct TransformerConfig {
  size_t seq_len = 8;
  size_t d_model = 16;
  size_t num_heads = 2;
  size_t d_ffn = 32;
  int num_blocks = 2;
  size_t out_dim = 2;
};

class TinyTransformer : public LayeredModel {
 public:
  explicit TinyTransformer(const TransformerConfig& config);

  const TransformerConfig& config() const { return config_; }

  int num_layers() const override { return config_.num_blocks + 1; }
  size_t InputSize() const override {
    return config_.seq_len * config_.d_model;
  }
  size_t OutputSize() const override { return config_.out_dim; }

  size_t LayerParamCount(int layer) const override;
  std::vector<float> InitLayerParams(int layer,
                                     util::Rng* rng) const override;

  void Forward(int layer, const float* params, const std::vector<float>& in,
               size_t batch, std::vector<float>* out,
               LayerStash* stash) const override;
  void Backward(int layer, const float* params, const LayerStash& stash,
                const std::vector<float>& grad_out, size_t batch,
                std::vector<float>* grad_in,
                std::vector<float>* grad_params) const override;

 private:
  bool IsHead(int layer) const { return layer == config_.num_blocks; }

  void BlockForward(const float* params, const std::vector<float>& in,
                    size_t batch, std::vector<float>* out,
                    LayerStash* stash) const;
  void BlockBackward(const float* params, const LayerStash& stash,
                     const std::vector<float>& grad_out, size_t batch,
                     std::vector<float>* grad_in,
                     std::vector<float>* grad_params) const;
  void HeadForward(const float* params, const std::vector<float>& in,
                   size_t batch, std::vector<float>* out,
                   LayerStash* stash) const;
  void HeadBackward(const float* params, const LayerStash& stash,
                    const std::vector<float>& grad_out, size_t batch,
                    std::vector<float>* grad_in,
                    std::vector<float>* grad_params) const;

  /// Causal multi-head attention over LayerNormed activations h1
  /// (rows = batch*seq x d). Produces the concatenated head outputs O and
  /// saves the per-head attention probabilities.
  void Attention(const float* q, const float* k, const float* v,
                 size_t batch, std::vector<float>* concat_out,
                 std::vector<float>* probs) const;

  TransformerConfig config_;
};

}  // namespace angelptm::train

#endif  // ANGELPTM_TRAIN_TRANSFORMER_H_
