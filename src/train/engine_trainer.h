#ifndef ANGELPTM_TRAIN_ENGINE_TRAINER_H_
#define ANGELPTM_TRAIN_ENGINE_TRAINER_H_

#include <memory>
#include <vector>

#include "core/engine.h"
#include "train/dataset.h"
#include "train/layered_model.h"
#include "train/trainer.h"
#include "util/random.h"
#include "util/status.h"

namespace angelptm::train {

/// The full-system training loop: every step goes through the paged Engine
/// — parameters staged into the fast tier on the unified schedule, boundary
/// activations stashed on hierarchical memory and interiors recomputed in
/// backward (§4.2), gradients offloaded to the (optionally lock-free)
/// updater. This is `train::Trainer` with the Angel-PTM runtime actually
/// underneath it instead of direct buffer access.
struct EngineTrainerOptions {
  core::EngineOptions engine;
  size_t batch_size = 32;
  /// Stash boundary activations on the hierarchical memory and recompute
  /// layer interiors in backward (§4.2). When false the caller-side stash
  /// stays in host vectors like a conventional framework.
  bool offload_activations = true;
  uint64_t seed = 1234;
  /// Upper bound on the end-of-training drain in lock-free mode.
  int drain_deadline_ms = 60000;
};

class EngineTrainer {
 public:
  /// `model` must outlive the trainer.
  EngineTrainer(const LayeredModel* model,
                const EngineTrainerOptions& options);

  EngineTrainer(const EngineTrainer&) = delete;
  EngineTrainer& operator=(const EngineTrainer&) = delete;

  /// Creates the engine and registers every layer.
  util::Status Init();

  /// Runs `steps` training steps; same report shape as train::Trainer.
  util::Result<TrainReport> Train(const SyntheticRegression& dataset,
                                  int steps);

  core::Engine* engine() { return engine_.get(); }

 private:
  util::Result<double> Step(const std::vector<float>& x,
                            const std::vector<float>& y);

  const LayeredModel* model_;
  EngineTrainerOptions options_;
  std::unique_ptr<core::Engine> engine_;
  util::Rng rng_;

  /// Per-run phase timers (reset at Train()); the same series also feed the
  /// process-wide "train/fwd_us" etc. registry histograms.
  obs::HistogramData fwd_us_;
  obs::HistogramData bwd_us_;
  obs::HistogramData opt_us_;
  obs::Histogram* metric_fwd_us_ = nullptr;
  obs::Histogram* metric_bwd_us_ = nullptr;
  obs::Histogram* metric_opt_us_ = nullptr;
};

}  // namespace angelptm::train

#endif  // ANGELPTM_TRAIN_ENGINE_TRAINER_H_
