#ifndef ANGELPTM_TRAIN_ENGINE_TRAINER_H_
#define ANGELPTM_TRAIN_ENGINE_TRAINER_H_

#include <memory>
#include <vector>

#include "core/checkpoint_manager.h"
#include "core/engine.h"
#include "train/dataset.h"
#include "train/layered_model.h"
#include "train/trainer.h"
#include "util/random.h"
#include "util/status.h"

namespace angelptm::train {

/// The full-system training loop: every step goes through the paged Engine
/// — parameters staged into the fast tier on the unified schedule, boundary
/// activations stashed on hierarchical memory and interiors recomputed in
/// backward (§4.2), gradients offloaded to the (optionally lock-free)
/// updater. This is `train::Trainer` with the Angel-PTM runtime actually
/// underneath it instead of direct buffer access.
struct EngineTrainerOptions {
  core::EngineOptions engine;
  size_t batch_size = 32;
  /// Stash boundary activations on the hierarchical memory and recompute
  /// layer interiors in backward (§4.2). When false the caller-side stash
  /// stays in host vectors like a conventional framework.
  bool offload_activations = true;
  uint64_t seed = 1234;
  /// Upper bound on the end-of-training drain in lock-free mode.
  int drain_deadline_ms = 60000;

  // --- Fault tolerance (§3.1; DESIGN.md §9). Same semantics as the
  // corresponding TrainerOptions fields. ---
  int checkpoint_every_n_steps = 0;
  std::string checkpoint_dir;
  int checkpoint_keep_last = 3;
  /// When > 0, Train() rebuilds the whole Engine (memory hierarchy, copy
  /// engine, updater — the schedule re-traces on the first post-recovery
  /// step) from the latest valid checkpoint after an updater poisoning.
  int max_recoveries = 0;
};

class EngineTrainer {
 public:
  /// `model` must outlive the trainer.
  EngineTrainer(const LayeredModel* model,
                const EngineTrainerOptions& options);

  EngineTrainer(const EngineTrainer&) = delete;
  EngineTrainer& operator=(const EngineTrainer&) = delete;

  /// Creates the engine and registers every layer.
  [[nodiscard]] util::Status Init();

  /// Restores the newest valid checkpoint into the engine's updater and
  /// rewinds the step counter / data cursor. Returns false when no
  /// checkpoint exists. Call after Init(), before Train().
  [[nodiscard]] util::Result<bool> TryResume(const SyntheticRegression* dataset = nullptr);

  /// Runs `steps` training steps; same report shape as train::Trainer.
  /// With `max_recoveries > 0`, an updater poisoning is absorbed by
  /// rebuilding the engine from the latest valid checkpoint.
  [[nodiscard]] util::Result<TrainReport> Train(const SyntheticRegression& dataset,
                                  int steps);

  core::Engine* engine() { return engine_.get(); }
  core::CheckpointManager* checkpoint_manager() { return ckpt_manager_.get(); }
  int64_t global_step() const { return global_step_; }
  uint64_t recoveries() const { return recoveries_; }

 private:
  [[nodiscard]] util::Result<double> Step(const std::vector<float>& x,
                            const std::vector<float>& y);

  /// Creates the engine and registers every layer, drawing the initial
  /// parameters from `rng` (shared by Init and the recovery rebuild).
  [[nodiscard]] util::Status BuildEngine(util::Rng* rng);
  /// The step loop from global_step_ to `target_step`, checkpointing
  /// periodically and draining at the end.
  [[nodiscard]] util::Status TrainRange(const SyntheticRegression& dataset,
                          int64_t target_step, TrainReport* report);
  [[nodiscard]] util::Status Recover(const util::Status& cause,
                       const SyntheticRegression& dataset);
  void RestoreProgress(const core::TrainProgress& progress,
                       const SyntheticRegression* dataset);
  core::TrainProgress CurrentProgress() const;

  const LayeredModel* model_;
  EngineTrainerOptions options_;
  std::unique_ptr<core::Engine> engine_;
  std::unique_ptr<core::CheckpointManager> ckpt_manager_;
  util::Rng rng_;
  int64_t global_step_ = 0;
  uint64_t recoveries_ = 0;

  /// Per-run phase timers (reset at Train()); the same series also feed the
  /// process-wide "train/fwd_us" etc. registry histograms.
  obs::HistogramData fwd_us_;
  obs::HistogramData bwd_us_;
  obs::HistogramData opt_us_;
  obs::Histogram* metric_fwd_us_ = nullptr;
  obs::Histogram* metric_bwd_us_ = nullptr;
  obs::Histogram* metric_opt_us_ = nullptr;
  obs::Counter* metric_recoveries_ = nullptr;
};

}  // namespace angelptm::train

#endif  // ANGELPTM_TRAIN_ENGINE_TRAINER_H_
