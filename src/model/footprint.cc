#include "model/footprint.h"

#include <algorithm>

namespace angelptm::model {

const char* ModelFamilyName(ModelFamily family) {
  switch (family) {
    case ModelFamily::kGpt:
      return "GPT";
    case ModelFamily::kT5:
      return "T5";
    case ModelFamily::kT5Moe:
      return "T5-MoE";
  }
  return "unknown";
}

LayerFootprint ComputeLayerFootprint(uint64_t batch, uint64_t seq_len,
                                     uint64_t d_model, uint64_t d_ffn) {
  const uint64_t b = batch, s = seq_len, dm = d_model, dffn = d_ffn;
  LayerFootprint fp;
  // Rows follow Table 1 verbatim. Params counts fp16 param + grad pairs
  // (x2 for "forward and backward" x2 bytes); Optims counts fp32 master
  // parameter + momentum + variance (x3 x4 bytes); Acts are fp16.
  fp.components = {
      // Attention block.
      {"Attn", "Linear(Q,K,V)", 12 * dm * dm, 12 * b * s * dm, 36 * dm * dm},
      {"Attn", "MatMul", 0, 4 * b * s, 0},
      {"Attn", "ScaledMaskSoftmax", 0, 4 * b * s, 0},
      {"Attn", "MatMul", 0, 4 * b * s * dm, 0},
      {"Attn", "Linear", 4 * dm * dm, 4 * b * s * dm, 12 * dm * dm},
      {"Attn", "Add", 0, 4 * b * s * dm, 0},
      {"Attn", "LayerNorm", 4 * dm, 4 * b * s * dm, 12 * dm},
      // Feed-forward block.
      {"FFN", "Linear", 4 * dm * dffn, 4 * b * s * dffn, 12 * dm * dffn},
      {"FFN", "GeLU", 0, 4 * b * s * dffn, 0},
      {"FFN", "Linear", 4 * dm * dffn, 4 * b * s * dm, 12 * dm * dffn},
      {"FFN", "Add", 0, 4 * b * s * dm, 0},
      {"FFN", "LayerNorm", 4 * dm, 4 * b * s * dm, 12 * dm},
  };
  for (const auto& c : fp.components) {
    fp.params_bytes += c.params_bytes;
    fp.acts_bytes += c.acts_bytes;
    fp.optim_bytes += c.optim_bytes;
  }
  return fp;
}

std::vector<StateTensorInfo> EnumerateStateTensors(uint64_t d_model,
                                                   uint64_t d_ffn,
                                                   uint64_t batch,
                                                   uint64_t seq_len,
                                                   int num_heads) {
  (void)batch;
  (void)seq_len;
  (void)num_heads;
  const uint64_t dm = d_model, dffn = d_ffn;
  // Per §2.2 the paper ignores biases; LayerNorm weights are kept because
  // they produce the KB-scale rows of Table 2 that motivate small-tensor
  // handling in the page allocator.
  std::vector<StateTensorInfo> tensors = {
      // fp32 master parameter / momentum / variance (3 copies each).
      {"ffn_linear.fp32_state", dm * dffn * 4, /*count=*/2 * 3},
      {"attn_linear.fp32_state", dm * dm * 4, /*count=*/4 * 3},
      {"layernorm.fp32_state", dm * 4, /*count=*/2 * 3},
      // fp16 parameter + gradient (2 copies each).
      {"ffn_linear.fp16", dm * dffn * 2, /*count=*/2 * 2},
      {"attn_linear.fp16", dm * dm * 2, /*count=*/4 * 2},
      {"layernorm.fp16", dm * 2, /*count=*/2 * 2},
  };
  std::sort(tensors.begin(), tensors.end(),
            [](const StateTensorInfo& a, const StateTensorInfo& b) {
              return a.bytes > b.bytes;
            });
  return tensors;
}

namespace {

/// Parameter elements of a decoder-only (GPT) layer.
uint64_t GptLayerParams(const TransformerConfig& c) {
  return 4 * c.d_model * c.d_model + 2 * c.d_model * c.d_ffn + 4 * c.d_model;
}

/// Parameter elements of one T5 encoder block (self-attn + FFN).
uint64_t T5EncoderBlockParams(const TransformerConfig& c) {
  return 4 * c.d_model * c.d_model + 2 * c.d_model * c.d_ffn + 4 * c.d_model;
}

/// Parameter elements of one T5 decoder block (adds cross-attention).
uint64_t T5DecoderBlockParams(const TransformerConfig& c) {
  return 8 * c.d_model * c.d_model + 2 * c.d_model * c.d_ffn + 6 * c.d_model;
}

/// Parameter elements of one MoE block: attention plus a bank of experts
/// (each expert is a 2 * d_m * d_ffn FFN) plus the router.
uint64_t MoeBlockParams(const TransformerConfig& c) {
  return 4 * c.d_model * c.d_model +
         uint64_t(c.num_experts) * 2 * c.d_model * c.d_ffn +
         uint64_t(c.num_experts) * c.d_model /* router */ + 4 * c.d_model;
}

}  // namespace

uint64_t LayerParamCount(const TransformerConfig& config) {
  switch (config.family) {
    case ModelFamily::kGpt:
      return GptLayerParams(config);
    case ModelFamily::kT5:
      return T5EncoderBlockParams(config) + T5DecoderBlockParams(config);
    case ModelFamily::kT5Moe:
      return MoeBlockParams(config);
  }
  return 0;
}

uint64_t TotalParamCount(const TransformerConfig& config) {
  const uint64_t embedding = config.vocab_size * config.d_model;
  switch (config.family) {
    case ModelFamily::kGpt:
      return uint64_t(config.num_layers) * GptLayerParams(config) + embedding;
    case ModelFamily::kT5:
      // num_layers counts encoder/decoder pairs.
      return uint64_t(config.num_layers) *
                 (T5EncoderBlockParams(config) + T5DecoderBlockParams(config)) +
             embedding;
    case ModelFamily::kT5Moe:
      // num_layers counts total MoE transformer blocks (the paper's
      // T5-MoE-1.2T: 16 blocks x 2304 experts x 2*1024*16384 = 1.24T).
      return uint64_t(config.num_layers) * MoeBlockParams(config) + embedding;
  }
  return 0;
}

uint64_t TotalModelStateBytes(const TransformerConfig& config) {
  return TotalParamCount(config) *
         (kFp16ParamGradBytesPerElem + kOptimizerBytesPerElem);
}

namespace {

/// Activation bytes of one layer for one micro-batch (Table 1 closed form,
/// plus the attention-score matrices which dominate at long sequences).
uint64_t LayerActivationBytes(const TransformerConfig& c, int micro_batch) {
  const uint64_t b = micro_batch, s = c.seq_len;
  uint64_t bytes = 40 * b * s * c.d_model + 8 * b * s * c.d_ffn + 8 * b * s;
  // Attention scores: b * heads * s * s fp16, forward + backward.
  bytes += 4 * b * uint64_t(c.num_heads) * s * s;
  if (c.family != ModelFamily::kGpt) {
    // Decoder cross-attention roughly doubles the attention activations; the
    // pair (encoder+decoder) costs ~2.3x one decoder-only layer. Use 2x as a
    // documented approximation.
    bytes *= 2;
  }
  return bytes;
}

}  // namespace

uint64_t TotalActivationBytes(const TransformerConfig& config,
                              int micro_batch) {
  return uint64_t(config.num_layers) *
         LayerActivationBytes(config, micro_batch);
}

uint64_t ResidentActivationBytes(const TransformerConfig& config,
                                 int micro_batch) {
  // With recomputation only the per-layer boundary activation (b, s, d_m in
  // fp16) is retained for every layer; one layer's interior working set is
  // live at a time while it is recomputed during backward.
  const uint64_t boundary = uint64_t(config.num_layers) * 2 *
                            uint64_t(micro_batch) * config.seq_len *
                            config.d_model;
  return boundary + LayerActivationBytes(config, micro_batch);
}

}  // namespace angelptm::model
