#ifndef ANGELPTM_MODEL_MODEL_ZOO_H_
#define ANGELPTM_MODEL_MODEL_ZOO_H_

#include <string>
#include <vector>

#include "model/transformer_config.h"
#include "util/status.h"

namespace angelptm::model {

/// Returns the evaluation models of the paper's Table 4, configs verbatim:
///
///   GPT3-1.7B/13B/28B/30B/55B/120B/175B, T5-1.4B/27B/58B, T5-MoE-1.2T.
///
/// Parameter counts are recomputed from the configs by TotalParamCount();
/// where the paper's table is internally inconsistent (e.g. GPT3-28B's 26
/// layers at d_m=8192 computes to ~21B) the *config* wins and the delta is
/// recorded in EXPERIMENTS.md.
std::vector<TransformerConfig> PaperModelZoo();

/// Looks up a zoo model by name ("GPT3-175B").
[[nodiscard]] util::Result<TransformerConfig> FindModel(const std::string& name);

/// Builds a GPT config with `num_layers` layers and the given dims; used by
/// the Table 5 max-model-scale search which grows the layer count until OOM.
TransformerConfig MakeGptConfig(int num_layers, int num_heads,
                                uint64_t d_model, uint64_t d_ffn);

/// T5 equivalent (num_layers = encoder/decoder pairs).
TransformerConfig MakeT5Config(int num_layers, int num_heads,
                               uint64_t d_model, uint64_t d_ffn);

/// T5-MoE with `num_experts` experts per block across `num_layers` blocks.
TransformerConfig MakeT5MoeConfig(int num_layers, int num_experts,
                                  uint64_t d_model, uint64_t d_ffn);

}  // namespace angelptm::model

#endif  // ANGELPTM_MODEL_MODEL_ZOO_H_
