#ifndef ANGELPTM_MODEL_TRANSFORMER_CONFIG_H_
#define ANGELPTM_MODEL_TRANSFORMER_CONFIG_H_

#include <cstdint>
#include <string>

namespace angelptm::model {

/// Architecture family. GPT is decoder-only; T5 is encoder-decoder (decoder
/// layers carry an extra cross-attention block); T5-MoE replaces every FFN
/// with a bank of experts (Switch-Transformer style).
enum class ModelFamily { kGpt, kT5, kT5Moe };

const char* ModelFamilyName(ModelFamily family);

/// Static description of a Transformer model, mirroring the columns of the
/// paper's Table 4 (#Layer, #Head, d_Model, d_FFN, #Expert).
struct TransformerConfig {
  std::string name;
  ModelFamily family = ModelFamily::kGpt;
  /// Number of layers. For T5 families this counts encoder/decoder *pairs*
  /// (layer i has one encoder and one decoder block).
  int num_layers = 0;
  int num_heads = 0;
  uint64_t d_model = 0;
  uint64_t d_ffn = 0;
  /// Experts per MoE layer (0 for dense models).
  int num_experts = 0;
  uint64_t vocab_size = 51200;
  uint64_t seq_len = 2048;

  bool IsMoe() const { return num_experts > 0; }
};

/// Training hyper-parameters that drive memory/throughput accounting.
struct TrainingConfig {
  int micro_batch = 1;
  /// Activation recomputation (§4.2): forward activations are released and
  /// regenerated during backward, trading FLOPs for memory.
  bool recompute_activations = true;
};

}  // namespace angelptm::model

#endif  // ANGELPTM_MODEL_TRANSFORMER_CONFIG_H_
