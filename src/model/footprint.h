#ifndef ANGELPTM_MODEL_FOOTPRINT_H_
#define ANGELPTM_MODEL_FOOTPRINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "model/transformer_config.h"

namespace angelptm::model {

/// Bytes per element under mixed-precision training with Adam (§2.2):
///  - fp16 parameter + fp16 gradient: 2 + 2 bytes ("forward and backward").
///  - fp32 master parameter + momentum + variance: 3 * 4 bytes.
inline constexpr uint64_t kFp16ParamGradBytesPerElem = 4;   // 2 * 2 bytes.
inline constexpr uint64_t kOptimizerBytesPerElem = 12;      // 3 * 4 bytes.
inline constexpr uint64_t kActivationBytesPerElem = 2;      // fp16.

/// One row of the paper's Table 1: a single operation within a Transformer
/// layer with its parameter, activation and optimizer-state footprints.
struct ComponentFootprint {
  std::string block;   // "Attn" or "FFN".
  std::string layer;   // Operation name, e.g. "Linear(Q,K,V)".
  uint64_t params_bytes = 0;  // FP16 params + grads (the table's Params.(B)).
  uint64_t acts_bytes = 0;    // FP16 activations (Acts.(B)).
  uint64_t optim_bytes = 0;   // FP32 model states (Optims.(B)).
};

/// Footprint of one full Transformer layer.
struct LayerFootprint {
  std::vector<ComponentFootprint> components;
  uint64_t params_bytes = 0;
  uint64_t acts_bytes = 0;
  uint64_t optim_bytes = 0;

  /// Number of parameter *elements* in the layer (params_bytes covers the
  /// fp16 param + grad pair at 4 bytes/element).
  uint64_t ParamCount() const { return params_bytes / kFp16ParamGradBytesPerElem; }
  /// Total bytes of model states (fp16 param+grad and fp32 optimizer).
  uint64_t ModelStateBytes() const { return params_bytes + optim_bytes; }
};

/// Computes Table 1 for a decoder-style Transformer layer: input X of shape
/// (b, s, d_m), FFN hidden d_ffn. Closed forms (verified by unit test):
///   Params = 16 d_m^2 + 8 d_m d_ffn (+ LayerNorm terms)
///   Acts   = 40 b s d_m + 8 b s d_ffn (+ attention-score terms)
///   Optims = 48 d_m^2 + 24 d_m d_ffn (+ LayerNorm terms)
LayerFootprint ComputeLayerFootprint(uint64_t batch, uint64_t seq_len,
                                     uint64_t d_model, uint64_t d_ffn);

/// One model-state tensor of a layer, used to regenerate Table 2 (the
/// tensor-size distribution that motivates page-based management).
struct StateTensorInfo {
  std::string name;
  uint64_t bytes = 0;
  /// Number of identical tensors of this kind in one layer.
  int count = 1;
};

/// Enumerates every model-state tensor of one Transformer layer (fp16
/// param/grad pairs and fp32 master/momentum/variance), sorted by descending
/// size. With GPT3's d_m = 12288, d_ffn = 49152 this reproduces the size
/// classes of Table 2 (3072/2304/1152/768/576/288 MB down to KB-scale
/// LayerNorm tensors).
std::vector<StateTensorInfo> EnumerateStateTensors(uint64_t d_model,
                                                   uint64_t d_ffn,
                                                   uint64_t batch = 1,
                                                   uint64_t seq_len = 2048,
                                                   int num_heads = 96);

/// Parameter elements of one schedulable layer: a GPT decoder layer, a T5
/// encoder/decoder pair, or a full MoE block (all experts — this is the
/// *memory* cost; the compute cost only touches the routed expert).
uint64_t LayerParamCount(const TransformerConfig& config);

/// Total parameter elements of a model (layers + token embedding).
/// Documented formulas:
///  - GPT layer: 4 d_m^2 (QKV + output projection) + 2 d_m d_ffn + 4 d_m.
///  - T5 encoder layer: 4 d_m^2 + 2 d_m d_ffn; decoder adds 4 d_m^2 of
///    cross-attention; `num_layers` counts encoder/decoder pairs.
///  - MoE layer: attention as above, FFN replaced by num_experts experts of
///    2 d_m d_ffn each (Switch-Transformer, one MoE bank per layer).
///  - Embedding: vocab_size * d_m (tied input/output).
uint64_t TotalParamCount(const TransformerConfig& config);

/// Model-state bytes (fp16 param+grad + fp32 optimizer) for the full model.
uint64_t TotalModelStateBytes(const TransformerConfig& config);

/// Activation bytes for one micro-batch across all layers (no recompute).
uint64_t TotalActivationBytes(const TransformerConfig& config, int micro_batch);

/// Activation bytes that must be resident with recomputation enabled: the
/// per-layer boundary activations for all layers plus one layer's interior
/// working set (regenerated layer by layer in backward).
uint64_t ResidentActivationBytes(const TransformerConfig& config,
                                 int micro_batch);

}  // namespace angelptm::model

#endif  // ANGELPTM_MODEL_FOOTPRINT_H_
