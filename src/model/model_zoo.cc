#include "model/model_zoo.h"

namespace angelptm::model {
namespace {

TransformerConfig MakeConfig(std::string name, ModelFamily family,
                             int num_layers, int num_heads, uint64_t d_model,
                             uint64_t d_ffn, int num_experts) {
  TransformerConfig c;
  c.name = std::move(name);
  c.family = family;
  c.num_layers = num_layers;
  c.num_heads = num_heads;
  c.d_model = d_model;
  c.d_ffn = d_ffn;
  c.num_experts = num_experts;
  if (family != ModelFamily::kGpt) c.vocab_size = 32768;
  return c;
}

}  // namespace

std::vector<TransformerConfig> PaperModelZoo() {
  // Table 4, verbatim.
  return {
      MakeConfig("GPT3-1.7B", ModelFamily::kGpt, 24, 24, 2304, 9216, 0),
      MakeConfig("GPT3-13B", ModelFamily::kGpt, 40, 40, 5140, 20506, 0),
      MakeConfig("GPT3-28B", ModelFamily::kGpt, 26, 128, 8192, 32768, 0),
      // Table 4 lists GPT3-30B as 64 layers of d=8192 which computes to
      // ~52B; the d_model column is garbled (see EXPERIMENTS.md). We keep
      // the paper's layer-heavy shape (the §3.1 motivating example is a
      // 64-layer GPT) at dims that actually yield ~28B so Figure 7's
      // "DeepSpeed fits 30B on one server, Megatron-LM OOMs" reproduces.
      MakeConfig("GPT3-30B", ModelFamily::kGpt, 56, 48, 6144, 24576, 0),
      MakeConfig("GPT3-55B", ModelFamily::kGpt, 68, 128, 8192, 32768, 0),
      MakeConfig("GPT3-120B", ModelFamily::kGpt, 64, 96, 12288, 49152, 0),
      MakeConfig("GPT3-175B", ModelFamily::kGpt, 70, 112, 14336, 57344, 0),
      MakeConfig("T5-1.4B", ModelFamily::kT5, 16, 16, 1024, 16384, 0),
      MakeConfig("T5-27B", ModelFamily::kT5, 28, 64, 4096, 16384, 0),
      MakeConfig("T5-58B", ModelFamily::kT5, 60, 64, 4096, 16384, 0),
      MakeConfig("T5-MoE-1.2T", ModelFamily::kT5Moe, 16, 16, 1024, 16384,
                 2304),
  };
}

util::Result<TransformerConfig> FindModel(const std::string& name) {
  for (auto& config : PaperModelZoo()) {
    if (config.name == name) return config;
  }
  return util::Status::NotFound("no zoo model named '" + name + "'");
}

TransformerConfig MakeGptConfig(int num_layers, int num_heads,
                                uint64_t d_model, uint64_t d_ffn) {
  return MakeConfig("GPT3-custom", ModelFamily::kGpt, num_layers, num_heads,
                    d_model, d_ffn, 0);
}

TransformerConfig MakeT5Config(int num_layers, int num_heads,
                               uint64_t d_model, uint64_t d_ffn) {
  return MakeConfig("T5-custom", ModelFamily::kT5, num_layers, num_heads,
                    d_model, d_ffn, 0);
}

TransformerConfig MakeT5MoeConfig(int num_layers, int num_experts,
                                  uint64_t d_model, uint64_t d_ffn) {
  return MakeConfig("T5-MoE-custom", ModelFamily::kT5Moe, num_layers, 16,
                    d_model, d_ffn, num_experts);
}

}  // namespace angelptm::model
