#include "util/status.h"

#include <cstdio>

namespace angelptm::util {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfMemory:
      return "OutOfMemory";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

void Status::CheckOk(const char* file, int line) const {
  if (ok()) return;
  std::fprintf(stderr, "[%s:%d] fatal status: %s\n", file, line,
               ToString().c_str());
  std::abort();
}

}  // namespace angelptm::util
