#include "util/thread_pool.h"

#include <utility>

namespace angelptm::util {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    if (shutting_down_) return false;
    queue_.push_back(std::move(task));
  }
  task_available_.NotifyOne();
  return true;
}

void ThreadPool::Wait() {
  MutexLock lock(mutex_);
  while (!queue_.empty() || active_ != 0) all_idle_.Wait(mutex_);
}

void ThreadPool::Shutdown() {
  {
    MutexLock lock(mutex_);
    if (shutting_down_) return;
    shutting_down_ = true;
  }
  task_available_.NotifyAll();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

size_t ThreadPool::QueueDepth() const {
  MutexLock lock(mutex_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!shutting_down_ && queue_.empty()) task_available_.Wait(mutex_);
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      MutexLock lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) all_idle_.NotifyAll();
    }
  }
}

}  // namespace angelptm::util
