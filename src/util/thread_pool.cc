#include "util/thread_pool.h"

#include <utility>

namespace angelptm::util {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutting_down_) return false;
    queue_.push_back(std::move(task));
  }
  task_available_.notify_one();
  return true;
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutting_down_) return;
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

size_t ThreadPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) all_idle_.notify_all();
    }
  }
}

}  // namespace angelptm::util
