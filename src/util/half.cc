#include "util/half.h"

#include <cstring>

namespace angelptm::util {
namespace {

uint32_t FloatBits(float f) {
  uint32_t u;
  std::memcpy(&u, &f, sizeof(u));
  return u;
}

float BitsToFloat(uint32_t u) {
  float f;
  std::memcpy(&f, &u, sizeof(f));
  return f;
}

}  // namespace

uint16_t FloatToHalfBits(float f) {
  const uint32_t bits = FloatBits(f);
  const uint32_t sign = (bits >> 16) & 0x8000u;
  int32_t exponent = static_cast<int32_t>((bits >> 23) & 0xFFu) - 127 + 15;
  uint32_t mantissa = bits & 0x007FFFFFu;

  if (((bits >> 23) & 0xFFu) == 0xFFu) {
    // Inf / NaN. Preserve a NaN payload bit so NaN stays NaN.
    return static_cast<uint16_t>(sign | 0x7C00u |
                                 (mantissa != 0 ? 0x0200u : 0));
  }
  if (exponent >= 0x1F) {
    // Overflow to infinity.
    return static_cast<uint16_t>(sign | 0x7C00u);
  }
  if (exponent <= 0) {
    // Subnormal half (or zero). Shift mantissa (with implicit leading 1)
    // right; round to nearest even.
    if (exponent < -10) return static_cast<uint16_t>(sign);  // Underflow.
    mantissa |= 0x00800000u;  // Implicit leading one becomes explicit.
    const int shift = 14 - exponent;  // 14..24
    const uint32_t rounded =
        (mantissa >> shift) +
        (((mantissa >> (shift - 1)) & 1u) &
         (((mantissa & ((1u << (shift - 1)) - 1)) != 0 ||
           ((mantissa >> shift) & 1u))
              ? 1u
              : 0u));
    return static_cast<uint16_t>(sign | rounded);
  }

  // Normal number: round mantissa from 23 to 10 bits, nearest even.
  uint32_t half_mantissa = mantissa >> 13;
  const uint32_t round_bit = (mantissa >> 12) & 1u;
  const uint32_t sticky = (mantissa & 0x0FFFu) != 0;
  if (round_bit && (sticky || (half_mantissa & 1u))) {
    half_mantissa++;
    if (half_mantissa == 0x400u) {  // Mantissa overflow bumps the exponent.
      half_mantissa = 0;
      exponent++;
      if (exponent >= 0x1F) return static_cast<uint16_t>(sign | 0x7C00u);
    }
  }
  return static_cast<uint16_t>(sign | (static_cast<uint32_t>(exponent) << 10) |
                               half_mantissa);
}

float HalfBitsToFloat(uint16_t h) {
  const uint32_t sign = (static_cast<uint32_t>(h) & 0x8000u) << 16;
  const uint32_t exponent = (h >> 10) & 0x1Fu;
  uint32_t mantissa = h & 0x3FFu;

  if (exponent == 0x1Fu) {
    // Inf / NaN.
    return BitsToFloat(sign | 0x7F800000u | (mantissa << 13));
  }
  if (exponent == 0) {
    if (mantissa == 0) return BitsToFloat(sign);  // Signed zero.
    // Subnormal: normalize.
    int e = -1;
    do {
      e++;
      mantissa <<= 1;
    } while ((mantissa & 0x400u) == 0);
    mantissa &= 0x3FFu;
    const uint32_t float_exp = 127 - 15 - e;
    return BitsToFloat(sign | (float_exp << 23) | (mantissa << 13));
  }
  const uint32_t float_exp = exponent - 15 + 127;
  return BitsToFloat(sign | (float_exp << 23) | (mantissa << 13));
}

uint16_t FloatToBFloat16Bits(float f) {
  uint32_t bits = FloatBits(f);
  if (((bits >> 23) & 0xFFu) == 0xFFu && (bits & 0x007FFFFFu) != 0) {
    // NaN: keep it NaN after truncation.
    return static_cast<uint16_t>((bits >> 16) | 0x0040u);
  }
  // Round to nearest even on the 16 truncated bits.
  const uint32_t rounding_bias = 0x7FFFu + ((bits >> 16) & 1u);
  bits += rounding_bias;
  return static_cast<uint16_t>(bits >> 16);
}

float BFloat16BitsToFloat(uint16_t b) {
  return BitsToFloat(static_cast<uint32_t>(b) << 16);
}

}  // namespace angelptm::util
