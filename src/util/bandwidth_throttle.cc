#include "util/bandwidth_throttle.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace angelptm::util {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void BandwidthThrottle::Consume(size_t bytes) {
  double sleep_until;
  {
    MutexLock lock(mutex_);
    // The rate is read under the same lock that guards the clock: set_rate
    // used to race with the unlocked fast-path read here (a torn double is
    // UB even when the value "looks" benign).
    if (bytes_per_sec_ <= 0.0) return;
    const double cost = static_cast<double>(bytes) / bytes_per_sec_;
    const double now = NowSeconds();
    available_at_ = std::max(available_at_, now) + cost;
    sleep_until = available_at_;
  }
  const double now = NowSeconds();
  if (sleep_until > now) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(sleep_until - now));
  }
}

}  // namespace angelptm::util
