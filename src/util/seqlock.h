#ifndef ANGELPTM_UTIL_SEQLOCK_H_
#define ANGELPTM_UTIL_SEQLOCK_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

/// Seqlock / double-buffer publication for read-mostly hot paths
/// (DESIGN.md §13). Writers are serialized externally (typically by the
/// mutex that already orders mutations); readers take no lock at all and
/// retry the rare read that overlaps a write.
///
/// Protocol (the Boehm "Can seqlocks get along with programming language
/// memory models?" pattern, which is what the NERvGear LocklessUpdater
/// idiom in SNIPPETS.md §3 implements with counters):
///
///   writer: seq.store(s+1, relaxed)        // odd: write in progress
///           fence(release)
///           payload words, relaxed stores
///           seq.store(s+2, release)        // even again
///
///   reader: s1 = seq.load(acquire); if (s1 odd) retry
///           payload words, relaxed loads
///           fence(acquire)
///           if (seq.load(relaxed) != s1) retry
///
/// The payload lives in std::atomic<uint32_t> words so the racing loads and
/// stores are *atomic* races — defined behaviour the fences order, and one
/// ThreadSanitizer understands (no false positives, no torn words).

namespace angelptm::util {

/// Runtime-sized seqlock-published word buffer. `num_words()` uint32_t
/// payload words, fixed at Reset() time. Single external writer at a time;
/// any number of concurrent lock-free readers.
class SeqLockBuffer {
 public:
  SeqLockBuffer() = default;
  SeqLockBuffer(const SeqLockBuffer&) = delete;
  SeqLockBuffer& operator=(const SeqLockBuffer&) = delete;

  /// (Re)sizes the payload. Not thread-safe: call before readers exist.
  void Reset(size_t num_words) {
    words_ = std::vector<std::atomic<uint32_t>>(num_words);
    seq_.store(0, std::memory_order_relaxed);
  }

  size_t num_words() const { return words_.size(); }

  /// Monotonic publication version: bumps by 2 per Write. Readers can
  /// compare versions across fetches without re-reading the payload.
  uint64_t version() const { return seq_.load(std::memory_order_acquire); }

  /// Publishes `num_words()` words from `src`. Callers must serialize
  /// writers externally (two concurrent Write calls are a logic error).
  void Write(const uint32_t* src) {
    const uint64_t s = seq_.load(std::memory_order_relaxed);
    seq_.store(s + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    for (size_t i = 0; i < words_.size(); ++i) {
      words_[i].store(src[i], std::memory_order_relaxed);
    }
    seq_.store(s + 2, std::memory_order_release);
  }

  /// One consistent read attempt into `dst` (num_words() words). Returns
  /// false if a write overlapped; Read() below is the retrying form.
  bool TryRead(uint32_t* dst) const {
    const uint64_t s1 = seq_.load(std::memory_order_acquire);
    if (s1 & 1) return false;
    for (size_t i = 0; i < words_.size(); ++i) {
      dst[i] = words_[i].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    return seq_.load(std::memory_order_relaxed) == s1;
  }

  /// Copies a consistent snapshot into `dst`, retrying until one is
  /// obtained. Writers are brief (a word-copy loop), so the retry loop
  /// terminates quickly; there is no writer-starvation path because
  /// readers never block writers.
  void Read(uint32_t* dst) const {
    while (!TryRead(dst)) {
    }
  }

 private:
  std::atomic<uint64_t> seq_{0};
  std::vector<std::atomic<uint32_t>> words_;
};

/// Fixed-type seqlock cell: publishes whole values of a trivially copyable
/// `T` (padded to whole uint32_t words internally). Same writer/reader
/// contract as SeqLockBuffer.
template <typename T>
class SeqLock {
  static_assert(std::is_trivially_copyable_v<T>,
                "SeqLock payload must be trivially copyable");
  static constexpr size_t kWords = (sizeof(T) + 3) / 4;

 public:
  SeqLock() : SeqLock(T{}) {}
  explicit SeqLock(const T& initial) {
    uint32_t words[kWords] = {};
    std::memcpy(words, &initial, sizeof(T));
    for (size_t i = 0; i < kWords; ++i) {
      words_[i].store(words[i], std::memory_order_relaxed);
    }
  }
  SeqLock(const SeqLock&) = delete;
  SeqLock& operator=(const SeqLock&) = delete;

  uint64_t version() const { return seq_.load(std::memory_order_acquire); }

  /// Publishes `value`. Writers must be serialized externally.
  void Write(const T& value) {
    uint32_t words[kWords] = {};
    std::memcpy(words, &value, sizeof(T));
    const uint64_t s = seq_.load(std::memory_order_relaxed);
    seq_.store(s + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    for (size_t i = 0; i < kWords; ++i) {
      words_[i].store(words[i], std::memory_order_relaxed);
    }
    seq_.store(s + 2, std::memory_order_release);
  }

  /// Lock-free consistent read (retries across overlapping writes).
  T Read() const {
    uint32_t words[kWords];
    for (;;) {
      const uint64_t s1 = seq_.load(std::memory_order_acquire);
      if (s1 & 1) continue;
      for (size_t i = 0; i < kWords; ++i) {
        words[i] = words_[i].load(std::memory_order_relaxed);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      if (seq_.load(std::memory_order_relaxed) == s1) break;
    }
    T value;
    std::memcpy(&value, words, sizeof(T));
    return value;
  }

 private:
  std::atomic<uint64_t> seq_{0};
  std::atomic<uint32_t> words_[kWords];
};

}  // namespace angelptm::util

#endif  // ANGELPTM_UTIL_SEQLOCK_H_
