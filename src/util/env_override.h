#ifndef ANGELPTM_UTIL_ENV_OVERRIDE_H_
#define ANGELPTM_UTIL_ENV_OVERRIDE_H_

#include <cstddef>
#include <string>

/// Central parsing for the `ANGELPTM_*` environment knobs (DESIGN.md §13).
///
/// Precedence contract, uniform across every subsystem that honours an env
/// knob (SsdTier's ANGELPTM_SSD_IO_*, simd::Dispatch's ANGELPTM_SIMD,
/// ParallelFor's ANGELPTM_COMPUTE_THREADS, ...):
///
///   1. test override        (ScopedForceIsa, SetComputePoolOverride, ...)
///   2. environment variable (so a whole test binary or bench can be
///                            re-pointed without code changes)
///   3. Options / compiled default
///
/// i.e. an explicit in-process override installed by a test beats the
/// environment, and the environment beats whatever the caller's Options
/// carry. Unparsable values never abort: they warn once at the call site
/// and fall back, so a typo in CI degrades to the default instead of
/// changing behaviour silently.

namespace angelptm::util {

/// True when `name` is set in the environment (even to the empty string).
bool EnvIsSet(const char* name);

/// Reads a non-negative integer knob. Unset or empty returns `fallback`;
/// unparsable values (junk, trailing characters, negative numbers — which
/// strtoull would otherwise silently wrap to a huge count) warn and return
/// `fallback`.
size_t EnvSizeOr(const char* name, size_t fallback);

/// Like EnvSizeOr but additionally rejects zero (for knobs like thread
/// counts where 0 is meaningless): nonpositive values warn and fall back.
size_t EnvPositiveOr(const char* name, size_t fallback);

/// Reads a finite floating-point knob (e.g. a probability). Unset or empty
/// returns `fallback`; unparsable or non-finite values warn and fall back.
double EnvDoubleOr(const char* name, double fallback);

/// Reads a string knob; returns `fallback` when unset (a set-but-empty
/// variable returns the empty string — pair with EnvIsSet to distinguish).
std::string EnvStringOr(const char* name, const std::string& fallback);

}  // namespace angelptm::util

#endif  // ANGELPTM_UTIL_ENV_OVERRIDE_H_
