#ifndef ANGELPTM_UTIL_THREAD_POOL_H_
#define ANGELPTM_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace angelptm::util {

/// A fixed-size worker pool with a FIFO task queue. Used by the copy engine
/// and the executor to run asynchronous page movements and CPU computations.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Returns true if the task was accepted; returns false
  /// (and does not run the task) when called after Shutdown(), so callers
  /// can fail their promises instead of handing out futures that never
  /// resolve.
  [[nodiscard]] bool Submit(std::function<void()> task)
      ANGEL_EXCLUDES(mutex_);

  /// Blocks until the queue is empty and all workers are idle. Must not be
  /// called from a pool task (a worker waiting on its own pool deadlocks).
  void Wait() ANGEL_EXCLUDES(mutex_);

  /// Stops accepting tasks, drains the queue, and joins the workers.
  /// Idempotent; also called by the destructor.
  void Shutdown() ANGEL_EXCLUDES(mutex_);

  size_t num_threads() const { return threads_.size(); }

  /// Number of tasks currently queued (excluding running ones).
  size_t QueueDepth() const ANGEL_EXCLUDES(mutex_);

 private:
  void WorkerLoop() ANGEL_EXCLUDES(mutex_);

  mutable Mutex mutex_{"util.thread_pool", lockrank::kThreadPool};
  CondVar task_available_;
  CondVar all_idle_;
  std::deque<std::function<void()>> queue_ ANGEL_GUARDED_BY(mutex_);
  std::vector<std::thread> threads_;
  size_t active_ ANGEL_GUARDED_BY(mutex_) = 0;
  bool shutting_down_ ANGEL_GUARDED_BY(mutex_) = false;
};

}  // namespace angelptm::util

#endif  // ANGELPTM_UTIL_THREAD_POOL_H_
