#ifndef ANGELPTM_UTIL_THREAD_POOL_H_
#define ANGELPTM_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace angelptm::util {

/// A fixed-size worker pool with a FIFO task queue. Used by the copy engine
/// and the executor to run asynchronous page movements and CPU computations.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Returns true if the task was accepted; returns false
  /// (and does not run the task) when called after Shutdown(), so callers
  /// can fail their promises instead of handing out futures that never
  /// resolve.
  [[nodiscard]] bool Submit(std::function<void()> task);

  /// Blocks until the queue is empty and all workers are idle.
  void Wait();

  /// Stops accepting tasks, drains the queue, and joins the workers.
  /// Idempotent; also called by the destructor.
  void Shutdown();

  size_t num_threads() const { return threads_.size(); }

  /// Number of tasks currently queued (excluding running ones).
  size_t QueueDepth() const;

 private:
  void WorkerLoop();

  mutable std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  size_t active_ = 0;
  bool shutting_down_ = false;
};

}  // namespace angelptm::util

#endif  // ANGELPTM_UTIL_THREAD_POOL_H_
