#ifndef ANGELPTM_UTIL_PARALLEL_FOR_H_
#define ANGELPTM_UTIL_PARALLEL_FOR_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>

#include "util/thread_pool.h"

namespace angelptm::util {

/// Process-wide compute pool for data-parallel kernels (GEMM, LayerNorm,
/// Adam, ...). Lazily constructed on first use and intentionally leaked so it
/// never races with static destruction. Sized from
/// `std::thread::hardware_concurrency()`, overridable with the
/// `ANGELPTM_COMPUTE_THREADS` environment variable (read once, at first use)
/// for deterministic tests and benchmarks.
ThreadPool* ComputePool();

/// Replaces the pool returned by ComputePool() (pass nullptr to restore the
/// default). Intended for tests and benchmarks that need to pin the worker
/// count after process start; not thread-safe against in-flight ParallelFor
/// calls, so only swap while no kernels are running.
void SetComputePoolOverride(ThreadPool* pool);

/// Number of worker threads ComputePool() runs with.
size_t ComputePoolThreads();

namespace internal_parallel {

/// Shared completion state for one ParallelFor call. Completion is defined
/// by *chunks finished*, never by helper-task completion: the calling
/// thread participates in the work and can drain every chunk by itself, so
/// a busy (or shut-down) pool cannot deadlock a nested ParallelFor —
/// helpers that only get scheduled later (or never) find no chunks left
/// and exit without touching anything but this state block, which they
/// keep alive via shared_ptr.
struct ParallelForState {
  std::atomic<size_t> next_chunk{0};
  std::atomic<size_t> chunks_done{0};
  // Predicate waits with std::condition_variable need the std types;
  // the state is call-local and dies with the call.
  std::mutex mutex;  // lint: unguarded
  std::condition_variable done_cv;  // lint: unguarded
};

}  // namespace internal_parallel

/// Runs `fn(chunk_index, chunk_begin, chunk_end)` over [begin, end) split
/// into fixed chunks of `grain` iterations: chunk c covers
/// [begin + c*grain, min(end, begin + (c+1)*grain)). Chunks execute
/// concurrently on `pool` plus the calling thread; the call returns only
/// after every chunk has finished. `fn` must be safe to invoke concurrently
/// and must not throw. The chunk index is stable and dense (0..num_chunks-1),
/// which callers use to index per-chunk partial buffers for reductions.
///
/// A null `pool`, a single-thread pool, or a range that fits in one grain
/// runs inline on the calling thread with zero synchronization.
template <typename Fn>
void ParallelForChunks(ThreadPool* pool, size_t begin, size_t end,
                       size_t grain, Fn&& fn) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  const size_t count = end - begin;
  const size_t num_chunks = (count + grain - 1) / grain;
  const size_t pool_threads = pool != nullptr ? pool->num_threads() : 0;
  if (num_chunks == 1 || pool_threads <= 1) {
    for (size_t c = 0; c < num_chunks; ++c) {
      const size_t lo = begin + c * grain;
      fn(c, lo, std::min(end, lo + grain));
    }
    return;
  }

  auto state = std::make_shared<internal_parallel::ParallelForState>();
  auto run_chunks = [state, begin, end, grain, num_chunks, &fn] {
    for (;;) {
      const size_t c = state->next_chunk.fetch_add(1);
      if (c >= num_chunks) return;
      const size_t lo = begin + c * grain;
      fn(c, lo, std::min(end, lo + grain));
      if (state->chunks_done.fetch_add(1) + 1 == num_chunks) {
        std::lock_guard<std::mutex> lock(state->mutex);
        state->done_cv.notify_all();
      }
    }
  };

  // The calling thread is one worker; helpers race it for chunks. Helpers
  // borrow `fn` by reference, which is safe because this frame blocks until
  // every *claimed* chunk has finished and a helper arriving later finds no
  // chunk to claim, so it never invokes `fn` at all. A rejected Submit
  // (shut-down pool) is likewise fine: the calling thread drains whatever
  // that helper would have taken.
  const size_t helpers = std::min(pool_threads, num_chunks - 1);
  for (size_t h = 0; h < helpers; ++h) {
    if (!pool->Submit([state, run_chunks] { run_chunks(); })) break;
  }

  run_chunks();
  std::unique_lock<std::mutex> lock(state->mutex);
  state->done_cv.wait(
      lock, [&] { return state->chunks_done.load() == num_chunks; });
}

/// Range-only variant: runs `fn(range_begin, range_end)` over [begin, end)
/// in chunks of `grain`, concurrently on `pool` plus the calling thread.
/// Same contract as ParallelForChunks.
template <typename Fn>
void ParallelFor(ThreadPool* pool, size_t begin, size_t end, size_t grain,
                 Fn&& fn) {
  ParallelForChunks(pool, begin, end, grain,
                    [&fn](size_t /*chunk*/, size_t lo, size_t hi) {
                      fn(lo, hi);
                    });
}

/// Number of chunks a ParallelFor over [begin, end) with `grain` produces;
/// used to size per-chunk partial buffers for reductions.
inline size_t ParallelForNumChunks(size_t begin, size_t end, size_t grain) {
  if (begin >= end) return 0;
  if (grain == 0) grain = 1;
  return (end - begin + grain - 1) / grain;
}

}  // namespace angelptm::util

#endif  // ANGELPTM_UTIL_PARALLEL_FOR_H_
