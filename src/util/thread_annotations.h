#ifndef ANGELPTM_UTIL_THREAD_ANNOTATIONS_H_
#define ANGELPTM_UTIL_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/lockdep.h"  // Lock classes + ranks (constants in every build).

#ifdef ANGELPTM_LOCKDEP
#include "util/schedule_perturb.h"
#endif

/// Compile-time concurrency contracts (DESIGN.md §10).
///
/// Wrappers over Clang's Thread Safety Analysis attributes, in the abseil
/// `GUARDED_BY`/`REQUIRES` style: lock requirements that previously lived in
/// comments ("Guarded by buffer_mutex.") become types the compiler checks.
/// Under Clang with -Wthread-safety (CMake option ANGELPTM_THREAD_SAFETY=ON)
/// an unguarded access to an annotated field, a missing lock on a REQUIRES
/// function, or a reentrant call into an EXCLUDES function is a hard error.
/// On other compilers every macro expands to nothing and util::Mutex degrades
/// to a plain std::mutex wrapper with identical codegen.
///
/// The analysis only tracks capabilities it can see, so annotated classes
/// must lock through the annotatable shims below (util::Mutex /
/// util::MutexLock / util::CondVar), not raw std::mutex — libstdc++'s
/// std::mutex carries no attributes and is invisible to the analysis.

#if defined(__clang__)
#define ANGEL_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define ANGEL_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op outside Clang
#endif

/// Declares a class to be a lockable capability ("mutex").
#define ANGEL_CAPABILITY(x) ANGEL_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Declares an RAII class whose lifetime acquires/releases a capability.
#define ANGEL_SCOPED_CAPABILITY \
  ANGEL_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// The annotated field may only be read or written while holding `x`.
#define ANGEL_GUARDED_BY(x) ANGEL_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// The annotated pointer may only be *dereferenced* while holding `x` (the
/// pointer itself is unguarded).
#define ANGEL_PT_GUARDED_BY(x) \
  ANGEL_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// The function may only be called while already holding every listed
/// capability (it does not acquire them itself).
#define ANGEL_REQUIRES(...) \
  ANGEL_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// The function acquires the listed capabilities and holds them on return.
#define ANGEL_ACQUIRE(...) \
  ANGEL_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// The function releases the listed capabilities (which must be held).
#define ANGEL_RELEASE(...) \
  ANGEL_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns `ret`.
#define ANGEL_TRY_ACQUIRE(ret, ...) \
  ANGEL_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(ret, __VA_ARGS__))

/// The caller must NOT hold the listed capabilities: the function (or
/// something it calls/waits on) acquires them itself, so entering with one
/// held is deadlock-by-reentrancy — rejected at compile time.
#define ANGEL_EXCLUDES(...) \
  ANGEL_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// The function returns a reference to the given capability.
#define ANGEL_RETURN_CAPABILITY(x) \
  ANGEL_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch: the function body is not analyzed. Use only where the
/// locking pattern is deliberately invisible to the analysis (e.g. a
/// condition variable's internal unlock/relock) — never to silence a real
/// violation.
#define ANGEL_NO_THREAD_SAFETY_ANALYSIS \
  ANGEL_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

namespace angelptm::util {

/// An annotatable mutex: std::mutex plus the `capability` attribute so the
/// analysis can track who holds it. Also satisfies *BasicLockable* (lower
/// case lock()/unlock()) so util::CondVar can wait on it directly.
///
/// Every mutex should declare a *lock class* and rank from DESIGN.md §15
/// (`util::Mutex mu{"updater.master", lockrank::kUpdaterMaster};`); the
/// lock-class lint rule enforces this under src/. In the default build the
/// class/rank arguments compile away entirely (the static_assert below pins
/// that the shim stays layout-identical to std::mutex); under
/// ANGELPTM_LOCKDEP=ON every acquisition feeds lockdep::Detector and the
/// schedule perturbator.
class ANGEL_CAPABILITY("mutex") Mutex {
 public:
#ifdef ANGELPTM_LOCKDEP
  Mutex()
      : class_(lockdep::Detector::Global().RegisterClass(
            nullptr, lockrank::kNoRank)) {}
  explicit Mutex(const char* lock_class, int rank = lockrank::kNoRank)
      : class_(lockdep::Detector::Global().RegisterClass(lock_class, rank)) {}
#else
  Mutex() = default;
  explicit Mutex(const char* lock_class, int rank = lockrank::kNoRank) {
    (void)lock_class;
    (void)rank;
  }
#endif
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ANGEL_ACQUIRE() {
#ifdef ANGELPTM_LOCKDEP
    SchedulePerturb::Instance().MaybePerturb("lock");
    lockdep::Detector::Global().OnAcquire(class_, this);
    mu_.lock();
    lockdep::Detector::Global().OnAcquired(class_, this);
#else
    mu_.lock();
#endif
  }
  void Unlock() ANGEL_RELEASE() {
#ifdef ANGELPTM_LOCKDEP
    lockdep::Detector::Global().OnRelease(this);
#endif
    mu_.unlock();
  }
  bool TryLock() ANGEL_TRY_ACQUIRE(true) {
    const bool acquired = mu_.try_lock();
#ifdef ANGELPTM_LOCKDEP
    if (acquired) lockdep::Detector::Global().OnTryAcquired(class_, this);
#endif
    return acquired;
  }

  // BasicLockable spelling (std interop, incl. CondVar's internal
  // unlock/relock — which therefore participates in lockdep tracking).
  void lock() ANGEL_ACQUIRE() { Lock(); }
  void unlock() ANGEL_RELEASE() { Unlock(); }

 private:
  std::mutex mu_;  // lint: unguarded (this IS the wrapper)
#ifdef ANGELPTM_LOCKDEP
  const lockdep::LockClass* class_;
#endif
};

#ifndef ANGELPTM_LOCKDEP
// Zero-cost contract: without the lockdep build flag, the shim carries no
// extra state and the class/rank constructor arguments vanish.
static_assert(sizeof(Mutex) == sizeof(std::mutex),  // lint: unguarded
              "util::Mutex must stay layout-identical to std::mutex in "
              "non-lockdep builds");
#endif

/// std::lock_guard for util::Mutex, visible to the analysis: holding a
/// MutexLock is holding the mutex for the enclosing scope.
class ANGEL_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ANGEL_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() ANGEL_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable over util::Mutex. Wait() REQUIRES the mutex: the
/// internal unlock/relock is hidden from the analysis (the standard idiom —
/// the capability state is identical before and after the call), so callers
/// re-check their predicate in an explicit `while` loop under the lock
/// instead of passing a lambda, keeping the guarded reads inside the
/// analyzed, lock-holding function:
///
///   util::MutexLock lock(mutex_);
///   while (queue_.empty()) cv_.Wait(mutex_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, waits, and re-acquires `mu` before returning.
  void Wait(Mutex& mu) ANGEL_REQUIRES(mu) ANGEL_NO_THREAD_SAFETY_ANALYSIS {
    cv_.wait(mu);
  }

  /// Timed Wait; returns false on timeout (with `mu` re-held either way).
  template <typename Rep, typename Period>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout)
      ANGEL_REQUIRES(mu) ANGEL_NO_THREAD_SAFETY_ANALYSIS {
    return cv_.wait_for(mu, timeout) == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;  // lint: unguarded (this IS the wrapper)
};

}  // namespace angelptm::util

#endif  // ANGELPTM_UTIL_THREAD_ANNOTATIONS_H_
