#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace angelptm::util {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};
// Free-standing namespace-scope mutex; the annotated wrapper would buy
// nothing for a single translation-unit-local lock around stderr.
std::mutex g_log_mutex;  // lint: unguarded

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarning:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level), fatal_(fatal) {
  enabled_ = fatal || static_cast<int>(level) >=
                          g_min_level.load(std::memory_order_relaxed);
  if (enabled_) {
    stream_ << "[" << LevelTag(level_) << " " << Basename(file) << ":" << line
            << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
  if (fatal_) std::abort();
}

}  // namespace internal_logging
}  // namespace angelptm::util
