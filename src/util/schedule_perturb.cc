#include "util/schedule_perturb.h"

#include <sched.h>

#include <chrono>
#include <thread>

#include "util/env_override.h"

namespace angelptm::util {
namespace {

/// splitmix64 finalizer: a high-quality 64-bit mix, so consecutive indices
/// under one seed give statistically independent decisions.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

SchedulePerturb& SchedulePerturb::Instance() {
  static SchedulePerturb* instance =
      new SchedulePerturb();  // lint: naked-new (leaked singleton)
  return *instance;
}

SchedulePerturb::SchedulePerturb() { LoadFromEnv(); }

void SchedulePerturb::LoadFromEnv() {
  seed_ = EnvSizeOr("ANGELPTM_PERTURB_SEED", 1);
  prob_ = EnvDoubleOr("ANGELPTM_PERTURB_PROB", 0.0);
  if (prob_ < 0.0) prob_ = 0.0;
  if (prob_ > 1.0) prob_ = 1.0;
  max_sleep_us_ = static_cast<uint32_t>(
      EnvPositiveOr("ANGELPTM_PERTURB_MAX_US", 100));
  enabled_.store(prob_ > 0.0, std::memory_order_relaxed);
}

SchedulePerturb::Decision SchedulePerturb::DecisionFor(uint64_t seed,
                                                       uint64_t index,
                                                       double prob,
                                                       uint32_t max_sleep_us) {
  Decision d;
  const uint64_t h = Mix(seed ^ Mix(index));
  // Top 53 bits -> uniform double in [0, 1).
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  d.inject = u < prob;
  if (!d.inject) return d;
  d.yield = (h & 1) != 0;
  if (max_sleep_us == 0) max_sleep_us = 1;
  d.sleep_us = 1 + static_cast<uint32_t>((h >> 1) % max_sleep_us);
  return d;
}

void SchedulePerturb::PerturbSlow(const char* site) {
  (void)site;  // Names the point for humans; decisions depend only on index.
  const uint64_t index = next_index_.fetch_add(1, std::memory_order_relaxed);
  const Decision d = DecisionFor(seed_, index, prob_, max_sleep_us_);
  if (!d.inject) return;
  injections_.fetch_add(1, std::memory_order_relaxed);
  if (d.yield) {
    sched_yield();
  } else {
    std::this_thread::sleep_for(std::chrono::microseconds(d.sleep_us));
  }
}

void SchedulePerturb::ForceEnable(uint64_t seed, double prob,
                                  uint32_t max_sleep_us) {
  seed_ = seed;
  prob_ = prob < 0.0 ? 0.0 : (prob > 1.0 ? 1.0 : prob);
  max_sleep_us_ = max_sleep_us == 0 ? 1 : max_sleep_us;
  next_index_.store(0, std::memory_order_relaxed);
  injections_.store(0, std::memory_order_relaxed);
  enabled_.store(prob_ > 0.0, std::memory_order_relaxed);
}

void SchedulePerturb::ForceDisable() {
  enabled_.store(false, std::memory_order_relaxed);
}

void SchedulePerturb::ClearForce() {
  next_index_.store(0, std::memory_order_relaxed);
  injections_.store(0, std::memory_order_relaxed);
  LoadFromEnv();
}

}  // namespace angelptm::util
