#ifndef ANGELPTM_UTIL_LOGGING_H_
#define ANGELPTM_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace angelptm::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that reaches stderr. Default is kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log sink. Flushes one line to stderr on destruction; aborts
/// the process after flushing when constructed as fatal.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  bool fatal_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace angelptm::util

#define ANGEL_LOG(level)                                            \
  ::angelptm::util::internal_logging::LogMessage(                   \
      ::angelptm::util::LogLevel::k##level, __FILE__, __LINE__)     \
      .stream()

#define ANGEL_FATAL()                                               \
  ::angelptm::util::internal_logging::LogMessage(                   \
      ::angelptm::util::LogLevel::kError, __FILE__, __LINE__, true) \
      .stream()

/// Invariant check: aborts with a message when `cond` is false. Used for
/// programming errors, never for recoverable conditions (those use Status).
#define ANGEL_CHECK(cond) \
  if (!(cond)) ANGEL_FATAL() << "check failed: " #cond " "

#define ANGEL_DCHECK(cond) ANGEL_CHECK(cond)

#endif  // ANGELPTM_UTIL_LOGGING_H_
