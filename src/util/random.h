#ifndef ANGELPTM_UTIL_RANDOM_H_
#define ANGELPTM_UTIL_RANDOM_H_

#include <array>
#include <cstdint>
#include <vector>

namespace angelptm::util {

/// Deterministic PRNG (xoshiro256**). All stochastic components — synthetic
/// datasets, weight init, workload generators — take an explicit Rng so runs
/// are reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// The complete generator state: checkpointing it and restoring it later
  /// continues the exact same sample stream (the Box-Muller cache is part of
  /// the state, so Gaussian streams resume mid-pair too).
  struct State {
    std::array<uint64_t, 4> s{};
    bool has_cached_gaussian = false;
    double cached_gaussian = 0.0;
  };
  State GetState() const;
  void SetState(const State& state);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound).
  uint64_t Uniform(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform float in [lo, hi).
  float UniformFloat(float lo, float hi);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Fills `out` with N(0, stddev) floats.
  void FillGaussian(std::vector<float>* out, double stddev);

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace angelptm::util

#endif  // ANGELPTM_UTIL_RANDOM_H_
