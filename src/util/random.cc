#include "util/random.h"

#include <cmath>

namespace angelptm::util {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

Rng::State Rng::GetState() const {
  State state;
  for (size_t i = 0; i < 4; ++i) state.s[i] = state_[i];
  state.has_cached_gaussian = has_cached_gaussian_;
  state.cached_gaussian = cached_gaussian_;
  return state;
}

void Rng::SetState(const State& state) {
  for (size_t i = 0; i < 4; ++i) state_[i] = state.s[i];
  has_cached_gaussian_ = state.has_cached_gaussian;
  cached_gaussian_ = state.cached_gaussian;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

float Rng::UniformFloat(float lo, float hi) {
  return lo + static_cast<float>(NextDouble()) * (hi - lo);
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

void Rng::FillGaussian(std::vector<float>* out, double stddev) {
  for (auto& v : *out) {
    v = static_cast<float>(NextGaussian() * stddev);
  }
}

}  // namespace angelptm::util
