#include "util/fault_injector.h"

#include <cstdlib>
#include <utility>

#include "util/logging.h"

namespace angelptm::util {
namespace {

/// Short spec names for the status codes a failpoint can inject.
bool CodeFromName(const std::string& name, StatusCode* out) {
  if (name == "io") *out = StatusCode::kIoError;
  else if (name == "oom") *out = StatusCode::kOutOfMemory;
  else if (name == "cancelled") *out = StatusCode::kCancelled;
  else if (name == "internal") *out = StatusCode::kInternal;
  else if (name == "invalid") *out = StatusCode::kInvalidArgument;
  else if (name == "exhausted") *out = StatusCode::kResourceExhausted;
  else if (name == "precondition") *out = StatusCode::kFailedPrecondition;
  else if (name == "deadline") *out = StatusCode::kDeadlineExceeded;
  else if (name == "notfound") *out = StatusCode::kNotFound;
  else return false;
  return true;
}

bool ParseInt64(const std::string& text, int64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = value;
  return true;
}

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  *out = value;
  return true;
}

constexpr uint64_t kDefaultSeed = 0xFA17FA17u;

}  // namespace

FaultInjector::FaultInjector() : rng_(kDefaultSeed) {
  const char* seed_env = std::getenv("ANGELPTM_FAULT_SEED");
  if (seed_env != nullptr) {
    rng_ = Rng(std::strtoull(seed_env, nullptr, 10));
  }
  const char* spec_env = std::getenv("ANGELPTM_FAULT_SITES");
  if (spec_env != nullptr && spec_env[0] != '\0') {
    const Status status = ArmFromSpec(spec_env);
    if (!status.ok()) {
      ANGEL_LOG(Error) << "ignoring malformed ANGELPTM_FAULT_SITES: "
                       << status.ToString();
    }
  }
}

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* injector = new FaultInjector();  // lint: naked-new (leaked singleton)
  return *injector;
}

void FaultInjector::Arm(const std::string& site, const FaultRule& rule) {
  MutexLock lock(mutex_);
  const bool existed = sites_.count(site) > 0;
  sites_[site] = SiteState{rule, 0, 0};
  if (!existed) armed_sites_.fetch_add(1, std::memory_order_relaxed);
}

void FaultInjector::Disarm(const std::string& site) {
  MutexLock lock(mutex_);
  if (sites_.erase(site) > 0) {
    armed_sites_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultInjector::Reset() {
  MutexLock lock(mutex_);
  sites_.clear();
  armed_sites_.store(0, std::memory_order_relaxed);
}

void FaultInjector::Seed(uint64_t seed) {
  MutexLock lock(mutex_);
  rng_ = Rng(seed);
}

Status FaultInjector::Check(const char* site) {
  MutexLock lock(mutex_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return Status::OK();
  SiteState& state = it->second;
  state.calls += 1;

  const FaultRule& rule = state.rule;
  bool fired = false;
  if (rule.permanent && state.calls > rule.after_calls) fired = true;
  if (!fired && rule.nth_call > 0 && state.calls == rule.nth_call) {
    fired = true;
  }
  if (!fired && rule.probability > 0.0 &&
      rng_.NextDouble() < rule.probability) {
    fired = true;
  }
  if (!fired) return Status::OK();
  if (rule.max_fires >= 0 && state.fires >= rule.max_fires) {
    return Status::OK();
  }
  state.fires += 1;
  if (state.fires == 1) {
    ANGEL_LOG(Warning) << "failpoint '" << site << "' fired (call #"
                       << state.calls << ", "
                       << StatusCodeName(rule.code) << ")";
  }
  std::string message = rule.message;
  if (message.empty()) {
    message = std::string("injected fault at ") + site + " (call #" +
              std::to_string(state.calls) + ")";
  }
  return Status(rule.code, std::move(message));
}

uint64_t FaultInjector::calls(const std::string& site) const {
  MutexLock lock(mutex_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : static_cast<uint64_t>(it->second.calls);
}

uint64_t FaultInjector::fires(const std::string& site) const {
  MutexLock lock(mutex_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : static_cast<uint64_t>(it->second.fires);
}

Status FaultInjector::ParseRule(const std::string& site,
                                const std::string& body, FaultRule* out) {
  if (body.empty()) {
    return Status::InvalidArgument("empty rule for failpoint '" + site + "'");
  }
  FaultRule rule;
  bool has_trigger = false;
  size_t pos = 0;
  while (pos <= body.size()) {
    const size_t comma = body.find(',', pos);
    const std::string token = body.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    pos = comma == std::string::npos ? body.size() + 1 : comma + 1;
    if (token.empty()) continue;

    const size_t colon = token.find(':');
    const std::string key = token.substr(0, colon);
    const std::string value =
        colon == std::string::npos ? "" : token.substr(colon + 1);

    if (key == "always") {
      rule.permanent = true;
      has_trigger = true;
    } else if (key == "nth") {
      if (!ParseInt64(value, &rule.nth_call) || rule.nth_call <= 0) {
        return Status::InvalidArgument("bad nth:<N> in '" + token + "'");
      }
      has_trigger = true;
    } else if (key == "after") {
      if (!ParseInt64(value, &rule.after_calls) || rule.after_calls < 0) {
        return Status::InvalidArgument("bad after:<N> in '" + token + "'");
      }
      rule.permanent = true;
      has_trigger = true;
    } else if (key == "prob") {
      if (!ParseDouble(value, &rule.probability) || rule.probability < 0.0 ||
          rule.probability > 1.0) {
        return Status::InvalidArgument("bad prob:<P> in '" + token + "'");
      }
      has_trigger = true;
    } else if (key == "code") {
      if (!CodeFromName(value, &rule.code)) {
        return Status::InvalidArgument("unknown status code '" + value + "'");
      }
    } else if (key == "max") {
      if (!ParseInt64(value, &rule.max_fires) || rule.max_fires < 0) {
        return Status::InvalidArgument("bad max:<N> in '" + token + "'");
      }
    } else if (key == "msg") {
      rule.message = value;
    } else {
      return Status::InvalidArgument("unknown failpoint key '" + key +
                                     "' for site '" + site + "'");
    }
  }
  if (!has_trigger) {
    return Status::InvalidArgument("failpoint '" + site +
                                   "' has no trigger (always/nth/after/prob)");
  }
  *out = rule;
  return Status::OK();
}

Status FaultInjector::ArmFromSpec(const std::string& spec) {
  // Parse everything first so a malformed spec arms nothing.
  std::vector<std::pair<std::string, FaultRule>> parsed;
  size_t pos = 0;
  while (pos <= spec.size()) {
    const size_t semi = spec.find(';', pos);
    const std::string entry = spec.substr(
        pos, semi == std::string::npos ? std::string::npos : semi - pos);
    pos = semi == std::string::npos ? spec.size() + 1 : semi + 1;
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("expected site=rule, got '" + entry +
                                     "'");
    }
    const std::string site = entry.substr(0, eq);
    FaultRule rule;
    ANGEL_RETURN_IF_ERROR(ParseRule(site, entry.substr(eq + 1), &rule));
    parsed.emplace_back(site, rule);
  }
  for (auto& [site, rule] : parsed) {
    Arm(site, rule);
  }
  return Status::OK();
}

}  // namespace angelptm::util
