#ifndef ANGELPTM_UTIL_STATUS_H_
#define ANGELPTM_UTIL_STATUS_H_

#include <cstdlib>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace angelptm::util {

/// Error categories used across the library. Mirrors the RocksDB/Arrow
/// convention of a small closed enum plus a free-form message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfMemory,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kResourceExhausted,
  kIoError,
  kInternal,
  kUnimplemented,
  kCancelled,
  kDeadlineExceeded,
};

/// Returns a stable human-readable name for a status code ("OutOfMemory").
const char* StatusCodeName(StatusCode code);

/// Value-semantic error carrier. Functions that can fail return `Status` (or
/// `Result<T>` when they also produce a value); exceptions are not used across
/// API boundaries.
///
/// The class itself is [[nodiscard]]: a dropped return value is a swallowed
/// error, and the build treats it as one (-Werror=unused-result). Truly
/// intentional drops are spelled `(void)expr;` — grep-able, and a signal to
/// the reviewer that someone decided the error does not matter.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsOutOfMemory() const { return code_ == StatusCode::kOutOfMemory; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsIoError() const { return code_ == StatusCode::kIoError; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Aborts the process with a diagnostic if this status is not OK. Intended
  /// for call sites where failure is a programming error.
  void CheckOk(const char* file, int line) const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// A value-or-error holder in the Arrow style. `Result<T>` either contains a
/// `T` or a non-OK `Status`; accessing the value of an errored result aborts.
/// [[nodiscard]] for the same reason as Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value keeps `return value;` ergonomic.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}
  /// Implicit construction from an error status.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & {
    AbortIfError();
    return *value_;
  }
  const T& value() const& {
    AbortIfError();
    return *value_;
  }
  T&& value() && {
    AbortIfError();
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the contained value or `fallback` when errored.
  T ValueOr(T fallback) const {
    return value_.has_value() ? *value_ : std::move(fallback);
  }

 private:
  void AbortIfError() const {
    if (!value_.has_value()) {
      Status(status_).CheckOk(__FILE__, __LINE__);
    }
  }

  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value.
};

}  // namespace angelptm::util

/// Propagates a non-OK status to the caller.
#define ANGEL_RETURN_IF_ERROR(expr)                        \
  do {                                                     \
    ::angelptm::util::Status _angel_status = (expr);       \
    if (!_angel_status.ok()) return _angel_status;         \
  } while (0)

#define ANGEL_CONCAT_IMPL(x, y) x##y
#define ANGEL_CONCAT(x, y) ANGEL_CONCAT_IMPL(x, y)

/// Evaluates `rexpr` (a Result<T>), propagating its error or binding its value
/// to `lhs`.
#define ANGEL_ASSIGN_OR_RETURN(lhs, rexpr)                             \
  auto ANGEL_CONCAT(_angel_result_, __LINE__) = (rexpr);               \
  if (!ANGEL_CONCAT(_angel_result_, __LINE__).ok())                    \
    return ANGEL_CONCAT(_angel_result_, __LINE__).status();            \
  lhs = std::move(ANGEL_CONCAT(_angel_result_, __LINE__)).value()

/// Aborts the process if `expr` (a Status) is not OK.
#define ANGEL_CHECK_OK(expr) (expr).CheckOk(__FILE__, __LINE__)

#endif  // ANGELPTM_UTIL_STATUS_H_
