#ifndef ANGELPTM_UTIL_BANDWIDTH_THROTTLE_H_
#define ANGELPTM_UTIL_BANDWIDTH_THROTTLE_H_

#include <cstddef>

#include "util/thread_annotations.h"

namespace angelptm::util {

/// Paces transfers to a fixed bandwidth by sleeping callers, serializing
/// consumers on a virtual device clock (transfers on one link do not overlap,
/// mirroring a PCIe lane or an SSD controller). A rate of 0 disables pacing.
///
/// Used to emulate the paper's link speeds (PCIe 32 GB/s, SSD 3.5 GB/s) when
/// running the real memory engine on host hardware that is faster or slower.
class BandwidthThrottle {
 public:
  explicit BandwidthThrottle(double bytes_per_sec = 0.0)
      : bytes_per_sec_(bytes_per_sec) {}

  /// Accounts `bytes` against the link, sleeping until the virtual clock
  /// catches up. Thread-safe.
  void Consume(size_t bytes) ANGEL_EXCLUDES(mutex_);

  void set_rate(double bytes_per_sec) ANGEL_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    bytes_per_sec_ = bytes_per_sec;
  }
  double rate() const ANGEL_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return bytes_per_sec_;
  }

 private:
  mutable Mutex mutex_{"util.throttle", lockrank::kThrottle};
  double bytes_per_sec_ ANGEL_GUARDED_BY(mutex_);
  double available_at_ ANGEL_GUARDED_BY(mutex_) = 0.0;
};

}  // namespace angelptm::util

#endif  // ANGELPTM_UTIL_BANDWIDTH_THROTTLE_H_
