#include "util/env_override.h"

#include <cstdlib>

#include "util/logging.h"

namespace angelptm::util {

bool EnvIsSet(const char* name) { return std::getenv(name) != nullptr; }

size_t EnvSizeOr(const char* name, size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0') {
    ANGEL_LOG(Warning) << "ignoring unparsable " << name << "=" << value;
    return fallback;
  }
  return static_cast<size_t>(parsed);
}

size_t EnvPositiveOr(const char* name, size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  if (end == value || *end != '\0' || parsed <= 0) {
    ANGEL_LOG(Warning) << "ignoring non-positive or unparsable " << name << "="
                       << value;
    return fallback;
  }
  return static_cast<size_t>(parsed);
}

std::string EnvStringOr(const char* name, const std::string& fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::string(value);
}

}  // namespace angelptm::util
