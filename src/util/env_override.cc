#include "util/env_override.h"

#include <cmath>
#include <cstdlib>

#include "util/logging.h"

namespace angelptm::util {

bool EnvIsSet(const char* name) { return std::getenv(name) != nullptr; }

size_t EnvSizeOr(const char* name, size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  // strtoull accepts a leading '-' and wraps ("-3" parses as 2^64-3); an
  // unsigned knob must reject that rather than become a huge count.
  const char* p = value;
  while (*p == ' ' || *p == '\t') ++p;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0' || *p == '-') {
    ANGEL_LOG(Warning) << "ignoring unparsable " << name << "=" << value;
    return fallback;
  }
  return static_cast<size_t>(parsed);
}

size_t EnvPositiveOr(const char* name, size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  if (end == value || *end != '\0' || parsed <= 0) {
    ANGEL_LOG(Warning) << "ignoring non-positive or unparsable " << name << "="
                       << value;
    return fallback;
  }
  return static_cast<size_t>(parsed);
}

double EnvDoubleOr(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value || *end != '\0' || !std::isfinite(parsed)) {
    ANGEL_LOG(Warning) << "ignoring unparsable " << name << "=" << value;
    return fallback;
  }
  return parsed;
}

std::string EnvStringOr(const char* name, const std::string& fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::string(value);
}

}  // namespace angelptm::util
