#ifndef ANGELPTM_UTIL_SCHEDULE_PERTURB_H_
#define ANGELPTM_UTIL_SCHEDULE_PERTURB_H_

#include <atomic>
#include <cstdint>

/// Seeded schedule perturbation (DESIGN.md §15.3). Injects random
/// yield/short-sleep decisions at lock-acquisition points (lockdep build)
/// and at every named failpoint site (`ANGEL_FAULT_CHECK`, all builds), so
/// lockdep, TSan, and the fault-injection suites observe far more thread
/// interleavings than the natural scheduler produces — deterministically:
/// the decision sequence is a pure function of (seed, decision index), so
/// the same `ANGELPTM_PERTURB_SEED` replays the same injection sequence.
///
/// Env knobs (read once at first use; precedence test override > env >
/// compiled default, per DESIGN.md §13):
///   ANGELPTM_PERTURB_PROB    injection probability per decision point
///                            (default 0 = disabled; enabling is just
///                            setting this > 0)
///   ANGELPTM_PERTURB_SEED    decision-sequence seed (default 1)
///   ANGELPTM_PERTURB_MAX_US  max injected sleep, microseconds (default 100;
///                            half of injections yield instead of sleeping)
namespace angelptm::util {

class SchedulePerturb {
 public:
  /// What a single decision point does. Pure function of (seed, index) —
  /// see DecisionFor.
  struct Decision {
    bool inject = false;
    bool yield = false;       // true: sched_yield; false: sleep sleep_us.
    uint32_t sleep_us = 0;
  };

  /// Process-wide instance, configured from the environment on first use.
  static SchedulePerturb& Instance();

  /// The decision for index `index` of a sequence with seed `seed`.
  /// Deterministic and stateless (splitmix64 over seed ^ f(index)):
  /// identical (seed, prob, max_sleep_us) replay identical sequences.
  static Decision DecisionFor(uint64_t seed, uint64_t index, double prob,
                              uint32_t max_sleep_us);

  /// A perturbation point. Cheap when disabled (one relaxed load); when
  /// enabled, consumes the next decision index and yields/sleeps as the
  /// decision says. `site` names the point in logs only — it does not
  /// affect the decision sequence (so adding sites shifts, but never
  /// forks, a replay).
  void MaybePerturb(const char* site) {
    if (!enabled_.load(std::memory_order_relaxed)) return;
    PerturbSlow(site);
  }

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  uint64_t seed() const { return seed_; }

  /// Test override: force-enable with an explicit config, beating the
  /// environment. Resets the decision counter so sequences start at 0.
  void ForceEnable(uint64_t seed, double prob, uint32_t max_sleep_us);
  /// Test override: force-disable regardless of environment.
  void ForceDisable();
  /// Drops the test override and re-applies the environment-derived config.
  void ClearForce();

  /// Counters for reproducibility assertions.
  uint64_t decisions() const {
    return next_index_.load(std::memory_order_relaxed);
  }
  uint64_t injections() const {
    return injections_.load(std::memory_order_relaxed);
  }

 private:
  SchedulePerturb();
  void PerturbSlow(const char* site);
  void LoadFromEnv();

  std::atomic<bool> enabled_{false};
  uint64_t seed_ = 1;
  double prob_ = 0.0;
  uint32_t max_sleep_us_ = 100;
  std::atomic<uint64_t> next_index_{0};
  std::atomic<uint64_t> injections_{0};
};

}  // namespace angelptm::util

#endif  // ANGELPTM_UTIL_SCHEDULE_PERTURB_H_
