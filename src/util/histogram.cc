#include "util/histogram.h"

#include <algorithm>
#include <cstdio>

namespace angelptm::util {

Histogram::Histogram(uint64_t max_value) : buckets_(max_value + 1, 0) {}

void Histogram::Record(uint64_t value) {
  const size_t bucket =
      std::min<uint64_t>(value, buckets_.size() - 1);
  buckets_[bucket] += 1;
  count_ += 1;
  sum_ += value;
  max_seen_ = std::max(max_seen_, value);
}

void Histogram::Merge(const Histogram& other) {
  const size_t n = std::min(buckets_.size(), other.buckets_.size());
  for (size_t i = 0; i < n; ++i) buckets_[i] += other.buckets_[i];
  // Overflow of the smaller histogram lands in this one's last bucket.
  for (size_t i = n; i < other.buckets_.size(); ++i) {
    buckets_.back() += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  max_seen_ = std::max(max_seen_, other.max_seen_);
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = sum_ = max_seen_ = 0;
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : double(sum_) / double(count_);
}

uint64_t Histogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  const uint64_t target =
      uint64_t(p * double(count_) + 0.9999999);
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) return i;
  }
  return buckets_.size() - 1;
}

std::string Histogram::Summary() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.2f p50=%llu p95=%llu max=%llu",
                (unsigned long long)count_, Mean(),
                (unsigned long long)Percentile(0.5),
                (unsigned long long)Percentile(0.95),
                (unsigned long long)max_seen_);
  return buf;
}

}  // namespace angelptm::util
