#include "util/units.h"

#include <cstdio>

namespace angelptm::util {
namespace {

std::string FormatWithSuffix(double value, const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", value, suffix);
  return buf;
}

}  // namespace

std::string FormatBytes(uint64_t bytes) {
  if (bytes >= kTiB) return FormatWithSuffix(double(bytes) / kTiB, "TiB");
  if (bytes >= kGiB) return FormatWithSuffix(double(bytes) / kGiB, "GiB");
  if (bytes >= kMiB) return FormatWithSuffix(double(bytes) / kMiB, "MiB");
  if (bytes >= kKiB) return FormatWithSuffix(double(bytes) / kKiB, "KiB");
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu B", (unsigned long long)bytes);
  return buf;
}

std::string FormatParamCount(uint64_t params) {
  char buf[64];
  if (params >= 1'000'000'000'000ull) {
    std::snprintf(buf, sizeof(buf), "%.1fT", double(params) / 1e12);
  } else if (params >= 1'000'000'000ull) {
    std::snprintf(buf, sizeof(buf), "%.1fB", double(params) / 1e9);
  } else if (params >= 1'000'000ull) {
    std::snprintf(buf, sizeof(buf), "%.1fM", double(params) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu", (unsigned long long)params);
  }
  return buf;
}

std::string FormatDuration(double seconds) {
  char buf[64];
  if (seconds < 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.0f ns", seconds * 1e9);
  } else if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  }
  return buf;
}

uint64_t RoundUp(uint64_t value, uint64_t alignment) {
  if (alignment == 0) return value;
  const uint64_t rem = value % alignment;
  return rem == 0 ? value : value + (alignment - rem);
}

}  // namespace angelptm::util
