#ifndef ANGELPTM_UTIL_FAULT_INJECTOR_H_
#define ANGELPTM_UTIL_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/random.h"
#include "util/schedule_perturb.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace angelptm::util {

/// One failpoint rule: when and with what status a named site fails.
///
/// Exactly one trigger should be set; when several are set a site fires if
/// *any* trigger matches the current call. Call counting is per-site and
/// 1-based (the first Check() at a site is call 1).
struct FaultRule {
  /// Status returned by a firing site.
  StatusCode code = StatusCode::kIoError;
  /// Optional message; defaults to "injected fault at <site> (call #N)".
  std::string message;

  // --- Triggers ---
  /// Fire with this probability on every call (0 disables).
  double probability = 0.0;
  /// Fire on exactly this call number (0 disables). Models a transient
  /// fault: the retrying caller succeeds on the next attempt.
  int64_t nth_call = 0;
  /// Fire on every call once more than this many calls have been made
  /// (a permanent fault; 0 = from the very first call).
  bool permanent = false;
  int64_t after_calls = 0;

  /// Stop firing after this many fires (-1 = unlimited). Lets a test model
  /// "fails K times, then recovers".
  int64_t max_fires = -1;
};

/// Process-wide failpoint registry (the jemalloc/RocksDB "fail point" idiom):
/// production code declares *sites* via ANGEL_FAULT_CHECK("site.name"); tests
/// and operators arm rules against those sites to force the error paths that
/// real hardware only produces under duress (flaky NVMe, full disks, dying
/// copy threads).
///
/// The disarmed fast path is one relaxed atomic load — cheap enough to keep
/// the checks compiled into release binaries.
///
/// Environment configuration (read once, at first Instance() use):
///   ANGELPTM_FAULT_SITES="site=trigger[,key:value]...[;site2=...]"
///     trigger:  always | nth:<N> | after:<N> | prob:<P>
///     keys:     code:<io|oom|cancelled|internal|unavailable-style names>
///               max:<N>   (max fires)
///               msg:<text>
///   ANGELPTM_FAULT_SEED=<uint64>   seed for probabilistic triggers.
///
/// Example: ANGELPTM_FAULT_SITES="ssd.pwrite=nth:3;copy_engine.move=prob:0.01"
class FaultInjector {
 public:
  /// The process-wide injector. First call parses the environment spec.
  static FaultInjector& Instance();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Arms (or replaces) the rule for `site` and zeroes its counters.
  void Arm(const std::string& site, const FaultRule& rule)
      ANGEL_EXCLUDES(mutex_);
  /// Removes the rule for `site` (its counters are dropped too).
  void Disarm(const std::string& site) ANGEL_EXCLUDES(mutex_);
  /// Disarms every site and clears all counters. Tests call this in
  /// SetUp/TearDown so armed faults never leak across test cases.
  void Reset() ANGEL_EXCLUDES(mutex_);

  /// True when at least one rule is armed (the fast path used by the
  /// ANGEL_FAULT_CHECK macro).
  bool enabled() const {
    return armed_sites_.load(std::memory_order_relaxed) > 0;
  }

  /// Evaluates the site's rule. Returns OK when the site is unarmed or the
  /// trigger does not match this call; otherwise the rule's error status.
  [[nodiscard]] Status Check(const char* site) ANGEL_EXCLUDES(mutex_);

  /// Diagnostics: how often a site was evaluated / actually fired.
  uint64_t calls(const std::string& site) const ANGEL_EXCLUDES(mutex_);
  uint64_t fires(const std::string& site) const ANGEL_EXCLUDES(mutex_);

  /// Parses a spec string (the ANGELPTM_FAULT_SITES grammar above) and arms
  /// every site in it. Returns InvalidArgument on malformed specs without
  /// arming anything.
  [[nodiscard]] Status ArmFromSpec(const std::string& spec)
      ANGEL_EXCLUDES(mutex_);

  /// Reseeds the probabilistic-trigger PRNG (deterministic tests).
  void Seed(uint64_t seed) ANGEL_EXCLUDES(mutex_);

 private:
  FaultInjector();

  struct SiteState {
    FaultRule rule;
    int64_t calls = 0;
    int64_t fires = 0;
  };

  [[nodiscard]] static Status ParseRule(const std::string& site,
                                        const std::string& body,
                                        FaultRule* out);

  mutable Mutex mutex_{"util.fault_injector", lockrank::kFaultInjector};
  std::unordered_map<std::string, SiteState> sites_ ANGEL_GUARDED_BY(mutex_);
  std::atomic<int> armed_sites_{0};
  Rng rng_ ANGEL_GUARDED_BY(mutex_);
};

}  // namespace angelptm::util

/// Declares a failpoint: returns the injected error from the enclosing
/// function when the named site is armed and fires. Compiled into release
/// builds; costs two relaxed loads when nothing is armed (fault registry +
/// schedule perturbator — every failpoint doubles as a perturbation point,
/// DESIGN.md §15.3, so seeded yield/sleep injection explores extra thread
/// interleavings exactly where the error paths branch).
#define ANGEL_FAULT_CHECK(site)                                         \
  do {                                                                  \
    ::angelptm::util::SchedulePerturb::Instance().MaybePerturb(site);   \
    auto& _angel_fi = ::angelptm::util::FaultInjector::Instance();      \
    if (_angel_fi.enabled()) {                                          \
      ::angelptm::util::Status _angel_fault = _angel_fi.Check(site);    \
      if (!_angel_fault.ok()) return _angel_fault;                      \
    }                                                                   \
  } while (0)

#endif  // ANGELPTM_UTIL_FAULT_INJECTOR_H_
