#include "util/table_printer.h"

#include <algorithm>
#include <cstdio>

namespace angelptm::util {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(Row{std::move(row), pending_separator_});
  pending_separator_ = false;
}

void TablePrinter::AddSeparator() { pending_separator_ = true; }

void TablePrinter::Print(std::ostream& os, const std::string& title) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  auto print_border = [&] {
    os << '+';
    for (size_t w : widths) {
      for (size_t i = 0; i < w + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };
  auto print_cells = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << ' ' << cell;
      for (size_t i = cell.size(); i < widths[c] + 1; ++i) os << ' ';
      os << '|';
    }
    os << '\n';
  };

  if (!title.empty()) os << "== " << title << " ==\n";
  print_border();
  print_cells(header_);
  print_border();
  for (const auto& row : rows_) {
    if (row.separator_before) print_border();
    print_cells(row.cells);
  }
  print_border();
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

}  // namespace angelptm::util
