#ifndef ANGELPTM_UTIL_TABLE_PRINTER_H_
#define ANGELPTM_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace angelptm::util {

/// Minimal console table formatter used by the benchmark harness to print
/// paper-style tables with aligned columns.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a data row. Rows shorter than the header are padded with "".
  void AddRow(std::vector<std::string> row);

  /// Inserts a horizontal separator before the next added row.
  void AddSeparator();

  /// Renders the table with a title line, borders, and aligned columns.
  void Print(std::ostream& os, const std::string& title = "") const;

  size_t num_rows() const { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator_before = false;
  };

  std::vector<std::string> header_;
  std::vector<Row> rows_;
  bool pending_separator_ = false;
};

/// Convenience: formats a double with the given precision.
std::string FormatDouble(double value, int precision = 2);

}  // namespace angelptm::util

#endif  // ANGELPTM_UTIL_TABLE_PRINTER_H_
