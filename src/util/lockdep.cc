#include "util/lockdep.h"

#include <execinfo.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <set>
#include <unordered_map>
#include <vector>

namespace angelptm::util::lockdep {
namespace {

constexpr int kMaxBacktraceFrames = 24;
/// Skip the innermost frames (backtrace itself + detector internals) so
/// reports start at the Mutex::Lock call site.
constexpr int kSkipFrames = 2;

std::vector<void*> CaptureBacktrace() {
  void* frames[kMaxBacktraceFrames];
  const int n = backtrace(frames, kMaxBacktraceFrames);
  const int begin = n > kSkipFrames ? kSkipFrames : 0;
  return std::vector<void*>(frames + begin, frames + n);
}

void AppendStack(std::string* out, const std::vector<void*>& bt) {
  if (bt.empty()) {
    *out += "    (no stack captured)\n";
    return;
  }
  char** symbols = backtrace_symbols(bt.data(), static_cast<int>(bt.size()));
  for (std::size_t i = 0; i < bt.size(); ++i) {
    *out += "    ";
    if (symbols != nullptr && symbols[i] != nullptr) {
      *out += symbols[i];
    } else {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%p", bt[i]);
      *out += buf;
    }
    *out += "\n";
  }
  std::free(symbols);
}

std::string DescribeClass(const LockClass& cls) {
  std::string out = "'" + cls.name + "'";
  if (cls.rank != lockrank::kNoRank) {
    out += " (rank " + std::to_string(cls.rank) + ")";
  }
  return out;
}

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

struct Detector::Impl {
  struct Edge {
    std::vector<void*> holder_bt;    // Where the outer (from) lock was taken.
    std::vector<void*> acquirer_bt;  // Where the inner (to) lock was taken.
    uint64_t count = 0;
  };
  struct HeldLock {
    const LockClass* cls;
    const void* addr;
    std::vector<void*> bt;
  };
  struct ThreadState {
    std::vector<HeldLock> held;
    std::vector<void*> pending_bt;  // Captured by OnAcquire for OnAcquired.
  };

  // Raw std::mutex: the detector must never instrument itself.
  mutable std::mutex mu;  // lint: unguarded
  std::unordered_map<std::string, std::unique_ptr<LockClass>> classes;
  const LockClass* unclassified = nullptr;  // id 0; excluded from tracking.
  int next_class_id = 1;
  // Adjacency: from-class id -> (to-class id -> first-observation record).
  std::unordered_map<int, std::unordered_map<int, Edge>> edges;
  std::vector<Violation> violations;
  std::set<uint64_t> reported;  // Dedup key: (kind, from id, to id).
  std::atomic<bool> abort_on_violation{true};
  std::atomic<std::size_t> violation_count{0};

  static ThreadState& Tls(const Impl* impl) {
    thread_local std::unordered_map<const Impl*, ThreadState> states;
    return states[impl];
  }

  /// DFS: is `to` reachable from `from` in the current edge set? Caller
  /// holds `mu`.
  bool Reaches(int from, int to) const {
    std::vector<int> stack = {from};
    std::set<int> seen;
    while (!stack.empty()) {
      const int node = stack.back();
      stack.pop_back();
      if (node == to) return true;
      if (!seen.insert(node).second) continue;
      auto it = edges.find(node);
      if (it == edges.end()) continue;
      for (const auto& [next, edge] : it->second) {
        (void)edge;
        stack.push_back(next);
      }
    }
    return false;
  }

  /// Caller holds `mu`. Records (and possibly reports) a violation once per
  /// (kind, from, to) triple.
  void Report(Violation::Kind kind, const LockClass* from,
              const LockClass* to, std::string report_text) {
    const uint64_t key = (static_cast<uint64_t>(kind) << 56) |
                         (static_cast<uint64_t>(from ? from->id : 0) << 28) |
                         static_cast<uint64_t>(to ? to->id : 0);
    if (!reported.insert(key).second) return;
    violation_count.fetch_add(1, std::memory_order_relaxed);
    if (abort_on_violation.load(std::memory_order_relaxed)) {
      std::fprintf(stderr, "%s", report_text.c_str());
      std::fflush(stderr);
      std::abort();
    }
    Violation v;
    v.kind = kind;
    if (from != nullptr) v.from_class = from->name;
    if (to != nullptr) v.to_class = to->name;
    v.report = std::move(report_text);
    violations.push_back(std::move(v));
  }

  /// Caller holds `mu`. Renders one existing dependency path to -> ... -> from
  /// (the path that the new edge from -> to would close into a cycle).
  std::string DescribePath(int to, int from) const {
    // Re-run the DFS keeping parents so we can print the path.
    std::unordered_map<int, int> parent;
    std::vector<int> stack = {to};
    parent[to] = to;
    while (!stack.empty()) {
      const int node = stack.back();
      stack.pop_back();
      if (node == from) break;
      auto it = edges.find(node);
      if (it == edges.end()) continue;
      for (const auto& [next, edge] : it->second) {
        (void)edge;
        if (parent.emplace(next, node).second) stack.push_back(next);
      }
    }
    if (parent.find(from) == parent.end()) return "";
    std::vector<int> path;
    for (int node = from; node != to; node = parent[node]) path.push_back(node);
    path.push_back(to);
    std::string out;
    for (auto it = path.rbegin(); it != path.rend(); ++it) {
      if (!out.empty()) out += " -> ";
      out += "'" + NameOf(*it) + "'";
    }
    return out;
  }

  /// Caller holds `mu`.
  std::string NameOf(int id) const {
    for (const auto& [name, cls] : classes) {
      if (cls->id == id) return name;
    }
    return "<unknown>";
  }
};

Detector::Detector() : impl_(new Impl()) {  // lint: naked-new (owned by dtor)
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto cls = std::make_unique<LockClass>();
  cls->id = 0;
  cls->name = "unclassified";
  cls->rank = lockrank::kNoRank;
  impl_->unclassified = cls.get();
  impl_->classes.emplace("unclassified", std::move(cls));
}

Detector::~Detector() { delete impl_; }

Detector& Detector::Global() {
  static Detector* global = [] {
    Detector* d = new Detector();  // lint: naked-new (leaked singleton)
    const char* dump = std::getenv("ANGELPTM_LOCKDEP_DUMP");
    if (dump != nullptr && dump[0] != '\0') {
      static std::string prefix;  // atexit handler needs static storage
      prefix = dump;
      std::atexit([] { (void)Detector::Global().WriteDump(prefix); });
    }
    return d;
  }();
  return *global;
}

const LockClass* Detector::RegisterClass(const char* name, int rank) {
  if (name == nullptr || name[0] == '\0') return impl_->unclassified;
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->classes.find(name);
  if (it != impl_->classes.end()) {
    LockClass* existing = it->second.get();
    if (existing->rank != rank) {
      impl_->Report(Violation::Kind::kRankConflict, nullptr, existing,
                    "lockdep: class '" + existing->name +
                        "' registered with conflicting ranks " +
                        std::to_string(existing->rank) + " and " +
                        std::to_string(rank) + " (keeping the first)\n");
    }
    return existing;
  }
  auto cls = std::make_unique<LockClass>();
  cls->id = impl_->next_class_id++;
  cls->name = name;
  cls->rank = rank;
  const LockClass* out = cls.get();
  impl_->classes.emplace(out->name, std::move(cls));
  return out;
}

void Detector::OnAcquire(const LockClass* cls, const void* addr) {
  Impl::ThreadState& tls = Impl::Tls(impl_);
  tls.pending_bt = CaptureBacktrace();
  // Recursive self-acquisition deadlocks regardless of classification.
  for (const Impl::HeldLock& held : tls.held) {
    if (held.addr == addr) {
      std::string report =
          "lockdep: recursive acquisition of mutex " +
          std::string(cls != nullptr ? DescribeClass(*cls) : "'?'") +
          " — guaranteed self-deadlock\n  second acquisition at:\n";
      AppendStack(&report, tls.pending_bt);
      report += "  first acquisition at:\n";
      AppendStack(&report, held.bt);
      std::lock_guard<std::mutex> lock(impl_->mu);
      impl_->Report(Violation::Kind::kRecursive, held.cls, cls,
                    std::move(report));
      return;
    }
  }
  if (cls == nullptr || cls->id == 0) return;  // Unclassified: edges skipped.
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (const Impl::HeldLock& held : tls.held) {
    if (held.cls == nullptr || held.cls->id == 0) continue;
    if (held.cls == cls) {
      std::string report =
          "lockdep: two instances of lock class " + DescribeClass(*cls) +
          " held by one thread (intra-class ordering is undeclared)\n"
          "  second instance at:\n";
      AppendStack(&report, tls.pending_bt);
      report += "  first instance at:\n";
      AppendStack(&report, held.bt);
      impl_->Report(Violation::Kind::kSameClass, held.cls, cls,
                    std::move(report));
      continue;
    }
    if (cls->rank != lockrank::kNoRank && held.cls->rank != lockrank::kNoRank &&
        cls->rank <= held.cls->rank) {
      std::string report =
          "lockdep: rank inversion — acquiring " + DescribeClass(*cls) +
          " while holding " + DescribeClass(*held.cls) +
          " (ranks must strictly increase inward; see DESIGN.md §15)\n"
          "  acquisition at:\n";
      AppendStack(&report, tls.pending_bt);
      report += "  held lock acquired at:\n";
      AppendStack(&report, held.bt);
      impl_->Report(Violation::Kind::kRankInversion, held.cls, cls,
                    std::move(report));
    }
    // Dependency edge held -> acquiring. A new edge that makes the held
    // class reachable *from* the acquired class closes a cycle: the
    // opposite order has been observed before.
    auto& out_edges = impl_->edges[held.cls->id];
    auto edge_it = out_edges.find(cls->id);
    if (edge_it != out_edges.end()) {
      edge_it->second.count += 1;
      continue;
    }
    if (impl_->Reaches(cls->id, held.cls->id)) {
      std::string report =
          "lockdep: lock-order inversion (would-be ABBA deadlock)\n"
          "  acquiring " + DescribeClass(*cls) + " at:\n";
      AppendStack(&report, tls.pending_bt);
      report += "  while holding " + DescribeClass(*held.cls) +
                " acquired at:\n";
      AppendStack(&report, held.bt);
      const std::string path = impl_->DescribePath(cls->id, held.cls->id);
      if (!path.empty()) {
        report += "  conflicting dependency already observed: " + path +
                  "\n  new edge '" + held.cls->name + "' -> '" + cls->name +
                  "' closes the cycle\n";
      }
      impl_->Report(Violation::Kind::kCycle, held.cls, cls,
                    std::move(report));
      continue;  // Keep the graph acyclic: do not insert the closing edge.
    }
    Impl::Edge edge;
    edge.holder_bt = held.bt;
    edge.acquirer_bt = tls.pending_bt;
    edge.count = 1;
    out_edges.emplace(cls->id, std::move(edge));
  }
}

void Detector::OnAcquired(const LockClass* cls, const void* addr) {
  Impl::ThreadState& tls = Impl::Tls(impl_);
  Impl::HeldLock held;
  held.cls = cls;
  held.addr = addr;
  held.bt = std::move(tls.pending_bt);
  tls.pending_bt.clear();
  tls.held.push_back(std::move(held));
}

void Detector::OnTryAcquired(const LockClass* cls, const void* addr) {
  Impl::ThreadState& tls = Impl::Tls(impl_);
  Impl::HeldLock held;
  held.cls = cls;
  held.addr = addr;
  held.bt = CaptureBacktrace();
  tls.held.push_back(std::move(held));
}

void Detector::OnRelease(const void* addr) {
  Impl::ThreadState& tls = Impl::Tls(impl_);
  for (auto it = tls.held.rbegin(); it != tls.held.rend(); ++it) {
    if (it->addr == addr) {
      tls.held.erase(std::next(it).base());
      return;
    }
  }
  // Not found: acquired before instrumentation (or after ResetForTest).
}

void Detector::set_abort_on_violation(bool abort_on_violation) {
  impl_->abort_on_violation.store(abort_on_violation,
                                  std::memory_order_relaxed);
}

bool Detector::abort_on_violation() const {
  return impl_->abort_on_violation.load(std::memory_order_relaxed);
}

std::size_t Detector::violation_count() const {
  return impl_->violation_count.load(std::memory_order_relaxed);
}

std::vector<Violation> Detector::TakeViolations() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::vector<Violation> out = std::move(impl_->violations);
  impl_->violations.clear();
  return out;
}

std::size_t Detector::num_classes() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->classes.size() - 1;  // The "unclassified" bucket is internal.
}

std::size_t Detector::num_edges() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::size_t n = 0;
  for (const auto& [from, out_edges] : impl_->edges) {
    (void)from;
    n += out_edges.size();
  }
  return n;
}

std::string Detector::DumpDot() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::string out = "digraph lock_order {\n  rankdir=LR;\n";
  // Stable output: order classes by id, edges by (from, to) name.
  std::vector<const LockClass*> by_id(impl_->classes.size(), nullptr);
  for (const auto& [name, cls] : impl_->classes) {
    (void)name;
    by_id[static_cast<std::size_t>(cls->id)] = cls.get();
  }
  for (const LockClass* cls : by_id) {
    if (cls == nullptr || cls->id == 0) continue;
    out += "  \"" + cls->name + "\" [label=\"" + cls->name;
    if (cls->rank != lockrank::kNoRank) {
      out += "\\nrank " + std::to_string(cls->rank);
    }
    out += "\"];\n";
  }
  for (const LockClass* from : by_id) {
    if (from == nullptr) continue;
    auto it = impl_->edges.find(from->id);
    if (it == impl_->edges.end()) continue;
    std::vector<int> tos;
    for (const auto& [to, edge] : it->second) {
      (void)edge;
      tos.push_back(to);
    }
    std::sort(tos.begin(), tos.end());
    for (int to : tos) {
      out += "  \"" + from->name + "\" -> \"" + impl_->NameOf(to) +
             "\" [label=\"" +
             std::to_string(it->second.at(to).count) + "\"];\n";
    }
  }
  out += "}\n";
  return out;
}

std::string Detector::DumpJson() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::string out = "{\n  \"classes\": [\n";
  std::vector<const LockClass*> by_id(impl_->classes.size(), nullptr);
  for (const auto& [name, cls] : impl_->classes) {
    (void)name;
    by_id[static_cast<std::size_t>(cls->id)] = cls.get();
  }
  bool first = true;
  for (const LockClass* cls : by_id) {
    if (cls == nullptr || cls->id == 0) continue;
    if (!first) out += ",\n";
    first = false;
    out += "    {\"name\": \"" + JsonEscape(cls->name) +
           "\", \"rank\": " + std::to_string(cls->rank) + "}";
  }
  out += "\n  ],\n  \"edges\": [\n";
  first = true;
  for (const LockClass* from : by_id) {
    if (from == nullptr) continue;
    auto it = impl_->edges.find(from->id);
    if (it == impl_->edges.end()) continue;
    std::vector<int> tos;
    for (const auto& [to, edge] : it->second) {
      (void)edge;
      tos.push_back(to);
    }
    std::sort(tos.begin(), tos.end());
    for (int to : tos) {
      if (!first) out += ",\n";
      first = false;
      out += "    {\"from\": \"" + JsonEscape(from->name) + "\", \"to\": \"" +
             JsonEscape(impl_->NameOf(to)) + "\", \"count\": " +
             std::to_string(it->second.at(to).count) + "}";
    }
  }
  out += "\n  ],\n  \"violations\": " +
         std::to_string(violation_count()) + "\n}\n";
  return out;
}

bool Detector::WriteDump(const std::string& prefix) const {
  {
    std::ofstream dot(prefix + ".dot");
    if (!dot.is_open()) return false;
    dot << DumpDot();
    if (!dot.flush()) return false;
  }
  std::ofstream json(prefix + ".json");
  if (!json.is_open()) return false;
  json << DumpJson();
  return static_cast<bool>(json.flush());
}

void Detector::ResetForTest() {
  Impl::Tls(impl_).held.clear();
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->edges.clear();
  impl_->violations.clear();
  impl_->reported.clear();
  impl_->violation_count.store(0, std::memory_order_relaxed);
}

}  // namespace angelptm::util::lockdep
