#ifndef ANGELPTM_UTIL_HISTOGRAM_H_
#define ANGELPTM_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace angelptm::util {

/// Fixed-bucket histogram for runtime observability (e.g. the staleness
/// distribution of the lock-free updater: how many gradient batches each
/// update folded in). Thread-compatible; callers serialize externally.
class Histogram {
 public:
  /// Buckets [0,1), [1,2), ..., [max_value, inf).
  explicit Histogram(uint64_t max_value = 64);

  void Record(uint64_t value);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  double Mean() const;
  uint64_t Max() const { return max_seen_; }
  /// Smallest value v such that at least `p` (0..1] of samples are <= v.
  uint64_t Percentile(double p) const;

  /// "count=12 mean=2.3 p50=2 p95=5 max=9".
  std::string Summary() const;

 private:
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_seen_ = 0;
};

}  // namespace angelptm::util

#endif  // ANGELPTM_UTIL_HISTOGRAM_H_
