#ifndef ANGELPTM_UTIL_UNITS_H_
#define ANGELPTM_UTIL_UNITS_H_

#include <cstdint>
#include <string>

namespace angelptm::util {

inline constexpr uint64_t kKiB = 1024ull;
inline constexpr uint64_t kMiB = 1024ull * kKiB;
inline constexpr uint64_t kGiB = 1024ull * kMiB;
inline constexpr uint64_t kTiB = 1024ull * kGiB;

/// "1.50 GiB", "512 B". Two decimals above bytes.
std::string FormatBytes(uint64_t bytes);

/// "1.7B", "175B", "1.2T" parameter-count style formatting.
std::string FormatParamCount(uint64_t params);

/// "12.3 ms", "4.56 s".
std::string FormatDuration(double seconds);

/// Rounds `value` up to the next multiple of `alignment` (a power of two or
/// any positive value).
uint64_t RoundUp(uint64_t value, uint64_t alignment);

}  // namespace angelptm::util

#endif  // ANGELPTM_UTIL_UNITS_H_
