#include "util/parallel_for.h"

#include <thread>

#include "util/env_override.h"

namespace angelptm::util {
namespace {

std::atomic<ThreadPool*> g_compute_pool_override{nullptr};

size_t DefaultComputeThreads() {
  // Precedence (util::EnvOverride contract): SetComputePoolOverride beats
  // the env, which beats hardware_concurrency(). Zero or negative thread
  // counts are meaningless, so EnvPositiveOr rejects them.
  const unsigned hw = std::thread::hardware_concurrency();
  const size_t fallback = hw == 0 ? 1 : size_t(hw);
  return EnvPositiveOr("ANGELPTM_COMPUTE_THREADS", fallback);
}

ThreadPool* DefaultComputePool() {
  // Leaked on purpose: compute kernels may run from other static-lifetime
  // threads (lock-free updater, executor streams), so tearing the pool down
  // during static destruction would be an ordering hazard.
  static ThreadPool* pool =
      new ThreadPool(DefaultComputeThreads());  // lint: naked-new (leaked singleton)
  return pool;
}

}  // namespace

ThreadPool* ComputePool() {
  ThreadPool* override_pool =
      g_compute_pool_override.load(std::memory_order_acquire);
  if (override_pool != nullptr) return override_pool;
  return DefaultComputePool();
}

void SetComputePoolOverride(ThreadPool* pool) {
  g_compute_pool_override.store(pool, std::memory_order_release);
}

size_t ComputePoolThreads() { return ComputePool()->num_threads(); }

}  // namespace angelptm::util
