#ifndef ANGELPTM_UTIL_HALF_H_
#define ANGELPTM_UTIL_HALF_H_

#include <cstdint>
#include <ostream>

namespace angelptm::util {

/// Converts an IEEE-754 binary32 to binary16 bits with round-to-nearest-even,
/// handling subnormals, infinities and NaN.
uint16_t FloatToHalfBits(float f);

/// Converts IEEE-754 binary16 bits back to binary32.
float HalfBitsToFloat(uint16_t h);

/// Converts binary32 to bfloat16 bits with round-to-nearest-even.
uint16_t FloatToBFloat16Bits(float f);

/// Converts bfloat16 bits back to binary32 (exact).
float BFloat16BitsToFloat(uint16_t b);

/// Software IEEE-754 binary16. Used to store the half-precision copies of
/// parameters and gradients managed by the memory subsystem (the paper's FP16
/// buffers in Algorithm 2). Arithmetic round-trips through float, which is
/// exactly what scalar half arithmetic does on real accelerators.
class Half {
 public:
  Half() : bits_(0) {}
  explicit Half(float f) : bits_(FloatToHalfBits(f)) {}

  static Half FromBits(uint16_t bits) {
    Half h;
    h.bits_ = bits;
    return h;
  }

  uint16_t bits() const { return bits_; }
  float ToFloat() const { return HalfBitsToFloat(bits_); }
  explicit operator float() const { return ToFloat(); }

  Half operator+(Half other) const {
    return Half(ToFloat() + other.ToFloat());
  }
  Half operator-(Half other) const {
    return Half(ToFloat() - other.ToFloat());
  }
  Half operator*(Half other) const {
    return Half(ToFloat() * other.ToFloat());
  }
  Half operator/(Half other) const {
    return Half(ToFloat() / other.ToFloat());
  }
  Half& operator+=(Half other) {
    *this = *this + other;
    return *this;
  }

  bool operator==(Half other) const { return ToFloat() == other.ToFloat(); }
  bool operator<(Half other) const { return ToFloat() < other.ToFloat(); }

 private:
  uint16_t bits_;
};

static_assert(sizeof(Half) == 2, "Half must be 2 bytes");

/// Software bfloat16 (the paper trains GPT/T5 with BF16 compute). Same
/// exponent range as float, 8-bit mantissa.
class BFloat16 {
 public:
  BFloat16() : bits_(0) {}
  explicit BFloat16(float f) : bits_(FloatToBFloat16Bits(f)) {}

  static BFloat16 FromBits(uint16_t bits) {
    BFloat16 b;
    b.bits_ = bits;
    return b;
  }

  uint16_t bits() const { return bits_; }
  float ToFloat() const { return BFloat16BitsToFloat(bits_); }
  explicit operator float() const { return ToFloat(); }

 private:
  uint16_t bits_;
};

static_assert(sizeof(BFloat16) == 2, "BFloat16 must be 2 bytes");

inline std::ostream& operator<<(std::ostream& os, Half h) {
  return os << h.ToFloat();
}

}  // namespace angelptm::util

#endif  // ANGELPTM_UTIL_HALF_H_
