#ifndef ANGELPTM_UTIL_LOCKDEP_H_
#define ANGELPTM_UTIL_LOCKDEP_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

/// Runtime lock-order analysis (DESIGN.md §15), Linux-kernel "lockdep"
/// style. Every util::Mutex belongs to a named *lock class* (all per-layer
/// `master_mutex` instances are one class) with an optional declared rank.
/// Under the `ANGELPTM_LOCKDEP=ON` build, each acquisition
///
///   1. checks the class rank against every ranked lock already held by the
///      thread (an acquisition must move strictly *inward*: new rank >
///      every held rank), and
///   2. records a class-level dependency edge held-class -> acquired-class
///      in a global graph, running online cycle detection when the edge is
///      new.
///
/// A would-be ABBA inversion is therefore reported the first time the
/// *second* order is observed — with the acquisition stack traces of both
/// edges — without the deadlock interleaving ever having to fire. Rank
/// violations likewise flag ordering bugs that no test schedule actually
/// deadlocks on.
///
/// The Detector itself is compiled unconditionally (it is pure bookkeeping
/// and unit-tested in the default build via its explicit API); only the
/// util::Mutex instrumentation hooks are compile-gated, so the default
/// build's shims stay byte-identical to plain std types.
namespace angelptm::util {

/// Canonical lock ranks, outermost (lowest) to innermost (highest). A lock
/// may only be acquired while every held ranked lock has a *strictly
/// smaller* rank. Gaps leave room for future classes. This table is
/// mirrored in DESIGN.md §15 and cross-checked by `scripts/lint.py`
/// (lock-class rule) in both directions.
namespace lockrank {
inline constexpr int kNoRank = 0;  // Unranked: graph edges only, no order check.

// Tier A — outermost: per-layer update transaction.
inline constexpr int kUpdaterMaster = 10;
// Tier B — allocation / page-movement entry points (PageTransport delivers
// into HierarchicalMemory — CreatePage/MovePageSync — under its own lock).
inline constexpr int kAllocState = 20;
inline constexpr int kCopyPage = 22;
inline constexpr int kPageTransport = 24;
// Tier C — updater pipeline internals reached under a master lock.
inline constexpr int kUpdaterQueue = 30;
inline constexpr int kUpdaterBuffer = 32;
// Tier D — memory-tier state reached under alloc/copy locks.
inline constexpr int kHmemRegistry = 40;
inline constexpr int kHmemStats = 42;
inline constexpr int kSsdState = 44;
inline constexpr int kSsdIoQueue = 46;
inline constexpr int kArenaState = 48;
// Tier E — utility leaves reached under updater/memory locks.
inline constexpr int kUpdaterPoison = 60;
inline constexpr int kUpdaterWork = 62;
inline constexpr int kFaultInjector = 64;
inline constexpr int kThrottle = 66;
// Tier F — standalone leaves (never observed nested under anything, ranked
// innermost-ward so future nesting under the tiers above stays legal).
inline constexpr int kUpdaterBackpressure = 70;
inline constexpr int kUpdaterStaleness = 72;
inline constexpr int kCopyPageMap = 74;
inline constexpr int kThreadPool = 76;
inline constexpr int kCommunicator = 80;
inline constexpr int kCheckpointStats = 82;
inline constexpr int kObsRegistry = 84;
// Tier G — tracing: spans can end while *any* other lock is held, so the
// trace log is the innermost class in the system.
inline constexpr int kTraceRegistry = 86;
inline constexpr int kTraceLog = 88;
}  // namespace lockrank

namespace lockdep {

/// One named lock class (e.g. "updater.master"); all mutex instances
/// declaring the same name share it. Immutable after registration.
struct LockClass {
  int id = 0;
  std::string name;
  int rank = lockrank::kNoRank;
};

struct Violation {
  enum class Kind {
    kCycle,          // New edge closes a cycle in the class dependency graph.
    kRankInversion,  // Acquired rank <= a held rank (distinct classes).
    kSameClass,      // Two instances of one class nested.
    kRecursive,      // Same mutex instance acquired twice by one thread.
    kRankConflict,   // One class name registered with two different ranks.
  };
  Kind kind;
  std::string from_class;  // Held side (empty for kRankConflict).
  std::string to_class;    // Acquired side.
  std::string report;      // Full human-readable report incl. stack traces.
};

/// The lock-dependency analyzer. `Global()` is the instance the Mutex shims
/// feed; tests may construct private instances and drive the OnAcquire /
/// OnAcquired / OnRelease protocol directly (this works in every build).
/// Thread-safe; internal synchronization deliberately uses a raw
/// std::mutex so the detector never instruments itself.
class Detector {
 public:
  Detector();
  ~Detector();
  Detector(const Detector&) = delete;
  Detector& operator=(const Detector&) = delete;

  static Detector& Global();

  /// Interns a lock class by name. `name == nullptr` returns the shared
  /// "unclassified" class, which is excluded from dependency tracking
  /// (classify a mutex to opt it in; lint enforces this under src/).
  /// Re-registering a name with a different rank records a kRankConflict
  /// and keeps the first rank.
  const LockClass* RegisterClass(const char* name, int rank);

  /// Pre-acquisition hook: runs the rank check and edge/cycle analysis
  /// against the calling thread's held stack, then (on the instrumented
  /// path) the schedule-perturbation point. Call before blocking on the
  /// underlying mutex so inversions are reported even when the acquisition
  /// would deadlock.
  void OnAcquire(const LockClass* cls, const void* addr);
  /// Post-acquisition hook: pushes the lock onto the thread's held stack
  /// with a captured stack trace.
  void OnAcquired(const LockClass* cls, const void* addr);
  /// Successful TryLock: pushes the held entry without recording
  /// dependency edges (try-lock cannot deadlock).
  void OnTryAcquired(const LockClass* cls, const void* addr);
  /// Pre-release hook: pops the lock from the thread's held stack.
  void OnRelease(const void* addr);

  /// When true (default), a violation prints its report to stderr and
  /// aborts the process. Tests switch to capture mode via
  /// ScopedCaptureViolations below.
  void set_abort_on_violation(bool abort_on_violation);
  bool abort_on_violation() const;

  std::size_t violation_count() const;
  /// Drains captured violations (capture mode only fills this).
  std::vector<Violation> TakeViolations();

  std::size_t num_classes() const;
  std::size_t num_edges() const;

  /// Graphviz dump of the observed class dependency graph; ranked classes
  /// carry their rank in the label.
  std::string DumpDot() const;
  /// JSON dump: {"classes": [...], "edges": [...], "violations": N}.
  std::string DumpJson() const;
  /// Writes `<prefix>.dot` and `<prefix>.json`; returns false on I/O error.
  bool WriteDump(const std::string& prefix) const;

  /// Clears graph, violations, and the calling thread's held stack.
  void ResetForTest();

 private:
  struct Impl;
  Impl* impl_;  // Raw pointer: the global detector is deliberately leaked.
};

/// RAII: puts `detector` into capture mode (no abort) and restores the
/// previous mode on destruction. The negative tests (deliberate ABBA)
/// run under this.
class ScopedCaptureViolations {
 public:
  explicit ScopedCaptureViolations(Detector& detector)
      : detector_(detector), previous_(detector.abort_on_violation()) {
    detector_.set_abort_on_violation(false);
  }
  ~ScopedCaptureViolations() { detector_.set_abort_on_violation(previous_); }
  ScopedCaptureViolations(const ScopedCaptureViolations&) = delete;
  ScopedCaptureViolations& operator=(const ScopedCaptureViolations&) = delete;

 private:
  Detector& detector_;
  bool previous_;
};

}  // namespace lockdep
}  // namespace angelptm::util

#endif  // ANGELPTM_UTIL_LOCKDEP_H_
