// Regenerates the paper's Figure 8: scalability of Angel-PTM training
// GPT3-175B from 256 to 768 GPUs. The paper reports 11.68 samples/s at 256
// GPUs rising to 36.46 at 768 (3.12x over a 3x GPU increase): near-linear
// scaling with a slightly super-linear margin from growing the global batch
// and parallelizing the CPU optimizer and PCIe movements across more nodes.

#include <iostream>

#include "bench/bench_util.h"
#include "model/model_zoo.h"
#include "sim/planner.h"
#include "util/table_printer.h"

int main() {
  using namespace angelptm;
  bench::PrintHeader("Figure 8: GPT3-175B scalability (256 -> 768 GPUs)",
                     "Figure 8 (Section 6.4)");

  auto config = model::FindModel("GPT3-175B");
  config->seq_len = 2048;

  util::TablePrinter table({"GPUs", "micro-batch", "global batch",
                            "samples/s", "per-GPU", "speedup vs 256"});
  double base = 0;
  for (const int gpus : {256, 384, 512, 640, 768}) {
    sim::PlanRequest request;
    request.model = *config;
    request.hw = sim::PaperServer();
    request.num_gpus = gpus;
    request.grad_accumulation = 8;
    const int micro_batch = sim::MaxMicroBatchAngelPtm(request, 64);
    request.micro_batch = micro_batch;
    auto plan = sim::PlanAngelPtm(request);
    if (!plan.ok()) {
      table.AddRow({std::to_string(gpus), "-", "-", "infeasible", "-", "-"});
      continue;
    }
    const sim::IterationResult result = sim::SimulateIteration(plan->spec);
    const double samples = double(gpus) * micro_batch *
                           request.grad_accumulation;
    const double throughput = samples / result.iteration_seconds;
    if (base == 0) base = throughput;
    table.AddRow({std::to_string(gpus), std::to_string(micro_batch),
                  std::to_string(int64_t(samples)),
                  util::FormatDouble(throughput, 2),
                  util::FormatDouble(throughput / gpus, 4),
                  util::FormatDouble(throughput / base, 2) + "x"});
  }
  table.Print(std::cout, "Angel-PTM training GPT3-175B (seq 2048, grad "
                         "accumulation 8)");
  std::cout
      << "\nPaper: 11.68 samples/s @256 GPUs -> 36.46 @768 (3.12x).\n"
      << "This repo reproduces the near-linear shape (~3.0x for 3x GPUs);\n"
      << "the paper's extra +4% (super-linear) margin comes from batch\n"
      << "growth effects our feasibility-driven batch search reproduces\n"
      << "only partially (see EXPERIMENTS.md).\n";
  return 0;
}
