// Updater-contention microbenchmark across every registered update rule
// (DESIGN.md §13): a compute thread offloads gradients and fetches buffered
// parameters against a *running* LockFreeUpdater while extra reader threads
// hammer the seqlock-published parameter mirror, which is exactly the
// read-mostly hot path the lockless FetchParams redesign targets.
//
// Per rule it records, into BENCH_optimizer.json:
//   - wall time of the contended phase and updates applied during it;
//   - FetchParams latency distribution under contention (reader side of
//     the seqlock: no mutex, retry only across an overlapping publish);
//   - OffloadGrads latency distribution (the compute side must never
//     block on the updater — Algorithm 2's defining property);
//   - the updater's own counters (batches offloaded/applied, staleness).
//
// Honesty rules (DESIGN.md §11.5): every entry records the layer/element
// geometry and thread counts it actually ran with, and the reported
// latencies are microseconds from a monotonic clock, min-of-nothing — the
// full distribution is what matters for a contention bench.
//
// Usage: optimizer_bench [output.json] [elems_per_layer]
//   output.json defaults to BENCH_optimizer.json; elems_per_layer defaults
//   to 65536 (pass e.g. 4096 for a quick smoke run).

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/allocator.h"
#include "core/lockfree_updater.h"
#include "core/optimizer/optimizer.h"
#include "mem/hierarchical_memory.h"
#include "util/histogram.h"
#include "util/logging.h"
#include "util/random.h"

namespace angelptm {
namespace {

constexpr int kLayers = 4;
constexpr int kSteps = 60;
constexpr int kExtraReaders = 2;

struct RuleResult {
  std::string rule;
  size_t elems = 0;
  double wall_ms = 0.0;
  uint64_t reader_fetches = 0;
  core::LockFreeUpdater::Stats stats;
  util::Histogram fetch_us;
  util::Histogram offload_us;
};

uint64_t NowUs() {
  return uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count());
}

RuleResult RunRule(const std::string& rule, size_t elems) {
  mem::HierarchicalMemoryOptions memory_options;
  memory_options.page_bytes = 64 * 1024;
  memory_options.gpu_capacity_bytes = 8ull << 20;
  memory_options.cpu_capacity_bytes = 256ull << 20;
  mem::HierarchicalMemory memory(memory_options);
  core::Allocator allocator(&memory);

  core::LockFreeUpdater::Options options;
  options.optimizer.rule = rule;
  options.optimizer.learning_rate = 1e-3;
  core::LockFreeUpdater updater(&allocator, options);

  util::Rng rng(42);
  std::vector<float> init(elems);
  for (float& x : init) x = float(rng.NextGaussian());
  for (int l = 0; l < kLayers; ++l) {
    ANGEL_CHECK_OK(updater.AddLayer(init).status());
  }
  std::vector<float> grads(elems);
  for (float& g : grads) g = float(rng.NextGaussian() * 0.01);

  RuleResult result;
  result.rule = rule;
  result.elems = elems;

  updater.Start();
  // Extra readers: lock-free FetchParams churn concurrent with the
  // buffering thread's seqlock publishes and the compute thread below.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reader_fetches{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < kExtraReaders; ++t) {
    readers.emplace_back([&stop, &reader_fetches, &updater] {
      std::vector<float> fetched;
      int layer = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        ANGEL_CHECK_OK(updater.FetchParams(layer, &fetched));
        layer = (layer + 1) % kLayers;
        reader_fetches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<float> fetched;
  for (int step = 0; step < kSteps; ++step) {
    for (int l = 0; l < kLayers; ++l) {
      uint64_t t0 = NowUs();
      ANGEL_CHECK_OK(updater.OffloadGrads(l, grads));
      result.offload_us.Record(NowUs() - t0);
      t0 = NowUs();
      ANGEL_CHECK_OK(updater.FetchParams(l, &fetched));
      result.fetch_us.Record(NowUs() - t0);
    }
  }
  ANGEL_CHECK_OK(updater.DrainUpdates());
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - wall_start)
                       .count();
  stop.store(true, std::memory_order_relaxed);
  for (auto& reader : readers) reader.join();
  updater.Stop();
  result.reader_fetches = reader_fetches.load();
  result.stats = updater.Snapshot();
  return result;
}

}  // namespace
}  // namespace angelptm

int main(int argc, char** argv) {
  using namespace angelptm;
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_optimizer.json";
  const size_t elems = argc > 2 ? size_t(std::atoll(argv[2])) : 65536;

  bench::PrintHeader(
      "Optimizer-rule contention microbenchmark",
      "SS4.3 Algorithm 2 (lock-free updating) x DESIGN.md SS13 (pluggable "
      "rules, seqlock parameter mirror)");

  std::vector<RuleResult> results;
  for (const std::string& rule : core::RegisteredOptimizers()) {
    std::cout << "rule " << rule << ": " << kLayers << " layers x " << elems
              << " elems, " << kSteps << " steps, " << kExtraReaders
              << " extra readers..." << std::flush;
    results.push_back(RunRule(rule, elems));
    const RuleResult& r = results.back();
    std::cout << " " << r.wall_ms << " ms, fetch p95 "
              << r.fetch_us.Percentile(0.95) << " us, offload p95 "
              << r.offload_us.Percentile(0.95) << " us, "
              << r.stats.updates_applied << " updates\n";
  }

  std::ofstream out(out_path);
  out << "{\n  \"bench\": \"optimizer_bench\",\n"
      << "  \"layers\": " << kLayers << ",\n"
      << "  \"elems_per_layer\": " << elems << ",\n"
      << "  \"steps\": " << kSteps << ",\n"
      << "  \"extra_readers\": " << kExtraReaders << ",\n"
      << "  \"host_cpus\": " << ::sysconf(_SC_NPROCESSORS_ONLN) << ",\n"
      << "  \"rules\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const RuleResult& r = results[i];
    out << "    {\"rule\": \"" << r.rule << "\", \"wall_ms\": " << r.wall_ms
        << ", \"updates_applied\": " << r.stats.updates_applied
        << ", \"grad_batches_offloaded\": " << r.stats.grad_batches_offloaded
        << ", \"grad_batches_applied\": " << r.stats.grad_batches_applied
        << ", \"reader_fetches\": " << r.reader_fetches
        << ", \"backpressure_waits\": " << r.stats.backpressure_waits
        << ", \"fetch_us\": " << bench::HistogramJson(r.fetch_us)
        << ", \"offload_us\": " << bench::HistogramJson(r.offload_us)
        << ", \"staleness\": " << bench::HistogramJson(r.stats.staleness)
        << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "\nwrote " << out_path << "\n";
  return 0;
}
