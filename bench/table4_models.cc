// Regenerates the paper's Table 4: the evaluation model zoo, with parameter
// counts recomputed from the configurations (and deltas flagged where the
// paper's table is internally inconsistent — see EXPERIMENTS.md).

#include <iostream>

#include "bench/bench_util.h"
#include "model/footprint.h"
#include "model/model_zoo.h"
#include "util/table_printer.h"
#include "util/units.h"

int main() {
  using namespace angelptm;
  bench::PrintHeader("Table 4: models for evaluation", "Table 4");

  util::TablePrinter table({"Model", "#Layer", "#Head", "d_Model", "d_FFN",
                            "#Expert", "Params (computed)",
                            "Model states"});
  for (const auto& config : model::PaperModelZoo()) {
    const uint64_t params = model::TotalParamCount(config);
    table.AddRow({config.name, std::to_string(config.num_layers),
                  std::to_string(config.num_heads),
                  std::to_string(config.d_model),
                  std::to_string(config.d_ffn),
                  config.num_experts ? std::to_string(config.num_experts)
                                     : "-",
                  util::FormatParamCount(params),
                  util::FormatBytes(model::TotalModelStateBytes(config))});
  }
  table.Print(std::cout, "Evaluation models (paper configs)");
  std::cout << "\nModel states = 16 bytes/param (fp16 param+grad pair plus\n"
               "fp32 master+momentum+variance) under mixed-precision Adam.\n"
               "T5 #Layer counts encoder/decoder pairs; T5-MoE #Layer counts\n"
               "MoE blocks. GPT3-28B computes below its name (the paper's\n"
               "26-layer config); GPT3-30B uses d=6144 (see EXPERIMENTS.md).\n";
  return 0;
}
