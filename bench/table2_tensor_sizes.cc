// Regenerates the paper's Table 2: the distribution of model-state tensor
// sizes within one layer of GPT3 (d_m=12288, d_ffn=49152) — the spread that
// motivates page-based memory organization (§3.2).

#include <iostream>
#include <map>

#include "bench/bench_util.h"
#include "model/footprint.h"
#include "util/table_printer.h"
#include "util/units.h"

int main() {
  using namespace angelptm;
  bench::PrintHeader("Table 2: tensor-size distribution within one GPT3 layer",
                     "Table 2 (Section 3.2)");

  const auto tensors = model::EnumerateStateTensors(12288, 49152);
  std::map<uint64_t, int, std::greater<uint64_t>> histogram;
  for (const auto& t : tensors) histogram[t.bytes] += t.count;

  util::TablePrinter table({"Tensor Size (MB)", "Count", "What it is"});
  for (const auto& [bytes, count] : histogram) {
    std::string what;
    for (const auto& t : tensors) {
      if (t.bytes == bytes) {
        what = t.name;
        break;
      }
    }
    table.AddRow({util::FormatDouble(double(bytes) / util::kMiB, 7),
                  std::to_string(count), what});
  }
  table.Print(std::cout, "Model-state tensors of one layer (this repo)");

  std::cout
      << "\nPaper's Table 2 rows: 3072/2304/1152/768/576/288 MB and\n"
      << "0.375/0.046875/0.0234375 MB with counts 4/6/4/20/12/8/4/6/4.\n"
      << "Our enumeration reproduces every *model-state* size class\n"
      << "(2304x6, 1152x4, 576x12, 288x8, 0.046875x6, 0.0234375x4).\n"
      << "The paper's 3072/768/0.375 MB rows are not derivable from the\n"
      << "stated dimensions as model states; 768 MB matches the fp16\n"
      << "attention-score activations (96 heads x 2048^2 x 2B), suggesting\n"
      << "those rows count activation tensors. See EXPERIMENTS.md.\n\n"
      << "Spread: largest/smallest = "
      << histogram.begin()->first / histogram.rbegin()->first
      << "x -- the motivation for fixed-size 4 MiB pages with at most two\n"
         "tensors per page (Section 4.1).\n";
  return 0;
}
