// Google-benchmark micro-benchmarks of the page-based memory subsystem:
// allocation/release throughput vs page size, page movement bandwidth,
// tensor staging through the copy engine, and fp16 conversion cost.

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <string>

#include "core/allocator.h"
#include "mem/copy_engine.h"
#include "mem/hierarchical_memory.h"
#include "util/half.h"
#include "util/random.h"

namespace {

using namespace angelptm;

mem::HierarchicalMemoryOptions Options(size_t page_bytes) {
  mem::HierarchicalMemoryOptions options;
  options.page_bytes = page_bytes;
  options.gpu_capacity_bytes = 256ull << 20;
  options.cpu_capacity_bytes = 512ull << 20;
  return options;
}

/// Tensor allocate+release churn at the given page size (arg 0 = KiB).
void BM_AllocatorChurn(benchmark::State& state) {
  mem::HierarchicalMemory memory(Options(size_t(state.range(0)) * 1024));
  core::Allocator allocator(&memory);
  const size_t elements = 256 * 1024;  // 1 MiB fp32 tensors.
  for (auto _ : state) {
    auto tensor = allocator.Allocate({elements}, core::DType::kFp32,
                                     mem::DeviceKind::kCpu);
    benchmark::DoNotOptimize(tensor);
    if (tensor.ok()) {
      benchmark::DoNotOptimize((*tensor)->pages().front()->data_ptr());
      (void)allocator.Release(*tensor);
    }
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * elements * 4);
}
BENCHMARK(BM_AllocatorChurn)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

/// Synchronous page movement CPU <-> "GPU" tier (memcpy bandwidth at page
/// granularity; arg 0 = page KiB).
void BM_PageMove(benchmark::State& state) {
  mem::HierarchicalMemory memory(Options(size_t(state.range(0)) * 1024));
  auto page = memory.CreatePage(mem::DeviceKind::kCpu);
  if (!page.ok()) {
    state.SkipWithError("page creation failed");
    return;
  }
  bool to_gpu = true;
  for (auto _ : state) {
    (void)memory.MovePageSync(*page, to_gpu ? mem::DeviceKind::kGpu
                                            : mem::DeviceKind::kCpu);
    to_gpu = !to_gpu;
  }
  state.SetBytesProcessed(int64_t(state.iterations()) *
                          int64_t(memory.page_bytes()));
}
BENCHMARK(BM_PageMove)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);

/// Asynchronous staging of a multi-page tensor through the copy engine.
void BM_CopyEngineStaging(benchmark::State& state) {
  mem::HierarchicalMemory memory(Options(1 << 20));
  core::Allocator allocator(&memory);
  mem::CopyEngine engine(&memory, 2);
  const size_t elements = size_t(state.range(0)) * 1024 * 1024 / 4;
  auto tensor =
      allocator.Allocate({elements}, core::DType::kFp32,
                         mem::DeviceKind::kCpu);
  if (!tensor.ok()) {
    state.SkipWithError("allocation failed");
    return;
  }
  bool to_gpu = true;
  for (auto _ : state) {
    std::vector<std::future<util::Status>> futures;
    for (mem::Page* page : (*tensor)->pages()) {
      futures.push_back(engine.MoveAsync(
          page, to_gpu ? mem::DeviceKind::kGpu : mem::DeviceKind::kCpu));
    }
    for (auto& f : futures) (void)f.get();
    to_gpu = !to_gpu;
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * elements * 4);
}
BENCHMARK(BM_CopyEngineStaging)->Arg(4)->Arg(16)->Arg(64);

/// SSD tier round trip with real file I/O (arg 0 = MiB tensor).
void BM_SsdRoundTrip(benchmark::State& state) {
  mem::HierarchicalMemoryOptions options = Options(1 << 20);
  options.ssd_capacity_bytes = 512ull << 20;
  options.ssd_path =
      "/tmp/angelptm_bench_ssd_" + std::to_string(::getpid()) + ".bin";
  mem::HierarchicalMemory memory(options);
  core::Allocator allocator(&memory);
  const size_t elements = size_t(state.range(0)) * 1024 * 1024 / 4;
  auto tensor = allocator.Allocate({elements}, core::DType::kFp32,
                                   mem::DeviceKind::kCpu);
  if (!tensor.ok()) {
    state.SkipWithError("allocation failed");
    return;
  }
  for (auto _ : state) {
    (void)allocator.Move(*tensor, mem::DeviceKind::kSsd);
    (void)allocator.Move(*tensor, mem::DeviceKind::kCpu);
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * elements * 8);
}
BENCHMARK(BM_SsdRoundTrip)->Arg(1)->Arg(8)->Arg(32);

/// fp32 <-> fp16 conversion (the buffering thread's cast work).
void BM_HalfConversion(benchmark::State& state) {
  util::Rng rng(1);
  std::vector<float> values(size_t(state.range(0)));
  rng.FillGaussian(&values, 1.0);
  std::vector<uint16_t> bits(values.size());
  for (auto _ : state) {
    for (size_t i = 0; i < values.size(); ++i) {
      bits[i] = util::FloatToHalfBits(values[i]);
    }
    benchmark::DoNotOptimize(bits.data());
    for (size_t i = 0; i < values.size(); ++i) {
      values[i] = util::HalfBitsToFloat(bits[i]);
    }
    benchmark::DoNotOptimize(values.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(values.size()));
}
BENCHMARK(BM_HalfConversion)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

}  // namespace

BENCHMARK_MAIN();
