// Ablation of the unified scheduler's design choices (Section 4.2), on the
// simulated GPT3-30B / 8-GPU workload:
//   (a) phase 2 (advancing all_gather triggers) on vs off,
//   (b) the dynamic GPU cache of fp32 optimizer states on vs off,
//   (c) planning page size sweep (the Section 4.1 trade-off).

#include <chrono>
#include <iostream>

#include "bench/bench_util.h"
#include "core/unified_scheduler.h"
#include "model/footprint.h"
#include "model/model_zoo.h"
#include "sim/cost_model.h"
#include "sim/planner.h"
#include "util/table_printer.h"
#include "util/units.h"

namespace {

using namespace angelptm;

sim::PlanRequest BaseRequest() {
  sim::PlanRequest request;
  request.model = *model::FindModel("GPT3-30B");
  request.model.seq_len = 1024;
  request.hw = sim::PaperServer();
  request.num_gpus = 8;
  request.micro_batch = 1;
  return request;
}

/// Re-simulates a plan with phase 2 stripped: every gather falls back to
/// trigger = its serving step (no communication/computation overlap).
sim::IterationResult SimulateWithoutPhase2(sim::Plan plan) {
  for (core::Task& task : plan.spec.tasks) {
    if (task.op == core::TaskOp::kAllGather) task.trigger_id = task.step;
  }
  return sim::SimulateIteration(plan.spec);
}

void Phase2AndCacheAblation() {
  const sim::PlanRequest request = BaseRequest();
  auto plan = sim::PlanAngelPtm(request);
  ANGEL_CHECK_OK(plan.status());

  util::TablePrinter table({"Configuration", "iteration (s)", "samples/s",
                            "GPU idle"});
  const sim::IterationResult full = sim::SimulateIteration(plan->spec);
  auto add = [&](const char* label, const sim::IterationResult& r) {
    table.AddRow({label, util::FormatDouble(r.iteration_seconds, 3),
                  util::FormatDouble(double(request.num_gpus) *
                                         request.micro_batch /
                                         r.iteration_seconds,
                                     2),
                  util::FormatDouble(100.0 * r.GpuIdleFraction(), 1) + "%"});
  };
  add("Full Angel-PTM schedule", full);
  add("No phase 2 (gathers not advanced)", SimulateWithoutPhase2(*plan));

  // No dynamic cache: all optimizer work on the CPU, grads all offloaded.
  sim::Plan no_cache = *plan;
  for (sim::OptimizerWork& work : no_cache.spec.opt_work) {
    const uint64_t total =
        work.cpu_update_elements /
            uint64_t(std::max(1, request.num_gpus > 8 ? 8 : request.num_gpus)) +
        work.gpu_update_elements;
    work.cpu_update_elements =
        total * uint64_t(std::min(request.num_gpus, 8));
    work.gpu_update_elements = 0;
    work.grad_offload_bytes = 2 * total;
  }
  add("No GPU optimizer cache", sim::SimulateIteration(no_cache.spec));
  table.Print(std::cout, "GPT3-30B, 8 GPUs, micro-batch 1 (fine-tuning regime, Sec. 3.1)");
  std::cout << "\n";
}

void PageSizeSweep() {
  // Scheduler behaviour vs page granularity on a fixed step list: smaller
  // pages pack/evict at finer grain (less over-fetch) but multiply task
  // counts; 4 MiB is the paper's sweet spot against PCIe utilization.
  util::TablePrinter table({"Page size", "tasks", "prefetched pages",
                            "peak GPU", "schedule build"});
  const auto config = *model::FindModel("GPT3-13B");
  const uint64_t shard_layer =
      2 * model::LayerParamCount(config) / 8;  // fp16 shard per rank.
  for (const uint64_t page_mib : {1, 4, 16, 64, 256}) {
    const uint64_t page_bytes = page_mib * util::kMiB;
    core::ScheduleInput input;
    input.world_size = 8;
    input.gpu_memory_budget = 38ull * util::kGiB;
    uint64_t next_page = 0;
    std::vector<std::vector<core::PageRef>> pages(config.num_layers);
    for (int l = 0; l < config.num_layers; ++l) {
      uint64_t remaining = shard_layer;
      while (remaining > 0) {
        const uint64_t bytes = std::min(remaining, page_bytes);
        pages[l].push_back({next_page++, bytes});
        remaining -= bytes;
      }
    }
    for (int pass = 0; pass < 2; ++pass) {
      for (int i = 0; i < config.num_layers; ++i) {
        const int l = pass == 0 ? i : config.num_layers - 1 - i;
        core::SchedStep step;
        step.param_pages = pages[l];
        step.workspace_bytes = 2ull * util::kGiB;
        input.steps.push_back(step);
      }
    }
    const auto start = std::chrono::steady_clock::now();
    auto schedule = core::BuildSchedule(input);
    const double build_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    if (!schedule.ok()) {
      table.AddRow({std::to_string(page_mib) + " MiB", "-", "-",
                    schedule.status().ToString(), "-"});
      continue;
    }
    table.AddRow({std::to_string(page_mib) + " MiB",
                  std::to_string(schedule->tasks.size()),
                  std::to_string(schedule->pages_prefetched_at_start),
                  util::FormatBytes(schedule->peak_gpu_bytes),
                  util::FormatDuration(build_seconds)});
  }
  table.Print(std::cout, "Page-size sweep (GPT3-13B shard schedule)");
}

}  // namespace

int main() {
  bench::PrintHeader("Ablation: unified scheduler design choices",
                     "Sections 4.1-4.2 design analysis");
  Phase2AndCacheAblation();
  PageSizeSweep();
  return 0;
}
