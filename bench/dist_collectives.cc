// Measured vs modeled latency of the socket collectives (DESIGN.md §14.5):
// runs real dist::ProcessGroup worlds (rank threads over Unix-domain
// sockets) across payload sizes and world sizes and prints the measured
// per-collective time next to sim::CollectiveModel's prediction for the
// LocalhostLoopback fabric. The model is calibrated as an upper band —
// `ok` means measured <= predicted (an unloaded host should always pass;
// a loaded CI box may exceed it, which the column makes visible rather
// than failing).

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "dist/process_group.h"
#include "sim/collective_model.h"
#include "util/table_printer.h"

namespace {

using angelptm::dist::ProcessGroup;
using angelptm::dist::ProcessGroupOptions;

struct Measured {
  double allgather_s = 0.0;
  double reducescatter_s = 0.0;
};

Measured MeasureWorld(int world, size_t shard_elems, int iters) {
  const std::string path =
      "/tmp/aptm-bench-" + std::to_string(::getpid()) + ".sock";
  Measured out;
  std::vector<std::thread> threads;
  for (int r = 0; r < world; ++r) {
    threads.emplace_back([&, r] {
      ProcessGroupOptions options;
      options.rank = r;
      options.world_size = world;
      options.rendezvous = path;
      auto group = ProcessGroup::Connect(options);
      if (!group.ok()) return;
      std::vector<float> shard(shard_elems, float(r));
      std::vector<float> full(shard_elems * size_t(world));
      // Warm-up round, then timed rounds in lockstep.
      (void)(*group)->AllGather(shard.data(), shard_elems, full.data());
      auto start = std::chrono::steady_clock::now();
      for (int i = 0; i < iters; ++i) {
        (void)(*group)->AllGather(shard.data(), shard_elems, full.data());
      }
      auto mid = std::chrono::steady_clock::now();
      for (int i = 0; i < iters; ++i) {
        (void)(*group)->ReduceScatter(full.data(), full.size(),
                                      shard.data());
      }
      auto end = std::chrono::steady_clock::now();
      if (r == 0) {
        out.allgather_s =
            std::chrono::duration<double>(mid - start).count() / iters;
        out.reducescatter_s =
            std::chrono::duration<double>(end - mid).count() / iters;
      }
    });
  }
  for (auto& t : threads) t.join();
  return out;
}

std::string Us(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", seconds * 1e6);
  return buf;
}

}  // namespace

int main() {
  std::printf("Socket collectives: measured vs sim::CollectiveModel "
              "(hub topology, LocalhostLoopback fabric)\n\n");
  angelptm::sim::CollectiveModel model(angelptm::sim::LocalhostLoopback());

  angelptm::util::TablePrinter table(
      {"world", "shard KiB", "allgather us", "model us", "ok",
       "reduce-scatter us", "model us", "ok"});
  for (const int world : {2, 4, 8}) {
    for (const size_t shard_elems : {size_t(1024), size_t(16 * 1024),
                                     size_t(256 * 1024)}) {
      const Measured m = MeasureWorld(world, shard_elems, 30);
      const uint64_t shard_bytes = shard_elems * sizeof(float);
      const double ag_model = model.AllGatherSeconds(world, shard_bytes);
      const double rs_model =
          model.ReduceScatterSeconds(world, shard_bytes * uint64_t(world));
      table.AddRow({std::to_string(world),
                    std::to_string(shard_bytes / 1024),
                    Us(m.allgather_s), Us(ag_model),
                    m.allgather_s <= ag_model ? "yes" : "NO",
                    Us(m.reducescatter_s), Us(rs_model),
                    m.reducescatter_s <= rs_model ? "yes" : "NO"});
    }
  }
  table.Print(std::cout, "hub collectives on this host");
  return 0;
}
