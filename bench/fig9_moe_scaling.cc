// Regenerates the paper's Figure 9: scalability of Angel-PTM training
// T5-MoE with expert parallelism, experts-per-GPU fixed at 9 so the model
// grows with the cluster (weak scaling; 256 GPUs = the 2304-expert 1.2T
// model). The paper reports near-linear scaling, slightly below GPT3-175B's
// because the MoE all-to-all grows with the node count.

#include <iostream>

#include "bench/bench_util.h"
#include "dist/expert_parallel.h"
#include "model/model_zoo.h"
#include "sim/planner.h"
#include "util/table_printer.h"
#include "util/units.h"

int main() {
  using namespace angelptm;
  bench::PrintHeader("Figure 9: T5-MoE weak scaling with expert parallelism",
                     "Figure 9 (Section 6.4)");

  util::TablePrinter table({"GPUs", "Experts/layer", "Model params",
                            "samples/s", "per-GPU", "efficiency vs 64"});
  double base_per_gpu = 0;
  for (const int gpus : {64, 128, 256, 512, 1024}) {
    dist::ExpertParallelRequest request;
    request.model = *model::FindModel("T5-MoE-1.2T");
    request.hw = sim::PaperServer();
    request.num_gpus = gpus;
    request.experts_per_gpu = 9;
    request.micro_batch = 8;
    auto plan = dist::PlanExpertParallel(request);
    if (!plan.ok()) {
      table.AddRow({std::to_string(gpus), "-", "-",
                    plan.status().ToString(), "-", "-"});
      continue;
    }
    const sim::IterationResult result = sim::SimulateIteration(plan->spec);
    const double throughput =
        double(gpus) * request.micro_batch / result.iteration_seconds;
    const double per_gpu = throughput / gpus;
    if (base_per_gpu == 0) base_per_gpu = per_gpu;
    table.AddRow({std::to_string(gpus),
                  std::to_string(request.experts_per_gpu * gpus),
                  util::FormatParamCount(
                      dist::ExpertParallelModelParams(request)),
                  util::FormatDouble(throughput, 1),
                  util::FormatDouble(per_gpu, 3),
                  util::FormatDouble(100.0 * per_gpu / base_per_gpu, 1) +
                      "%"});
  }
  table.Print(std::cout,
              "Angel-PTM training T5-MoE (9 experts/GPU/layer, seq 512)");
  std::cout
      << "\nShape vs paper: near-linear weak scaling; efficiency declines\n"
      << "a few percent at 1024 GPUs because the per-layer token all-to-all\n"
      << "becomes latency-bound across more peers — the degradation the\n"
      << "paper attributes to 'more input data fed into the all-to-all'.\n";
  return 0;
}
