// Ablation of the recomputation policy (§4.2): sweep the activation-memory
// budget for GPT3-13B on one GPU (micro-batch 8) and report the resident
// activation bytes vs the extra backward time the recompute choice costs.
// The paper recomputes everything; this shows the whole trade curve that
// decision sits on.

#include <iostream>

#include "bench/bench_util.h"
#include "model/footprint.h"
#include "model/model_zoo.h"
#include "sim/cost_model.h"
#include "train/recompute_policy.h"
#include "util/table_printer.h"
#include "util/units.h"

int main() {
  using namespace angelptm;
  bench::PrintHeader("Ablation: activation recompute policy",
                     "Section 4.2 (recomputation) / Section 7 cost-based "
                     "eviction");

  auto config = model::FindModel("GPT3-13B");
  ANGEL_CHECK_OK(config.status());
  config->seq_len = 1024;
  const int micro_batch = 8;

  model::TrainingConfig training;
  training.micro_batch = micro_batch;
  training.recompute_activations = true;
  const sim::CostModel cost(sim::PaperServer(), *config, training);

  // Per-layer activation geometry (Table 1 closed forms) and the forward
  // re-execution cost.
  const uint64_t b = micro_batch, s = config->seq_len, dm = config->d_model,
                 dffn = config->d_ffn;
  std::vector<train::LayerActivationCost> layers(config->num_layers);
  for (auto& layer : layers) {
    layer.full_stash_bytes = 40 * b * s * dm + 8 * b * s * dffn;
    layer.boundary_bytes = 2 * b * s * dm;
    layer.recompute_seconds = cost.LayerForwardSeconds(micro_batch);
  }
  const uint64_t full_bytes =
      uint64_t(config->num_layers) * layers[0].full_stash_bytes;

  util::TablePrinter table({"Activation budget", "resident",
                            "layers recomputed", "extra backward time",
                            "vs full-stash memory"});
  for (const double fraction : {1.0, 0.5, 0.25, 0.1, 0.05}) {
    const uint64_t budget = uint64_t(fraction * double(full_bytes));
    auto plan = train::PlanRecompute(layers, budget);
    if (!plan.ok()) {
      table.AddRow({util::FormatBytes(budget), plan.status().ToString(),
                    "-", "-", "-"});
      continue;
    }
    table.AddRow({util::FormatBytes(budget),
                  util::FormatBytes(plan->resident_bytes),
                  std::to_string(plan->layers_recomputed) + "/" +
                      std::to_string(config->num_layers),
                  util::FormatDuration(plan->recompute_seconds),
                  util::FormatDouble(100.0 * double(plan->resident_bytes) /
                                         double(full_bytes),
                                     1) +
                      "%"});
  }
  table.Print(std::cout,
              "GPT3-13B, micro-batch 8, seq 1024 (one GPU's activations)");
  std::cout << "\nRecomputing every layer (the paper's §4.2 configuration)\n"
               "keeps ~5% of the activation bytes resident for ~33% more\n"
               "forward FLOPs in backward — the trade that frees GPU memory\n"
               "for model states and bigger batches.\n";
  return 0;
}
