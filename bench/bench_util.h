#ifndef ANGELPTM_BENCH_BENCH_UTIL_H_
#define ANGELPTM_BENCH_BENCH_UTIL_H_

#include <iostream>
#include <string>

#include "sim/hardware.h"

namespace angelptm::bench {

/// Prints the standard bench header: what is being reproduced and on which
/// (simulated) hardware — the Table 3 environment.
inline void PrintHeader(const std::string& title, const std::string& paper_ref,
                        const sim::HardwareConfig& hw = sim::PaperServer()) {
  std::cout << "==============================================================="
               "=\n"
            << title << "\n"
            << "Reproduces: " << paper_ref << "\n"
            << "Simulated environment (paper Table 3): "
            << sim::DescribeHardware(hw) << "\n"
            << "==============================================================="
               "=\n\n";
}

}  // namespace angelptm::bench

#endif  // ANGELPTM_BENCH_BENCH_UTIL_H_
