#ifndef ANGELPTM_BENCH_BENCH_UTIL_H_
#define ANGELPTM_BENCH_BENCH_UTIL_H_

#include <iostream>
#include <sstream>
#include <string>

#include "obs/metrics.h"
#include "sim/hardware.h"
#include "train/trainer.h"
#include "util/histogram.h"

namespace angelptm::bench {

/// Prints the standard bench header: what is being reproduced and on which
/// (simulated) hardware — the Table 3 environment.
inline void PrintHeader(const std::string& title, const std::string& paper_ref,
                        const sim::HardwareConfig& hw = sim::PaperServer()) {
  std::cout << "==============================================================="
               "=\n"
            << title << "\n"
            << "Reproduces: " << paper_ref << "\n"
            << "Simulated environment (paper Table 3): "
            << sim::DescribeHardware(hw) << "\n"
            << "==============================================================="
               "=\n\n";
}

/// JSON for the process-wide metrics registry, so every BENCH_*.json records
/// the counters/gauges/histograms accumulated by the run that produced it.
inline std::string MetricsJson() {
  return obs::Registry::Instance().Snapshot().ToJson();
}

inline std::string HistogramJson(const util::Histogram& h) {
  std::ostringstream out;
  out << "{\"count\":" << h.count() << ",\"mean\":" << h.Mean()
      << ",\"p50\":" << h.Percentile(0.5) << ",\"p95\":" << h.Percentile(0.95)
      << ",\"max\":" << h.Max() << "}";
  return out.str();
}

/// JSON for a TrainReport's nested telemetry snapshot: phase timing
/// histograms, updater counters + staleness, per-tier memory usage, and the
/// SSD / copy-engine stats when those subsystems were active.
inline std::string TelemetryJson(const train::TelemetrySnapshot& t) {
  std::ostringstream out;
  out << "{\"fwd_us\":" << t.fwd_us.ToJson()
      << ",\"bwd_us\":" << t.bwd_us.ToJson()
      << ",\"opt_us\":" << t.opt_us.ToJson()
      << ",\"max_pending_batches\":" << t.max_pending_batches
      << ",\"updater\":{\"updates_applied\":" << t.updater.updates_applied
      << ",\"grad_batches_offloaded\":" << t.updater.grad_batches_offloaded
      << ",\"grad_batches_applied\":" << t.updater.grad_batches_applied
      << ",\"pending_grad_batches\":" << t.updater.pending_grad_batches
      << ",\"staleness\":" << HistogramJson(t.updater.staleness) << "}";
  out << ",\"memory\":{\"live_pages\":" << t.memory.live_pages
      << ",\"fragmented_bytes\":" << t.memory.fragmented_bytes;
  static constexpr const char* kTierNames[] = {"gpu", "cpu", "ssd"};
  for (const mem::DeviceKind kind :
       {mem::DeviceKind::kGpu, mem::DeviceKind::kCpu, mem::DeviceKind::kSsd}) {
    const mem::TierUsage& tier = t.memory.tier(kind);
    out << ",\"" << kTierNames[static_cast<int>(kind)]
        << "\":{\"used_bytes\":" << tier.used_bytes
        << ",\"capacity_bytes\":" << tier.capacity_bytes
        << ",\"pages\":" << tier.pages << "}";
  }
  out << "}";
  if (t.has_ssd) {
    out << ",\"ssd\":{\"bytes_read\":" << t.ssd.bytes_read
        << ",\"bytes_written\":" << t.ssd.bytes_written
        << ",\"io_retries\":" << t.ssd.io_retries << "}";
  }
  if (t.has_copy_engine) {
    out << ",\"copy\":{\"moves_completed\":" << t.copy.moves_completed
        << ",\"moves_failed\":" << t.copy.moves_failed
        << ",\"queue_depth\":" << t.copy.queue_depth << "}";
  }
  out << "}";
  return out.str();
}

}  // namespace angelptm::bench

#endif  // ANGELPTM_BENCH_BENCH_UTIL_H_
