// Ablation of ZeRO optimization stages (§2.3 / §7 related work), measured
// on real multi-rank training: stage 1 shards only the optimizer states
// (full parameter replica per rank), stage 3 also shards the parameters —
// trading an all-gather per layer per step for a 1/N parameter footprint.
// Angel-PTM builds on stage 3 plus hierarchical memory.

#include <chrono>
#include <iostream>

#include "bench/bench_util.h"
#include "dist/sharded_data_parallel.h"
#include "train/mlp.h"
#include "util/table_printer.h"
#include "util/units.h"

int main() {
  using namespace angelptm;
  bench::PrintHeader("Ablation: ZeRO stage 1 vs stage 3 (real training)",
                     "Section 2.3 (Zero Redundancy Optimization)");

  const train::MlpModel model({{64, 512, 512, 512, 8}});
  train::SyntheticRegression dataset(64, 64, 8, 99);

  util::TablePrinter table({"Stage", "state bytes (all ranks)",
                            "collectives", "steps/s", "final loss"});
  for (const dist::ZeroStage stage :
       {dist::ZeroStage::kStage1, dist::ZeroStage::kStage3}) {
    mem::HierarchicalMemoryOptions memory_options;
    memory_options.page_bytes = 64 * 1024;
    memory_options.gpu_capacity_bytes = 4ull << 20;
    memory_options.cpu_capacity_bytes = 256ull << 20;
    mem::HierarchicalMemory memory(memory_options);
    core::Allocator allocator(&memory);

    dist::ShardedDpOptions options;
    options.stage = stage;
    options.world_size = 4;
    options.batch_per_rank = 8;
    options.adam.learning_rate = 3e-3;
    options.seed = 11;
    dist::ShardedDataParallel dp(&allocator, &model, options);
    ANGEL_CHECK_OK(dp.Init());
    const uint64_t state_bytes = allocator.allocated_bytes();

    const auto start = std::chrono::steady_clock::now();
    auto report = dp.Train(dataset, 60);
    ANGEL_CHECK_OK(report.status());
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    table.AddRow({stage == dist::ZeroStage::kStage1 ? "1 (optimizer only)"
                                                    : "3 (params too)",
                  util::FormatBytes(state_bytes),
                  std::to_string(report->collectives),
                  util::FormatDouble(60.0 / seconds, 1),
                  util::FormatDouble(report->final_train_loss, 4)});
  }
  table.Print(std::cout, "4 rank threads, MLP 64-512-512-512-8");
  std::cout << "\nSame final loss (same math); stage 3 holds ~1/4 of stage\n"
               "1's parameter bytes at the cost of per-layer all-gathers —\n"
               "the memory/communication trade the paper's design builds on\n"
               "before adding hierarchical memory underneath it.\n";
  return 0;
}
