// Times every hot compute kernel single-threaded vs on the compute pool at
// transformer-realistic shapes and writes BENCH_kernels.json, so the
// kernel-performance trajectory is tracked from PR to PR. The headline
// number is the 1024x1024x1024 GEMM speedup (target: >=4x on a >=8-core
// host); the naive reference kernels are timed too, so the cache-blocking
// gain is visible separately from the parallelism gain.
//
// Usage: kernel_bench [output.json] [gemm_size]
//   output.json defaults to BENCH_kernels.json in the working directory;
//   gemm_size defaults to 1024 (pass e.g. 256 for a quick smoke run).

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/adam.h"
#include "train/kernels.h"
#include "util/parallel_for.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace angelptm {
namespace {

double TimeMs(const std::function<void()>& fn, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto end = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(end - start).count());
  }
  return best;
}

struct KernelResult {
  std::string name;
  std::string shape;
  double flops = 0.0;  // 0 when GFLOP/s is not meaningful (memory-bound).
  double reference_ms = -1.0;  // Naive kernel, when one exists.
  double single_ms = 0.0;      // New kernel, 1 worker.
  double parallel_ms = 0.0;    // New kernel, full compute pool.
};

class Harness {
 public:
  Harness() : serial_pool_(1) {}

  /// Times `fn` once pinned to one worker and once on the default pool.
  /// `reference` (optional) is the retained naive kernel.
  void Run(KernelResult result, const std::function<void()>& fn,
           const std::function<void()>& reference = nullptr) {
    const int reps = 3;
    if (reference) {
      util::SetComputePoolOverride(&serial_pool_);
      result.reference_ms = TimeMs(reference, reps);
    }
    util::SetComputePoolOverride(&serial_pool_);
    result.single_ms = TimeMs(fn, reps);
    util::SetComputePoolOverride(nullptr);
    result.parallel_ms = TimeMs(fn, reps);
    results_.push_back(result);

    const KernelResult& r = results_.back();
    std::cout << std::left << std::setw(22) << r.name << std::setw(20)
              << r.shape;
    if (r.reference_ms >= 0.0) {
      std::cout << " naive " << std::setw(9) << FmtMs(r.reference_ms);
    } else {
      std::cout << "       " << std::setw(9) << "";
    }
    std::cout << " 1-thr " << std::setw(9) << FmtMs(r.single_ms) << " pool "
              << std::setw(9) << FmtMs(r.parallel_ms) << " speedup "
              << std::fixed << std::setprecision(2)
              << r.single_ms / r.parallel_ms << "x";
    if (r.flops > 0.0) {
      std::cout << "  (" << std::setprecision(1)
                << r.flops / r.parallel_ms / 1e6 << " GFLOP/s)";
    }
    std::cout << "\n";
  }

  const std::vector<KernelResult>& results() const { return results_; }

 private:
  static std::string FmtMs(double ms) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2fms", ms);
    return buf;
  }

  util::ThreadPool serial_pool_;
  std::vector<KernelResult> results_;
};

bool WriteJson(const std::string& path, const Harness& harness,
               size_t gemm_size) {
  std::ofstream out(path);
  out << std::setprecision(6) << std::fixed;
  out << "{\n";
  out << "  \"bench\": \"kernel_bench\",\n";
  out << "  \"gemm_size\": " << gemm_size << ",\n";
  out << "  \"compute_threads\": " << util::ComputePoolThreads() << ",\n";
  out << "  \"kernels\": [\n";
  const auto& results = harness.results();
  for (size_t i = 0; i < results.size(); ++i) {
    const KernelResult& r = results[i];
    out << "    {\"name\": \"" << r.name << "\", \"shape\": \"" << r.shape
        << "\", ";
    if (r.reference_ms >= 0.0) {
      out << "\"reference_ms\": " << r.reference_ms << ", ";
    }
    out << "\"single_thread_ms\": " << r.single_ms
        << ", \"parallel_ms\": " << r.parallel_ms
        << ", \"speedup\": " << r.single_ms / r.parallel_ms;
    if (r.flops > 0.0) {
      out << ", \"parallel_gflops\": " << r.flops / r.parallel_ms / 1e6;
    }
    out << "}";
    if (i + 1 < results.size()) out << ",";
    out << "\n";
  }
  out << "  ],\n";
  out << "  \"metrics\": " << bench::MetricsJson() << "\n";
  out << "}\n";
  return bool(out.flush());
}

int Main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_kernels.json";
  long gemm_arg = 1024;
  if (argc > 2) {
    char* end = nullptr;
    gemm_arg = std::strtol(argv[2], &end, 10);
    if (end == argv[2] || *end != '\0' || gemm_arg <= 0) {
      std::cerr << "error: gemm_size must be a positive integer, got \""
                << argv[2] << "\"\nusage: kernel_bench [output.json] "
                << "[gemm_size]\n";
      return 2;
    }
  }
  const size_t gemm = size_t(gemm_arg);

  std::cout << "Kernel benchmark: single-thread vs compute pool ("
            << util::ComputePoolThreads() << " workers)\n\n";

  util::Rng rng(42);
  Harness harness;
  auto shape = [](size_t m, size_t k, size_t n) {
    return std::to_string(m) + "x" + std::to_string(k) + "x" +
           std::to_string(n);
  };

  // --- GEMM family at the headline cubic shape. ---
  {
    const size_t m = gemm, k = gemm, n = gemm;
    std::vector<float> a(m * k), b(k * n), c(m * n);
    rng.FillGaussian(&a, 1.0);
    rng.FillGaussian(&b, 1.0);
    const double flops = 2.0 * double(m) * double(k) * double(n);
    harness.Run(
        {"gemm", shape(m, k, n), flops},
        [&] { train::Gemm(a.data(), b.data(), c.data(), m, k, n); },
        [&] { train::reference::Gemm(a.data(), b.data(), c.data(), m, k, n); });
    harness.Run({"gemm_trans_a", shape(m, k, n), flops},
                [&] { train::GemmTransA(a.data(), b.data(), c.data(), m, k, n); },
                [&] {
                  train::reference::GemmTransA(a.data(), b.data(), c.data(), m,
                                               k, n);
                });
    harness.Run({"gemm_trans_b", shape(m, k, n), flops},
                [&] { train::GemmTransB(a.data(), b.data(), c.data(), m, k, n); },
                [&] {
                  train::reference::GemmTransB(a.data(), b.data(), c.data(), m,
                                               k, n);
                });
  }

  // --- Transformer-block shapes: batch*seq = 2048 token rows, d = 1024. ---
  const size_t rows = 2048, d = 1024, ffn = 4 * d;

  {
    std::vector<float> z(rows * ffn), bias(ffn), y(rows * ffn);
    rng.FillGaussian(&z, 1.0);
    rng.FillGaussian(&bias, 0.1);
    const std::string bias_shape =
        std::to_string(rows) + "x" + std::to_string(ffn);
    harness.Run({"add_bias_gelu", bias_shape, 0.0},
                [&] { train::AddBiasGelu(z.data(), bias.data(), y.data(), rows, ffn); });
    std::vector<float> dz(rows * ffn), dbias(ffn);
    harness.Run({"add_bias_gelu_bwd", bias_shape, 0.0},
                [&] {
                  train::AddBiasGeluBackward(z.data(), y.data(), dz.data(),
                                             dbias.data(), rows, ffn);
                });
  }

  {
    std::vector<float> x(rows * d), gamma(d, 1.0f), beta(d, 0.0f);
    std::vector<float> y(rows * d), mean(rows), rstd(rows);
    rng.FillGaussian(&x, 1.0);
    harness.Run({"layer_norm", std::to_string(rows) + "x" + std::to_string(d),
                 0.0},
                [&] {
                  train::LayerNorm(x.data(), gamma.data(), beta.data(),
                                   y.data(), mean.data(), rstd.data(), rows,
                                   d);
                },
                [&] {
                  train::reference::LayerNorm(x.data(), gamma.data(),
                                              beta.data(), y.data(),
                                              mean.data(), rstd.data(), rows,
                                              d);
                });
    std::vector<float> dy(rows * d), dx(rows * d), dgamma(d), dbeta(d);
    rng.FillGaussian(&dy, 1.0);
    train::LayerNorm(x.data(), gamma.data(), beta.data(), y.data(),
                     mean.data(), rstd.data(), rows, d);
    harness.Run({"layer_norm_bwd",
                 std::to_string(rows) + "x" + std::to_string(d), 0.0},
                [&] {
                  train::LayerNormBackward(x.data(), gamma.data(), dy.data(),
                                           mean.data(), rstd.data(), dx.data(),
                                           dgamma.data(), dbeta.data(), rows,
                                           d);
                },
                [&] {
                  train::reference::LayerNormBackward(
                      x.data(), gamma.data(), dy.data(), mean.data(),
                      rstd.data(), dx.data(), dgamma.data(), dbeta.data(),
                      rows, d);
                });
  }

  {
    const size_t vocab = 8192;
    std::vector<float> logits(rows * vocab), grad(rows * vocab);
    rng.FillGaussian(&logits, 2.0);
    std::vector<int> labels(rows);
    for (size_t i = 0; i < rows; ++i) labels[i] = int(i % vocab);
    harness.Run({"softmax_xent",
                 std::to_string(rows) + "x" + std::to_string(vocab), 0.0},
                [&] {
                  train::SoftmaxCrossEntropy(logits.data(), labels.data(),
                                             grad.data(), rows, vocab);
                },
                [&] {
                  train::reference::SoftmaxCrossEntropy(
                      logits.data(), labels.data(), grad.data(), rows, vocab);
                });
  }

  {
    // One optimizer step over a 64M-element layer, the lock-free updater's
    // per-layer unit of work.
    const size_t count = 64 * 1024 * 1024 / 4;
    std::vector<float> p(count, 0.5f), m(count, 0.1f), v(count, 0.2f),
        g(count);
    rng.FillGaussian(&g, 1.0);
    core::AdamConfig config;
    long step = 0;
    harness.Run({"adam_update", std::to_string(count) + " elems", 0.0},
                [&] {
                  core::AdamUpdate(config, p.data(), m.data(), v.data(),
                                   g.data(), count, ++step);
                });
  }

  if (!WriteJson(out_path, harness, gemm)) {
    std::cerr << "error: could not write " << out_path << "\n";
    return 1;
  }
  const auto& results = harness.results();
  const double headline = results.empty()
                              ? 0.0
                              : results[0].single_ms / results[0].parallel_ms;
  std::cout << "\nHeadline: " << gemm << "^3 GEMM pool-vs-single speedup "
            << std::fixed << std::setprecision(2) << headline << "x on "
            << util::ComputePoolThreads() << " workers\nWrote " << out_path
            << "\n";
  return 0;
}

}  // namespace
}  // namespace angelptm

int main(int argc, char** argv) { return angelptm::Main(argc, argv); }
