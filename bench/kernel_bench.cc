// Times every hot compute kernel across a sweep of thread counts at
// transformer-realistic shapes and writes BENCH_kernels.json, so the
// kernel-performance trajectory is tracked from PR to PR.
//
// Honesty rules (DESIGN.md §11.5):
//   - every measurement records the compute_threads it actually ran with
//     (one JSON block per thread count, plus the field on each entry);
//   - the resolved SIMD dispatch path and the host's online CPU count are
//     recorded, so a flat "scaling curve" on a 1-CPU container reads as
//     what it is rather than as a regression;
//   - throughput is reported as GFLOP/s for FLOP-bound kernels and GB/s
//     for bandwidth-bound ones, with the FLOP/byte conventions spelled
//     out at the definition site below.
//
// The run also enforces a GEMM-variant regression guard: at every thread
// count, neither transposed variant may be more than 2x slower than the
// plain GEMM (packing absorbs the transposes, so they should be within
// noise of each other). Violations exit non-zero so CI can catch a
// reintroduced strided inner loop.
//
// Usage: kernel_bench [output.json] [gemm_size]
//   output.json defaults to BENCH_kernels.json in the working directory;
//   gemm_size defaults to 1024 (pass e.g. 256 for a quick smoke run).

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iomanip>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/adam.h"
#include "train/kernels.h"
#include "train/simd/dispatch.h"
#include "util/parallel_for.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace angelptm {
namespace {

const int kThreadSweep[] = {1, 4, 8, 16};

double TimeMs(const std::function<void()>& fn, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto end = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(end - start).count());
  }
  return best;
}

struct Measurement {
  std::string name;
  std::string shape;
  double flops = 0.0;  // Per invocation; 0 when GFLOP/s is not meaningful.
  double bytes = 0.0;  // Memory traffic per invocation; 0 when FLOP-bound.
  double ms = 0.0;
  int compute_threads = 0;

  double Gflops() const { return flops > 0.0 ? flops / ms / 1e6 : 0.0; }
  double Gbps() const { return bytes > 0.0 ? bytes / ms / 1e6 : 0.0; }
};

/// A kernel plus its work accounting; timed once per thread count.
struct Kernel {
  std::string name;
  std::string shape;
  double flops;
  double bytes;
  std::function<void()> fn;
  std::function<void()> reference;  // Naive kernel, when one is retained.
};

std::string FmtMs(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fms", ms);
  return buf;
}

void PrintRow(const Measurement& m) {
  std::cout << "  " << std::left << std::setw(22) << m.name << std::setw(20)
            << m.shape << " " << std::setw(10) << FmtMs(m.ms);
  if (m.flops > 0.0) {
    std::cout << std::fixed << std::setprecision(1) << std::setw(7)
              << m.Gflops() << " GFLOP/s";
  } else if (m.bytes > 0.0) {
    std::cout << std::fixed << std::setprecision(1) << std::setw(7) << m.Gbps()
              << " GB/s";
  }
  std::cout << "\n";
}

void JsonEntry(std::ostream& out, const Measurement& m, bool last) {
  out << "      {\"name\": \"" << m.name << "\", \"shape\": \"" << m.shape
      << "\", \"compute_threads\": " << m.compute_threads
      << ", \"ms\": " << m.ms;
  if (m.flops > 0.0) out << ", \"gflops\": " << m.Gflops();
  if (m.bytes > 0.0) out << ", \"gbps\": " << m.Gbps();
  out << "}" << (last ? "" : ",") << "\n";
}

int Main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_kernels.json";
  long gemm_arg = 1024;
  if (argc > 2) {
    char* end = nullptr;
    gemm_arg = std::strtol(argv[2], &end, 10);
    if (end == argv[2] || *end != '\0' || gemm_arg <= 0) {
      std::cerr << "error: gemm_size must be a positive integer, got \""
                << argv[2] << "\"\nusage: kernel_bench [output.json] "
                << "[gemm_size]\n";
      return 2;
    }
  }
  const size_t gemm = size_t(gemm_arg);
  const unsigned host_cpus = std::max(1u, std::thread::hardware_concurrency());
  const char* simd_path = simd::IsaPathName(simd::Dispatch());

  std::cout << "Kernel benchmark: simd=" << simd_path
            << ", host_cpus=" << host_cpus << ", thread sweep {1,4,8,16}\n";
  if (host_cpus < 8) {
    std::cout << "note: only " << host_cpus << " CPU(s) online — thread "
              << "counts above that oversubscribe and cannot show real "
              << "scaling\n";
  }
  std::cout << "\n";

  util::Rng rng(42);
  auto shape3 = [](size_t m, size_t k, size_t n) {
    return std::to_string(m) + "x" + std::to_string(k) + "x" +
           std::to_string(n);
  };
  auto shape2 = [](size_t m, size_t n) {
    return std::to_string(m) + "x" + std::to_string(n);
  };

  // --- Workloads (allocated once; timed at every thread count). ---
  std::vector<Kernel> kernels;

  // GEMM family at the headline cubic shape: FLOP-bound, 2mkn FLOPs.
  const size_t gm = gemm, gk = gemm, gn = gemm;
  std::vector<float> ga(gm * gk), gb(gk * gn), gc(gm * gn);
  rng.FillGaussian(&ga, 1.0);
  rng.FillGaussian(&gb, 1.0);
  const double gemm_flops = 2.0 * double(gm) * double(gk) * double(gn);
  kernels.push_back(
      {"gemm", shape3(gm, gk, gn), gemm_flops, 0.0,
       [&, gm, gk, gn] { train::Gemm(ga.data(), gb.data(), gc.data(), gm, gk, gn); },
       [&, gm, gk, gn] {
         train::reference::Gemm(ga.data(), gb.data(), gc.data(), gm, gk, gn);
       }});
  kernels.push_back(
      {"gemm_trans_a", shape3(gm, gk, gn), gemm_flops, 0.0,
       [&, gm, gk, gn] {
         train::GemmTransA(ga.data(), gb.data(), gc.data(), gm, gk, gn);
       },
       [&, gm, gk, gn] {
         train::reference::GemmTransA(ga.data(), gb.data(), gc.data(), gm, gk,
                                      gn);
       }});
  kernels.push_back(
      {"gemm_trans_b", shape3(gm, gk, gn), gemm_flops, 0.0,
       [&, gm, gk, gn] {
         train::GemmTransB(ga.data(), gb.data(), gc.data(), gm, gk, gn);
       },
       [&, gm, gk, gn] {
         train::reference::GemmTransB(ga.data(), gb.data(), gc.data(), gm, gk,
                                      gn);
       }});

  // Transformer-block shapes: batch*seq = 2048 token rows, d = 1024.
  const size_t rows = 2048, d = 1024, ffn = 4 * d;

  // add_bias_gelu: FLOP-bound on the tanh chain. Convention: 1 FLOP for
  // the bias add + 14 for the tanh-approx GeLU = 15 FLOPs/element.
  std::vector<float> z(rows * ffn), bias(ffn), y(rows * ffn);
  rng.FillGaussian(&z, 1.0);
  rng.FillGaussian(&bias, 0.1);
  kernels.push_back({"add_bias_gelu", shape2(rows, ffn),
                     15.0 * double(rows) * double(ffn), 0.0,
                     [&, rows, ffn] {
                       train::AddBiasGelu(z.data(), bias.data(), y.data(),
                                          rows, ffn);
                     },
                     nullptr});
  // Backward: ~20 FLOPs/element for the gelu' chain + dbias reduction.
  std::vector<float> dz(rows * ffn), dbias(ffn);
  kernels.push_back({"add_bias_gelu_bwd", shape2(rows, ffn),
                     20.0 * double(rows) * double(ffn), 0.0,
                     [&, rows, ffn] {
                       train::AddBiasGeluBackward(z.data(), y.data(),
                                                  dz.data(), dbias.data(),
                                                  rows, ffn);
                     },
                     nullptr});

  // layer_norm: bandwidth-bound. Convention: read x + write y = 8
  // bytes/element (mean/rstd are negligible).
  std::vector<float> lx(rows * d), gamma(d, 1.0f), beta(d, 0.0f);
  std::vector<float> ly(rows * d), mean(rows), rstd(rows);
  rng.FillGaussian(&lx, 1.0);
  kernels.push_back({"layer_norm", shape2(rows, d), 0.0,
                     8.0 * double(rows) * double(d),
                     [&, rows, d] {
                       train::LayerNorm(lx.data(), gamma.data(), beta.data(),
                                        ly.data(), mean.data(), rstd.data(),
                                        rows, d);
                     },
                     [&, rows, d] {
                       train::reference::LayerNorm(
                           lx.data(), gamma.data(), beta.data(), ly.data(),
                           mean.data(), rstd.data(), rows, d);
                     }});

  // layer_norm_bwd: bandwidth-bound; two passes over x and dy plus the dx
  // write = 20 bytes/element.
  std::vector<float> ldy(rows * d), ldx(rows * d), dgamma(d), dbeta(d);
  rng.FillGaussian(&ldy, 1.0);
  train::LayerNorm(lx.data(), gamma.data(), beta.data(), ly.data(),
                   mean.data(), rstd.data(), rows, d);
  kernels.push_back({"layer_norm_bwd", shape2(rows, d), 0.0,
                     20.0 * double(rows) * double(d),
                     [&, rows, d] {
                       train::LayerNormBackward(
                           lx.data(), gamma.data(), ldy.data(), mean.data(),
                           rstd.data(), ldx.data(), dgamma.data(),
                           dbeta.data(), rows, d);
                     },
                     [&, rows, d] {
                       train::reference::LayerNormBackward(
                           lx.data(), gamma.data(), ldy.data(), mean.data(),
                           rstd.data(), ldx.data(), dgamma.data(),
                           dbeta.data(), rows, d);
                     }});

  // softmax_xent: bandwidth-bound at vocab width (logits read twice, grad
  // written once = 12 bytes/element).
  const size_t vocab = 8192;
  std::vector<float> logits(rows * vocab), grad(rows * vocab);
  rng.FillGaussian(&logits, 2.0);
  std::vector<int> labels(rows);
  for (size_t i = 0; i < rows; ++i) labels[i] = int(i % vocab);
  kernels.push_back({"softmax_xent", shape2(rows, vocab), 0.0,
                     12.0 * double(rows) * double(vocab),
                     [&, rows, vocab] {
                       train::SoftmaxCrossEntropy(logits.data(), labels.data(),
                                                  grad.data(), rows, vocab);
                     },
                     [&, rows, vocab] {
                       train::reference::SoftmaxCrossEntropy(
                           logits.data(), labels.data(), grad.data(), rows,
                           vocab);
                     }});

  // adam_update: bandwidth-bound. Reads p/m/v/g, writes p/m/v = 28
  // bytes/element. 16M elements = one optimizer step over a 64 MiB layer,
  // the lock-free updater's per-layer unit of work.
  const size_t count = 64 * 1024 * 1024 / 4;
  std::vector<float> p(count, 0.5f), am(count, 0.1f), av(count, 0.2f),
      ag(count);
  rng.FillGaussian(&ag, 1.0);
  core::AdamConfig config;
  long step = 0;
  kernels.push_back({"adam_update", std::to_string(count) + " elems", 0.0,
                     28.0 * double(count),
                     [&, count] {
                       core::AdamUpdate(config, p.data(), am.data(), av.data(),
                                        ag.data(), count, ++step);
                     },
                     nullptr});

  const int reps = 3;

  // --- Reference (naive, serial) kernels: timed once on one thread. ---
  std::vector<Measurement> reference;
  {
    util::ThreadPool serial(1);
    util::SetComputePoolOverride(&serial);
    std::cout << "reference kernels (serial):\n";
    for (const Kernel& k : kernels) {
      if (!k.reference) continue;
      Measurement m{k.name, k.shape, k.flops, k.bytes,
                    TimeMs(k.reference, reps), 1};
      PrintRow(m);
      reference.push_back(m);
    }
    util::SetComputePoolOverride(nullptr);
    std::cout << "\n";
  }

  // --- The sweep: one block of measurements per thread count. ---
  std::vector<std::vector<Measurement>> blocks;
  bool regression_ok = true;
  for (const int threads : kThreadSweep) {
    util::ThreadPool pool{size_t(threads)};
    util::SetComputePoolOverride(&pool);
    std::cout << threads << " thread(s):\n";
    std::vector<Measurement> block;
    for (const Kernel& k : kernels) {
      Measurement m{k.name, k.shape, k.flops, k.bytes, TimeMs(k.fn, reps),
                    threads};
      PrintRow(m);
      block.push_back(m);
    }
    util::SetComputePoolOverride(nullptr);

    // GEMM-variant regression guard (kernels[0..2] are the GEMM family).
    const double plain = block[0].ms;
    for (int v = 1; v <= 2; ++v) {
      if (block[v].ms > 2.0 * plain) {
        std::cerr << "REGRESSION: " << block[v].name << " is "
                  << std::fixed << std::setprecision(2) << block[v].ms / plain
                  << "x slower than gemm at " << threads
                  << " thread(s) (limit 2x)\n";
        regression_ok = false;
      }
    }
    blocks.push_back(std::move(block));
    std::cout << "\n";
  }

  // --- JSON. ---
  std::ofstream out(out_path);
  out << std::setprecision(6) << std::fixed;
  out << "{\n";
  out << "  \"bench\": \"kernel_bench\",\n";
  out << "  \"gemm_size\": " << gemm << ",\n";
  out << "  \"simd_path\": \"" << simd_path << "\",\n";
  out << "  \"host_cpus\": " << host_cpus << ",\n";
  out << "  \"gemm_regression_ok\": " << (regression_ok ? "true" : "false")
      << ",\n";
  out << "  \"reference\": [\n";
  for (size_t i = 0; i < reference.size(); ++i) {
    JsonEntry(out, reference[i], i + 1 == reference.size());
  }
  out << "  ],\n";
  out << "  \"by_threads\": [\n";
  for (size_t bi = 0; bi < blocks.size(); ++bi) {
    out << "    {\"compute_threads\": " << kThreadSweep[bi]
        << ", \"kernels\": [\n";
    for (size_t i = 0; i < blocks[bi].size(); ++i) {
      JsonEntry(out, blocks[bi][i], i + 1 == blocks[bi].size());
    }
    out << "    ]}" << (bi + 1 == blocks.size() ? "" : ",") << "\n";
  }
  out << "  ],\n";
  out << "  \"metrics\": " << bench::MetricsJson() << "\n";
  out << "}\n";
  if (!out.flush()) {
    std::cerr << "error: could not write " << out_path << "\n";
    return 1;
  }

  const double single = blocks.front()[0].Gflops();
  std::cout << "Headline: " << gemm << "^3 GEMM " << std::fixed
            << std::setprecision(1) << single << " GFLOP/s single-thread ("
            << simd_path << " path)\nWrote " << out_path << "\n";
  if (!regression_ok) {
    std::cerr << "GEMM-variant regression guard failed (see above)\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace angelptm

int main(int argc, char** argv) { return angelptm::Main(argc, argv); }
