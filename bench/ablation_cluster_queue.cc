// Quantifies the §3.1 motivation: "there are a large number of fine-tuning
// tasks in the task queue ... waiting times up to several hours". The same
// cluster and workload are simulated with the GPUs-per-fine-tuning-job that
// a no-offload system needs versus what hierarchical memory needs (the
// finetune_hierarchical example measures those GPU counts: e.g. GPT3-30B
// fine-tunes on 16 GPUs without offloading vs 1-8 with Angel-PTM).

#include <iostream>

#include "bench/bench_util.h"
#include "sim/cluster_queue.h"
#include "util/table_printer.h"

int main() {
  using namespace angelptm;
  bench::PrintHeader("Ablation: fine-tuning queue response time",
                     "Section 3.1 (Use Cases in Tencent)");

  std::cout << "Cluster: 1024 GPUs, 6 jobs/hour (99% fine-tuning ~3h, 1%\n"
               "pre-training ~20h on 256 GPUs), FIFO admission, 500 jobs.\n\n";

  util::TablePrinter table({"GPUs per fine-tune job", "mean wait (h)",
                            "fine-tune mean wait (h)", "p95 wait (h)",
                            "GPU utilization"});
  for (const int gpus : {64, 32, 16, 8}) {
    sim::ClusterQueueConfig config;
    config.total_gpus = 1024;
    config.arrivals_per_hour = 6.0;
    config.finetune_fraction = 0.99;
    config.finetune_hours_mean = 3.0;
    config.pretrain_hours_mean = 20.0;
    config.gpus_per_finetune_job = gpus;
    config.num_jobs = 500;
    const sim::ClusterQueueResult result =
        sim::SimulateClusterQueue(config);
    table.AddRow({std::to_string(gpus),
                  util::FormatDouble(result.mean_wait_hours, 2),
                  util::FormatDouble(result.mean_finetune_wait_hours, 2),
                  util::FormatDouble(result.p95_wait_hours, 2),
                  util::FormatDouble(100.0 * result.gpu_utilization, 1) +
                      "%"});
  }
  table.Print(std::cout, "Queue behaviour vs per-job GPU footprint");
  std::cout
      << "\nShrinking each fine-tuning job's GPU footprint (what\n"
      << "hierarchical memory does — see examples/finetune_hierarchical)\n"
      << "collapses the multi-hour waits the paper reports, without adding\n"
      << "a single GPU. This is the economics in the paper's title.\n";
  return 0;
}
