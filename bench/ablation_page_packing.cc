// The §4.1 memory-organization claim, validated on real allocations: pack
// one GPT3 layer's model-state tensors (Table 2's size mix, scaled 1/1024
// to fit host memory) through the page allocator, and compare the waste
// against the chunk-based organization of PatrickStar (chunks sized to the
// largest tensor) that the paper argues against.

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "core/allocator.h"
#include "mem/hierarchical_memory.h"
#include "model/footprint.h"
#include "util/table_printer.h"
#include "util/units.h"

namespace {

using namespace angelptm;

struct PackingResult {
  uint64_t requested = 0;
  uint64_t held = 0;
  double waste_percent = 0.0;
};

/// Allocates the tensor mix through the real page allocator (same-group
/// tensors share tail pages) and reads the accounting back.
PackingResult PackWithPages(const std::vector<uint64_t>& tensor_bytes,
                            size_t page_bytes) {
  mem::HierarchicalMemoryOptions options;
  options.page_bytes = page_bytes;
  options.cpu_capacity_bytes = 1ull << 30;
  options.gpu_capacity_bytes = page_bytes;
  mem::HierarchicalMemory memory(options);
  core::Allocator allocator(&memory);
  for (uint64_t bytes : tensor_bytes) {
    const size_t elements = std::max<uint64_t>(1, bytes / 4);
    ANGEL_CHECK_OK(allocator
                       .Allocate({elements}, core::DType::kFp32,
                                 mem::DeviceKind::kCpu, /*group=*/0)
                       .status());
  }
  PackingResult result;
  result.requested = allocator.allocated_bytes();
  result.held = result.requested + allocator.padding_bytes();
  result.waste_percent =
      100.0 * double(allocator.padding_bytes()) / double(result.held);
  return result;
}

/// Chunk-based organization: every chunk is as large as the largest tensor
/// (the PatrickStar constraint §4.1 cites); tensors are packed first-fit
/// into chunks.
PackingResult PackWithChunks(std::vector<uint64_t> tensor_bytes) {
  const uint64_t chunk_bytes =
      *std::max_element(tensor_bytes.begin(), tensor_bytes.end());
  std::sort(tensor_bytes.rbegin(), tensor_bytes.rend());
  std::vector<uint64_t> chunk_free;
  PackingResult result;
  for (uint64_t bytes : tensor_bytes) {
    result.requested += bytes;
    bool placed = false;
    for (uint64_t& free_bytes : chunk_free) {
      if (free_bytes >= bytes) {
        free_bytes -= bytes;
        placed = true;
        break;
      }
    }
    if (!placed) chunk_free.push_back(chunk_bytes - bytes);
  }
  result.held = chunk_free.size() * chunk_bytes;
  result.waste_percent =
      100.0 * double(result.held - result.requested) / double(result.held);
  return result;
}

}  // namespace

int main() {
  bench::PrintHeader("Ablation: page packing vs chunk-based organization",
                     "Section 4.1 (Page-Based Memory Organization)");

  // Table 2's tensor mix for one GPT3 layer, scaled 1/1024 (real bytes,
  // real allocations).
  std::vector<uint64_t> tensor_bytes;
  for (const auto& info : model::EnumerateStateTensors(12288, 49152)) {
    for (int i = 0; i < info.count; ++i) {
      tensor_bytes.push_back(std::max<uint64_t>(info.bytes / 1024, 4));
    }
  }
  std::cout << "Workload: one GPT3 layer's " << tensor_bytes.size()
            << " model-state tensors (Table 2 mix, scaled 1/1024: largest "
            << util::FormatBytes(*std::max_element(tensor_bytes.begin(),
                                                   tensor_bytes.end()))
            << ", smallest "
            << util::FormatBytes(*std::min_element(tensor_bytes.begin(),
                                                   tensor_bytes.end()))
            << ").\n\n";

  util::TablePrinter table({"Organization", "bytes requested", "bytes held",
                            "waste"});
  const PackingResult chunks = PackWithChunks(tensor_bytes);
  table.AddRow({"Chunks sized to largest tensor (PatrickStar-style)",
                util::FormatBytes(chunks.requested),
                util::FormatBytes(chunks.held),
                util::FormatDouble(chunks.waste_percent, 2) + "%"});
  // Page sizes scaled 1/1024 with the tensors: a 4 KiB page here plays the
  // role of the paper's 4 MiB page at full scale.
  for (const size_t page_bytes : {64 * 1024, 16 * 1024, 4 * 1024, 1024}) {
    const PackingResult pages = PackWithPages(tensor_bytes, page_bytes);
    table.AddRow({"Pages of " + util::FormatBytes(page_bytes) + " (= " +
                      util::FormatBytes(page_bytes * 1024) +
                      " at full scale)",
                  util::FormatBytes(pages.requested),
                  util::FormatBytes(pages.held),
                  util::FormatDouble(pages.waste_percent, 2) + "%"});
  }
  table.Print(std::cout, "Holding one layer's model states");
  std::cout
      << "\nAt the paper's 4 MiB page (the 4 KiB row at this scale), page\n"
      << "packing holds the layer with ~1% waste; largest-tensor chunking\n"
      << "strands several percent of every chunk and, more importantly,\n"
      << "moves memory at multi-GiB chunk granularity (poor overlap, §4.1).\n"
      << "External fragmentation is zero by construction for pages —\n"
      << "verified as a property test in\n"
      << "tests/mem/allocator_property_test.cc.\n";
  return 0;
}
