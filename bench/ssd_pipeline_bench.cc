// Measures the SSD paging pipeline (DESIGN.md §12) on a working set that
// exceeds the CPU arena: steady-state throughput of the trace-driven
// read-ahead path (PrefetchPlanner + ReadAheadExecutor + the async batched
// submission-queue SsdTier backend) against the synchronous per-page
// baseline (io_workers=0, fetch-on-demand, first-found eviction — the
// pre-§12 behavior). Writes BENCH_ssd_pipeline.json.
//
// Honesty rules (DESIGN.md §11.5):
//   - both modes run the *same* schedule, working set, frame size, emulated
//     per-op device latency and emulated per-use compute, so the speedup
//     isolates pipelining + coalescing + Belady eviction, nothing else;
//   - this container typically has one online CPU, so the async win comes
//     from overlapping emulated device latencies (sleeps) across the queue
//     workers and from coalescing adjacent frames into one preadv/pwritev —
//     exactly the mechanism that pays on real NVMe queue depths — not from
//     core parallelism; host_cpus is recorded so readers can see that;
//   - the warmup (trace-recording) step is excluded from steady-state
//     throughput in both modes;
//   - read-ahead hit/wait/coverage rates and the submission-queue depth and
//     batch-size stats are embedded in the JSON next to the throughput they
//     explain.
//
// The full run enforces the §12 acceptance bar: async steady-state
// throughput must be >= 2x the sync baseline, else exit non-zero so CI
// catches a regressed pipeline.
//
// Usage: ssd_pipeline_bench [output.json] [--smoke]
//   output.json defaults to BENCH_ssd_pipeline.json in the working
//   directory; --smoke shrinks the config for CI and skips the 2x guard.

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "mem/copy_engine.h"
#include "mem/hierarchical_memory.h"
#include "mem/prefetch_planner.h"
#include "mem/read_ahead.h"

namespace angelptm {
namespace {

struct Config {
  size_t frame_bytes = 64 * 1024;
  uint64_t pages = 192;      // Working set: pages * frame_bytes.
  uint64_t cpu_frames = 96;  // Arena: half the working set -> constant paging.
  int steady_steps = 4;
  int io_op_latency_us = 300;  // Emulated device latency per syscall attempt.
  int compute_us = 100;        // Emulated compute per scheduled use.
  size_t window = 32;
  size_t io_workers = 4;  // Async mode; sync mode always uses 0.
  size_t io_coalesce = 8;
  size_t copy_threads = 8;  // Async mode; sync mode always uses 1.
};

Config SmokeConfig() {
  Config c;
  c.pages = 48;
  c.cpu_frames = 24;
  c.steady_steps = 2;
  c.io_op_latency_us = 100;
  c.compute_us = 50;
  c.window = 16;
  return c;
}

/// Forward 0..n-1 then backward n-1..0 — one training step's layer visits.
std::vector<uint64_t> SawtoothOrder(uint64_t pages) {
  std::vector<uint64_t> order;
  for (uint64_t l = 0; l < pages; ++l) order.push_back(l);
  for (uint64_t l = pages; l > 0; --l) order.push_back(l - 1);
  return order;
}

struct ModeResult {
  std::string name;
  double warmup_ms = 0.0;
  double steady_ms = 0.0;
  uint64_t steady_uses = 0;
  mem::ReadAheadExecutor::Stats ra;       // Steady-state deltas only.
  mem::PrefetchPlanner::Stats planner;    // Whole-run totals.
  mem::SsdTier::Stats ssd;                // Whole-run totals.
  bool ok = true;
  std::string error;

  double UsesPerSec() const {
    return steady_ms > 0.0 ? steady_uses / steady_ms * 1e3 : 0.0;
  }
  double MbPerSec(size_t frame_bytes) const {
    return UsesPerSec() * double(frame_bytes) / 1e6;
  }
  double HitRate() const {
    const uint64_t uses = ra.hits + ra.waits;
    return uses > 0 ? double(ra.hits) / double(uses) : 0.0;
  }
  double Coverage() const {
    const uint64_t uses = ra.hits + ra.waits;
    return uses > 0 ? double(ra.covered) / double(uses) : 0.0;
  }
};

mem::ReadAheadExecutor::Stats Delta(const mem::ReadAheadExecutor::Stats& now,
                                    const mem::ReadAheadExecutor::Stats& base) {
  mem::ReadAheadExecutor::Stats d;
  d.hits = now.hits - base.hits;
  d.waits = now.waits - base.waits;
  d.covered = now.covered - base.covered;
  d.evictions = now.evictions - base.evictions;
  d.sync_fetches = now.sync_fetches - base.sync_fetches;
  d.failed_moves = now.failed_moves - base.failed_moves;
  return d;
}

/// Runs one mode end to end: stage the working set to SSD, one warmup step
/// (recording the trace when `async_mode`), then timed steady-state steps.
ModeResult RunMode(bool async_mode, const Config& cfg) {
  ModeResult result;
  result.name = async_mode ? "async" : "sync";

  mem::HierarchicalMemoryOptions mo;
  mo.page_bytes = cfg.frame_bytes;
  mo.gpu_capacity_bytes = 2 * cfg.frame_bytes;
  mo.cpu_capacity_bytes = cfg.cpu_frames * cfg.frame_bytes;
  mo.ssd_capacity_bytes = 2 * cfg.pages * cfg.frame_bytes;
  mo.ssd_path = "/tmp/angelptm_ssd_pipeline_" + result.name + "_" +
                std::to_string(::getpid()) + ".bin";
  mo.ssd_io_workers = async_mode ? cfg.io_workers : 0;
  mo.ssd_io_coalesce = cfg.io_coalesce;
  // Staging below also pays this, but only steady-state steps are timed.
  mo.ssd_io_op_latency_us = cfg.io_op_latency_us;

  mem::HierarchicalMemory memory(mo);
  mem::CopyEngine engine(&memory, async_mode ? cfg.copy_threads : 1);
  mem::PrefetchPlanner planner;
  mem::ReadAheadExecutor::Options ro;
  ro.window = cfg.window;
  ro.max_resident = cfg.cpu_frames - 8;
  mem::ReadAheadExecutor executor(&memory, &engine, &planner, ro);

  // Stage the working set: page i filled with a recognizable byte, parked on
  // SSD. Sequential staging gives sequential SSD frame offsets, which is
  // what real layer packing produces and what coalescing exploits.
  std::vector<mem::Page*> pages;
  for (uint64_t i = 0; i < cfg.pages; ++i) {
    auto page = memory.CreatePage(mem::DeviceKind::kCpu);
    if (!page.ok()) {
      result.ok = false;
      result.error = page.status().ToString();
      return result;
    }
    std::memset((*page)->data_ptr(), static_cast<int>((i + 1) & 0xFF),
                cfg.frame_bytes);
    if (util::Status s = memory.MovePageSync(*page, mem::DeviceKind::kSsd);
        !s.ok()) {
      result.ok = false;
      result.error = s.ToString();
      return result;
    }
    executor.Bind(i, *page);
    pages.push_back(*page);
  }

  const std::vector<uint64_t> order = SawtoothOrder(cfg.pages);
  const auto compute = std::chrono::microseconds(cfg.compute_us);
  auto run_step = [&]() -> util::Status {
    for (const uint64_t key : order) {
      auto page = executor.Acquire(key);
      if (!page.ok()) return page.status();
      // Touch the page (paranoia: a wrong byte means the pipeline broke)
      // then emulate the layer's compute.
      if ((*page)->data_ptr()[0] !=
          std::byte(static_cast<unsigned char>((key + 1) & 0xFF))) {
        return util::Status::Internal("page " + std::to_string(key) +
                                      " corrupted in flight");
      }
      std::this_thread::sleep_for(compute);
    }
    return util::Status::OK();
  };

  // Warmup step: fetch-on-demand in both modes; only async trains the
  // planner from the recorded trace (sync is the pre-§12 baseline).
  const auto warmup_start = std::chrono::steady_clock::now();
  // Both modes record the trace and fetch on demand, exactly like the
  // engine's traced first iteration; only async mode then trains on it.
  for (const uint64_t key : order) {
    planner.RecordAccess(key);
    auto page = executor.Acquire(key);
    if (!page.ok()) {
      result.ok = false;
      result.error = page.status().ToString();
      return result;
    }
    std::this_thread::sleep_for(compute);
  }
  if (async_mode) planner.FinishWarmup();
  const auto warmup_end = std::chrono::steady_clock::now();
  result.warmup_ms =
      std::chrono::duration<double, std::milli>(warmup_end - warmup_start)
          .count();

  // Steady state: timed.
  const mem::ReadAheadExecutor::Stats before = executor.Snapshot();
  const auto steady_start = std::chrono::steady_clock::now();
  for (int step = 0; step < cfg.steady_steps; ++step) {
    executor.BeginStep();
    if (util::Status s = run_step(); !s.ok()) {
      result.ok = false;
      result.error = s.ToString();
      return result;
    }
  }
  const auto steady_end = std::chrono::steady_clock::now();
  if (util::Status s = executor.Drain(); !s.ok()) {
    result.ok = false;
    result.error = s.ToString();
    return result;
  }

  result.steady_ms =
      std::chrono::duration<double, std::milli>(steady_end - steady_start)
          .count();
  result.steady_uses = uint64_t(cfg.steady_steps) * order.size();
  result.ra = Delta(executor.Snapshot(), before);
  result.planner = planner.Snapshot();
  result.ssd = memory.ssd()->Snapshot();
  return result;
}

void PrintMode(const ModeResult& m, const Config& cfg) {
  std::cout << "  " << std::left << std::setw(6) << m.name << std::fixed
            << std::setprecision(1) << "warmup " << std::setw(9)
            << m.warmup_ms << " steady " << std::setw(9) << m.steady_ms
            << " ms  " << std::setprecision(0) << std::setw(6)
            << m.UsesPerSec() << " pages/s  " << std::setprecision(1)
            << m.MbPerSec(cfg.frame_bytes) << " MB/s  hit-rate "
            << std::setprecision(3) << m.HitRate() << "  coverage "
            << m.Coverage() << "\n";
  std::cout << "         readahead: hits=" << m.ra.hits
            << " waits=" << m.ra.waits << " covered=" << m.ra.covered
            << " evictions=" << m.ra.evictions
            << " sync_fetches=" << m.ra.sync_fetches
            << " failed=" << m.ra.failed_moves << "\n";
  std::cout << "         ssd: queued=" << m.ssd.queued_requests
            << " batches=" << m.ssd.io_batches
            << " max_queue_depth=" << m.ssd.max_queue_depth
            << " read=" << m.ssd.bytes_read / 1024 / 1024
            << "MiB written=" << m.ssd.bytes_written / 1024 / 1024
            << "MiB retries=" << m.ssd.io_retries << "\n";
}

void JsonMode(std::ostream& out, const ModeResult& m, const Config& cfg) {
  out << "{\n"
      << "    \"warmup_ms\": " << m.warmup_ms << ",\n"
      << "    \"steady_ms\": " << m.steady_ms << ",\n"
      << "    \"steady_uses\": " << m.steady_uses << ",\n"
      << "    \"pages_per_sec\": " << m.UsesPerSec() << ",\n"
      << "    \"mb_per_sec\": " << m.MbPerSec(cfg.frame_bytes) << ",\n"
      << "    \"readahead_hit_rate\": " << m.HitRate() << ",\n"
      << "    \"readahead_coverage\": " << m.Coverage() << ",\n"
      << "    \"readahead\": {\"hits\": " << m.ra.hits
      << ", \"waits\": " << m.ra.waits << ", \"covered\": " << m.ra.covered
      << ", \"evictions\": " << m.ra.evictions
      << ", \"sync_fetches\": " << m.ra.sync_fetches
      << ", \"failed_moves\": " << m.ra.failed_moves << "},\n"
      << "    \"planner\": {\"order_length\": " << m.planner.order_length
      << ", \"predicted_hits\": " << m.planner.predicted_hits
      << ", \"mispredicts\": " << m.planner.mispredicts << "},\n"
      << "    \"ssd\": {\"queued_requests\": " << m.ssd.queued_requests
      << ", \"io_batches\": " << m.ssd.io_batches
      << ", \"max_queue_depth\": " << m.ssd.max_queue_depth
      << ", \"avg_batch_frames\": "
      << (m.ssd.io_batches > 0
              ? double(m.ssd.queued_requests) / double(m.ssd.io_batches)
              : 0.0)
      << ", \"bytes_read\": " << m.ssd.bytes_read
      << ", \"bytes_written\": " << m.ssd.bytes_written
      << ", \"io_retries\": " << m.ssd.io_retries << "}\n"
      << "  }";
}

int Main(int argc, char** argv) {
  std::string out_path = "BENCH_ssd_pipeline.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "error: unknown flag \"" << arg
                << "\"\nusage: ssd_pipeline_bench [output.json] [--smoke]\n";
      return 2;
    } else {
      out_path = arg;
    }
  }

  // The env overrides exist so check.sh can repoint whole *test* binaries at
  // the async backend; here they would silently distort the sync-vs-async
  // comparison, so the bench pins its own knobs.
  for (const char* var :
       {"ANGELPTM_SSD_IO_WORKERS", "ANGELPTM_SSD_IO_QUEUE_DEPTH",
        "ANGELPTM_SSD_IO_COALESCE", "ANGELPTM_SSD_IO_OP_LATENCY_US"}) {
    ::unsetenv(var);
  }

  const Config cfg = smoke ? SmokeConfig() : Config{};
  const unsigned host_cpus = std::max(1u, std::thread::hardware_concurrency());
  const uint64_t uses_per_step = 2 * cfg.pages;

  bench::PrintHeader(
      "SSD paging pipeline: trace-driven read-ahead vs synchronous baseline",
      "DESIGN.md §12 / Angel-PTM §5.3 (SSD tier under the Page abstraction)");
  std::cout << "config: " << cfg.pages << " pages x " << cfg.frame_bytes / 1024
            << " KiB (working set "
            << cfg.pages * cfg.frame_bytes / 1024 / 1024 << " MiB), CPU arena "
            << cfg.cpu_frames << " frames ("
            << cfg.cpu_frames * cfg.frame_bytes / 1024 / 1024
            << " MiB), device latency " << cfg.io_op_latency_us
            << "us/op, compute " << cfg.compute_us << "us/use, "
            << cfg.steady_steps << " steady steps of " << uses_per_step
            << " uses, host_cpus=" << host_cpus << (smoke ? ", SMOKE" : "")
            << "\n\n";

  const ModeResult sync_mode = RunMode(/*async_mode=*/false, cfg);
  if (!sync_mode.ok) {
    std::cerr << "sync mode failed: " << sync_mode.error << "\n";
    return 1;
  }
  PrintMode(sync_mode, cfg);
  const ModeResult async_mode = RunMode(/*async_mode=*/true, cfg);
  if (!async_mode.ok) {
    std::cerr << "async mode failed: " << async_mode.error << "\n";
    return 1;
  }
  PrintMode(async_mode, cfg);

  const double speedup = async_mode.steady_ms > 0.0
                             ? sync_mode.steady_ms / async_mode.steady_ms
                             : 0.0;
  const bool speedup_ok = smoke || speedup >= 2.0;
  std::cout << "\nSteady-state speedup (async over sync): " << std::fixed
            << std::setprecision(2) << speedup << "x"
            << (smoke ? " (smoke run: 2x guard not enforced)" : "") << "\n";

  std::ofstream out(out_path);
  out << std::setprecision(6) << std::fixed;
  out << "{\n";
  out << "  \"bench\": \"ssd_pipeline_bench\",\n";
  out << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  out << "  \"host_cpus\": " << host_cpus << ",\n";
  out << "  \"config\": {\"frame_bytes\": " << cfg.frame_bytes
      << ", \"pages\": " << cfg.pages
      << ", \"cpu_frames\": " << cfg.cpu_frames
      << ", \"steady_steps\": " << cfg.steady_steps
      << ", \"uses_per_step\": " << uses_per_step
      << ", \"io_op_latency_us\": " << cfg.io_op_latency_us
      << ", \"compute_us\": " << cfg.compute_us
      << ", \"window\": " << cfg.window
      << ", \"io_workers\": " << cfg.io_workers
      << ", \"io_coalesce\": " << cfg.io_coalesce
      << ", \"copy_threads\": " << cfg.copy_threads << "},\n";
  out << "  \"sync\": ";
  JsonMode(out, sync_mode, cfg);
  out << ",\n  \"async\": ";
  JsonMode(out, async_mode, cfg);
  out << ",\n";
  out << "  \"speedup\": " << speedup << ",\n";
  out << "  \"speedup_ok\": " << (speedup_ok ? "true" : "false") << ",\n";
  out << "  \"metrics\": " << bench::MetricsJson() << "\n";
  out << "}\n";
  if (!out.flush()) {
    std::cerr << "error: could not write " << out_path << "\n";
    return 1;
  }
  std::cout << "Wrote " << out_path << "\n";

  if (!speedup_ok) {
    std::cerr << "REGRESSION: async steady-state only " << speedup
              << "x over sync (bar is 2x)\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace angelptm

int main(int argc, char** argv) { return angelptm::Main(argc, argv); }
