// Regenerates the paper's Table 1: memory footprints of a single
// Transformer layer under mixed-precision training with Adam, for the GPT-3
// dimensions (b=1, s=2048, d_m=12288, d_ffn=49152), plus the §2.2
// memory-usage analysis of GPT3-175B.

#include <iostream>

#include "bench/bench_util.h"
#include "model/footprint.h"
#include "util/table_printer.h"
#include "util/units.h"

int main() {
  using namespace angelptm;
  bench::PrintHeader("Table 1: per-layer memory footprints",
                     "Table 1 and the Memory Usage Analysis of Section 2.2");

  const uint64_t b = 1, s = 2048, dm = 12288, dffn = 49152;
  const model::LayerFootprint fp =
      model::ComputeLayerFootprint(b, s, dm, dffn);

  util::TablePrinter table({"Block", "Layer", "Params", "Acts", "Optims"});
  std::string last_block;
  for (const auto& c : fp.components) {
    if (!last_block.empty() && c.block != last_block) table.AddSeparator();
    last_block = c.block;
    table.AddRow({c.block, c.layer,
                  c.params_bytes ? util::FormatBytes(c.params_bytes) : "-",
                  c.acts_bytes ? util::FormatBytes(c.acts_bytes) : "-",
                  c.optim_bytes ? util::FormatBytes(c.optim_bytes) : "-"});
  }
  table.AddSeparator();
  table.AddRow({"Total", "", util::FormatBytes(fp.params_bytes),
                util::FormatBytes(fp.acts_bytes),
                util::FormatBytes(fp.optim_bytes)});
  table.Print(std::cout, "One Transformer layer (b=1, s=2048, d_m=12288, "
                         "d_ffn=49152)");

  std::cout << "\nClosed forms (paper's Total row):\n"
            << "  Params = 16 d^2 + 8 d d_ffn  = "
            << util::FormatBytes(16 * dm * dm + 8 * dm * dffn) << "\n"
            << "  Acts   = 40 b s d + 8 b s d_ffn = "
            << util::FormatBytes(40 * b * s * dm + 8 * b * s * dffn) << "\n"
            << "  Optims = 48 d^2 + 24 d d_ffn = "
            << util::FormatBytes(48 * dm * dm + 24 * dm * dffn) << "\n";

  // §2.2: whole-model analysis for GPT3-175B (96 canonical layers).
  const int layers = 96;
  util::TablePrinter analysis({"Quantity", "This repo", "Paper (Sec. 2.2)"});
  analysis.AddRow({"Params",
                   util::FormatDouble(double(fp.params_bytes) * layers / 1e9,
                                      0) + " GB",
                   "648 GB"});
  analysis.AddRow({"Acts",
                   util::FormatDouble(double(fp.acts_bytes) * layers / 1e9,
                                      0) + " GB",
                   "162 GB"});
  analysis.AddRow({"Optims",
                   util::FormatDouble(double(fp.optim_bytes) * layers / 1e9,
                                      0) + " GB",
                   "1944 GB"});
  std::cout << "\n";
  analysis.Print(std::cout, "GPT3-175B whole-model memory (Sec. 2.2)");
  return 0;
}
