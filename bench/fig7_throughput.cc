// Regenerates the paper's Figure 7: training throughput of Angel-PTM vs the
// DeepSpeed-like and Megatron-like baselines on GPT models from 1.7B to
// 120B, on 1x8 and 4x8 GPUs, each system at its own maximum micro-batch.
// Throughput is normalized to DeepSpeed-like (the paper's presentation).
//
// Paper shape: Angel-PTM best everywhere except 1.7B (where plain DP /
// Megatron ties or slightly wins); Megatron-LM OOMs at 30B on 8 GPUs and at
// 120B on 32; Angel-PTM averages +35.4% over DeepSpeed (up to +70%) and
// +38.9% over Megatron-LM (up to +88.9%).

#include <iostream>
#include <vector>

#include "baselines/deepspeed_like.h"
#include "baselines/megatron_like.h"
#include "bench/bench_util.h"
#include "model/model_zoo.h"
#include "sim/planner.h"
#include "util/table_printer.h"

namespace {

using namespace angelptm;

struct Measurement {
  double angel = 0, deepspeed = 0, megatron = 0;
  int angel_batch = 0, deepspeed_batch = 0, megatron_batch = 0;
  bool megatron_oom = false, offload_oom = false;
};

Measurement MeasureModel(const std::string& name, int num_gpus) {
  Measurement m;
  auto config = model::FindModel(name);
  config->seq_len = 1024;
  sim::PlanRequest request;
  request.model = *config;
  request.hw = sim::PaperServer();
  request.num_gpus = num_gpus;

  m.angel_batch = sim::MaxMicroBatchAngelPtm(request, 512);
  if (m.angel_batch > 0) {
    request.micro_batch = m.angel_batch;
    auto plan = sim::PlanAngelPtm(request);
    if (plan.ok()) m.angel = sim::SamplesPerSecond(request, *plan);
  }
  m.deepspeed_batch = baselines::MaxMicroBatchDeepSpeedLike(request, 512);
  if (m.deepspeed_batch > 0) {
    request.micro_batch = m.deepspeed_batch;
    auto plan = baselines::PlanDeepSpeedLike(request);
    if (plan.ok()) m.deepspeed = sim::SamplesPerSecond(request, *plan);
  }
  m.offload_oom = m.deepspeed_batch == 0;

  const auto megatron =
      baselines::PlanMegatronLike(*config, request.hw, num_gpus);
  m.megatron_oom = !megatron.feasible;
  if (megatron.feasible) {
    m.megatron = megatron.samples_per_second;
    m.megatron_batch = megatron.micro_batch;
  }
  return m;
}

std::string Normalized(double value, double base) {
  if (value <= 0) return "OOM";
  if (base <= 0) return util::FormatDouble(value, 2) + " smp/s";
  return util::FormatDouble(value / base, 2) + "x";
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 7: throughput vs DeepSpeed-like and Megatron-like",
      "Figure 7 (Section 6.3)");

  for (const int num_gpus : {8, 32}) {
    const std::vector<std::string> models =
        num_gpus == 8
            ? std::vector<std::string>{"GPT3-1.7B", "GPT3-13B", "GPT3-30B"}
            : std::vector<std::string>{"GPT3-1.7B", "GPT3-13B", "GPT3-30B",
                                       "GPT3-120B"};
    util::TablePrinter table({"Model", "DeepSpeed-like (=1.0)", "Angel-PTM",
                              "Megatron-like", "batches (A/D/M)"});
    double angel_gain_sum = 0, angel_gain_max = 0;
    int compared = 0;
    for (const auto& name : models) {
      const Measurement m = MeasureModel(name, num_gpus);
      table.AddRow(
          {name, m.offload_oom ? "OOM" : "1.00x",
           Normalized(m.angel, m.deepspeed),
           m.megatron_oom ? "OOM" : Normalized(m.megatron, m.deepspeed),
           std::to_string(m.angel_batch) + "/" +
               std::to_string(m.deepspeed_batch) + "/" +
               std::to_string(m.megatron_batch)});
      if (m.angel > 0 && m.deepspeed > 0) {
        const double gain = m.angel / m.deepspeed - 1.0;
        angel_gain_sum += gain;
        angel_gain_max = std::max(angel_gain_max, gain);
        ++compared;
      }
    }
    table.Print(std::cout, std::to_string(num_gpus / 8) + "x8 GPUs "
                                                          "(normalized to "
                                                          "DeepSpeed-like)");
    if (compared > 0) {
      std::cout << "Angel-PTM vs DeepSpeed-like: avg +"
                << util::FormatDouble(100.0 * angel_gain_sum / compared, 1)
                << "%, max +"
                << util::FormatDouble(100.0 * angel_gain_max, 1)
                << "% (paper: avg +35.4%, max +70%).\n\n";
    }
  }
  std::cout << "Shape vs paper: Angel-PTM leads everywhere except the 1.7B\n"
               "model (plain data parallelism suffices there); Megatron-like\n"
               "OOMs at 30B on one server because it cannot offload.\n";
  return 0;
}
