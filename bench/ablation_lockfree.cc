// Google-benchmark micro-benchmarks of the real lock-free updating
// mechanism: per-step cost of the compute loop under synchronous vs
// lock-free updating, with CPU-resident and SSD-resident master states.

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <memory>
#include <string>

#include "train/mlp.h"
#include "train/trainer.h"

namespace {

using namespace angelptm;

struct Harness {
  std::unique_ptr<mem::HierarchicalMemory> memory;
  std::unique_ptr<core::Allocator> allocator;
  std::unique_ptr<train::MlpModel> model;
  std::unique_ptr<train::Trainer> trainer;
  train::SyntheticRegression dataset{16, 32, 4, 99};
};

std::unique_ptr<Harness> MakeHarness(bool lock_free,
                                     mem::DeviceKind master_device,
                                     double ssd_throttle,
                                     const std::string& tag) {
  auto harness = std::make_unique<Harness>();
  mem::HierarchicalMemoryOptions memory_options;
  memory_options.page_bytes = 64 * 1024;
  memory_options.gpu_capacity_bytes = 8ull << 20;
  memory_options.cpu_capacity_bytes = 64ull << 20;
  memory_options.ssd_capacity_bytes = 64ull << 20;
  memory_options.ssd_path = "/tmp/angelptm_bench_lf_" + tag + "_" +
                            std::to_string(::getpid()) + ".bin";
  memory_options.ssd_bandwidth_bytes_per_sec = ssd_throttle;
  harness->memory =
      std::make_unique<mem::HierarchicalMemory>(memory_options);
  harness->allocator =
      std::make_unique<core::Allocator>(harness->memory.get());

  harness->model =
      std::make_unique<train::MlpModel>(train::MlpConfig{{16, 64, 64, 4}});
  train::TrainerOptions options;
  options.adam.learning_rate = 3e-3;
  options.batch_size = 32;
  options.lock_free = lock_free;
  options.master_device = master_device;
  options.seed = 7;
  harness->trainer = std::make_unique<train::Trainer>(
      harness->allocator.get(), harness->model.get(), options);
  ANGEL_CHECK_OK(harness->trainer->Init());
  return harness;
}

void RunSteps(benchmark::State& state, Harness* harness) {
  // Each benchmark iteration = a chunk of real training steps.
  constexpr int kStepsPerIteration = 20;
  for (auto _ : state) {
    auto report =
        harness->trainer->Train(harness->dataset, kStepsPerIteration);
    if (!report.ok()) {
      state.SkipWithError(report.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(report->final_train_loss);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * kStepsPerIteration);
}

void BM_TrainStep_Synchronous(benchmark::State& state) {
  auto harness =
      MakeHarness(false, mem::DeviceKind::kCpu, 0.0, "sync");
  RunSteps(state, harness.get());
}
BENCHMARK(BM_TrainStep_Synchronous)->Unit(benchmark::kMillisecond);

void BM_TrainStep_LockFree(benchmark::State& state) {
  auto harness = MakeHarness(true, mem::DeviceKind::kCpu, 0.0, "lf");
  RunSteps(state, harness.get());
}
BENCHMARK(BM_TrainStep_LockFree)->Unit(benchmark::kMillisecond);

void BM_TrainStep_SynchronousSsdThrottled(benchmark::State& state) {
  auto harness =
      MakeHarness(false, mem::DeviceKind::kSsd, 80e6, "sync_ssd");
  RunSteps(state, harness.get());
}
BENCHMARK(BM_TrainStep_SynchronousSsdThrottled)
    ->Unit(benchmark::kMillisecond);

void BM_TrainStep_LockFreeSsdThrottled(benchmark::State& state) {
  auto harness =
      MakeHarness(true, mem::DeviceKind::kSsd, 80e6, "lf_ssd");
  RunSteps(state, harness.get());
}
BENCHMARK(BM_TrainStep_LockFreeSsdThrottled)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
