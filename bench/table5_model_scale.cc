// Regenerates the paper's Table 5: maximum supported model scale on a
// single 8-GPU server, for GPT (heads=128, d=8192, d_ffn=32768) and T5
// (heads=64, d=4096, d_ffn=16384), comparing the DeepSpeed-like static
// partitioner against Angel-PTM's dynamic page-based management.
//
// Paper numbers: DeepSpeed 28B/27B max; Angel-PTM 55B/58B max (+96.4% GPT,
// +114.8% T5), with the per-batch samples/s and GPU memory columns.

#include <functional>
#include <iostream>

#include "baselines/deepspeed_like.h"
#include "bench/bench_util.h"
#include "model/footprint.h"
#include "model/model_zoo.h"
#include "sim/planner.h"
#include "util/table_printer.h"
#include "util/units.h"

namespace {

using namespace angelptm;

constexpr uint64_t kSeqLen = 1024;

model::TransformerConfig MakeConfig(bool gpt, int layers) {
  auto config = gpt ? model::MakeGptConfig(layers, 128, 8192, 32768)
                    : model::MakeT5Config(layers, 64, 4096, 16384);
  config.seq_len = kSeqLen;
  return config;
}

/// Largest layer count (hence parameter count) the system can fit at
/// micro-batch 1.
int MaxLayers(bool gpt, bool angel) {
  int best = 0;
  for (int layers = 8; layers <= 220; layers += 2) {
    sim::PlanRequest request;
    request.model = MakeConfig(gpt, layers);
    request.hw = sim::PaperServer();
    request.num_gpus = 8;
    request.micro_batch = 1;
    const bool ok = angel ? sim::PlanAngelPtm(request).ok()
                          : baselines::PlanDeepSpeedLike(request).ok();
    if (ok) {
      best = layers;
    } else {
      break;
    }
  }
  return best;
}

struct Row {
  uint64_t params;
  int batch;
  double gpu_mem_gib;
  double samples_per_sec;
};

Row Measure(bool gpt, bool angel, int layers, int batch) {
  sim::PlanRequest request;
  request.model = MakeConfig(gpt, layers);
  request.hw = sim::PaperServer();
  request.num_gpus = 8;
  request.micro_batch = batch;
  auto plan = angel ? sim::PlanAngelPtm(request)
                    : baselines::PlanDeepSpeedLike(request);
  Row row;
  row.params = model::TotalParamCount(request.model);
  row.batch = batch;
  row.gpu_mem_gib = plan.ok() ? double(plan->peak_gpu_bytes) / util::kGiB : 0;
  row.samples_per_sec = plan.ok() ? sim::SamplesPerSecond(request, *plan) : 0;
  return row;
}

int MaxBatch(bool gpt, bool angel, int layers) {
  sim::PlanRequest request;
  request.model = MakeConfig(gpt, layers);
  request.hw = sim::PaperServer();
  request.num_gpus = 8;
  return angel ? sim::MaxMicroBatchAngelPtm(request, 512)
               : baselines::MaxMicroBatchDeepSpeedLike(request, 512);
}

}  // namespace

int main() {
  bench::PrintHeader("Table 5: max supported model scale on a single server",
                     "Table 5 (Section 6.2)");
  std::cout << "Scale search: grow #layers at fixed dims until OOM "
               "(micro-batch 1, seq "
            << kSeqLen << ").\n\n";

  util::TablePrinter table(
      {"Model", "System", "#Params", "#Batch", "GPU Mem (GiB)", "Samples/s"});
  for (const bool gpt : {true, false}) {
    const char* family = gpt ? "GPT" : "T5";
    const int ds_layers = MaxLayers(gpt, false);
    const int angel_layers = MaxLayers(gpt, true);

    // DeepSpeed-like at its max scale: batch 1 and max batch.
    for (const int batch : {1, MaxBatch(gpt, false, ds_layers)}) {
      const Row row = Measure(gpt, false, ds_layers, batch);
      table.AddRow({family, "DeepSpeed-like",
                    util::FormatParamCount(row.params),
                    std::to_string(row.batch),
                    util::FormatDouble(row.gpu_mem_gib, 0),
                    util::FormatDouble(row.samples_per_sec, 2)});
    }
    // Angel-PTM at DeepSpeed's max scale (max batch), then at its own max
    // scale (batch 1 and max batch) — the paper's row structure.
    {
      const int batch = MaxBatch(gpt, true, ds_layers);
      const Row row = Measure(gpt, true, ds_layers, batch);
      table.AddRow({family, "Angel-PTM", util::FormatParamCount(row.params),
                    std::to_string(row.batch),
                    util::FormatDouble(row.gpu_mem_gib, 0),
                    util::FormatDouble(row.samples_per_sec, 2)});
    }
    const int angel_max_batch = MaxBatch(gpt, true, angel_layers);
    for (const int batch : {1, angel_max_batch}) {
      if (batch == angel_max_batch && angel_max_batch == 1) break;
      const Row row = Measure(gpt, true, angel_layers, batch);
      table.AddRow({family, "Angel-PTM", util::FormatParamCount(row.params),
                    std::to_string(row.batch),
                    util::FormatDouble(row.gpu_mem_gib, 0),
                    util::FormatDouble(row.samples_per_sec, 2)});
    }
    table.AddSeparator();

    const double improvement =
        100.0 * (double(model::TotalParamCount(MakeConfig(gpt, angel_layers))) /
                     double(model::TotalParamCount(MakeConfig(gpt, ds_layers))) -
                 1.0);
    std::cout << family << ": DeepSpeed-like max "
              << util::FormatParamCount(
                     model::TotalParamCount(MakeConfig(gpt, ds_layers)))
              << " (" << ds_layers << " layers), Angel-PTM max "
              << util::FormatParamCount(
                     model::TotalParamCount(MakeConfig(gpt, angel_layers)))
              << " (" << angel_layers << " layers): +"
              << util::FormatDouble(improvement, 1)
              << "% model scale (paper: +" << (gpt ? "96.4" : "114.8")
              << "%).\n";
  }
  std::cout << "\n";
  table.Print(std::cout, "Max supported model scale (8x A100-40GB server)");
  std::cout << "\nShape vs paper: DeepSpeed's ceiling is the pinned-host\n"
               "budget for fp32 optimizer states; Angel-PTM roughly doubles\n"
               "the max scale by dynamically spilling states into spare GPU\n"
               "memory, and sustains higher samples/s at equal scale.\n";
  return 0;
}
