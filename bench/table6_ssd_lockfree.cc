// Regenerates the paper's Table 6: training extreme-scale T5-MoE models
// with fp32 states on SSD, with and without the Lock-Free Updating
// Mechanism (Algorithm 2).
//
// Two parts:
//  (1) Simulated cluster throughput — T5-MoE-1T on 64 GPUs and T5-MoE-10T
//      on 576 GPUs (the paper's configurations), sync vs lock-free. Paper:
//      37.26 samples/s (1T@64), 317.82 -> 942.31 samples/s (10T@576,
//      2.96x from lock-free).
//  (2) REAL convergence — an actual mixed-precision model trained through
//      the real lock-free updater with fp32 masters on a bandwidth-
//      throttled file-backed SSD tier. This reproduces the valid-loss
//      column's claim: asynchronous staleness does not harm convergence,
//      while throughput multiplies.

#include <unistd.h>

#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>

#include "bench/bench_util.h"
#include "dist/expert_parallel.h"
#include "model/model_zoo.h"
#include "sim/planner.h"
#include "train/mlp.h"
#include "train/trainer.h"
#include "util/table_printer.h"
#include "util/units.h"

namespace {

using namespace angelptm;

/// Host-cache miss rate of the updating thread calibrated so the 10T
/// lock-free speedup lands near the paper's 2.96x (see EXPERIMENTS.md: the
/// paper's per-iteration SSD traffic is not derivable from its stated
/// numbers, so this hit rate is the one calibrated constant here).
constexpr double kSsdStateFraction = 0.008;

void SimulatedPart() {
  util::TablePrinter table({"System", "#Params", "#GPUs", "Samples/s",
                            "GPU idle", "Update lag"});
  struct Config {
    const char* label;
    int gpus;
    int experts_per_gpu;
    bool lock_free;
  };
  // 29 experts/GPU/layer on 64 GPUs ~= 1T params; 32 on 576 ~= 10T.
  const Config configs[] = {
      {"Angel-PTM", 64, 29, false},
      {"Angel-PTM", 576, 32, false},
      {"+ Lock-Free", 576, 32, true},
  };
  double sync_576 = 0, lockfree_576 = 0;
  for (const Config& c : configs) {
    dist::ExpertParallelRequest request;
    request.model = *model::FindModel("T5-MoE-1.2T");
    request.hw = sim::PaperServer();
    request.num_gpus = c.gpus;
    request.experts_per_gpu = c.experts_per_gpu;
    request.micro_batch = 32;
    request.use_ssd = true;
    request.ssd_state_fraction = kSsdStateFraction;
    request.lock_free = c.lock_free;
    auto plan = dist::PlanExpertParallel(request);
    if (!plan.ok()) {
      table.AddRow({c.label, "-", std::to_string(c.gpus),
                    plan.status().ToString(), "-", "-"});
      continue;
    }
    const sim::IterationResult result = sim::SimulateIteration(plan->spec);
    const double throughput =
        double(c.gpus) * request.micro_batch / result.iteration_seconds;
    if (c.gpus == 576) (c.lock_free ? lockfree_576 : sync_576) = throughput;
    table.AddRow(
        {c.label,
         util::FormatParamCount(dist::ExpertParallelModelParams(request)),
         std::to_string(c.gpus), util::FormatDouble(throughput, 2),
         util::FormatDouble(100.0 * result.GpuIdleFraction(), 0) + "%",
         util::FormatDouble(result.optimizer_lag_seconds, 1) + " s"});
  }
  table.Print(std::cout, "Simulated cluster throughput with SSD states");
  if (sync_576 > 0 && lockfree_576 > 0) {
    std::cout << "Lock-free speedup at 10T/576 GPUs: "
              << util::FormatDouble(lockfree_576 / sync_576, 2)
              << "x (paper: 2.96x).\n";
  }
  std::cout << "\n";
}

void RealConvergencePart(const std::string& json_path) {
  std::cout << "Real training: MLP 32-256-256-8, batch 64, fp32 masters on a\n"
            << "file-backed SSD tier throttled to 200 MB/s (scaled-down\n"
            << "analog of the 3.5 GB/s SSD vs the model-state volume).\n\n";
  train::SyntheticRegression dataset(32, 64, 8, 99);
  std::ostringstream json;
  json << std::setprecision(6) << std::fixed;
  util::TablePrinter table({"Mode", "steps/s", "final train loss",
                            "valid loss", "updates", "peak staleness"});
  double sync_rate = 0, lockfree_rate = 0;
  double sync_loss = 0, lockfree_loss = 0;
  for (const bool lock_free : {false, true}) {
    mem::HierarchicalMemoryOptions memory_options;
    memory_options.page_bytes = 64 * 1024;
    memory_options.gpu_capacity_bytes = 8ull << 20;
    memory_options.cpu_capacity_bytes = 64ull << 20;
    memory_options.ssd_capacity_bytes = 64ull << 20;
    memory_options.ssd_path = "/tmp/angelptm_table6_" +
                              std::to_string(::getpid()) +
                              (lock_free ? "_lf" : "_sync") + ".bin";
    memory_options.ssd_bandwidth_bytes_per_sec = 200e6;
    mem::HierarchicalMemory memory(memory_options);
    core::Allocator allocator(&memory);

    const train::MlpModel model({{32, 256, 256, 8}});
    train::TrainerOptions options;
    options.adam.learning_rate = 3e-3;
    options.batch_size = 64;
    options.seed = 7;
    options.master_device = mem::DeviceKind::kSsd;
    options.lock_free = lock_free;
    train::Trainer trainer(&allocator, &model, options);
    ANGEL_CHECK_OK(trainer.Init());
    auto report = trainer.Train(dataset, 400);
    ANGEL_CHECK_OK(report.status());
    (lock_free ? lockfree_rate : sync_rate) = report->steps_per_second;
    (lock_free ? lockfree_loss : sync_loss) = report->validation_loss;
    table.AddRow({lock_free ? "+ Lock-Free" : "Synchronous (SSD-bound)",
                  util::FormatDouble(report->steps_per_second, 0),
                  util::FormatDouble(report->final_train_loss, 4),
                  util::FormatDouble(report->validation_loss, 4),
                  std::to_string(report->telemetry.updater.updates_applied),
                  std::to_string(report->telemetry.max_pending_batches)});
    json << (lock_free ? ",\n" : "") << "    {\"mode\": \""
         << (lock_free ? "lock_free" : "synchronous")
         << "\", \"steps_per_second\": " << report->steps_per_second
         << ", \"validation_loss\": " << report->validation_loss
         << ",\n     \"telemetry\": "
         << bench::TelemetryJson(report->telemetry) << "}";
  }
  table.Print(std::cout, "Real lock-free training (400 steps each)");
  std::cout << "Throughput gain: "
            << util::FormatDouble(lockfree_rate / sync_rate, 2)
            << "x; valid loss " << util::FormatDouble(sync_loss, 4) << " -> "
            << util::FormatDouble(lockfree_loss, 4)
            << " (paper: 2.96x speedup, 0.853 -> 0.861: quality preserved\n"
               "within noise while the GPU never blocks on the optimizer).\n";

  std::ofstream out(json_path);
  out << "{\n  \"bench\": \"table6_ssd_lockfree\",\n  \"modes\": [\n"
      << json.str() << "\n  ],\n  \"metrics\": " << bench::MetricsJson()
      << "\n}\n";
  if (out.flush()) {
    std::cout << "Wrote " << json_path << "\n";
  } else {
    std::cerr << "warning: could not write " << json_path << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::PrintHeader(
      "Table 6: SSD-backed extreme scale + Lock-Free Updating",
      "Table 6 (Section 6.5)");
  SimulatedPart();
  RealConvergencePart(argc > 1 ? argv[1] : "BENCH_table6.json");
  return 0;
}
