#include <gtest/gtest.h>

#include "train/simd/dispatch.h"
#include "train/simd/kernels_avx2.h"
#include "train/simd/scratch.h"

namespace angelptm::simd {
namespace {

TEST(SimdDispatchTest, DispatchReturnsSupportedPath) {
  const IsaPath path = Dispatch();
  EXPECT_TRUE(Supported(path))
      << "Dispatch() resolved to " << IsaPathName(path)
      << " which this host/build cannot execute";
}

TEST(SimdDispatchTest, ScalarAlwaysSupported) {
  EXPECT_TRUE(Supported(IsaPath::kScalar));
}

TEST(SimdDispatchTest, Avx2SupportRequiresCompiledKernels) {
  // Supported(kAvx2) may be false on a capable CPU (stub build) but can
  // never be true without the real kernels in the binary.
  if (Supported(IsaPath::kAvx2)) {
    EXPECT_TRUE(avx2::Compiled());
  }
}

TEST(SimdDispatchTest, ScopedForceOverridesAndRestores) {
  const IsaPath ambient = Dispatch();
  {
    ScopedForceIsa force(IsaPath::kScalar);
    EXPECT_EQ(Dispatch(), IsaPath::kScalar);
    {
      // Nested overrides: innermost wins, each restores its predecessor.
      ScopedForceIsa inner(IsaPath::kAvx2);
      EXPECT_EQ(Dispatch(), IsaPath::kAvx2);
    }
    EXPECT_EQ(Dispatch(), IsaPath::kScalar);
  }
  EXPECT_EQ(Dispatch(), ambient);
}

TEST(SimdDispatchTest, PathNamesRoundTrip) {
  EXPECT_STREQ(IsaPathName(IsaPath::kScalar), "scalar");
  EXPECT_STREQ(IsaPathName(IsaPath::kAvx2), "avx2");
}

TEST(SimdScratchTest, GrowsAndReusesPerSlot) {
  float* p1 = ThreadScratch(ScratchSlot::kTile, 100);
  const size_t cap1 = ThreadScratchCapacity(ScratchSlot::kTile);
  EXPECT_GE(cap1, 100u);
  // Alignment: the packed-panel loads in the micro-kernel are aligned.
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p1) % 64, 0u);

  // Smaller request: same buffer, no shrink — the no-allocation
  // steady state the GEMM inner loop relies on.
  float* p2 = ThreadScratch(ScratchSlot::kTile, 10);
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(ThreadScratchCapacity(ScratchSlot::kTile), cap1);

  // Larger request grows geometrically.
  ThreadScratch(ScratchSlot::kTile, cap1 + 1);
  EXPECT_GE(ThreadScratchCapacity(ScratchSlot::kTile), cap1 + 1);

  // Slots are independent buffers.
  float* pa = ThreadScratch(ScratchSlot::kPackA, 64);
  float* pb = ThreadScratch(ScratchSlot::kPackB, 64);
  EXPECT_NE(pa, pb);
}

}  // namespace
}  // namespace angelptm::simd
