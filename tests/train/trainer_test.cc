#include "train/mlp.h"
#include "train/trainer.h"

#include <unistd.h>

#include <string>

#include <gtest/gtest.h>

#include "util/fault_injector.h"

namespace angelptm::train {
namespace {

mem::HierarchicalMemoryOptions MemoryOptions(const char* tag) {
  mem::HierarchicalMemoryOptions o;
  o.page_bytes = 64 * 1024;
  o.gpu_capacity_bytes = 8ull << 20;
  o.cpu_capacity_bytes = 64ull << 20;
  o.ssd_capacity_bytes = 64ull << 20;
  o.ssd_path = std::string("/tmp/angelptm_trainer_test_") + tag + "_" +
               std::to_string(::getpid()) + ".bin";
  return o;
}

const MlpModel& TestModel() {
  static const MlpModel* model = new MlpModel({{16, 64, 64, 4}});
  return *model;
}

TrainerOptions BaseOptions() {
  TrainerOptions options;
  options.adam.learning_rate = 3e-3;
  options.batch_size = 32;
  options.seed = 7;
  return options;
}

TEST(TrainerTest, SynchronousTrainingConverges) {
  mem::HierarchicalMemory memory(MemoryOptions("sync"));
  core::Allocator allocator(&memory);
  Trainer trainer(&allocator, &TestModel(), BaseOptions());
  ASSERT_TRUE(trainer.Init().ok());
  SyntheticRegression dataset(16, 32, 4, 99);
  auto report = trainer.Train(dataset, 300);
  ASSERT_TRUE(report.ok());
  EXPECT_LT(report->final_train_loss, report->losses.front() / 5);
  EXPECT_LT(report->validation_loss, 0.2);
  // One per layer per step.
  EXPECT_EQ(report->telemetry.updater.updates_applied, 3u * 300);
  EXPECT_EQ(report->telemetry.max_pending_batches, 0u);
}

TEST(TrainerTest, LockFreeMatchesSynchronousLoss) {
  // The Table 6 convergence claim: asynchronous staleness does not harm
  // final quality materially.
  SyntheticRegression dataset(16, 32, 4, 99);
  double sync_loss, lockfree_loss;
  {
    mem::HierarchicalMemory memory(MemoryOptions("cmp_sync"));
    core::Allocator allocator(&memory);
    Trainer trainer(&allocator, &TestModel(), BaseOptions());
    ASSERT_TRUE(trainer.Init().ok());
    auto report = trainer.Train(dataset, 400);
    ASSERT_TRUE(report.ok());
    sync_loss = report->validation_loss;
  }
  {
    mem::HierarchicalMemory memory(MemoryOptions("cmp_lf"));
    core::Allocator allocator(&memory);
    TrainerOptions options = BaseOptions();
    options.lock_free = true;
    Trainer trainer(&allocator, &TestModel(), options);
    ASSERT_TRUE(trainer.Init().ok());
    auto report = trainer.Train(dataset, 400);
    ASSERT_TRUE(report.ok());
    lockfree_loss = report->validation_loss;
    EXPECT_GT(report->telemetry.updater.updates_applied, 0u);
  }
  EXPECT_LT(lockfree_loss, 0.25);
  // Within a factor of ~4 of the synchronous loss (both near-converged).
  EXPECT_LT(lockfree_loss, sync_loss * 4 + 0.05);
}

TEST(TrainerTest, LockFreeObservesStaleness) {
  mem::HierarchicalMemory memory(MemoryOptions("stale"));
  core::Allocator allocator(&memory);
  TrainerOptions options = BaseOptions();
  options.lock_free = true;
  Trainer trainer(&allocator, &TestModel(), options);
  ASSERT_TRUE(trainer.Init().ok());
  SyntheticRegression dataset(16, 32, 4, 99);
  auto report = trainer.Train(dataset, 200);
  ASSERT_TRUE(report.ok());
  // The compute loop runs ahead of the updater at least sometimes.
  EXPECT_GT(report->telemetry.max_pending_batches, 0u);
  // Drained at the end: everything applied.
  EXPECT_EQ(trainer.updater()->Snapshot().pending_grad_batches, 0u);
}

TEST(TrainerTest, SsdMasterStatesTrainForReal) {
  // fp32 master states round-trip through the file-backed SSD tier on
  // every update (§6.5's extreme-scale mode, unthrottled here).
  mem::HierarchicalMemory memory(MemoryOptions("ssd"));
  core::Allocator allocator(&memory);
  TrainerOptions options = BaseOptions();
  options.master_device = mem::DeviceKind::kSsd;
  Trainer trainer(&allocator, &TestModel(), options);
  ASSERT_TRUE(trainer.Init().ok());
  SyntheticRegression dataset(16, 32, 4, 99);
  auto report = trainer.Train(dataset, 150);
  ASSERT_TRUE(report.ok());
  EXPECT_LT(report->final_train_loss, report->losses.front());
  // Real bytes hit the disk.
  EXPECT_GT(memory.ssd()->Snapshot().bytes_written, 0u);
  EXPECT_GT(memory.ssd()->Snapshot().bytes_read, 0u);
  // The report carries the same telemetry without poking getters.
  EXPECT_GT(report->telemetry.ssd.bytes_written, 0u);
  EXPECT_TRUE(report->telemetry.has_ssd);
}

TEST(TrainerTest, DeterministicAcrossRuns) {
  SyntheticRegression dataset(16, 32, 4, 99);
  double first = 0, second = 0;
  for (int run = 0; run < 2; ++run) {
    mem::HierarchicalMemory memory(
        MemoryOptions(run == 0 ? "det0" : "det1"));
    core::Allocator allocator(&memory);
    Trainer trainer(&allocator, &TestModel(), BaseOptions());
    ASSERT_TRUE(trainer.Init().ok());
    auto report = trainer.Train(dataset, 50);
    ASSERT_TRUE(report.ok());
    (run == 0 ? first : second) = report->final_train_loss;
  }
  EXPECT_EQ(first, second);  // Synchronous mode is exactly reproducible.
}

TEST(TrainerTest, GradAccumulationConverges) {
  mem::HierarchicalMemory memory(MemoryOptions("accum"));
  core::Allocator allocator(&memory);
  TrainerOptions options = BaseOptions();
  options.grad_accumulation = 4;
  Trainer trainer(&allocator, &TestModel(), options);
  ASSERT_TRUE(trainer.Init().ok());
  SyntheticRegression dataset(16, 32, 4, 99);
  auto report = trainer.Train(dataset, 400);
  ASSERT_TRUE(report.ok());
  EXPECT_LT(report->validation_loss, 0.3);
  // One optimizer pass per 4 steps (3 layers each), plus the final flush
  // which finds nothing pending.
  EXPECT_EQ(report->telemetry.updater.updates_applied, 3u * 100);
}

TEST(TrainerTest, Bf16ComputeConvergesLikeFp32) {
  // §6.1: models train with bf16 compute over fp32 master states. Rounding
  // every boundary through bfloat16 must not break convergence.
  SyntheticRegression dataset(16, 32, 4, 99);
  double fp32_loss = 0, bf16_loss = 0;
  for (const ComputePrecision precision :
       {ComputePrecision::kFp32, ComputePrecision::kBf16}) {
    mem::HierarchicalMemory memory(
        MemoryOptions(precision == ComputePrecision::kFp32 ? "fp32" : "bf16"));
    core::Allocator allocator(&memory);
    TrainerOptions options = BaseOptions();
    options.compute_precision = precision;
    Trainer trainer(&allocator, &TestModel(), options);
    ASSERT_TRUE(trainer.Init().ok());
    auto report = trainer.Train(dataset, 300);
    ASSERT_TRUE(report.ok());
    (precision == ComputePrecision::kFp32 ? fp32_loss : bf16_loss) =
        report->validation_loss;
  }
  EXPECT_LT(bf16_loss, 0.25);
  // bf16 result differs (it really rounded) but stays in the same band.
  EXPECT_NE(bf16_loss, fp32_loss);
  EXPECT_LT(bf16_loss, fp32_loss * 5 + 0.05);
}

/// End-to-end acceptance for the failure-propagation work: a permanently
/// failing SSD write must turn into a Train() error within the drain
/// deadline, never a hang or a silently-diverging run.
class TrainerFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { util::FaultInjector::Instance().Reset(); }
  void TearDown() override { util::FaultInjector::Instance().Reset(); }
};

TEST_F(TrainerFaultTest, TrainerSurfacesSsdWriteFailure) {
  mem::HierarchicalMemory memory(MemoryOptions("fault"));
  core::Allocator allocator(&memory);
  TrainerOptions options = BaseOptions();
  options.lock_free = true;
  options.master_device = mem::DeviceKind::kSsd;
  options.drain_deadline_ms = 5000;
  Trainer trainer(&allocator, &TestModel(), options);
  ASSERT_TRUE(trainer.Init().ok());  // Masters reach the SSD pre-fault.

  util::FaultRule rule;
  rule.permanent = true;
  util::FaultInjector::Instance().Arm("ssd.pwrite", rule);

  SyntheticRegression dataset(16, 32, 4, 99);
  auto report = trainer.Train(dataset, 50);
  ASSERT_FALSE(report.ok());
  // The first master write-back failure poisons the updater; Train observes
  // it either through a fast-failing offload or the final drain.
  EXPECT_TRUE(report.status().IsIoError()) << report.status();
  EXPECT_TRUE(trainer.updater()->status().IsIoError());
}

TEST(TrainerTest, TrainBeforeInitFails) {
  mem::HierarchicalMemory memory(MemoryOptions("noinit"));
  core::Allocator allocator(&memory);
  Trainer trainer(&allocator, &TestModel(), BaseOptions());
  SyntheticRegression dataset(16, 32, 4, 99);
  EXPECT_EQ(trainer.Train(dataset, 1).status().code(),
            util::StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace angelptm::train
