#include "train/mlp.h"

#include <vector>

#include <gtest/gtest.h>

#include "train/kernels.h"
#include "util/random.h"

namespace angelptm::train {
namespace {

TEST(MlpTest, LayerParamCounts) {
  MlpModel model({{4, 8, 2}});
  EXPECT_EQ(model.num_layers(), 2);
  EXPECT_EQ(model.LayerParamCount(0), 4u * 8 + 8);
  EXPECT_EQ(model.LayerParamCount(1), 8u * 2 + 2);
  EXPECT_EQ(model.in_dim(), 4u);
  EXPECT_EQ(model.out_dim(), 2u);
}

TEST(MlpTest, InitHasGaussianWeightsZeroBias) {
  MlpModel model({{64, 32, 1}});
  util::Rng rng(1);
  const auto params = model.InitLayerParams(0, &rng);
  ASSERT_EQ(params.size(), 64u * 32 + 32);
  double sum_sq = 0;
  for (size_t i = 0; i < 64 * 32; ++i) sum_sq += double(params[i]) * params[i];
  // He init: variance 2/64.
  EXPECT_NEAR(sum_sq / (64 * 32), 2.0 / 64, 0.01);
  for (size_t i = 64 * 32; i < params.size(); ++i) {
    EXPECT_EQ(params[i], 0.0f);
  }
}

TEST(MlpTest, HeadIsLinear) {
  // A head layer must be exactly x*W + b (no GeLU).
  MlpModel model({{2, 3}});
  const std::vector<float> params = {1, 0, 0,  0, 1, 0,  0.5f, -0.5f, 2.0f};
  const std::vector<float> in = {3.0f, 4.0f};
  std::vector<float> out;
  model.Forward(0, params.data(), in, 1, &out, nullptr);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_FLOAT_EQ(out[0], 3.5f);
  EXPECT_FLOAT_EQ(out[1], 3.5f);
  EXPECT_FLOAT_EQ(out[2], 2.0f);
}

TEST(MlpTest, HiddenLayerAppliesGelu) {
  MlpModel model({{1, 1, 1}});
  // Layer 0: w=1, b=0 -> output gelu(x).
  const std::vector<float> params = {1.0f, 0.0f};
  const std::vector<float> in = {-1.0f};
  std::vector<float> out;
  model.Forward(0, params.data(), in, 1, &out, nullptr);
  EXPECT_NEAR(out[0], -0.1588, 1e-3);  // gelu(-1)
}

TEST(MlpTest, FullGradientMatchesFiniteDifference) {
  MlpModel model({{3, 5, 2}});
  util::Rng rng(11);
  std::vector<std::vector<float>> params;
  for (int l = 0; l < model.num_layers(); ++l) {
    params.push_back(model.InitLayerParams(l, &rng));
  }
  const size_t batch = 4;
  std::vector<float> x(batch * 3), target(batch * 2);
  rng.FillGaussian(&x, 1.0);
  rng.FillGaussian(&target, 1.0);

  auto loss_fn = [&](const std::vector<std::vector<float>>& p) {
    std::vector<float> acts = x;
    for (int l = 0; l < model.num_layers(); ++l) {
      std::vector<float> next;
      model.Forward(l, p[l].data(), acts, batch, &next, nullptr);
      acts = std::move(next);
    }
    std::vector<float> grad(acts.size());
    return MseLoss(acts.data(), target.data(), grad.data(), acts.size());
  };

  // Analytic gradients.
  std::vector<LayerStash> stash(model.num_layers());
  std::vector<float> acts = x;
  for (int l = 0; l < model.num_layers(); ++l) {
    std::vector<float> next;
    model.Forward(l, params[l].data(), acts, batch, &next, &stash[l]);
    acts = std::move(next);
  }
  std::vector<float> grad(acts.size());
  MseLoss(acts.data(), target.data(), grad.data(), acts.size());
  std::vector<std::vector<float>> param_grads(model.num_layers());
  for (int l = model.num_layers() - 1; l >= 0; --l) {
    std::vector<float> grad_in;
    model.Backward(l, params[l].data(), stash[l], grad, batch, &grad_in,
                   &param_grads[l]);
    grad = std::move(grad_in);
  }

  // Compare against central differences on every parameter.
  const float eps = 1e-3f;
  for (int l = 0; l < model.num_layers(); ++l) {
    for (size_t i = 0; i < params[l].size(); ++i) {
      auto perturbed = params;
      perturbed[l][i] += eps;
      const double up = loss_fn(perturbed);
      perturbed[l][i] -= 2 * eps;
      const double down = loss_fn(perturbed);
      const double numeric = (up - down) / (2 * eps);
      EXPECT_NEAR(param_grads[l][i], numeric, 2e-2)
          << "layer " << l << " param " << i;
    }
  }
}

TEST(MlpTest, InputGradientMatchesFiniteDifference) {
  MlpModel model({{4, 6, 1}});
  util::Rng rng(13);
  std::vector<std::vector<float>> params;
  for (int l = 0; l < model.num_layers(); ++l) {
    params.push_back(model.InitLayerParams(l, &rng));
  }
  const size_t batch = 2;
  std::vector<float> x(batch * 4), target(batch * 1);
  rng.FillGaussian(&x, 1.0);
  rng.FillGaussian(&target, 1.0);

  auto loss_of_input = [&](const std::vector<float>& input) {
    std::vector<float> acts = input;
    for (int l = 0; l < model.num_layers(); ++l) {
      std::vector<float> next;
      model.Forward(l, params[l].data(), acts, batch, &next, nullptr);
      acts = std::move(next);
    }
    std::vector<float> grad(acts.size());
    return MseLoss(acts.data(), target.data(), grad.data(), acts.size());
  };

  std::vector<LayerStash> stash(model.num_layers());
  std::vector<float> acts = x;
  for (int l = 0; l < model.num_layers(); ++l) {
    std::vector<float> next;
    model.Forward(l, params[l].data(), acts, batch, &next, &stash[l]);
    acts = std::move(next);
  }
  std::vector<float> grad(acts.size());
  MseLoss(acts.data(), target.data(), grad.data(), acts.size());
  for (int l = model.num_layers() - 1; l >= 0; --l) {
    std::vector<float> grad_in, param_grads;
    model.Backward(l, params[l].data(), stash[l], grad, batch, &grad_in,
                   &param_grads);
    grad = std::move(grad_in);
  }

  const float eps = 1e-3f;
  for (size_t i = 0; i < x.size(); ++i) {
    auto xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    const double numeric = (loss_of_input(xp) - loss_of_input(xm)) / (2 * eps);
    EXPECT_NEAR(grad[i], numeric, 2e-2) << "input " << i;
  }
}

}  // namespace
}  // namespace angelptm::train
