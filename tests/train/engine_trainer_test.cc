#include "train/engine_trainer.h"

#include <unistd.h>

#include <string>

#include <gtest/gtest.h>

#include "core/allocator.h"
#include "train/mlp.h"
#include "train/transformer.h"

namespace angelptm::train {
namespace {

EngineTrainerOptions BaseOptions(uint64_t gpu_pages = 16) {
  EngineTrainerOptions options;
  options.engine.memory.page_bytes = 16 * 1024;
  options.engine.memory.gpu_capacity_bytes = gpu_pages * 16 * 1024;
  options.engine.memory.cpu_capacity_bytes = 32ull << 20;
  options.engine.adam.learning_rate = 3e-3;
  options.batch_size = 32;
  options.seed = 7;
  return options;
}

TEST(EngineTrainerTest, ConvergesWithActivationOffloading) {
  const MlpModel model({{16, 64, 64, 4}});
  EngineTrainer trainer(&model, BaseOptions());
  ASSERT_TRUE(trainer.Init().ok());
  SyntheticRegression dataset(16, 32, 4, 99);
  auto report = trainer.Train(dataset, 250);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_LT(report->validation_loss, 0.25);
  // The engine really scheduled: a schedule exists and prefetches hit.
  ASSERT_NE(trainer.engine()->schedule(), nullptr);
  EXPECT_GT(trainer.engine()->prefetch_hits(), 0u);
}

TEST(EngineTrainerTest, MatchesDirectTrainerExactly) {
  // The engine path reads the same fp16 buffers and offloads the same
  // gradients as the direct trainer: with identical seeds and batches, the
  // synchronous results must be bit-identical (fp16->fp32->fp16 staging is
  // the identity). Activation offloading is off so backward sees the exact
  // forward stash in both.
  SyntheticRegression dataset(16, 32, 4, 99);
  const MlpModel model({{16, 32, 4}});

  EngineTrainerOptions engine_options = BaseOptions();
  engine_options.offload_activations = false;
  EngineTrainer engine_trainer(&model, engine_options);
  ASSERT_TRUE(engine_trainer.Init().ok());
  auto engine_report = engine_trainer.Train(dataset, 60);
  ASSERT_TRUE(engine_report.ok());

  mem::HierarchicalMemoryOptions memory_options;
  memory_options.page_bytes = 16 * 1024;
  memory_options.gpu_capacity_bytes = 4ull << 20;
  memory_options.cpu_capacity_bytes = 32ull << 20;
  mem::HierarchicalMemory memory(memory_options);
  core::Allocator allocator(&memory);
  TrainerOptions direct_options;
  direct_options.adam.learning_rate = 3e-3;
  direct_options.batch_size = 32;
  direct_options.seed = 7;
  Trainer direct_trainer(&allocator, &model, direct_options);
  ASSERT_TRUE(direct_trainer.Init().ok());
  auto direct_report = direct_trainer.Train(dataset, 60);
  ASSERT_TRUE(direct_report.ok());

  ASSERT_EQ(engine_report->losses.size(), direct_report->losses.size());
  for (size_t i = 0; i < engine_report->losses.size(); ++i) {
    EXPECT_EQ(engine_report->losses[i], direct_report->losses[i]) << i;
  }
  EXPECT_EQ(engine_report->validation_loss, direct_report->validation_loss);
}

TEST(EngineTrainerTest, OffloadedActivationsStayCloseToUnoffloaded) {
  // fp16 boundary stashes + recompute vs exact host stash: small, bounded
  // quality difference.
  SyntheticRegression dataset(16, 32, 4, 99);
  const MlpModel model({{16, 64, 4}});
  double offloaded = 0, exact = 0;
  for (const bool offload : {true, false}) {
    EngineTrainerOptions options = BaseOptions();
    options.offload_activations = offload;
    EngineTrainer trainer(&model, options);
    ASSERT_TRUE(trainer.Init().ok());
    auto report = trainer.Train(dataset, 200);
    ASSERT_TRUE(report.ok());
    (offload ? offloaded : exact) = report->validation_loss;
  }
  EXPECT_LT(offloaded, 0.3);
  EXPECT_LT(offloaded, exact * 5 + 0.05);
}

TEST(EngineTrainerTest, LockFreeEngineTraining) {
  const MlpModel model({{16, 64, 4}});
  EngineTrainerOptions options = BaseOptions();
  options.engine.lock_free = true;
  EngineTrainer trainer(&model, options);
  ASSERT_TRUE(trainer.Init().ok());
  SyntheticRegression dataset(16, 32, 4, 99);
  auto report = trainer.Train(dataset, 150);
  ASSERT_TRUE(report.ok());
  EXPECT_LT(report->validation_loss, 0.6);
  EXPECT_GT(report->telemetry.updater.updates_applied, 0u);
}

TEST(EngineTrainerTest, TransformerThroughFullStack) {
  TransformerConfig config;
  config.seq_len = 4;
  config.d_model = 8;
  config.num_heads = 2;
  config.d_ffn = 16;
  config.num_blocks = 2;
  config.out_dim = 2;
  const TinyTransformer model(config);
  EngineTrainerOptions options = BaseOptions();
  options.batch_size = 8;
  EngineTrainer trainer(&model, options);
  ASSERT_TRUE(trainer.Init().ok());
  SyntheticRegression dataset(model.InputSize(), 16, model.OutputSize(), 99);
  auto report = trainer.Train(dataset, 100);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_LT(report->final_train_loss, report->losses.front());
}

TEST(EngineTrainerTest, TrainBeforeInitFails) {
  const MlpModel model({{4, 4}});
  EngineTrainer trainer(&model, BaseOptions());
  SyntheticRegression dataset(4, 8, 4, 99);
  EXPECT_EQ(trainer.Train(dataset, 1).status().code(),
            util::StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace angelptm::train
