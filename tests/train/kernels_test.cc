#include "train/kernels.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

namespace angelptm::train {
namespace {

std::vector<float> RandomVector(util::Rng* rng, size_t n,
                                double stddev = 1.0) {
  std::vector<float> v(n);
  rng->FillGaussian(&v, stddev);
  return v;
}

TEST(GemmTest, SmallKnownProduct) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
  const std::vector<float> a = {1, 2, 3, 4};
  const std::vector<float> b = {5, 6, 7, 8};
  std::vector<float> c(4);
  Gemm(a.data(), b.data(), c.data(), 2, 2, 2);
  EXPECT_FLOAT_EQ(c[0], 19);
  EXPECT_FLOAT_EQ(c[1], 22);
  EXPECT_FLOAT_EQ(c[2], 43);
  EXPECT_FLOAT_EQ(c[3], 50);
}

TEST(GemmTest, RectangularShapes) {
  util::Rng rng(1);
  const size_t m = 3, k = 5, n = 4;
  const auto a = RandomVector(&rng, m * k);
  const auto b = RandomVector(&rng, k * n);
  std::vector<float> c(m * n);
  Gemm(a.data(), b.data(), c.data(), m, k, n);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double expected = 0;
      for (size_t p = 0; p < k; ++p) expected += double(a[i * k + p]) * b[p * n + j];
      EXPECT_NEAR(c[i * n + j], expected, 1e-4);
    }
  }
}

TEST(GemmTest, TransAMatchesExplicitTranspose) {
  util::Rng rng(2);
  const size_t m = 4, k = 6, n = 3;
  const auto a = RandomVector(&rng, k * m);  // k x m
  const auto b = RandomVector(&rng, k * n);
  std::vector<float> at(m * k);
  for (size_t p = 0; p < k; ++p) {
    for (size_t i = 0; i < m; ++i) at[i * k + p] = a[p * m + i];
  }
  std::vector<float> c1(m * n), c2(m * n);
  GemmTransA(a.data(), b.data(), c1.data(), m, k, n);
  Gemm(at.data(), b.data(), c2.data(), m, k, n);
  for (size_t i = 0; i < m * n; ++i) EXPECT_NEAR(c1[i], c2[i], 1e-4);
}

TEST(GemmTest, TransBMatchesExplicitTranspose) {
  util::Rng rng(3);
  const size_t m = 4, k = 6, n = 3;
  const auto a = RandomVector(&rng, m * k);
  const auto b = RandomVector(&rng, n * k);  // n x k
  std::vector<float> bt(k * n);
  for (size_t j = 0; j < n; ++j) {
    for (size_t p = 0; p < k; ++p) bt[p * n + j] = b[j * k + p];
  }
  std::vector<float> c1(m * n), c2(m * n);
  GemmTransB(a.data(), b.data(), c1.data(), m, k, n);
  Gemm(a.data(), bt.data(), c2.data(), m, k, n);
  for (size_t i = 0; i < m * n; ++i) EXPECT_NEAR(c1[i], c2[i], 1e-4);
}

TEST(BiasTest, AddAndBackward) {
  std::vector<float> y = {1, 2, 3, 4, 5, 6};  // 2 x 3
  const std::vector<float> bias = {10, 20, 30};
  AddBias(y.data(), bias.data(), 2, 3);
  EXPECT_FLOAT_EQ(y[0], 11);
  EXPECT_FLOAT_EQ(y[5], 36);

  const std::vector<float> grad = {1, 2, 3, 4, 5, 6};
  std::vector<float> grad_bias(3);
  BiasBackward(grad.data(), grad_bias.data(), 2, 3);
  EXPECT_FLOAT_EQ(grad_bias[0], 5);   // 1 + 4
  EXPECT_FLOAT_EQ(grad_bias[1], 7);   // 2 + 5
  EXPECT_FLOAT_EQ(grad_bias[2], 9);   // 3 + 6
}

TEST(GeluTest, KnownValues) {
  const std::vector<float> x = {0.0f, 1.0f, -1.0f, 3.0f};
  std::vector<float> y(x.size());
  Gelu(x.data(), y.data(), x.size());
  EXPECT_NEAR(y[0], 0.0, 1e-6);
  EXPECT_NEAR(y[1], 0.8412, 1e-3);
  EXPECT_NEAR(y[2], -0.1588, 1e-3);
  EXPECT_NEAR(y[3], 2.9964, 1e-3);
}

TEST(GeluTest, BackwardMatchesFiniteDifference) {
  util::Rng rng(4);
  const auto x = RandomVector(&rng, 32);
  std::vector<float> dy(32, 1.0f);
  std::vector<float> dx(32);
  GeluBackward(x.data(), dy.data(), dx.data(), 32);
  const float eps = 1e-3f;
  for (size_t i = 0; i < 32; ++i) {
    std::vector<float> xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    std::vector<float> yp(32), ym(32);
    Gelu(xp.data(), yp.data(), 32);
    Gelu(xm.data(), ym.data(), 32);
    const double numeric = (yp[i] - ym[i]) / (2 * eps);
    EXPECT_NEAR(dx[i], numeric, 1e-2) << "at " << i;
  }
}

TEST(LayerNormTest, NormalizesRows) {
  util::Rng rng(5);
  const size_t m = 4, n = 16;
  const auto x = RandomVector(&rng, m * n, 3.0);
  std::vector<float> gamma(n, 1.0f), beta(n, 0.0f);
  std::vector<float> y(m * n), mean(m), rstd(m);
  LayerNorm(x.data(), gamma.data(), beta.data(), y.data(), mean.data(),
            rstd.data(), m, n);
  for (size_t i = 0; i < m; ++i) {
    double sum = 0, sum_sq = 0;
    for (size_t j = 0; j < n; ++j) {
      sum += y[i * n + j];
      sum_sq += double(y[i * n + j]) * y[i * n + j];
    }
    EXPECT_NEAR(sum / n, 0.0, 1e-4);
    EXPECT_NEAR(sum_sq / n, 1.0, 1e-2);
  }
}

TEST(LayerNormTest, BackwardMatchesFiniteDifference) {
  util::Rng rng(6);
  const size_t m = 2, n = 8;
  const auto x = RandomVector(&rng, m * n);
  auto gamma = RandomVector(&rng, n, 0.5);
  for (auto& g : gamma) g += 1.0f;
  const auto beta = RandomVector(&rng, n, 0.1);
  const auto dy = RandomVector(&rng, m * n);

  std::vector<float> y(m * n), mean(m), rstd(m);
  LayerNorm(x.data(), gamma.data(), beta.data(), y.data(), mean.data(),
            rstd.data(), m, n);
  std::vector<float> dx(m * n), dgamma(n, 0.0f), dbeta(n, 0.0f);
  LayerNormBackward(x.data(), gamma.data(), dy.data(), mean.data(),
                    rstd.data(), dx.data(), dgamma.data(), dbeta.data(), m,
                    n);

  auto loss = [&](const std::vector<float>& xv) {
    std::vector<float> yv(m * n), mv(m), rv(m);
    LayerNorm(xv.data(), gamma.data(), beta.data(), yv.data(), mv.data(),
              rv.data(), m, n);
    double total = 0;
    for (size_t i = 0; i < m * n; ++i) total += double(yv[i]) * dy[i];
    return total;
  };
  const float eps = 1e-3f;
  for (size_t i = 0; i < m * n; ++i) {
    std::vector<float> xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    const double numeric = (loss(xp) - loss(xm)) / (2 * eps);
    EXPECT_NEAR(dx[i], numeric, 2e-2) << "dx at " << i;
  }
}

TEST(SoftmaxXentTest, UniformLogitsGiveLogN) {
  const size_t m = 2, n = 4;
  std::vector<float> logits(m * n, 0.5f);
  const std::vector<int> labels = {1, 3};
  std::vector<float> grad(m * n);
  const double loss =
      SoftmaxCrossEntropy(logits.data(), labels.data(), grad.data(), m, n);
  EXPECT_NEAR(loss, std::log(4.0), 1e-5);
  // Gradient rows sum to zero.
  for (size_t i = 0; i < m; ++i) {
    double sum = 0;
    for (size_t j = 0; j < n; ++j) sum += grad[i * n + j];
    EXPECT_NEAR(sum, 0.0, 1e-6);
  }
}

TEST(SoftmaxXentTest, GradientMatchesFiniteDifference) {
  util::Rng rng(7);
  const size_t m = 3, n = 5;
  const auto logits = RandomVector(&rng, m * n);
  const std::vector<int> labels = {0, 2, 4};
  std::vector<float> grad(m * n);
  SoftmaxCrossEntropy(logits.data(), labels.data(), grad.data(), m, n);
  const float eps = 1e-3f;
  for (size_t i = 0; i < m * n; ++i) {
    std::vector<float> lp = logits, lm = logits;
    lp[i] += eps;
    lm[i] -= eps;
    std::vector<float> g(m * n);
    const double up =
        SoftmaxCrossEntropy(lp.data(), labels.data(), g.data(), m, n);
    const double down =
        SoftmaxCrossEntropy(lm.data(), labels.data(), g.data(), m, n);
    EXPECT_NEAR(grad[i], (up - down) / (2 * eps), 1e-3) << "at " << i;
  }
}

TEST(SoftmaxXentTest, NumericallyStableWithLargeLogits) {
  const size_t m = 1, n = 3;
  std::vector<float> logits = {1000.0f, 999.0f, 998.0f};
  const std::vector<int> labels = {0};
  std::vector<float> grad(n);
  const double loss =
      SoftmaxCrossEntropy(logits.data(), labels.data(), grad.data(), m, n);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_LT(loss, 1.0);
}

TEST(MseTest, LossAndGradient) {
  const std::vector<float> pred = {1.0f, 2.0f};
  const std::vector<float> target = {0.0f, 4.0f};
  std::vector<float> grad(2);
  const double loss = MseLoss(pred.data(), target.data(), grad.data(), 2);
  EXPECT_NEAR(loss, (1.0 + 4.0) / 2.0, 1e-6);
  EXPECT_NEAR(grad[0], 2.0 * 1.0 / 2.0, 1e-6);
  EXPECT_NEAR(grad[1], 2.0 * -2.0 / 2.0, 1e-6);
}

}  // namespace
}  // namespace angelptm::train
