#include "train/recompute_policy.h"

#include <gtest/gtest.h>

namespace angelptm::train {
namespace {

std::vector<LayerActivationCost> UniformLayers(int n, uint64_t full,
                                               uint64_t boundary,
                                               double recompute) {
  std::vector<LayerActivationCost> layers(n);
  for (auto& layer : layers) {
    layer.full_stash_bytes = full;
    layer.boundary_bytes = boundary;
    layer.recompute_seconds = recompute;
  }
  return layers;
}

TEST(RecomputePolicyTest, AmpleBudgetStashesEverything) {
  const auto layers = UniformLayers(4, 100, 10, 0.5);
  auto plan = PlanRecompute(layers, 1000);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->layers_recomputed, 0);
  EXPECT_DOUBLE_EQ(plan->recompute_seconds, 0.0);
  EXPECT_EQ(plan->resident_bytes, 4u * 100);
}

TEST(RecomputePolicyTest, TightBudgetRecomputesEverything) {
  const auto layers = UniformLayers(4, 100, 10, 0.5);
  auto plan = PlanRecompute(layers, 45);  // Boundaries are 40.
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->layers_recomputed, 4);
  EXPECT_DOUBLE_EQ(plan->recompute_seconds, 2.0);
  EXPECT_EQ(plan->resident_bytes, 40u);
}

TEST(RecomputePolicyTest, PartialBudgetPicksMostExpensiveRecomputes) {
  // Layer 1 is 10x costlier to recompute for the same size: it must win
  // the stash slot.
  std::vector<LayerActivationCost> layers = UniformLayers(3, 100, 10, 0.1);
  layers[1].recompute_seconds = 1.0;
  auto plan = PlanRecompute(layers, 30 + 90 /* one extra stash */);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->choices[1], ActivationChoice::kStashFull);
  EXPECT_EQ(plan->choices[0], ActivationChoice::kRecompute);
  EXPECT_EQ(plan->choices[2], ActivationChoice::kRecompute);
  EXPECT_DOUBLE_EQ(plan->recompute_seconds, 0.2);
}

TEST(RecomputePolicyTest, DensityBeatsAbsoluteTime) {
  // Layer 0: saves 0.5s for 900 extra bytes (0.56 ms/B);
  // layer 1: saves 0.3s for 90 extra bytes (3.3 ms/B) — denser, picked
  // first when only ~100 bytes remain.
  std::vector<LayerActivationCost> layers(2);
  layers[0] = {1000, 100, 0.5};
  layers[1] = {100, 10, 0.3};
  auto plan = PlanRecompute(layers, 110 + 95);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->choices[1], ActivationChoice::kStashFull);
  EXPECT_EQ(plan->choices[0], ActivationChoice::kRecompute);
}

TEST(RecomputePolicyTest, InfeasibleBudgetIsOutOfMemory) {
  const auto layers = UniformLayers(4, 100, 10, 0.5);
  EXPECT_TRUE(PlanRecompute(layers, 39).status().IsOutOfMemory());
}

TEST(RecomputePolicyTest, MonotoneInBudget) {
  const auto layers = UniformLayers(8, 128, 16, 0.25);
  double previous_recompute = 1e9;
  for (uint64_t budget = 128; budget <= 1200; budget += 128) {
    auto plan = PlanRecompute(layers, budget);
    ASSERT_TRUE(plan.ok()) << budget;
    EXPECT_LE(plan->recompute_seconds, previous_recompute) << budget;
    EXPECT_LE(plan->resident_bytes, budget);
    previous_recompute = plan->recompute_seconds;
  }
}

TEST(RecomputePolicyTest, ZeroCostLayersStayRecomputed) {
  // A layer with no recompute cost never deserves stash space.
  std::vector<LayerActivationCost> layers = UniformLayers(2, 100, 10, 0.0);
  auto plan = PlanRecompute(layers, 10000);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->layers_recomputed, 2);
}

}  // namespace
}  // namespace angelptm::train
